package exaresil

// The benchmarks in this file regenerate every exhibit of the paper at
// reduced statistical scale (benchmarks measure harness cost, not publish
// study numbers — use cmd/exasim for full-fidelity runs). One benchmark
// per table and figure, as the repository's reproduction contract:
//
//	go test -bench=. -benchmem
//
// BenchmarkFig1..Fig5 correspond to Figures 1-5; BenchmarkTable1/2 to the
// tables; the Ablation benchmarks quantify the design choices called out
// in DESIGN.md (multilevel pattern optimization, parallel recovery's
// rework speedup).

import (
	"fmt"
	"testing"

	"exaresil/internal/core"
	"exaresil/internal/experiments"
	"exaresil/internal/resilience"
	"exaresil/internal/rng"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

func benchConfig() experiments.Config {
	cfg := experiments.Default()
	return cfg
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := experiments.TableI(); t.Rows() == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableII(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchScaling runs one reduced-trials scaling figure per iteration.
func benchScaling(b *testing.B, class workload.Class, mtbf units.Duration) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.ScalingSpec{
			Config: cfg,
			Class:  class,
			MTBF:   mtbf,
			Trials: 10,
		}.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) == 0 {
			b.Fatal("no data points")
		}
	}
}

func BenchmarkFig1(b *testing.B) { benchScaling(b, workload.A32, 0) }
func BenchmarkFig2(b *testing.B) { benchScaling(b, workload.D64, 0) }
func BenchmarkFig3(b *testing.B) {
	benchScaling(b, workload.D64, units.Duration(2.5)*units.Year)
}

func BenchmarkFig4(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.ClusterSpec{
			Config:   cfg,
			Patterns: 2,
			Arrivals: 30,
		}.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Cells) != 12 {
			b.Fatalf("want 12 cells, got %d", len(res.Cells))
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.SelectionSpec{
			Config:   cfg,
			Patterns: 2,
			Arrivals: 30,
			Selection: SelectorOptions{
				Trials:        4,
				TimeSteps:     360,
				SizeFractions: []float64{0.01, 0.25},
			},
		}.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Cells) == 0 {
			b.Fatal("no cells")
		}
	}
}

// BenchmarkAblationMultilevelPattern compares the optimized three-level
// schedule against a degenerate all-PFS pattern at the same machinery,
// quantifying what the level hierarchy buys (DESIGN.md §4.3).
func BenchmarkAblationMultilevelPattern(b *testing.B) {
	sim, err := New()
	if err != nil {
		b.Fatal(err)
	}
	app := App{Class: ClassC64, TimeSteps: 1440, Nodes: 60000}
	for _, sub := range []struct {
		name string
		tech Technique
	}{
		{"multilevel", MultilevelCheckpoint},
		{"single-level-pfs", CheckpointRestart},
	} {
		b.Run(sub.name, func(b *testing.B) {
			x, err := sim.Executor(sub.tech, app)
			if err != nil {
				b.Fatal(err)
			}
			src := rng.New(1)
			var eff float64
			for i := 0; i < b.N; i++ {
				res := x.Run(0, 1e9, src)
				eff += res.Efficiency()
			}
			b.ReportMetric(eff/float64(b.N), "efficiency")
		})
	}
}

// BenchmarkAblationRecoverySpeedup sweeps Parallel Recovery's phi,
// quantifying how much of its advantage comes from parallelized rework
// versus cheap in-memory checkpoints.
func BenchmarkAblationRecoverySpeedup(b *testing.B) {
	app := workload.App{Class: workload.A32, TimeSteps: 1440, Nodes: 60000}
	for _, phi := range []float64{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("phi=%g", phi), func(b *testing.B) {
			sim, err := New(WithRecoverySpeedup(phi))
			if err != nil {
				b.Fatal(err)
			}
			x, err := sim.Executor(ParallelRecovery, app)
			if err != nil {
				b.Fatal(err)
			}
			src := rng.New(1)
			var eff float64
			for i := 0; i < b.N; i++ {
				eff += x.Run(0, 1e9, src).Efficiency()
			}
			b.ReportMetric(eff/float64(b.N), "efficiency")
		})
	}
}

// BenchmarkExecutorRun measures a single simulated execution per technique
// at a quarter-machine size: the unit of work every study multiplies.
func BenchmarkExecutorRun(b *testing.B) {
	sim, err := New()
	if err != nil {
		b.Fatal(err)
	}
	app := App{Class: ClassC64, TimeSteps: 1440, Nodes: 30000}
	for _, tech := range core.Techniques() {
		b.Run(tech.String(), func(b *testing.B) {
			x, err := sim.Executor(tech, app)
			if err != nil {
				b.Fatal(err)
			}
			src := rng.New(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				x.Run(0, 1e9, src)
			}
		})
	}
}

// BenchmarkClusterRun measures one full cluster simulation (the unit of
// Figures 4-5).
func BenchmarkClusterRun(b *testing.B) {
	sim, err := New()
	if err != nil {
		b.Fatal(err)
	}
	pattern := sim.GeneratePattern(PatternSpec{Arrivals: 100, FillSystem: true}, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunCluster(SlackBased, ParallelRecovery, pattern, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultilevelOptimizer measures the schedule search's amortized
// cost: the first 1000 distinct rate vectors pay the full grid search
// (~150 us each), later iterations hit the memoization cache — the mix a
// cluster study actually sees.
func BenchmarkMultilevelOptimizer(b *testing.B) {
	costs := resilience.Costs{
		L1:  units.Duration(0.0033),
		L2:  units.Duration(0.0133),
		PFS: 17 * units.Minute,
	}
	for i := 0; i < b.N; i++ {
		// Vary a rate slightly so the memoization cache misses and the
		// search itself is measured.
		rates := [3]units.Rate{
			units.Rate(0.0148 + float64(i%1000)*1e-9),
			0.0057,
			0.0023,
		}
		if _, err := resilience.OptimizeMultilevel(costs, rates, resilience.DefaultMultilevelConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactMarkovStretch measures the O(N) Markov-chain evaluation of
// a multilevel schedule (pattern length 576, the optimizer's maximum).
func BenchmarkExactMarkovStretch(b *testing.B) {
	costs := resilience.Costs{
		L1:  units.Duration(0.0033),
		L2:  units.Duration(0.0133),
		PFS: 17 * units.Minute,
	}
	rates := [3]units.Rate{0.0148, 0.0057, 0.0023}
	sched := resilience.MultilevelSchedule{Interval: 1, L1PerL2: 24, L2PerL3: 24}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := sched.ExactStretch(costs, rates); v <= 1 {
			b.Fatal("implausible stretch")
		}
	}
}

package exaresil

import (
	"fmt"

	"exaresil/internal/appsim"
	"exaresil/internal/cluster"
	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/resilience"
	"exaresil/internal/rng"
	"exaresil/internal/selection"
	"exaresil/internal/stats"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// Domain types re-exported from the internal packages. The aliases are the
// public API; the internal packages remain free to grow private helpers.
type (
	// Machine describes the simulated platform hardware.
	Machine = machine.Config
	// Network describes the interconnect.
	Network = machine.Network
	// Node describes one machine node.
	Node = machine.Node
	// App is an application descriptor.
	App = workload.App
	// AppClass is a synthetic benchmark class (Table I of the paper).
	AppClass = workload.Class
	// Pattern is a generated arrival pattern.
	Pattern = workload.Pattern
	// PatternSpec configures arrival-pattern generation.
	PatternSpec = workload.PatternSpec
	// Bias selects an arrival-pattern population.
	Bias = workload.Bias
	// Technique identifies a resilience technique.
	Technique = core.Technique
	// Scheduler identifies a resource-management heuristic.
	Scheduler = core.Scheduler
	// Executor simulates one application under one technique.
	Executor = resilience.Executor
	// Result is one simulated execution's outcome.
	Result = resilience.Result
	// TrialStats aggregates a Monte-Carlo study.
	TrialStats = appsim.TrialStats
	// ClusterSpec configures a cluster simulation.
	ClusterSpec = cluster.Spec
	// ClusterMetrics aggregates a cluster simulation.
	ClusterMetrics = cluster.Metrics
	// Selector chooses techniques per application (Resilience Selection).
	Selector = selection.Selector
	// SelectorOptions tunes selector construction.
	SelectorOptions = selection.Options
	// SeverityPMF is the failure severity distribution.
	SeverityPMF = failures.SeverityPMF
	// Duration is simulated time in minutes.
	Duration = units.Duration
	// Summary is a frozen statistical summary.
	Summary = stats.Summary
)

// The resilience techniques (paper Section IV).
const (
	// Ideal is the failure-free, overhead-free baseline.
	Ideal = core.Ideal
	// CheckpointRestart is blocking checkpointing to the PFS.
	CheckpointRestart = core.CheckpointRestart
	// MultilevelCheckpoint is the three-level scheme of Moody et al.
	MultilevelCheckpoint = core.MultilevelCheckpoint
	// ParallelRecovery is message logging with parallelized rework.
	ParallelRecovery = core.ParallelRecovery
	// PartialRedundancy replicates half the virtual nodes (r = 1.5).
	PartialRedundancy = core.PartialRedundancy
	// FullRedundancy replicates every virtual node (r = 2.0).
	FullRedundancy = core.FullRedundancy
	// InMemoryReplicatedCheckpoint keeps checkpoints replicated in peer
	// memory, ReStore-style (post-2017 extension).
	InMemoryReplicatedCheckpoint = core.InMemoryReplicatedCheckpoint
	// LightweightReplication runs two loosely-synchronized teams,
	// TeaMPI-style (post-2017 extension).
	LightweightReplication = core.LightweightReplication
)

// The resource-management heuristics (paper Section III-D).
const (
	// FCFS maps applications strictly in arrival order.
	FCFS = core.FCFS
	// RandomOrder maps applications in random order.
	RandomOrder = core.RandomOrder
	// SlackBased prioritizes the least schedule slack and drops hopeless
	// applications.
	SlackBased = core.SlackBased
)

// The arrival-pattern populations of the Section VII study.
const (
	// Unbiased draws from all classes and sizes.
	Unbiased = workload.Unbiased
	// HighMemoryBias draws only 64 GB/node classes.
	HighMemoryBias = workload.HighMemory
	// HighCommBias draws only classes with T_C > 0.25.
	HighCommBias = workload.HighComm
	// LargeAppsBias draws only the 12-50% machine sizes.
	LargeAppsBias = workload.LargeApps
)

// The eight synthetic benchmark classes of Table I.
var (
	ClassA32 = workload.A32
	ClassA64 = workload.A64
	ClassB32 = workload.B32
	ClassB64 = workload.B64
	ClassC32 = workload.C32
	ClassC64 = workload.C64
	ClassD32 = workload.D32
	ClassD64 = workload.D64
)

// Classes returns the eight Table I application classes.
func Classes() []AppClass { return workload.Classes() }

// Techniques returns the full technique menu: the paper's five variants
// plus the post-2017 extensions.
func Techniques() []Technique { return core.Techniques() }

// Schedulers returns the three resource-management heuristics.
func Schedulers() []Scheduler { return core.Schedulers() }

// ExascaleMachine returns the paper's projected 120,000-node exascale
// platform.
func ExascaleMachine() Machine { return machine.Exascale() }

// SunwayTaihuLight returns the contemporary reference machine.
func SunwayTaihuLight() Machine { return machine.SunwayTaihuLight() }

// Simulation bundles a machine, a failure model, and technique parameters:
// the environment every study runs in. Construct with New; a Simulation is
// immutable and safe for concurrent use.
type Simulation struct {
	machine machine.Config
	pmf     failures.SeverityPMF
	resCfg  resilience.Config
	model   *failures.Model
}

// Option configures a Simulation.
type Option func(*simOptions)

type simOptions struct {
	machine      machine.Config
	pmf          failures.SeverityPMF
	resCfg       resilience.Config
	weibullShape float64
}

// WithMachine selects the platform (default: ExascaleMachine).
func WithMachine(m Machine) Option {
	return func(o *simOptions) { o.machine = m }
}

// WithMTBF overrides the per-node mean time between failures.
func WithMTBF(mtbf Duration) Option {
	return func(o *simOptions) { o.machine = o.machine.WithMTBF(mtbf) }
}

// WithSeverityPMF overrides the failure severity distribution.
func WithSeverityPMF(pmf SeverityPMF) Option {
	return func(o *simOptions) { o.pmf = pmf }
}

// WithRecoverySpeedup overrides Parallel Recovery's rework speedup phi.
func WithRecoverySpeedup(phi float64) Option {
	return func(o *simOptions) { o.resCfg.RecoverySpeedup = phi }
}

// New constructs a Simulation. With no options it models the paper's
// exascale machine at a ten-year component MTBF.
func New(opts ...Option) (*Simulation, error) {
	o := simOptions{
		machine:      machine.Exascale(),
		pmf:          failures.DefaultSeverityPMF(),
		resCfg:       resilience.DefaultConfig(),
		weibullShape: 1,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if err := o.machine.Validate(); err != nil {
		return nil, err
	}
	if err := o.resCfg.Validate(); err != nil {
		return nil, err
	}
	model, err := failures.NewWeibullModel(o.machine.MTBF, o.pmf, o.weibullShape)
	if err != nil {
		return nil, err
	}
	return &Simulation{
		machine: o.machine,
		pmf:     o.pmf,
		resCfg:  o.resCfg,
		model:   model,
	}, nil
}

// Machine reports the simulated platform.
func (s *Simulation) Machine() Machine { return s.machine }

// Executor builds the executor for one (technique, application) pair.
func (s *Simulation) Executor(t Technique, app App) (Executor, error) {
	return resilience.New(t, app, s.machine, s.model, s.resCfg)
}

// RunApp simulates a single execution of app under technique t, beginning
// at time zero, with randomness drawn from seed. The run is abandoned
// (Result.Completed false) if it exceeds 100x the baseline execution time.
func (s *Simulation) RunApp(t Technique, app App, seed uint64) (Result, error) {
	x, err := s.Executor(t, app)
	if err != nil {
		return Result{}, err
	}
	horizon := Duration(appsim.DefaultHorizonFactor * float64(app.Baseline()))
	return x.Run(0, horizon, rng.New(seed)), nil
}

// Study runs a Monte-Carlo study: trials independent executions of app
// under t, aggregated. Trials are distributed over all CPUs; results are
// reproducible for a given seed regardless of parallelism.
func (s *Simulation) Study(t Technique, app App, trials int, seed uint64) (TrialStats, error) {
	if trials <= 0 {
		return TrialStats{}, fmt.Errorf("exaresil: trials must be positive, got %d", trials)
	}
	x, err := s.Executor(t, app)
	if err != nil {
		return TrialStats{}, err
	}
	return appsim.Run(appsim.TrialSpec{Executor: x, Trials: trials, Seed: seed}), nil
}

// GeneratePattern creates an arrival pattern for this simulation's machine.
func (s *Simulation) GeneratePattern(spec PatternSpec, seed uint64) Pattern {
	return spec.Generate(s.machine, rng.New(seed))
}

// RunCluster simulates an oversubscribed cluster serving pattern under the
// given scheduler and resilience technique.
func (s *Simulation) RunCluster(sch Scheduler, t Technique, pattern Pattern, seed uint64) (ClusterMetrics, error) {
	return cluster.Run(cluster.Spec{
		Machine:    s.machine,
		Model:      s.model,
		Scheduler:  sch,
		Technique:  t,
		Resilience: s.resCfg,
		Pattern:    pattern,
		Seed:       seed,
	})
}

// RunClusterWithSelector is RunCluster with per-application Resilience
// Selection instead of a fixed technique.
func (s *Simulation) RunClusterWithSelector(sch Scheduler, sel *Selector, pattern Pattern, seed uint64) (ClusterMetrics, error) {
	if sel == nil {
		return ClusterMetrics{}, fmt.Errorf("exaresil: nil selector")
	}
	return cluster.Run(cluster.Spec{
		Machine:    s.machine,
		Model:      s.model,
		Scheduler:  sch,
		Chooser:    sel.Choose,
		Resilience: s.resCfg,
		Pattern:    pattern,
		Seed:       seed,
	})
}

// BuildSelector probes the technique/size grid and returns a Resilience
// Selection policy for this simulation's environment.
func (s *Simulation) BuildSelector(opts SelectorOptions) (*Selector, error) {
	return selection.NewSelector(s.machine, s.model, s.resCfg, opts)
}

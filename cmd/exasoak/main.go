// Command exasoak hammers a running exaserve with concurrent, retrying
// clients and verifies every answer against locally computed truth. It is
// the measurement half of the chaos story: exaserve -chaos injects
// latency, errors, resets, and worker crashes; exasoak demonstrates that
// the retry + checkpoint/resume machinery converts all of that into
// nothing worse than latency — zero wrong results.
//
//	exaserve -addr 127.0.0.1:8080 -chaos &
//	exasoak -addr 127.0.0.1:8080 -clients 4 -requests 40
//
// Before sending anything, exasoak runs its whole spec vocabulary through
// the experiments registry in-process (mirroring the server's default
// configuration) and records each spec's expected CSV digest. Every
// served result must match; any divergence — or a p99 latency above
// -max-p99, when set — exits non-zero. scripts/chaos_soak.sh wires this
// into CI.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"exaresil/internal/experiments"
	"exaresil/internal/load"
	"exaresil/internal/mesh"
	"exaresil/internal/rng"
	"exaresil/internal/serve"
	"exaresil/internal/serveclient"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "exasoak:", err)
		os.Exit(1)
	}
}

// vocabulary is the soak's spec mix: cheap exhibits spanning the service's
// behaviors — trial-based and grid-based (checkpointable), repeated specs
// (cache hits and joins), and per-spec seed overrides (distinct cache
// keys).
func vocabulary() []serve.Spec {
	return []serve.Spec{
		{Exhibit: "table1"},
		{Exhibit: "table2"},
		{Exhibit: "fig1", Trials: 2},
		{Exhibit: "fig1", Trials: 3},
		{Exhibit: "fig1", Trials: 2, Seed: 7},
		{Exhibit: "fig4", Patterns: 2, Arrivals: 8},
		{Exhibit: "fig4", Patterns: 2, Arrivals: 8, Seed: 7},
		{Exhibit: "fig4", Patterns: 3, Arrivals: 8},
	}
}

func run(argv []string) error {
	fs := flag.NewFlagSet("exasoak", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "exaserve base URL")
	clients := fs.Int("clients", 4, "concurrent clients")
	requests := fs.Int("requests", 32, "requests per client")
	seed := fs.Uint64("seed", 1, "spec-mix and jitter seed")
	mix := fs.String("mix", "uniform", "spec mix: uniform, or zipf (rank-skewed draws over the vocabulary)")
	zipfS := fs.Float64("zipf-s", 1.1, "zipf mix exponent (ignored for -mix uniform)")
	attempts := fs.Int("attempts", 10, "max submissions per request (retries + resubmits)")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-request deadline")
	maxP99 := fs.Duration("max-p99", 0, "fail when p99 latency exceeds this (0 = report only)")
	requireFailover := fs.Bool("require-failover", false, "fail unless the target mesh reports at least one replica failover")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if *clients < 1 || *requests < 1 {
		return fmt.Errorf("clients (%d) and requests (%d) must be positive", *clients, *requests)
	}

	vocab := vocabulary()
	// pickSpec maps one uniform draw to a vocabulary index: flat for the
	// uniform mix, rank-skewed through the shared Zipf law for -mix zipf
	// (vocabulary order is the popularity ranking, so the cache-friendly
	// repeated specs soak hottest — the same skew exaload generates).
	var pickSpec func(u float64) int
	switch *mix {
	case "uniform":
		pickSpec = func(u float64) int { return int(u * float64(len(vocab))) }
	case "zipf":
		pop, err := load.NewPopularity(len(vocab), *zipfS)
		if err != nil {
			return fmt.Errorf("-mix zipf: %w", err)
		}
		pickSpec = pop.Rank
	default:
		return fmt.Errorf("unknown -mix %q (want uniform or zipf)", *mix)
	}
	expected, err := expectedDigests(vocab)
	if err != nil {
		return fmt.Errorf("precompute truth: %w", err)
	}
	fmt.Printf("exasoak: %d specs precomputed; %d clients x %d requests (%s mix) against %s\n",
		len(vocab), *clients, *requests, *mix, *addr)

	type sample struct {
		latency time.Duration
		spec    int
		err     error
		wrong   bool
	}
	samples := make([]sample, *clients**requests)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := serveclient.New(*addr, serveclient.Options{
				MaxAttempts: *attempts,
				Seed:        *seed + uint64(c),
			})
			draws := rng.Stream(*seed, uint64(c)+1)
			for i := 0; i < *requests; i++ {
				pick := pickSpec(draws.Float64())
				ctx, cancel := context.WithTimeout(context.Background(), *timeout)
				t0 := time.Now()
				res, err := cl.Run(ctx, vocab[pick])
				cancel()
				s := sample{latency: time.Since(t0), spec: pick, err: err}
				if err == nil && res.Digest != expected[pick] {
					s.wrong = true
				}
				samples[c**requests+i] = s
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lats []time.Duration
	var failed, wrong int
	for _, s := range samples {
		switch {
		case s.wrong:
			wrong++
			fmt.Printf("exasoak: WRONG RESULT for %s\n", vocab[s.spec].Canonical())
		case s.err != nil:
			failed++
			fmt.Printf("exasoak: request failed: %v\n", s.err)
		default:
			lats = append(lats, s.latency)
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	fmt.Printf("exasoak: %d ok, %d failed, %d wrong in %s\n", len(lats), failed, wrong, elapsed.Round(time.Millisecond))
	if len(lats) > 0 {
		fmt.Printf("exasoak: latency p50 %s  p95 %s  p99 %s  max %s\n",
			pctl(lats, 0.50), pctl(lats, 0.95), pctl(lats, 0.99), lats[len(lats)-1].Round(time.Millisecond))
	}

	if wrong > 0 {
		return fmt.Errorf("%d wrong results — resilience must never corrupt an answer", wrong)
	}
	if failed > 0 {
		return fmt.Errorf("%d requests failed after %d attempts each", failed, *attempts)
	}
	if *maxP99 > 0 && len(lats) > 0 && pctlRaw(lats, 0.99) > *maxP99 {
		return fmt.Errorf("p99 latency %s exceeds the %s budget", pctl(lats, 0.99), *maxP99)
	}
	if mv, err := fetchMeshView(*addr); err == nil {
		fmt.Printf("exasoak: mesh: %d replicas, %d failovers, %d rerouted jobs, %d handoff cells\n",
			len(mv.Replicas), mv.Failovers, mv.ReroutedJobs, mv.HandoffCells)
		if *requireFailover && mv.Failovers == 0 {
			return fmt.Errorf("-require-failover: the mesh reports zero failovers — the soak never exercised replica death")
		}
	} else if *requireFailover {
		return fmt.Errorf("-require-failover: %w", err)
	}
	return nil
}

// fetchMeshView reads GET /v1/mesh from the first endpoint; a plain
// single-process exaserve answers 404 and yields an error.
func fetchMeshView(addr string) (mesh.View, error) {
	base := strings.TrimRight(strings.TrimSpace(strings.Split(addr, ",")[0]), "/")
	resp, err := http.Get(base + "/v1/mesh")
	if err != nil {
		return mesh.View{}, fmt.Errorf("fetch mesh view: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return mesh.View{}, fmt.Errorf("fetch mesh view: HTTP %d (not a mesh?)", resp.StatusCode)
	}
	var mv mesh.View
	if err := json.NewDecoder(resp.Body).Decode(&mv); err != nil {
		return mesh.View{}, fmt.Errorf("decode mesh view: %w", err)
	}
	return mv, nil
}

// expectedDigests runs every vocabulary spec through the experiments
// registry in-process — the same code path the server's default runner
// takes — and records the CSV digests served answers must match.
func expectedDigests(vocab []serve.Spec) ([]string, error) {
	out := make([]string, len(vocab))
	for i, sp := range vocab {
		ex, ok := experiments.Lookup(sp.Exhibit)
		if !ok {
			return nil, fmt.Errorf("vocabulary spec %q not in the registry", sp.Exhibit)
		}
		cfg := experiments.Default()
		if sp.Seed != 0 {
			cfg.Seed = sp.Seed
		}
		t, _, err := ex.Run(cfg, sp.Params())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sp.Canonical(), err)
		}
		var buf bytes.Buffer
		if err := t.WriteCSV(&buf); err != nil {
			return nil, err
		}
		out[i] = fmt.Sprintf("%x", sha256.Sum256(buf.Bytes()))
	}
	return out, nil
}

// pctlRaw returns the q-th percentile of sorted latencies.
func pctlRaw(sorted []time.Duration, q float64) time.Duration {
	idx := int(float64(len(sorted))*q+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// pctl renders a percentile for the report line.
func pctl(sorted []time.Duration, q float64) time.Duration {
	return pctlRaw(sorted, q).Round(time.Millisecond)
}

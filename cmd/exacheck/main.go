// Command exacheck audits the simulator against the analytic models and
// against its own pinned outputs.
//
// Usage:
//
//	exacheck [flags] [sweep|golden]...
//
// With no mode arguments, "sweep" is assumed.
//
// The sweep mode runs the conformance audit of internal/check: a grid of
// (checkpoint cost x failure rate x node count x technique) cells, each
// comparing the Monte-Carlo mean efficiency against the closed-form
// prediction, checking every runtime invariant on the traces, testing the
// metamorphic properties of the analytic layer, and reconciling the obs
// metrics the engines emit against trace-derived totals. It exits non-zero
// on any violation.
//
// The golden mode regenerates reduced-size paper exhibits at a pinned seed
// and compares their CSV digests against results/golden/manifest.txt,
// catching unintended behavioural drift in the full pipeline. Run with
// -update after an intentional change (and justify the refresh in the
// commit).
//
// Flags:
//
//	-trials N   Monte-Carlo trials per sweep cell (default 30)
//	-seed N     master random seed (0 = default)
//	-workers N  worker goroutines (0 = all CPUs)
//	-quick      sweep a reduced grid (one MTBF, two sizes)
//	-vr         sweep with variance-reduced (antithetic paired) trials,
//	            certifying the paired sampler against the same bands
//	-update     golden: rewrite the manifest and fixtures instead of comparing
//	-dir DIR    golden: fixture directory (default results/golden)
package main

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"exaresil/internal/check"
	"exaresil/internal/core"
	"exaresil/internal/experiments"
	"exaresil/internal/load"
	"exaresil/internal/report"
	"exaresil/internal/units"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "exacheck: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("exacheck", flag.ContinueOnError)
	trials := fs.Int("trials", 0, "Monte-Carlo trials per sweep cell (0 = default)")
	seed := fs.Uint64("seed", 0, "master random seed (0 = default)")
	workers := fs.Int("workers", 0, "worker goroutines (0 = all CPUs)")
	quick := fs.Bool("quick", false, "sweep a reduced grid")
	vr := fs.Bool("vr", false, "sweep with variance-reduced (antithetic paired) trials")
	update := fs.Bool("update", false, "golden: rewrite the manifest and fixtures")
	dir := fs.String("dir", filepath.Join("results", "golden"), "golden fixture directory")
	if err := fs.Parse(args); err != nil {
		return err
	}

	modes := fs.Args()
	if len(modes) == 0 {
		modes = []string{"sweep"}
	}
	for _, mode := range modes {
		switch mode {
		case "sweep":
			if err := runSweep(*trials, *seed, *workers, *quick, *vr); err != nil {
				return err
			}
		case "golden":
			if err := runGolden(*dir, *seed, *workers, *update); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown mode %q (want sweep or golden)", mode)
		}
	}
	return nil
}

// runSweep executes the conformance audit and renders its report.
func runSweep(trials int, seed uint64, workers int, quick, vr bool) error {
	s := check.DefaultSweep()
	s.Trials = trials // zero means the sweep default
	s.Seed = seed
	s.Paired = vr
	if workers == 0 {
		workers = runtime.NumCPU()
	}
	s.Workers = workers
	if quick {
		s.MTBFs = []units.Duration{10 * units.Year}
		s.Fractions = []float64{0.01, 0.50}
	}

	start := time.Now()
	rep, err := s.Run()
	if err != nil {
		return err
	}
	rep.Write(os.Stdout)
	fmt.Printf("(sweep of %d cells in %v)\n", len(rep.Cells), time.Since(start).Round(time.Millisecond))
	// Every technique in the core menu must be covered by exactly one cell
	// per grid point: a technique added to core without check coverage (or
	// a sweep that silently dropped cells) fails loudly here.
	if want := len(s.MTBFs) * len(s.Classes) * len(s.Fractions) * len(core.Techniques()); len(rep.Cells) != want {
		return fmt.Errorf("sweep covered %d cells, want %d (%d MTBFs x %d classes x %d sizes x %d core techniques); a technique may lack check coverage",
			len(rep.Cells), want, len(s.MTBFs), len(s.Classes), len(s.Fractions), len(core.Techniques()))
	}
	if !rep.OK() {
		return fmt.Errorf("audit failed: %d conformance failures, %d invariant violations, %d metamorphic failures, %d metrics reconciliation failures",
			rep.ConformanceFailures(), len(rep.Violations), len(rep.Metamorphic), len(rep.MetricsChecks))
	}
	return nil
}

// goldenExhibits lists the reduced-size exhibits pinned by the golden
// manifest. Trials and patterns are deliberately small: the fixtures exist
// to catch behavioural drift, not to reproduce publication-quality error
// bars, and regenerating them must stay cheap enough for every commit.
func goldenExhibits(cfg experiments.Config) []struct {
	name string
	gen  func() (*report.Table, error)
} {
	return []struct {
		name string
		gen  func() (*report.Table, error)
	}{
		{"table1", func() (*report.Table, error) { return experiments.TableI(), nil }},
		{"table2", func() (*report.Table, error) { return experiments.TableII(cfg) }},
		{"fig1", func() (*report.Table, error) { t, _, err := experiments.Figure1(cfg, 20); return t, err }},
		{"fig4", func() (*report.Table, error) { t, _, err := experiments.Figure4(cfg, 6); return t, err }},
		{"fig5", func() (*report.Table, error) { t, _, err := experiments.Figure5(cfg, 6); return t, err }},
		{"backfill", func() (*report.Table, error) {
			t, _, err := experiments.BackfillSpec{Config: cfg, Patterns: 6}.Run()
			return t, err
		}},
		// The serving layer's saturation sweep: a real exaserve behind a
		// virtual clock, so the whole capacity curve is a pure function of
		// the pinned seed (see internal/load).
		{"loadsweep", load.GoldenSweepTable},
		// The heterogeneity study: homogeneous baseline vs. the mixed
		// fleet under both placement policies, reduced to 3 patterns of
		// 40 arrivals.
		{"ext-hetero", func() (*report.Table, error) {
			t, _, err := experiments.HeteroSpec{Config: cfg, Patterns: 3, Arrivals: 40}.Run()
			return t, err
		}},
		// The expanded-menu selection study, reduced to two MTBFs, three
		// sizes, and three probe pairs per arm: enough cells to pin where
		// the post-2017 techniques dethrone the 2017 winners.
		{"ext-menu2", func() (*report.Table, error) {
			t, _, err := experiments.Menu2Spec{
				Config:       cfg,
				MTBFs:        []units.Duration{10 * units.Year, units.Duration(2.5) * units.Year},
				Fractions:    []float64{0.01, 0.12, 0.50},
				PairedTrials: 3,
			}.Run()
			return t, err
		}},
	}
}

// runGolden regenerates the golden exhibits and compares (or, with update
// set, rewrites) the digest manifest and CSV fixtures.
func runGolden(dir string, seed uint64, workers int, update bool) error {
	cfg := experiments.Default()
	if seed != 0 {
		cfg.Seed = seed
	}
	cfg.Workers = workers

	digests := map[string]string{}
	csvs := map[string][]byte{}
	for _, ex := range goldenExhibits(cfg) {
		start := time.Now()
		t, err := ex.gen()
		if err != nil {
			return fmt.Errorf("golden %s: %w", ex.name, err)
		}
		var buf bytes.Buffer
		if err := t.WriteCSV(&buf); err != nil {
			return fmt.Errorf("golden %s: %w", ex.name, err)
		}
		digests[ex.name] = fmt.Sprintf("%x", sha256.Sum256(buf.Bytes()))
		csvs[ex.name] = buf.Bytes()
		fmt.Printf("golden %-8s %s  (%v)\n", ex.name, digests[ex.name][:16], time.Since(start).Round(time.Millisecond))
	}

	manifestPath := filepath.Join(dir, "manifest.txt")
	if update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		var names []string
		for name := range digests {
			names = append(names, name)
		}
		sort.Strings(names)
		var b strings.Builder
		b.WriteString("# sha256 digests of the reduced-size golden exhibits.\n")
		b.WriteString("# Regenerate with: exacheck -update golden\n")
		for _, name := range names {
			fmt.Fprintf(&b, "%s  %s\n", digests[name], name)
			if err := os.WriteFile(filepath.Join(dir, name+".csv"), csvs[name], 0o644); err != nil {
				return err
			}
		}
		if err := os.WriteFile(manifestPath, []byte(b.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("golden manifest rewritten at %s\n", manifestPath)
		return nil
	}

	want, err := readManifest(manifestPath)
	if err != nil {
		return fmt.Errorf("golden: %w (run `exacheck -update golden` to create fixtures)", err)
	}
	var diverged []string
	for name, digest := range digests {
		pinned, ok := want[name]
		if !ok {
			diverged = append(diverged, fmt.Sprintf("%s: not in manifest", name))
			continue
		}
		if pinned != digest {
			diverged = append(diverged, fmt.Sprintf("%s: digest %s, manifest pins %s", name, digest[:16], pinned[:16]))
		}
	}
	for name := range want {
		if _, ok := digests[name]; !ok {
			diverged = append(diverged, fmt.Sprintf("%s: in manifest but no longer generated", name))
		}
	}
	if len(diverged) > 0 {
		sort.Strings(diverged)
		return fmt.Errorf("golden exhibits diverged (intentional? rerun with -update and justify):\n  %s",
			strings.Join(diverged, "\n  "))
	}
	fmt.Printf("golden: %d exhibits match the manifest\n", len(digests))
	return nil
}

// readManifest parses "digest  name" lines, ignoring comments and blanks.
func readManifest(path string) (map[string]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m := map[string]string{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || len(fields[0]) != 64 {
			return nil, fmt.Errorf("%s:%d: want \"<sha256>  <name>\"", path, i+1)
		}
		m[fields[1]] = fields[0]
	}
	return m, nil
}

// Command exasim regenerates every table and figure of "An Analysis of
// Resilience Techniques for Exascale Computing Platforms" (IPDPSW 2017)
// from the exaresil simulation library.
//
// Usage:
//
//	exasim [flags] <exhibit>...
//
// where each exhibit is one of: table1, table2, fig1, fig2, fig3, fig4,
// fig5, or all (every paper exhibit); or one of the extension studies:
// ext-energy, ext-mtbf, ext-weibull, ext-backfill, ext-selectors, ext-tau, or
// ext-all. With no exhibit arguments, "all" is assumed.
//
// Flags:
//
//	-trials N     Monte-Carlo trials per bar in fig1-3 (default 200, as
//	              in the paper)
//	-patterns N   arrival patterns per cell in fig4-5 (default 50)
//	-seed N       master random seed (default the paper-epoch constant)
//	-csv DIR      additionally write each exhibit as DIR/<name>.csv
//	-chart        additionally render figures as ASCII bar charts
//	-metrics F    collect simulation metrics across the whole run and
//	              write them to F on exit — Prometheus text exposition
//	              format, or a JSON snapshot when F ends in .json
//	              ("-" writes to stdout)
//	-workers N    worker goroutines (default all CPUs)
//	-cpuprofile F write a pprof CPU profile of the whole run to F
//	-memprofile F write a pprof allocation profile to F on exit
//
// Profiles are analyzed with the standard toolchain, e.g.
// `go tool pprof exasim cpu.out`.
//
// The whole invocation is validated before any exhibit runs: unknown
// exhibit names, non-positive -trials/-patterns, and -metrics paths with
// an unsupported extension are usage errors and exit 2 immediately.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"exaresil/internal/experiments"
	"exaresil/internal/obs"
	"exaresil/internal/report"
)

// usageError marks a command-line mistake caught before any work starts:
// the process exits 2 with a usage hint instead of failing mid-run.
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

func usagef(format string, args ...any) error {
	return usageError{msg: fmt.Sprintf(format, args...)}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "exasim: %v\n", err)
		var ue usageError
		if errors.As(err, &ue) {
			fmt.Fprintf(os.Stderr, "usage: exasim [flags] <exhibit>...\nrun 'exasim -h' for flag help\n")
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// validMetricsPath reports whether -metrics points somewhere writeMetrics
// understands: stdout ("-"), a JSON snapshot (.json), or the Prometheus
// text exposition format (.prom, .txt, or no extension).
func validMetricsPath(path string) bool {
	if path == "-" {
		return true
	}
	switch filepath.Ext(path) {
	case "", ".json", ".prom", ".txt":
		return true
	default:
		return false
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("exasim", flag.ContinueOnError)
	trials := fs.Int("trials", 200, "Monte-Carlo trials per bar (figures 1-3)")
	patterns := fs.Int("patterns", 50, "arrival patterns per cell (figures 4-5)")
	seed := fs.Uint64("seed", 0, "master random seed (0 = default)")
	csvDir := fs.String("csv", "", "directory to write CSV copies of each exhibit")
	chart := fs.Bool("chart", false, "render figures as ASCII bar charts too")
	metricsPath := fs.String("metrics", "", "write run metrics to this file (Prometheus text; JSON if it ends in .json; - for stdout)")
	workers := fs.Int("workers", 0, "worker goroutines (0 = all CPUs)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a pprof allocation profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Validate the whole invocation before any exhibit runs: a typo in the
	// last exhibit name must not cost a full regeneration of the first.
	if *trials <= 0 {
		return usagef("-trials must be positive, got %d", *trials)
	}
	if *patterns <= 0 {
		return usagef("-patterns must be positive, got %d", *patterns)
	}
	if *workers < 0 {
		return usagef("-workers must be non-negative, got %d", *workers)
	}
	if *metricsPath != "" && !validMetricsPath(*metricsPath) {
		return usagef("-metrics %s: unsupported extension %s (want .json, .prom, .txt, no extension, or -)",
			*metricsPath, filepath.Ext(*metricsPath))
	}
	expanded, err := experiments.ExpandNames(fs.Args())
	if err != nil {
		return usageError{msg: err.Error()}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "exasim: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "exasim: memprofile: %v\n", err)
			}
		}()
	}

	cfg := experiments.Default()
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers
	if *metricsPath != "" {
		cfg.Obs = obs.NewRegistry()
	}

	for _, name := range expanded {
		start := time.Now()
		t, ch, err := exhibit(name, cfg, *trials, *patterns)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
		if *chart && ch != nil {
			fmt.Println()
			ch.Render(os.Stdout)
		}
		fmt.Printf("(%s regenerated in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := writeCSV(t, *csvDir, name); err != nil {
				return err
			}
		}
	}
	if *metricsPath != "" {
		if err := writeMetrics(cfg.Obs, *metricsPath); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
	}
	return nil
}

// writeMetrics dumps the run's registry: Prometheus text exposition by
// default, a JSON snapshot when the path ends in .json, stdout for "-".
func writeMetrics(r *obs.Registry, path string) error {
	var w *os.File
	if path == "-" {
		w = os.Stdout
	} else {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if strings.HasSuffix(path, ".json") {
		if err := r.WriteJSON(w); err != nil {
			return err
		}
	} else if err := r.WriteProm(w); err != nil {
		return err
	}
	if path != "-" {
		fmt.Printf("(metrics written to %s)\n", path)
		return w.Close()
	}
	return nil
}

// scalingChart draws a Figure 1/2/3 data set as grouped bars.
func scalingChart(res experiments.ScalingResult) *report.BarChart {
	c := report.NewBarChart("", "efficiency")
	c.Max = 1
	seen := map[float64]bool{}
	for _, p := range res.Points {
		if seen[p.Fraction] {
			continue
		}
		seen[p.Fraction] = true
		var bars []report.Bar
		for _, q := range res.Points {
			if q.Fraction == p.Fraction {
				bars = append(bars, report.Bar{
					Label: q.Technique.String(),
					Value: q.Efficiency.Mean,
					Err:   q.Efficiency.StdDev,
				})
			}
		}
		c.AddGroup(fmt.Sprintf("%g%% of the machine", 100*p.Fraction), bars...)
	}
	return c
}

// clusterChart draws a Figure 4-style data set as grouped bars.
func clusterChart(res experiments.ClusterResult) *report.BarChart {
	c := report.NewBarChart("", "% dropped")
	c.Max = 100
	seen := map[string]bool{}
	for _, cell := range res.Cells {
		key := cell.Scheduler.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		var bars []report.Bar
		for _, q := range res.Cells {
			if q.Scheduler == cell.Scheduler {
				bars = append(bars, report.Bar{
					Label: q.Technique.String(),
					Value: q.Dropped.Mean,
					Err:   q.Dropped.StdDev,
				})
			}
		}
		c.AddGroup(key, bars...)
	}
	return c
}

// exhibit resolves one exhibit name through the shared registry and builds
// its chart. The chart is non-nil for exhibits with a natural bar
// rendering.
func exhibit(name string, cfg experiments.Config, trials, patterns int) (*report.Table, *report.BarChart, error) {
	ex, ok := experiments.Lookup(name)
	if !ok {
		return nil, nil, fmt.Errorf("unknown exhibit %q", name)
	}
	t, res, err := ex.Run(cfg, experiments.Params{Trials: trials, Patterns: patterns})
	if err != nil {
		return nil, nil, err
	}
	switch ex.Chart {
	case experiments.ChartScaling:
		return t, scalingChart(res.(experiments.ScalingResult)), nil
	case experiments.ChartCluster:
		return t, clusterChart(res.(experiments.ClusterResult)), nil
	default:
		return t, nil, nil
	}
}

// writeCSV writes the exhibit's CSV companion file.
func writeCSV(t *report.Table, dir, name string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	fmt.Printf("(csv written to %s)\n\n", path)
	return f.Close()
}

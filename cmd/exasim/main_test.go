package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"exaresil/internal/experiments"
)

func TestExhibitDispatchKnowsEveryName(t *testing.T) {
	cfg := experiments.Default()
	for _, name := range []string{"table1", "table2"} {
		tb, _, err := exhibit(name, cfg, 1, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tb.Rows() == 0 {
			t.Errorf("%s produced an empty table", name)
		}
	}
	if _, _, err := exhibit("fig9", cfg, 1, 1); err == nil {
		t.Error("unknown exhibit accepted")
	}
}

func TestRunUnknownExhibit(t *testing.T) {
	if err := run([]string{"nonsense"}); err == nil {
		t.Error("unknown exhibit should error")
	}
}

// TestRunValidationIsUpfront: every flag-combination mistake is caught as a
// usageError (exit 2) before any simulation work starts.
func TestRunValidationIsUpfront(t *testing.T) {
	cases := []struct {
		name string
		argv []string
		want string
	}{
		{"unknown exhibit", []string{"fig9"}, "unknown exhibit"},
		{"unknown exhibit among valid", []string{"fig1", "fig9"}, "unknown exhibit"},
		{"zero trials", []string{"-trials", "0", "fig1"}, "-trials"},
		{"negative patterns", []string{"-patterns", "-3", "fig4"}, "-patterns"},
		{"negative workers", []string{"-workers", "-1", "fig1"}, "-workers"},
		{"bad metrics extension", []string{"-metrics", "out.csv", "fig1"}, "-metrics"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.argv)
			var ue usageError
			if !errors.As(err, &ue) {
				t.Fatalf("run(%v) = %v, want a usageError", tc.argv, err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) error %q, want it to mention %q", tc.argv, err, tc.want)
			}
		})
	}
	// Valid metrics spellings pass the same gate.
	for _, p := range []string{"-", "", "m.json", "m.prom", "m.txt"} {
		if !validMetricsPath(p) {
			t.Errorf("validMetricsPath(%q) = false, want true", p)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag should error")
	}
}

func TestRunTinyFigureWithCSVAndChart(t *testing.T) {
	dir := t.TempDir()
	// Redirect stdout to keep test output clean.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()

	if err := run([]string{"-trials", "2", "-chart", "-csv", dir, "fig1"}); err != nil {
		t.Fatalf("tiny fig1 run failed: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig1.csv"))
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if !strings.Contains(string(data), "Checkpoint Restart") {
		t.Error("csv missing technique column")
	}
}

func TestScalingChartShape(t *testing.T) {
	cfg := experiments.Default()
	_, res, err := experiments.ScalingSpec{Config: cfg, Trials: 2,
		Fractions: []float64{0.01, 0.25}}.Run()
	if err != nil {
		t.Fatal(err)
	}
	c := scalingChart(res)
	out := c.String()
	if !strings.Contains(out, "1% of the machine") || !strings.Contains(out, "25% of the machine") {
		t.Errorf("chart missing size groups:\n%s", out)
	}
	if !strings.Contains(out, "Parallel Recovery") {
		t.Error("chart missing technique bars")
	}
}

func TestClusterChartShape(t *testing.T) {
	cfg := experiments.Default()
	_, res, err := experiments.ClusterSpec{Config: cfg, Patterns: 1, Arrivals: 10}.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := clusterChart(res).String()
	for _, label := range []string{"FCFS", "Random", "Slack-Based", "Ideal"} {
		if !strings.Contains(out, label) {
			t.Errorf("cluster chart missing %s:\n%s", label, out)
		}
	}
}

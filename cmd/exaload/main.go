// Command exaload is the serving layer's workload tool: a temporal
// request generator, a trace recorder/replayer, and a saturation
// analyzer for exaserve and its mesh mode.
//
// Modes:
//
//	exaload gen    -profile "burst:base=2,peak=20,period=10,duty=0.2,dur=60" -out trace.jsonl
//	exaload run    -addr http://127.0.0.1:8080 -profile "constant:rate=5,dur=30" [-record out.jsonl]
//	exaload replay -addr http://127.0.0.1:8080 -trace trace.jsonl [-speed 2] [-record out.jsonl]
//	exaload sweep  -inproc [-csv report.csv]
//	exaload sweep  -addr http://127.0.0.1:8080 -rates 1,2,4,8 -step-dur 10 [-csv report.csv]
//
// gen writes a seed-deterministic arrival stream as a JSONL trace without
// touching any server. run generates and serves a stream open-loop
// against a live endpoint, reporting latency percentiles from client-side
// histograms. replay re-issues a recorded (or generated) trace verbatim
// or time-scaled. sweep steps the arrival rate across a grid, measures
// latency/throughput/429s/cache hit rate per step, detects the knee, and
// emits a capacity-planning report (CSV plus text summary); with -inproc
// the sweep runs against a deterministic in-process exaserve and is
// byte-identical under a seed — the configuration exacheck's golden mode
// pins. Exit status 2 marks usage errors, 1 operational failures.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"exaresil/internal/load"
	"exaresil/internal/obs"
	"exaresil/internal/serveclient"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Args[2:])
	case "run":
		err = runRun(ctx, os.Args[2:])
	case "replay":
		err = runReplay(ctx, os.Args[2:])
	case "sweep":
		err = runSweep(ctx, os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "exaload: unknown mode %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "exaload:", err)
		var ue usageError
		if ok := errorAs(err, &ue); ok {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// usageError marks bad invocations (exit 2, matching exasim).
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

func usagef(format string, args ...any) error {
	return usageError{fmt.Sprintf(format, args...)}
}

// errorAs is errors.As without importing errors twice in main's scope.
func errorAs(err error, target *usageError) bool {
	for err != nil {
		if ue, ok := err.(usageError); ok {
			*target = ue
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func usage() {
	fmt.Fprint(os.Stderr, `exaload — workload generator, trace replayer, and saturation analyzer

modes:
  gen     generate a seed-deterministic arrival trace (no server needed)
  run     drive a live exaserve/mesh from a rate profile, open-loop
  replay  re-issue a recorded trace against a live server
  sweep   find the knee: sweep arrival rate, report latency/429s/cache

run 'exaload <mode> -h' for each mode's flags.
`)
}

// genFlags are the flags gen/run share for shaping a stream.
type genFlags struct {
	profile *string
	process *string
	seed    *uint64
	zipfS   *float64
	vocab   *int
	trials  *int
}

func addGenFlags(fs *flag.FlagSet) genFlags {
	return genFlags{
		profile: fs.String("profile", "constant:rate=5,dur=30",
			"rate profile DSL: kind:key=val,... segments joined by ';' (kinds: constant, ramp, diurnal, burst)"),
		process: fs.String("process", load.ProcessPoisson, "arrival process: poisson or uniform"),
		seed:    fs.Uint64("seed", 1, "generator seed (equal seeds give byte-identical streams)"),
		zipfS:   fs.Float64("zipf-s", 1.1, "spec popularity exponent (0 = uniform popularity)"),
		vocab:   fs.Int("vocab", 64, "ranked spec vocabulary size"),
		trials:  fs.Int("trials", 2, "Monte-Carlo trials per vocabulary spec (higher = heavier jobs)"),
	}
}

func (g genFlags) genSpec() (load.GenSpec, error) {
	p, err := load.ParseProfile(*g.profile)
	if err != nil {
		return load.GenSpec{}, usagef("-profile: %v", err)
	}
	if *g.vocab < 1 {
		return load.GenSpec{}, usagef("-vocab must be at least 1, got %d", *g.vocab)
	}
	if *g.trials < 1 {
		return load.GenSpec{}, usagef("-trials must be at least 1, got %d", *g.trials)
	}
	return load.GenSpec{
		Seed:    *g.seed,
		Profile: p,
		Process: *g.process,
		Vocab:   load.TrialsVocab(*g.vocab, *g.trials),
		ZipfS:   *g.zipfS,
	}, nil
}

// runGen generates a stream and writes it as a trace.
func runGen(argv []string) error {
	fs := flag.NewFlagSet("exaload gen", flag.ExitOnError)
	g := addGenFlags(fs)
	out := fs.String("out", "", "trace output path (default stdout)")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return usagef("unexpected arguments %q", fs.Args())
	}
	gs, err := g.genSpec()
	if err != nil {
		return err
	}
	arrivals, err := load.Generate(gs)
	if err != nil {
		return err
	}
	trace := load.GeneratedTrace(arrivals, gs.Seed, "profile="+*g.profile)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := load.WriteTrace(w, trace); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "exaload: generated %d arrivals over %ss (profile %q, seed %d)\n",
		len(arrivals), strconv.FormatFloat(gs.Profile.Duration(), 'g', -1, 64), *g.profile, gs.Seed)
	return nil
}

// httpFlags configure a live target.
type httpFlags struct {
	addr  *string
	speed *float64
}

func addHTTPFlags(fs *flag.FlagSet) httpFlags {
	return httpFlags{
		addr:  fs.String("addr", "http://127.0.0.1:8080", "exaserve base URL (comma-separated endpoints fail over)"),
		speed: fs.Float64("speed", 1, "time compression: 2 replays offsets twice as fast"),
	}
}

func (h httpFlags) target(reg *obs.Registry) *load.HTTPTarget {
	return &load.HTTPTarget{
		Client: serveclient.New(*h.addr, serveclient.Options{}),
		Base:   strings.TrimRight(strings.Split(*h.addr, ",")[0], "/"),
		Speed:  *h.speed,
		Latency: reg.Histogram("exaload_client_latency_seconds",
			"client-side submit-to-terminal latency", obs.LatencyBuckets),
	}
}

// serveStream plays arrivals at a live target and reports the outcome
// tallies plus client-histogram percentiles.
func serveStream(ctx context.Context, target *load.HTTPTarget, arrivals []load.Arrival,
	seed uint64, note, record string) error {
	start := time.Now()
	samples, err := target.RunSchedule(ctx, arrivals)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	var ok, rejected, errs int
	for _, s := range samples {
		switch s.Class {
		case load.OutcomeOK:
			ok++
		case load.OutcomeRejected:
			rejected++
		default:
			errs++
		}
	}
	h := target.Latency
	fmt.Printf("exaload: %d arrivals in %s: %d ok, %d rejected, %d errors\n",
		len(samples), elapsed.Round(time.Millisecond), ok, rejected, errs)
	if h.Count() > 0 {
		fmt.Printf("exaload: client-side latency (histogram estimate): p50 %.3fs  p95 %.3fs  p99 %.3fs\n",
			load.HistQuantile(h, 0.50), load.HistQuantile(h, 0.95), load.HistQuantile(h, 0.99))
	}
	if c, err := target.Counters(); err == nil {
		fmt.Printf("exaload: server cache counters: %d hits, %d joined, %d misses; %d rejects\n",
			c.CacheHits, c.CacheJoined, c.CacheMisses, c.Rejected)
	}
	if record != "" {
		trace, err := load.RecordedTrace(arrivals, samples, seed, note)
		if err != nil {
			return err
		}
		f, err := os.Create(record)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := load.WriteTrace(f, trace); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "exaload: recorded %d events to %s\n", len(samples), record)
	}
	if errs > 0 {
		return fmt.Errorf("%d requests errored", errs)
	}
	return nil
}

// runRun generates a stream and serves it live.
func runRun(ctx context.Context, argv []string) error {
	fs := flag.NewFlagSet("exaload run", flag.ExitOnError)
	g := addGenFlags(fs)
	h := addHTTPFlags(fs)
	record := fs.String("record", "", "record the served stream as a trace at this path")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return usagef("unexpected arguments %q", fs.Args())
	}
	gs, err := g.genSpec()
	if err != nil {
		return err
	}
	arrivals, err := load.Generate(gs)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "exaload: serving %d arrivals over %ss against %s\n",
		len(arrivals), strconv.FormatFloat(gs.Profile.Duration(), 'g', -1, 64), *h.addr)
	return serveStream(ctx, h.target(obs.NewRegistry()), arrivals, gs.Seed, "profile="+*g.profile, *record)
}

// runReplay re-issues a trace.
func runReplay(ctx context.Context, argv []string) error {
	fs := flag.NewFlagSet("exaload replay", flag.ExitOnError)
	h := addHTTPFlags(fs)
	tracePath := fs.String("trace", "", "trace file to replay (required)")
	record := fs.String("record", "", "record the replayed stream's outcomes as a new trace")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return usagef("unexpected arguments %q", fs.Args())
	}
	if *tracePath == "" {
		return usagef("-trace is required")
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	trace, err := load.ReadTrace(f)
	f.Close()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "exaload: replaying %d events (seed %d, %q) at %gx against %s\n",
		len(trace.Events), trace.Seed, trace.Note, *h.speed, *h.addr)
	return serveStream(ctx, h.target(obs.NewRegistry()), trace.Arrivals(), trace.Seed,
		"replay of "+*tracePath, *record)
}

// runSweep is the saturation analyzer.
func runSweep(ctx context.Context, argv []string) error {
	fs := flag.NewFlagSet("exaload sweep", flag.ExitOnError)
	inproc := fs.Bool("inproc", false, "sweep a deterministic in-process exaserve instead of a live endpoint")
	addr := fs.String("addr", "http://127.0.0.1:8080", "exaserve base URL (live sweeps)")
	ratesFlag := fs.String("rates", "", "comma-separated offered-rate grid in req/s (default: the pinned golden grid)")
	stepDur := fs.Float64("step-dur", 0, "seconds per step (default: the pinned golden value)")
	seed := fs.Uint64("seed", 0, "sweep seed (default: the pinned golden seed)")
	process := fs.String("process", "", "arrival process: poisson or uniform (default: the pinned golden process)")
	zipfS := fs.Float64("zipf-s", -1, "popularity exponent (default: the pinned golden value)")
	vocab := fs.Int("vocab", 0, "vocabulary size (default: the pinned golden value)")
	maxP99 := fs.Float64("max-p99", -1, "p99 knee budget in seconds (0 disables; default: pinned)")
	maxReject := fs.Float64("max-reject", -1, "reject-rate knee budget as a fraction (0 disables; default: pinned)")
	csvPath := fs.String("csv", "", "write the report CSV here")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return usagef("unexpected arguments %q", fs.Args())
	}

	cfg := load.GoldenSweepConfig()
	if *ratesFlag != "" {
		cfg.Rates = nil
		for _, part := range strings.Split(*ratesFlag, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return usagef("-rates: %q is not a number", part)
			}
			cfg.Rates = append(cfg.Rates, v)
		}
	}
	if *stepDur > 0 {
		cfg.StepDur = *stepDur
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *process != "" {
		cfg.Process = *process
	}
	if *zipfS >= 0 {
		cfg.ZipfS = *zipfS
	}
	if *vocab > 0 {
		cfg.Vocab = load.DefaultVocab(*vocab)
	}
	if *maxP99 >= 0 {
		cfg.P99Budget = *maxP99
	}
	if *maxReject >= 0 {
		cfg.RejectBudget = *maxReject
	}

	var target load.Target
	if *inproc {
		t, err := load.NewInproc(load.GoldenInprocConfig())
		if err != nil {
			return err
		}
		defer t.Close()
		target = t
	} else {
		target = (httpFlags{addr: addr, speed: new(float64)}).target(obs.NewRegistry())
	}

	rep, err := load.Sweep(ctx, target, cfg)
	if err != nil {
		return err
	}
	t := rep.Table()
	t.Render(os.Stdout)
	fmt.Println()
	fmt.Print(rep.Summary())
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.WriteCSV(f); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "exaload: report CSV written to %s\n", *csvPath)
	}
	return nil
}

// Command exatrace simulates one application execution under a resilience
// technique and prints its event timeline: checkpoints, failures,
// restores, and completion — the raw material behind every aggregate
// number the studies report.
//
// Usage:
//
//	exatrace [-tech pr] [-class C64] [-fraction 0.25] [-steps 1440]
//	         [-mtbf-years 10] [-seed 1] [-limit 40] [-jsonl out.jsonl]
package main

import (
	"flag"
	"fmt"
	"os"

	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/resilience"
	"exaresil/internal/rng"
	"exaresil/internal/trace"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "exatrace: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("exatrace", flag.ContinueOnError)
	techName := fs.String("tech", "pr", "technique: cr, ml, pr, red1.5, red2.0")
	className := fs.String("class", "C64", "application class (Table I name)")
	fraction := fs.Float64("fraction", 0.25, "fraction of the machine")
	steps := fs.Int("steps", 1440, "application time steps (minutes of work)")
	mtbfYears := fs.Float64("mtbf-years", 10, "per-node MTBF in years")
	seed := fs.Uint64("seed", 1, "random seed")
	limit := fs.Int("limit", 40, "max timeline lines (0 = unlimited)")
	jsonl := fs.String("jsonl", "", "also write the full trace as JSON Lines to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	tech, err := core.ParseTechnique(*techName)
	if err != nil {
		return err
	}
	class, ok := workload.ClassByName(*className)
	if !ok {
		return fmt.Errorf("unknown class %q", *className)
	}
	if *mtbfYears <= 0 {
		return fmt.Errorf("mtbf-years must be positive")
	}

	cfg := machine.Exascale().WithMTBF(units.Duration(*mtbfYears) * units.Year)
	model, err := failures.NewModel(cfg.MTBF, failures.DefaultSeverityPMF())
	if err != nil {
		return err
	}
	app := workload.App{
		Class:     class,
		TimeSteps: *steps,
		Nodes:     cfg.NodesForFraction(*fraction),
	}
	x, err := resilience.New(tech, app, cfg, model, resilience.DefaultConfig())
	if err != nil {
		return err
	}
	if ok, reason := x.Viable(); !ok {
		return fmt.Errorf("%v cannot run %s at %.0f%%: %s", tech, class.Name, 100**fraction, reason)
	}

	rec := &trace.Recorder{}
	resilience.Observe(x, rec.Observe)
	horizon := units.Duration(100 * float64(app.Baseline()))
	res := x.Run(0, horizon, rng.New(*seed))

	fmt.Printf("%v executing %v\n\n", tech, app)
	if err := rec.WriteTimeline(os.Stdout, *limit); err != nil {
		return err
	}
	fmt.Printf("\n%v\n%v\n", rec.Summarize(), res)

	if *jsonl != "" {
		f, err := os.Create(*jsonl)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteJSONL(f); err != nil {
			return err
		}
		fmt.Printf("(full trace written to %s)\n", *jsonl)
		return f.Close()
	}
	return nil
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func silently(t *testing.T, f func() error) error {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	return f()
}

func TestRunDefaults(t *testing.T) {
	if err := silently(t, func() error {
		return run([]string{"-steps", "120", "-fraction", "0.05"})
	}); err != nil {
		t.Fatalf("default trace failed: %v", err)
	}
}

func TestRunWritesJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	err := silently(t, func() error {
		return run([]string{"-tech", "cr", "-steps", "120", "-fraction", "0.05", "-jsonl", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kind":"start"`) {
		t.Errorf("jsonl missing start event: %.200s", data)
	}
	if !strings.Contains(string(data), `"kind":"complete"`) {
		t.Error("jsonl missing completion event")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	cases := [][]string{
		{"-tech", "quantum"},
		{"-class", "Z99"},
		{"-mtbf-years", "0"},
		{"-bogus"},
	}
	for _, args := range cases {
		if err := silently(t, func() error { return run(args) }); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunRejectsNonViable(t *testing.T) {
	// Full redundancy at 75% of the machine cannot be placed: the tool
	// should explain rather than trace nothing.
	err := silently(t, func() error {
		return run([]string{"-tech", "red2.0", "-fraction", "0.75", "-steps", "60"})
	})
	if err == nil || !strings.Contains(err.Error(), "cannot run") {
		t.Errorf("expected a cannot-run error, got %v", err)
	}
}

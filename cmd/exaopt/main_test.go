package main

import (
	"os"
	"testing"
)

func silently(t *testing.T, f func() error) error {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	return f()
}

func TestRunDefaults(t *testing.T) {
	if err := silently(t, func() error { return run(nil) }); err != nil {
		t.Fatalf("default run failed: %v", err)
	}
}

func TestRunFullMachineLowMTBF(t *testing.T) {
	// The regime where the Daly period collapses must render, not error.
	err := silently(t, func() error {
		return run([]string{"-class", "D64", "-fraction", "1.0", "-mtbf-years", "1"})
	})
	if err != nil {
		t.Fatalf("collapse-regime run failed: %v", err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	cases := [][]string{
		{"-class", "Z99"},
		{"-fraction", "0"},
		{"-fraction", "1.5"},
		{"-mtbf-years", "-1"},
		{"-bogus"},
	}
	for _, args := range cases {
		if err := silently(t, func() error { return run(args) }); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

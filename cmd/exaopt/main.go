// Command exaopt explores checkpoint costs and optimal checkpoint
// schedules for an application on the simulated machine: the one-way
// cost equations (Eqs. 3, 5, 6), Young's and Daly's single-level optimal
// periods (Eq. 4), and the optimized three-level multilevel schedule.
//
// Usage:
//
//	exaopt [-class C64] [-fraction 0.25] [-mtbf-years 10]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/report"
	"exaresil/internal/resilience"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "exaopt: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("exaopt", flag.ContinueOnError)
	className := fs.String("class", "C64", "application class (Table I name)")
	fraction := fs.Float64("fraction", 0.25, "fraction of the machine the application occupies")
	mtbfYears := fs.Float64("mtbf-years", 10, "per-node MTBF in years")
	if err := fs.Parse(args); err != nil {
		return err
	}

	class, ok := workload.ClassByName(*className)
	if !ok {
		return fmt.Errorf("unknown class %q (want one of A32..D64)", *className)
	}
	if *fraction <= 0 || *fraction > 1 {
		return fmt.Errorf("fraction %v outside (0, 1]", *fraction)
	}
	if *mtbfYears <= 0 {
		return fmt.Errorf("mtbf-years must be positive")
	}

	cfg := machine.Exascale().WithMTBF(units.Duration(*mtbfYears) * units.Year)
	model, err := failures.NewModel(cfg.MTBF, failures.DefaultSeverityPMF())
	if err != nil {
		return err
	}
	app := workload.App{
		Class:     class,
		TimeSteps: 1440,
		Nodes:     cfg.NodesForFraction(*fraction),
	}
	costs := resilience.ComputeCosts(app, cfg)
	rate := model.Rate(app.Nodes)

	t := report.New(fmt.Sprintf("Checkpoint planning for %s on %d nodes (%s MTBF %.3g y)",
		class.Name, app.Nodes, cfg.Name, *mtbfYears),
		"quantity", "value")
	t.AddRow("application failure rate lambda_a", rate.String())
	t.AddRow("mean time between app failures", rate.MeanInterval().String())
	t.AddRow("PFS checkpoint cost (Eq. 3)", costs.PFS.String())
	t.AddRow("L1 (local RAM) checkpoint cost (Eq. 5)", costs.L1.String())
	t.AddRow("L2 (partner RAM) checkpoint cost (Eq. 6)", costs.L2.String())

	young := resilience.YoungPeriod(costs.PFS, rate)
	t.AddRow("Young period for PFS checkpoints", young.String())
	if tau, ok := resilience.DalyPeriod(costs.PFS, rate); ok {
		t.AddRow("Daly period for PFS checkpoints (Eq. 4)", tau.String())
		overhead := float64(costs.PFS) / float64(tau+costs.PFS)
		t.AddRow("PFS checkpointing overhead bound", fmt.Sprintf("%.1f%%", 100*overhead))
	} else {
		t.AddRow("Daly period for PFS checkpoints (Eq. 4)", "non-positive: CR cannot run")
	}
	if tau, ok := resilience.DalyPeriod(costs.L2, rate); ok {
		t.AddRow("Daly period for in-memory checkpoints", tau.String())
	}

	sched, err := resilience.OptimizeMultilevel(costs,
		levelRates(model, app.Nodes), resilience.DefaultMultilevelConfig())
	if err != nil {
		t.AddRow("multilevel schedule", fmt.Sprintf("infeasible: %v", err))
	} else {
		t.AddRow("multilevel base interval", sched.Interval.String())
		t.AddRow("multilevel pattern", fmt.Sprintf("L2 every %d, L3 every %d checkpoints",
			sched.L1PerL2, sched.L1PerL2*sched.L2PerL3))
		stretch := sched.ExpectedStretch(costs, levelRates(model, app.Nodes))
		if !math.IsInf(stretch, 1) {
			t.AddRow("multilevel expected stretch", fmt.Sprintf("%.4f", stretch))
		}
	}
	t.Render(os.Stdout)
	return nil
}

// levelRates splits the application failure rate by severity level.
func levelRates(model *failures.Model, nodes int) [3]units.Rate {
	pmf := model.PMF()
	total := 0.0
	for _, w := range pmf {
		total += w
	}
	var out [3]units.Rate
	for i, w := range pmf {
		out[i] = units.Rate(float64(model.Rate(nodes)) * w / total)
	}
	return out
}

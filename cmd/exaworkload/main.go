// Command exaworkload generates and summarizes the arrival patterns used
// by the cluster studies: application mix, size distribution, offered
// load, and deadline tightness.
//
// Usage:
//
//	exaworkload [-arrivals 100] [-bias unbiased|himem|hicomm|large]
//	            [-fill] [-seed 1] [-list] [-save pattern.json]
//	            [-load pattern.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"exaresil/internal/machine"
	"exaresil/internal/report"
	"exaresil/internal/rng"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "exaworkload: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("exaworkload", flag.ContinueOnError)
	arrivals := fs.Int("arrivals", 100, "applications arriving after time zero")
	biasName := fs.String("bias", "unbiased", "pattern population: unbiased, himem, hicomm, large")
	fill := fs.Bool("fill", false, "fill the machine with applications at time zero")
	seed := fs.Uint64("seed", 1, "pattern random seed")
	list := fs.Bool("list", false, "list every generated application")
	save := fs.String("save", "", "write the generated pattern as JSON to this file")
	load := fs.String("load", "", "summarize a previously saved pattern instead of generating one")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var bias workload.Bias
	switch *biasName {
	case "unbiased":
		bias = workload.Unbiased
	case "himem":
		bias = workload.HighMemory
	case "hicomm":
		bias = workload.HighComm
	case "large":
		bias = workload.LargeApps
	default:
		return fmt.Errorf("unknown bias %q", *biasName)
	}

	cfg := machine.Exascale()
	var pattern workload.Pattern
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			return err
		}
		defer f.Close()
		pattern, err = workload.ReadPattern(f)
		if err != nil {
			return err
		}
	} else {
		pattern = workload.PatternSpec{
			Arrivals:   *arrivals,
			Bias:       bias,
			FillSystem: *fill,
		}.Generate(cfg, rng.New(*seed))
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := workload.WritePattern(f, pattern); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("(pattern written to %s)\n", *save)
	}

	if *list {
		t := report.New(fmt.Sprintf("Arrival pattern (%s, seed %d)", bias, *seed),
			"id", "class", "nodes", "baseline", "arrival", "deadline")
		for _, a := range pattern.Apps {
			t.AddRow(report.I(a.ID), a.Class.Name, report.I(a.Nodes),
				a.Baseline().String(), a.Arrival.String(), a.Deadline.String())
		}
		t.Render(os.Stdout)
		return nil
	}

	classCount := map[string]int{}
	var nodeTotal, stepTotal int
	var loadMachineMinutes float64
	var lastArrival units.Duration
	for _, a := range pattern.Apps {
		classCount[a.Class.Name]++
		nodeTotal += a.Nodes
		stepTotal += a.TimeSteps
		loadMachineMinutes += float64(a.Nodes) * float64(a.Baseline())
		if a.Arrival > lastArrival {
			lastArrival = a.Arrival
		}
	}

	t := report.New(fmt.Sprintf("Arrival pattern summary (%s, seed %d)", bias, *seed),
		"metric", "value")
	t.AddRow("applications", report.I(len(pattern.Apps)))
	t.AddRow("of which initial fill", report.I(pattern.InitialFill))
	t.AddRow("mean nodes per app", report.F(float64(nodeTotal)/float64(len(pattern.Apps))))
	t.AddRow("mean baseline", (units.Duration(stepTotal) * units.Minute / units.Duration(len(pattern.Apps))).String())
	t.AddRow("last arrival", lastArrival.String())
	capacity := float64(cfg.Nodes) * float64(lastArrival)
	if capacity > 0 {
		t.AddRow("offered load vs capacity (to last arrival)",
			fmt.Sprintf("%.2fx", loadMachineMinutes/capacity))
	}
	for _, c := range workload.Classes() {
		t.AddRow("class "+c.Name, report.I(classCount[c.Name]))
	}
	t.Render(os.Stdout)
	return nil
}

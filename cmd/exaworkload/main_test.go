package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func silently(t *testing.T, f func() error) error {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	return f()
}

func TestRunSummary(t *testing.T) {
	for _, bias := range []string{"unbiased", "himem", "hicomm", "large"} {
		if err := silently(t, func() error {
			return run([]string{"-arrivals", "10", "-bias", bias})
		}); err != nil {
			t.Fatalf("bias %s failed: %v", bias, err)
		}
	}
}

func TestRunList(t *testing.T) {
	if err := silently(t, func() error {
		return run([]string{"-arrivals", "5", "-list"})
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pattern.json")
	if err := silently(t, func() error {
		return run([]string{"-arrivals", "8", "-fill", "-save", path})
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"version"`) {
		t.Error("saved pattern missing version")
	}
	if err := silently(t, func() error {
		return run([]string{"-load", path})
	}); err != nil {
		t.Fatalf("loading saved pattern failed: %v", err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	cases := [][]string{
		{"-bias", "sideways"},
		{"-load", "/nonexistent/pattern.json"},
		{"-bogus"},
	}
	for _, args := range cases {
		if err := silently(t, func() error { return run(args) }); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

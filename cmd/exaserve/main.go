// Command exaserve runs the simulation service: the exasim exhibits behind
// an HTTP job API with a bounded worker pool, single-flight result cache,
// and backpressure (429 + Retry-After when the queue is full).
//
// Submit, poll, fetch:
//
//	exaserve -addr 127.0.0.1:8080 &
//	curl -s -d '{"exhibit":"fig4","patterns":6}' localhost:8080/v1/jobs
//	curl -s localhost:8080/v1/jobs/j00000001
//	curl -s localhost:8080/v1/jobs/j00000001/result
//
// SIGINT/SIGTERM drains: admission stops (503), every queued and running
// job finishes, then the listener closes.
//
// With -autoscale the worker pool is elastic: it grows toward -max-workers
// when the smoothed queue-pressure signal stays above -autoscale-up and
// shrinks toward -min-workers when it stays below -autoscale-down, never
// killing in-flight jobs (retiring workers drain first). Decisions and
// signals are exported as exaresil_serve_autoscale_* metrics; see
// scripts/autoscale_soak.sh for the elasticity proof.
//
// The -chaos flag arms the internal/chaos fault injector: seeded random
// latency, synthetic 500s, connection resets, and mid-job worker crashes,
// tuned by the -chaos-* flags and counted in
// exaresil_chaos_injected_total{fault=...}. Crashed jobs fail but leave a
// checkpoint snapshot behind; resubmitting the same spec resumes from it
// (see DESIGN.md §10 and scripts/chaos_soak.sh).
//
// With -replicas N (N > 1) the same API is served by an internal/mesh
// coordinator instead of a single server: submissions pass an admission
// policy (-admission always|reject-all|token-bucket), a routing policy
// (-routing affinity|least-loaded|random2), and land on one of N embedded
// replicas. Replica death is survivable — heartbeat monitoring re-routes a
// dead replica's jobs to survivors with their checkpoint snapshots carried
// along (DESIGN.md §12). -mesh-kill-interval arms a kill/revive chaos loop
// that exercises exactly that path (see scripts/mesh_soak.sh).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"exaresil/internal/chaos"
	"exaresil/internal/experiments"
	"exaresil/internal/mesh"
	"exaresil/internal/obs"
	"exaresil/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "exaserve:", err)
		os.Exit(1)
	}
}

func run(argv []string) error {
	fs := flag.NewFlagSet("exaserve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	workers := fs.Int("workers", defaultWorkers(), "worker pool width (concurrent experiment runs)")
	queue := fs.Int("queue", 0, "total queued-job slots across workers (0 = 2x workers)")
	cacheSize := fs.Int("cache", 128, "result cache capacity (finished results)")
	storeSize := fs.Int("store", 1024, "job store capacity (oldest finished jobs age out)")
	jobTimeout := fs.Duration("job-timeout", 0, "per-job execution timeout (0 = none)")
	drainTimeout := fs.Duration("drain-timeout", 60*time.Second, "max time to finish in-flight jobs on shutdown")
	simWorkers := fs.Int("sim-workers", 1, "simulation workers inside each job (results are identical at any width)")
	seed := fs.Uint64("seed", 0, "base experiment seed override (0 = paper default; per-spec seeds still apply)")
	snapshots := fs.Int("snapshots", 0, "checkpoint snapshots retained for interrupted jobs (0 = 64)")
	chaosOn := fs.Bool("chaos", false, "arm the fault injector (see the chaos-* flags)")
	chaosSeed := fs.Uint64("chaos-seed", 1, "chaos decision-stream seed")
	chaosLatencyRate := fs.Float64("chaos-latency-rate", 0.1, "fraction of requests delayed")
	chaosLatency := fs.Duration("chaos-latency", 50*time.Millisecond, "injected request delay")
	chaosErrorRate := fs.Float64("chaos-error-rate", 0.05, "fraction of requests answered with a synthetic 500")
	chaosResetRate := fs.Float64("chaos-reset-rate", 0.05, "fraction of requests whose connection is reset")
	chaosCrashRate := fs.Float64("chaos-crash-rate", 0.2, "fraction of job executions crashed mid-run")
	chaosCrashCells := fs.Int("chaos-crash-cells", 3, "max grid cells a crashed execution completes first")
	autoscale := fs.Bool("autoscale", false, "grow/shrink the worker pool with load (see the autoscale-* and min/max-workers flags)")
	minWorkers := fs.Int("min-workers", 1, "autoscaler pool floor")
	maxWorkers := fs.Int("max-workers", 0, "autoscaler pool ceiling (0 = 4x floor)")
	autoInterval := fs.Duration("autoscale-interval", time.Second, "autoscaler evaluation period")
	autoUp := fs.Float64("autoscale-up", 1.5, "scale up above this smoothed queued-jobs-per-worker signal")
	autoDown := fs.Float64("autoscale-down", 0.25, "scale down below this smoothed queued-jobs-per-worker signal")
	autoCooldown := fs.Duration("autoscale-cooldown", 0, "minimum gap between scaling decisions (0 = 3x interval)")
	replicas := fs.Int("replicas", 1, "embedded replica count (>1 serves through the mesh coordinator)")
	routing := fs.String("routing", "affinity", "mesh routing policy: affinity, least-loaded, or random2")
	admission := fs.String("admission", "always", "mesh admission policy: always, reject-all, or token-bucket")
	admitRate := fs.Float64("admit-rate", 50, "token-bucket refill rate (submissions/s)")
	admitBurst := fs.Int("admit-burst", 100, "token-bucket burst capacity")
	hbInterval := fs.Duration("heartbeat-interval", 100*time.Millisecond, "replica heartbeat period")
	hbTimeout := fs.Duration("heartbeat-timeout", 0, "stale-heartbeat threshold before failover (0 = 5x interval)")
	meshKill := fs.Duration("mesh-kill-interval", 0, "kill-and-revive one replica this often (0 = off; needs -replicas > 1)")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}

	reg := obs.NewRegistry()
	ecfg := experiments.Default()
	if *seed != 0 {
		ecfg.Seed = *seed
	}
	ecfg.Workers = *simWorkers

	var inj *chaos.Injector
	if *chaosOn {
		var err error
		inj, err = chaos.New(chaos.Config{
			Seed:        *chaosSeed,
			LatencyRate: *chaosLatencyRate,
			Latency:     *chaosLatency,
			ErrorRate:   *chaosErrorRate,
			ResetRate:   *chaosResetRate,
			CrashRate:   *chaosCrashRate,
			CrashCells:  *chaosCrashCells,
		}, reg)
		if err != nil {
			return err
		}
	}

	scfg := serve.Config{
		Experiments:  ecfg,
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheSize:    *cacheSize,
		StoreSize:    *storeSize,
		JobTimeout:   *jobTimeout,
		SnapshotSize: *snapshots,
		Obs:          reg,
	}
	if inj != nil {
		scfg.CrashHook = inj.Crash
	}
	if *autoscale {
		scfg.Autoscale = &serve.AutoscaleConfig{
			Min:           *minWorkers,
			Max:           *maxWorkers,
			Interval:      *autoInterval,
			UpThreshold:   *autoUp,
			DownThreshold: *autoDown,
			Cooldown:      *autoCooldown,
		}
	} else if *minWorkers != 1 || *maxWorkers != 0 {
		return fmt.Errorf("-min-workers/-max-workers need -autoscale")
	}

	// One server or a mesh of them behind the same API; drain is the only
	// lifecycle difference the shutdown path sees.
	var handler http.Handler
	var drain func(context.Context) error
	if *replicas > 1 {
		adm, err := mesh.ParseAdmission(*admission, *admitRate, *admitBurst)
		if err != nil {
			return err
		}
		rtr, err := mesh.ParseRouter(*routing, *replicas, int64(*chaosSeed))
		if err != nil {
			return err
		}
		coord, err := mesh.New(mesh.Config{
			Replicas:          *replicas,
			Serve:             scfg,
			Admission:         adm,
			Router:            rtr,
			HeartbeatInterval: *hbInterval,
			HeartbeatTimeout:  *hbTimeout,
			Obs:               reg,
		})
		if err != nil {
			return err
		}
		handler = coord.Handler()
		drain = coord.Drain
		log.Printf("exaserve: mesh of %d replicas (%s routing, %s admission)", *replicas, rtr.Name(), adm.Name())
		if *meshKill > 0 {
			timeout := *hbTimeout
			if timeout <= 0 {
				timeout = 5 * *hbInterval
			}
			go meshKillLoop(coord, *meshKill, timeout+2**hbInterval)
		}
	} else {
		if *meshKill > 0 {
			return fmt.Errorf("-mesh-kill-interval needs -replicas > 1")
		}
		srv, err := serve.New(scfg)
		if err != nil {
			return err
		}
		handler = srv.Handler()
		drain = srv.Drain
	}
	if inj != nil {
		handler = inj.Middleware(handler)
		log.Printf("exaserve: chaos armed (seed %d: latency %.0f%%/%s, error %.0f%%, reset %.0f%%, crash %.0f%% after <=%d cells)",
			*chaosSeed, 100**chaosLatencyRate, *chaosLatency, 100**chaosErrorRate, 100**chaosResetRate,
			100**chaosCrashRate, *chaosCrashCells)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: handler}
	log.Printf("exaserve: listening on http://%s (%d workers, %d queue slots)",
		ln.Addr(), *workers, max(*queue, 2**workers))
	if *autoscale {
		maxW := *maxWorkers
		if maxW <= 0 {
			maxW = 4 * max(*minWorkers, 1)
		}
		log.Printf("exaserve: autoscaler armed (%d-%d workers, every %s, up>%.2f down<%.2f)",
			*minWorkers, maxW, *autoInterval, *autoUp, *autoDown)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case sig := <-sigc:
		log.Printf("exaserve: %s received, draining in-flight jobs", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := drain(ctx); err != nil {
		log.Printf("exaserve: drain: %v", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Printf("exaserve: drained, goodbye")
	return nil
}

// meshKillLoop is the mesh-level fault injector: every interval it kills
// one live replica (round-robin), waits out the failure-detection window,
// and revives it. The last live replica is never killed — the loop
// exercises failover, not total outage.
func meshKillLoop(coord *mesh.Coordinator, every, detect time.Duration) {
	next := 0
	for {
		time.Sleep(every)
		target := next % coord.Replicas()
		next++
		live := 0
		for i := 0; i < coord.Replicas(); i++ {
			if coord.Alive(i) {
				live++
			}
		}
		if live <= 1 || !coord.Alive(target) {
			continue
		}
		log.Printf("exaserve: mesh chaos: killing replica %d", target)
		if err := coord.Kill(target); err != nil {
			log.Printf("exaserve: mesh chaos: kill %d: %v", target, err)
			continue
		}
		time.Sleep(detect)
		if err := coord.Revive(target); err != nil {
			log.Printf("exaserve: mesh chaos: revive %d: %v", target, err)
			continue
		}
		log.Printf("exaserve: mesh chaos: revived replica %d", target)
	}
}

// defaultWorkers sizes the pool to the host without oversubscribing small
// containers.
func defaultWorkers() int {
	n := runtime.NumCPU() / 2
	if n < 1 {
		n = 1
	}
	if n > 8 {
		n = 8
	}
	return n
}

// Command exaserve runs the simulation service: the exasim exhibits behind
// an HTTP job API with a bounded worker pool, single-flight result cache,
// and backpressure (429 + Retry-After when the queue is full).
//
// Submit, poll, fetch:
//
//	exaserve -addr 127.0.0.1:8080 &
//	curl -s -d '{"exhibit":"fig4","patterns":6}' localhost:8080/v1/jobs
//	curl -s localhost:8080/v1/jobs/j00000001
//	curl -s localhost:8080/v1/jobs/j00000001/result
//
// SIGINT/SIGTERM drains: admission stops (503), every queued and running
// job finishes, then the listener closes.
//
// The -chaos flag arms the internal/chaos fault injector: seeded random
// latency, synthetic 500s, connection resets, and mid-job worker crashes,
// tuned by the -chaos-* flags and counted in
// exaresil_chaos_injected_total{fault=...}. Crashed jobs fail but leave a
// checkpoint snapshot behind; resubmitting the same spec resumes from it
// (see DESIGN.md §10 and scripts/chaos_soak.sh).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"exaresil/internal/chaos"
	"exaresil/internal/experiments"
	"exaresil/internal/obs"
	"exaresil/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "exaserve:", err)
		os.Exit(1)
	}
}

func run(argv []string) error {
	fs := flag.NewFlagSet("exaserve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	workers := fs.Int("workers", defaultWorkers(), "worker pool width (concurrent experiment runs)")
	queue := fs.Int("queue", 0, "total queued-job slots across workers (0 = 2x workers)")
	cacheSize := fs.Int("cache", 128, "result cache capacity (finished results)")
	storeSize := fs.Int("store", 1024, "job store capacity (oldest finished jobs age out)")
	jobTimeout := fs.Duration("job-timeout", 0, "per-job execution timeout (0 = none)")
	drainTimeout := fs.Duration("drain-timeout", 60*time.Second, "max time to finish in-flight jobs on shutdown")
	simWorkers := fs.Int("sim-workers", 1, "simulation workers inside each job (results are identical at any width)")
	seed := fs.Uint64("seed", 0, "base experiment seed override (0 = paper default; per-spec seeds still apply)")
	snapshots := fs.Int("snapshots", 0, "checkpoint snapshots retained for interrupted jobs (0 = 64)")
	chaosOn := fs.Bool("chaos", false, "arm the fault injector (see the chaos-* flags)")
	chaosSeed := fs.Uint64("chaos-seed", 1, "chaos decision-stream seed")
	chaosLatencyRate := fs.Float64("chaos-latency-rate", 0.1, "fraction of requests delayed")
	chaosLatency := fs.Duration("chaos-latency", 50*time.Millisecond, "injected request delay")
	chaosErrorRate := fs.Float64("chaos-error-rate", 0.05, "fraction of requests answered with a synthetic 500")
	chaosResetRate := fs.Float64("chaos-reset-rate", 0.05, "fraction of requests whose connection is reset")
	chaosCrashRate := fs.Float64("chaos-crash-rate", 0.2, "fraction of job executions crashed mid-run")
	chaosCrashCells := fs.Int("chaos-crash-cells", 3, "max grid cells a crashed execution completes first")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}

	reg := obs.NewRegistry()
	ecfg := experiments.Default()
	if *seed != 0 {
		ecfg.Seed = *seed
	}
	ecfg.Workers = *simWorkers

	var inj *chaos.Injector
	if *chaosOn {
		var err error
		inj, err = chaos.New(chaos.Config{
			Seed:        *chaosSeed,
			LatencyRate: *chaosLatencyRate,
			Latency:     *chaosLatency,
			ErrorRate:   *chaosErrorRate,
			ResetRate:   *chaosResetRate,
			CrashRate:   *chaosCrashRate,
			CrashCells:  *chaosCrashCells,
		}, reg)
		if err != nil {
			return err
		}
	}

	scfg := serve.Config{
		Experiments:  ecfg,
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheSize:    *cacheSize,
		StoreSize:    *storeSize,
		JobTimeout:   *jobTimeout,
		SnapshotSize: *snapshots,
		Obs:          reg,
	}
	if inj != nil {
		scfg.CrashHook = inj.Crash
	}
	srv, err := serve.New(scfg)
	if err != nil {
		return err
	}

	handler := http.Handler(srv.Handler())
	if inj != nil {
		handler = inj.Middleware(handler)
		log.Printf("exaserve: chaos armed (seed %d: latency %.0f%%/%s, error %.0f%%, reset %.0f%%, crash %.0f%% after <=%d cells)",
			*chaosSeed, 100**chaosLatencyRate, *chaosLatency, 100**chaosErrorRate, 100**chaosResetRate,
			100**chaosCrashRate, *chaosCrashCells)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: handler}
	log.Printf("exaserve: listening on http://%s (%d workers, %d queue slots)",
		ln.Addr(), *workers, max(*queue, 2**workers))

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case sig := <-sigc:
		log.Printf("exaserve: %s received, draining in-flight jobs", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("exaserve: drain: %v", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Printf("exaserve: drained, goodbye")
	return nil
}

// defaultWorkers sizes the pool to the host without oversubscribing small
// containers.
func defaultWorkers() int {
	n := runtime.NumCPU() / 2
	if n < 1 {
		n = 1
	}
	if n > 8 {
		n = 8
	}
	return n
}

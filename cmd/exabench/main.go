// Command exabench runs the repository's exhibit benchmarks through
// testing.Benchmark and writes a machine-readable summary so performance
// regressions can be tracked between commits without parsing `go test
// -bench` text output.
//
// Usage:
//
//	exabench [flags]
//
// Flags:
//
//	-out FILE   where to write the JSON summary (default BENCH_results.json)
//	-run NAME   run only benchmarks whose name contains NAME
//	-list       print the benchmark names and exit
//
// Each entry reports ns/op, bytes/op, and allocs/op for one exhibit at
// the same reduced statistical scale as the root package's bench_test.go
// (benchmarks measure harness cost, not paper numbers). The JSON schema:
//
//	{
//	  "go_version": "go1.24.x",
//	  "gomaxprocs": 8,
//	  "results": [
//	    {"name": "fig1", "iterations": 18, "ns_per_op": 6.1e7,
//	     "bytes_per_op": 29000000, "allocs_per_op": 700000},
//	    ...
//	  ]
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"exaresil"
	"exaresil/internal/experiments"
	"exaresil/internal/obs"
	"exaresil/internal/resilience"
	"exaresil/internal/rng"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// benchResult is one benchmark's summary line.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchReport is the file-level schema.
type benchReport struct {
	GoVersion  string        `json:"go_version"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Results    []benchResult `json:"results"`
}

// bench names one exhibit benchmark.
type bench struct {
	name string
	fn   func(b *testing.B)
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "exabench: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("exabench", flag.ContinueOnError)
	out := fs.String("out", "BENCH_results.json", "output JSON file")
	match := fs.String("run", "", "run only benchmarks whose name contains this substring")
	list := fs.Bool("list", false, "list benchmark names and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	benches := exhibitBenches()
	if *list {
		for _, b := range benches {
			fmt.Println(b.name)
		}
		return nil
	}

	report := benchReport{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, b := range benches {
		if *match != "" && !strings.Contains(b.name, *match) {
			continue
		}
		fmt.Fprintf(os.Stderr, "exabench: running %s...\n", b.name)
		r := testing.Benchmark(b.fn)
		res := benchResult{
			Name:        b.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		report.Results = append(report.Results, res)
		fmt.Printf("%-24s %12d ns/op %12d B/op %10d allocs/op\n",
			b.name, int64(res.NsPerOp), res.BytesPerOp, res.AllocsPerOp)
	}
	if len(report.Results) == 0 {
		return fmt.Errorf("no benchmarks matched %q", *match)
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "exabench: wrote %s\n", *out)
	return f.Close()
}

// exhibitBenches mirrors the root package's bench_test.go scales so the
// JSON numbers are comparable with `go test -bench` runs.
func exhibitBenches() []bench {
	return []bench{
		{"fig1", func(b *testing.B) { benchScaling(b, workload.A32, 0) }},
		{"fig2", func(b *testing.B) { benchScaling(b, workload.D64, 0) }},
		{"fig3", func(b *testing.B) {
			benchScaling(b, workload.D64, units.Duration(2.5)*units.Year)
		}},
		{"fig4", benchFig4},
		{"fig4_metrics", benchFig4Metrics},
		{"fig5", benchFig5},
		{"cluster_run", benchClusterRun},
		{"executor_run", benchExecutorRun},
		{"multilevel_optimizer", benchMultilevelOptimizer},
	}
}

func benchScaling(b *testing.B, class workload.Class, mtbf units.Duration) {
	cfg := experiments.Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.ScalingSpec{
			Config: cfg,
			Class:  class,
			MTBF:   mtbf,
			Trials: 10,
		}.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) == 0 {
			b.Fatal("no data points")
		}
	}
}

func benchFig4(b *testing.B) {
	cfg := experiments.Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.ClusterSpec{
			Config:   cfg,
			Patterns: 2,
			Arrivals: 30,
		}.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Cells) != 12 {
			b.Fatalf("want 12 cells, got %d", len(res.Cells))
		}
	}
}

// benchFig4Metrics is benchFig4 with an obs registry attached: the delta
// against fig4 is the enabled-metrics overhead, and fig4 itself (nil
// registry, hooks compiled in) tracks the disabled overhead against the
// pre-obs baseline.
func benchFig4Metrics(b *testing.B) {
	cfg := experiments.Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Obs = obs.NewRegistry()
		_, res, err := experiments.ClusterSpec{
			Config:   cfg,
			Patterns: 2,
			Arrivals: 30,
		}.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Cells) != 12 {
			b.Fatalf("want 12 cells, got %d", len(res.Cells))
		}
	}
}

func benchFig5(b *testing.B) {
	cfg := experiments.Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.SelectionSpec{
			Config:   cfg,
			Patterns: 2,
			Arrivals: 30,
			Selection: exaresil.SelectorOptions{
				Trials:        4,
				TimeSteps:     360,
				SizeFractions: []float64{0.01, 0.25},
			},
		}.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Cells) == 0 {
			b.Fatal("no cells")
		}
	}
}

func benchClusterRun(b *testing.B) {
	sim, err := exaresil.New()
	if err != nil {
		b.Fatal(err)
	}
	pattern := sim.GeneratePattern(exaresil.PatternSpec{Arrivals: 100, FillSystem: true}, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunCluster(exaresil.SlackBased, exaresil.ParallelRecovery, pattern, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchExecutorRun(b *testing.B) {
	sim, err := exaresil.New()
	if err != nil {
		b.Fatal(err)
	}
	app := exaresil.App{Class: exaresil.ClassC64, TimeSteps: 1440, Nodes: 30000}
	x, err := sim.Executor(exaresil.ParallelRecovery, app)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Run(0, 1e9, src)
	}
}

func benchMultilevelOptimizer(b *testing.B) {
	costs := resilience.Costs{
		L1:  units.Duration(0.0033),
		L2:  units.Duration(0.0133),
		PFS: 17 * units.Minute,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rates := [3]units.Rate{
			units.Rate(0.0148 + float64(i%1000)*1e-9),
			0.0057,
			0.0023,
		}
		if _, err := resilience.OptimizeMultilevel(costs, rates, resilience.DefaultMultilevelConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// Command exabench runs the repository's exhibit benchmarks through
// testing.Benchmark and writes a machine-readable summary so performance
// regressions can be tracked between commits without parsing `go test
// -bench` text output.
//
// Usage:
//
//	exabench [flags]
//
// Flags:
//
//	-out FILE      where to write the JSON summary (default BENCH_results.json)
//	-run NAME      run only benchmarks whose name contains NAME
//	-list          print the benchmark names and exit
//	-commit REV    stamp the report with a source revision (scripts/bench.sh
//	               passes the current git commit)
//	-baseline FILE compare against a previous report: print benchstat-style
//	               ns/op, B/op, and allocs/op deltas per benchmark and exit
//	               non-zero if any benchmark regressed by more than 10% in
//	               time or allocations
//
// Each entry reports ns/op, bytes/op, and allocs/op for one exhibit at
// the same reduced statistical scale as the root package's bench_test.go
// (benchmarks measure harness cost, not paper numbers). The JSON schema:
//
//	{
//	  "go_version": "go1.24.x",
//	  "gomaxprocs": 8,
//	  "commit": "7a8911d",
//	  "date": "2026-01-02T15:04:05Z",
//	  "results": [
//	    {"name": "fig1", "iterations": 18, "ns_per_op": 6.1e7,
//	     "bytes_per_op": 29000000, "allocs_per_op": 700000},
//	    ...
//	  ]
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"exaresil"
	"exaresil/internal/analytic"
	"exaresil/internal/core"
	"exaresil/internal/experiments"
	"exaresil/internal/obs"
	"exaresil/internal/resilience"
	"exaresil/internal/rng"
	"exaresil/internal/selection"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// benchResult is one benchmark's summary line.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchReport is the file-level schema.
type benchReport struct {
	GoVersion  string        `json:"go_version"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Commit     string        `json:"commit,omitempty"`
	Date       string        `json:"date,omitempty"`
	Results    []benchResult `json:"results"`
}

// bench names one exhibit benchmark.
type bench struct {
	name string
	fn   func(b *testing.B)
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "exabench: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("exabench", flag.ContinueOnError)
	out := fs.String("out", "BENCH_results.json", "output JSON file")
	match := fs.String("run", "", "run only benchmarks whose name contains this substring")
	list := fs.Bool("list", false, "list benchmark names and exit")
	commit := fs.String("commit", "", "source revision to stamp into the report")
	baseline := fs.String("baseline", "", "previous report to diff against (non-zero exit on >10% regression)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	benches := exhibitBenches()
	if *list {
		for _, b := range benches {
			fmt.Println(b.name)
		}
		return nil
	}

	var base *benchReport
	if *baseline != "" {
		var err error
		if base, err = readReport(*baseline); err != nil {
			return fmt.Errorf("reading baseline: %w", err)
		}
	}

	report := benchReport{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Commit:     *commit,
		Date:       time.Now().UTC().Format(time.RFC3339),
	}
	for _, b := range benches {
		if *match != "" && !strings.Contains(b.name, *match) {
			continue
		}
		fmt.Fprintf(os.Stderr, "exabench: running %s...\n", b.name)
		r := testing.Benchmark(b.fn)
		res := benchResult{
			Name:        b.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		report.Results = append(report.Results, res)
		fmt.Printf("%-24s %12d ns/op %12d B/op %10d allocs/op\n",
			b.name, int64(res.NsPerOp), res.BytesPerOp, res.AllocsPerOp)
	}
	if len(report.Results) == 0 {
		return fmt.Errorf("no benchmarks matched %q", *match)
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "exabench: wrote %s\n", *out)
	if err := f.Close(); err != nil {
		return err
	}
	if base != nil {
		return diffReports(base, report)
	}
	return nil
}

// readReport loads a previously written benchmark report.
func readReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Results) == 0 {
		return nil, fmt.Errorf("%s: report has no results", path)
	}
	return &r, nil
}

// regressionThreshold is the relative growth in ns/op or allocs/op beyond
// which diffReports declares a regression. Timing on a shared machine is
// noisy, so the gate is deliberately loose; allocation counts are
// deterministic and the same threshold catches any real leak.
const regressionThreshold = 0.10

// diffReports prints a benchstat-style delta table between a baseline
// report and the current run, and returns an error if any benchmark
// regressed by more than regressionThreshold in time or allocations.
// Benchmarks present on only one side are reported but never gate.
func diffReports(base *benchReport, cur benchReport) error {
	old := make(map[string]benchResult, len(base.Results))
	for _, r := range base.Results {
		old[r.Name] = r
	}
	label := base.Commit
	if label == "" {
		label = "baseline"
	}
	fmt.Printf("\nbenchmark deltas vs %s:\n", label)
	fmt.Printf("%-24s %13s %13s %8s   %13s %13s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta")
	var regressed []string
	for _, r := range cur.Results {
		o, ok := old[r.Name]
		if !ok {
			fmt.Printf("%-24s %13s %13.0f %8s   %13s %13d %8s\n",
				r.Name, "-", r.NsPerOp, "new", "-", r.AllocsPerOp, "new")
			continue
		}
		dt := relDelta(o.NsPerOp, r.NsPerOp)
		da := relDelta(float64(o.AllocsPerOp), float64(r.AllocsPerOp))
		fmt.Printf("%-24s %13.0f %13.0f %+7.1f%%   %13d %13d %+7.1f%%\n",
			r.Name, o.NsPerOp, r.NsPerOp, 100*dt, o.AllocsPerOp, r.AllocsPerOp, 100*da)
		if o.BytesPerOp != r.BytesPerOp {
			fmt.Printf("%-24s %13d %13d %+7.1f%% B/op\n",
				"", o.BytesPerOp, r.BytesPerOp, 100*relDelta(float64(o.BytesPerOp), float64(r.BytesPerOp)))
		}
		if dt > regressionThreshold || da > regressionThreshold {
			regressed = append(regressed, r.Name)
		}
		delete(old, r.Name)
	}
	for name := range old {
		fmt.Printf("%-24s only in baseline\n", name)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("regression beyond %.0f%% in: %s",
			100*regressionThreshold, strings.Join(regressed, ", "))
	}
	fmt.Println("no regressions beyond the threshold")
	return nil
}

// relDelta is (new-old)/old, and zero when the baseline is zero.
func relDelta(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old
}

// exhibitBenches mirrors the root package's bench_test.go scales so the
// JSON numbers are comparable with `go test -bench` runs. The exhibit
// entries resolve through the shared experiments registry — the same
// table cmd/exasim and internal/serve dispatch from — so a renamed or
// removed exhibit fails here instead of silently dropping its benchmark.
func exhibitBenches() []bench {
	reduced := experiments.Params{Trials: 10, Patterns: 2, Arrivals: 30}
	fig5Params := reduced
	fig5Params.Selection = selection.Options{
		Trials:        4,
		TimeSteps:     360,
		SizeFractions: []float64{0.01, 0.25},
	}
	// The _vr twins run the same grids in variance-reduced mode: antithetic
	// pattern pairs for the cluster study, and for fig5 a selector built
	// from one antithetic pair per arm under common random numbers
	// (PairedTrials: 1, half the probe runs of the fig5 entry's Trials: 4).
	// The delta against the plain entries is the cost side of the
	// variance-reduction trade documented in DESIGN.md §11.
	fig4VR := reduced
	fig4VR.Paired = true
	fig5VR := fig4VR
	fig5VR.Selection = selection.Options{
		PairedTrials:  1,
		TimeSteps:     360,
		SizeFractions: []float64{0.01, 0.25},
	}
	return []bench{
		{"fig1", benchExhibit("fig1", reduced)},
		{"fig2", benchExhibit("fig2", reduced)},
		{"fig3", benchExhibit("fig3", reduced)},
		{"fig4", benchExhibit("fig4", reduced)},
		{"fig4_vr", benchExhibit("fig4", fig4VR)},
		{"fig4_metrics", benchFig4Metrics},
		{"fig4_resume", benchFig4Resume},
		{"fig5", benchExhibit("fig5", fig5Params)},
		{"fig5_vr", benchExhibit("fig5", fig5VR)},
		{"batch_analytic", benchBatchAnalytic},
		{"cluster_run", benchClusterRun},
		{"executor_run", benchExecutorRun},
		{"restore_run", benchReStoreRun},
		{"teampi_run", benchTeamReplicationRun},
		{"multilevel_optimizer", benchMultilevelOptimizer},
	}
}

// benchExhibit benchmarks one registry exhibit at a reduced statistical
// scale (benchmarks measure harness cost, not paper numbers).
func benchExhibit(name string, p experiments.Params) func(b *testing.B) {
	return func(b *testing.B) {
		ex, ok := experiments.Lookup(name)
		if !ok {
			b.Fatalf("exhibit %q is not in the experiments registry", name)
		}
		cfg := experiments.Default()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t, _, err := ex.Run(cfg, p)
			if err != nil {
				b.Fatal(err)
			}
			if t.Rows() == 0 {
				b.Fatal("empty table")
			}
		}
	}
}

// benchFig4Metrics is the fig4 bench with an obs registry attached: the
// delta against fig4 is the enabled-metrics overhead, and fig4 itself (nil
// registry, hooks compiled in) tracks the disabled overhead against the
// pre-obs baseline.
func benchFig4Metrics(b *testing.B) {
	ex, ok := experiments.Lookup("fig4")
	if !ok {
		b.Fatal("fig4 is not in the experiments registry")
	}
	cfg := experiments.Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Obs = obs.NewRegistry()
		t, _, err := ex.Run(cfg, experiments.Params{Patterns: 2, Arrivals: 30})
		if err != nil {
			b.Fatal(err)
		}
		if t.Rows() == 0 {
			b.Fatal("empty table")
		}
	}
}

// benchFig4Resume measures a checkpoint-resumed fig4 run: one fresh pass
// captures every grid cell through the Progress hook, then the timed loop
// replays runs with all but two cells restored. The delta against the
// adjacent fig4 entry is what a near-complete resume saves — the service's
// payoff for snapshotting interrupted jobs (DESIGN.md §10).
func benchFig4Resume(b *testing.B) {
	ex, ok := experiments.Lookup("fig4")
	if !ok {
		b.Fatal("fig4 is not in the experiments registry")
	}
	p := experiments.Params{Patterns: 2, Arrivals: 30}
	cfg := experiments.Default()

	var mu sync.Mutex
	cells := map[int][]float64{}
	cfg.Progress = &experiments.Progress{OnCell: func(cell int, values []float64) {
		mu.Lock()
		cells[cell] = values
		mu.Unlock()
	}}
	if _, _, err := ex.Run(cfg, p); err != nil {
		b.Fatal(err)
	}
	for cell := 0; cell < 2; cell++ { // leave a little real work in the loop
		delete(cells, cell)
	}
	cfg.Progress = &experiments.Progress{Completed: cells}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, _, err := ex.Run(cfg, p)
		if err != nil {
			b.Fatal(err)
		}
		if t.Rows() == 0 {
			b.Fatal("empty table")
		}
	}
}

// benchBatchAnalytic measures the steady-state cost of the batch analytic
// evaluator over the ext-whatif exhibit's grid shape (4 MTBFs x 7 sizes x
// 7 techniques). The evaluator is built once outside the timed loop, as the
// what-if service path reuses it, so the loop body is the pure column-pass
// Eval — expected to report zero allocs/op (the allocation-freedom test in
// internal/analytic pins that contract; this entry tracks its speed).
func benchBatchAnalytic(b *testing.B) {
	cfg := experiments.Default()
	grid := analytic.Grid{
		Machine:    cfg.Machine,
		PMF:        cfg.SeverityPMF,
		Resilience: cfg.Resilience,
		Class:      workload.D64,
		TimeSteps:  1440,
		MTBFs: []units.Duration{
			10 * units.Year, 5 * units.Year,
			units.Duration(2.5) * units.Year, units.Year,
		},
		Techniques: core.Techniques(),
	}
	for _, frac := range experiments.DefaultScalingFractions() {
		grid.Nodes = append(grid.Nodes, cfg.Machine.NodesForFraction(frac))
	}
	ev, err := analytic.NewEvaluator(grid)
	if err != nil {
		b.Fatal(err)
	}
	ev.Eval() // warm the multilevel stretch cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eff := ev.Eval()
		if len(eff) != len(grid.MTBFs)*len(grid.Nodes)*len(grid.Techniques) {
			b.Fatal("short efficiency buffer")
		}
	}
}

func benchClusterRun(b *testing.B) {
	sim, err := exaresil.New()
	if err != nil {
		b.Fatal(err)
	}
	pattern := sim.GeneratePattern(exaresil.PatternSpec{Arrivals: 100, FillSystem: true}, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunCluster(exaresil.SlackBased, exaresil.ParallelRecovery, pattern, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchExecutorRun(b *testing.B) {
	sim, err := exaresil.New()
	if err != nil {
		b.Fatal(err)
	}
	app := exaresil.App{Class: exaresil.ClassC64, TimeSteps: 1440, Nodes: 30000}
	x, err := sim.Executor(exaresil.ParallelRecovery, app)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Run(0, 1e9, src)
	}
}

// benchReStoreRun and benchTeamReplicationRun mirror executor_run for the
// post-2017 techniques, at the same class/size/horizon so the three entries
// are directly comparable: the deltas are the per-run cost of the replica
// bookkeeping (ReStore) and of the doubled footprint with repair-window
// tracking (TeaMPI).
func benchReStoreRun(b *testing.B) {
	benchTechniqueRun(b, exaresil.InMemoryReplicatedCheckpoint)
}

func benchTeamReplicationRun(b *testing.B) {
	benchTechniqueRun(b, exaresil.LightweightReplication)
}

func benchTechniqueRun(b *testing.B, tech exaresil.Technique) {
	sim, err := exaresil.New()
	if err != nil {
		b.Fatal(err)
	}
	app := exaresil.App{Class: exaresil.ClassC64, TimeSteps: 1440, Nodes: 30000}
	x, err := sim.Executor(tech, app)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Run(0, 1e9, src)
	}
}

func benchMultilevelOptimizer(b *testing.B) {
	costs := resilience.Costs{
		L1:  units.Duration(0.0033),
		L2:  units.Duration(0.0133),
		PFS: 17 * units.Minute,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rates := [3]units.Rate{
			units.Rate(0.0148 + float64(i%1000)*1e-9),
			0.0057,
			0.0023,
		}
		if _, err := resilience.OptimizeMultilevel(costs, rates, resilience.DefaultMultilevelConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

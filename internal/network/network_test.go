package network

import (
	"math"
	"testing"
	"testing/quick"

	"exaresil/internal/machine"
	"exaresil/internal/units"
)

func exaModel() Model { return FromMachine(machine.Exascale()) }

func TestFromMachine(t *testing.T) {
	m := exaModel()
	if m.Bandwidth != 600*units.GBPerSecond {
		t.Errorf("bandwidth %v", m.Bandwidth)
	}
	if m.SwitchConnections != 12 {
		t.Errorf("switch connections %d", m.SwitchConnections)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("exascale network invalid: %v", err)
	}
}

func TestValidate(t *testing.T) {
	bad := []Model{
		{Latency: -1, Bandwidth: 1, SwitchConnections: 1},
		{Latency: 0, Bandwidth: 0, SwitchConnections: 1},
		{Latency: 0, Bandwidth: 1, SwitchConnections: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestMessageTime(t *testing.T) {
	m := exaModel()
	// 64 GB at 600 GB/s plus 0.5 us.
	got := m.MessageTime(64 * units.Gigabyte).Seconds()
	want := 64.0/600 + 0.5e-6
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("MessageTime = %v s, want %v", got, want)
	}
	// Latency dominates tiny messages.
	if tiny := m.MessageTime(0); math.Abs(tiny.Seconds()-0.5e-6) > 1e-15 {
		t.Errorf("zero-size message time %v s, want pure latency", tiny.Seconds())
	}
}

func TestRounds(t *testing.T) {
	m := exaModel() // N_S = 12
	cases := []struct{ flows, want int }{
		{0, 0}, {-3, 0}, {1, 1}, {12, 1}, {13, 2}, {24, 2}, {120000, 10000},
	}
	for _, tc := range cases {
		if got := m.Rounds(tc.flows); got != tc.want {
			t.Errorf("Rounds(%d) = %d, want %d", tc.flows, got, tc.want)
		}
	}
}

func TestBulkTransferMatchesEq3(t *testing.T) {
	m := exaModel()
	// Eq. 3 at full machine, 64 GB per node: (64/600)*(120000/12) s.
	got := m.BulkTransferTime(64*units.Gigabyte, 120000)
	want := (64.0 / 600) * (120000.0 / 12)
	if math.Abs(got.Seconds()-want) > 1e-9 {
		t.Errorf("BulkTransferTime = %v s, want %v", got.Seconds(), want)
	}
	if m.BulkTransferTime(64, 0) != 0 {
		t.Error("zero nodes should transfer in zero time")
	}
}

func TestBulkTransferLinearInNodes(t *testing.T) {
	m := exaModel()
	prop := func(nodesRaw uint16, gbRaw uint8) bool {
		nodes := int(nodesRaw%50000) + 1
		size := units.DataSize(gbRaw%127) + 1
		a := m.BulkTransferTime(size, nodes)
		b := m.BulkTransferTime(size, 2*nodes)
		return math.Abs(float64(b)-2*float64(a)) < 1e-9*math.Max(1, float64(b))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestExchangeMatchesEq6(t *testing.T) {
	m := exaModel()
	// Eq. 6 for 64 GB at B_M = 320 GB/s: 2*(0.2 + 0.5e-6 + 0.2) s.
	got := m.ExchangeTime(64*units.Gigabyte, 320*units.GBPerSecond)
	want := 2 * (0.2 + 0.5e-6 + 0.2)
	if math.Abs(got.Seconds()-want) > 1e-12 {
		t.Errorf("ExchangeTime = %v s, want %v", got.Seconds(), want)
	}
}

func TestCostOrderingInvariant(t *testing.T) {
	// For any app footprint on the exascale machine, local RAM < partner
	// exchange < PFS for nontrivial node counts: the premise of the
	// multilevel hierarchy.
	m := exaModel()
	memBW := machine.Exascale().Node.MemoryBandwidth
	for _, gb := range []units.DataSize{32, 64} {
		l1 := memBW.Transfer(gb)
		l2 := m.ExchangeTime(gb, memBW)
		pfs := m.BulkTransferTime(gb, 1200)
		if !(l1 < l2 && l2 < pfs) {
			t.Errorf("%v/node: hierarchy violated: L1=%v L2=%v PFS=%v", gb, l1, l2, pfs)
		}
	}
}

func TestString(t *testing.T) {
	if exaModel().String() == "" {
		t.Error("empty String()")
	}
}

// Package network models the simulated machine's interconnect: the
// communication substrate of Section III-F that every resilience
// technique's cost equations draw on.
//
// The model follows the paper's "NDR InfiniBand"-class abstraction: a
// one-way latency L, a link bandwidth B_N, and a switch fabric that
// sustains N_S simultaneous connections. Bulk transfers from many nodes —
// checkpoint traffic to the parallel file system being the important case —
// serialize into rounds of N_S concurrent flows, which is exactly where
// Eq. 3's N_a/N_S factor comes from.
package network

import (
	"fmt"

	"exaresil/internal/machine"
	"exaresil/internal/units"
)

// Model is the interconnect as the cost equations see it.
type Model struct {
	// Latency is the one-way message latency L.
	Latency units.Duration
	// Bandwidth is the per-flow link bandwidth B_N.
	Bandwidth units.Bandwidth
	// SwitchConnections is N_S, the number of flows the switch fabric
	// sustains simultaneously.
	SwitchConnections int
}

// FromMachine derives the network model from a machine configuration.
func FromMachine(cfg machine.Config) Model {
	return Model{
		Latency:           cfg.Network.Latency,
		Bandwidth:         cfg.Network.Bandwidth,
		SwitchConnections: cfg.Network.SwitchConnections,
	}
}

// Validate reports whether the model is physically meaningful.
func (m Model) Validate() error {
	if m.Latency < 0 {
		return fmt.Errorf("network: negative latency %v", m.Latency)
	}
	if m.Bandwidth <= 0 {
		return fmt.Errorf("network: non-positive bandwidth %v", float64(m.Bandwidth))
	}
	if m.SwitchConnections <= 0 {
		return fmt.Errorf("network: non-positive switch connections %d", m.SwitchConnections)
	}
	return nil
}

// MessageTime reports the time to deliver one message of the given size
// between two nodes: latency plus serialization.
func (m Model) MessageTime(size units.DataSize) units.Duration {
	return m.Latency + m.Bandwidth.Transfer(size)
}

// Rounds reports how many serialized rounds a set of concurrent flows
// needs through the switch fabric. The paper's continuous N_a/N_S factor
// is the large-N limit of this quantity; Rounds keeps the discrete
// behaviour exact for small flow counts.
func (m Model) Rounds(flows int) int {
	if flows <= 0 {
		return 0
	}
	return (flows + m.SwitchConnections - 1) / m.SwitchConnections
}

// BulkTransferTime reports the time for every one of nodes to move
// perNode data through the switch fabric (to or from the parallel file
// system): per-flow serialization times the continuous round factor
// N_a / N_S of Eq. 3.
//
// The continuous factor (rather than the integral Rounds) matches the
// paper's Eq. 3 exactly, keeping regenerated exhibit values comparable;
// callers that want the discrete behaviour can combine MessageTime and
// Rounds themselves.
func (m Model) BulkTransferTime(perNode units.DataSize, nodes int) units.Duration {
	if nodes <= 0 {
		return 0
	}
	perFlow := m.Bandwidth.Transfer(perNode)
	return perFlow * units.Duration(float64(nodes)/float64(m.SwitchConnections))
}

// ExchangeTime reports the time for a symmetric pairwise exchange of
// perNode data between partner nodes whose memories absorb the data at
// memoryBandwidth — the structure of Eq. 6's partner checkpoint:
//
//	2 * (perNode/B_M + L + perNode/B_M)
//
// one memory-bandwidth term to produce the data and one to absorb it, in
// both directions.
func (m Model) ExchangeTime(perNode units.DataSize, memoryBandwidth units.Bandwidth) units.Duration {
	memory := memoryBandwidth.Transfer(perNode)
	return 2 * (memory + m.Latency + memory)
}

// String renders the model.
func (m Model) String() string {
	return fmt.Sprintf("network: L=%s, B_N=%s, N_S=%d", m.Latency, m.Bandwidth, m.SwitchConnections)
}

// Package experiments reproduces every exhibit of the paper's evaluation:
// Tables I and II, the application-scaling figures (1-3), the resource-
// management figure (4), and the resilience-selection figure (5). Each
// driver returns both a rendered report table (the figure's underlying
// data series) and a structured result for tests and benchmarks.
package experiments

import (
	"fmt"
	"runtime"

	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/obs"
	"exaresil/internal/resilience"
	"exaresil/internal/units"
)

// Config carries the parameters shared by every experiment.
type Config struct {
	// Machine is the simulated platform (default: the paper's projected
	// exascale machine).
	Machine machine.Config
	// SeverityPMF is the failure-severity distribution.
	SeverityPMF failures.SeverityPMF
	// Resilience tunes technique parameters.
	Resilience resilience.Config
	// Seed drives all randomness; equal seeds reproduce exhibits
	// bit-for-bit.
	Seed uint64
	// Workers bounds parallelism (default GOMAXPROCS).
	Workers int
	// Obs, when non-nil, collects metrics from every simulation a driver
	// runs (see internal/obs). Attaching a registry never changes any
	// exhibit's numbers: the series only count.
	Obs *obs.Registry
	// Progress, when non-nil, receives per-cell completion events from
	// the grid exhibits and can pre-fill cells completed by an earlier,
	// interrupted run (checkpoint/restart; see Progress). Attaching a
	// hook never changes any exhibit's numbers.
	Progress *Progress
}

// Default returns the paper's configuration.
func Default() Config {
	return Config{
		Machine:     machine.Exascale(),
		SeverityPMF: failures.DefaultSeverityPMF(),
		Resilience:  resilience.DefaultConfig(),
		Seed:        20170529, // IPDPSW 2017 opening day
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	if err := c.SeverityPMF.Validate(); err != nil {
		return err
	}
	return c.Resilience.Validate()
}

// model builds the failure model for a given MTBF (zero means the
// machine's).
func (c Config) model(mtbf units.Duration) (*failures.Model, error) {
	if mtbf <= 0 {
		mtbf = c.Machine.MTBF
	}
	return failures.NewModel(mtbf, c.SeverityPMF)
}

// workers resolves the worker count.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// fracLabel formats a machine fraction as the figures' x-axis labels do.
func fracLabel(f float64) string {
	return fmt.Sprintf("%g%%", 100*f)
}

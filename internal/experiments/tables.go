package experiments

import (
	"fmt"

	"exaresil/internal/report"
	"exaresil/internal/resilience"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// TableI renders the application-type grid of Table I: communication
// intensity crossed with per-node memory footprint.
func TableI() *report.Table {
	t := report.New("Table I: Characteristics of Application Types",
		"communication intensity", "32 GB", "64 GB")
	t.AddNote("each cell names a synthetic benchmark class; T_C is the per-step communication fraction")
	rows := [][3]workload.Class{
		{workload.A32, workload.A32, workload.A64},
		{workload.B32, workload.B32, workload.B64},
		{workload.C32, workload.C32, workload.C64},
		{workload.D32, workload.D32, workload.D64},
	}
	for _, r := range rows {
		label := fmt.Sprintf("%.0f%% (T_C = %.2f)", 100*r[0].CommFraction, r[0].CommFraction)
		t.AddRow(label, r[1].Name, r[2].Name)
	}
	return t
}

// TableIISpec selects the reference application whose live parameter
// values Table II is evaluated for.
type TableIISpec struct {
	Config
	// Class and Fraction pick the reference application (default: C64 at
	// one quarter of the machine).
	Class    workload.Class
	Fraction float64
	// TimeSteps is the reference application length (default 1440).
	TimeSteps int
}

// Run renders Table II: every resilience-technique parameter of the model,
// with the symbolic role the paper lists and the concrete value it takes
// for the reference application on the configured machine.
func (s TableIISpec) Run() (*report.Table, error) {
	if s.Class.Name == "" {
		s.Class = workload.C64
	}
	if s.Fraction == 0 {
		s.Fraction = 0.25
	}
	if s.TimeSteps == 0 {
		s.TimeSteps = 1440
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	model, err := s.model(0)
	if err != nil {
		return nil, err
	}

	app := workload.App{
		Class:     s.Class,
		TimeSteps: s.TimeSteps,
		Nodes:     s.Machine.NodesForFraction(s.Fraction),
	}
	costs := resilience.ComputeCosts(app, s.Machine)
	rate := model.Rate(app.Nodes)
	tau, tauOK := resilience.DalyPeriod(costs.PFS, rate)
	tauStr := "n/a (non-positive)"
	if tauOK {
		tauStr = tau.String()
	}
	mu := resilience.MessageLoggingSlowdown(app.Class)

	t := report.New("Table II: Resilience Technique Parameters",
		"parameter", "use in modeling", "value")
	t.AddNote("reference application: %s on %d nodes (%s of %s), T_S = %d",
		app.Class.Name, app.Nodes, fracLabel(s.Fraction), s.Machine.Name, app.TimeSteps)
	t.AddRow("T_S", "application length (time steps)", report.I(app.TimeSteps))
	t.AddRow("T_C", "portion of each time step spent on communication", report.F(app.Class.CommFraction))
	t.AddRow("T_W", "portion of each time step spent on computation work", report.F(app.Class.WorkFraction()))
	t.AddRow("N_m", "memory used by the application (per node)", app.Class.MemoryPerNode.String())
	t.AddRow("N_a", "number of system nodes used by the application", report.I(app.Nodes))
	t.AddRow("L", "network latency", s.Machine.Network.Latency.String())
	t.AddRow("B_N", "communication bandwidth", s.Machine.Network.Bandwidth.String())
	t.AddRow("N_S", "number of network switch connections", report.I(s.Machine.Network.SwitchConnections))
	t.AddRow("lambda_a", "application failure rate", rate.String())
	t.AddRow("M_n", "system component MTBF", s.Machine.MTBF.String())
	t.AddRow("tau", "optimal checkpoint period", tauStr)
	t.AddRow("T_C_PFS", "time required to checkpoint to a PFS", costs.PFS.String())
	t.AddRow("T_C_L1", "time required for a level one checkpoint", costs.L1.String())
	t.AddRow("T_C_L2", "time required for a level two checkpoint", costs.L2.String())
	t.AddRow("mu", "message logging slowdown", report.F(mu))
	t.AddRow("r", "degree of redundancy", "1.5 (partial) / 2.0 (full)")
	return t, nil
}

// TableII runs TableIISpec with paper defaults.
func TableII(cfg Config) (*report.Table, error) {
	return TableIISpec{Config: cfg}.Run()
}

// mtbfLabel formats an MTBF for table notes.
func mtbfLabel(d units.Duration) string {
	return fmt.Sprintf("%.3g-year", d.Years())
}

package experiments

import (
	"fmt"
	"sync"

	"exaresil/internal/cluster"
	"exaresil/internal/core"
	"exaresil/internal/report"
	"exaresil/internal/rng"
	"exaresil/internal/stats"
	"exaresil/internal/workload"
)

// ClusterSpec configures the Figure 4 study: percentage of dropped
// applications for every resource-management and resilience-technique
// combination over a set of arrival patterns, against the Ideal baseline.
type ClusterSpec struct {
	Config
	// Patterns is the number of arrival patterns (paper: 50).
	Patterns int
	// Arrivals is the number of applications per pattern (paper: 100).
	Arrivals int
	// Bias selects the pattern population (Figure 4 uses Unbiased).
	Bias workload.Bias
	// Schedulers and Techniques enumerate the combinations (defaults:
	// all three schedulers; Ideal plus the three cluster techniques).
	Schedulers []core.Scheduler
	Techniques []core.Technique
}

// ClusterCell is one bar of Figure 4.
type ClusterCell struct {
	Scheduler core.Scheduler
	Technique core.Technique
	// Dropped is the percentage of applications dropped, summarized over
	// patterns.
	Dropped stats.Summary
	// MeanWaitMinutes summarizes queueing delay over patterns.
	MeanWaitMinutes stats.Summary
}

// ClusterResult is the figure's full data set.
type ClusterResult struct {
	Bias  workload.Bias
	Cells []ClusterCell
}

// Cell finds one scheduler/technique combination.
func (r ClusterResult) Cell(s core.Scheduler, t core.Technique) (ClusterCell, bool) {
	for _, c := range r.Cells {
		if c.Scheduler == s && c.Technique == t {
			return c, true
		}
	}
	return ClusterCell{}, false
}

func (s ClusterSpec) withDefaults() ClusterSpec {
	if s.Patterns == 0 {
		s.Patterns = 50
	}
	if s.Arrivals == 0 {
		s.Arrivals = 100
	}
	if s.Schedulers == nil {
		s.Schedulers = core.Schedulers()
	}
	if s.Techniques == nil {
		s.Techniques = append([]core.Technique{core.Ideal}, core.ClusterTechniques()...)
	}
	return s
}

// patterns generates the study's shared arrival patterns: every
// combination sees the same submissions, as in the paper, so differences
// between cells are attributable to the techniques alone.
func (s ClusterSpec) patterns() []workload.Pattern {
	out := make([]workload.Pattern, s.Patterns)
	for p := range out {
		spec := workload.PatternSpec{
			Arrivals:   s.Arrivals,
			Bias:       s.Bias,
			FillSystem: true,
		}
		out[p] = spec.Generate(s.Machine, rng.Stream(s.Seed, uint64(p)))
	}
	return out
}

// runCells evaluates dropped-percentage statistics for each
// (scheduler, chooser) cell over the shared patterns, in parallel across
// cells and patterns. The chooser map allows Figure 5 to reuse the same
// machinery with per-application technique selection.
func (s ClusterSpec) runCells(combos []comboSpec) ([]comboResult, error) {
	pats := s.patterns()
	model, err := s.model(0)
	if err != nil {
		return nil, err
	}

	type task struct {
		combo, pattern int
	}
	type outcome struct {
		task task
		pct  float64
		wait float64
		err  error
	}

	tasks := make(chan task)
	results := make(chan outcome)
	workers := s.workers()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range tasks {
				cb := combos[tk.combo]
				spec := cluster.Spec{
					Machine:    s.Machine,
					Model:      model,
					Scheduler:  cb.scheduler,
					Technique:  cb.technique,
					Chooser:    cb.chooser,
					Resilience: s.Resilience,
					Pattern:    pats[tk.pattern],
					Seed:       s.Seed ^ (uint64(tk.pattern+1) * 0xd1342543de82ef95),
				}
				m, err := cluster.Run(spec)
				results <- outcome{
					task: tk,
					pct:  m.DroppedPct(),
					wait: m.MeanWait.Minutes(),
					err:  err,
				}
			}
		}()
	}
	go func() {
		for ci := range combos {
			for p := 0; p < s.Patterns; p++ {
				tasks <- task{ci, p}
			}
		}
		close(tasks)
		wg.Wait()
		close(results)
	}()

	out := make([]comboResult, len(combos))
	var firstErr error
	for oc := range results {
		if oc.err != nil {
			if firstErr == nil {
				firstErr = oc.err
			}
			continue
		}
		out[oc.task.combo].dropped.Add(oc.pct)
		out[oc.task.combo].wait.Add(oc.wait)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// comboSpec is one cell's policy; comboResult its accumulated outcome.
type comboSpec struct {
	scheduler core.Scheduler
	technique core.Technique
	chooser   cluster.TechniqueChooser
}

type comboResult struct {
	dropped, wait stats.Accumulator
}

// Run executes the Figure 4 study and renders its table.
func (s ClusterSpec) Run() (*report.Table, ClusterResult, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, ClusterResult{}, err
	}

	var combos []comboSpec
	for _, sch := range s.Schedulers {
		for _, tech := range s.Techniques {
			combos = append(combos, comboSpec{scheduler: sch, technique: tech})
		}
	}
	raw, err := s.runCells(combos)
	if err != nil {
		return nil, ClusterResult{}, err
	}

	result := ClusterResult{Bias: s.Bias}
	cols := []string{"scheduler"}
	for _, tech := range s.Techniques {
		cols = append(cols, tech.String())
	}
	t := report.New("Percentage of applications dropped per resilience x resource-management combination", cols...)
	t.AddNote("mean ± stddev over %d arrival patterns of %d applications each (%s population)",
		s.Patterns, s.Arrivals, s.Bias)
	t.AddNote("machine %s; system starts full; Poisson arrivals every 2 h (mean)", s.Machine.Name)

	i := 0
	for _, sch := range s.Schedulers {
		row := []string{sch.String()}
		for _, tech := range s.Techniques {
			sum := raw[i].dropped.Summarize()
			result.Cells = append(result.Cells, ClusterCell{
				Scheduler:       sch,
				Technique:       tech,
				Dropped:         sum,
				MeanWaitMinutes: raw[i].wait.Summarize(),
			})
			row = append(row, report.Pct(sum.Mean, sum.StdDev))
			i++
		}
		t.AddRow(row...)
	}
	if i != len(raw) {
		return nil, ClusterResult{}, fmt.Errorf("experiments: combo bookkeeping mismatch")
	}
	return t, result, nil
}

// Figure4 runs the cluster study with paper defaults at the given pattern
// count (0 means the paper's 50).
func Figure4(cfg Config, patterns int) (*report.Table, ClusterResult, error) {
	return ClusterSpec{Config: cfg, Patterns: patterns}.Run()
}

package experiments

import (
	"errors"
	"fmt"
	"sync"

	"exaresil/internal/cluster"
	"exaresil/internal/core"
	"exaresil/internal/report"
	"exaresil/internal/rng"
	"exaresil/internal/stats"
	"exaresil/internal/workload"
)

// ClusterSpec configures the Figure 4 study: percentage of dropped
// applications for every resource-management and resilience-technique
// combination over a set of arrival patterns, against the Ideal baseline.
type ClusterSpec struct {
	Config
	// Patterns is the number of arrival patterns (paper: 50).
	Patterns int
	// Arrivals is the number of applications per pattern (paper: 100).
	Arrivals int
	// Bias selects the pattern population (Figure 4 uses Unbiased).
	Bias workload.Bias
	// Paired switches the study to antithetic pattern pairs: pattern slot
	// 2k and 2k+1 share the k-th generated arrival pattern and the k-th
	// cluster seed, with the odd member's continuous draws mirrored
	// (arrival gaps at generation time, failure inter-arrivals at run
	// time; see rng.SetMirror). Pair means are negatively correlated, so
	// the study reaches a given confidence width with fewer pattern slots
	// than independent sampling — the variance-reduced mode behind the
	// fig4_vr benchmark (DESIGN.md §11). An odd Patterns count leaves the
	// last slot unpaired.
	Paired bool
	// Schedulers and Techniques enumerate the combinations (defaults:
	// all three schedulers; Ideal plus the three cluster techniques).
	Schedulers []core.Scheduler
	Techniques []core.Technique
}

// ClusterCell is one bar of Figure 4.
type ClusterCell struct {
	Scheduler core.Scheduler
	Technique core.Technique
	// Dropped is the percentage of applications dropped, summarized over
	// patterns.
	Dropped stats.Summary
	// MeanWaitMinutes summarizes queueing delay over patterns.
	MeanWaitMinutes stats.Summary
}

// ClusterResult is the figure's full data set.
type ClusterResult struct {
	Bias  workload.Bias
	Cells []ClusterCell
}

// Cell finds one scheduler/technique combination.
func (r ClusterResult) Cell(s core.Scheduler, t core.Technique) (ClusterCell, bool) {
	for _, c := range r.Cells {
		if c.Scheduler == s && c.Technique == t {
			return c, true
		}
	}
	return ClusterCell{}, false
}

func (s ClusterSpec) withDefaults() ClusterSpec {
	if s.Patterns == 0 {
		s.Patterns = 50
	}
	if s.Arrivals == 0 {
		s.Arrivals = 100
	}
	if s.Schedulers == nil {
		s.Schedulers = core.Schedulers()
	}
	if s.Techniques == nil {
		s.Techniques = append([]core.Technique{core.Ideal}, core.ClusterTechniques()...)
	}
	return s
}

// patterns generates the study's shared arrival patterns: every
// combination sees the same submissions, as in the paper, so differences
// between cells are attributable to the techniques alone.
func (s ClusterSpec) patterns() []workload.Pattern {
	out := make([]workload.Pattern, s.Patterns)
	var src rng.Source
	for p := range out {
		spec := workload.PatternSpec{
			Arrivals:   s.Arrivals,
			Bias:       s.Bias,
			FillSystem: true,
		}
		if s.Paired {
			// Slot pair 2k/2k+1 regenerates the same pattern stream, the
			// odd member with mirrored continuous draws (antithetic
			// arrival gaps; discrete size/class draws are unaffected).
			src.SetStream(s.Seed, uint64(p/2))
			src.SetMirror(p%2 == 1)
		} else {
			src.SetStream(s.Seed, uint64(p))
		}
		out[p] = spec.Generate(s.Machine, &src)
	}
	return out
}

// runCells evaluates dropped-percentage statistics for each
// (scheduler, chooser) cell over the shared patterns, in parallel across
// cells and patterns. The chooser map allows Figure 5 to reuse the same
// machinery with per-application technique selection.
//
// Every task writes into its own (combo, pattern) slot and the slots are
// folded in index order after all workers drain, so the Welford
// accumulation sees observations in the same order on every run and the
// figure's numbers are bit-identical regardless of worker count or
// scheduling. The task channel is fully buffered and closed before the
// workers start — there is no producer goroutine to strand on an
// abandoned send — and every worker error is reported, joined, not just
// the first one observed.
//
// When Config.Progress is attached, each finished cell is reported with
// its (dropped%, wait-minutes) pair, cells the hook marks Completed are
// folded from their recorded values instead of recomputed, and a canceled
// Progress.Ctx aborts between cells — the grid's checkpoint/restart
// surface (DESIGN.md §10). Restored values are the exact floats a full
// run would produce, so a resumed grid stays bit-identical.
func (s ClusterSpec) runCells(combos []comboSpec) ([]comboResult, error) {
	pats := s.patterns()
	model, err := s.model(0)
	if err != nil {
		return nil, err
	}

	type outcome struct {
		pct  float64
		wait float64
		err  error
	}

	total := len(combos) * s.Patterns
	tasks := make(chan int, total)
	for i := 0; i < total; i++ {
		tasks <- i
	}
	close(tasks)

	prog := s.Progress
	outs := make([]outcome, total)
	workers := min(s.workers(), total)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				if vals, ok := prog.lookup(i); ok && len(vals) == 2 {
					outs[i] = outcome{pct: vals[0], wait: vals[1]}
					continue
				}
				if err := prog.cause(); err != nil {
					outs[i] = outcome{err: err}
					continue
				}
				cb := combos[i/s.Patterns]
				pattern := i % s.Patterns
				seedSlot, mirror := pattern, false
				if s.Paired {
					// Both pair members run from the same cluster seed so
					// their failure draws pair up stream for stream.
					seedSlot, mirror = pattern/2, pattern%2 == 1
				}
				spec := cluster.Spec{
					Machine:    s.Machine,
					Model:      model,
					Scheduler:  cb.scheduler,
					Technique:  cb.technique,
					Chooser:    cb.chooser,
					Resilience: s.Resilience,
					Pattern:    pats[pattern],
					Seed:       s.Seed ^ (uint64(seedSlot+1) * 0xd1342543de82ef95),
					Mirror:     mirror,
					Obs:        s.Obs,
				}
				m, err := cluster.Run(spec)
				outs[i] = outcome{pct: m.DroppedPct(), wait: m.MeanWait.Minutes(), err: err}
				if err == nil {
					prog.note(i, []float64{outs[i].pct, outs[i].wait})
				}
			}
		}()
	}
	wg.Wait()

	// An aborted run reports its context's cause alone — the per-cell
	// skip errors are all that cause repeated.
	if err := prog.cause(); err != nil {
		return nil, err
	}
	out := make([]comboResult, len(combos))
	var errs []error
	for i, oc := range outs {
		if oc.err != nil {
			errs = append(errs, oc.err)
			continue
		}
		out[i/s.Patterns].dropped.Add(oc.pct)
		out[i/s.Patterns].wait.Add(oc.wait)
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return out, nil
}

// comboSpec is one cell's policy; comboResult its accumulated outcome.
type comboSpec struct {
	scheduler core.Scheduler
	technique core.Technique
	chooser   cluster.TechniqueChooser
}

type comboResult struct {
	dropped, wait stats.Accumulator
}

// Run executes the Figure 4 study and renders its table.
func (s ClusterSpec) Run() (*report.Table, ClusterResult, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, ClusterResult{}, err
	}

	var combos []comboSpec
	for _, sch := range s.Schedulers {
		for _, tech := range s.Techniques {
			combos = append(combos, comboSpec{scheduler: sch, technique: tech})
		}
	}
	raw, err := s.runCells(combos)
	if err != nil {
		return nil, ClusterResult{}, err
	}

	result := ClusterResult{Bias: s.Bias}
	cols := []string{"scheduler"}
	for _, tech := range s.Techniques {
		cols = append(cols, tech.String())
	}
	t := report.New("Percentage of applications dropped per resilience x resource-management combination", cols...)
	t.AddNote("mean ± stddev over %d arrival patterns of %d applications each (%s population)",
		s.Patterns, s.Arrivals, s.Bias)
	t.AddNote("machine %s; system starts full; Poisson arrivals every 2 h (mean)", s.Machine.Name)

	i := 0
	for _, sch := range s.Schedulers {
		row := []string{sch.String()}
		for _, tech := range s.Techniques {
			sum := raw[i].dropped.Summarize()
			result.Cells = append(result.Cells, ClusterCell{
				Scheduler:       sch,
				Technique:       tech,
				Dropped:         sum,
				MeanWaitMinutes: raw[i].wait.Summarize(),
			})
			row = append(row, report.Pct(sum.Mean, sum.StdDev))
			i++
		}
		t.AddRow(row...)
	}
	if i != len(raw) {
		return nil, ClusterResult{}, fmt.Errorf("experiments: combo bookkeeping mismatch")
	}
	return t, result, nil
}

// Figure4 runs the cluster study with paper defaults at the given pattern
// count (0 means the paper's 50).
func Figure4(cfg Config, patterns int) (*report.Table, ClusterResult, error) {
	return ClusterSpec{Config: cfg, Patterns: patterns}.Run()
}

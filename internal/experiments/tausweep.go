package experiments

import (
	"fmt"

	"exaresil/internal/appsim"
	"exaresil/internal/core"
	"exaresil/internal/report"
	"exaresil/internal/resilience"
	"exaresil/internal/stats"
	"exaresil/internal/workload"
)

// TauSweepSpec configures the checkpoint-period ablation: technique
// efficiency as the checkpoint interval is scaled away from its computed
// optimum (Daly's Eq. 4 for the single-level techniques, the Markov-style
// optimizer for multilevel). If the period selection is right, efficiency
// should peak at scale 1.
type TauSweepSpec struct {
	Config
	// Class and Fraction pick the application (defaults C64 at 25%).
	Class    workload.Class
	Fraction float64
	// Scales is the sweep (default 1/4, 1/2, 1, 2, 4).
	Scales []float64
	// Trials per point (default 60).
	Trials int
}

// TauPoint is one technique at one period scale.
type TauPoint struct {
	Technique  core.Technique
	Scale      float64
	Efficiency stats.Summary
}

// TauResult is the ablation's data set.
type TauResult struct{ Points []TauPoint }

// Point finds one technique/scale pair.
func (r TauResult) Point(t core.Technique, scale float64) (TauPoint, bool) {
	for _, p := range r.Points {
		if p.Technique == t && p.Scale == scale {
			return p, true
		}
	}
	return TauPoint{}, false
}

// Run executes the ablation.
func (s TauSweepSpec) Run() (*report.Table, TauResult, error) {
	if s.Class.Name == "" {
		s.Class = workload.C64
	}
	if s.Fraction == 0 {
		s.Fraction = 0.25
	}
	if s.Scales == nil {
		s.Scales = []float64{0.25, 0.5, 1, 2, 4}
	}
	if s.Trials == 0 {
		s.Trials = 60
	}
	if err := s.Validate(); err != nil {
		return nil, TauResult{}, err
	}
	model, err := s.model(0)
	if err != nil {
		return nil, TauResult{}, err
	}

	techniques := []core.Technique{core.CheckpointRestart, core.MultilevelCheckpoint, core.ParallelRecovery}
	cols := []string{"period scale"}
	for _, tech := range techniques {
		cols = append(cols, tech.String())
	}
	t := report.New(
		fmt.Sprintf("Checkpoint-period ablation (%s at %s of the machine)", s.Class.Name, fracLabel(s.Fraction)),
		cols...)
	t.AddNote("scale 1 is the computed optimum (Daly Eq. 4 / multilevel optimizer); efficiency should peak there")
	t.AddNote("mean ± stddev of %d trials", s.Trials)

	var result TauResult
	app := workload.App{Class: s.Class, TimeSteps: 1440, Nodes: s.Machine.NodesForFraction(s.Fraction)}
	for _, scale := range s.Scales {
		rc := s.Resilience
		rc.PeriodScale = scale
		row := []string{report.F(scale)}
		for ti, tech := range techniques {
			x, err := resilience.New(tech, app, s.Machine, model, rc)
			if err != nil {
				return nil, TauResult{}, err
			}
			st := appsim.Run(appsim.TrialSpec{
				Executor: x,
				Trials:   s.Trials,
				Seed:     s.Seed ^ uint64(ti+301)*0x9e3779b97f4a7c15,
				Workers:  s.workers(),
			})
			result.Points = append(result.Points, TauPoint{
				Technique:  tech,
				Scale:      scale,
				Efficiency: st.Efficiency,
			})
			row = append(row, report.Eff(st.Efficiency.Mean, st.Efficiency.StdDev))
		}
		t.AddRow(row...)
	}
	return t, result, nil
}

// SemiBlockingSpec configures the semi-blocking checkpoint extension
// study: technique efficiency as the compute rate sustained during
// checkpoint writes rises from 0 (the paper's blocking model) toward 1 —
// quantifying how much of checkpointing's cost the non-blocking schemes of
// the paper's related work (Coti et al., Ni et al.) could recover.
type SemiBlockingSpec struct {
	Config
	// Class and Fraction pick the application (defaults C64 at 50%,
	// where blocking checkpoint overhead is pronounced).
	Class    workload.Class
	Fraction float64
	// Rates is the sweep (default 0, 0.25, 0.5, 0.75).
	Rates []float64
	// Trials per point (default 60).
	Trials int
}

// SemiBlockingPoint is one technique at one overlap rate.
type SemiBlockingPoint struct {
	Technique  core.Technique
	Rate       float64
	Efficiency stats.Summary
}

// SemiBlockingResult is the study's data set.
type SemiBlockingResult struct{ Points []SemiBlockingPoint }

// Point finds one technique/rate pair.
func (r SemiBlockingResult) Point(t core.Technique, rate float64) (SemiBlockingPoint, bool) {
	for _, p := range r.Points {
		if p.Technique == t && p.Rate == rate {
			return p, true
		}
	}
	return SemiBlockingPoint{}, false
}

// Run executes the study.
func (s SemiBlockingSpec) Run() (*report.Table, SemiBlockingResult, error) {
	if s.Class.Name == "" {
		s.Class = workload.C64
	}
	if s.Fraction == 0 {
		s.Fraction = 0.50
	}
	if s.Rates == nil {
		s.Rates = []float64{0, 0.25, 0.5, 0.75}
	}
	if s.Trials == 0 {
		s.Trials = 60
	}
	if err := s.Validate(); err != nil {
		return nil, SemiBlockingResult{}, err
	}
	model, err := s.model(0)
	if err != nil {
		return nil, SemiBlockingResult{}, err
	}

	techniques := []core.Technique{core.CheckpointRestart, core.MultilevelCheckpoint}
	cols := []string{"overlap rate"}
	for _, tech := range techniques {
		cols = append(cols, tech.String())
	}
	t := report.New(
		fmt.Sprintf("Semi-blocking checkpoint extension (%s at %s of the machine)", s.Class.Name, fracLabel(s.Fraction)),
		cols...)
	t.AddNote("overlap rate 0 is the paper's blocking model; higher rates keep computing during checkpoint writes")
	t.AddNote("mean ± stddev of %d trials", s.Trials)

	var result SemiBlockingResult
	app := workload.App{Class: s.Class, TimeSteps: 1440, Nodes: s.Machine.NodesForFraction(s.Fraction)}
	for _, rate := range s.Rates {
		rc := s.Resilience
		rc.CheckpointComputeRate = rate
		row := []string{report.F(rate)}
		for ti, tech := range techniques {
			x, err := resilience.New(tech, app, s.Machine, model, rc)
			if err != nil {
				return nil, SemiBlockingResult{}, err
			}
			st := appsim.Run(appsim.TrialSpec{
				Executor: x,
				Trials:   s.Trials,
				Seed:     s.Seed ^ uint64(ti+501)*0x9e3779b97f4a7c15,
				Workers:  s.workers(),
			})
			result.Points = append(result.Points, SemiBlockingPoint{
				Technique:  tech,
				Rate:       rate,
				Efficiency: st.Efficiency,
			})
			row = append(row, report.Eff(st.Efficiency.Mean, st.Efficiency.StdDev))
		}
		t.AddRow(row...)
	}
	return t, result, nil
}

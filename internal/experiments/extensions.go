package experiments

// This file holds the repository's extension studies — exhibits beyond the
// paper's own tables and figures, exercising the substrates the paper
// references but does not evaluate (energy, after the authors' companion
// study), sensitivity knobs the paper holds fixed (component MTBF sweep,
// the Poisson failure assumption), and the EASY-backfill scheduler
// extension. Each driver follows the same contract as the Figure drivers:
// a rendered table plus a structured result.

import (
	"fmt"

	"exaresil/internal/analytic"
	"exaresil/internal/appsim"
	"exaresil/internal/cluster"
	"exaresil/internal/core"
	"exaresil/internal/energy"
	"exaresil/internal/failures"
	"exaresil/internal/report"
	"exaresil/internal/resilience"
	"exaresil/internal/rng"
	"exaresil/internal/selection"
	"exaresil/internal/stats"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// EnergySpec configures the energy-overhead study: for each technique and
// application class at a fixed size, the mean energy consumed and the
// fraction that is overhead (everything but first-time compute).
type EnergySpec struct {
	Config
	// Fraction is the application size (default one quarter).
	Fraction float64
	// TimeSteps is T_S (default 1440).
	TimeSteps int
	// Trials per cell (default 50).
	Trials int
	// Power is the node power model (default energy.Default).
	Power energy.PowerModel
}

// EnergyCell is one technique/class cell.
type EnergyCell struct {
	Technique core.Technique
	Class     workload.Class
	// TotalMWh summarizes consumed energy over completed trials.
	TotalMWh stats.Summary
	// Overhead summarizes the non-compute energy fraction.
	Overhead stats.Summary
}

// EnergyResult is the study's data set.
type EnergyResult struct {
	Cells []EnergyCell
}

// Cell finds one technique/class pair.
func (r EnergyResult) Cell(t core.Technique, class string) (EnergyCell, bool) {
	for _, c := range r.Cells {
		if c.Technique == t && c.Class.Name == class {
			return c, true
		}
	}
	return EnergyCell{}, false
}

// Run executes the energy study.
func (s EnergySpec) Run() (*report.Table, EnergyResult, error) {
	if s.Fraction == 0 {
		s.Fraction = 0.25
	}
	if s.TimeSteps == 0 {
		s.TimeSteps = 1440
	}
	if s.Trials == 0 {
		s.Trials = 50
	}
	if s.Power == (energy.PowerModel{}) {
		s.Power = energy.Default()
	}
	if err := s.Validate(); err != nil {
		return nil, EnergyResult{}, err
	}
	if err := s.Power.Validate(); err != nil {
		return nil, EnergyResult{}, err
	}
	model, err := s.model(0)
	if err != nil {
		return nil, EnergyResult{}, err
	}

	classes := []workload.Class{workload.A32, workload.B64, workload.C64, workload.D64}
	techniques := []core.Technique{core.CheckpointRestart, core.MultilevelCheckpoint, core.ParallelRecovery}

	cols := []string{"class", "ideal energy"}
	for _, tech := range techniques {
		cols = append(cols, tech.String()+" (overhead)")
	}
	t := report.New(
		fmt.Sprintf("Energy overhead per technique at %s of the machine", fracLabel(s.Fraction)),
		cols...)
	t.AddNote("mean of %d trials; overhead = non-compute fraction of total energy", s.Trials)
	t.AddNote("node power: %.0fW compute / %.0fW I/O / %.0fW idle",
		float64(s.Power.Compute), float64(s.Power.IO), float64(s.Power.Idle))

	var result EnergyResult
	for _, class := range classes {
		app := workload.App{Class: class, TimeSteps: s.TimeSteps, Nodes: s.Machine.NodesForFraction(s.Fraction)}
		ideal := energy.IdealEnergy(app.Baseline(), app.Nodes, s.Power)
		row := []string{class.Name, ideal.String()}
		for ti, tech := range techniques {
			x, err := resilience.New(tech, app, s.Machine, model, s.Resilience)
			if err != nil {
				return nil, EnergyResult{}, err
			}
			var total, overhead stats.Accumulator
			for trial := 0; trial < s.Trials; trial++ {
				res := x.Run(0, units.Duration(appsim.DefaultHorizonFactor*float64(app.Baseline())),
					rng.Stream(s.Seed^uint64(ti+1)*0x2545f4914f6cdd1d, uint64(trial)))
				if !res.Completed {
					continue
				}
				b, err := energy.Account(res, x.PhysicalNodes(), s.Resilience.RecoverySpeedup, s.Power)
				if err != nil {
					return nil, EnergyResult{}, err
				}
				total.Add(b.Total.MWh())
				overhead.Add(b.Overhead())
			}
			result.Cells = append(result.Cells, EnergyCell{
				Technique: tech,
				Class:     class,
				TotalMWh:  total.Summarize(),
				Overhead:  overhead.Summarize(),
			})
			row = append(row, fmt.Sprintf("%.1fMWh (%.1f%%)",
				total.Mean(), 100*overhead.Mean()))
		}
		t.AddRow(row...)
	}
	return t, result, nil
}

// MTBFSweepSpec configures the reliability sensitivity sweep: technique
// efficiency for one application size as the component MTBF degrades,
// generalizing the Figure 2 -> Figure 3 comparison to a curve.
type MTBFSweepSpec struct {
	Config
	// Class and Fraction pick the application (defaults D64 at 25%).
	Class    workload.Class
	Fraction float64
	// MTBFYears is the sweep (default 20, 10, 5, 2.5, 1.25).
	MTBFYears []float64
	// Trials per point (default 50).
	Trials int
}

// MTBFPoint is one technique at one MTBF.
type MTBFPoint struct {
	Technique  core.Technique
	MTBF       units.Duration
	Efficiency stats.Summary
}

// MTBFResult is the sweep's data set.
type MTBFResult struct{ Points []MTBFPoint }

// Point finds one technique/MTBF pair.
func (r MTBFResult) Point(t core.Technique, years float64) (MTBFPoint, bool) {
	for _, p := range r.Points {
		if p.Technique == t && p.MTBF == units.Duration(years)*units.Year {
			return p, true
		}
	}
	return MTBFPoint{}, false
}

// Run executes the sweep.
func (s MTBFSweepSpec) Run() (*report.Table, MTBFResult, error) {
	if s.Class.Name == "" {
		s.Class = workload.D64
	}
	if s.Fraction == 0 {
		s.Fraction = 0.25
	}
	if s.MTBFYears == nil {
		s.MTBFYears = []float64{20, 10, 5, 2.5, 1.25}
	}
	if s.Trials == 0 {
		s.Trials = 50
	}
	if err := s.Validate(); err != nil {
		return nil, MTBFResult{}, err
	}

	techniques := []core.Technique{core.CheckpointRestart, core.MultilevelCheckpoint, core.ParallelRecovery}
	cols := []string{"MTBF (years)"}
	for _, tech := range techniques {
		cols = append(cols, tech.String())
	}
	t := report.New(
		fmt.Sprintf("Efficiency vs. component MTBF (%s at %s of the machine)", s.Class.Name, fracLabel(s.Fraction)),
		cols...)
	t.AddNote("mean ± stddev of %d trials; extends the Figure 2 vs. Figure 3 comparison to a curve", s.Trials)

	var result MTBFResult
	app := workload.App{Class: s.Class, TimeSteps: 1440, Nodes: s.Machine.NodesForFraction(s.Fraction)}
	for _, years := range s.MTBFYears {
		mtbf := units.Duration(years) * units.Year
		model, err := s.model(mtbf)
		if err != nil {
			return nil, MTBFResult{}, err
		}
		row := []string{report.F(years)}
		for ti, tech := range techniques {
			x, err := resilience.New(tech, app, s.Machine, model, s.Resilience)
			if err != nil {
				return nil, MTBFResult{}, err
			}
			st := appsim.Run(appsim.TrialSpec{
				Executor: x,
				Trials:   s.Trials,
				Seed:     s.Seed ^ uint64(ti+101)*0x9e3779b97f4a7c15,
				Workers:  s.workers(),
			})
			result.Points = append(result.Points, MTBFPoint{
				Technique:  tech,
				MTBF:       mtbf,
				Efficiency: st.Efficiency,
			})
			row = append(row, report.Eff(st.Efficiency.Mean, st.Efficiency.StdDev))
		}
		t.AddRow(row...)
	}
	return t, result, nil
}

// WeibullSpec configures the failure-distribution sensitivity study: does
// the paper's Poisson (exponential) assumption matter? The study repeats a
// scaling point under Weibull inter-arrivals of decreasing shape (more
// bursty) at the same MTBF.
type WeibullSpec struct {
	Config
	// Class and Fraction pick the application (defaults C64 at 25%).
	Class    workload.Class
	Fraction float64
	// Shapes is the sweep (default 1.0, 0.8, 0.6).
	Shapes []float64
	// Trials per point (default 50).
	Trials int
}

// WeibullPoint is one technique at one shape.
type WeibullPoint struct {
	Technique  core.Technique
	Shape      float64
	Efficiency stats.Summary
}

// WeibullResult is the study's data set.
type WeibullResult struct{ Points []WeibullPoint }

// Point finds one technique/shape pair.
func (r WeibullResult) Point(t core.Technique, shape float64) (WeibullPoint, bool) {
	for _, p := range r.Points {
		if p.Technique == t && p.Shape == shape {
			return p, true
		}
	}
	return WeibullPoint{}, false
}

// Run executes the study.
func (s WeibullSpec) Run() (*report.Table, WeibullResult, error) {
	if s.Class.Name == "" {
		s.Class = workload.C64
	}
	if s.Fraction == 0 {
		s.Fraction = 0.25
	}
	if s.Shapes == nil {
		s.Shapes = []float64{1.0, 0.8, 0.6}
	}
	if s.Trials == 0 {
		s.Trials = 50
	}
	if err := s.Validate(); err != nil {
		return nil, WeibullResult{}, err
	}

	techniques := []core.Technique{core.CheckpointRestart, core.MultilevelCheckpoint, core.ParallelRecovery}
	cols := []string{"Weibull shape"}
	for _, tech := range techniques {
		cols = append(cols, tech.String())
	}
	t := report.New(
		fmt.Sprintf("Efficiency vs. failure inter-arrival shape (%s at %s, MTBF held at %s)",
			s.Class.Name, fracLabel(s.Fraction), mtbfLabel(s.Machine.MTBF)),
		cols...)
	t.AddNote("shape 1.0 is the paper's Poisson assumption; lower shapes are burstier at equal mean")
	t.AddNote("mean ± stddev of %d trials", s.Trials)

	var result WeibullResult
	app := workload.App{Class: s.Class, TimeSteps: 1440, Nodes: s.Machine.NodesForFraction(s.Fraction)}
	for _, shape := range s.Shapes {
		model, err := failures.NewWeibullModel(s.Machine.MTBF, s.SeverityPMF, shape)
		if err != nil {
			return nil, WeibullResult{}, err
		}
		row := []string{report.F(shape)}
		for ti, tech := range techniques {
			x, err := resilience.New(tech, app, s.Machine, model, s.Resilience)
			if err != nil {
				return nil, WeibullResult{}, err
			}
			st := appsim.Run(appsim.TrialSpec{
				Executor: x,
				Trials:   s.Trials,
				Seed:     s.Seed ^ uint64(ti+201)*0x9e3779b97f4a7c15,
				Workers:  s.workers(),
			})
			result.Points = append(result.Points, WeibullPoint{
				Technique:  tech,
				Shape:      shape,
				Efficiency: st.Efficiency,
			})
			row = append(row, report.Eff(st.Efficiency.Mean, st.Efficiency.StdDev))
		}
		t.AddRow(row...)
	}
	return t, result, nil
}

// BackfillSpec configures the scheduler-extension study: Figure 4 rerun
// with all four heuristics, quantifying what EASY backfilling buys over
// strict FCFS.
type BackfillSpec struct {
	Config
	// Patterns and Arrivals size the study (defaults 20 x 100: the
	// comparison stabilizes faster than the full Figure 4).
	Patterns int
	Arrivals int
}

// Run executes the study, reusing the Figure 4 machinery with the extended
// scheduler list.
func (s BackfillSpec) Run() (*report.Table, ClusterResult, error) {
	if s.Patterns == 0 {
		s.Patterns = 20
	}
	if s.Arrivals == 0 {
		s.Arrivals = 100
	}
	t, res, err := ClusterSpec{
		Config:     s.Config,
		Patterns:   s.Patterns,
		Arrivals:   s.Arrivals,
		Schedulers: core.AllSchedulers(),
	}.Run()
	if err != nil {
		return nil, ClusterResult{}, err
	}
	t.Title = "Scheduler extension: dropped applications with EASY backfilling"
	t.AddNote("EASY-Backfill is a repository extension; the paper evaluates the first three heuristics")
	return t, res, nil
}

// SelectorAgreementSpec configures the analytic-vs-Monte-Carlo selector
// comparison: how often the fast closed-form policy agrees with the
// simulation-probed policy, and how both fare in a cluster run.
type SelectorAgreementSpec struct {
	Config
	// Patterns and Arrivals size the cluster comparison (defaults 10 x 60).
	Patterns int
	Arrivals int
	// Probe tunes the Monte-Carlo selector (defaults as in Figure 5).
	Probe selection.Options
}

// SelectorAgreementResult summarizes the comparison.
type SelectorAgreementResult struct {
	// Agreement is the fraction of (class, size) cells where both
	// selectors pick the same technique.
	Agreement float64
	// MonteCarloDropped and AnalyticDropped summarize cluster drops with
	// each policy under slack-based scheduling.
	MonteCarloDropped, AnalyticDropped stats.Summary
}

// Run executes the comparison.
func (s SelectorAgreementSpec) Run() (*report.Table, SelectorAgreementResult, error) {
	if s.Patterns == 0 {
		s.Patterns = 10
	}
	if s.Arrivals == 0 {
		s.Arrivals = 60
	}
	if err := s.Validate(); err != nil {
		return nil, SelectorAgreementResult{}, err
	}
	model, err := s.model(0)
	if err != nil {
		return nil, SelectorAgreementResult{}, err
	}

	probe := s.Probe
	if probe.Seed == 0 {
		probe.Seed = s.Seed ^ 0xe7037ed1a0b428db
	}
	mc, err := selection.NewSelector(s.Machine, model, s.Resilience, probe)
	if err != nil {
		return nil, SelectorAgreementResult{}, err
	}
	an, err := analytic.NewSelector(nil, s.Machine, model, s.Resilience)
	if err != nil {
		return nil, SelectorAgreementResult{}, err
	}

	// Cell-level agreement over the Monte-Carlo selector's own grid.
	agree, total := 0, 0
	for _, choice := range mc.Choices() {
		app := workload.App{
			Class:     choice.Class,
			TimeSteps: 1440,
			Nodes:     s.Machine.NodesForFraction(choice.Fraction),
		}
		total++
		if an.Choose(app) == choice.Best {
			agree++
		}
	}

	// Cluster-level comparison under slack-based scheduling.
	var mcDrop, anDrop stats.Accumulator
	for p := 0; p < s.Patterns; p++ {
		pattern := workload.PatternSpec{Arrivals: s.Arrivals, FillSystem: true}.
			Generate(s.Machine, rng.Stream(s.Seed, uint64(p+7000)))
		for _, policy := range []struct {
			choose cluster.TechniqueChooser
			acc    *stats.Accumulator
		}{
			{mc.Choose, &mcDrop},
			{an.Choose, &anDrop},
		} {
			m, err := cluster.Run(cluster.Spec{
				Machine:    s.Machine,
				Model:      model,
				Scheduler:  core.SlackBased,
				Chooser:    policy.choose,
				Resilience: s.Resilience,
				Pattern:    pattern,
				Seed:       s.Seed ^ uint64(p+1)*0xd1342543de82ef95,
			})
			if err != nil {
				return nil, SelectorAgreementResult{}, err
			}
			policy.acc.Add(m.DroppedPct())
		}
	}

	result := SelectorAgreementResult{
		Agreement:         float64(agree) / float64(total),
		MonteCarloDropped: mcDrop.Summarize(),
		AnalyticDropped:   anDrop.Summarize(),
	}
	t := report.New("Resilience Selection policies: Monte-Carlo probing vs. closed-form model",
		"metric", "value")
	t.AddRow("policy-cell agreement", fmt.Sprintf("%.0f%% of %d cells", 100*result.Agreement, total))
	t.AddRow("dropped (Monte-Carlo policy)", report.Pct(result.MonteCarloDropped.Mean, result.MonteCarloDropped.StdDev))
	t.AddRow("dropped (analytic policy)", report.Pct(result.AnalyticDropped.Mean, result.AnalyticDropped.StdDev))
	t.AddNote("cluster rows: slack-based scheduling over %d patterns of %d arrivals", s.Patterns, s.Arrivals)
	return t, result, nil
}

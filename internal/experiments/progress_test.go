package experiments

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// collector is a concurrency-safe OnCell sink.
type collector struct {
	mu    sync.Mutex
	cells map[int][]float64
}

func newCollector() *collector { return &collector{cells: map[int][]float64{}} }

func (c *collector) onCell(cell int, values []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.cells[cell]; dup {
		panic("duplicate cell index reported")
	}
	c.cells[cell] = values
}

func (c *collector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cells)
}

func (c *collector) snapshot() map[int][]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int][]float64, len(c.cells))
	for k, v := range c.cells {
		out[k] = v
	}
	return out
}

// TestProgressResumeBitIdentical is the checkpoint/restart contract: a
// fig4 grid resumed from recorded cell outcomes renders exactly the
// bytes an uninterrupted run renders, while recomputing nothing.
func TestProgressResumeBitIdentical(t *testing.T) {
	cfg := Default()
	spec := ClusterSpec{Config: cfg, Patterns: 2, Arrivals: 10}

	rec := newCollector()
	fresh := spec
	fresh.Progress = &Progress{OnCell: rec.onCell}
	wantTable, _, err := fresh.Run()
	if err != nil {
		t.Fatal(err)
	}
	total := rec.len()
	if want := 12 * 2; total != want { // 3 schedulers x 4 techniques x 2 patterns
		t.Fatalf("fresh run reported %d cells, want %d", total, want)
	}

	// Full resume: every cell restored, zero recomputed.
	resumedRec := newCollector()
	resumed := spec
	resumed.Progress = &Progress{Completed: rec.snapshot(), OnCell: resumedRec.onCell}
	gotTable, _, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resumedRec.len() != 0 {
		t.Fatalf("full resume recomputed %d cells", resumedRec.len())
	}
	if gotTable.String() != wantTable.String() {
		t.Fatal("fully resumed table diverges from the uninterrupted run")
	}

	// Partial resume: drop a few recorded cells; only those are redone.
	partial := rec.snapshot()
	dropped := 0
	for k := range partial {
		delete(partial, k)
		if dropped++; dropped == 5 {
			break
		}
	}
	partialRec := newCollector()
	half := spec
	half.Progress = &Progress{Completed: partial, OnCell: partialRec.onCell}
	gotTable, _, err = half.Run()
	if err != nil {
		t.Fatal(err)
	}
	if partialRec.len() != 5 {
		t.Fatalf("partial resume recomputed %d cells, want 5", partialRec.len())
	}
	if gotTable.String() != wantTable.String() {
		t.Fatal("partially resumed table diverges from the uninterrupted run")
	}
}

// TestProgressAbortReturnsCause: a run whose context is already canceled
// does no work and surfaces the cancellation cause, once.
func TestProgressAbortReturnsCause(t *testing.T) {
	cause := errors.New("injected worker crash")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)

	rec := newCollector()
	spec := ClusterSpec{Config: Default(), Patterns: 2, Arrivals: 10}
	spec.Progress = &Progress{Ctx: ctx, OnCell: rec.onCell}
	_, _, err := spec.Run()
	if !errors.Is(err, cause) {
		t.Fatalf("Run error = %v, want the cancellation cause", err)
	}
	if rec.len() != 0 {
		t.Fatalf("canceled run still computed %d cells", rec.len())
	}
}

// TestProgressCrashThenResume interrupts a run mid-grid (as the serve
// layer's injected crash does: cancel-with-cause from OnCell), then
// resumes from the recorded cells and requires the final table to match
// an uninterrupted run exactly.
func TestProgressCrashThenResume(t *testing.T) {
	cfg := Default()
	spec := ClusterSpec{Config: cfg, Patterns: 2, Arrivals: 10}

	wantTable, _, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}

	crash := errors.New("injected worker crash")
	ctx, cancel := context.WithCancelCause(context.Background())
	rec := newCollector()
	interrupted := spec
	// One worker makes the interruption point deterministic: with many
	// workers, cells already in flight when the cancel lands would still
	// finish and the "strict subset" assertion below could race to 24/24.
	interrupted.Workers = 1
	interrupted.Progress = &Progress{
		Ctx: ctx,
		OnCell: func(cell int, values []float64) {
			rec.onCell(cell, values)
			if rec.len() >= 3 {
				cancel(crash)
			}
		},
	}
	if _, _, err := interrupted.Run(); !errors.Is(err, crash) {
		t.Fatalf("interrupted Run error = %v, want the crash cause", err)
	}
	done := rec.len()
	if done < 3 || done >= 24 {
		t.Fatalf("crash checkpointed %d cells, want a strict subset of 24 with at least 3", done)
	}

	resumedRec := newCollector()
	resumed := spec
	resumed.Progress = &Progress{Completed: rec.snapshot(), OnCell: resumedRec.onCell}
	gotTable, _, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resumedRec.len() != 24-done {
		t.Fatalf("resume recomputed %d cells, want %d", resumedRec.len(), 24-done)
	}
	if gotTable.String() != wantTable.String() {
		t.Fatal("crash-resumed table diverges from the uninterrupted run")
	}
}

// TestProgressFig5DisjointRanges: fig5 runs one grid per bias; each grid
// must report into its own cell-index range (the collector panics on a
// duplicate), and a full resume must restore every grid.
func TestProgressFig5DisjointRanges(t *testing.T) {
	cfg := Default()
	spec := SelectionSpec{Config: cfg, Patterns: 2, Arrivals: 8}

	rec := newCollector()
	fresh := spec
	fresh.Progress = &Progress{OnCell: rec.onCell}
	wantTable, _, err := fresh.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 4 biases x (3 schedulers x 2 variants) x 2 patterns.
	if want := 4 * 3 * 2 * 2; rec.len() != want {
		t.Fatalf("fig5 reported %d cells, want %d", rec.len(), want)
	}

	resumedRec := newCollector()
	resumed := spec
	resumed.Progress = &Progress{Completed: rec.snapshot(), OnCell: resumedRec.onCell}
	gotTable, _, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resumedRec.len() != 0 {
		t.Fatalf("fig5 full resume recomputed %d cells", resumedRec.len())
	}
	if gotTable.String() != wantTable.String() {
		t.Fatal("fig5 resumed table diverges from the uninterrupted run")
	}
}

// TestProgressNilIsInert: attaching no hook changes nothing — the
// config-level guarantee the serve layer depends on.
func TestProgressNilIsInert(t *testing.T) {
	cfg := Default()
	base := ClusterSpec{Config: cfg, Patterns: 2, Arrivals: 10}
	wantTable, _, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	hooked := base
	hooked.Progress = &Progress{} // non-nil but empty: still inert
	gotTable, _, err := hooked.Run()
	if err != nil {
		t.Fatal(err)
	}
	if gotTable.String() != wantTable.String() {
		t.Fatal("an empty Progress hook changed the exhibit's output")
	}
}

package experiments

import (
	"fmt"

	"exaresil/internal/appsim"
	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/report"
	"exaresil/internal/resilience"
	"exaresil/internal/selection"
	"exaresil/internal/stats"
	"exaresil/internal/workload"
)

// MachinesSpec configures the cross-machine study: each technique's
// efficiency for the same application class at the same machine *fraction*
// on today's reference machine (Sunway TaihuLight, ~40k nodes) and on the
// projected exascale machine — making the paper's framing concrete: an
// application "considered large today" is a rounding error at exascale,
// and techniques that are fine at petascale fall over at the next scale.
type MachinesSpec struct {
	Config
	// Machines are the platforms to compare (default: TaihuLight and the
	// exascale projection, both at the Config's severity distribution and
	// each machine's own MTBF).
	Machines []machine.Config
	// Class and Fraction pick the application (defaults C64 at 25%).
	Class    workload.Class
	Fraction float64
	// Trials per cell (default 50).
	Trials int
}

// MachineCell is one technique on one machine.
type MachineCell struct {
	Machine    string
	Technique  core.Technique
	Nodes      int
	Efficiency stats.Summary
}

// MachinesResult is the study's data set.
type MachinesResult struct{ Cells []MachineCell }

// Cell finds one machine/technique pair.
func (r MachinesResult) Cell(machineName string, t core.Technique) (MachineCell, bool) {
	for _, c := range r.Cells {
		if c.Machine == machineName && c.Technique == t {
			return c, true
		}
	}
	return MachineCell{}, false
}

// Run executes the study.
func (s MachinesSpec) Run() (*report.Table, MachinesResult, error) {
	if s.Machines == nil {
		s.Machines = []machine.Config{machine.SunwayTaihuLight(), machine.Exascale()}
	}
	if s.Class.Name == "" {
		s.Class = workload.C64
	}
	if s.Fraction == 0 {
		s.Fraction = 0.25
	}
	if s.Trials == 0 {
		s.Trials = 50
	}
	if err := s.SeverityPMF.Validate(); err != nil {
		return nil, MachinesResult{}, err
	}
	if err := s.Resilience.Validate(); err != nil {
		return nil, MachinesResult{}, err
	}

	// The paper's five: the cross-machine table is a 2017-exhibit
	// companion, so its shape stays pinned as the technique menu grows.
	techniques := core.PaperTechniques()
	cols := []string{"machine", "nodes used"}
	for _, tech := range techniques {
		cols = append(cols, tech.String())
	}
	t := report.New(
		fmt.Sprintf("Cross-machine comparison (%s at %s of each machine)", s.Class.Name, fracLabel(s.Fraction)),
		cols...)
	t.AddNote("same application class and machine fraction; each machine at its own MTBF")
	t.AddNote("mean ± stddev of %d trials", s.Trials)

	var result MachinesResult
	for _, cfg := range s.Machines {
		if err := cfg.Validate(); err != nil {
			return nil, MachinesResult{}, err
		}
		model, err := failures.NewModel(cfg.MTBF, s.SeverityPMF)
		if err != nil {
			return nil, MachinesResult{}, err
		}
		app := workload.App{
			Class:     s.Class,
			TimeSteps: 1440,
			Nodes:     cfg.NodesForFraction(s.Fraction),
		}
		row := []string{cfg.Name, report.I(app.Nodes)}
		for ti, tech := range techniques {
			x, err := resilience.New(tech, app, cfg, model, s.Resilience)
			if err != nil {
				return nil, MachinesResult{}, err
			}
			st := appsim.Run(appsim.TrialSpec{
				Executor: x,
				Trials:   s.Trials,
				Seed:     s.Seed ^ uint64(ti+401)*0x9e3779b97f4a7c15,
				Workers:  s.workers(),
			})
			result.Cells = append(result.Cells, MachineCell{
				Machine:    cfg.Name,
				Technique:  tech,
				Nodes:      app.Nodes,
				Efficiency: st.Efficiency,
			})
			row = append(row, report.Eff(st.Efficiency.Mean, st.Efficiency.StdDev))
		}
		t.AddRow(row...)
	}
	return t, result, nil
}

// PolicyTable renders the Resilience Selection policy the Section VII
// study learns: the winning technique and per-candidate probe efficiencies
// for every (class, size) cell.
func PolicyTable(cfg Config, opts selection.Options) (*report.Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	model, err := cfg.model(0)
	if err != nil {
		return nil, err
	}
	if opts.Seed == 0 {
		opts.Seed = cfg.Seed ^ 0xa0761d6478bd642f
	}
	sel, err := selection.NewSelector(cfg.Machine, model, cfg.Resilience, opts)
	if err != nil {
		return nil, err
	}

	cols := []string{"class", "size", "best technique"}
	for _, tech := range sel.Techniques() {
		cols = append(cols, tech.String())
	}
	t := report.New("Resilience Selection policy (probe efficiencies per cell)", cols...)
	t.AddNote("machine %s; the chooser picks the row's best technique for arriving applications", cfg.Machine.Name)
	for _, c := range sel.Choices() {
		row := []string{c.Class.Name, fracLabel(c.Fraction), c.Best.String()}
		for _, e := range c.Efficiency {
			row = append(row, fmt.Sprintf("%.3f", e))
		}
		t.AddRow(row...)
	}
	return t, nil
}

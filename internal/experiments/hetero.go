package experiments

import (
	"fmt"

	"exaresil/internal/cluster"
	"exaresil/internal/core"
	"exaresil/internal/machine"
	"exaresil/internal/report"
	"exaresil/internal/rng"
	"exaresil/internal/stats"
	"exaresil/internal/workload"
)

// HeteroSpec configures the heterogeneity extension study: the cluster
// simulation rerun on a mixed fleet of node classes (see
// internal/machine/hetero.go), asking two questions the homogeneous paper
// machine cannot pose. First, what does heterogeneity itself cost — the
// same workload on a fleet whose aggregate capacity matches the uniform
// machine but whose nodes differ in speed and reliability? Second, how
// much of that cost does placement recover — does steering
// checkpoint-heavy applications onto the hardened partition
// (cluster.PlaceReliability) beat capacity-only first-fit?
type HeteroSpec struct {
	Config
	// Fleet is the heterogeneous machine under study (default
	// machine.ExascaleHetero()). It must declare classes and match the
	// homogeneous Machine's node count so both fleets run identical
	// arrival patterns.
	Fleet machine.Config
	// Patterns and Arrivals size the study (defaults 10 x 60).
	Patterns int
	Arrivals int
	// Techniques are the resilience techniques compared across fleets
	// (default: multilevel checkpointing, the placement-sensitive
	// technique, against lightweight replication, the placement-neutral
	// one).
	Techniques []core.Technique
}

// HeteroCell is one (fleet arm, technique) outcome.
type HeteroCell struct {
	// Arm labels the fleet/placement combination.
	Arm string
	// Placement is the policy the arm ran under (meaningful only for the
	// heterogeneous arms).
	Placement cluster.PlacementPolicy
	Technique core.Technique
	// Dropped is the percentage of applications dropped, summarized over
	// patterns; MeanWaitMinutes the queueing delay.
	Dropped         stats.Summary
	MeanWaitMinutes stats.Summary
}

// HeteroResult is the study's full data set.
type HeteroResult struct {
	Cells []HeteroCell
}

// Cell finds one arm/technique combination.
func (r HeteroResult) Cell(arm string, t core.Technique) (HeteroCell, bool) {
	for _, c := range r.Cells {
		if c.Arm == arm && c.Technique == t {
			return c, true
		}
	}
	return HeteroCell{}, false
}

func (s HeteroSpec) withDefaults() HeteroSpec {
	if !s.Fleet.Heterogeneous() {
		s.Fleet = machine.ExascaleHetero()
	}
	if s.Patterns == 0 {
		s.Patterns = 10
	}
	if s.Arrivals == 0 {
		s.Arrivals = 60
	}
	if s.Techniques == nil {
		s.Techniques = []core.Technique{core.MultilevelCheckpoint, core.LightweightReplication}
	}
	return s
}

// heteroArm is one fleet/placement row of the study.
type heteroArm struct {
	label     string
	machine   machine.Config
	placement cluster.PlacementPolicy
}

// Run executes the study: three arms (the homogeneous baseline, the
// heterogeneous fleet under first-fit, and the same fleet under
// reliability-aware placement) over shared arrival patterns under
// slack-based scheduling, so every difference between rows is
// attributable to the fleet and the placement policy alone.
func (s HeteroSpec) Run() (*report.Table, HeteroResult, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, HeteroResult{}, err
	}
	if err := s.Fleet.Validate(); err != nil {
		return nil, HeteroResult{}, fmt.Errorf("experiments: hetero fleet: %w", err)
	}
	if s.Fleet.Nodes != s.Machine.Nodes {
		return nil, HeteroResult{}, fmt.Errorf("experiments: hetero fleet has %d nodes, homogeneous baseline %d; equal capacity is what makes the comparison meaningful",
			s.Fleet.Nodes, s.Machine.Nodes)
	}
	model, err := s.model(0)
	if err != nil {
		return nil, HeteroResult{}, err
	}

	// Every arm sees the same submissions (both fleets have the same node
	// count, so fill-system patterns transfer verbatim) and the same
	// per-pattern cluster seed.
	patterns := make([]workload.Pattern, s.Patterns)
	for p := range patterns {
		patterns[p] = workload.PatternSpec{Arrivals: s.Arrivals, FillSystem: true}.
			Generate(s.Machine, rng.Stream(s.Seed, uint64(p+9000)))
	}

	arms := []heteroArm{
		{label: "homogeneous", machine: s.Machine, placement: cluster.PlaceFirstFit},
		{label: "hetero/first-fit", machine: s.Fleet, placement: cluster.PlaceFirstFit},
		{label: "hetero/reliability", machine: s.Fleet, placement: cluster.PlaceReliability},
	}

	cols := []string{"fleet / placement"}
	for _, tech := range s.Techniques {
		cols = append(cols, tech.String())
	}
	t := report.New("Heterogeneity extension: dropped applications by fleet and placement policy", cols...)
	t.AddNote("mean ± stddev over %d arrival patterns of %d applications each; slack-based scheduling",
		s.Patterns, s.Arrivals)
	for _, cl := range s.Fleet.Classes {
		t.AddNote("fleet class %s: %d nodes, speed %.2fx, MTBF %s", cl.Name, cl.Count, cl.Speed, cl.MTBF)
	}
	t.AddNote("reliability-aware placement steers checkpoint-heavy applications onto the high-MTBF class")

	var result HeteroResult
	for _, arm := range arms {
		row := []string{arm.label}
		for _, tech := range s.Techniques {
			var drop, wait stats.Accumulator
			for p := 0; p < s.Patterns; p++ {
				m, err := cluster.Run(cluster.Spec{
					Machine:    arm.machine,
					Model:      model,
					Scheduler:  core.SlackBased,
					Technique:  tech,
					Resilience: s.Resilience,
					Placement:  arm.placement,
					Pattern:    patterns[p],
					Seed:       s.Seed ^ uint64(p+1)*0xd1342543de82ef95,
					Obs:        s.Obs,
				})
				if err != nil {
					return nil, HeteroResult{}, fmt.Errorf("experiments: hetero arm %s/%v pattern %d: %w",
						arm.label, tech, p, err)
				}
				drop.Add(m.DroppedPct())
				wait.Add(m.MeanWait.Minutes())
			}
			sum := drop.Summarize()
			result.Cells = append(result.Cells, HeteroCell{
				Arm:             arm.label,
				Placement:       arm.placement,
				Technique:       tech,
				Dropped:         sum,
				MeanWaitMinutes: wait.Summarize(),
			})
			row = append(row, report.Pct(sum.Mean, sum.StdDev))
		}
		t.AddRow(row...)
	}
	return t, result, nil
}

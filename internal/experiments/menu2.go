package experiments

import (
	"fmt"

	"exaresil/internal/core"
	"exaresil/internal/report"
	"exaresil/internal/selection"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// Menu2Spec configures the ext-menu2 study: the Section VII resilience
// selection re-run over the expanded seven-technique menu — the paper's
// five plus the post-2017 In-Memory Replicated Checkpoint (ReStore,
// arXiv:2203.01107) and Lightweight Replication (TeaMPI, arXiv:2005.12091)
// — across the MTBF ladder and the selection study's size grid. Each cell
// reports the winner the 2017 menu would have picked next to the expanded
// menu's winner, flagging where the 2017 choice is dethroned.
//
// Probing uses the variance-reduced paired scheme throughout (common
// random numbers across technique arms, antithetic pairs within an arm),
// so winner flips are measured on identical failure draws rather than
// sampling noise.
type Menu2Spec struct {
	Config
	// MTBFs is the failure-rate ladder (default 10y, 5y, 2.5y — the
	// paper's baseline, midpoint, and sensitivity values).
	MTBFs []units.Duration
	// Fractions is the size grid (default the selection study's
	// population).
	Fractions []float64
	// PairedTrials is the probe count per technique arm, in antithetic
	// pairs (default 15, i.e. 30 probes per arm).
	PairedTrials int
}

// Menu2Point is one cell's verdict.
type Menu2Point struct {
	MTBF     units.Duration
	Class    workload.Class
	Fraction float64
	// PaperBest is the winner restricted to the 2017 menu; MenuBest the
	// winner over all seven techniques. Dethroned reports a post-2017
	// winner (when MenuBest is a paper technique it equals PaperBest).
	PaperBest core.Technique
	PaperEff  float64
	MenuBest  core.Technique
	MenuEff   float64
	Dethroned bool
}

// Menu2Result is the study's data set.
type Menu2Result struct{ Points []Menu2Point }

// Dethroned counts the cells where the expanded menu overturns the 2017
// winner.
func (r Menu2Result) Dethroned() int {
	n := 0
	for _, p := range r.Points {
		if p.Dethroned {
			n++
		}
	}
	return n
}

// Point finds one cell.
func (r Menu2Result) Point(mtbf units.Duration, class string, frac float64) (Menu2Point, bool) {
	for _, p := range r.Points {
		if p.MTBF == mtbf && p.Class.Name == class && p.Fraction == frac {
			return p, true
		}
	}
	return Menu2Point{}, false
}

// Run executes the study.
func (s Menu2Spec) Run() (*report.Table, Menu2Result, error) {
	if s.MTBFs == nil {
		s.MTBFs = []units.Duration{10 * units.Year, 5 * units.Year, units.Duration(2.5) * units.Year}
	}
	if s.PairedTrials == 0 {
		s.PairedTrials = 15
	}
	if err := s.Validate(); err != nil {
		return nil, Menu2Result{}, err
	}

	menu := core.Techniques()
	paper := core.PaperTechniques()

	t := report.New(
		"Expanded-menu selection study: does the 2017 winner survive the post-2017 techniques?",
		"MTBF", "class", "size", "2017 winner", "2017 eff", "menu winner", "menu eff", "dethroned")
	t.AddNote("menu: the paper's five techniques plus ReStore (in-memory replicated checkpoints, arXiv:2203.01107) and TeaMPI (lightweight replication, arXiv:2005.12091)")
	t.AddNote("probes: %d antithetic pairs per technique arm on common random numbers", s.PairedTrials)

	var result Menu2Result
	for mi, mtbf := range s.MTBFs {
		model, err := s.model(mtbf)
		if err != nil {
			return nil, Menu2Result{}, err
		}
		sel, err := selection.NewSelector(s.Machine.WithMTBF(mtbf), model, s.Resilience, selection.Options{
			Techniques:    menu,
			SizeFractions: s.Fractions,
			PairedTrials:  s.PairedTrials,
			Seed:          s.Seed ^ uint64(mi+1)*0x9e3779b97f4a7c15,
			Workers:       s.workers(),
			Obs:           s.Obs,
		})
		if err != nil {
			return nil, Menu2Result{}, err
		}
		for _, c := range sel.Choices() {
			// The probe efficiencies are indexed as the menu, with the
			// paper's five first: the 2017 winner is the argmax of that
			// prefix on the very same common-random-number probes.
			pi, bi := 0, 0
			for i := range paper {
				if c.Efficiency[i] > c.Efficiency[pi] {
					pi = i
				}
			}
			for i := range menu {
				if c.Efficiency[i] > c.Efficiency[bi] {
					bi = i
				}
			}
			p := Menu2Point{
				MTBF:      mtbf,
				Class:     c.Class,
				Fraction:  c.Fraction,
				PaperBest: menu[pi],
				PaperEff:  c.Efficiency[pi],
				MenuBest:  menu[bi],
				MenuEff:   c.Efficiency[bi],
				Dethroned: bi >= len(paper),
			}
			result.Points = append(result.Points, p)
			dethroned := ""
			if p.Dethroned {
				dethroned = "yes"
			}
			t.AddRow(mtbf.String(), c.Class.Name, fracLabel(c.Fraction),
				p.PaperBest.String(), fmt.Sprintf("%.3f", p.PaperEff),
				p.MenuBest.String(), fmt.Sprintf("%.3f", p.MenuEff), dethroned)
		}
	}
	t.AddNote("dethroned in %d of %d cells", result.Dethroned(), len(result.Points))
	return t, result, nil
}

package experiments

// This file is the exhibit registry: the single table mapping every
// exhibit name — the paper's tables and figures plus the repository's
// extension studies — to the driver that regenerates it. cmd/exasim,
// cmd/exabench, and internal/serve all resolve names here, so adding an
// exhibit in one place makes it addressable from the CLI, the benchmark
// harness, and the HTTP service at once.

import (
	"fmt"
	"sort"
	"strings"

	"exaresil/internal/report"
	"exaresil/internal/selection"
)

// ChartKind tells renderers which bar-chart shape suits an exhibit's
// structured result.
type ChartKind int

// The chart shapes the registry distinguishes.
const (
	// ChartNone marks exhibits with no natural bar rendering.
	ChartNone ChartKind = iota
	// ChartScaling marks exhibits whose result is a ScalingResult.
	ChartScaling
	// ChartCluster marks exhibits whose result is a ClusterResult.
	ChartCluster
)

// Params tunes the statistical scale of a registry run. Zero fields keep
// each driver's own defaults (the paper's scales), so the zero Params
// reproduces the published exhibits exactly.
type Params struct {
	// Trials is the Monte-Carlo repetition count for trial-based exhibits
	// (figures 1-3, the ext-* sweeps, policy).
	Trials int
	// Patterns is the arrival-pattern count for cluster exhibits
	// (figures 4-5, ext-backfill, ext-selectors).
	Patterns int
	// Arrivals is the applications-per-pattern count for cluster exhibits.
	Arrivals int
	// Paired switches cluster exhibits (figures 4-5) to antithetic
	// pattern pairs — the variance-reduced mode (see ClusterSpec.Paired).
	Paired bool
	// Selection tunes selector construction for fig5 (zero value = the
	// driver defaults).
	Selection selection.Options
}

// Exhibit is one registry entry.
type Exhibit struct {
	// Name is the exhibit's CLI and API identifier.
	Name string
	// Group is "paper" for the paper's own exhibits, "ext" for the
	// repository extensions.
	Group string
	// Chart names the bar-chart shape of the structured result.
	Chart ChartKind
	// Run regenerates the exhibit. The any value is the driver's
	// structured result (ScalingResult, ClusterResult, ...), nil for
	// table-only exhibits.
	Run func(cfg Config, p Params) (*report.Table, any, error)
}

// registry lists every exhibit in display order: the paper's exhibits
// first (the "all" group), then the extensions (the "ext-all" group).
var registry = []Exhibit{
	{Name: "table1", Group: "paper", Chart: ChartNone,
		Run: func(cfg Config, p Params) (*report.Table, any, error) {
			return TableI(), nil, nil
		}},
	{Name: "table2", Group: "paper", Chart: ChartNone,
		Run: func(cfg Config, p Params) (*report.Table, any, error) {
			t, err := TableII(cfg)
			return t, nil, err
		}},
	{Name: "fig1", Group: "paper", Chart: ChartScaling,
		Run: func(cfg Config, p Params) (*report.Table, any, error) {
			t, res, err := Figure1(cfg, p.Trials)
			return t, res, err
		}},
	{Name: "fig2", Group: "paper", Chart: ChartScaling,
		Run: func(cfg Config, p Params) (*report.Table, any, error) {
			t, res, err := Figure2(cfg, p.Trials)
			return t, res, err
		}},
	{Name: "fig3", Group: "paper", Chart: ChartScaling,
		Run: func(cfg Config, p Params) (*report.Table, any, error) {
			t, res, err := Figure3(cfg, p.Trials)
			return t, res, err
		}},
	{Name: "fig4", Group: "paper", Chart: ChartCluster,
		Run: func(cfg Config, p Params) (*report.Table, any, error) {
			t, res, err := ClusterSpec{Config: cfg, Patterns: p.Patterns,
				Arrivals: p.Arrivals, Paired: p.Paired}.Run()
			return t, res, err
		}},
	{Name: "fig5", Group: "paper", Chart: ChartNone,
		Run: func(cfg Config, p Params) (*report.Table, any, error) {
			t, res, err := SelectionSpec{Config: cfg, Patterns: p.Patterns,
				Arrivals: p.Arrivals, Paired: p.Paired, Selection: p.Selection}.Run()
			return t, res, err
		}},
	{Name: "ext-energy", Group: "ext", Chart: ChartNone,
		Run: func(cfg Config, p Params) (*report.Table, any, error) {
			t, res, err := EnergySpec{Config: cfg, Trials: p.Trials}.Run()
			return t, res, err
		}},
	{Name: "ext-mtbf", Group: "ext", Chart: ChartNone,
		Run: func(cfg Config, p Params) (*report.Table, any, error) {
			t, res, err := MTBFSweepSpec{Config: cfg, Trials: p.Trials}.Run()
			return t, res, err
		}},
	{Name: "ext-weibull", Group: "ext", Chart: ChartNone,
		Run: func(cfg Config, p Params) (*report.Table, any, error) {
			t, res, err := WeibullSpec{Config: cfg, Trials: p.Trials}.Run()
			return t, res, err
		}},
	{Name: "ext-backfill", Group: "ext", Chart: ChartCluster,
		Run: func(cfg Config, p Params) (*report.Table, any, error) {
			t, res, err := BackfillSpec{Config: cfg, Patterns: p.Patterns, Arrivals: p.Arrivals}.Run()
			return t, res, err
		}},
	{Name: "ext-selectors", Group: "ext", Chart: ChartNone,
		Run: func(cfg Config, p Params) (*report.Table, any, error) {
			t, res, err := SelectorAgreementSpec{Config: cfg, Patterns: p.Patterns, Arrivals: p.Arrivals}.Run()
			return t, res, err
		}},
	{Name: "ext-tau", Group: "ext", Chart: ChartNone,
		Run: func(cfg Config, p Params) (*report.Table, any, error) {
			t, res, err := TauSweepSpec{Config: cfg, Trials: p.Trials}.Run()
			return t, res, err
		}},
	{Name: "ext-semiblocking", Group: "ext", Chart: ChartNone,
		Run: func(cfg Config, p Params) (*report.Table, any, error) {
			t, res, err := SemiBlockingSpec{Config: cfg, Trials: p.Trials}.Run()
			return t, res, err
		}},
	{Name: "ext-machines", Group: "ext", Chart: ChartNone,
		Run: func(cfg Config, p Params) (*report.Table, any, error) {
			t, res, err := MachinesSpec{Config: cfg, Trials: p.Trials}.Run()
			return t, res, err
		}},
	{Name: "ext-whatif", Group: "ext", Chart: ChartNone,
		Run: func(cfg Config, p Params) (*report.Table, any, error) {
			t, res, err := WhatIfSpec{Config: cfg}.Run()
			return t, res, err
		}},
	{Name: "ext-hetero", Group: "ext", Chart: ChartNone,
		Run: func(cfg Config, p Params) (*report.Table, any, error) {
			t, res, err := HeteroSpec{Config: cfg, Patterns: p.Patterns, Arrivals: p.Arrivals}.Run()
			return t, res, err
		}},
	{Name: "ext-menu2", Group: "ext", Chart: ChartNone,
		Run: func(cfg Config, p Params) (*report.Table, any, error) {
			t, res, err := Menu2Spec{Config: cfg, PairedTrials: p.Trials / 2}.Run()
			return t, res, err
		}},
	{Name: "policy", Group: "ext", Chart: ChartNone,
		Run: func(cfg Config, p Params) (*report.Table, any, error) {
			opts := p.Selection
			if opts.Trials == 0 {
				opts.Trials = p.Trials / 4
			}
			t, err := PolicyTable(cfg, opts)
			return t, nil, err
		}},
}

// Exhibits returns the registry in display order.
func Exhibits() []Exhibit {
	return append([]Exhibit(nil), registry...)
}

// Lookup finds an exhibit by name.
func Lookup(name string) (Exhibit, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Exhibit{}, false
}

// Names lists every exhibit name in display order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.Name
	}
	return out
}

// GroupNames lists the expandable group aliases.
func GroupNames() []string { return []string{"all", "ext-all"} }

// expandGroup resolves a group alias to its member names, or nil when the
// name is not a group.
func expandGroup(name string) []string {
	var group string
	switch name {
	case "all":
		group = "paper"
	case "ext-all":
		group = "ext"
	default:
		return nil
	}
	var out []string
	for _, e := range registry {
		if e.Group == group {
			out = append(out, e.Name)
		}
	}
	return out
}

// ExpandNames resolves a mixed list of exhibit and group names ("all",
// "ext-all") into concrete exhibit names, in the order given, validating
// every name before anything runs. An empty list expands to "all".
func ExpandNames(names []string) ([]string, error) {
	if len(names) == 0 {
		names = []string{"all"}
	}
	var out []string
	for _, name := range names {
		if members := expandGroup(name); members != nil {
			out = append(out, members...)
			continue
		}
		if _, ok := Lookup(name); !ok {
			return nil, fmt.Errorf("unknown exhibit %q (want %s)", name, nameHint())
		}
		out = append(out, name)
	}
	return out, nil
}

// nameHint renders the accepted names for error messages.
func nameHint() string {
	names := append(Names(), GroupNames()...)
	sort.Strings(names)
	return strings.Join(names, ", ")
}

package experiments

import (
	"fmt"

	"exaresil/internal/analytic"
	"exaresil/internal/core"
	"exaresil/internal/report"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// WhatIfSpec configures the analytic what-if sweep: the closed-form
// efficiency landscape over an (MTBF x application size x technique) grid,
// scored by the batch evaluator in internal/analytic. Unlike the
// Monte-Carlo exhibits it runs in microseconds, so the HTTP service can
// afford to expose it as an interactive "what if the MTBF halved?" query.
type WhatIfSpec struct {
	Config
	// Class is the application class (default D64, the paper's
	// checkpoint-heavy extreme).
	Class workload.Class
	// MTBFs is the failure-rate axis (default 10y, 5y, 2.5y, 1y: the
	// paper's baseline and sensitivity values plus two pessimistic
	// steps).
	MTBFs []units.Duration
	// Fractions is the size axis (default the scaling-figure x-axis).
	Fractions []float64
	// TimeSteps is T_S per application (default 1440).
	TimeSteps int
	// Techniques is the technique axis (default the full seven-technique menu).
	Techniques []core.Technique
}

// WhatIfPoint is one cell of the sweep.
type WhatIfPoint struct {
	MTBF       units.Duration
	Fraction   float64
	Nodes      int
	Technique  core.Technique
	Efficiency float64
}

// WhatIfResult is the sweep's structured data set.
type WhatIfResult struct {
	Class  workload.Class
	Points []WhatIfPoint
}

func (s WhatIfSpec) withDefaults() WhatIfSpec {
	if s.Class.Name == "" {
		s.Class = workload.D64
	}
	if s.MTBFs == nil {
		s.MTBFs = []units.Duration{
			10 * units.Year, 5 * units.Year,
			units.Duration(2.5) * units.Year, units.Year,
		}
	}
	if s.Fractions == nil {
		s.Fractions = DefaultScalingFractions()
	}
	if s.TimeSteps == 0 {
		s.TimeSteps = 1440
	}
	if s.Techniques == nil {
		s.Techniques = core.Techniques()
	}
	return s
}

// Run evaluates the grid and renders its table.
func (s WhatIfSpec) Run() (*report.Table, WhatIfResult, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, WhatIfResult{}, err
	}

	grid := analytic.Grid{
		Machine:    s.Machine,
		PMF:        s.SeverityPMF,
		Resilience: s.Resilience,
		Class:      s.Class,
		TimeSteps:  s.TimeSteps,
		MTBFs:      s.MTBFs,
		Techniques: s.Techniques,
	}
	for _, frac := range s.Fractions {
		grid.Nodes = append(grid.Nodes, s.Machine.NodesForFraction(frac))
	}
	ev, err := analytic.NewEvaluator(grid)
	if err != nil {
		return nil, WhatIfResult{}, err
	}
	eff := ev.Eval()

	result := WhatIfResult{Class: s.Class}
	cols := []string{"MTBF", "system use"}
	for _, tech := range s.Techniques {
		cols = append(cols, tech.String())
	}
	t := report.New(
		fmt.Sprintf("Analytic what-if efficiency landscape (%s)", s.Class.Name), cols...)
	t.AddNote("closed-form first-order efficiency; no Monte-Carlo sampling")
	t.AddNote("class %s: T_C = %.2f, %s per node; T_S = %d",
		s.Class.Name, s.Class.CommFraction, s.Class.MemoryPerNode, s.TimeSteps)

	for mi, mtbf := range s.MTBFs {
		for ni, frac := range s.Fractions {
			row := []string{mtbfLabel(mtbf), fracLabel(frac)}
			for ti, tech := range s.Techniques {
				v := eff[ev.Index(mi, ni, ti)]
				result.Points = append(result.Points, WhatIfPoint{
					MTBF:       mtbf,
					Fraction:   frac,
					Nodes:      grid.Nodes[ni],
					Technique:  tech,
					Efficiency: v,
				})
				row = append(row, fmt.Sprintf("%.4f", v))
			}
			t.AddRow(row...)
		}
	}
	return t, result, nil
}

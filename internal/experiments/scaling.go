package experiments

import (
	"fmt"

	"exaresil/internal/appsim"
	"exaresil/internal/core"
	"exaresil/internal/report"
	"exaresil/internal/resilience"
	"exaresil/internal/stats"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// ScalingSpec configures a Figure 1/2/3-style study: resilience-technique
// efficiency for one application class as it scales from one percent of
// the machine to the full machine.
type ScalingSpec struct {
	Config
	// Class is the application type (Figure 1: A32; Figures 2-3: D64).
	Class workload.Class
	// MTBF overrides the machine's component MTBF (Figure 3: 2.5 years);
	// zero keeps the machine default.
	MTBF units.Duration
	// Fractions is the x-axis (default 1, 5, 10, 25, 50, 100 percent).
	Fractions []float64
	// TimeSteps is T_S (default 1440: the one-day baseline of Section V).
	TimeSteps int
	// Trials is the Monte-Carlo repetition count (paper: 200).
	Trials int
	// Techniques are the bars per group (default: all five).
	Techniques []core.Technique
}

// ScalingPoint is one bar of the figure: a technique at a size.
type ScalingPoint struct {
	Technique  core.Technique
	Fraction   float64
	Nodes      int
	Efficiency stats.Summary
	Completion float64
}

// ScalingResult is a figure's full data set.
type ScalingResult struct {
	Class  workload.Class
	MTBF   units.Duration
	Points []ScalingPoint
}

// Point finds the result for a technique/fraction pair.
func (r ScalingResult) Point(t core.Technique, fraction float64) (ScalingPoint, bool) {
	for _, p := range r.Points {
		if p.Technique == t && p.Fraction == fraction {
			return p, true
		}
	}
	return ScalingPoint{}, false
}

// DefaultScalingFractions is the x-axis of Figures 1-3: one percent of the
// exascale machine (about 1.2 million cores, the scale of today's largest
// applications) through the full machine (123 million cores).
func DefaultScalingFractions() []float64 {
	return []float64{0.01, 0.05, 0.10, 0.25, 0.50, 1.00}
}

func (s ScalingSpec) withDefaults() ScalingSpec {
	if s.Fractions == nil {
		s.Fractions = DefaultScalingFractions()
	}
	if s.TimeSteps == 0 {
		s.TimeSteps = 1440
	}
	if s.Trials == 0 {
		s.Trials = 200
	}
	if s.Techniques == nil {
		// The paper's five, not the full menu: Figures 1-3 reproduce the
		// 2017 exhibits, whose pinned outputs must not shift as the
		// repository's technique menu grows (ext-menu2 covers the rest).
		s.Techniques = core.PaperTechniques()
	}
	if s.Class.Name == "" {
		s.Class = workload.A32
	}
	return s
}

// Run executes the study and renders its table.
func (s ScalingSpec) Run() (*report.Table, ScalingResult, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, ScalingResult{}, err
	}
	model, err := s.model(s.MTBF)
	if err != nil {
		return nil, ScalingResult{}, err
	}

	rm := resilience.NewMetrics(s.Obs)
	result := ScalingResult{Class: s.Class, MTBF: model.MTBF()}
	cols := []string{"system use"}
	for _, tech := range s.Techniques {
		cols = append(cols, tech.String())
	}
	t := report.New(
		fmt.Sprintf("Resilience technique efficiency vs. application size (%s, %s MTBF)",
			s.Class.Name, mtbfLabel(model.MTBF())),
		cols...)
	t.AddNote("efficiency = baseline execution time / execution time with slowdowns; mean ± stddev of %d trials", s.Trials)
	t.AddNote("class %s: T_C = %.2f, %s per node; T_S = %d (T_B = %s)",
		s.Class.Name, s.Class.CommFraction, s.Class.MemoryPerNode,
		s.TimeSteps, units.Duration(s.TimeSteps)*units.Minute)

	for _, frac := range s.Fractions {
		app := workload.App{
			Class:     s.Class,
			TimeSteps: s.TimeSteps,
			Nodes:     s.Machine.NodesForFraction(frac),
		}
		row := []string{fracLabel(frac)}
		for ti, tech := range s.Techniques {
			x, err := resilience.New(tech, app, s.Machine, model, s.Resilience)
			if err != nil {
				return nil, ScalingResult{}, fmt.Errorf("experiments: %v at %s: %w", tech, fracLabel(frac), err)
			}
			resilience.Instrument(x, rm)
			st := appsim.Run(appsim.TrialSpec{
				Executor: x,
				Trials:   s.Trials,
				Seed:     s.Seed ^ (uint64(ti+1) * 0x517cc1b727220a95),
				Workers:  s.workers(),
			})
			result.Points = append(result.Points, ScalingPoint{
				Technique:  tech,
				Fraction:   frac,
				Nodes:      app.Nodes,
				Efficiency: st.Efficiency,
				Completion: st.CompletionRate,
			})
			row = append(row, report.Eff(st.Efficiency.Mean, st.Efficiency.StdDev))
		}
		t.AddRow(row...)
	}
	return t, result, nil
}

// Figure1 is the low-memory, low-communication scaling study (class A32,
// ten-year MTBF).
func Figure1(cfg Config, trials int) (*report.Table, ScalingResult, error) {
	return ScalingSpec{Config: cfg, Class: workload.A32, Trials: trials}.Run()
}

// Figure2 is the high-memory, high-communication scaling study (class D64,
// ten-year MTBF).
func Figure2(cfg Config, trials int) (*report.Table, ScalingResult, error) {
	return ScalingSpec{Config: cfg, Class: workload.D64, Trials: trials}.Run()
}

// Figure3 repeats Figure 2 with a 2.5-year component MTBF.
func Figure3(cfg Config, trials int) (*report.Table, ScalingResult, error) {
	return ScalingSpec{
		Config: cfg,
		Class:  workload.D64,
		MTBF:   units.Duration(2.5) * units.Year,
		Trials: trials,
	}.Run()
}

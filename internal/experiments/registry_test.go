package experiments

import (
	"strings"
	"testing"
)

func TestRegistryNamesUniqueAndGrouped(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Exhibits() {
		if seen[e.Name] {
			t.Errorf("duplicate exhibit name %q", e.Name)
		}
		seen[e.Name] = true
		if e.Group != "paper" && e.Group != "ext" {
			t.Errorf("%s: unknown group %q", e.Name, e.Group)
		}
		if e.Run == nil {
			t.Errorf("%s: nil runner", e.Name)
		}
	}
	for _, g := range GroupNames() {
		if seen[g] {
			t.Errorf("group alias %q collides with an exhibit name", g)
		}
	}
}

func TestLookup(t *testing.T) {
	for _, name := range Names() {
		if _, ok := Lookup(name); !ok {
			t.Errorf("Names lists %q but Lookup misses it", name)
		}
	}
	if _, ok := Lookup("fig9"); ok {
		t.Error("Lookup accepted an unknown name")
	}
	if _, ok := Lookup("all"); ok {
		t.Error("group aliases must not resolve as exhibits")
	}
}

func TestExpandNames(t *testing.T) {
	all, err := ExpandNames(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5"}
	if len(all) != len(want) {
		t.Fatalf("empty list expanded to %v, want %v", all, want)
	}
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("empty list expanded to %v, want %v", all, want)
		}
	}

	ext, err := ExpandNames([]string{"ext-all"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != 12 || ext[0] != "ext-energy" || ext[len(ext)-1] != "policy" {
		t.Fatalf("ext-all expanded to %v", ext)
	}

	mixed, err := ExpandNames([]string{"fig4", "all"})
	if err != nil {
		t.Fatal(err)
	}
	if mixed[0] != "fig4" || len(mixed) != 1+len(want) {
		t.Fatalf("mixed expansion %v", mixed)
	}

	if _, err := ExpandNames([]string{"fig1", "fig9"}); err == nil {
		t.Error("unknown name accepted")
	} else if !strings.Contains(err.Error(), "fig9") {
		t.Errorf("error does not name the bad exhibit: %v", err)
	}
}

// TestRegistryRunMatchesDirectDrivers pins the registry's plumbing: running
// an exhibit through the table must render exactly what the driver renders
// when invoked directly with the same parameters.
func TestRegistryRunMatchesDirectDrivers(t *testing.T) {
	cfg := Default()

	ex, ok := Lookup("fig1")
	if !ok {
		t.Fatal("fig1 missing")
	}
	got, res, err := ex.Run(cfg, Params{Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, isScaling := res.(ScalingResult); !isScaling {
		t.Fatalf("fig1 result has type %T, want ScalingResult", res)
	}
	want, _, err := Figure1(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Error("registry fig1 diverges from Figure1")
	}

	ex, _ = Lookup("table2")
	gotT, _, err := ex.Run(cfg, Params{})
	if err != nil {
		t.Fatal(err)
	}
	wantT, err := TableII(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gotT.String() != wantT.String() {
		t.Error("registry table2 diverges from TableII")
	}
}

func TestRegistryChartKinds(t *testing.T) {
	wantCharts := map[string]ChartKind{
		"fig1": ChartScaling, "fig2": ChartScaling, "fig3": ChartScaling,
		"fig4": ChartCluster, "ext-backfill": ChartCluster,
		"table1": ChartNone, "fig5": ChartNone,
	}
	for name, want := range wantCharts {
		ex, ok := Lookup(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		if ex.Chart != want {
			t.Errorf("%s chart kind %d, want %d", name, ex.Chart, want)
		}
	}
}

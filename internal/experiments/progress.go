package experiments

import "context"

// Progress threads service-level checkpoint/restart through the grid
// exhibits (introduced in PR 5; see DESIGN.md §10). The cluster grids —
// fig4, fig5 — decompose into independent (combo, pattern) cells whose
// outcomes are folded in index order, so a run can report each finished
// cell to a hook, and a later run of the same spec can be handed those
// outcomes back and skip the work. Because the fold order is fixed and the
// restored values are the exact float64s an uninterrupted run would have
// produced, a resumed exhibit is bit-identical to a from-scratch one.
//
// All three fields are optional; a nil *Progress (the default) is inert
// and costs only nil checks on the cell path.
type Progress struct {
	// Ctx, when non-nil, aborts the run between cells once it is
	// canceled: remaining cells are skipped and the run returns the
	// context's cause. Cells already finished have been reported through
	// OnCell, which is what makes mid-job crashes resumable.
	Ctx context.Context
	// Completed maps cell index → the outcome values recorded by an
	// earlier, interrupted run of the same spec. Cells present here are
	// not recomputed; their values are folded as if just computed.
	Completed map[int][]float64
	// OnCell is called as each fresh (not restored) cell finishes with
	// its outcome values. It must be safe for concurrent use: grid cells
	// run on parallel workers.
	OnCell func(cell int, values []float64)

	// base offsets cell indices, giving each runCells invocation of a
	// multi-grid exhibit (fig5 runs one grid per bias) a disjoint index
	// range within one shared Completed/OnCell namespace.
	base int
}

// offset returns a view of p whose cell indices are shifted by n more
// than p's. Multi-grid drivers use it to keep per-grid indices disjoint.
func (p *Progress) offset(n int) *Progress {
	if p == nil {
		return nil
	}
	q := *p
	q.base += n
	return &q
}

// lookup reports a previously completed cell's recorded values.
func (p *Progress) lookup(cell int) ([]float64, bool) {
	if p == nil || p.Completed == nil {
		return nil, false
	}
	v, ok := p.Completed[cell+p.base]
	return v, ok
}

// note reports one freshly finished cell.
func (p *Progress) note(cell int, values []float64) {
	if p == nil || p.OnCell == nil {
		return
	}
	p.OnCell(cell+p.base, values)
}

// cause returns the abort reason once the run's context is canceled, nil
// otherwise.
func (p *Progress) cause() error {
	if p == nil || p.Ctx == nil {
		return nil
	}
	if p.Ctx.Err() != nil {
		return context.Cause(p.Ctx)
	}
	return nil
}

package experiments

import (
	"exaresil/internal/cluster"
	"exaresil/internal/core"
	"exaresil/internal/report"
	"exaresil/internal/selection"
	"exaresil/internal/stats"
	"exaresil/internal/workload"
)

// SelectionSpec configures the Figure 5 study: each resource-management
// technique running everything under Parallel Recovery versus running with
// per-application Resilience Selection, over four arrival-pattern
// populations (unbiased, high-memory, high-communication, large).
type SelectionSpec struct {
	Config
	// Patterns and Arrivals size the study (paper: 50 x 100).
	Patterns int
	Arrivals int
	// Biases enumerates the pattern populations (default: all four).
	Biases []workload.Bias
	// Schedulers enumerates the RM techniques (default: all three).
	Schedulers []core.Scheduler
	// Baseline is the fixed technique compared against Selection
	// (default: Parallel Recovery, the paper's most consistent winner).
	Baseline core.Technique
	// Paired runs the per-bias cluster grids with antithetic pattern
	// pairs (see ClusterSpec.Paired). Pair it with
	// Selection.PairedTrials to variance-reduce the selector build too.
	Paired bool
	// Selection tunes selector construction.
	Selection selection.Options
}

// SelectionCell is one pair of bars in Figure 5.
type SelectionCell struct {
	Bias      workload.Bias
	Scheduler core.Scheduler
	// Baseline and Selected are the dropped percentages under the fixed
	// baseline technique and under Resilience Selection.
	Baseline, Selected stats.Summary
}

// SelectionResult is the figure's full data set.
type SelectionResult struct {
	Cells []SelectionCell
	// Table is the selection policy the study used.
	Table []selection.Choice
}

// Cell finds one bias/scheduler combination.
func (r SelectionResult) Cell(b workload.Bias, s core.Scheduler) (SelectionCell, bool) {
	for _, c := range r.Cells {
		if c.Bias == b && c.Scheduler == s {
			return c, true
		}
	}
	return SelectionCell{}, false
}

func (s SelectionSpec) withDefaults() SelectionSpec {
	if s.Patterns == 0 {
		s.Patterns = 50
	}
	if s.Arrivals == 0 {
		s.Arrivals = 100
	}
	if s.Biases == nil {
		s.Biases = workload.Biases()
	}
	if s.Schedulers == nil {
		s.Schedulers = core.Schedulers()
	}
	if !s.Baseline.Valid() || s.Baseline == core.Ideal {
		s.Baseline = core.ParallelRecovery
	}
	return s
}

// Run executes the Figure 5 study and renders its table.
func (s SelectionSpec) Run() (*report.Table, SelectionResult, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, SelectionResult{}, err
	}
	model, err := s.model(0)
	if err != nil {
		return nil, SelectionResult{}, err
	}

	selOpts := s.Selection
	if selOpts.Seed == 0 {
		selOpts.Seed = s.Seed ^ 0xa0761d6478bd642f
	}
	if selOpts.Obs == nil {
		selOpts.Obs = s.Obs
	}
	selector, err := selection.NewSelector(s.Machine, model, s.Resilience, selOpts)
	if err != nil {
		return nil, SelectionResult{}, err
	}

	result := SelectionResult{Table: selector.Choices()}
	t := report.New("Percentage of applications dropped: fixed Parallel Recovery vs. Resilience Selection",
		"arrival pattern", "scheduler", s.Baseline.String(), "Resilience Selection")
	t.AddNote("mean ± stddev over %d arrival patterns of %d applications each", s.Patterns, s.Arrivals)

	cellBase := 0 // disjoint Progress cell ranges across the per-bias grids
	for _, bias := range s.Biases {
		cs := ClusterSpec{
			Config:   s.Config,
			Patterns: s.Patterns,
			Arrivals: s.Arrivals,
			Bias:     bias,
			Paired:   s.Paired,
		}
		cs.Progress = s.Progress.offset(cellBase)
		combos := make([]comboSpec, 0, 2*len(s.Schedulers))
		for _, sch := range s.Schedulers {
			combos = append(combos,
				comboSpec{scheduler: sch, technique: s.Baseline},
				comboSpec{scheduler: sch, chooser: cluster.TechniqueChooser(selector.Choose)},
			)
		}
		cellBase += 2 * len(s.Schedulers) * cs.Patterns
		raw, err := cs.runCells(combos)
		if err != nil {
			return nil, SelectionResult{}, err
		}
		for i, sch := range s.Schedulers {
			base := raw[2*i].dropped.Summarize()
			sel := raw[2*i+1].dropped.Summarize()
			result.Cells = append(result.Cells, SelectionCell{
				Bias:      bias,
				Scheduler: sch,
				Baseline:  base,
				Selected:  sel,
			})
			t.AddRow(bias.String(), sch.String(),
				report.Pct(base.Mean, base.StdDev),
				report.Pct(sel.Mean, sel.StdDev))
		}
	}
	return t, result, nil
}

// Figure5 runs the resilience-selection study with paper defaults at the
// given pattern count (0 means the paper's 50).
func Figure5(cfg Config, patterns int) (*report.Table, SelectionResult, error) {
	return SelectionSpec{Config: cfg, Patterns: patterns}.Run()
}

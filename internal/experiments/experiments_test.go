package experiments

import (
	"strings"
	"testing"

	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/selection"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// fastConfig keeps integration tests quick while preserving the paper's
// machine and failure model.
func fastConfig() Config {
	cfg := Default()
	return cfg
}

func TestDefaultConfigValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidateRejectsBrokenConfigs(t *testing.T) {
	cfg := Default()
	cfg.SeverityPMF = failures.SeverityPMF{0, 0, 0}
	if err := cfg.Validate(); err == nil {
		t.Error("zero severity PMF accepted")
	}
}

func TestTableI(t *testing.T) {
	tb := TableI()
	out := tb.String()
	for _, c := range workload.Classes() {
		if !strings.Contains(out, c.Name) {
			t.Errorf("Table I missing class %s:\n%s", c.Name, out)
		}
	}
	if tb.Rows() != 4 {
		t.Errorf("Table I has %d rows, want 4 communication levels", tb.Rows())
	}
}

func TestTableII(t *testing.T) {
	tb, err := TableII(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	for _, param := range []string{"T_S", "T_C", "T_W", "N_m", "N_a", "L", "B_N",
		"N_S", "lambda_a", "M_n", "tau", "T_C_PFS", "T_C_L1", "T_C_L2", "mu", "r"} {
		if !strings.Contains(out, param) {
			t.Errorf("Table II missing parameter %s", param)
		}
	}
}

func TestScalingStudyShapes(t *testing.T) {
	// A reduced-trials Figure 1 must reproduce the paper's qualitative
	// claims exactly.
	cfg := fastConfig()
	tb, res, err := ScalingSpec{Config: cfg, Class: workload.A32, Trials: 12}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != len(DefaultScalingFractions()) {
		t.Errorf("figure has %d rows, want %d", tb.Rows(), len(DefaultScalingFractions()))
	}

	for _, frac := range DefaultScalingFractions() {
		pr, ok := res.Point(core.ParallelRecovery, frac)
		if !ok {
			t.Fatalf("missing PR point at %v", frac)
		}
		// Claim (Fig. 1): Parallel Recovery is the most efficient at every
		// size for low-communication applications. The figure reproduces
		// the paper's menu (PaperTechniques), not the full extended one.
		for _, tech := range core.PaperTechniques() {
			p, ok := res.Point(tech, frac)
			if !ok {
				t.Fatalf("missing %v point at %v", tech, frac)
			}
			if p.Efficiency.Mean > pr.Efficiency.Mean+1e-9 {
				t.Errorf("at %.0f%%: %v (%.4f) beats Parallel Recovery (%.4f)",
					100*frac, tech, p.Efficiency.Mean, pr.Efficiency.Mean)
			}
		}
	}

	// Claim: traditional checkpointing decreases fastest with size.
	crSmall, _ := res.Point(core.CheckpointRestart, 0.01)
	crBig, _ := res.Point(core.CheckpointRestart, 1.00)
	mlSmall, _ := res.Point(core.MultilevelCheckpoint, 0.01)
	mlBig, _ := res.Point(core.MultilevelCheckpoint, 1.00)
	crDrop := crSmall.Efficiency.Mean - crBig.Efficiency.Mean
	mlDrop := mlSmall.Efficiency.Mean - mlBig.Efficiency.Mean
	if crDrop <= mlDrop {
		t.Errorf("CR efficiency drop (%v) should exceed multilevel's (%v)", crDrop, mlDrop)
	}

	// Claim: redundancy provides zero efficiency once the replica set
	// exceeds the machine (r=2.0 above 50%, r=1.5 above ~67%).
	for _, tc := range []struct {
		tech core.Technique
		frac float64
	}{
		{core.FullRedundancy, 1.00},
		{core.PartialRedundancy, 1.00},
	} {
		p, _ := res.Point(tc.tech, tc.frac)
		if p.Efficiency.Mean != 0 {
			t.Errorf("%v at %.0f%%: efficiency %v, want 0 (unplaceable)",
				tc.tech, 100*tc.frac, p.Efficiency.Mean)
		}
	}
	full50, _ := res.Point(core.FullRedundancy, 0.50)
	if full50.Efficiency.Mean == 0 {
		t.Error("r=2.0 at 50% should exactly fit the machine and run")
	}
}

func TestFigure2Crossover(t *testing.T) {
	// Claim (Fig. 2): for high-communication high-memory applications the
	// optimal technique shifts from Multilevel to Parallel Recovery when
	// the application needs >= 25% of the machine.
	_, res, err := ScalingSpec{Config: fastConfig(), Class: workload.D64, Trials: 12}.Run()
	if err != nil {
		t.Fatal(err)
	}
	mlSmall, _ := res.Point(core.MultilevelCheckpoint, 0.01)
	prSmall, _ := res.Point(core.ParallelRecovery, 0.01)
	if mlSmall.Efficiency.Mean <= prSmall.Efficiency.Mean {
		t.Errorf("at 1%%: multilevel (%.4f) should beat PR (%.4f) on D64",
			mlSmall.Efficiency.Mean, prSmall.Efficiency.Mean)
	}
	mlBig, _ := res.Point(core.MultilevelCheckpoint, 0.50)
	prBig, _ := res.Point(core.ParallelRecovery, 0.50)
	if prBig.Efficiency.Mean <= mlBig.Efficiency.Mean {
		t.Errorf("at 50%%: PR (%.4f) should beat multilevel (%.4f) on D64",
			prBig.Efficiency.Mean, mlBig.Efficiency.Mean)
	}
	// Redundancy suffers more on D64 than on A32 (communication scaling).
	_, resA, err := ScalingSpec{Config: fastConfig(), Class: workload.A32, Trials: 12}.Run()
	if err != nil {
		t.Fatal(err)
	}
	redD, _ := res.Point(core.FullRedundancy, 0.10)
	redA, _ := resA.Point(core.FullRedundancy, 0.10)
	if redD.Efficiency.Mean >= redA.Efficiency.Mean {
		t.Errorf("full redundancy on D64 (%.4f) should trail A32 (%.4f)",
			redD.Efficiency.Mean, redA.Efficiency.Mean)
	}
}

func TestFigure3LowMTBF(t *testing.T) {
	// Claim (Fig. 3): with a 2.5-year MTBF every technique loses
	// efficiency faster, and CR cannot complete at exascale.
	_, res10, err := ScalingSpec{Config: fastConfig(), Class: workload.D64, Trials: 10,
		Fractions: []float64{0.25, 1.00}}.Run()
	if err != nil {
		t.Fatal(err)
	}
	_, res25, err := ScalingSpec{Config: fastConfig(), Class: workload.D64, Trials: 10,
		MTBF: units.Duration(2.5) * units.Year, Fractions: []float64{0.25, 1.00}}.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, tech := range []core.Technique{core.CheckpointRestart, core.MultilevelCheckpoint, core.ParallelRecovery} {
		p10, _ := res10.Point(tech, 0.25)
		p25, _ := res25.Point(tech, 0.25)
		if p25.Efficiency.Mean > p10.Efficiency.Mean+1e-9 {
			t.Errorf("%v at 25%%: 2.5y MTBF efficiency (%.4f) exceeds 10y (%.4f)",
				tech, p25.Efficiency.Mean, p10.Efficiency.Mean)
		}
	}
	cr, _ := res25.Point(core.CheckpointRestart, 1.00)
	if cr.Efficiency.Mean > 0.02 {
		t.Errorf("CR at exascale/2.5y MTBF: efficiency %.4f, want ~0 (cannot complete)",
			cr.Efficiency.Mean)
	}
	if cr.Completion > 0.2 {
		t.Errorf("CR at exascale/2.5y MTBF: completion rate %.2f, want ~0", cr.Completion)
	}
}

func TestFigure4Structure(t *testing.T) {
	tb, res, err := ClusterSpec{Config: fastConfig(), Patterns: 4, Arrivals: 40}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 3 {
		t.Errorf("figure 4 table has %d rows, want 3 schedulers", tb.Rows())
	}
	if len(res.Cells) != 3*4 {
		t.Fatalf("figure 4 has %d cells, want 12", len(res.Cells))
	}
	// Claim: failures and resilience overhead degrade system performance
	// relative to the Ideal baseline. Scheduling is chaotic (longer
	// runtimes shift every later mapping decision), so individual cells
	// at four patterns can luck below Ideal; the claim is asserted on the
	// scheduler-averaged means.
	idealMean, techMean := 0.0, 0.0
	for _, sch := range core.Schedulers() {
		ideal, ok := res.Cell(sch, core.Ideal)
		if !ok {
			t.Fatalf("missing Ideal cell for %v", sch)
		}
		if ideal.Dropped.N != 4 {
			t.Errorf("%v/Ideal summarized %d patterns, want 4", sch, ideal.Dropped.N)
		}
		idealMean += ideal.Dropped.Mean
		for _, tech := range core.ClusterTechniques() {
			c, ok := res.Cell(sch, tech)
			if !ok {
				t.Fatalf("missing %v/%v cell", sch, tech)
			}
			if c.Dropped.Mean < 0 || c.Dropped.Mean > 100 {
				t.Errorf("%v/%v dropped %v%% out of range", sch, tech, c.Dropped.Mean)
			}
			techMean += c.Dropped.Mean / float64(len(core.ClusterTechniques()))
		}
	}
	if techMean < idealMean {
		t.Errorf("average technique drop rate (%.2f%%) below Ideal's (%.2f%%)",
			techMean/3, idealMean/3)
	}
}

func TestFigure5Structure(t *testing.T) {
	tb, res, err := SelectionSpec{
		Config:   fastConfig(),
		Patterns: 3,
		Arrivals: 30,
		Biases:   []workload.Bias{workload.Unbiased, workload.HighComm},
		Selection: selection.Options{
			Trials:        4,
			TimeSteps:     360,
			SizeFractions: []float64{0.01, 0.25},
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 2*3 {
		t.Errorf("figure 5 table has %d rows, want 6", tb.Rows())
	}
	if len(res.Table) == 0 {
		t.Error("selection table missing from result")
	}
	for _, c := range res.Cells {
		if c.Baseline.N != 3 || c.Selected.N != 3 {
			t.Errorf("%v/%v: pattern counts %d/%d, want 3", c.Bias, c.Scheduler,
				c.Baseline.N, c.Selected.N)
		}
	}
}

func TestFigure4DeterministicAcrossWorkerCounts(t *testing.T) {
	// runCells folds per-(combo, pattern) slots in index order, so the
	// study must be bit-identical for any worker count.
	run := func(workers int) ClusterResult {
		t.Helper()
		cfg := fastConfig()
		cfg.Workers = workers
		_, res, err := ClusterSpec{Config: cfg, Patterns: 3, Arrivals: 30}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(8)
	if len(serial.Cells) != len(parallel.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(serial.Cells), len(parallel.Cells))
	}
	for i := range serial.Cells {
		if serial.Cells[i] != parallel.Cells[i] {
			t.Errorf("cell %d differs:\n 1 worker: %+v\n 8 workers: %+v",
				i, serial.Cells[i], parallel.Cells[i])
		}
	}
}

package experiments

import (
	"strings"
	"testing"

	"exaresil/internal/core"
	"exaresil/internal/selection"
	"exaresil/internal/workload"
)

func TestEnergyStudy(t *testing.T) {
	tb, res, err := EnergySpec{Config: fastConfig(), Trials: 8, TimeSteps: 720}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 4 {
		t.Errorf("energy table has %d rows, want 4 classes", tb.Rows())
	}
	if len(res.Cells) != 4*3 {
		t.Fatalf("energy study has %d cells, want 12", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.TotalMWh.Mean <= 0 {
			t.Errorf("%v/%s: non-positive energy %v", c.Technique, c.Class.Name, c.TotalMWh.Mean)
		}
		if c.Overhead.Mean < 0 || c.Overhead.Mean > 1 {
			t.Errorf("%v/%s: overhead %v outside [0,1]", c.Technique, c.Class.Name, c.Overhead.Mean)
		}
	}
	// The paper's energy claim, in aggregate: PR's overhead stays below
	// CR's for the low-communication class.
	pr, _ := res.Cell(core.ParallelRecovery, "A32")
	cr, _ := res.Cell(core.CheckpointRestart, "A32")
	if pr.Overhead.Mean >= cr.Overhead.Mean {
		t.Errorf("PR energy overhead (%v) should be below CR's (%v) on A32",
			pr.Overhead.Mean, cr.Overhead.Mean)
	}
}

func TestMTBFSweep(t *testing.T) {
	tb, res, err := MTBFSweepSpec{
		Config:    fastConfig(),
		MTBFYears: []float64{10, 2.5},
		Trials:    10,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 2 {
		t.Errorf("sweep table has %d rows, want 2", tb.Rows())
	}
	for _, tech := range []core.Technique{core.CheckpointRestart, core.MultilevelCheckpoint, core.ParallelRecovery} {
		hi, ok1 := res.Point(tech, 10)
		lo, ok2 := res.Point(tech, 2.5)
		if !ok1 || !ok2 {
			t.Fatalf("%v: missing sweep points", tech)
		}
		if lo.Efficiency.Mean > hi.Efficiency.Mean+1e-9 {
			t.Errorf("%v: efficiency rose as MTBF fell (%v -> %v)",
				tech, hi.Efficiency.Mean, lo.Efficiency.Mean)
		}
	}
}

func TestWeibullStudy(t *testing.T) {
	tb, res, err := WeibullSpec{
		Config: fastConfig(),
		Shapes: []float64{1.0, 0.6},
		Trials: 10,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 2 {
		t.Errorf("weibull table has %d rows, want 2", tb.Rows())
	}
	// Sanity only: both shapes must produce efficiencies in (0,1]; the
	// direction of the effect is the study's finding, not an invariant.
	for _, p := range res.Points {
		if p.Efficiency.Mean <= 0 || p.Efficiency.Mean > 1 {
			t.Errorf("%v at shape %v: efficiency %v", p.Technique, p.Shape, p.Efficiency.Mean)
		}
	}
}

func TestBackfillStudy(t *testing.T) {
	tb, res, err := BackfillSpec{Config: fastConfig(), Patterns: 4, Arrivals: 40}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 4 {
		t.Errorf("backfill table has %d rows, want 4 schedulers", tb.Rows())
	}
	if !strings.Contains(tb.String(), "EASY-Backfill") {
		t.Error("backfill row missing")
	}
	// Backfilling must beat strict FCFS on the same patterns for the same
	// technique, on average.
	var fcfs, bf float64
	for _, tech := range core.ClusterTechniques() {
		f, _ := res.Cell(core.FCFS, tech)
		b, _ := res.Cell(core.EASYBackfill, tech)
		fcfs += f.Dropped.Mean
		bf += b.Dropped.Mean
	}
	if bf >= fcfs {
		t.Errorf("backfill mean drop %v not below FCFS %v", bf/3, fcfs/3)
	}
}

func TestSelectorAgreement(t *testing.T) {
	tb, res, err := SelectorAgreementSpec{
		Config:   fastConfig(),
		Patterns: 2,
		Arrivals: 25,
		Probe: selection.Options{
			Trials:        4,
			TimeSteps:     360,
			SizeFractions: []float64{0.01, 0.25, 0.50},
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 3 {
		t.Errorf("agreement table has %d rows, want 3", tb.Rows())
	}
	// The two policies derive from the same models; they should agree on
	// a solid majority of cells.
	if res.Agreement < 0.5 {
		t.Errorf("selector agreement %v; expected at least half the cells", res.Agreement)
	}
	if res.MonteCarloDropped.N != 2 || res.AnalyticDropped.N != 2 {
		t.Error("cluster comparison pattern counts wrong")
	}
	_ = workload.Unbiased
}

func TestTauSweep(t *testing.T) {
	tb, res, err := TauSweepSpec{
		Config: fastConfig(),
		Scales: []float64{0.1, 1, 10},
		Trials: 25,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 3 {
		t.Errorf("tau sweep table has %d rows, want 3", tb.Rows())
	}
	// The computed optimum must beat gross mis-tunings in both directions
	// for Checkpoint Restart, where the period matters most.
	at := func(scale float64) float64 {
		p, ok := res.Point(core.CheckpointRestart, scale)
		if !ok {
			t.Fatalf("missing CR point at scale %v", scale)
		}
		return p.Efficiency.Mean
	}
	if opt := at(1); opt <= at(0.1) || opt <= at(10) {
		t.Errorf("CR efficiency not maximal at the Daly period: 0.1x=%.4f 1x=%.4f 10x=%.4f",
			at(0.1), at(1), at(10))
	}
}

func TestMachinesStudy(t *testing.T) {
	tb, res, err := MachinesSpec{Config: fastConfig(), Trials: 10}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 2 {
		t.Errorf("machines table has %d rows, want 2", tb.Rows())
	}
	sw, ok1 := res.Cell("sunway-taihulight", core.CheckpointRestart)
	ex, ok2 := res.Cell("exascale-120k", core.CheckpointRestart)
	if !ok1 || !ok2 {
		t.Fatal("missing cross-machine cells")
	}
	if ex.Nodes <= sw.Nodes {
		t.Errorf("exascale quarter (%d nodes) should exceed TaihuLight quarter (%d)", ex.Nodes, sw.Nodes)
	}
	// On both machines, Parallel Recovery (which never touches the weak
	// PFS path) must beat Checkpoint Restart for this class; absolute
	// levels differ because the machines' I/O balance differs (the study's
	// finding: TaihuLight's slower fabric makes equal-fraction PFS
	// checkpointing *worse* than on the projected exascale machine).
	for _, name := range []string{"sunway-taihulight", "exascale-120k"} {
		cr, _ := res.Cell(name, core.CheckpointRestart)
		pr, _ := res.Cell(name, core.ParallelRecovery)
		if pr.Efficiency.Mean <= cr.Efficiency.Mean {
			t.Errorf("%s: PR (%v) should beat CR (%v)", name, pr.Efficiency.Mean, cr.Efficiency.Mean)
		}
		if cr.Efficiency.Mean <= 0 || pr.Efficiency.Mean > 1 {
			t.Errorf("%s: efficiencies out of range", name)
		}
	}
}

func TestPolicyTable(t *testing.T) {
	tb, err := PolicyTable(fastConfig(), selection.Options{
		Trials:        4,
		TimeSteps:     360,
		SizeFractions: []float64{0.01, 0.50},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 16 { // 8 classes x 2 sizes
		t.Errorf("policy table has %d rows, want 16", tb.Rows())
	}
	if !strings.Contains(tb.String(), "Parallel Recovery") {
		t.Error("policy table missing technique names")
	}
}

func TestSemiBlockingStudy(t *testing.T) {
	tb, res, err := SemiBlockingSpec{
		Config: fastConfig(),
		Rates:  []float64{0, 0.5},
		Trials: 15,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 2 {
		t.Errorf("semi-blocking table has %d rows, want 2", tb.Rows())
	}
	// Overlapping computation with checkpoint writes must help CR, whose
	// blocking PFS checkpoints dominate its overhead at 50% of the machine.
	blocking, _ := res.Point(core.CheckpointRestart, 0)
	semi, _ := res.Point(core.CheckpointRestart, 0.5)
	if semi.Efficiency.Mean <= blocking.Efficiency.Mean {
		t.Errorf("semi-blocking CR (%v) should beat blocking (%v)",
			semi.Efficiency.Mean, blocking.Efficiency.Mean)
	}
}

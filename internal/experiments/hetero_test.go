package experiments

import (
	"strings"
	"testing"

	"exaresil/internal/core"
	"exaresil/internal/machine"
)

func TestHeteroStudy(t *testing.T) {
	tb, res, err := HeteroSpec{Config: fastConfig(), Patterns: 2, Arrivals: 30}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 3 {
		t.Errorf("hetero table has %d rows, want 3 arms", tb.Rows())
	}
	for _, arm := range []string{"homogeneous", "hetero/first-fit", "hetero/reliability"} {
		if !strings.Contains(tb.String(), arm) {
			t.Errorf("table missing arm %q", arm)
		}
		for _, tech := range []core.Technique{core.MultilevelCheckpoint, core.LightweightReplication} {
			if _, ok := res.Cell(arm, tech); !ok {
				t.Errorf("result missing cell %s/%v", arm, tech)
			}
		}
	}
}

func TestHeteroStudyRejectsMismatchedFleet(t *testing.T) {
	fleet := machine.ExascaleHetero()
	fleet.Nodes = 60000
	fleet.Classes = fleet.Classes[:1]
	fleet.Classes[0].Count = 60000
	if _, _, err := (HeteroSpec{Config: fastConfig(), Fleet: fleet, Patterns: 1, Arrivals: 10}).Run(); err == nil {
		t.Error("fleet with mismatched node count accepted")
	}
}

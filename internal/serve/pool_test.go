package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestPoolBackpressure: with one worker and one queue slot, the third
// concurrent flight is rejected with ErrSaturated, never blocked.
func TestPoolBackpressure(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	p := newPool(1, 1, func(fl *flight) {
		started <- struct{}{}
		<-release
	}, NewMetrics(nil))
	p.start()
	defer close(release)

	if err := p.submit(&flight{key: "a"}); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	<-started // worker holds flight a; the queue slot is free again
	if err := p.submit(&flight{key: "b"}); err != nil {
		t.Fatalf("second submit (queued): %v", err)
	}
	if err := p.submit(&flight{key: "c"}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("third submit: got %v, want ErrSaturated", err)
	}
	if got := p.queued(); got != 1 {
		t.Errorf("queued = %d, want 1", got)
	}
	release <- struct{}{}
	<-started // worker moved on to flight b
}

// TestPoolDrainFinishesQueuedWork: drain waits for both the running and the
// queued flight — nothing in flight is dropped — and later submissions are
// refused with ErrDraining.
func TestPoolDrainFinishesQueuedWork(t *testing.T) {
	var mu sync.Mutex
	var ran []string
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	p := newPool(1, 2, func(fl *flight) {
		started <- struct{}{}
		<-release
		mu.Lock()
		ran = append(ran, fl.key)
		mu.Unlock()
	}, NewMetrics(nil))
	p.start()

	if err := p.submit(&flight{key: "a"}); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := p.submit(&flight{key: "b"}); err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() { drained <- p.drain(context.Background()) }()
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ran) != 2 {
		t.Fatalf("drain dropped flights: ran %v, want [a b]", ran)
	}
	if err := p.submit(&flight{key: "c"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain: got %v, want ErrDraining", err)
	}
}

// TestPoolDrainTimeout: a drain whose context expires reports the error
// instead of hanging.
func TestPoolDrainTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	p := newPool(1, 1, func(fl *flight) {
		started <- struct{}{}
		<-release
	}, NewMetrics(nil))
	p.start()
	if err := p.submit(&flight{key: "a"}); err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain: got %v, want DeadlineExceeded", err)
	}
}

// TestShardOfStable: a key always routes to the same shard, and the shard
// index stays in range for any pool width.
func TestShardOfStable(t *testing.T) {
	keys := []string{"", "a", "fig4", Spec{Exhibit: "fig1"}.Key()}
	for _, k := range keys {
		for _, shards := range []int{1, 2, 3, 7, 16} {
			first := shardOf(k, shards)
			if first < 0 || first >= shards {
				t.Fatalf("shardOf(%q, %d) = %d out of range", k, shards, first)
			}
			if again := shardOf(k, shards); again != first {
				t.Fatalf("shardOf(%q, %d) unstable: %d then %d", k, shards, first, again)
			}
		}
	}
}

package serve

import (
	"fmt"
	"sync"
	"time"
)

// AutoscaleConfig tunes the elastic worker pool (DESIGN.md §15). The
// autoscaler moves the pool's active width between Min and Max, one shard
// per decision, from two pressure signals sampled every Interval:
//
//   - queue signal: an EWMA of queued flights per active worker;
//   - wait signal: the server's EWMA of how long admitted flights sat
//     queued before a worker picked them up.
//
// Scale-up and scale-down have independent hysteresis windows (UpWindow
// and DownWindow consecutive pressured/idle samples), and every width
// change starts a shared Cooldown during which further changes are
// suppressed — so a bursty queue cannot flap the pool. Shrink is
// drain-before-shrink: the dropped shard finishes its backlog before its
// worker parks, and no further shrink fires while one is still draining.
type AutoscaleConfig struct {
	// Min is the smallest pool width (default 1).
	Min int
	// Max is the largest pool width (default max(Min, 4×Min)). Min == Max
	// pins the width: signals are still sampled and exported, but no
	// decision ever fires.
	Max int
	// Interval is the evaluation period (default 1s).
	Interval time.Duration
	// UpThreshold is the queue signal (queued per active worker) above
	// which a sample counts as pressured (default 1.5).
	UpThreshold float64
	// DownThreshold is the queue signal below which a sample counts as
	// idle (default 0.25). Between the thresholds the pool holds.
	DownThreshold float64
	// WaitBudget is the admission-latency bound: a wait signal above it
	// marks the sample pressured even with a short queue (default 500ms).
	WaitBudget time.Duration
	// UpWindow is how many consecutive pressured samples trigger a grow
	// (default 2).
	UpWindow int
	// DownWindow is how many consecutive idle samples trigger a shrink
	// (default 4 — scaling down is deliberately the slower direction).
	DownWindow int
	// Cooldown is the hold-off after any width change (default 3×Interval).
	Cooldown time.Duration
}

// withDefaults fills zero fields with the documented defaults.
func (c AutoscaleConfig) withDefaults() AutoscaleConfig {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = 4 * c.Min
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.UpThreshold == 0 {
		c.UpThreshold = 1.5
	}
	if c.DownThreshold == 0 {
		c.DownThreshold = 0.25
	}
	if c.WaitBudget <= 0 {
		c.WaitBudget = 500 * time.Millisecond
	}
	if c.UpWindow <= 0 {
		c.UpWindow = 2
	}
	if c.DownWindow <= 0 {
		c.DownWindow = 4
	}
	if c.Cooldown == 0 {
		c.Cooldown = 3 * c.Interval
	}
	return c
}

// Validate rejects configurations that cannot scale sanely. It is called
// on the defaults-filled config, so a zero AutoscaleConfig always passes.
func (c AutoscaleConfig) Validate() error {
	if c.Min < 1 {
		return fmt.Errorf("serve: autoscale min workers %d, want >= 1", c.Min)
	}
	if c.Max < c.Min {
		return fmt.Errorf("serve: autoscale bounds inverted: max workers %d below min %d", c.Max, c.Min)
	}
	if c.UpThreshold <= 0 || c.DownThreshold <= 0 {
		return fmt.Errorf("serve: autoscale thresholds must be positive (up %g, down %g)", c.UpThreshold, c.DownThreshold)
	}
	if c.DownThreshold >= c.UpThreshold {
		return fmt.Errorf("serve: autoscale down threshold %g must be below up threshold %g", c.DownThreshold, c.UpThreshold)
	}
	if c.UpWindow < 1 || c.DownWindow < 1 {
		return fmt.Errorf("serve: autoscale hysteresis windows must be >= 1 (up %d, down %d)", c.UpWindow, c.DownWindow)
	}
	if c.Cooldown < 0 {
		return fmt.Errorf("serve: autoscale cooldown must not be negative (%s)", c.Cooldown)
	}
	return nil
}

// clampWidth folds the configured fixed width into the autoscale bounds:
// the pool boots inside [Min, Max] (Min when Workers is unset).
func (c AutoscaleConfig) clampWidth(workers int) int {
	if workers < c.Min {
		return c.Min
	}
	if workers > c.Max {
		return c.Max
	}
	return workers
}

// queueAlpha smooths the queue signal. At the default 1s interval the
// EWMA crosses ~90% of a step change in about 5 samples, matching the
// hysteresis windows' timescale.
const queueAlpha = 0.4

// autoscaler owns the evaluation loop. All mutable state is touched only
// from evaluate, which runs on a single goroutine (the ticker loop in
// production, the test directly otherwise).
type autoscaler struct {
	s   *Server
	cfg AutoscaleConfig

	queueEwma  float64 // EWMA of queued flights per active worker
	upStreak   int     // consecutive pressured samples
	downStreak int     // consecutive idle samples
	lastScale  time.Time

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// newAutoscaler wires an autoscaler to its server. Call run (usually on a
// fresh goroutine) to start the ticker loop, halt to stop it.
func newAutoscaler(s *Server, cfg AutoscaleConfig) *autoscaler {
	return &autoscaler{
		s:    s,
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// run evaluates every Interval until halt.
func (a *autoscaler) run() {
	defer close(a.done)
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case now := <-t.C:
			a.evaluate(now)
		}
	}
}

// halt stops the ticker loop and waits for a mid-flight evaluation to
// finish. Safe to call more than once; a pool already draining refuses
// width changes anyway, so halt-vs-drain ordering is not load-bearing.
func (a *autoscaler) halt() {
	a.stopOnce.Do(func() { close(a.stop) })
	<-a.done
}

// evaluate takes one autoscaling step at the given instant: fold the
// signals, classify the sample (pressured / idle / in-band), advance the
// hysteresis streaks, and move the pool width when a streak crosses its
// window — unless the cooldown, the bounds, or a still-draining shard
// blocks it (each suppressed decision is counted by reason).
func (a *autoscaler) evaluate(now time.Time) {
	width := a.s.pool.workers()
	queued := a.s.pool.queued()
	inflight := a.s.Inflight()

	a.queueEwma = (1-queueAlpha)*a.queueEwma + queueAlpha*float64(queued)/float64(width)
	if queued == 0 {
		// The wait signal only moves when flights start; fold in a zero
		// sample on empty-queue ticks so a stale spike cannot pin the
		// pool wide after the burst that caused it ended.
		a.s.noteQueueWait(0)
	}
	wait := a.s.queueWaitSeconds()

	m := a.s.m
	m.AutoscaleWorkers.Set(int64(width))
	m.AutoscaleQueueSignal.Set(int64(a.queueEwma * 1000))
	m.AutoscaleWaitSignal.Set(int64(wait * 1000))

	if a.cfg.Min == a.cfg.Max {
		return // pinned width: signals exported, no decisions
	}

	pressured := a.queueEwma > a.cfg.UpThreshold || wait > a.cfg.WaitBudget.Seconds()
	idle := a.queueEwma < a.cfg.DownThreshold && inflight < width
	switch {
	case pressured:
		a.upStreak++
		a.downStreak = 0
	case idle:
		a.downStreak++
		a.upStreak = 0
	default:
		a.upStreak = 0
		a.downStreak = 0
	}

	cooled := a.lastScale.IsZero() || now.Sub(a.lastScale) >= a.cfg.Cooldown
	switch {
	case pressured && a.upStreak >= a.cfg.UpWindow:
		switch {
		case width >= a.cfg.Max:
			m.AutoscaleBlockedBound.Inc()
		case !cooled:
			m.AutoscaleBlockedCooldown.Inc()
		case a.s.pool.grow():
			m.AutoscaleUp.Inc()
			m.AutoscaleWorkers.Set(int64(a.s.pool.workers()))
			a.lastScale = now
			a.upStreak = 0
		}
	case idle && a.downStreak >= a.cfg.DownWindow:
		switch {
		case width <= a.cfg.Min:
			m.AutoscaleBlockedBound.Inc()
		case !cooled:
			m.AutoscaleBlockedCooldown.Inc()
		case a.s.pool.retiring() > 0:
			// Drain-before-shrink: the previous shrink's shard is still
			// working off its backlog; one retire at a time.
			m.AutoscaleBlockedDraining.Inc()
		case a.s.pool.shrink():
			m.AutoscaleDown.Inc()
			m.AutoscaleWorkers.Set(int64(a.s.pool.workers()))
			a.lastScale = now
			a.downStreak = 0
		}
	}
}

package serve

import (
	"container/list"
	"context"
	"sync"
	"time"
)

// flight is one execution of a spec, shared by every job that submitted an
// identical spec while it was queued or running (single-flight). The
// flight — not the job — is what the worker pool schedules.
type flight struct {
	key     string
	spec    Spec
	shard   int       // queue index stamped by Pool.submit
	created time.Time // admission instant, for the autoscaler's wait signal

	mu       sync.Mutex
	jobs     []*Job // every job attached to this execution
	live     int    // attached jobs not yet canceled
	aborted  bool   // all jobs canceled while still queued: worker skips it
	running  bool
	finished bool
	stop     context.CancelCauseFunc // cancels the execution context, set when running
	res      *Result
	err      error
}

// attachResult is the outcome of subscribing a job to a flight.
type attachResult int

const (
	// attachJoined: the job now shares the flight's eventual outcome.
	attachJoined attachResult = iota
	// attachSettled: the flight already finished (the execution outran the
	// submitter); the caller finalizes the job from the flight's outcome.
	attachSettled
	// attachDead: every earlier subscriber canceled and the flight was
	// aborted before this job could join. A dead flight never settles, so
	// joining it would leave the job queued forever — the caller must
	// retry with a fresh flight instead.
	attachDead
)

// attach subscribes a job to the flight.
func (f *flight) attach(j *Job, now time.Time) attachResult {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.finished {
		return attachSettled
	}
	if f.aborted && !f.running {
		return attachDead
	}
	f.jobs = append(f.jobs, j)
	f.live++
	if f.running {
		j.markRunning(now)
	}
	return attachJoined
}

// dead reports whether the flight was aborted before running — a corpse
// no worker will execute and no settle will ever finalize.
func (f *flight) dead() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.aborted && !f.running
}

// outcome reads the finished flight's result.
func (f *flight) outcome() (*Result, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.res, f.err
}

// detach removes one canceled job from the flight's live count. It reports
// what the caller must do to the underlying execution: nothing while other
// jobs still want the result, stop the running context when this was the
// last one, or note that a queued flight is now abandoned.
type detachAction int

const (
	detachKeep    detachAction = iota // other jobs still attached
	detachAborted                     // queued flight abandoned: evict key
	detachStopped                     // running flight's context canceled: evict key
	detachLate                        // flight already finished: nothing to stop
)

func (f *flight) detach() detachAction {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.finished {
		return detachLate
	}
	if f.live > 0 {
		f.live--
	}
	if f.live > 0 {
		return detachKeep
	}
	if !f.running {
		f.aborted = true
		return detachAborted
	}
	if f.stop != nil {
		f.stop(context.Canceled)
	}
	return detachStopped
}

// begin marks the flight running and flips every attached job to Running.
// It reports false for abandoned flights, which the worker skips.
func (f *flight) begin(stop context.CancelCauseFunc, now time.Time) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.aborted {
		return false
	}
	f.running = true
	f.stop = stop
	for _, j := range f.jobs {
		j.markRunning(now)
	}
	return true
}

// kill aborts the flight in place — the replica hosting it is being torn
// down. A running flight has its execution context canceled and settles
// through the worker's ctx.Done path; for those, kill reports handled.
// A queued flight is marked aborted (a worker that still pops it skips
// it) and reports unhandled: the caller must settle its jobs and free
// its queue slot itself, because no worker ever will.
func (f *flight) kill() (handled bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.finished {
		return true
	}
	f.aborted = true
	if f.running {
		if f.stop != nil {
			f.stop(errKilled)
		}
		return true
	}
	return false
}

// settle records the flight's outcome and finalizes every attached job.
// It returns the jobs that actually transitioned (already-canceled jobs
// keep their state). The first settle wins: a later one — a killed
// flight racing its own worker's ctx.Done settle — must not overwrite
// the recorded outcome that attach-settled submitters read.
func (f *flight) settle(state State, res *Result, err error, errMsg string, now time.Time) int {
	f.mu.Lock()
	if f.finished {
		f.mu.Unlock()
		return 0
	}
	jobs := f.jobs
	f.finished = true
	f.res = res
	f.err = err
	f.mu.Unlock()
	n := 0
	for _, j := range jobs {
		if j.finish(state, res, errMsg, now) {
			n++
		}
	}
	return n
}

// Cache is the LRU result cache with integrated single-flight admission.
// A key resolves to either a finished Result (hit) or a live flight
// (join); absent keys insert a new flight under the same lock that chooses
// to admit it, so two identical concurrent submissions can never both
// become leaders.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element
	m     *Metrics
}

// cacheEntry is one key's slot: a live flight while executing, a Result
// once finished. Entries whose flight failed or was canceled are removed,
// never cached — errors are retried, not memoized.
type cacheEntry struct {
	key string
	fl  *flight // non-nil while in flight
	res *Result // non-nil once cached
}

// newCache builds a cache bounded to about cap finished results.
func newCache(cap int, m *Metrics) *Cache {
	if cap <= 0 {
		cap = 128
	}
	return &Cache{cap: cap, ll: list.New(), byKey: make(map[string]*list.Element), m: m}
}

// acquire resolves a spec to a cached result, an existing flight to join,
// or a freshly created flight this caller leads. Creation and admission
// are atomic: admit runs under the cache lock (it must not block — the
// pool's submit rejects rather than waits) and a rejected flight is
// never inserted, so no other submitter can have joined it. The admit
// callback routes the flight to a shard of the pool's current width.
func (c *Cache) acquire(spec Spec, admit func(*flight) error) (res *Result, fl *flight, created bool, err error) {
	key := spec.Key()
	c.mu.Lock()
	defer c.mu.Unlock()
	if elem, ok := c.byKey[key]; ok {
		e := elem.Value.(*cacheEntry)
		switch {
		case e.res != nil:
			c.ll.MoveToFront(elem)
			c.m.CacheHits.Inc()
			return e.res, nil, false, nil
		case e.fl.dead():
			// Every subscriber canceled while the flight was still queued
			// and its cancel path has not swept the key yet. Joining the
			// corpse would hang the new job forever; evict it and lead a
			// fresh flight instead. The stale flight's pending discard and
			// forget are keyed to the flight pointer, so they cannot touch
			// the replacement.
			c.ll.Remove(elem)
			delete(c.byKey, key)
		default:
			c.ll.MoveToFront(elem)
			c.m.CacheJoined.Inc()
			return nil, e.fl, false, nil
		}
	}
	c.m.CacheMisses.Inc()
	fl = &flight{key: key, spec: spec, created: time.Now()}
	if err := admit(fl); err != nil {
		return nil, nil, false, err
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, fl: fl})
	c.evictLocked()
	c.m.CacheSize.Set(int64(c.ll.Len()))
	return nil, fl, true, nil
}

// complete replaces the flight with its finished result, making the key a
// cache hit for future submissions.
func (c *Cache) complete(fl *flight, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if elem, ok := c.byKey[fl.key]; ok {
		if e := elem.Value.(*cacheEntry); e.fl == fl {
			e.res = res
			e.fl = nil
		}
	}
}

// forget removes the flight's key (failed, timed out, or canceled
// executions are not cached) unless a different flight owns it now.
func (c *Cache) forget(fl *flight) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if elem, ok := c.byKey[fl.key]; ok {
		if e := elem.Value.(*cacheEntry); e.fl == fl {
			c.ll.Remove(elem)
			delete(c.byKey, fl.key)
			c.m.CacheSize.Set(int64(c.ll.Len()))
		}
	}
}

// evictLocked drops least-recently-used *finished* entries while over
// capacity. In-flight entries are never evicted: jobs are attached to
// them.
func (c *Cache) evictLocked() {
	over := c.ll.Len() - c.cap
	if over <= 0 {
		return
	}
	for elem := c.ll.Back(); elem != nil && over > 0; {
		prev := elem.Prev()
		if e := elem.Value.(*cacheEntry); e.res != nil {
			c.ll.Remove(elem)
			delete(c.byKey, e.key)
			c.m.CacheEvictions.Inc()
			over--
		}
		elem = prev
	}
}

// liveFlights snapshots every in-flight entry. Server.Kill walks the
// result to abort the whole replica's work at once.
func (c *Cache) liveFlights() []*flight {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*flight
	for elem := c.ll.Front(); elem != nil; elem = elem.Next() {
		if e := elem.Value.(*cacheEntry); e.fl != nil {
			out = append(out, e.fl)
		}
	}
	return out
}

// size reports the number of cached entries (finished and in-flight).
func (c *Cache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// shardOf maps a cache key onto a worker shard (FNV-1a over the key), so
// identical specs always land on the same shard and the per-shard queues
// stay independent.
func shardOf(key string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int(h % uint64(shards))
}

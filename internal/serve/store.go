package serve

import (
	"fmt"
	"sync"
	"time"
)

// State is a job's position in the lifecycle. Transitions only move
// forward: Queued → Running → one of the terminal states, or straight from
// Queued to a terminal state (cache hits are born Done; canceling or
// draining a queued job skips Running).
type State int

// The job lifecycle states.
const (
	// StateQueued: admitted, waiting for a worker (or for another job's
	// in-flight execution of the same spec).
	StateQueued State = iota
	// StateRunning: a worker is executing the job's flight.
	StateRunning
	// StateDone: finished with a result.
	StateDone
	// StateFailed: finished with an error (including per-job timeout).
	StateFailed
	// StateCanceled: terminated by DELETE before a result was available.
	StateCanceled
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s >= StateDone }

// String names the state as the API renders it.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// The cache dispositions a job can be born with.
const (
	// CacheMiss: this job's flight executes the spec.
	CacheMiss = "miss"
	// CacheHit: the result was already cached; the job is born Done.
	CacheHit = "hit"
	// CacheJoined: an identical spec was already in flight; this job
	// shares that execution (single-flight).
	CacheJoined = "joined"
)

// Job is one submitted spec's lifecycle record. All fields are guarded by
// mu; handlers read through View snapshots.
type Job struct {
	id     string
	spec   Spec
	cache  string  // CacheMiss, CacheHit, or CacheJoined
	flight *flight // nil for cache-hit jobs

	mu        sync.Mutex
	state     State
	submitted time.Time
	started   time.Time
	finished  time.Time
	result    *Result
	errMsg    string
}

// ID is the job's immutable identifier.
func (j *Job) ID() string { return j.id }

// markRunning flips a queued job to Running; later-born jobs that join an
// already-running flight pass through here too.
func (j *Job) markRunning(at time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateQueued {
		j.state = StateRunning
		j.started = at
	}
}

// finish moves the job to a terminal state. It reports false when the job
// already ended (a canceled job stays canceled even if its flight later
// produces a result).
func (j *Job) finish(state State, res *Result, errMsg string, at time.Time) bool {
	if !state.Terminal() {
		panic(fmt.Sprintf("serve: finish with non-terminal state %v", state))
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = state
	j.result = res
	j.errMsg = errMsg
	j.finished = at
	return true
}

// Result returns the job's result when done.
func (j *Job) Result() (*Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state == StateDone && j.result != nil
}

// State reports the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// JobView is the API snapshot of a job.
type JobView struct {
	ID          string     `json:"id"`
	Spec        Spec       `json:"spec"`
	State       string     `json:"state"`
	Cache       string     `json:"cache"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	Error       string     `json:"error,omitempty"`
	// Digest is the result CSV's SHA-256; the bytes themselves are served
	// by GET /v1/jobs/{id}/result.
	Digest string `json:"digest,omitempty"`
	// ElapsedMS is the execution wall time (0 for cache hits: the service
	// did not re-run the spec).
	ElapsedMS int64 `json:"elapsed_ms,omitempty"`
}

// View snapshots the job for the API.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.id,
		Spec:        j.spec,
		State:       j.state.String(),
		Cache:       j.cache,
		SubmittedAt: j.submitted,
		Error:       j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	if j.result != nil {
		v.Digest = j.result.Digest
		if j.cache != CacheHit {
			v.ElapsedMS = j.result.Elapsed.Milliseconds()
		}
	}
	return v
}

// Store is the in-memory job table. Retention is bounded: once the table
// exceeds its capacity, the oldest *terminal* jobs are evicted (a polling
// client can always reach every live job, but ancient finished jobs age
// out instead of growing the heap forever).
type Store struct {
	mu     sync.Mutex
	cap    int
	prefix string // job-id prefix, distinguishing mesh replicas
	seq    uint64
	jobs   map[string]*Job
	order  []string // insertion order, for eviction scans
	m      *Metrics
}

// newStore builds a store retaining about cap jobs whose ids carry prefix.
func newStore(cap int, prefix string, m *Metrics) *Store {
	if cap <= 0 {
		cap = 1024
	}
	return &Store{cap: cap, prefix: prefix, jobs: make(map[string]*Job), m: m}
}

// newJob mints, registers, and returns a job in the given initial state.
func (st *Store) newJob(spec Spec, cache string, fl *flight, now time.Time) *Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	j := &Job{
		id:        fmt.Sprintf("%sj%08d", st.prefix, st.seq),
		spec:      spec,
		cache:     cache,
		flight:    fl,
		state:     StateQueued,
		submitted: now,
	}
	st.jobs[j.id] = j
	st.order = append(st.order, j.id)
	st.evictLocked()
	return j
}

// evictLocked drops the oldest terminal jobs while over capacity.
func (st *Store) evictLocked() {
	if len(st.jobs) <= st.cap {
		return
	}
	kept := make([]string, 0, len(st.order))
	for i, id := range st.order {
		if len(st.jobs) <= st.cap {
			kept = append(kept, st.order[i:]...)
			break
		}
		j, ok := st.jobs[id]
		if !ok {
			continue
		}
		j.mu.Lock()
		terminal := j.state.Terminal()
		j.mu.Unlock()
		if terminal {
			delete(st.jobs, id)
			st.m.StoreEvicted.Inc()
		} else {
			kept = append(kept, id)
		}
	}
	st.order = kept
}

// remove unregisters a job. The submission path uses it to discard a
// stillborn job whose flight died between cache lookup and attach; the
// eviction scan drops the dangling order entry on its next pass.
func (st *Store) remove(id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.jobs, id)
}

// get finds a job by id.
func (st *Store) get(id string) (*Job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// size reports the number of retained jobs.
func (st *Store) size() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.jobs)
}

// Package serve is the simulation-as-a-service layer: an HTTP front end
// (net/http only) that accepts experiment specs as JSON, canonicalizes and
// hashes each spec into a cache key, and executes them on a bounded,
// sharded worker pool over the shared experiments registry.
//
// The layer is built from five pieces, each in its own file:
//
//   - Spec (this file): the JSON request codec. Canonicalization maps every
//     semantically equal request — reordered fields, default-valued fields
//     omitted or spelled out — to one cache key, so the cache and
//     single-flight layers deduplicate on meaning, not on bytes.
//   - Store: the in-memory job table with the queued → running →
//     done/failed/canceled lifecycle and bounded terminal-job retention.
//   - Cache: an LRU of finished results with single-flight admission —
//     identical concurrent specs run once and every submitter shares the
//     result.
//   - Pool: the sharded worker pool with bounded, discardable queues,
//     per-job timeouts, and graceful drain.
//   - snapStore: the checkpoint tier (DESIGN.md §10, introduced in PR 5).
//     Grid exhibits report per-cell completion through
//     experiments.Progress; interrupted executions leave a snapshot, and
//     resubmitting the same spec resumes from it instead of relaunching —
//     the serving-layer analogue of the paper's checkpoint/restart, with
//     the snapshot store playing the fast L1/L2 tiers to the result
//     cache's parallel-file-system role.
//
// Server wires the pieces to HTTP routes and the obs metrics registry;
// Config.CrashHook lets internal/chaos inject deterministic mid-job
// worker crashes to prove the resume path.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"exaresil/internal/experiments"
	"exaresil/internal/report"
)

// Spec is one experiment request. The zero value of every optional field
// means "the exhibit's own default" (the paper's statistical scale), so
// omitting a field and spelling out its default are the same request.
type Spec struct {
	// Exhibit names the experiment in the experiments registry (fig1,
	// fig4, ext-tau, ...). Group aliases (all, ext-all) are rejected: one
	// job runs one exhibit.
	Exhibit string `json:"exhibit"`
	// Trials is the Monte-Carlo repetition count for trial-based exhibits.
	Trials int `json:"trials,omitempty"`
	// Patterns is the arrival-pattern count for cluster exhibits.
	Patterns int `json:"patterns,omitempty"`
	// Arrivals is the applications-per-pattern count for cluster exhibits.
	Arrivals int `json:"arrivals,omitempty"`
	// Seed overrides the master random seed (0 = the paper-epoch default).
	Seed uint64 `json:"seed,omitempty"`
}

// maxScale caps the per-field statistical scale a single request may ask
// for, bounding the work one job can queue.
const maxScale = 100000

// ParseSpec decodes and validates one JSON spec. Unknown fields are
// rejected: a misspelled parameter must not silently run the default
// experiment.
func ParseSpec(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("decode spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Validate checks the spec against the experiments registry and the
// service's scale bounds.
func (s Spec) Validate() error {
	if s.Exhibit == "" {
		return fmt.Errorf("spec: exhibit is required")
	}
	for _, g := range experiments.GroupNames() {
		if s.Exhibit == g {
			return fmt.Errorf("spec: exhibit %q is a group alias; submit one exhibit per job", s.Exhibit)
		}
	}
	if _, ok := experiments.Lookup(s.Exhibit); !ok {
		return fmt.Errorf("spec: unknown exhibit %q", s.Exhibit)
	}
	for _, f := range []struct {
		name string
		v    int
	}{{"trials", s.Trials}, {"patterns", s.Patterns}, {"arrivals", s.Arrivals}} {
		if f.v < 0 {
			return fmt.Errorf("spec: %s must be non-negative, got %d", f.name, f.v)
		}
		if f.v > maxScale {
			return fmt.Errorf("spec: %s %d exceeds the service cap of %d", f.name, f.v, maxScale)
		}
	}
	return nil
}

// Canonical returns the canonical serialization the cache key hashes:
// every field in a fixed order, zero values spelled out. Two specs are the
// same experiment if and only if their canonical forms are equal.
func (s Spec) Canonical() string {
	return fmt.Sprintf("exhibit=%s&trials=%d&patterns=%d&arrivals=%d&seed=%d",
		s.Exhibit, s.Trials, s.Patterns, s.Arrivals, s.Seed)
}

// Key is the spec's cache key: the hex SHA-256 of its canonical form.
func (s Spec) Key() string {
	sum := sha256.Sum256([]byte(s.Canonical()))
	return hex.EncodeToString(sum[:])
}

// Params maps the spec onto the registry's scale parameters.
func (s Spec) Params() experiments.Params {
	return experiments.Params{Trials: s.Trials, Patterns: s.Patterns, Arrivals: s.Arrivals}
}

// Result is one finished experiment: the exhibit's CSV bytes (identical to
// what `exasim -csv` writes for the same spec), its SHA-256 digest, the
// rendered text table, and the execution wall time. Results are immutable
// once built; the cache hands the same *Result to every subscriber.
type Result struct {
	CSV     []byte
	Text    string
	Digest  string
	Elapsed time.Duration
}

// runSpec executes a validated spec against the experiments registry. It
// is the server's default Runner.
func runSpec(cfg experiments.Config, s Spec) (*Result, error) {
	ex, ok := experiments.Lookup(s.Exhibit)
	if !ok {
		return nil, fmt.Errorf("unknown exhibit %q", s.Exhibit)
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	start := time.Now()
	t, _, err := ex.Run(cfg, s.Params())
	if err != nil {
		return nil, err
	}
	return buildResult(t, time.Since(start))
}

// buildResult freezes a rendered table into an immutable Result.
func buildResult(t *report.Table, elapsed time.Duration) (*Result, error) {
	var csv strings.Builder
	if err := t.WriteCSV(&csv); err != nil {
		return nil, err
	}
	sum := sha256.Sum256([]byte(csv.String()))
	return &Result{
		CSV:     []byte(csv.String()),
		Text:    t.String(),
		Digest:  hex.EncodeToString(sum[:]),
		Elapsed: elapsed,
	}, nil
}

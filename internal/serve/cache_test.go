package serve

import (
	"errors"
	"testing"
	"time"
)

func admitAll(*flight) error { return nil }

// TestCacheSingleFlightAdmission: the first acquire of a key creates and
// leads a flight; subsequent acquires join it; completion turns the key
// into a hit.
func TestCacheSingleFlightAdmission(t *testing.T) {
	m := NewMetrics(nil)
	c := newCache(8, m)
	spec := Spec{Exhibit: "fig1", Trials: 2}

	res, fl, created, err := c.acquire(spec, admitAll)
	if err != nil || res != nil || fl == nil || !created {
		t.Fatalf("first acquire: res=%v fl=%v created=%v err=%v, want fresh flight", res, fl, created, err)
	}
	res2, fl2, created2, err := c.acquire(spec, admitAll)
	if err != nil || res2 != nil || created2 {
		t.Fatalf("second acquire: res=%v created=%v err=%v, want join", res2, created2, err)
	}
	if fl2 != fl {
		t.Fatal("second acquire joined a different flight")
	}

	want := &Result{Digest: "d"}
	c.complete(fl, want)
	res3, fl3, created3, err := c.acquire(spec, admitAll)
	if err != nil || created3 || fl3 != nil {
		t.Fatalf("post-complete acquire: fl=%v created=%v err=%v, want hit", fl3, created3, err)
	}
	if res3 != want {
		t.Fatalf("post-complete acquire returned %v, want the completed result", res3)
	}
}

// TestCacheRejectedFlightNotInserted: when admission fails (queue full),
// the flight must not be joinable — the next acquire of the same key
// creates a fresh one.
func TestCacheRejectedFlightNotInserted(t *testing.T) {
	c := newCache(8, NewMetrics(nil))
	spec := Spec{Exhibit: "fig1"}
	reject := func(*flight) error { return ErrSaturated }
	if _, _, _, err := c.acquire(spec, reject); !errors.Is(err, ErrSaturated) {
		t.Fatalf("rejected acquire: err=%v, want ErrSaturated", err)
	}
	if c.size() != 0 {
		t.Fatalf("rejected flight was inserted: cache size %d", c.size())
	}
	_, fl, created, err := c.acquire(spec, admitAll)
	if err != nil || fl == nil || !created {
		t.Fatalf("retry after rejection: fl=%v created=%v err=%v, want fresh flight", fl, created, err)
	}
}

// TestCacheForgetOnlyOwner: forget removes a failed flight's key, but not
// when a newer flight has since taken the key over.
func TestCacheForgetOnlyOwner(t *testing.T) {
	c := newCache(8, NewMetrics(nil))
	spec := Spec{Exhibit: "fig1"}
	_, fl1, _, _ := c.acquire(spec, admitAll)
	c.forget(fl1)
	if c.size() != 0 {
		t.Fatalf("forget left size %d, want 0", c.size())
	}
	_, fl2, _, _ := c.acquire(spec, admitAll)
	c.forget(fl1) // stale forget must not evict fl2's entry
	if c.size() != 1 {
		t.Fatalf("stale forget removed the new owner: size %d, want 1", c.size())
	}
	c.complete(fl2, &Result{})
	if res, _, _, _ := c.acquire(spec, admitAll); res == nil {
		t.Fatal("completed result missing after stale forget")
	}
}

// TestCacheEvictionSkipsInflight: over capacity, only finished results are
// evicted — in-flight entries have jobs attached and must survive.
func TestCacheEvictionSkipsInflight(t *testing.T) {
	m := NewMetrics(nil)
	c := newCache(2, m)
	sFin1 := Spec{Exhibit: "fig1"}
	sFin2 := Spec{Exhibit: "fig2"}
	sLive := Spec{Exhibit: "fig3"}

	_, fl1, _, _ := c.acquire(sFin1, admitAll)
	c.complete(fl1, &Result{Digest: "1"})
	_, flLive, _, _ := c.acquire(sLive, admitAll)
	_, fl2, _, _ := c.acquire(sFin2, admitAll)
	c.complete(fl2, &Result{Digest: "2"})

	// Capacity 2, three entries: the LRU finished entry (fig1) goes, the
	// in-flight fig3 stays even though it is older than fig2.
	if c.size() != 2 {
		t.Fatalf("cache size %d, want 2", c.size())
	}
	if res, _, _, _ := c.acquire(sFin1, func(*flight) error { return ErrSaturated }); res != nil {
		t.Fatal("LRU finished entry fig1 survived eviction")
	}
	if _, fl, _, _ := c.acquire(sLive, admitAll); fl != flLive {
		t.Fatal("in-flight entry was evicted")
	}
}

// TestFlightDetachSemantics: detaching the last job aborts a queued flight
// but merely keeps counting while other jobs remain.
func TestFlightDetachSemantics(t *testing.T) {
	now := time.Now()
	fl := &flight{key: "k"}
	j1, j2 := &Job{state: StateQueued}, &Job{state: StateQueued}
	fl.attach(j1, now)
	fl.attach(j2, now)
	if got := fl.detach(); got != detachKeep {
		t.Fatalf("first detach = %v, want detachKeep", got)
	}
	if got := fl.detach(); got != detachAborted {
		t.Fatalf("last detach = %v, want detachAborted", got)
	}
	if fl.begin(func(error) {}, now) {
		t.Fatal("begin succeeded on an aborted flight")
	}

	// A running flight's last detach cancels its context instead.
	stopped := false
	fl2 := &flight{key: "k2"}
	fl2.attach(j1, now)
	if !fl2.begin(func(error) { stopped = true }, now) {
		t.Fatal("begin failed on a live flight")
	}
	if got := fl2.detach(); got != detachStopped {
		t.Fatalf("running detach = %v, want detachStopped", got)
	}
	if !stopped {
		t.Fatal("running flight's stop function was not called")
	}

	// Detach after settle is late: nothing to stop.
	fl3 := &flight{key: "k3"}
	fl3.attach(j1, now)
	fl3.settle(StateDone, &Result{}, nil, "", now)
	if got := fl3.detach(); got != detachLate {
		t.Fatalf("post-settle detach = %v, want detachLate", got)
	}
}

package serve

import "sync"

// This file is the service's checkpoint store: the analogue of the
// paper's first-level (in-memory) checkpoint tier, sitting in front of
// the result cache's "parallel file system" role. A grid exhibit reports
// every finished cell through the experiments.Progress hook; the cells
// accumulate in a snapshot keyed by the spec's cache key. When the
// execution fails — runner error, per-job timeout, injected worker
// crash, or last-subscriber cancel — the snapshot survives, and the next
// flight for the same spec resumes from it instead of relaunching from
// scratch. A successful execution drops its snapshot: the finished
// result in the cache supersedes it.

// snapshot accumulates one spec's completed cells. Writes are
// first-write-wins: cells are deterministic functions of the spec, so a
// detached (abandoned) runner racing a resumed one records identical
// values and the earlier write is as good as the later.
type snapshot struct {
	mu    sync.Mutex
	cells map[int][]float64
}

// note records one finished cell's outcome values.
func (sn *snapshot) note(cell int, values []float64) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if _, ok := sn.cells[cell]; !ok {
		sn.cells[cell] = append([]float64(nil), values...)
	}
}

// completed copies the recorded cells for handoff to a resuming run.
func (sn *snapshot) completed() map[int][]float64 {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if len(sn.cells) == 0 {
		return nil
	}
	out := make(map[int][]float64, len(sn.cells))
	for k, v := range sn.cells {
		out[k] = v
	}
	return out
}

// size reports the number of recorded cells.
func (sn *snapshot) size() int {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return len(sn.cells)
}

// snapStore holds the partial-result snapshots of interrupted
// executions, keyed by spec cache key and bounded like the result cache:
// when over capacity, the oldest snapshots are evicted (losing a
// snapshot only costs recomputation, never correctness).
type snapStore struct {
	mu    sync.Mutex
	cap   int
	byKey map[string]*snapshot
	order []string // insertion/refresh order, oldest first
	m     *Metrics
}

// newSnapStore builds a store retaining about cap snapshots.
func newSnapStore(cap int, m *Metrics) *snapStore {
	if cap <= 0 {
		cap = 64
	}
	return &snapStore{cap: cap, byKey: make(map[string]*snapshot), m: m}
}

// open returns the snapshot for key — the surviving one of an earlier
// interrupted execution, or a fresh empty one — and reports how many
// cells that earlier execution left behind.
func (ss *snapStore) open(key string) (*snapshot, int) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if sn, ok := ss.byKey[key]; ok {
		ss.refreshLocked(key)
		return sn, sn.size()
	}
	sn := &snapshot{cells: make(map[int][]float64)}
	ss.byKey[key] = sn
	ss.order = append(ss.order, key)
	ss.evictLocked(key)
	ss.m.Snapshots.Set(int64(len(ss.byKey)))
	return sn, 0
}

// drop removes key's snapshot (the execution completed; the result cache
// now owns the spec).
func (ss *snapStore) drop(key string) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.removeLocked(key)
}

// settle is called when an execution ends without a result: a snapshot
// that recorded cells is kept for the next attempt's resume, an empty
// one (the exhibit has no checkpointable cells, or none finished) is
// discarded.
func (ss *snapStore) settle(key string) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if sn, ok := ss.byKey[key]; ok && sn.size() == 0 {
		ss.removeLocked(key)
	}
}

// export deep-copies every retained snapshot with at least one recorded
// cell, keyed by spec cache key. The mesh coordinator uses it to lift an
// interrupted execution's progress off a dead replica (and to prewarm a
// revived one), mirroring ReStore's in-memory checkpoint scatter.
func (ss *snapStore) export() map[string]map[int][]float64 {
	ss.mu.Lock()
	sns := make(map[string]*snapshot, len(ss.byKey))
	for k, sn := range ss.byKey {
		sns[k] = sn
	}
	ss.mu.Unlock()
	out := make(map[string]map[int][]float64, len(sns))
	for k, sn := range sns {
		cells := sn.completed()
		if len(cells) == 0 {
			continue
		}
		cp := make(map[int][]float64, len(cells))
		for cell, values := range cells {
			cp[cell] = append([]float64(nil), values...)
		}
		out[k] = cp
	}
	return out
}

// merge folds handed-off cells into key's snapshot (creating it when
// absent) and reports how many cells were new here. First-write-wins per
// cell, exactly like a local recording: cells are deterministic functions
// of the spec, so colliding writes carry identical values.
func (ss *snapStore) merge(key string, cells map[int][]float64) int {
	if len(cells) == 0 {
		return 0
	}
	sn, _ := ss.open(key)
	before := sn.size()
	for cell, values := range cells {
		sn.note(cell, values)
	}
	return sn.size() - before
}

// size reports the number of retained snapshots.
func (ss *snapStore) size() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return len(ss.byKey)
}

// refreshLocked moves key to the young end of the eviction order.
func (ss *snapStore) refreshLocked(key string) {
	for i, k := range ss.order {
		if k == key {
			ss.order = append(append(ss.order[:i:i], ss.order[i+1:]...), key)
			return
		}
	}
}

// removeLocked deletes key from the map and the order slice.
func (ss *snapStore) removeLocked(key string) {
	if _, ok := ss.byKey[key]; !ok {
		return
	}
	delete(ss.byKey, key)
	for i, k := range ss.order {
		if k == key {
			ss.order = append(ss.order[:i], ss.order[i+1:]...)
			break
		}
	}
	ss.m.Snapshots.Set(int64(len(ss.byKey)))
}

// evictLocked drops the oldest snapshots while over capacity, sparing
// keep (the one being opened right now).
func (ss *snapStore) evictLocked(keep string) {
	for len(ss.byKey) > ss.cap && len(ss.order) > 0 {
		victim := ""
		for _, k := range ss.order {
			if k != keep {
				victim = k
				break
			}
		}
		if victim == "" {
			return
		}
		ss.removeLocked(victim)
		ss.m.SnapshotsEvicted.Inc()
	}
}

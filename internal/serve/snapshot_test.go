package serve

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"testing"

	"exaresil/internal/experiments"
)

// TestSnapshotStoreLifecycle pins the checkpoint store's unit semantics:
// resume handoff, success drop, failure settle, and bounded eviction.
func TestSnapshotStoreLifecycle(t *testing.T) {
	ss := newSnapStore(2, NewMetrics(nil))

	sn, restored := ss.open("a")
	if restored != 0 {
		t.Fatalf("fresh open restored %d cells", restored)
	}
	sn.note(0, []float64{1, 2})
	sn.note(1, []float64{3, 4})
	sn.note(0, []float64{9, 9}) // first write wins
	ss.settle("a")              // failed run with progress: snapshot survives

	sn2, restored := ss.open("a")
	if restored != 2 || sn2 != sn {
		t.Fatalf("reopen restored %d cells (same snapshot: %v), want 2 from the original", restored, sn2 == sn)
	}
	got := sn2.completed()
	if v := got[0]; len(v) != 2 || v[0] != 1 || v[1] != 2 {
		t.Fatalf("cell 0 = %v, want the first write [1 2]", v)
	}
	ss.drop("a") // success: the result cache owns the spec now
	if ss.size() != 0 {
		t.Fatalf("store holds %d snapshots after drop", ss.size())
	}

	// An execution that checkpointed nothing leaves nothing behind.
	ss.open("empty")
	ss.settle("empty")
	if ss.size() != 0 {
		t.Fatalf("empty snapshot survived settle: %d retained", ss.size())
	}

	// Capacity 2: a third open evicts the oldest, sparing the newcomer.
	s1, _ := ss.open("k1")
	s1.note(0, []float64{1})
	ss.settle("k1")
	s2, _ := ss.open("k2")
	s2.note(0, []float64{2})
	ss.settle("k2")
	ss.open("k3")
	if ss.size() != 2 {
		t.Fatalf("store holds %d snapshots, want cap 2", ss.size())
	}
	if _, restored := ss.open("k2"); restored != 1 {
		t.Fatal("young snapshot k2 was evicted instead of the oldest")
	}
}

// goldenDigest reads one exhibit's pinned digest from the golden
// manifest, so the resume test asserts against the same truth
// `exacheck golden` enforces.
func goldenDigest(t *testing.T, name string) string {
	t.Helper()
	raw, err := os.ReadFile("../../results/golden/manifest.txt")
	if err != nil {
		t.Fatalf("read golden manifest: %v", err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[1] == name {
			return fields[0]
		}
	}
	t.Fatalf("golden manifest has no %q entry", name)
	return ""
}

// TestCrashedJobResumesFromSnapshot is the end-to-end checkpoint/restart
// proof on the real runner: an injected worker crash fails a golden-size
// fig4 job partway through its grid, the resubmitted spec resumes from
// the snapshot instead of starting over, and the resumed result is
// byte-identical to an uninterrupted run — digest equal to the golden
// manifest's pin.
func TestCrashedJobResumesFromSnapshot(t *testing.T) {
	var crashes atomic.Int32
	srv, ts := newTestServer(t, Config{
		Workers: 1,
		CrashHook: func() (int, bool) {
			if crashes.Add(1) == 1 {
				return 4, true // die after 4 fresh cells, first execution only
			}
			return 0, false
		},
	})

	const body = `{"exhibit":"fig4","patterns":6}` // the golden fig4 spec
	code, first, _ := postSpec(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	crashed := pollTerminal(t, ts, first.ID)
	if crashed.State != "failed" || !strings.Contains(crashed.Error, "injected worker crash") {
		t.Fatalf("first attempt ended %s (%q), want failed by injected crash", crashed.State, crashed.Error)
	}
	if srv.snaps.size() != 1 {
		t.Fatalf("%d snapshots retained after the crash, want 1", srv.snaps.size())
	}
	if n := srv.m.CrashesInjected.Value(); n != 1 {
		t.Fatalf("crashes injected = %d, want 1", n)
	}

	code, second, _ := postSpec(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: HTTP %d", code)
	}
	done := pollTerminal(t, ts, second.ID)
	if done.State != "done" {
		t.Fatalf("resumed attempt ended %s: %s", done.State, done.Error)
	}
	rcode, csv, _ := fetchResult(t, ts, second.ID)
	if rcode != http.StatusOK {
		t.Fatalf("result: HTTP %d", rcode)
	}

	// The resumed run really resumed: cells were restored, and the two
	// attempts together computed each of the 72 grid cells at most once.
	if srv.m.SnapshotResumes.Value() != 1 {
		t.Fatalf("snapshot resumes = %d, want 1", srv.m.SnapshotResumes.Value())
	}
	restored := srv.m.SnapshotCellsRestored.Value()
	recorded := srv.m.SnapshotCellsRecorded.Value()
	if restored == 0 {
		t.Fatal("resume restored no cells")
	}
	if recorded >= 2*72 {
		t.Fatalf("recorded %d cells across both attempts — the resume recomputed everything", recorded)
	}
	if recorded < 72 {
		t.Fatalf("recorded only %d cells; the grid has 72", recorded)
	}
	if srv.snaps.size() != 0 {
		t.Fatalf("%d snapshots retained after success, want 0", srv.snaps.size())
	}

	// Bit-identical resume: digest matches the golden pin and the CSV
	// matches a direct, uninterrupted run of the same spec.
	if want := goldenDigest(t, "fig4"); done.Digest != want {
		t.Fatalf("resumed digest %s != golden manifest pin %s", done.Digest, want)
	}
	direct, err := runSpec(experiments.Default(), Spec{Exhibit: "fig4", Patterns: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv, direct.CSV) {
		t.Fatal("resumed CSV differs from an uninterrupted direct run")
	}
	if fmt.Sprintf("%x", sha256.Sum256(csv)) != done.Digest {
		t.Fatal("served CSV does not hash to the advertised digest")
	}
}

// TestCancelQueuedJobFreesAdmissionSlot is the regression test for the
// queued-cancel leak: DELETE on a job that is still waiting in a shard
// queue must release its admission slot immediately — a follow-up
// submission fits without waiting for a worker to reach and skip the
// corpse.
func TestCancelQueuedJobFreesAdmissionSlot(t *testing.T) {
	r := newBlockingRunner(false)
	defer r.unblock()
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Runner: r.run})

	// A occupies the sole worker; B occupies the sole queue slot.
	code, _, _ := postSpec(t, ts, `{"exhibit":"fig1","trials":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit A: HTTP %d", code)
	}
	r.waitStart(t)
	code, b, _ := postSpec(t, ts, `{"exhibit":"fig1","trials":2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit B: HTTP %d", code)
	}

	// The queue is full: C bounces with 429.
	code, _, hdr := postSpec(t, ts, `{"exhibit":"fig1","trials":3}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("submit C on a full queue: HTTP %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After")
	}

	// Canceling queued B must free the slot right away: C now fits.
	if code := cancelJob(t, ts, b.ID); code != http.StatusOK {
		t.Fatalf("cancel B: HTTP %d", code)
	}
	code, c, _ := postSpec(t, ts, `{"exhibit":"fig1","trials":3}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit C after canceling queued B: HTTP %d, want 202 (slot leaked)", code)
	}

	r.unblock()
	if v := pollTerminal(t, ts, c.ID); v.State != "done" {
		t.Fatalf("C ended %s: %s", v.State, v.Error)
	}
	// B stays canceled; its flight never ran.
	if _, v := getJob(t, ts, b.ID); v.State != "canceled" {
		t.Fatalf("B is %s, want canceled", v.State)
	}
	if got := r.calls.Load(); got != 2 {
		t.Fatalf("runner executed %d specs, want 2 (canceled B must not run)", got)
	}
}

package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"exaresil/internal/experiments"
)

// specFields renders a spec as JSON with its fields in an arbitrary order,
// optionally spelling out zero-valued fields. encoding/json always emits a
// fixed order, so the permutations are built by hand.
func specJSON(s Spec, order []int, includeZeros bool) string {
	fields := []struct {
		name string
		val  string
		zero bool
	}{
		{"exhibit", fmt.Sprintf("%q", s.Exhibit), s.Exhibit == ""},
		{"trials", fmt.Sprintf("%d", s.Trials), s.Trials == 0},
		{"patterns", fmt.Sprintf("%d", s.Patterns), s.Patterns == 0},
		{"arrivals", fmt.Sprintf("%d", s.Arrivals), s.Arrivals == 0},
		{"seed", fmt.Sprintf("%d", s.Seed), s.Seed == 0},
	}
	var parts []string
	for _, i := range order {
		f := fields[i]
		if f.zero && !includeZeros {
			continue
		}
		parts = append(parts, fmt.Sprintf("%q: %s", f.name, f.val))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// TestSpecKeySemanticEquality: every JSON rendering of the same spec —
// shuffled field order, zero values omitted or spelled out — parses to the
// same cache key.
func TestSpecKeySemanticEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	specs := []Spec{
		{Exhibit: "fig1"},
		{Exhibit: "fig4", Patterns: 6},
		{Exhibit: "table2", Trials: 50, Seed: 7},
		{Exhibit: "ext-tau", Trials: 10, Patterns: 3, Arrivals: 20, Seed: 99},
	}
	for _, want := range specs {
		base := want.Key()
		for trial := 0; trial < 25; trial++ {
			order := rng.Perm(5)
			includeZeros := trial%2 == 0
			raw := specJSON(want, order, includeZeros)
			got, err := ParseSpec(strings.NewReader(raw))
			if err != nil {
				t.Fatalf("ParseSpec(%s): %v", raw, err)
			}
			if got.Key() != base {
				t.Errorf("spec %+v rendered as %s: key %s, want %s", want, raw, got.Key(), base)
			}
		}
	}
}

// TestSpecKeySensitivity: changing any single parameter changes the key.
func TestSpecKeySensitivity(t *testing.T) {
	base := Spec{Exhibit: "fig4", Trials: 10, Patterns: 6, Arrivals: 40, Seed: 1}
	mutations := map[string]Spec{
		"exhibit":  {Exhibit: "fig5", Trials: 10, Patterns: 6, Arrivals: 40, Seed: 1},
		"trials":   {Exhibit: "fig4", Trials: 11, Patterns: 6, Arrivals: 40, Seed: 1},
		"patterns": {Exhibit: "fig4", Trials: 10, Patterns: 7, Arrivals: 40, Seed: 1},
		"arrivals": {Exhibit: "fig4", Trials: 10, Patterns: 6, Arrivals: 41, Seed: 1},
		"seed":     {Exhibit: "fig4", Trials: 10, Patterns: 6, Arrivals: 40, Seed: 2},
		"zeroed":   {Exhibit: "fig4"},
	}
	seen := map[string]string{base.Canonical(): "base"}
	for name, m := range mutations {
		if m.Key() == base.Key() {
			t.Errorf("mutating %s did not change the cache key", name)
		}
		if prior, dup := seen[m.Canonical()]; dup {
			t.Errorf("mutations %s and %s collide on canonical form %s", name, prior, m.Canonical())
		}
		seen[m.Canonical()] = name
	}
}

// TestSpecKeyMatchesRegistryNames: every registry exhibit yields a distinct
// default-spec key (the canonical form embeds the name, so this guards
// against a registry rename silently aliasing cached results).
func TestSpecKeyMatchesRegistryNames(t *testing.T) {
	keys := map[string]string{}
	for _, name := range experiments.Names() {
		s := Spec{Exhibit: name}
		if err := s.Validate(); err != nil {
			t.Fatalf("registry exhibit %q fails spec validation: %v", name, err)
		}
		if prior, dup := keys[s.Key()]; dup {
			t.Fatalf("exhibits %q and %q share cache key %s", name, prior, s.Key())
		}
		keys[s.Key()] = name
	}
}

// TestParseSpecRejections: malformed or out-of-contract specs fail with a
// diagnostic rather than running something else.
func TestParseSpecRejections(t *testing.T) {
	cases := []struct {
		name string
		raw  string
		want string
	}{
		{"unknown field", `{"exhibit":"fig1","trails":5}`, "trails"},
		{"unknown exhibit", `{"exhibit":"fig9"}`, "unknown exhibit"},
		{"group alias all", `{"exhibit":"all"}`, "group alias"},
		{"group alias ext-all", `{"exhibit":"ext-all"}`, "group alias"},
		{"missing exhibit", `{"trials":5}`, "exhibit is required"},
		{"negative trials", `{"exhibit":"fig1","trials":-1}`, "non-negative"},
		{"negative patterns", `{"exhibit":"fig4","patterns":-2}`, "non-negative"},
		{"over scale cap", fmt.Sprintf(`{"exhibit":"fig1","trials":%d}`, maxScale+1), "exceeds"},
		{"not json", `exhibit=fig1`, "decode spec"},
		{"wrong type", `{"exhibit":"fig1","trials":"many"}`, "decode spec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec(strings.NewReader(tc.raw))
			if err == nil {
				t.Fatalf("ParseSpec(%s) accepted, want error containing %q", tc.raw, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("ParseSpec(%s) error %q, want it to contain %q", tc.raw, err, tc.want)
			}
		})
	}
}

// TestSpecRoundTrip: the API's own JSON rendering of a spec parses back to
// an identical key (poll responses echo specs; a client resubmitting one
// must hit the cache).
func TestSpecRoundTrip(t *testing.T) {
	for _, s := range []Spec{
		{Exhibit: "fig1"},
		{Exhibit: "fig4", Trials: 3, Patterns: 2, Arrivals: 10, Seed: 12345},
	} {
		raw, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseSpec(strings.NewReader(string(raw)))
		if err != nil {
			t.Fatalf("round-trip of %s: %v", raw, err)
		}
		if back.Key() != s.Key() {
			t.Errorf("round-trip of %s changed key: %s -> %s", raw, s.Key(), back.Key())
		}
	}
}

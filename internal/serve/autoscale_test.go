package serve

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// The autoscaler tests drive the state machine deterministically: the
// background ticker is parked on an hour-long interval and the test calls
// evaluate directly with a synthetic clock, so every decision (and every
// suppressed one) is attributable to a specific sample.

// hourly parks the background evaluator so tests own the clock.
func hourly(ac AutoscaleConfig) *AutoscaleConfig {
	ac.Interval = time.Hour
	return &ac
}

// specForShard brute-forces a spec whose cache key routes to the given
// shard at the given pool width (seed offset keeps specs distinct across
// call sites).
func specForShard(t *testing.T, shard, width int, offset uint64) Spec {
	t.Helper()
	for i := offset; i < offset+100000; i++ {
		s := Spec{Exhibit: "fig1", Seed: i}
		if shardOf(s.Key(), width) == shard {
			return s
		}
	}
	t.Fatalf("no spec found for shard %d of %d", shard, width)
	return Spec{}
}

// pollUntil spins until cond holds or the deadline passes.
func pollUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// settleLocal polls the server's own store until the job is terminal.
func settleLocal(t *testing.T, srv *Server, id string) JobView {
	t.Helper()
	var v JobView
	pollUntil(t, "job "+id+" terminal", func() bool {
		view, ok := srv.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		v = view
		return v.State == "done" || v.State == "failed" || v.State == "canceled"
	})
	return v
}

// TestAutoscaleGrowShrinkCycle: sustained queue pressure grows the pool
// to Max through the up-hysteresis window with cooldown suppression in
// between, and a drained queue shrinks it back to Min — with every job
// finishing done (elasticity never kills work).
func TestAutoscaleGrowShrinkCycle(t *testing.T) {
	r := newBlockingRunner(false)
	srv, _ := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 8,
		Runner:     r.run,
		Autoscale: hourly(AutoscaleConfig{
			Min: 1, Max: 3,
			UpThreshold: 0.5, DownThreshold: 0.1,
			UpWindow: 2, DownWindow: 2,
			Cooldown:   time.Minute,
			WaitBudget: time.Hour, // isolate the queue signal
		}),
	})
	defer r.unblock()

	var ids []string
	for i := 0; i < 6; i++ {
		v, err := srv.Submit(Spec{Exhibit: "fig1", Seed: uint64(i + 1)})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, v.ID)
	}
	r.waitStart(t) // worker 0 is busy; the rest are queued

	t0 := time.Now()
	at := func(d time.Duration) time.Time { return t0.Add(d) }

	srv.scaler.evaluate(at(0)) // streak 1: no move yet (hysteresis)
	if got := srv.pool.workers(); got != 1 {
		t.Fatalf("width after one pressured sample = %d, want 1 (up window is 2)", got)
	}
	srv.scaler.evaluate(at(time.Second)) // streak 2: grow
	if got := srv.pool.workers(); got != 2 {
		t.Fatalf("width after up window = %d, want 2", got)
	}
	if got := srv.m.AutoscaleUp.Value(); got != 1 {
		t.Fatalf("up decisions = %d, want 1", got)
	}

	// Pressure persists, the streak re-crosses the window, but the
	// cooldown from the first grow suppresses the second.
	srv.scaler.evaluate(at(2 * time.Second))
	srv.scaler.evaluate(at(3 * time.Second))
	if got := srv.pool.workers(); got != 2 {
		t.Fatalf("width during cooldown = %d, want 2", got)
	}
	if got := srv.m.AutoscaleBlockedCooldown.Value(); got == 0 {
		t.Fatal("cooldown suppressed no decision; want blocked{cooldown} > 0")
	}

	// Past the cooldown the pool reaches Max, where the bound holds it.
	srv.scaler.evaluate(at(2 * time.Minute))
	srv.scaler.evaluate(at(2*time.Minute + time.Second))
	if got := srv.pool.workers(); got != 3 {
		t.Fatalf("width after cooldown = %d, want 3 (Max)", got)
	}
	srv.scaler.evaluate(at(4 * time.Minute))
	srv.scaler.evaluate(at(4*time.Minute + time.Second))
	if got := srv.pool.workers(); got != 3 {
		t.Fatalf("width past Max = %d, want 3", got)
	}
	if got := srv.m.AutoscaleBlockedBound.Value(); got == 0 {
		t.Fatal("bound suppressed no decision; want blocked{bound} > 0")
	}

	// Load ends: everything finishes, the queue signal decays, and the
	// down window walks the pool back to Min.
	r.unblock()
	for _, id := range ids {
		if v := settleLocal(t, srv, id); v.State != "done" {
			t.Fatalf("job %s = %s, want done (autoscaling must not kill work)", id, v.State)
		}
	}
	for i := 0; i < 60 && srv.pool.workers() > 1; i++ {
		pollUntil(t, "retiring shards drained", func() bool { return srv.pool.retiring() == 0 })
		srv.scaler.evaluate(at(10*time.Minute + time.Duration(i)*time.Minute))
	}
	if got := srv.pool.workers(); got != 1 {
		t.Fatalf("width after idle decay = %d, want 1 (Min)", got)
	}
	if got := srv.m.AutoscaleDown.Value(); got != 2 {
		t.Fatalf("down decisions = %d, want 2 (3 -> 2 -> 1)", got)
	}
	if got := srv.m.JobsFailed.Value(); got != 0 {
		t.Fatalf("failed jobs = %d, want 0", got)
	}
	if got := srv.m.AutoscaleWorkers.Value(); got != 1 {
		t.Fatalf("autoscale_workers gauge = %d, want 1", got)
	}
}

// TestAutoscaleShrinkBlockedByInflight: a shrink marks its shard retiring
// but the next shrink is suppressed (blocked{draining}) until the
// retiring worker finishes its in-flight job — which must complete done.
func TestAutoscaleShrinkBlockedByInflight(t *testing.T) {
	r := newBlockingRunner(false)
	srv, _ := newTestServer(t, Config{
		Workers:    3,
		QueueDepth: 12,
		Runner:     r.run,
		Autoscale: hourly(AutoscaleConfig{
			Min: 1, Max: 3,
			UpThreshold: 2, DownThreshold: 0.5,
			UpWindow: 1, DownWindow: 1,
			Cooldown: time.Nanosecond,
		}),
	})
	defer r.unblock()

	// One long job pinned to the shard the first shrink will retire
	// (index 2), keeping its worker busy through the shrink.
	spec := specForShard(t, 2, 3, 1)
	v, err := srv.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	r.waitStart(t)

	t0 := time.Now()
	srv.scaler.evaluate(t0) // idle: shrink 3 -> 2; shard 2 now retiring mid-job
	if got := srv.pool.workers(); got != 2 {
		t.Fatalf("width after first shrink = %d, want 2", got)
	}
	if got := srv.pool.retiring(); got != 1 {
		t.Fatalf("retiring shards = %d, want 1 (worker still on its job)", got)
	}

	srv.scaler.evaluate(t0.Add(time.Minute)) // wants 2 -> 1; must be blocked
	if got := srv.pool.workers(); got != 2 {
		t.Fatalf("width while retiring shard drains = %d, want 2", got)
	}
	if got := srv.m.AutoscaleBlockedDraining.Value(); got != 1 {
		t.Fatalf("blocked{draining} = %d, want 1", got)
	}

	// The job finishes done — drain-before-shrink never killed it — and
	// with the shard fully parked the second shrink proceeds.
	r.unblock()
	if got := settleLocal(t, srv, v.ID); got.State != "done" {
		t.Fatalf("job on retiring shard = %s, want done", got.State)
	}
	pollUntil(t, "retiring shard parked", func() bool { return srv.pool.retiring() == 0 })
	srv.scaler.evaluate(t0.Add(2 * time.Minute))
	if got := srv.pool.workers(); got != 1 {
		t.Fatalf("width after drain completes = %d, want 1", got)
	}
}

// TestAutoscaleMinEqualsMax: a pinned width samples and exports the
// signals but never decides, whatever the load does.
func TestAutoscaleMinEqualsMax(t *testing.T) {
	r := newBlockingRunner(false)
	srv, _ := newTestServer(t, Config{
		Workers:    5, // clamped into [2, 2]
		QueueDepth: 8,
		Runner:     r.run,
		Autoscale:  hourly(AutoscaleConfig{Min: 2, Max: 2, UpWindow: 1, DownWindow: 1}),
	})
	defer r.unblock()

	if got := srv.pool.workers(); got != 2 {
		t.Fatalf("initial width = %d, want 2 (Workers clamped into [Min, Max])", got)
	}
	for i := 0; i < 6; i++ {
		if _, err := srv.Submit(Spec{Exhibit: "fig1", Seed: uint64(i + 1)}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	t0 := time.Now()
	for i := 0; i < 5; i++ {
		srv.scaler.evaluate(t0.Add(time.Duration(i) * time.Minute))
	}
	if got := srv.pool.workers(); got != 2 {
		t.Fatalf("width = %d, want pinned 2", got)
	}
	if up, down := srv.m.AutoscaleUp.Value(), srv.m.AutoscaleDown.Value(); up != 0 || down != 0 {
		t.Fatalf("decisions = up %d down %d, want none for min==max", up, down)
	}
	if got := srv.m.AutoscaleQueueSignal.Value(); got == 0 {
		t.Fatal("queue signal gauge not exported under pinned width")
	}
	if got := srv.m.AutoscaleWorkers.Value(); got != 2 {
		t.Fatalf("autoscale_workers gauge = %d, want 2", got)
	}
}

// TestAutoscaleValidate: inverted bounds and inverted thresholds are
// rejected at construction, not discovered at the first decision.
func TestAutoscaleValidate(t *testing.T) {
	if _, err := New(Config{Autoscale: &AutoscaleConfig{Min: 4, Max: 2}}); err == nil {
		t.Fatal("New accepted inverted autoscale bounds (min 4, max 2)")
	} else if !strings.Contains(err.Error(), "inverted") {
		t.Fatalf("inverted-bounds error %q does not name the problem", err)
	}
	if err := (AutoscaleConfig{UpThreshold: 0.2, DownThreshold: 0.5}).withDefaults().Validate(); err == nil {
		t.Fatal("Validate accepted down threshold above up threshold")
	}
	if err := (AutoscaleConfig{}).withDefaults().Validate(); err != nil {
		t.Fatalf("zero config (defaults) must validate, got %v", err)
	}
}

// TestRetryAfterTracksActiveWidth: the 429 pacing estimate divides by the
// pool's current active width, so a grow mid-window shortens the advice
// and a shrink lengthens it (the PR-10 bugfix sweep's regression).
func TestRetryAfterTracksActiveWidth(t *testing.T) {
	r := newBlockingRunner(false)
	srv, _ := newTestServer(t, Config{
		Workers: 1,
		Runner:  r.run,
		Autoscale: hourly(AutoscaleConfig{
			Min: 1, Max: 4,
		}),
	})
	defer r.unblock()

	srv.noteJobSeconds(10) // seed the execution EWMA: 10s per job
	if got := srv.RetryAfterSeconds(); got != 10 {
		t.Fatalf("RetryAfter at width 1 = %d, want 10", got)
	}
	srv.pool.grow()
	if got := srv.RetryAfterSeconds(); got != 5 {
		t.Fatalf("RetryAfter at width 2 = %d, want 5", got)
	}
	srv.pool.shrink()
	pollUntil(t, "retired shard parked", func() bool { return srv.pool.retiring() == 0 })
	if got := srv.RetryAfterSeconds(); got != 10 {
		t.Fatalf("RetryAfter back at width 1 = %d, want 10", got)
	}
}

// TestCancelQueuedOnRetiringShard: DELETE of a job queued on a shard that
// is mid-retire still frees the slot immediately (the PR-7 cancel path
// composed with PR-10 shrink), and the retiring worker parks instead of
// waiting on the discarded flight.
func TestCancelQueuedOnRetiringShard(t *testing.T) {
	r := newBlockingRunner(false)
	srv, _ := newTestServer(t, Config{
		Workers:    2,
		QueueDepth: 8,
		Runner:     r.run,
	})
	defer r.unblock()

	// Two specs pinned to shard 1: the first occupies its worker, the
	// second queues behind it.
	specA := specForShard(t, 1, 2, 1)
	specB := specForShard(t, 1, 2, specA.Seed+1)
	va, err := srv.Submit(specA)
	if err != nil {
		t.Fatalf("submit A: %v", err)
	}
	r.waitStart(t)
	vb, err := srv.Submit(specB)
	if err != nil {
		t.Fatalf("submit B: %v", err)
	}
	if got := srv.Queued(); got != 1 {
		t.Fatalf("queued = %d, want 1", got)
	}

	if !srv.pool.shrink() {
		t.Fatal("shrink refused")
	}
	view, err := srv.CancelJob(vb.ID)
	if err != nil {
		t.Fatalf("cancel queued job on retiring shard: %v", err)
	}
	if view.State != "canceled" {
		t.Fatalf("canceled job state = %s, want canceled", view.State)
	}
	if got := srv.Queued(); got != 0 {
		t.Fatalf("queued after cancel = %d, want 0 (slot freed immediately)", got)
	}

	r.unblock()
	if got := settleLocal(t, srv, va.ID); got.State != "done" {
		t.Fatalf("running job = %s, want done", got.State)
	}
	pollUntil(t, "retiring shard parked", func() bool { return srv.pool.retiring() == 0 })
}

// TestPoolShrinkDrainsBacklog: a retired shard's queued flights all run
// to completion before the worker parks, and a later grow revives the
// parked slot with a fresh worker.
func TestPoolShrinkDrainsBacklog(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	done := make(chan string, 8)
	p := newPool(2, 8, func(fl *flight) {
		started <- fl.key
		<-release
		done <- fl.key
	}, NewMetrics(nil))
	p.start()

	keyFor := func(shard, width int, n int) string {
		for i := 0; i < 100000; i++ {
			k := fmt.Sprintf("k%d-%d", n, i)
			if shardOf(k, width) == shard {
				return k
			}
		}
		t.Fatalf("no key for shard %d of %d", shard, width)
		return ""
	}

	// Three flights on shard 1: one executing, two queued.
	for n := 0; n < 3; n++ {
		if err := p.submit(&flight{key: keyFor(1, 2, n)}); err != nil {
			t.Fatalf("submit %d: %v", n, err)
		}
	}
	<-started

	if !p.shrink() {
		t.Fatal("shrink refused")
	}
	if got := p.workers(); got != 1 {
		t.Fatalf("active width = %d, want 1", got)
	}
	if got := p.retiring(); got != 1 {
		t.Fatalf("retiring = %d, want 1", got)
	}
	// New work routes only to the surviving width.
	if err := p.submit(&flight{key: keyFor(0, 1, 99)}); err != nil {
		t.Fatalf("submit after shrink: %v", err)
	}
	<-started

	close(release)
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		select {
		case k := <-done:
			seen[k] = true
		case <-time.After(10 * time.Second):
			t.Fatalf("flight %d never finished; backlog dropped by shrink", i)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("finished %d distinct flights, want 4", len(seen))
	}
	pollUntil(t, "retired worker parked", func() bool { return p.retiring() == 0 })

	// Grow revives the parked slot.
	if !p.grow() {
		t.Fatal("grow refused")
	}
	if got := p.workers(); got != 2 {
		t.Fatalf("width after grow = %d, want 2", got)
	}
	if err := p.submit(&flight{key: keyFor(1, 2, 100)}); err != nil {
		t.Fatalf("submit to revived shard: %v", err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("revived shard's worker never picked up work")
	}
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"exaresil/internal/experiments"
	"exaresil/internal/obs"
)

// newTestServer builds a server (registering a fresh obs registry when the
// config has none) and mounts it on an httptest listener. Cleanup drains
// with a bounded context so a wedged test fails instead of hanging.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
	})
	return srv, ts
}

// postSpec submits one raw JSON spec and decodes the job view on success.
func postSpec(t *testing.T, ts *httptest.Server, body string) (int, JobView, http.Header) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var v JobView
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("decode job view from %s: %v", raw, err)
		}
	}
	return resp.StatusCode, v, resp.Header
}

// getJob polls one job view.
func getJob(t *testing.T, ts *httptest.Server, id string) (int, JobView) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job %s: %v", id, err)
	}
	defer resp.Body.Close()
	var v JobView
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decode job %s: %v", id, err)
		}
	}
	return resp.StatusCode, v
}

// pollTerminal waits until the job reaches a terminal state.
func pollTerminal(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, v := getJob(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("poll %s: HTTP %d", id, code)
		}
		switch v.State {
		case "done", "failed", "canceled":
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not settle in time", id)
	return JobView{}
}

// cancelJob issues DELETE and returns the status code.
func cancelJob(t *testing.T, ts *httptest.Server, id string) int {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE job %s: %v", id, err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// fetchResult downloads a done job's CSV bytes and digest header.
func fetchResult(t *testing.T, ts *httptest.Server, id string) (int, []byte, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatalf("GET result %s: %v", id, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw, resp.Header.Get("X-Exaresil-Digest")
}

// blockingRunner is a controllable stub Runner: it signals each start,
// blocks until released (or its context ends when obeyCtx is set), and
// counts executions.
type blockingRunner struct {
	calls   atomic.Int32
	started chan string
	release chan struct{}
	once    sync.Once
	obeyCtx bool
}

func newBlockingRunner(obeyCtx bool) *blockingRunner {
	return &blockingRunner{started: make(chan string, 64), release: make(chan struct{}), obeyCtx: obeyCtx}
}

func (b *blockingRunner) unblock() { b.once.Do(func() { close(b.release) }) }

func (b *blockingRunner) run(ctx context.Context, _ experiments.Config, s Spec) (*Result, error) {
	b.calls.Add(1)
	b.started <- s.Canonical()
	if b.obeyCtx {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-b.release:
		}
	} else {
		<-b.release
	}
	return &Result{
		CSV:    []byte(s.Canonical() + "\n"),
		Text:   s.Canonical(),
		Digest: s.Key(),
	}, nil
}

// waitStart blocks until the runner reports one execution start.
func (b *blockingRunner) waitStart(t *testing.T) string {
	t.Helper()
	select {
	case c := <-b.started:
		return c
	case <-time.After(10 * time.Second):
		t.Fatal("runner did not start in time")
		return ""
	}
}

// TestServeMatchesDirectRun: a spec executed through the HTTP service
// yields byte-identical CSV (and digest) to running the same spec directly
// against the experiments registry — the service adds orchestration, never
// different numbers.
func TestServeMatchesDirectRun(t *testing.T) {
	cfg := experiments.Default()
	_, ts := newTestServer(t, Config{Experiments: cfg, Workers: 2})
	for _, raw := range []string{
		`{"exhibit":"fig1","trials":2}`,
		`{"exhibit":"fig4","patterns":2,"arrivals":8}`,
	} {
		code, v, _ := postSpec(t, ts, raw)
		if code != http.StatusAccepted {
			t.Fatalf("submit %s: HTTP %d", raw, code)
		}
		done := pollTerminal(t, ts, v.ID)
		if done.State != "done" {
			t.Fatalf("job for %s ended %s: %s", raw, done.State, done.Error)
		}
		rcode, csv, digestHdr := fetchResult(t, ts, v.ID)
		if rcode != http.StatusOK {
			t.Fatalf("result %s: HTTP %d", v.ID, rcode)
		}

		spec, err := ParseSpec(strings.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		want, err := runSpec(cfg, spec)
		if err != nil {
			t.Fatalf("direct run of %s: %v", raw, err)
		}
		if !bytes.Equal(csv, want.CSV) {
			t.Errorf("spec %s: served CSV differs from direct run\nserved:\n%s\ndirect:\n%s", raw, csv, want.CSV)
		}
		if done.Digest != want.Digest || digestHdr != want.Digest {
			t.Errorf("spec %s: digests diverge: view=%s header=%s direct=%s", raw, done.Digest, digestHdr, want.Digest)
		}
	}
}

// TestSingleFlightDedup: identical specs submitted while one is in flight
// join that execution — the runner is invoked once, every job gets the
// result, and a post-completion submit is a cache hit.
func TestSingleFlightDedup(t *testing.T) {
	r := newBlockingRunner(false)
	defer r.unblock()
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, Runner: r.run})

	const body = `{"exhibit":"fig1","trials":3}`
	code, first, _ := postSpec(t, ts, body)
	if code != http.StatusAccepted || first.Cache != CacheMiss {
		t.Fatalf("leader submit: HTTP %d cache %q, want 202 miss", code, first.Cache)
	}
	r.waitStart(t)

	ids := []string{first.ID}
	for i := 0; i < 4; i++ {
		code, v, _ := postSpec(t, ts, body)
		if code != http.StatusAccepted || v.Cache != CacheJoined {
			t.Fatalf("follower %d: HTTP %d cache %q, want 202 joined", i, code, v.Cache)
		}
		ids = append(ids, v.ID)
	}

	r.unblock()
	wantDigest := Spec{Exhibit: "fig1", Trials: 3}.Key()
	for _, id := range ids {
		v := pollTerminal(t, ts, id)
		if v.State != "done" || v.Digest != wantDigest {
			t.Fatalf("job %s: state %s digest %s (%s)", id, v.State, v.Digest, v.Error)
		}
	}
	if n := r.calls.Load(); n != 1 {
		t.Errorf("runner executed %d times for 5 identical jobs, want 1", n)
	}
	if n := srv.m.Executions.Value(); n != 1 {
		t.Errorf("executions counter = %d, want 1", n)
	}
	if n := srv.m.CacheJoined.Value(); n != 4 {
		t.Errorf("joined counter = %d, want 4", n)
	}

	code, hit, _ := postSpec(t, ts, body)
	if code != http.StatusOK || hit.Cache != CacheHit || hit.State != "done" {
		t.Fatalf("post-completion submit: HTTP %d cache %q state %q, want 200 hit done", code, hit.Cache, hit.State)
	}
	if hit.ElapsedMS != 0 {
		t.Errorf("cache hit reports elapsed %dms, want 0 (nothing ran)", hit.ElapsedMS)
	}
	if n := srv.m.CacheHits.Value(); n != 1 {
		t.Errorf("hit counter = %d, want 1", n)
	}
}

// TestSaturationReturns429: with one worker and one queue slot, a third
// distinct spec is rejected with 429 and a positive Retry-After — but an
// identical spec still joins in-flight work (dedup is exempt from
// backpressure).
func TestSaturationReturns429(t *testing.T) {
	r := newBlockingRunner(false)
	defer r.unblock()
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Runner: r.run})

	codeA, a, _ := postSpec(t, ts, `{"exhibit":"fig1"}`)
	if codeA != http.StatusAccepted {
		t.Fatalf("submit A: HTTP %d", codeA)
	}
	r.waitStart(t) // A occupies the worker; the queue slot is free
	codeB, b, _ := postSpec(t, ts, `{"exhibit":"fig2"}`)
	if codeB != http.StatusAccepted {
		t.Fatalf("submit B: HTTP %d", codeB)
	}
	codeC, _, hdr := postSpec(t, ts, `{"exhibit":"fig3"}`)
	if codeC != http.StatusTooManyRequests {
		t.Fatalf("submit C into a full queue: HTTP %d, want 429", codeC)
	}
	retry, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", hdr.Get("Retry-After"))
	}
	if n := srv.m.QueueRejected.Value(); n != 1 {
		t.Errorf("rejection counter = %d, want 1", n)
	}

	codeJoin, join, _ := postSpec(t, ts, `{"exhibit":"fig2"}`)
	if codeJoin != http.StatusAccepted || join.Cache != CacheJoined {
		t.Fatalf("identical spec under saturation: HTTP %d cache %q, want 202 joined", codeJoin, join.Cache)
	}

	r.unblock()
	for _, id := range []string{a.ID, b.ID, join.ID} {
		if v := pollTerminal(t, ts, id); v.State != "done" {
			t.Errorf("job %s ended %s after release", id, v.State)
		}
	}
}

// TestCancelQueuedJob: canceling the only subscriber of a queued flight
// aborts it — the worker never executes it — and a later identical spec is
// a fresh miss, not a join of dead work.
func TestCancelQueuedJob(t *testing.T) {
	r := newBlockingRunner(false)
	defer r.unblock()
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Runner: r.run})

	_, a, _ := postSpec(t, ts, `{"exhibit":"fig1"}`)
	r.waitStart(t)
	_, b, _ := postSpec(t, ts, `{"exhibit":"fig2"}`)

	if code := cancelJob(t, ts, b.ID); code != http.StatusOK {
		t.Fatalf("cancel queued B: HTTP %d", code)
	}
	if v := pollTerminal(t, ts, b.ID); v.State != "canceled" {
		t.Fatalf("B state %s, want canceled", v.State)
	}
	if code := cancelJob(t, ts, b.ID); code != http.StatusConflict {
		t.Errorf("second cancel: HTTP %d, want 409", code)
	}
	if code := cancelJob(t, ts, "j99999999"); code != http.StatusNotFound {
		t.Errorf("cancel unknown job: HTTP %d, want 404", code)
	}

	r.unblock()
	if v := pollTerminal(t, ts, a.ID); v.State != "done" {
		t.Fatalf("A ended %s", v.State)
	}
	// Resubmit B's spec: the aborted flight must not be joinable.
	code, b2, _ := postSpec(t, ts, `{"exhibit":"fig2"}`)
	if code != http.StatusAccepted || b2.Cache != CacheMiss {
		t.Fatalf("resubmit after abort: HTTP %d cache %q, want 202 miss", code, b2.Cache)
	}
	if v := pollTerminal(t, ts, b2.ID); v.State != "done" {
		t.Fatalf("B2 ended %s: %s", v.State, v.Error)
	}
	if n := r.calls.Load(); n != 2 {
		t.Errorf("runner executed %d times, want 2 (aborted flight skipped)", n)
	}
	if n := srv.m.JobsCanceled.Value(); n != 1 {
		t.Errorf("canceled counter = %d, want 1", n)
	}
}

// TestCancelRunningJobDetaches: canceling the last subscriber of a running
// flight cancels its context; the worker abandons the execution and the
// key is not cached.
func TestCancelRunningJobDetaches(t *testing.T) {
	r := newBlockingRunner(true) // returns ctx.Err() on cancellation
	defer r.unblock()
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Runner: r.run})

	_, a, _ := postSpec(t, ts, `{"exhibit":"fig1"}`)
	r.waitStart(t)
	if code := cancelJob(t, ts, a.ID); code != http.StatusOK {
		t.Fatalf("cancel running A: HTTP %d", code)
	}
	if v := pollTerminal(t, ts, a.ID); v.State != "canceled" {
		t.Fatalf("A state %s, want canceled", v.State)
	}
	waitCounter(t, "abandoned", func() uint64 { return srv.m.JobsAbandoned.Value() }, 1)

	// The canceled execution must not have been cached.
	code, a2, _ := postSpec(t, ts, `{"exhibit":"fig1"}`)
	if code != http.StatusAccepted || a2.Cache != CacheMiss {
		t.Fatalf("resubmit after cancel: HTTP %d cache %q, want 202 miss", code, a2.Cache)
	}
	r.waitStart(t)
	r.unblock()
	if v := pollTerminal(t, ts, a2.ID); v.State != "done" {
		t.Fatalf("A2 ended %s: %s", v.State, v.Error)
	}
}

// TestJobTimeout: an execution exceeding JobTimeout fails its job with a
// timeout diagnostic and is counted as abandoned.
func TestJobTimeout(t *testing.T) {
	r := newBlockingRunner(true)
	defer r.unblock()
	srv, ts := newTestServer(t, Config{Workers: 1, JobTimeout: 25 * time.Millisecond, Runner: r.run})

	_, a, _ := postSpec(t, ts, `{"exhibit":"fig1"}`)
	v := pollTerminal(t, ts, a.ID)
	if v.State != "failed" || !strings.Contains(v.Error, "timeout") {
		t.Fatalf("timed-out job: state %s error %q, want failed with timeout", v.State, v.Error)
	}
	waitCounter(t, "abandoned", func() uint64 { return srv.m.JobsAbandoned.Value() }, 1)
	if code, _, _ := fetchResult(t, ts, a.ID); code != http.StatusConflict {
		t.Errorf("result of failed job: HTTP %d, want 409", code)
	}
}

// waitCounter polls a metric until it reaches want.
func waitCounter(t *testing.T, name string, read func() uint64, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if read() >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("%s counter stuck at %d, want %d", name, read(), want)
}

// TestDrainFinishesInflight: draining stops admission with 503 while every
// already-admitted job — running or queued — completes. Zero jobs dropped.
func TestDrainFinishesInflight(t *testing.T) {
	r := newBlockingRunner(false)
	defer r.unblock()
	srv, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 4, Runner: r.run})

	_, a, _ := postSpec(t, ts, `{"exhibit":"fig1"}`)
	_, b, _ := postSpec(t, ts, `{"exhibit":"fig2"}`)
	r.waitStart(t)
	r.waitStart(t)                                   // both workers busy
	_, c, _ := postSpec(t, ts, `{"exhibit":"fig3"}`) // queued behind one of them

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()

	// Admission flips to 503 once the drain begins.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _, _ := postSpec(t, ts, `{"exhibit":"fig5"}`)
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submissions were not refused during drain")
		}
		time.Sleep(2 * time.Millisecond)
	}

	r.unblock()
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range []string{a.ID, b.ID, c.ID} {
		if v := pollTerminal(t, ts, id); v.State != "done" {
			t.Errorf("job %s ended %s after drain, want done (no drops)", id, v.State)
		}
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthView
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Errorf("healthz status %q after drain, want draining", h.Status)
	}
}

// TestMetricsEndpoint: /metrics exposes the serve-layer families in the
// Prometheus text format after traffic has flowed.
func TestMetricsEndpoint(t *testing.T) {
	r := newBlockingRunner(false)
	r.unblock() // never block: instant results
	_, ts := newTestServer(t, Config{Workers: 1, Runner: r.run})

	_, a, _ := postSpec(t, ts, `{"exhibit":"fig1"}`)
	pollTerminal(t, ts, a.ID)
	postSpec(t, ts, `{"exhibit":"fig1"}`) // cache hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"exaresil_serve_jobs_submitted_total",
		`exaresil_serve_jobs_total{state="done"}`,
		"exaresil_serve_queue_depth",
		`exaresil_serve_cache_requests_total{outcome="hit"}`,
		"exaresil_serve_job_seconds_bucket",
		"exaresil_serve_http_requests_total",
		"exaresil_serve_http_request_seconds_bucket",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestExhibitsAndErrors: the discovery endpoint lists the registry, and the
// error paths return the contracted codes.
func TestExhibitsAndErrors(t *testing.T) {
	r := newBlockingRunner(false)
	r.unblock()
	_, ts := newTestServer(t, Config{Workers: 1, Runner: r.run})

	resp, err := http.Get(ts.URL + "/v1/exhibits")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, name := range []string{"fig4", "table1", "ext-tau"} {
		if !strings.Contains(string(body), fmt.Sprintf("%q", name)) {
			t.Errorf("/v1/exhibits missing %s: %s", name, body)
		}
	}

	if code, _, _ := postSpec(t, ts, `{"exhibit":"nope"}`); code != http.StatusBadRequest {
		t.Errorf("bad spec: HTTP %d, want 400", code)
	}
	if code, _ := getJob(t, ts, "j404"); code != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", code)
	}
	_, pending, _ := postSpec(t, ts, `{"exhibit":"fig1"}`)
	if code, _, _ := fetchResult(t, ts, "j404"); code != http.StatusNotFound {
		t.Errorf("result of unknown job: HTTP %d, want 404", code)
	}
	pollTerminal(t, ts, pending.ID)
}

// TestConcurrentLoad hammers the service from many clients with a small
// spec vocabulary: every accepted job must settle done with its spec's
// digest, and the runner must execute each distinct spec at most once
// per cache generation (here: exactly the vocabulary size).
func TestConcurrentLoad(t *testing.T) {
	var calls atomic.Int32
	runner := func(ctx context.Context, _ experiments.Config, s Spec) (*Result, error) {
		calls.Add(1)
		time.Sleep(time.Millisecond)
		return &Result{CSV: []byte(s.Canonical() + "\n"), Text: s.Canonical(), Digest: s.Key()}, nil
	}
	srv, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64, CacheSize: 16, StoreSize: 256, Runner: runner})

	vocab := []string{
		`{"exhibit":"fig1"}`,
		`{"exhibit":"fig2"}`,
		`{"exhibit":"fig3"}`,
		`{"exhibit":"fig1","trials":7}`,
		`{"exhibit":"fig4","patterns":3}`,
		`{"exhibit":"table1","seed":9}`,
	}
	const clients = 32
	type submission struct {
		id     string
		digest string
	}
	results := make([]submission, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			body := vocab[rng.Intn(len(vocab))]
			spec, _ := ParseSpec(strings.NewReader(body))
			code, v, _ := postSpec(t, ts, body)
			if code == http.StatusOK || code == http.StatusAccepted {
				results[i] = submission{id: v.ID, digest: spec.Key()}
			}
		}(i)
	}
	wg.Wait()

	accepted := 0
	for _, r := range results {
		if r.id == "" {
			continue // rejected with 429 under this small queue: acceptable
		}
		accepted++
		v := pollTerminal(t, ts, r.id)
		if v.State != "done" {
			t.Errorf("job %s ended %s: %s", r.id, v.State, v.Error)
		} else if v.Digest != r.digest {
			t.Errorf("job %s digest %s, want %s", r.id, v.Digest, r.digest)
		}
	}
	if accepted == 0 {
		t.Fatal("no submissions were accepted")
	}
	if n := int(calls.Load()); n > len(vocab) {
		t.Errorf("runner executed %d times for %d distinct specs, want single-flight dedup", n, len(vocab))
	}
	if srv.m.Submitted.Value() != uint64(accepted) {
		t.Errorf("submitted counter = %d, want %d", srv.m.Submitted.Value(), accepted)
	}
}

// TestStoreEviction: terminal jobs age out once the store exceeds its
// bound, while the newest jobs stay reachable.
func TestStoreEviction(t *testing.T) {
	r := newBlockingRunner(false)
	r.unblock()
	srv, ts := newTestServer(t, Config{Workers: 1, StoreSize: 4, Runner: r.run})

	var last JobView
	for i := 0; i < 10; i++ {
		body := fmt.Sprintf(`{"exhibit":"fig1","trials":%d}`, i+1)
		_, v, _ := postSpec(t, ts, body)
		last = pollTerminal(t, ts, v.ID)
	}
	if last.State != "done" {
		t.Fatalf("last job ended %s", last.State)
	}
	if n := srv.store.size(); n > 4 {
		t.Errorf("store retains %d jobs, want <= 4", n)
	}
	if code, _ := getJob(t, ts, last.ID); code != http.StatusOK {
		t.Errorf("newest job evicted: HTTP %d", code)
	}
	if srv.m.StoreEvicted.Value() == 0 {
		t.Error("eviction counter never moved")
	}
}

package serve

import (
	"fmt"
	"strconv"

	"exaresil/internal/obs"
)

// Metrics is the service's obs surface, following the repository's layer
// convention (exaresil_serve_*). Construction on a nil registry yields
// nil-metric no-ops throughout, so a server without observability pays
// only nil checks.
type Metrics struct {
	reg *obs.Registry

	// HTTP front end.
	// Requests counts responses by route and status code (labels are
	// resolved per call: the code is not known until the handler ends).
	// RequestSeconds is the per-route latency distribution.

	// Job lifecycle.
	Submitted     *obs.Counter // jobs accepted (all cache dispositions)
	JobsDone      *obs.Counter
	JobsFailed    *obs.Counter
	JobsCanceled  *obs.Counter
	JobsInflight  *obs.Gauge     // flights currently executing
	Executions    *obs.Counter   // spec runs actually started (single-flight dedups these)
	JobSeconds    *obs.Histogram // execution wall time
	JobsAbandoned *obs.Counter   // timeouts/cancels that left a simulation running detached
	StoreEvicted  *obs.Counter

	// Queue and backpressure.
	QueueRejected *obs.Counter

	// Autoscaler (elastic pool; see autoscale.go). The blocked counters
	// record decisions a streak earned but the guard rails suppressed,
	// one increment per evaluation tick; the signal gauges are
	// milli-scaled (obs gauges are integers).
	AutoscaleWorkers         *obs.Gauge   // current active pool width
	AutoscaleUp              *obs.Counter // grow decisions applied
	AutoscaleDown            *obs.Counter // shrink decisions applied
	AutoscaleBlockedBound    *obs.Counter // held at min/max width
	AutoscaleBlockedCooldown *obs.Counter // held by the post-scale cooldown
	AutoscaleBlockedDraining *obs.Counter // held while a retired shard drains
	AutoscaleQueueSignal     *obs.Gauge   // EWMA queued-per-worker × 1000
	AutoscaleWaitSignal      *obs.Gauge   // EWMA queue wait in milliseconds

	// Result cache.
	CacheHits      *obs.Counter
	CacheJoined    *obs.Counter
	CacheMisses    *obs.Counter
	CacheEvictions *obs.Counter
	CacheSize      *obs.Gauge

	// Checkpoint/restart (job-level snapshots; DESIGN.md §10).
	Snapshots             *obs.Gauge   // partial-result snapshots retained
	SnapshotResumes       *obs.Counter // executions that began from a non-empty snapshot
	SnapshotCellsRecorded *obs.Counter // grid cells checkpointed as they finished
	SnapshotCellsRestored *obs.Counter // grid cells restored instead of recomputed
	SnapshotsEvicted      *obs.Counter
	CrashesInjected       *obs.Counter // CrashHook firings (chaos worker crashes)
}

// NewMetrics registers the service's metric families on r (nil = disabled).
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		reg:           r,
		Submitted:     r.Counter("exaresil_serve_jobs_submitted_total", "jobs accepted for execution or cache resolution"),
		JobsDone:      r.Counter("exaresil_serve_jobs_total", "terminal job outcomes", obs.L("state", "done")),
		JobsFailed:    r.Counter("exaresil_serve_jobs_total", "terminal job outcomes", obs.L("state", "failed")),
		JobsCanceled:  r.Counter("exaresil_serve_jobs_total", "terminal job outcomes", obs.L("state", "canceled")),
		JobsInflight:  r.Gauge("exaresil_serve_jobs_inflight", "flights currently executing on a worker"),
		Executions:    r.Counter("exaresil_serve_executions_total", "experiment runs started (identical concurrent specs share one)"),
		JobSeconds:    r.Histogram("exaresil_serve_job_seconds", "execution wall time per flight", obs.LatencyBuckets),
		JobsAbandoned: r.Counter("exaresil_serve_jobs_abandoned_total", "executions detached by timeout or cancel while still running"),
		StoreEvicted:  r.Counter("exaresil_serve_store_evicted_total", "terminal jobs aged out of the bounded job store"),

		QueueRejected: r.Counter("exaresil_serve_queue_rejections_total", "submissions rejected with 429 because the target shard queue was full"),

		AutoscaleWorkers:         r.Gauge("exaresil_serve_autoscale_workers", "active worker-pool width chosen by the autoscaler"),
		AutoscaleUp:              r.Counter("exaresil_serve_autoscale_decisions_total", "autoscale width changes applied", obs.L("direction", "up")),
		AutoscaleDown:            r.Counter("exaresil_serve_autoscale_decisions_total", "autoscale width changes applied", obs.L("direction", "down")),
		AutoscaleBlockedBound:    r.Counter("exaresil_serve_autoscale_blocked_total", "autoscale decisions suppressed by guard rails", obs.L("reason", "bound")),
		AutoscaleBlockedCooldown: r.Counter("exaresil_serve_autoscale_blocked_total", "autoscale decisions suppressed by guard rails", obs.L("reason", "cooldown")),
		AutoscaleBlockedDraining: r.Counter("exaresil_serve_autoscale_blocked_total", "autoscale decisions suppressed by guard rails", obs.L("reason", "draining")),
		AutoscaleQueueSignal:     r.Gauge("exaresil_serve_autoscale_queue_signal_milli", "EWMA of queued flights per active worker, milli-scaled"),
		AutoscaleWaitSignal:      r.Gauge("exaresil_serve_autoscale_wait_signal_milli", "EWMA of queue wait before execution, milliseconds"),

		CacheHits:      r.Counter("exaresil_serve_cache_requests_total", "result cache outcomes at submit", obs.L("outcome", "hit")),
		CacheJoined:    r.Counter("exaresil_serve_cache_requests_total", "result cache outcomes at submit", obs.L("outcome", "joined")),
		CacheMisses:    r.Counter("exaresil_serve_cache_requests_total", "result cache outcomes at submit", obs.L("outcome", "miss")),
		CacheEvictions: r.Counter("exaresil_serve_cache_evictions_total", "finished results evicted from the LRU"),
		CacheSize:      r.Gauge("exaresil_serve_cache_size", "entries resident in the result cache (finished + in flight)"),

		Snapshots:             r.Gauge("exaresil_serve_snapshots", "partial-result snapshots retained for resume"),
		SnapshotResumes:       r.Counter("exaresil_serve_snapshot_resumes_total", "executions resumed from a prior attempt's snapshot"),
		SnapshotCellsRecorded: r.Counter("exaresil_serve_snapshot_cells_total", "grid-cell checkpoint events", obs.L("event", "recorded")),
		SnapshotCellsRestored: r.Counter("exaresil_serve_snapshot_cells_total", "grid-cell checkpoint events", obs.L("event", "restored")),
		SnapshotsEvicted:      r.Counter("exaresil_serve_snapshots_evicted_total", "snapshots evicted from the bounded checkpoint store"),
		CrashesInjected:       r.Counter("exaresil_serve_crashes_injected_total", "worker crashes injected by the configured CrashHook"),
	}
}

// QueueDepth is the per-shard queue depth gauge.
func (m *Metrics) QueueDepth(shard int) *obs.Gauge {
	return m.reg.Gauge("exaresil_serve_queue_depth", "flights waiting in each shard's queue",
		obs.L("shard", strconv.Itoa(shard)))
}

// Request counts one HTTP response and observes its latency.
func (m *Metrics) Request(route string, code int, seconds float64) {
	m.reg.Counter("exaresil_serve_http_requests_total", "HTTP responses by route and status",
		obs.L("route", route), obs.L("code", fmt.Sprintf("%d", code))).Inc()
	m.reg.Histogram("exaresil_serve_http_request_seconds", "HTTP request latency by route",
		obs.LatencyBuckets, obs.L("route", route)).Observe(seconds)
}

// nilSafe returns m, or a metrics bundle over the nil registry when m is
// nil, so internal components can call through unconditionally.
func (m *Metrics) nilSafe() *Metrics {
	if m == nil {
		return NewMetrics(nil)
	}
	return m
}

package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// The admission errors the pool can return.
var (
	// ErrSaturated: the target shard's queue is full. The HTTP layer maps
	// this to 429 with a Retry-After estimate.
	ErrSaturated = errors.New("serve: queue saturated")
	// ErrDraining: the pool stopped accepting work for shutdown. Mapped
	// to 503.
	ErrDraining = errors.New("serve: draining")
)

// Pool is the bounded, sharded worker pool. Each worker owns one shard —
// a buffered channel of flights — and flights are routed to shards by
// cache-key hash, so a given spec always queues behind the same worker and
// the shards need no cross-worker stealing or locking. Admission is a
// non-blocking send: a full shard rejects immediately (backpressure)
// instead of queueing without bound.
type Pool struct {
	shards []chan *flight
	depth  int // per-shard queue capacity
	exec   func(*flight)
	wg     sync.WaitGroup
	// mu serializes admission against drain: submit sends while holding
	// the read side, drain flips draining and closes the shards under the
	// write side, so a send can never hit a closed channel.
	mu       sync.RWMutex
	draining bool
	m        *Metrics
}

// newPool builds a pool of `workers` shards with `queueDepth` total queue
// slots spread across them (at least one per shard).
func newPool(workers, queueDepth int, exec func(*flight), m *Metrics) *Pool {
	if workers <= 0 {
		workers = 1
	}
	if queueDepth <= 0 {
		queueDepth = 2 * workers
	}
	depth := queueDepth / workers
	if depth < 1 {
		depth = 1
	}
	p := &Pool{
		shards: make([]chan *flight, workers),
		depth:  depth,
		exec:   exec,
		m:      m,
	}
	for i := range p.shards {
		p.shards[i] = make(chan *flight, depth)
	}
	return p
}

// start launches one worker goroutine per shard.
func (p *Pool) start() {
	for i := range p.shards {
		p.wg.Add(1)
		go func(shard int) {
			defer p.wg.Done()
			for fl := range p.shards[shard] {
				p.m.QueueDepth(shard).Add(-1)
				p.exec(fl)
			}
		}(i)
	}
}

// submit routes a flight to its shard. It never blocks.
func (p *Pool) submit(fl *flight) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.draining {
		return ErrDraining
	}
	select {
	case p.shards[fl.shard] <- fl:
		p.m.QueueDepth(fl.shard).Add(1)
		return nil
	default:
		p.m.QueueRejected.Inc()
		return ErrSaturated
	}
}

// workers reports the pool width.
func (p *Pool) workers() int { return len(p.shards) }

// queueCapacity reports the total queue slots across shards.
func (p *Pool) queueCapacity() int { return p.depth * len(p.shards) }

// queued reports the flights currently waiting across all shards.
func (p *Pool) queued() int {
	n := 0
	for _, ch := range p.shards {
		n += len(ch)
	}
	return n
}

// drain stops admission, closes the shards, and waits for every queued and
// running flight to finish — no in-flight job is dropped. It fails only if
// ctx expires first.
func (p *Pool) drain(ctx context.Context) error {
	p.mu.Lock()
	if p.draining {
		p.mu.Unlock()
		return nil
	}
	p.draining = true
	for _, ch := range p.shards {
		close(ch)
	}
	p.mu.Unlock()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted with %d flights still queued: %w", p.queued(), ctx.Err())
	}
}

package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// The admission errors the pool can return.
var (
	// ErrSaturated: the target shard's queue is full. The HTTP layer maps
	// this to 429 with a Retry-After estimate.
	ErrSaturated = errors.New("serve: queue saturated")
	// ErrDraining: the pool stopped accepting work for shutdown. Mapped
	// to 503.
	ErrDraining = errors.New("serve: draining")
)

// Pool is the bounded, sharded worker pool. Each worker owns one shard —
// a mutex-and-condvar guarded queue of flights — and flights are routed
// to shards by cache-key hash, so a given spec always queues behind the
// same worker and the shards need no cross-worker stealing. Admission
// never blocks: a full shard rejects immediately (backpressure) instead
// of queueing without bound. Unlike a channel, the queue supports
// discard: a flight whose every subscriber canceled while it waited is
// removed on the spot, releasing its admission slot immediately instead
// of holding backpressure capacity until a worker reaches and skips it.
//
// The pool is elastic: grow and shrink move the active width — the prefix
// of shards that accept new work — one shard at a time, for the
// autoscaler (see autoscale.go). The shards slice only ever grows, so a
// flight's shard index stays valid for discard no matter how the width
// moves around it. Shrink never kills work: the dropped shard is marked
// retiring, its worker finishes everything already queued there, and only
// then parks. A later grow reuses the parked slot.
type Pool struct {
	mu     sync.RWMutex // guards shards/active/closed; shard queues have their own locks
	shards []*shardq    // grows only; indices are stable
	active int          // shards[:active] accept new work
	closed bool         // pool-wide drain: admission refused everywhere

	depth int // per-shard queue capacity
	exec  func(*flight)
	wg    sync.WaitGroup
	m     *Metrics
}

// shardq is one worker's queue.
type shardq struct {
	mu       sync.Mutex
	cond     *sync.Cond
	items    []*flight
	closed   bool // pool drain: worker exits once empty
	retiring bool // autoscale shrink: no new work; worker parks once empty
	live     bool // a worker goroutine currently owns this shard
}

// newPool builds a pool of `workers` shards with `queueDepth` total queue
// slots spread across them (at least one per shard).
func newPool(workers, queueDepth int, exec func(*flight), m *Metrics) *Pool {
	if workers <= 0 {
		workers = 1
	}
	if queueDepth <= 0 {
		queueDepth = 2 * workers
	}
	depth := queueDepth / workers
	if depth < 1 {
		depth = 1
	}
	p := &Pool{
		shards: make([]*shardq, workers),
		active: workers,
		depth:  depth,
		exec:   exec,
		m:      m,
	}
	for i := range p.shards {
		q := &shardq{}
		q.cond = sync.NewCond(&q.mu)
		p.shards[i] = q
	}
	return p
}

// start launches one worker goroutine per active shard.
func (p *Pool) start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := 0; i < p.active; i++ {
		q := p.shards[i]
		q.mu.Lock()
		q.live = true
		q.mu.Unlock()
		p.wg.Add(1)
		go p.work(i, q)
	}
}

// work is one shard's worker loop: pop the oldest flight, execute it,
// repeat. It exits once the shard is closed (drain) or retiring (shrink)
// and its queue is empty — queued work always finishes first, so neither
// path ever drops a flight.
func (p *Pool) work(idx int, q *shardq) {
	defer p.wg.Done()
	for {
		q.mu.Lock()
		for len(q.items) == 0 && !q.closed && !q.retiring {
			q.cond.Wait()
		}
		if len(q.items) == 0 {
			q.live = false
			q.mu.Unlock()
			return
		}
		fl := q.items[0]
		copy(q.items, q.items[1:])
		q.items[len(q.items)-1] = nil
		q.items = q.items[:len(q.items)-1]
		q.mu.Unlock()
		p.m.QueueDepth(idx).Add(-1)
		p.exec(fl)
	}
}

// submit routes a flight to a shard in the active width, stamping
// fl.shard with the index it queued on. It never blocks. A shrink that
// lands between reading the width and locking the shard is detected (the
// shard is retiring) and the flight re-routes against the new width;
// active shards are never retiring, so the loop terminates.
func (p *Pool) submit(fl *flight) error {
	for {
		p.mu.RLock()
		if p.closed {
			p.mu.RUnlock()
			return ErrDraining
		}
		idx := shardOf(fl.key, p.active)
		q := p.shards[idx]
		p.mu.RUnlock()

		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return ErrDraining
		}
		if q.retiring {
			q.mu.Unlock()
			continue // width shrank under us; re-route
		}
		if len(q.items) >= p.depth {
			q.mu.Unlock()
			p.m.QueueRejected.Inc()
			return ErrSaturated
		}
		fl.shard = idx
		q.items = append(q.items, fl)
		p.m.QueueDepth(idx).Add(1)
		q.cond.Signal()
		q.mu.Unlock()
		return nil
	}
}

// discard removes a still-queued flight from its shard, releasing the
// admission slot immediately (the DELETE-a-queued-job path). It reports
// whether the flight was found; false means a worker already popped it,
// in which case the worker's begin() check skips the aborted flight.
func (p *Pool) discard(fl *flight) bool {
	p.mu.RLock()
	q := p.shards[fl.shard]
	p.mu.RUnlock()
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, f := range q.items {
		if f == fl {
			q.items = append(q.items[:i], q.items[i+1:]...)
			p.m.QueueDepth(fl.shard).Add(-1)
			return true
		}
	}
	return false
}

// grow widens the pool by one shard: either un-retire the parked slot
// just past the active width (restarting its worker if it already
// exited), or append a brand-new shard. It reports whether the pool grew
// (false only while draining).
func (p *Pool) grow() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	if p.active < len(p.shards) {
		q := p.shards[p.active]
		q.mu.Lock()
		q.retiring = false
		if !q.live {
			q.live = true
			p.wg.Add(1)
			go p.work(p.active, q)
		}
		q.mu.Unlock()
	} else {
		q := &shardq{live: true}
		q.cond = sync.NewCond(&q.mu)
		p.shards = append(p.shards, q)
		p.m.QueueDepth(len(p.shards) - 1).Set(0)
		p.wg.Add(1)
		go p.work(len(p.shards)-1, q)
	}
	p.active++
	return true
}

// shrink narrows the pool by one shard. The dropped shard is marked
// retiring: it accepts no new flights, but its worker drains everything
// already queued before parking — shrink never kills in-flight work. It
// reports whether the width moved (false at width 1 or while draining).
func (p *Pool) shrink() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.active <= 1 {
		return false
	}
	p.active--
	q := p.shards[p.active]
	q.mu.Lock()
	q.retiring = true
	q.cond.Broadcast()
	q.mu.Unlock()
	return true
}

// retiring counts shards beyond the active width still winding down —
// queued flights not yet drained, or a worker still executing its last
// pop. The autoscaler refuses further shrinks while this is non-zero, so
// at most one shard retires at a time.
func (p *Pool) retiring() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	n := 0
	for i := p.active; i < len(p.shards); i++ {
		q := p.shards[i]
		q.mu.Lock()
		if q.live || len(q.items) > 0 {
			n++
		}
		q.mu.Unlock()
	}
	return n
}

// workers reports the active pool width — the shards currently accepting
// work. Retry-After pacing and the health view use this, so a mid-shrink
// pool is not credited with capacity it no longer admits to.
func (p *Pool) workers() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.active
}

// queueCapacity reports the queue slots across the active shards.
func (p *Pool) queueCapacity() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.depth * p.active
}

// queued reports the flights currently waiting across all shards,
// retiring ones included — their backlog is still real work ahead of any
// new submission.
func (p *Pool) queued() int {
	p.mu.RLock()
	shards := p.shards
	p.mu.RUnlock()
	n := 0
	for _, q := range shards {
		q.mu.Lock()
		n += len(q.items)
		q.mu.Unlock()
	}
	return n
}

// drain stops admission, closes the shards, and waits for every queued and
// running flight to finish — no in-flight job is dropped. It fails only if
// ctx expires first.
func (p *Pool) drain(ctx context.Context) error {
	p.mu.Lock()
	p.closed = true
	shards := p.shards
	p.mu.Unlock()
	for _, q := range shards {
		q.mu.Lock()
		q.closed = true
		q.cond.Broadcast()
		q.mu.Unlock()
	}
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted with %d flights still queued: %w", p.queued(), ctx.Err())
	}
}

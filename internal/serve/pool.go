package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// The admission errors the pool can return.
var (
	// ErrSaturated: the target shard's queue is full. The HTTP layer maps
	// this to 429 with a Retry-After estimate.
	ErrSaturated = errors.New("serve: queue saturated")
	// ErrDraining: the pool stopped accepting work for shutdown. Mapped
	// to 503.
	ErrDraining = errors.New("serve: draining")
)

// Pool is the bounded, sharded worker pool. Each worker owns one shard —
// a mutex-and-condvar guarded queue of flights — and flights are routed
// to shards by cache-key hash, so a given spec always queues behind the
// same worker and the shards need no cross-worker stealing. Admission
// never blocks: a full shard rejects immediately (backpressure) instead
// of queueing without bound. Unlike a channel, the queue supports
// discard: a flight whose every subscriber canceled while it waited is
// removed on the spot, releasing its admission slot immediately instead
// of holding backpressure capacity until a worker reaches and skips it.
type Pool struct {
	shards []*shardq
	depth  int // per-shard queue capacity
	exec   func(*flight)
	wg     sync.WaitGroup
	m      *Metrics
}

// shardq is one worker's queue.
type shardq struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*flight
	closed bool
}

// newPool builds a pool of `workers` shards with `queueDepth` total queue
// slots spread across them (at least one per shard).
func newPool(workers, queueDepth int, exec func(*flight), m *Metrics) *Pool {
	if workers <= 0 {
		workers = 1
	}
	if queueDepth <= 0 {
		queueDepth = 2 * workers
	}
	depth := queueDepth / workers
	if depth < 1 {
		depth = 1
	}
	p := &Pool{
		shards: make([]*shardq, workers),
		depth:  depth,
		exec:   exec,
		m:      m,
	}
	for i := range p.shards {
		q := &shardq{}
		q.cond = sync.NewCond(&q.mu)
		p.shards[i] = q
	}
	return p
}

// start launches one worker goroutine per shard.
func (p *Pool) start() {
	for i := range p.shards {
		p.wg.Add(1)
		go p.work(i)
	}
}

// work is one shard's worker loop: pop the oldest flight, execute it,
// repeat; exit once the shard is closed and empty.
func (p *Pool) work(shard int) {
	defer p.wg.Done()
	q := p.shards[shard]
	for {
		q.mu.Lock()
		for len(q.items) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.items) == 0 {
			q.mu.Unlock()
			return
		}
		fl := q.items[0]
		copy(q.items, q.items[1:])
		q.items[len(q.items)-1] = nil
		q.items = q.items[:len(q.items)-1]
		q.mu.Unlock()
		p.m.QueueDepth(shard).Add(-1)
		p.exec(fl)
	}
}

// submit routes a flight to its shard. It never blocks.
func (p *Pool) submit(fl *flight) error {
	q := p.shards[fl.shard]
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	if len(q.items) >= p.depth {
		p.m.QueueRejected.Inc()
		return ErrSaturated
	}
	q.items = append(q.items, fl)
	p.m.QueueDepth(fl.shard).Add(1)
	q.cond.Signal()
	return nil
}

// discard removes a still-queued flight from its shard, releasing the
// admission slot immediately (the DELETE-a-queued-job path). It reports
// whether the flight was found; false means a worker already popped it,
// in which case the worker's begin() check skips the aborted flight.
func (p *Pool) discard(fl *flight) bool {
	q := p.shards[fl.shard]
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, f := range q.items {
		if f == fl {
			q.items = append(q.items[:i], q.items[i+1:]...)
			p.m.QueueDepth(fl.shard).Add(-1)
			return true
		}
	}
	return false
}

// workers reports the pool width.
func (p *Pool) workers() int { return len(p.shards) }

// queueCapacity reports the total queue slots across shards.
func (p *Pool) queueCapacity() int { return p.depth * len(p.shards) }

// queued reports the flights currently waiting across all shards.
func (p *Pool) queued() int {
	n := 0
	for _, q := range p.shards {
		q.mu.Lock()
		n += len(q.items)
		q.mu.Unlock()
	}
	return n
}

// drain stops admission, closes the shards, and waits for every queued and
// running flight to finish — no in-flight job is dropped. It fails only if
// ctx expires first.
func (p *Pool) drain(ctx context.Context) error {
	for _, q := range p.shards {
		q.mu.Lock()
		q.closed = true
		q.cond.Broadcast()
		q.mu.Unlock()
	}
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted with %d flights still queued: %w", p.queued(), ctx.Err())
	}
}

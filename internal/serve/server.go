package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync/atomic"
	"time"

	"exaresil/internal/experiments"
	"exaresil/internal/obs"
)

// Config assembles a Server.
type Config struct {
	// Experiments is the per-job experiment configuration (machine, seed,
	// intra-job Workers). The zero value means experiments.Default() with
	// one worker per job: the pool's width, not intra-job fan-out, is the
	// service's parallelism control.
	Experiments experiments.Config
	// Workers is the worker-pool width (default 1 — one shard per worker).
	// With Autoscale set it is only the initial width, clamped into
	// [Min, Max].
	Workers int
	// Autoscale, when non-nil, makes the pool elastic: a background
	// evaluator grows and shrinks the width between Autoscale.Min and
	// Autoscale.Max from queue-depth and admission-latency signals (see
	// autoscale.go and DESIGN.md §15). Nil keeps today's fixed pool.
	Autoscale *AutoscaleConfig
	// QueueDepth is the total queued-flight bound across shards (default
	// 2x workers). A full shard rejects with 429.
	QueueDepth int
	// CacheSize bounds the LRU result cache (default 128 results).
	CacheSize int
	// StoreSize bounds job retention (default 1024; only terminal jobs
	// are evicted).
	StoreSize int
	// JobTimeout bounds one execution (0 = no timeout). A timed-out
	// flight fails its jobs and detaches the still-running simulation.
	JobTimeout time.Duration
	// SnapshotSize bounds the checkpoint store (default 64 partial-result
	// snapshots of interrupted executions; see snapshot.go).
	SnapshotSize int
	// JobIDPrefix is prepended to every job id this server mints. The
	// mesh coordinator gives each replica a distinct prefix (e.g.
	// "r1.0-") so a job id names the replica — and the generation — that
	// owns it, and ids never collide across replicas or revivals.
	JobIDPrefix string
	// Obs receives the service metric families; GET /metrics exposes the
	// whole registry. Nil disables both.
	Obs *obs.Registry
	// Runner executes one spec (nil = the experiments registry). Tests
	// substitute controllable runners; the context is canceled on per-job
	// timeout or when every subscribed job is canceled, and cfg.Progress
	// carries the execution's checkpoint hook.
	Runner func(ctx context.Context, cfg experiments.Config, s Spec) (*Result, error)
	// CrashHook, when non-nil, is consulted once per execution start;
	// when it fires, the execution's context is canceled with a crash
	// cause after that many further grid cells complete — a deterministic
	// mid-job worker crash (internal/chaos wires this behind the exaserve
	// -chaos flag). Crashed jobs fail; resubmitting the same spec resumes
	// from the snapshot the crashed run left behind.
	CrashHook func() (afterCells int, ok bool)
}

// Server is the simulation service: job store + result cache + worker
// pool + checkpoint store, with an HTTP codec on top. Create with New,
// mount Handler, stop with Drain. The exported core API (Submit, Job,
// CancelJob, JobResult, Health, …) is the same machinery without the
// HTTP framing; the mesh coordinator embeds replicas through it.
type Server struct {
	cfg      Config
	m        *Metrics
	store    *Store
	cache    *Cache
	pool     *Pool
	snaps    *snapStore
	mux      *http.ServeMux
	scaler   *autoscaler // nil unless cfg.Autoscale is set
	draining atomic.Bool
	inflight atomic.Int64  // flights currently executing on a worker
	ewmaBits atomic.Uint64 // EWMA of execution seconds, for Retry-After
	waitBits atomic.Uint64 // EWMA of queue-wait seconds, for the autoscaler
}

// New validates the configuration, starts the worker pool, and returns a
// ready server.
func New(cfg Config) (*Server, error) {
	if cfg.Experiments.Machine.Name == "" {
		def := experiments.Default()
		if cfg.Experiments.Seed != 0 {
			def.Seed = cfg.Experiments.Seed
		}
		def.Workers = cfg.Experiments.Workers
		def.Obs = cfg.Experiments.Obs
		cfg.Experiments = def
	}
	if cfg.Experiments.Workers <= 0 {
		cfg.Experiments.Workers = 1
	}
	if err := cfg.Experiments.Validate(); err != nil {
		return nil, fmt.Errorf("serve: experiments config: %w", err)
	}
	if cfg.Runner == nil {
		cfg.Runner = func(_ context.Context, ecfg experiments.Config, s Spec) (*Result, error) {
			return runSpec(ecfg, s)
		}
	}
	if cfg.Autoscale != nil {
		ac := cfg.Autoscale.withDefaults()
		if err := ac.Validate(); err != nil {
			return nil, err
		}
		cfg.Autoscale = &ac
		cfg.Workers = ac.clampWidth(cfg.Workers)
		if cfg.QueueDepth <= 0 {
			// Size the per-shard depth for the widest pool the autoscaler
			// may reach, so elasticity adds queue room, not just workers.
			cfg.QueueDepth = 2 * ac.Max
		}
	}
	s := &Server{cfg: cfg, m: NewMetrics(cfg.Obs)}
	s.store = newStore(cfg.StoreSize, cfg.JobIDPrefix, s.m)
	s.cache = newCache(cfg.CacheSize, s.m)
	s.snaps = newSnapStore(cfg.SnapshotSize, s.m)
	s.pool = newPool(cfg.Workers, cfg.QueueDepth, s.execFlight, s.m)
	for shard := 0; shard < s.pool.workers(); shard++ {
		s.m.QueueDepth(shard).Set(0) // register the series before traffic
	}
	s.pool.start()
	if cfg.Autoscale != nil {
		s.m.AutoscaleWorkers.Set(int64(s.pool.workers()))
		s.scaler = newAutoscaler(s, *cfg.Autoscale)
		go s.scaler.run()
	}
	s.routes()
	return s, nil
}

// Handler is the service's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops admission (submissions return ErrDraining / 503) and waits
// until every queued and running flight has settled, or until ctx
// expires.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	if s.scaler != nil {
		s.scaler.halt()
	}
	return s.pool.drain(ctx)
}

// Core API errors beyond the pool's ErrSaturated/ErrDraining.
var (
	// ErrNoSuchJob: the job id is unknown (never existed, or evicted).
	ErrNoSuchJob = errors.New("serve: no such job")
	// errKilled is the terminal error stamped on jobs stranded by Kill.
	errKilled = errors.New("serve: replica killed")
)

// StateConflictError reports an operation that is invalid in the job's
// current state (canceling a finished job, fetching an unfinished
// result).
type StateConflictError struct {
	State State
}

func (e *StateConflictError) Error() string {
	return fmt.Sprintf("serve: job is %s", e.State)
}

// Submit admits one spec and returns the resulting job's view: a cache
// hit is born done, an identical in-flight spec is joined, and otherwise
// a fresh flight is queued. Errors: ErrDraining, ErrSaturated (pair with
// RetryAfterSeconds), or a spec validation error from the admission path.
func (s *Server) Submit(spec Spec) (JobView, error) {
	// The retry loop covers one narrow race: acquire can join a flight
	// whose last subscriber cancels before attach. Such a corpse will
	// never settle, so the stillborn job is discarded and the submission
	// retried — the dead entry is evicted (here and in acquire), so the
	// next pass leads a fresh flight. The bound is defensive; one retry
	// suffices unless cancels keep winning the race.
	for attempt := 0; ; attempt++ {
		now := time.Now()
		res, fl, created, err := s.cache.acquire(spec, s.pool.submit)
		if err != nil {
			return JobView{}, err
		}

		if res != nil { // cache hit: the job is born done
			j := s.store.newJob(spec, CacheHit, nil, now)
			j.finish(StateDone, res, "", now)
			s.m.Submitted.Inc()
			s.m.JobsDone.Inc()
			return j.View(), nil
		}

		cacheStatus := CacheJoined
		if created {
			cacheStatus = CacheMiss
		}
		j := s.store.newJob(spec, cacheStatus, fl, now)
		switch fl.attach(j, now) {
		case attachJoined:
			s.m.Submitted.Inc()
			return j.View(), nil
		case attachSettled:
			// The flight finished between acquire and attach: settle from
			// its outcome directly.
			fres, ferr := fl.outcome()
			if ferr != nil {
				j.finish(StateFailed, nil, ferr.Error(), now)
				s.m.JobsFailed.Inc()
			} else {
				j.finish(StateDone, fres, "", now)
				s.m.JobsDone.Inc()
			}
			s.m.Submitted.Inc()
			return j.View(), nil
		case attachDead:
			s.store.remove(j.ID())
			s.cache.forget(fl)
			if attempt >= 8 {
				return JobView{}, fmt.Errorf("serve: submission kept racing cancellation for %s", spec.Key())
			}
		}
	}
}

// Job returns the job's current view.
func (s *Server) Job(id string) (JobView, bool) {
	j, ok := s.store.get(id)
	if !ok {
		return JobView{}, false
	}
	return j.View(), true
}

// CancelJob terminates one job. When it was the last live subscriber of
// its flight, the flight itself is aborted (dequeued or its context
// canceled) and the cache entry removed. Errors: ErrNoSuchJob, or a
// StateConflictError when the job already ended (its view is still
// returned).
func (s *Server) CancelJob(id string) (JobView, error) {
	j, ok := s.store.get(id)
	if !ok {
		return JobView{}, ErrNoSuchJob
	}
	if !j.finish(StateCanceled, nil, "canceled by client", time.Now()) {
		return j.View(), &StateConflictError{State: j.State()}
	}
	s.m.JobsCanceled.Inc()
	if j.flight != nil {
		switch j.flight.detach() {
		case detachAborted:
			s.cache.forget(j.flight)
			// The flight never ran; pull it out of its shard queue so the
			// admission slot frees immediately instead of when a worker
			// reaches and skips it.
			s.pool.discard(j.flight)
		case detachStopped:
			s.cache.forget(j.flight)
		}
	}
	return j.View(), nil
}

// JobResult returns the finished job's result. Errors: ErrNoSuchJob, or
// a StateConflictError when the job is not done (its view is still
// returned for context).
func (s *Server) JobResult(id string) (*Result, JobView, error) {
	j, ok := s.store.get(id)
	if !ok {
		return nil, JobView{}, ErrNoSuchJob
	}
	res, ok := j.Result()
	if !ok {
		return nil, j.View(), &StateConflictError{State: j.State()}
	}
	return res, j.View(), nil
}

// Queued reports the flights waiting in shard queues.
func (s *Server) Queued() int { return s.pool.queued() }

// Inflight reports the flights currently executing on workers. Queued +
// Inflight is the load signal the mesh's least-loaded and two-choice
// routers compare.
func (s *Server) Inflight() int { return int(s.inflight.Load()) }

// Draining reports whether admission is closed (Drain or Kill).
func (s *Server) Draining() bool { return s.draining.Load() }

// ExportSnapshots deep-copies every checkpoint snapshot with recorded
// cells, keyed by spec cache key. The mesh coordinator calls it on a
// dead replica to hand interrupted progress to a survivor.
func (s *Server) ExportSnapshots() map[string]map[int][]float64 {
	return s.snaps.export()
}

// ImportSnapshot merges handed-off cells into this server's checkpoint
// store, so the next flight for the spec resumes past them. It reports
// how many cells were new here.
func (s *Server) ImportSnapshot(key string, cells map[int][]float64) int {
	n := s.snaps.merge(key, cells)
	if n > 0 {
		s.m.SnapshotCellsRecorded.Add(uint64(n))
	}
	return n
}

// Kill simulates abrupt replica death for the mesh: admission closes,
// every live flight is aborted — running ones through their execution
// context, queued ones settled directly (no worker will ever reach an
// aborted flight's settle path) — and the workers are reaped in the
// background. Checkpoint snapshots survive so the coordinator can export
// them; the Server itself stays readable (the mesh decides what "dead"
// hides).
func (s *Server) Kill() {
	s.draining.Store(true)
	if s.scaler != nil {
		s.scaler.halt()
	}
	now := time.Now()
	for _, fl := range s.cache.liveFlights() {
		if fl.kill() {
			continue // running (settles via ctx.Done) or already finished
		}
		// Queued corpse: free its slot and fail its jobs ourselves.
		s.cache.forget(fl)
		s.pool.discard(fl)
		s.snaps.settle(fl.key)
		n := fl.settle(StateFailed, nil, errKilled, "replica killed", now)
		s.m.JobsFailed.Add(uint64(n))
	}
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.pool.drain(ctx)
	}()
}

// routes mounts the API.
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.Handle("POST /v1/jobs", s.instrument("submit", s.handleSubmit))
	s.mux.Handle("GET /v1/jobs/{id}", s.instrument("job", s.handleJob))
	s.mux.Handle("DELETE /v1/jobs/{id}", s.instrument("cancel", s.handleCancel))
	s.mux.Handle("GET /v1/jobs/{id}/result", s.instrument("result", s.handleResult))
	s.mux.Handle("GET /v1/jobs/{id}/table", s.instrument("table", s.handleTable))
	s.mux.Handle("GET /v1/exhibits", s.instrument("exhibits", s.handleExhibits))
	s.mux.Handle("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.Handle("GET /healthz", s.instrument("healthz", s.handleHealth))
}

// statusRecorder captures the response code for the request metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the request counter and latency
// histogram for one route label.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.m.Request(route, rec.code, time.Since(start).Seconds())
	})
}

// writeJSON renders one response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit admits one spec: cache hit, join of an identical in-flight
// spec, or a freshly queued flight — or 429/503 under pressure.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := ParseSpec(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	view, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	case errors.Is(err, ErrSaturated):
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.RetryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, "queue full (%d slots); retry later", s.pool.queueCapacity())
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+view.ID)
	code := http.StatusAccepted
	if view.Cache == CacheHit {
		code = http.StatusOK
	}
	writeJSON(w, code, view)
}

// handleJob is the poll endpoint.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	view, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleCancel terminates one job.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.CancelJob(r.PathValue("id"))
	var conflict *StateConflictError
	switch {
	case errors.Is(err, ErrNoSuchJob):
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	case errors.As(err, &conflict):
		writeError(w, http.StatusConflict, "job is already %s", conflict.State)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleResult serves the finished job's CSV bytes — byte-identical to
// `exasim -csv` output for the same spec.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, view, err := s.JobResult(r.PathValue("id"))
	var conflict *StateConflictError
	switch {
	case errors.Is(err, ErrNoSuchJob):
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	case errors.As(err, &conflict):
		writeError(w, http.StatusConflict, "job is %s, not done", view.State)
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.Header().Set("X-Exaresil-Digest", res.Digest)
	_, _ = w.Write(res.CSV)
}

// handleTable serves the finished job's rendered ASCII table.
func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	res, view, err := s.JobResult(r.PathValue("id"))
	var conflict *StateConflictError
	switch {
	case errors.Is(err, ErrNoSuchJob):
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	case errors.As(err, &conflict):
		writeError(w, http.StatusConflict, "job is %s, not done", view.State)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = fmt.Fprint(w, res.Text)
}

// exhibitInfo is one row of GET /v1/exhibits.
type exhibitInfo struct {
	Name  string `json:"name"`
	Group string `json:"group"`
}

// handleExhibits lists the runnable exhibit names from the shared
// registry.
func (s *Server) handleExhibits(w http.ResponseWriter, r *http.Request) {
	var out []exhibitInfo
	for _, e := range experiments.Exhibits() {
		out = append(out, exhibitInfo{Name: e.Name, Group: e.Group})
	}
	writeJSON(w, http.StatusOK, struct {
		Exhibits []exhibitInfo `json:"exhibits"`
	}{out})
}

// handleMetrics exposes the obs registry in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Obs == nil {
		writeError(w, http.StatusNotFound, "metrics are disabled (no registry configured)")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.cfg.Obs.WriteProm(w)
}

// HealthView is the GET /healthz body and the per-replica health report
// the mesh coordinator aggregates.
type HealthView struct {
	Status        string `json:"status"`
	Workers       int    `json:"workers"`
	QueueCapacity int    `json:"queue_capacity"`
	Queued        int    `json:"queued"`
	Jobs          int    `json:"jobs"`
	CacheEntries  int    `json:"cache_entries"`
	Snapshots     int    `json:"snapshots"`
	// Autoscale bounds, present only when the pool is elastic; Workers is
	// then the current width between them.
	Autoscale  bool `json:"autoscale,omitempty"`
	MinWorkers int  `json:"min_workers,omitempty"`
	MaxWorkers int  `json:"max_workers,omitempty"`
}

// Health reports liveness and the coarse pressure numbers a load
// balancer or smoke test wants.
func (s *Server) Health() HealthView {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	h := HealthView{
		Status:        status,
		Workers:       s.pool.workers(),
		QueueCapacity: s.pool.queueCapacity(),
		Queued:        s.pool.queued(),
		Jobs:          s.store.size(),
		CacheEntries:  s.cache.size(),
		Snapshots:     s.snaps.size(),
	}
	if s.cfg.Autoscale != nil {
		h.Autoscale = true
		h.MinWorkers = s.cfg.Autoscale.Min
		h.MaxWorkers = s.cfg.Autoscale.Max
	}
	return h
}

// handleHealth renders Health.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Health())
}

// errCrash is the cancel cause of an injected worker crash (CrashHook).
var errCrash = errors.New("serve: injected worker crash")

// execFlight runs one flight on a worker: start the runner in a child
// goroutine and wait for it, the per-job timeout, last-subscriber
// cancellation, or an injected worker crash — whichever comes first. A
// detached runner (anything but the runner's own return won the select)
// keeps simulating until it notices the canceled context, but its result
// is discarded and the worker moves on; the abandoned counter makes that
// visible.
//
// Checkpoint/restart: every execution opens the spec's snapshot and
// threads an experiments.Progress hook through the runner config, so
// grid exhibits record each finished cell and skip cells a previous,
// interrupted attempt already completed. Success drops the snapshot (the
// result cache owns the spec now); failure, timeout, crash, and cancel
// keep a non-empty one for the next attempt.
func (s *Server) execFlight(fl *flight) {
	now := time.Now()
	ctx, cancelCause := context.WithCancelCause(context.Background())
	defer cancelCause(context.Canceled)
	if s.cfg.JobTimeout > 0 {
		var cancelTimeout context.CancelFunc
		ctx, cancelTimeout = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancelTimeout()
	}
	if !fl.begin(cancelCause, now) {
		return // every subscriber canceled while queued; already forgotten
	}
	if !fl.created.IsZero() {
		s.noteQueueWait(now.Sub(fl.created).Seconds())
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	s.m.JobsInflight.Add(1)
	defer s.m.JobsInflight.Add(-1)
	s.m.Executions.Inc()

	snap, restored := s.snaps.open(fl.key)
	if restored > 0 {
		s.m.SnapshotResumes.Inc()
		s.m.SnapshotCellsRestored.Add(uint64(restored))
	}
	// crashAfter counts down fresh cells toward an injected crash; 0
	// means no crash is scheduled.
	var crashAfter atomic.Int64
	if s.cfg.CrashHook != nil {
		if n, ok := s.cfg.CrashHook(); ok && n > 0 {
			crashAfter.Store(int64(n))
			s.m.CrashesInjected.Inc()
		}
	}
	ecfg := s.cfg.Experiments
	ecfg.Progress = &experiments.Progress{
		Ctx:       ctx,
		Completed: snap.completed(),
		OnCell: func(cell int, values []float64) {
			snap.note(cell, values)
			s.m.SnapshotCellsRecorded.Inc()
			if crashAfter.Load() > 0 && crashAfter.Add(-1) == 0 {
				cancelCause(errCrash)
			}
		},
	}

	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	start := time.Now()
	go func() {
		res, err := s.cfg.Runner(ctx, ecfg, fl.spec)
		ch <- outcome{res, err}
	}()

	select {
	case o := <-ch:
		secs := time.Since(start).Seconds()
		s.m.JobSeconds.Observe(secs)
		s.noteJobSeconds(secs)
		if o.err != nil {
			s.cache.forget(fl)
			s.snaps.settle(fl.key)
			n := fl.settle(StateFailed, nil, o.err, "run: "+o.err.Error(), time.Now())
			s.m.JobsFailed.Add(uint64(n))
		} else {
			s.cache.complete(fl, o.res)
			s.snaps.drop(fl.key)
			n := fl.settle(StateDone, o.res, nil, "", time.Now())
			s.m.JobsDone.Add(uint64(n))
		}
	case <-ctx.Done():
		s.m.JobsAbandoned.Inc()
		s.cache.forget(fl)
		s.snaps.settle(fl.key)
		cause := context.Cause(ctx)
		switch {
		case errors.Is(cause, errCrash):
			n := fl.settle(StateFailed, nil, cause,
				"injected worker crash; resubmit to resume from the last snapshot", time.Now())
			s.m.JobsFailed.Add(uint64(n))
		case errors.Is(cause, context.DeadlineExceeded):
			n := fl.settle(StateFailed, nil, cause,
				fmt.Sprintf("job timeout after %s", s.cfg.JobTimeout), time.Now())
			s.m.JobsFailed.Add(uint64(n))
		case errors.Is(cause, errKilled):
			n := fl.settle(StateFailed, nil, cause, "replica killed", time.Now())
			s.m.JobsFailed.Add(uint64(n))
		default:
			// Last subscriber canceled mid-run; its job is already
			// terminal, so this usually transitions nothing.
			n := fl.settle(StateCanceled, nil, cause, "canceled", time.Now())
			s.m.JobsCanceled.Add(uint64(n))
		}
	}
}

// noteJobSeconds folds one execution time into the EWMA behind
// Retry-After.
func (s *Server) noteJobSeconds(secs float64) {
	noteEwma(&s.ewmaBits, secs)
}

// noteQueueWait folds one admission-to-execution wait into the EWMA the
// autoscaler reads as its latency signal. The autoscaler also folds in
// zero samples on empty-queue ticks so the signal decays when no flight
// is waiting.
func (s *Server) noteQueueWait(secs float64) {
	noteEwma(&s.waitBits, secs)
}

// queueWaitSeconds reads the queue-wait EWMA (0 before any sample).
func (s *Server) queueWaitSeconds() float64 {
	bits := s.waitBits.Load()
	if bits == 0 {
		return 0
	}
	v := math.Float64frombits(bits)
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	return v
}

// noteEwma folds one sample into a float64 EWMA stored in an atomic word
// (alpha 0.2; the first sample seeds the average).
func noteEwma(bits *atomic.Uint64, sample float64) {
	const alpha = 0.2
	for {
		old := bits.Load()
		prev := math.Float64frombits(old)
		next := sample
		if old != 0 {
			next = (1-alpha)*prev + alpha*sample
		}
		if bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// RetryAfterSeconds estimates when a rejected client should try again:
// the queued work divided by the pool width, paced by the average
// execution time, clamped to [1, 120] seconds. Before the EWMA has any
// samples (cold start — nothing has finished yet) the estimate is
// explicitly floored at 1s: a 429 storm on a freshly booted server must
// never tell every client "retry now". Under autoscaling the divisor is
// the pool's *active* width — a mid-shrink pool no longer admits to the
// retiring shard, so crediting it would underestimate the wait.
func (s *Server) RetryAfterSeconds() int {
	bits := s.ewmaBits.Load()
	if bits == 0 {
		return 1 // cold start: no completed execution to pace by
	}
	avg := math.Float64frombits(bits)
	if avg <= 0 || math.IsNaN(avg) {
		avg = 1
	}
	est := int(math.Ceil(avg * float64(s.pool.queued()+1) / float64(s.pool.workers())))
	if est < 1 {
		est = 1
	}
	if est > 120 {
		est = 120
	}
	return est
}

package serve

// The serving-layer bug sweep: regression tests for the seams the mesh
// work flushed out — Retry-After cold start, the single-flight
// join-after-abort race, cancel-vs-drain storms, replica Kill semantics,
// and cross-server snapshot handoff.

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"exaresil/internal/experiments"
)

// TestRetryAfterColdStartFloor: before any execution has completed the
// EWMA is empty, and the Retry-After estimate must be floored at 1s — a
// 429 storm on a freshly booted server must never tell clients "retry
// now". Tiny samples stay floored; huge ones clamp at 120.
func TestRetryAfterColdStartFloor(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 4, Runner: newBlockingRunner(false).run})
	if got := srv.RetryAfterSeconds(); got != 1 {
		t.Fatalf("cold-start RetryAfterSeconds = %d, want 1", got)
	}
	srv.noteJobSeconds(1e-9)
	if got := srv.RetryAfterSeconds(); got != 1 {
		t.Fatalf("tiny-sample RetryAfterSeconds = %d, want floor 1", got)
	}
	srv.noteJobSeconds(1e9)
	if got := srv.RetryAfterSeconds(); got != 120 {
		t.Fatalf("huge-sample RetryAfterSeconds = %d, want clamp 120", got)
	}
}

// TestDeadFlightReplacedOnAcquire: the join-after-abort race. A flight
// whose last subscriber canceled (detach → aborted) but whose cancel
// path has not yet swept the cache must not be joinable — attach refuses
// it and acquire evicts it in favor of a fresh flight. Before the fix a
// submission landing in that window joined the corpse and hung forever.
func TestDeadFlightReplacedOnAcquire(t *testing.T) {
	now := time.Now()
	c := newCache(8, NewMetrics(nil))
	spec := Spec{Exhibit: "fig1", Trials: 3}

	_, fl1, created, err := c.acquire(spec, admitAll)
	if err != nil || !created {
		t.Fatalf("first acquire: created=%v err=%v", created, err)
	}
	fl1.attach(&Job{state: StateQueued}, now)
	if got := fl1.detach(); got != detachAborted {
		t.Fatalf("detach = %v, want detachAborted", got)
	}

	// The cancel path's forget/discard have NOT run yet: this is the race
	// window. Joining must be refused…
	if got := fl1.attach(&Job{state: StateQueued}, now); got != attachDead {
		t.Fatalf("attach to aborted queued flight = %v, want attachDead", got)
	}
	// …and acquire must evict the corpse and lead a fresh flight.
	_, fl2, created2, err := c.acquire(spec, admitAll)
	if err != nil || !created2 {
		t.Fatalf("acquire over dead flight: created=%v err=%v, want fresh flight", created2, err)
	}
	if fl2 == fl1 {
		t.Fatal("acquire joined the dead flight")
	}
	// The cancel path's late forget of the corpse must not evict the
	// replacement.
	c.forget(fl1)
	if c.size() != 1 {
		t.Fatalf("late forget removed the replacement: cache size %d, want 1", c.size())
	}

	// A killed *running* flight is not dead — its worker's ctx.Done path
	// will settle it, so joining stays legal until then.
	_, flRun, _, _ := c.acquire(Spec{Exhibit: "fig2"}, admitAll)
	flRun.attach(&Job{state: StateQueued}, now)
	flRun.begin(func(error) {}, now)
	if !flRun.kill() {
		t.Fatal("kill of a running flight reported unhandled")
	}
	if flRun.dead() {
		t.Fatal("killed running flight reported dead before settling")
	}
}

// TestSubmitSurvivesCancelRace: server-level version of the same race.
// Submit must detect the stillborn attach, discard the job, and retry
// with a fresh flight that completes normally.
func TestSubmitSurvivesCancelRace(t *testing.T) {
	br := newBlockingRunner(false)
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Runner: br.run})

	vA, err := srv.Submit(Spec{Exhibit: "fig1", Trials: 1})
	if err != nil {
		t.Fatalf("submit A: %v", err)
	}
	br.waitStart(t) // A occupies the only worker
	specB := Spec{Exhibit: "fig1", Trials: 2}
	vB, err := srv.Submit(specB)
	if err != nil {
		t.Fatalf("submit B: %v", err)
	}

	// Freeze the cancel mid-window: terminal job + detached flight, but
	// no forget/discard yet — exactly the interleaving handleCancel can
	// be preempted in.
	jB, ok := srv.store.get(vB.ID)
	if !ok {
		t.Fatalf("job %s missing", vB.ID)
	}
	jB.finish(StateCanceled, nil, "canceled by client", time.Now())
	if got := jB.flight.detach(); got != detachAborted {
		t.Fatalf("detach = %v, want detachAborted", got)
	}

	vB2, err := srv.Submit(specB)
	if err != nil {
		t.Fatalf("submit into the race window: %v", err)
	}
	if vB2.Cache != CacheMiss {
		t.Fatalf("resubmission cache status %q, want %q (fresh flight, not the corpse)", vB2.Cache, CacheMiss)
	}

	br.unblock()
	if done := pollTerminal(t, ts, vB2.ID); done.State != "done" {
		t.Fatalf("resubmitted job ended %s: %s", done.State, done.Error)
	}
	if done := pollTerminal(t, ts, vA.ID); done.State != "done" {
		t.Fatalf("job A ended %s: %s", done.State, done.Error)
	}
}

// TestKillAbortsAllWork: Kill closes admission, fails queued flights
// immediately, and cancels running ones through their execution context.
func TestKillAbortsAllWork(t *testing.T) {
	br := newBlockingRunner(true)
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Runner: br.run})
	defer br.unblock()

	vRun, err := srv.Submit(Spec{Exhibit: "fig1", Trials: 1})
	if err != nil {
		t.Fatalf("submit running: %v", err)
	}
	br.waitStart(t)
	vQ, err := srv.Submit(Spec{Exhibit: "fig1", Trials: 2})
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}

	srv.Kill()

	// The queued flight settles synchronously inside Kill.
	jv, ok := srv.Job(vQ.ID)
	if !ok {
		t.Fatalf("queued job %s missing after Kill", vQ.ID)
	}
	if jv.State != "failed" || !strings.Contains(jv.Error, "replica killed") {
		t.Fatalf("queued job after Kill: state=%s error=%q, want failed/replica killed", jv.State, jv.Error)
	}
	// The running flight settles when its worker observes the canceled
	// context.
	if done := pollTerminal(t, ts, vRun.ID); done.State != "failed" {
		t.Fatalf("running job after Kill ended %s: %s", done.State, done.Error)
	}
	if !srv.Draining() {
		t.Fatal("killed server does not report draining")
	}
	if _, err := srv.Submit(Spec{Exhibit: "fig1", Trials: 3}); err == nil {
		t.Fatal("submit to a killed server succeeded")
	}
}

// TestSnapshotExportImportHandoff: a crashed server's checkpoint cells,
// exported and imported into a second server, let the second server
// resume the spec and produce the same bytes a direct run yields — the
// mesh failover invariant at the serve layer.
func TestSnapshotExportImportHandoff(t *testing.T) {
	spec := Spec{Exhibit: "fig4", Patterns: 2, Arrivals: 8}
	crashed := false
	srv1, ts1 := newTestServer(t, Config{
		Workers: 1,
		CrashHook: func() (int, bool) {
			if crashed {
				return 0, false
			}
			crashed = true
			return 1, true // crash the first execution after one cell
		},
	})
	v1, err := srv1.Submit(spec)
	if err != nil {
		t.Fatalf("submit on srv1: %v", err)
	}
	if done := pollTerminal(t, ts1, v1.ID); done.State != "failed" {
		t.Fatalf("crashed job ended %s, want failed", done.State)
	}

	handoff := srv1.ExportSnapshots()[spec.Key()]
	if len(handoff) == 0 {
		t.Fatalf("export after crash carried no cells for %s", spec.Key())
	}
	// The export is a deep copy: mutating it must not corrupt srv1's
	// snapshot.
	var cellIdx int
	for i := range handoff {
		cellIdx = i
		break
	}
	orig := handoff[cellIdx][0]
	handoff[cellIdx][0] = -12345
	if srv1.ExportSnapshots()[spec.Key()][cellIdx][0] == -12345 {
		t.Fatal("export shares cell slices with the live snapshot")
	}
	handoff[cellIdx][0] = orig

	srv2, ts2 := newTestServer(t, Config{Workers: 1})
	if n := srv2.ImportSnapshot(spec.Key(), handoff); n != len(handoff) {
		t.Fatalf("import recorded %d cells, want %d", n, len(handoff))
	}
	v2, err := srv2.Submit(spec)
	if err != nil {
		t.Fatalf("submit on srv2: %v", err)
	}
	if done := pollTerminal(t, ts2, v2.ID); done.State != "done" {
		t.Fatalf("resumed job ended %s: %s", done.State, done.Error)
	}
	if got := srv2.m.SnapshotResumes.Value(); got != 1 {
		t.Fatalf("srv2 snapshot resumes = %d, want 1 (handoff not picked up)", got)
	}
	if restored := srv2.m.SnapshotCellsRestored.Value(); restored != uint64(len(handoff)) {
		t.Fatalf("srv2 restored %d cells, want %d", restored, len(handoff))
	}

	direct, err := runSpec(srv2.cfg.Experiments, spec)
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	res, _, err := srv2.JobResult(v2.ID)
	if err != nil {
		t.Fatalf("result on srv2: %v", err)
	}
	if res.Digest != direct.Digest {
		t.Fatalf("resumed digest %s != direct digest %s", res.Digest, direct.Digest)
	}
}

// TestPoolCancelDrainStress: submit/cancel storms racing Drain must
// leave no queued flights, no non-terminal jobs, and no wedged workers.
// Run under -race this doubles as the pool's concurrency audit.
func TestPoolCancelDrainStress(t *testing.T) {
	fast := func(_ context.Context, _ experiments.Config, s Spec) (*Result, error) {
		return &Result{CSV: []byte(s.Canonical() + "\n"), Text: s.Canonical(), Digest: s.Key()}, nil
	}
	srv, _ := newTestServer(t, Config{Workers: 4, QueueDepth: 8, StoreSize: 8192, Runner: fast})

	const goroutines, perG = 8, 200
	ids := make(chan string, goroutines*perG)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				v, err := srv.Submit(Spec{Exhibit: "fig1", Trials: rnd.Intn(64) + 1})
				if err != nil {
					continue // ErrSaturated/ErrDraining are expected under the storm
				}
				ids <- v.ID
				if rnd.Intn(2) == 0 {
					_, _ = srv.CancelJob(v.ID)
				}
			}
		}(g)
	}

	// Drain races the storm: submissions behind the drain get
	// ErrDraining, cancels keep walking the shard deques while drain
	// closes them.
	time.Sleep(time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain under storm: %v", err)
	}
	wg.Wait()
	close(ids)

	if q := srv.Queued(); q != 0 {
		t.Fatalf("%d flights still queued after drain", q)
	}
	if n := srv.Inflight(); n != 0 {
		t.Fatalf("%d flights still inflight after drain", n)
	}
	for id := range ids {
		v, ok := srv.Job(id)
		if !ok {
			continue // evicted terminal job
		}
		switch v.State {
		case "done", "failed", "canceled":
		default:
			t.Fatalf("job %s stuck %s after drain", id, v.State)
		}
	}
}

// Package load is the serving layer's traffic model: a seed-deterministic
// temporal workload generator, a request-trace recorder/replayer, and a
// saturation analyzer that finds the knee of an exaserve fleet.
//
// The cluster study models the paper's 100-app arrival patterns, but until
// this package the *service* (internal/serve, internal/mesh) was only ever
// exercised by uniform closed-loop clients. The resilience literature the
// repository tracks (Hukerikar & Engelmann's pattern catalog, TeaMPI's
// performance-under-load methodology) is explicit that resilience
// mechanisms must be evaluated under representative, reproducible load —
// so every piece here is deterministic under a seed:
//
//   - Profile (profile.go) composes piecewise rate functions — constant,
//     ramp, diurnal, bursty — into a multi-period arrival-rate curve r(t).
//   - Generate (gen.go) drives an open-loop arrival process (Poisson via
//     thinning, or deterministic pacing) from a Profile and draws each
//     arrival's spec from a Zipf popularity law over a ranked vocabulary,
//     so the result cache and affinity router see realistic skew.
//   - Trace (trace.go) records a request stream — spec, arrival offset,
//     outcome, latency — as versioned JSONL and replays it verbatim or
//     time-scaled. Malformed lines are rejected with their line number,
//     never skipped.
//   - Target (target.go) abstracts "something that serves arrivals":
//     HTTPTarget paces wall-clock arrivals at a live exaserve or mesh,
//     while Inproc (inproc.go) embeds a real serve.Server behind a gated
//     stub runner and a virtual clock, making admission, single-flight,
//     cache, and 429 outcomes — and the reported latencies — exactly
//     reproducible.
//   - Sweep (saturate.go) steps the arrival rate across a grid, measures
//     p50/p95/p99 latency, throughput, reject rate, and cache hit rate
//     per step, detects the knee (first step crossing the p99 or
//     reject-rate budget), and renders a capacity-planning report. The
//     pinned GoldenSweep configuration is digest-checked by exacheck.
package load

package load

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
)

func testGenSpec(seed uint64, rate, dur float64) GenSpec {
	return GenSpec{
		Seed:    seed,
		Profile: Profile{Segments: []Segment{{Kind: KindConstant, Rate: rate, Dur: dur}}},
		Process: ProcessPoisson,
		Vocab:   DefaultVocab(32),
		ZipfS:   1.1,
	}
}

// streamFingerprint renders a stream to a canonical string so equality
// failures show where two streams diverge.
func streamFingerprint(arrivals []Arrival) string {
	s := fmt.Sprintf("n=%d", len(arrivals))
	for _, a := range arrivals {
		s += fmt.Sprintf(";%x/%d/%s", math.Float64bits(a.At), a.Rank, a.Spec.Key())
	}
	return s
}

// TestGenerateDeterministic is the seed-determinism property: equal specs
// with equal seeds produce byte-identical streams even when many
// generators run concurrently. Run under -race with GOMAXPROCS > 1 this
// also proves generation shares no hidden mutable state.
func TestGenerateDeterministic(t *testing.T) {
	gs := testGenSpec(42, 6, 30)
	want, err := Generate(gs)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("empty stream; the test needs arrivals to compare")
	}
	wantFP := streamFingerprint(want)

	const workers = 8
	var wg sync.WaitGroup
	got := make([]string, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arr, err := Generate(gs)
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = streamFingerprint(arr)
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent generator %d: %v", i, errs[i])
		}
		if got[i] != wantFP {
			t.Errorf("concurrent generator %d produced a different stream", i)
		}
	}

	// A different seed must actually change the stream.
	other, err := Generate(testGenSpec(43, 6, 30))
	if err != nil {
		t.Fatal(err)
	}
	if streamFingerprint(other) == wantFP {
		t.Error("seeds 42 and 43 produced identical streams")
	}
}

// TestGenerateRateScaling: doubling the rate function roughly doubles the
// arrival count — the open-loop intensity property. Averaged over seeds to
// keep the tolerance honest.
func TestGenerateRateScaling(t *testing.T) {
	const (
		seeds = 20
		dur   = 200.0
		rate  = 5.0
	)
	var n1, n2 float64
	for seed := uint64(1); seed <= seeds; seed++ {
		a1, err := Generate(testGenSpec(seed, rate, dur))
		if err != nil {
			t.Fatal(err)
		}
		a2, err := Generate(testGenSpec(seed+1000, 2*rate, dur))
		if err != nil {
			t.Fatal(err)
		}
		n1 += float64(len(a1))
		n2 += float64(len(a2))
	}
	n1 /= seeds
	n2 /= seeds
	// Mean of Poisson(rate*dur): 1000 and 2000. With 20 seeds the sample
	// means have stddev ~7 and ~10; a 10% band is >10 sigma.
	if math.Abs(n1-rate*dur) > 0.1*rate*dur {
		t.Errorf("mean arrivals at rate %v = %v, want within 10%% of %v", rate, n1, rate*dur)
	}
	ratio := n2 / n1
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("doubling the rate scaled arrivals by %.3f, want ~2", ratio)
	}
}

// TestGenerateOffsetsSorted: arrivals come out in time order inside the
// profile's span, for both processes.
func TestGenerateOffsetsSorted(t *testing.T) {
	for _, proc := range []string{ProcessPoisson, ProcessUniform} {
		gs := testGenSpec(7, 8, 60)
		gs.Process = proc
		arrivals, err := Generate(gs)
		if err != nil {
			t.Fatal(err)
		}
		if len(arrivals) == 0 {
			t.Fatalf("%s: empty stream", proc)
		}
		prev := -1.0
		for i, a := range arrivals {
			if a.At < prev {
				t.Fatalf("%s: arrival %d at %v before previous %v", proc, i, a.At, prev)
			}
			if a.At < 0 || a.At >= gs.Profile.Duration() {
				t.Fatalf("%s: arrival %d offset %v outside [0, %v)", proc, i, a.At, gs.Profile.Duration())
			}
			prev = a.At
		}
	}
}

// TestGenerateUniformPacing: the deterministic process at constant rate r
// spaces arrivals exactly 1/r apart.
func TestGenerateUniformPacing(t *testing.T) {
	gs := testGenSpec(1, 4, 10)
	gs.Process = ProcessUniform
	arrivals, err := Generate(gs)
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) < 2 {
		t.Fatalf("want several arrivals, got %d", len(arrivals))
	}
	for i := 1; i < len(arrivals); i++ {
		gap := arrivals[i].At - arrivals[i-1].At
		if math.Abs(gap-0.25) > 1e-9 {
			t.Fatalf("uniform gap %d = %v, want 0.25", i, gap)
		}
	}
}

// TestGenerateProcessIndependence: switching the arrival process must not
// reshuffle which specs are drawn — the popularity substream is its own.
func TestGenerateProcessIndependence(t *testing.T) {
	poisson := testGenSpec(11, 5, 40)
	uniform := poisson
	uniform.Process = ProcessUniform
	ap, err := Generate(poisson)
	if err != nil {
		t.Fatal(err)
	}
	au, err := Generate(uniform)
	if err != nil {
		t.Fatal(err)
	}
	n := len(ap)
	if len(au) < n {
		n = len(au)
	}
	if n == 0 {
		t.Fatal("no arrivals to compare")
	}
	for i := 0; i < n; i++ {
		if ap[i].Rank != au[i].Rank {
			t.Fatalf("draw %d: poisson rank %d != uniform rank %d — the popularity substream leaked into the timeline", i, ap[i].Rank, au[i].Rank)
		}
	}
}

// TestGenerateMaxArrivals: the runaway guard trips instead of eating the
// heap.
func TestGenerateMaxArrivals(t *testing.T) {
	gs := testGenSpec(1, 100, 100)
	gs.MaxArrivals = 50
	if _, err := Generate(gs); err == nil {
		t.Fatal("want an error when the stream exceeds MaxArrivals")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []GenSpec{
		{Seed: 1, Profile: Profile{}, Vocab: DefaultVocab(4)},                                                           // no segments
		{Seed: 1, Profile: testGenSpec(1, 5, 10).Profile},                                                               // no vocab
		{Seed: 1, Profile: testGenSpec(1, 5, 10).Profile, Vocab: DefaultVocab(4), ZipfS: -1},                            // negative exponent
		{Seed: 1, Profile: testGenSpec(1, 5, 10).Profile, Vocab: DefaultVocab(4), Process: "brownian"},                  // unknown process
		{Seed: 1, Profile: Profile{Segments: []Segment{{Kind: KindConstant, Rate: 0, Dur: 5}}}, Vocab: DefaultVocab(4)}, // zero envelope
	}
	for i, gs := range bad {
		if _, err := Generate(gs); err == nil {
			t.Errorf("case %d: want an error, got none", i)
		}
	}
}

// TestPopularityZipf checks the law itself: rank 0 is always heaviest,
// weights are monotone, and empirical frequencies match the s-parameter.
func TestPopularityZipf(t *testing.T) {
	const k, s = 16, 1.1
	pop, err := NewPopularity(k, s)
	if err != nil {
		t.Fatal(err)
	}
	if pop.Ranks() != k {
		t.Fatalf("Ranks() = %d, want %d", pop.Ranks(), k)
	}
	var total float64
	for r := 0; r < k; r++ {
		total += pop.Weight(r)
		if r > 0 && pop.Weight(r) > pop.Weight(r-1)+1e-12 {
			t.Errorf("weight(%d)=%v exceeds weight(%d)=%v — ranks out of order", r, pop.Weight(r), r-1, pop.Weight(r-1))
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("weights sum to %v, want 1", total)
	}
	// The analytic weight of rank r is (r+1)^-s normalized.
	var norm float64
	for r := 0; r < k; r++ {
		norm += math.Pow(float64(r+1), -s)
	}
	for r := 0; r < k; r++ {
		want := math.Pow(float64(r+1), -s) / norm
		if math.Abs(pop.Weight(r)-want) > 1e-9 {
			t.Errorf("weight(%d) = %v, want %v", r, pop.Weight(r), want)
		}
	}
	// Empirical check through the generator: long stream, compare rank
	// frequencies against the analytic weights.
	gs := testGenSpec(99, 50, 200)
	gs.Vocab = DefaultVocab(k)
	gs.ZipfS = s
	arrivals, err := Generate(gs)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, k)
	for _, a := range arrivals {
		counts[a.Rank]++
	}
	n := float64(len(arrivals))
	for r := 0; r < 4; r++ { // the head carries enough mass to test tightly
		got := counts[r] / n
		want := pop.Weight(r)
		if math.Abs(got-want) > 0.03 {
			t.Errorf("empirical weight(%d) = %.4f, want %.4f ± 0.03 over %d draws", r, got, want, len(arrivals))
		}
	}
	// s=0 degenerates to uniform.
	uni, err := NewPopularity(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		if math.Abs(uni.Weight(r)-0.125) > 1e-9 {
			t.Errorf("uniform weight(%d) = %v, want 0.125", r, uni.Weight(r))
		}
	}
}

// TestPopularityRankStability pins the inverse-CDF edges: rank boundaries
// are a pure function of (k, s), never of a seed.
func TestPopularityRankStability(t *testing.T) {
	p1, err := NewPopularity(10, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPopularity(10, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1.cdf, p2.cdf) {
		t.Fatal("two identical laws built different CDFs")
	}
	if got := p1.Rank(0); got != 0 {
		t.Errorf("Rank(0) = %d, want 0", got)
	}
	if got := p1.Rank(0.999999); got != 9 {
		t.Errorf("Rank(≈1) = %d, want 9", got)
	}
	for u := 0.0; u < 1; u += 0.001 {
		r := p1.Rank(u)
		if r < 0 || r >= 10 {
			t.Fatalf("Rank(%v) = %d out of range", u, r)
		}
	}
}

func TestDefaultVocabDistinct(t *testing.T) {
	v := DefaultVocab(16)
	seen := map[string]bool{}
	for i, s := range v {
		k := s.Key()
		if seen[k] {
			t.Fatalf("vocab entry %d reuses cache key %s", i, k)
		}
		seen[k] = true
	}
}

package load

import (
	"context"
	"strings"
	"testing"

	"exaresil/internal/obs"
	"exaresil/internal/serve"
)

// TestInprocQueueModel walks a hand-built schedule through the in-process
// target and checks every admission outcome and virtual latency against
// the single-worker FIFO model: one worker, two queue slots, service 1s.
func TestInprocQueueModel(t *testing.T) {
	target, err := NewInproc(InprocConfig{
		QueueDepth: 2,
		CacheSize:  8,
		Service:    func(serve.Spec) float64 { return 1.0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()

	spec := func(seed uint64) serve.Spec { return serve.Spec{Exhibit: "fig1", Trials: 2, Seed: seed} }
	arrivals := []Arrival{
		{At: 0.0, Spec: spec(1)}, // miss; runs 0–1; latency 1
		{At: 0.1, Spec: spec(2)}, // miss; queued; runs 1–2; latency 1.9
		{At: 0.2, Spec: spec(2)}, // joined with the queued flight; latency 1.8
		{At: 0.3, Spec: spec(3)}, // miss; queued; runs 2–3; latency 2.7
		{At: 0.4, Spec: spec(4)}, // worker busy + 2 queue slots full → 429
		{At: 1.5, Spec: spec(1)}, // spec 1 finished at t=1 → cache hit, latency 0
		{At: 5.0, Spec: spec(5)}, // everything drained; miss; latency 1
	}
	samples, err := target.RunSchedule(context.Background(), arrivals)
	if err != nil {
		t.Fatal(err)
	}
	type want struct {
		class, cache string
		latency      float64
	}
	wants := []want{
		{OutcomeOK, serve.CacheMiss, 1.0},
		{OutcomeOK, serve.CacheMiss, 1.9},
		{OutcomeOK, serve.CacheJoined, 1.8},
		{OutcomeOK, serve.CacheMiss, 2.7},
		{OutcomeRejected, "", 0},
		{OutcomeOK, serve.CacheHit, 0},
		{OutcomeOK, serve.CacheMiss, 1.0},
	}
	for i, w := range wants {
		s := samples[i]
		if s.Class != w.class || s.Cache != w.cache {
			t.Errorf("arrival %d: got %s/%s, want %s/%s", i, s.Class, s.Cache, w.class, w.cache)
		}
		if diff := s.Latency - w.latency; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("arrival %d: latency %v, want %v", i, s.Latency, w.latency)
		}
	}

	c, err := target.Counters()
	if err != nil {
		t.Fatal(err)
	}
	// 1 hit, 1 join; misses count the 429 too (acquire tallies the miss
	// before admission can refuse).
	if c.CacheHits != 1 || c.CacheJoined != 1 || c.CacheMisses != 5 || c.Rejected != 1 {
		t.Errorf("counters = %+v, want hits 1, joined 1, misses 5, rejected 1", c)
	}
}

// TestSweepDeterministic: two full pinned sweeps against fresh in-process
// servers render byte-identical tables — the property golden pinning
// stands on. Run under -race this also exercises the embedded server's
// real concurrency.
func TestSweepDeterministic(t *testing.T) {
	render := func() string {
		tbl, err := GoldenSweepTable()
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		tbl.Render(&b)
		return b.String()
	}
	first := render()
	second := render()
	if first != second {
		t.Fatalf("two pinned sweeps differ:\n--- first\n%s\n--- second\n%s", first, second)
	}
}

// TestSweepFindsKnee: the pinned golden configuration must saturate — a
// sweep that never finds its knee pins a vacuous exhibit.
func TestSweepFindsKnee(t *testing.T) {
	target, err := NewInproc(GoldenInprocConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	rep, err := Sweep(context.Background(), target, GoldenSweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	knee, ok := rep.Knee()
	if !ok {
		t.Fatal("the pinned sweep found no knee")
	}
	if rep.KneeIndex == 0 {
		t.Error("knee at the first step: the grid starts beyond capacity, lower it")
	}
	if knee.Rejected == 0 && rep.Config.P99Budget == 0 {
		t.Error("knee tripped with no evidence")
	}
	for i, s := range rep.Steps {
		if s.Offered != s.OK+s.Rejected+s.Errors {
			t.Errorf("step %d: offered %d != ok %d + rejected %d + errors %d", i, s.Offered, s.OK, s.Rejected, s.Errors)
		}
		if s.Errors != 0 {
			t.Errorf("step %d: %d errors in a deterministic sweep", i, s.Errors)
		}
	}
}

// TestSweepValidation: bad grids are refused up front.
func TestSweepValidation(t *testing.T) {
	target, err := NewInproc(InprocConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	bad := []SweepConfig{
		{StepDur: 10},                          // empty grid
		{Rates: []float64{1, -2}, StepDur: 10}, // negative rate
		{Rates: []float64{1}, StepDur: 0},      // no duration
	}
	for i, cfg := range bad {
		if _, err := Sweep(context.Background(), target, cfg); err == nil {
			t.Errorf("case %d: want a validation error", i)
		}
	}
}

func TestHistQuantile(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("test_latency", "t", []float64{0.1, 0.5, 1, 5})
	if got := HistQuantile(h, 0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	// 10 observations in (0.1, 0.5]: the median interpolates inside it.
	for i := 0; i < 10; i++ {
		h.Observe(0.3)
	}
	got := HistQuantile(h, 0.5)
	if got <= 0.1 || got > 0.5 {
		t.Errorf("p50 = %v, want inside (0.1, 0.5]", got)
	}
	// Load the +Inf bucket; extreme quantiles clamp to the top bound.
	for i := 0; i < 90; i++ {
		h.Observe(10)
	}
	if got := HistQuantile(h, 0.99); got != 5 {
		t.Errorf("p99 with mass at +Inf = %v, want the top bound 5", got)
	}
}

package load

import (
	"fmt"
	"math"
	"sort"

	"exaresil/internal/rng"
	"exaresil/internal/serve"
)

// The arrival processes Generate supports.
const (
	// ProcessPoisson draws exponential inter-arrival gaps against the
	// profile's rate envelope and thins them down to the instantaneous
	// rate (Lewis & Shedler) — an open-loop nonhomogeneous Poisson stream.
	ProcessPoisson = "poisson"
	// ProcessUniform paces arrivals deterministically at the instantaneous
	// rate: the gap after an arrival at time t is 1/r(t). No randomness
	// touches the timeline; only spec popularity draws consume the seed.
	ProcessUniform = "uniform"
)

// Arrival is one generated request: a spec to submit at an offset from
// the stream's start.
type Arrival struct {
	// At is the arrival offset in seconds.
	At float64
	// Rank is the spec's popularity rank (0 = most popular).
	Rank int
	// Spec is the request to submit.
	Spec serve.Spec
}

// GenSpec configures one generated stream.
type GenSpec struct {
	// Seed drives every random draw. Equal specs with equal seeds produce
	// byte-identical arrival sequences regardless of GOMAXPROCS or
	// scheduling: generation is a single deterministic walk.
	Seed uint64
	// Profile is the rate function r(t).
	Profile Profile
	// Process selects the arrival process (default ProcessPoisson).
	Process string
	// Vocab is the ranked spec vocabulary; index = popularity rank.
	Vocab []serve.Spec
	// ZipfS is the popularity exponent: rank r is drawn with weight
	// 1/(r+1)^s. Zero means uniform popularity.
	ZipfS float64
	// MaxArrivals bounds the stream length (default 1<<20); exceeding it
	// is an error, catching runaway rate*duration products before they
	// eat the heap.
	MaxArrivals int
}

// validate normalizes and checks the spec, returning the process name.
func (gs GenSpec) validate() (string, error) {
	if err := gs.Profile.Validate(); err != nil {
		return "", err
	}
	if len(gs.Vocab) == 0 {
		return "", fmt.Errorf("generate: vocabulary is empty")
	}
	if gs.ZipfS < 0 {
		return "", fmt.Errorf("generate: zipf exponent must be non-negative, got %v", gs.ZipfS)
	}
	proc := gs.Process
	if proc == "" {
		proc = ProcessPoisson
	}
	if proc != ProcessPoisson && proc != ProcessUniform {
		return "", fmt.Errorf("generate: unknown process %q (want %s or %s)", proc, ProcessPoisson, ProcessUniform)
	}
	return proc, nil
}

// Generate produces the arrival stream for gs. The timeline source and the
// popularity source are independent substreams of the seed, so switching
// the arrival process never reshuffles which specs are popular.
func Generate(gs GenSpec) ([]Arrival, error) {
	proc, err := gs.validate()
	if err != nil {
		return nil, err
	}
	maxN := gs.MaxArrivals
	if maxN <= 0 {
		maxN = 1 << 20
	}
	pop, err := NewPopularity(len(gs.Vocab), gs.ZipfS)
	if err != nil {
		return nil, err
	}
	// Substream 0 owns the timeline, substream 1 the popularity draws.
	timeRnd := rng.New(rng.CellSeed(gs.Seed, 0))
	popRnd := rng.New(rng.CellSeed(gs.Seed, 1))

	dur := gs.Profile.Duration()
	var out []Arrival
	emit := func(t float64) error {
		if len(out) >= maxN {
			return fmt.Errorf("generate: stream exceeds %d arrivals (rate*duration too large?)", maxN)
		}
		rank := pop.Rank(popRnd.Float64())
		out = append(out, Arrival{At: t, Rank: rank, Spec: gs.Vocab[rank]})
		return nil
	}

	switch proc {
	case ProcessPoisson:
		rmax := gs.Profile.MaxRate()
		if rmax <= 0 {
			return nil, fmt.Errorf("generate: profile never exceeds rate 0")
		}
		for t := timeRnd.Exp(rmax); t < dur; t += timeRnd.Exp(rmax) {
			// Thinning: keep the candidate with probability r(t)/rmax.
			if timeRnd.Float64()*rmax < gs.Profile.Rate(t) {
				if err := emit(t); err != nil {
					return nil, err
				}
			}
		}
	case ProcessUniform:
		// Deterministic pacing; a zero-rate stretch is crossed in fixed
		// idleStep hops so the walk always terminates.
		const idleStep = 0.25
		for t := 0.0; t < dur; {
			r := gs.Profile.Rate(t)
			if r <= 0 {
				t += idleStep
				continue
			}
			t += 1 / r
			if t >= dur {
				break
			}
			if err := emit(t); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Popularity is a Zipf(s) law over K ranks: rank r carries weight
// 1/(r+1)^s. Rank 0 is always the most popular; the ranking is a property
// of the law, not of any seed.
type Popularity struct {
	cdf []float64
}

// NewPopularity builds the law for k ranks with exponent s (0 = uniform).
func NewPopularity(k int, s float64) (*Popularity, error) {
	if k <= 0 {
		return nil, fmt.Errorf("popularity: need at least one rank, got %d", k)
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("popularity: exponent must be a non-negative finite value, got %v", s)
	}
	cdf := make([]float64, k)
	var sum float64
	for r := 0; r < k; r++ {
		sum += math.Pow(float64(r+1), -s)
		cdf[r] = sum
	}
	for r := range cdf {
		cdf[r] /= sum
	}
	return &Popularity{cdf: cdf}, nil
}

// Ranks reports the number of ranks.
func (p *Popularity) Ranks() int { return len(p.cdf) }

// Weight reports rank r's probability mass.
func (p *Popularity) Weight(r int) float64 {
	if r == 0 {
		return p.cdf[0]
	}
	return p.cdf[r] - p.cdf[r-1]
}

// Rank maps one uniform draw u in [0, 1) to a rank by inverse CDF.
func (p *Popularity) Rank(u float64) int {
	return sort.SearchFloat64s(p.cdf, u)
}

// DefaultVocab builds a k-entry ranked vocabulary of cheap, mutually
// distinct specs over the experiments registry: fig1 trial runs whose
// per-rank seeds give each rank its own cache key. Load tools use it when
// the caller does not hand-pick specs.
func DefaultVocab(k int) []serve.Spec {
	return TrialsVocab(k, 2)
}

// TrialsVocab is DefaultVocab with an explicit trial count per spec:
// heavier trials make each job proportionally more expensive, which load
// soaks use to build queue pressure at modest request rates. TrialsVocab(k, 2)
// is exactly DefaultVocab(k), so the pinned golden sweep is unaffected.
func TrialsVocab(k, trials int) []serve.Spec {
	out := make([]serve.Spec, k)
	for i := range out {
		out[i] = serve.Spec{Exhibit: "fig1", Trials: trials, Seed: uint64(i + 1)}
	}
	return out
}

package load

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"exaresil/internal/obs"
	"exaresil/internal/serveclient"
)

// Sample is one arrival's observed outcome.
type Sample struct {
	// Class is OutcomeOK, OutcomeRejected, or OutcomeError.
	Class string
	// Cache is the server's cache disposition when the request completed
	// (hit, miss, joined).
	Cache string
	// Latency is the submit-to-terminal latency in seconds (virtual for
	// the in-process target, wall-clock for HTTP). Zero for rejects.
	Latency float64
}

// Counters is the cumulative server-side view a target exposes — the
// cache skew evidence the analyzer differences per sweep step. The
// in-process target reads its obs registry directly; the HTTP target
// scrapes GET /metrics.
type Counters struct {
	CacheHits   uint64
	CacheJoined uint64
	CacheMisses uint64
	Rejected    uint64
}

// Target serves one arrival schedule and reports a sample per arrival, in
// arrival order. Drain settles anything still in flight after a schedule;
// Counters reports the cumulative server-side counters (before, between,
// or after schedules).
type Target interface {
	RunSchedule(ctx context.Context, arrivals []Arrival) ([]Sample, error)
	Drain(ctx context.Context) error
	Counters() (Counters, error)
}

// HTTPTarget drives a live exaserve or mesh over HTTP: open-loop
// wall-clock pacing, one goroutine per in-flight arrival, client-side
// latency histograms, and /metrics scraping for the cache counters.
type HTTPTarget struct {
	// Client issues the requests (serveclient.New against one or more
	// endpoints).
	Client *serveclient.Client
	// Base is the metrics endpoint's base URL (the first client endpoint
	// works for meshes too: the coordinator merges replica registries).
	Base string
	// Speed compresses time: arrival offsets are divided by Speed, so 2
	// replays a trace twice as fast (default 1).
	Speed float64
	// Latency, when non-nil, receives every successful request's
	// wall-clock latency — the client-side histogram exaload run reports
	// from.
	Latency *obs.Histogram
	// HTTP fetches /metrics (default http.DefaultClient).
	HTTP *http.Client
}

// RunSchedule issues the arrivals open-loop: each fires at its scheduled
// offset whether or not earlier ones answered. It returns one sample per
// arrival, in arrival order.
func (t *HTTPTarget) RunSchedule(ctx context.Context, arrivals []Arrival) ([]Sample, error) {
	speed := t.Speed
	if speed <= 0 {
		speed = 1
	}
	samples := make([]Sample, len(arrivals))
	start := time.Now()
	var wg sync.WaitGroup
	for i, a := range arrivals {
		due := start.Add(time.Duration(a.At / speed * float64(time.Second)))
		if d := time.Until(due); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				wg.Wait()
				return nil, ctx.Err()
			}
		}
		if ctx.Err() != nil {
			wg.Wait()
			return nil, ctx.Err()
		}
		wg.Add(1)
		go func(i int, a Arrival) {
			defer wg.Done()
			out := t.Client.Issue(ctx, a.Spec)
			s := Sample{Latency: out.Latency.Seconds(), Cache: out.Cache}
			switch out.Class {
			case serveclient.IssueOK:
				s.Class = OutcomeOK
				t.Latency.Observe(s.Latency)
			case serveclient.IssueRejected:
				s.Class = OutcomeRejected
				s.Latency = 0
			default:
				s.Class = OutcomeError
			}
			samples[i] = s
		}(i, a)
	}
	wg.Wait()
	return samples, ctx.Err()
}

// Drain is a no-op: RunSchedule already waits for every issued request to
// answer before returning.
func (t *HTTPTarget) Drain(context.Context) error { return nil }

// Counters scrapes GET /metrics and sums the cache and rejection counters
// across replica labels.
func (t *HTTPTarget) Counters() (Counters, error) {
	hc := t.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Get(strings.TrimRight(t.Base, "/") + "/metrics")
	if err != nil {
		return Counters{}, fmt.Errorf("scrape metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Counters{}, fmt.Errorf("scrape metrics: HTTP %d", resp.StatusCode)
	}
	var c Counters
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "exaresil_serve_cache_requests_total"):
			v, outcome := parseSeries(line)
			switch outcome["outcome"] {
			case "hit":
				c.CacheHits += v
			case "joined":
				c.CacheJoined += v
			case "miss":
				c.CacheMisses += v
			}
		case strings.HasPrefix(line, "exaresil_serve_queue_rejections_total"):
			v, _ := parseSeries(line)
			c.Rejected += v
		}
	}
	if err := sc.Err(); err != nil {
		return Counters{}, fmt.Errorf("scrape metrics: %w", err)
	}
	return c, nil
}

// HistQuantile estimates the q-th quantile from a histogram's cumulative
// buckets by linear interpolation inside the crossing bucket — the same
// estimate a Prometheus histogram_quantile would give. The final +Inf
// bucket reports its lower bound. Empty histograms report zero.
func HistQuantile(h *obs.Histogram, q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	bounds, cum := h.Buckets()
	want := q * float64(total)
	for i, c := range cum {
		if float64(c) < want {
			continue
		}
		if i >= len(bounds) {
			// +Inf bucket: the highest finite bound is the best estimate.
			if len(bounds) == 0 {
				return 0
			}
			return bounds[len(bounds)-1]
		}
		lo, loCount := 0.0, uint64(0)
		if i > 0 {
			lo, loCount = bounds[i-1], cum[i-1]
		}
		width := float64(c - loCount)
		if width == 0 {
			return bounds[i]
		}
		return lo + (bounds[i]-lo)*(want-float64(loCount))/width
	}
	return bounds[len(bounds)-1]
}

// parseSeries splits one Prometheus text-format sample line into its
// value and label map. Unparsable lines count zero.
func parseSeries(line string) (uint64, map[string]string) {
	labels := map[string]string{}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line, '}')
		if j < i {
			return 0, labels
		}
		for _, kv := range strings.Split(line[i+1:j], ",") {
			k, v, ok := strings.Cut(kv, "=")
			if ok {
				labels[strings.TrimSpace(k)] = strings.Trim(strings.TrimSpace(v), `"`)
			}
		}
		rest = line[j+1:]
	} else if i := strings.IndexByte(line, ' '); i >= 0 {
		rest = line[i:]
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil || f < 0 {
		return 0, labels
	}
	return uint64(f), labels
}

package load

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"time"

	"exaresil/internal/experiments"
	"exaresil/internal/obs"
	"exaresil/internal/serve"
)

// InprocConfig assembles a deterministic in-process target.
type InprocConfig struct {
	// QueueDepth is the serve pool's admission bound (default 4). The
	// single worker plus this queue is the whole capacity model: arrivals
	// beyond it are 429s.
	QueueDepth int
	// CacheSize bounds the LRU result cache (default 8 — deliberately
	// smaller than realistic vocabularies, so Zipf tails keep missing).
	CacheSize int
	// StoreSize bounds job retention (default 4096).
	StoreSize int
	// Service maps a spec to its execution cost in virtual seconds
	// (default: 0.8s flat).
	Service func(serve.Spec) float64
}

// Inproc embeds a real serve.Server — admission, sharded queue,
// single-flight result cache, job store, the exact code paths production
// traffic takes — behind a gated stub runner and a virtual clock. Real
// time never enters the measurement: each execution costs Service(spec)
// virtual seconds, queue waits follow from the FIFO recurrence, and the
// target releases the gate only when the virtual clock says an execution
// has finished. Every admission outcome (hit, join, miss, 429) and every
// reported latency is therefore a pure function of the arrival schedule —
// byte-identical across runs, machines, and GOMAXPROCS settings.
//
// The single-worker restriction is what keeps the mirror exact: with one
// shard the pool is strictly FIFO, so the target's queue model and the
// server's agree at every arrival.
type Inproc struct {
	srv     *serve.Server
	reg     *obs.Registry
	svc     func(serve.Spec) float64
	permits chan struct{}

	now   float64 // virtual clock, seconds
	execs []*inExec
	live  map[string]*inExec
}

// inExec mirrors one admitted execution: the flight's lead job and the
// virtual time it completes.
type inExec struct {
	key        string
	jobID      string
	completeVT float64
}

// NewInproc boots the embedded server.
func NewInproc(cfg InprocConfig) (*Inproc, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 8
	}
	if cfg.StoreSize <= 0 {
		cfg.StoreSize = 4096
	}
	svc := cfg.Service
	if svc == nil {
		svc = func(serve.Spec) float64 { return 0.8 }
	}
	t := &Inproc{
		reg:     obs.NewRegistry(),
		svc:     svc,
		permits: make(chan struct{}, 1),
		live:    map[string]*inExec{},
	}
	srv, err := serve.New(serve.Config{
		Workers:    1,
		QueueDepth: cfg.QueueDepth,
		CacheSize:  cfg.CacheSize,
		StoreSize:  cfg.StoreSize,
		Obs:        t.reg,
		Runner: func(ctx context.Context, _ experiments.Config, s serve.Spec) (*serve.Result, error) {
			select {
			case <-t.permits:
				return stubResult(s), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	if err != nil {
		return nil, fmt.Errorf("inproc target: %w", err)
	}
	t.srv = srv
	return t, nil
}

// stubResult builds a deterministic result for a spec; the load model
// cares about timing and admission, not simulation output.
func stubResult(s serve.Spec) *serve.Result {
	csv := "spec,key\n" + s.Canonical() + "," + s.Key() + "\n"
	sum := sha256.Sum256([]byte(csv))
	return &serve.Result{
		CSV:    []byte(csv),
		Text:   csv,
		Digest: hex.EncodeToString(sum[:]),
	}
}

// settleTimeout bounds how long the target waits for the embedded server
// to observe a permit release — pure bookkeeping latency, never part of
// the virtual measurement.
const settleTimeout = 30 * time.Second

// waitUntil polls cond until it holds or the timeout expires.
func waitUntil(what string, cond func() bool) error {
	deadline := time.Now().Add(settleTimeout)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("inproc target: timed out waiting for %s", what)
		}
		time.Sleep(50 * time.Microsecond)
	}
	return nil
}

// releaseHead lets the oldest admitted execution finish: hand the gated
// runner one permit, wait until its lead job settles, and — when another
// flight is queued behind it — wait until the worker has picked that one
// up, so the next admission decision sees the queue state the virtual
// model predicts.
func (t *Inproc) releaseHead() error {
	head := t.execs[0]
	t.permits <- struct{}{}
	err := waitUntil(fmt.Sprintf("job %s to settle", head.jobID), func() bool {
		v, ok := t.srv.Job(head.jobID)
		return !ok || v.State == "done" || v.State == "failed" || v.State == "canceled"
	})
	if err != nil {
		return err
	}
	if t.live[head.key] == head {
		delete(t.live, head.key)
	}
	t.execs = t.execs[1:]
	if len(t.execs) > 0 {
		next := t.execs[0]
		if err := waitUntil(fmt.Sprintf("job %s to start", next.jobID), func() bool {
			v, ok := t.srv.Job(next.jobID)
			return ok && v.State != "queued"
		}); err != nil {
			return err
		}
	}
	return nil
}

// advanceTo moves the virtual clock to vt, completing every execution the
// model says finishes by then.
func (t *Inproc) advanceTo(vt float64) error {
	for len(t.execs) > 0 && t.execs[0].completeVT <= vt {
		if err := t.releaseHead(); err != nil {
			return err
		}
	}
	if vt > t.now {
		t.now = vt
	}
	return nil
}

// issue submits one arrival at the current virtual time and classifies it.
func (t *Inproc) issue(a Arrival) (Sample, error) {
	view, err := t.srv.Submit(a.Spec)
	if err != nil {
		if errors.Is(err, serve.ErrSaturated) {
			return Sample{Class: OutcomeRejected}, nil
		}
		return Sample{Class: OutcomeError}, nil
	}
	switch view.Cache {
	case serve.CacheHit:
		return Sample{Class: OutcomeOK, Cache: view.Cache}, nil
	case serve.CacheJoined:
		ex, ok := t.live[a.Spec.Key()]
		if !ok {
			return Sample{}, fmt.Errorf("inproc target: joined flight for %s has no live execution", a.Spec.Key())
		}
		return Sample{Class: OutcomeOK, Cache: view.Cache, Latency: ex.completeVT - t.now}, nil
	case serve.CacheMiss:
		start := t.now
		if n := len(t.execs); n > 0 {
			start = t.execs[n-1].completeVT
		}
		ex := &inExec{key: a.Spec.Key(), jobID: view.ID, completeVT: start + t.svc(a.Spec)}
		t.execs = append(t.execs, ex)
		t.live[ex.key] = ex
		if len(t.execs) == 1 {
			// The worker was idle: wait for pickup so the queue the next
			// admission sees matches the model.
			if err := waitUntil(fmt.Sprintf("job %s to start", ex.jobID), func() bool {
				v, ok := t.srv.Job(ex.jobID)
				return ok && v.State != "queued"
			}); err != nil {
				return Sample{}, err
			}
		}
		return Sample{Class: OutcomeOK, Cache: view.Cache, Latency: ex.completeVT - t.now}, nil
	default:
		return Sample{}, fmt.Errorf("inproc target: unexpected cache disposition %q", view.Cache)
	}
}

// RunSchedule serves the arrivals in virtual time. Offsets are relative
// to the schedule's start, which is wherever the target's clock stands
// (schedules concatenate).
func (t *Inproc) RunSchedule(ctx context.Context, arrivals []Arrival) ([]Sample, error) {
	base := t.now
	samples := make([]Sample, len(arrivals))
	for i, a := range arrivals {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := t.advanceTo(base + a.At); err != nil {
			return nil, err
		}
		s, err := t.issue(a)
		if err != nil {
			return nil, err
		}
		samples[i] = s
	}
	return samples, nil
}

// Drain completes every outstanding execution and advances the clock past
// the last completion, isolating sweep steps from each other.
func (t *Inproc) Drain(ctx context.Context) error {
	for len(t.execs) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		last := t.execs[len(t.execs)-1].completeVT
		if err := t.advanceTo(last); err != nil {
			return err
		}
	}
	return nil
}

// Counters reads the embedded server's obs registry — the same families
// GET /metrics would expose.
func (t *Inproc) Counters() (Counters, error) {
	hits := t.reg.Counter("exaresil_serve_cache_requests_total", "result cache outcomes at submit", obs.L("outcome", "hit"))
	joined := t.reg.Counter("exaresil_serve_cache_requests_total", "result cache outcomes at submit", obs.L("outcome", "joined"))
	misses := t.reg.Counter("exaresil_serve_cache_requests_total", "result cache outcomes at submit", obs.L("outcome", "miss"))
	rej := t.reg.Counter("exaresil_serve_queue_rejections_total", "submissions rejected with 429 because the target shard queue was full")
	return Counters{
		CacheHits:   hits.Value(),
		CacheJoined: joined.Value(),
		CacheMisses: misses.Value(),
		Rejected:    rej.Value(),
	}, nil
}

// Close drains the virtual queue and shuts the embedded server down.
func (t *Inproc) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), settleTimeout)
	defer cancel()
	if err := t.Drain(ctx); err != nil {
		return err
	}
	return t.srv.Drain(ctx)
}

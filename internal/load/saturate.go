package load

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"exaresil/internal/report"
	"exaresil/internal/rng"
	"exaresil/internal/serve"
)

// SweepConfig shapes one saturation sweep: the rate grid, the traffic
// shape at each step, and the knee budgets.
type SweepConfig struct {
	// Rates is the offered arrival-rate grid in requests per second,
	// swept in order (ascending grids make the knee reading natural).
	Rates []float64
	// StepDur is each step's length in seconds (virtual for the
	// in-process target, wall-clock for HTTP).
	StepDur float64
	// Seed derives each step's generator seed (step i uses
	// rng.CellSeed(Seed, i)); one seed pins the entire sweep.
	Seed uint64
	// Process is the arrival process (default ProcessPoisson).
	Process string
	// Vocab is the ranked spec vocabulary (default DefaultVocab(64)).
	Vocab []serve.Spec
	// ZipfS is the popularity exponent (0 = uniform).
	ZipfS float64
	// P99Budget is the latency knee threshold in seconds (0 disables the
	// latency criterion).
	P99Budget float64
	// RejectBudget is the 429-rate knee threshold as a fraction of
	// offered load (0 disables the reject criterion).
	RejectBudget float64
	// KeepSteps retains every step's samples on the report (memory for
	// analysis; the CSV never includes them).
	KeepSteps bool
}

// validate normalizes the config.
func (c *SweepConfig) validate() error {
	if len(c.Rates) == 0 {
		return fmt.Errorf("sweep: rate grid is empty")
	}
	for i, r := range c.Rates {
		if r <= 0 {
			return fmt.Errorf("sweep: rate %d (%v) must be positive", i+1, r)
		}
	}
	if c.StepDur <= 0 {
		return fmt.Errorf("sweep: step duration must be positive, got %v", c.StepDur)
	}
	if len(c.Vocab) == 0 {
		c.Vocab = DefaultVocab(64)
	}
	if c.Process == "" {
		c.Process = ProcessPoisson
	}
	return nil
}

// Step is one sweep step's measurement.
type Step struct {
	// Rate is the offered rate in requests per second.
	Rate float64
	// Offered, OK, Rejected, Errors partition the step's arrivals.
	Offered, OK, Rejected, Errors int
	// Throughput is completed requests per second (OK / StepDur).
	Throughput float64
	// P50, P95, P99 are latency percentiles over the step's completed
	// requests, in seconds.
	P50, P95, P99 float64
	// CacheHits, CacheJoined, CacheMisses are the server-side cache
	// outcome deltas for the step. The server counts a saturated
	// admission as a miss before rejecting it, so misses include the
	// rejected arrivals.
	CacheHits, CacheJoined, CacheMisses uint64
	// HitRate is CacheHits over all cache lookups in the step.
	HitRate float64
	// Samples holds the per-arrival outcomes when SweepConfig.KeepSteps
	// was set.
	Samples []Sample
}

// RejectRate is the step's 429 fraction of offered load.
func (s Step) RejectRate() float64 {
	if s.Offered == 0 {
		return 0
	}
	return float64(s.Rejected) / float64(s.Offered)
}

// Report is a finished sweep: the per-step grid and the knee verdict.
type Report struct {
	Config SweepConfig
	Steps  []Step
	// KneeIndex is the first step that crossed a budget, -1 when the
	// sweep never saturated.
	KneeIndex int
	// KneeReason names the budget that tripped.
	KneeReason string
}

// Knee reports the knee step, if any.
func (r *Report) Knee() (Step, bool) {
	if r.KneeIndex < 0 || r.KneeIndex >= len(r.Steps) {
		return Step{}, false
	}
	return r.Steps[r.KneeIndex], true
}

// Sweep drives the target across the rate grid: each step generates a
// fresh seed-derived arrival schedule at that rate, serves it, drains,
// and differences the server-side counters. Knee detection runs over the
// finished grid: the knee is the first step whose p99 exceeds P99Budget
// or whose reject rate exceeds RejectBudget.
func Sweep(ctx context.Context, target Target, cfg SweepConfig) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rep := &Report{Config: cfg, KneeIndex: -1}
	before, err := target.Counters()
	if err != nil {
		return nil, fmt.Errorf("sweep: read counters: %w", err)
	}
	for i, rate := range cfg.Rates {
		arrivals, err := Generate(GenSpec{
			Seed:    rng.CellSeed(cfg.Seed, uint64(i)),
			Profile: Profile{Segments: []Segment{{Kind: KindConstant, Rate: rate, Dur: cfg.StepDur}}},
			Process: cfg.Process,
			Vocab:   cfg.Vocab,
			ZipfS:   cfg.ZipfS,
		})
		if err != nil {
			return nil, fmt.Errorf("sweep step %d: %w", i+1, err)
		}
		samples, err := target.RunSchedule(ctx, arrivals)
		if err != nil {
			return nil, fmt.Errorf("sweep step %d (rate %v): %w", i+1, rate, err)
		}
		if err := target.Drain(ctx); err != nil {
			return nil, fmt.Errorf("sweep step %d (rate %v): drain: %w", i+1, rate, err)
		}
		after, err := target.Counters()
		if err != nil {
			return nil, fmt.Errorf("sweep step %d: read counters: %w", i+1, err)
		}
		step := measureStep(rate, cfg.StepDur, samples, before, after)
		if cfg.KeepSteps {
			step.Samples = samples
		}
		rep.Steps = append(rep.Steps, step)
		before = after
	}
	for i, s := range rep.Steps {
		switch {
		case cfg.P99Budget > 0 && s.OK > 0 && s.P99 > cfg.P99Budget:
			rep.KneeIndex, rep.KneeReason = i,
				fmt.Sprintf("p99 %s s exceeds the %s s budget", report.F(s.P99), report.F(cfg.P99Budget))
		case cfg.RejectBudget > 0 && s.RejectRate() > cfg.RejectBudget:
			rep.KneeIndex, rep.KneeReason = i,
				fmt.Sprintf("reject rate %s exceeds the %s budget", report.F(s.RejectRate()), report.F(cfg.RejectBudget))
		default:
			continue
		}
		break
	}
	return rep, nil
}

// measureStep folds one step's samples and counter deltas into a Step.
func measureStep(rate, stepDur float64, samples []Sample, before, after Counters) Step {
	st := Step{
		Rate:        rate,
		Offered:     len(samples),
		CacheHits:   after.CacheHits - before.CacheHits,
		CacheJoined: after.CacheJoined - before.CacheJoined,
		CacheMisses: after.CacheMisses - before.CacheMisses,
	}
	var lats []float64
	for _, s := range samples {
		switch s.Class {
		case OutcomeOK:
			st.OK++
			lats = append(lats, s.Latency)
		case OutcomeRejected:
			st.Rejected++
		default:
			st.Errors++
		}
	}
	st.Throughput = float64(st.OK) / stepDur
	sort.Float64s(lats)
	st.P50 = pctl(lats, 0.50)
	st.P95 = pctl(lats, 0.95)
	st.P99 = pctl(lats, 0.99)
	if lookups := st.CacheHits + st.CacheJoined + st.CacheMisses; lookups > 0 {
		st.HitRate = float64(st.CacheHits) / float64(lookups)
	}
	return st
}

// pctl is the q-th percentile of sorted values (nearest-rank, matching
// exasoak's estimator); empty input reports zero.
func pctl(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(float64(len(sorted))*q+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Table renders the report as the repository's standard exhibit table —
// the form exaload prints, exacheck digests, and results/golden pins.
func (r *Report) Table() *report.Table {
	t := report.New("Saturation sweep: offered rate vs latency, rejects, and cache skew",
		"rate_rps", "offered", "ok", "rejected", "errors", "throughput_rps",
		"p50_s", "p95_s", "p99_s", "cache_hits", "cache_joined", "cache_misses", "hit_rate", "knee")
	t.AddNote("process=%s step_dur=%ss zipf_s=%s vocab=%d seed=%d",
		r.Config.Process, report.F(r.Config.StepDur), report.F(r.Config.ZipfS), len(r.Config.Vocab), r.Config.Seed)
	t.AddNote("knee budgets: p99 <= %s s, reject rate <= %s", report.F(r.Config.P99Budget), report.F(r.Config.RejectBudget))
	if knee, ok := r.Knee(); ok {
		t.AddNote("knee at %s req/s: %s", report.F(knee.Rate), r.KneeReason)
	} else {
		t.AddNote("no knee: every step stayed inside the budgets")
	}
	for i, s := range r.Steps {
		marker := ""
		if i == r.KneeIndex {
			marker = "*"
		}
		t.AddRow(report.F(s.Rate), report.I(s.Offered), report.I(s.OK), report.I(s.Rejected),
			report.I(s.Errors), report.F(s.Throughput),
			report.F(s.P50), report.F(s.P95), report.F(s.P99),
			report.I(int(s.CacheHits)), report.I(int(s.CacheJoined)), report.I(int(s.CacheMisses)),
			report.F(s.HitRate), marker)
	}
	return t
}

// WriteCSV writes the capacity-planning report CSV.
func (r *Report) WriteCSV(w io.Writer) error {
	return r.Table().WriteCSV(w)
}

// Summary renders the human-readable verdict under the table.
func (r *Report) Summary() string {
	var b strings.Builder
	if knee, ok := r.Knee(); ok {
		fmt.Fprintf(&b, "knee: %s req/s (step %d/%d) — %s\n",
			report.F(knee.Rate), r.KneeIndex+1, len(r.Steps), r.KneeReason)
		fmt.Fprintf(&b, "capacity guidance: plan below %s req/s; at the knee the fleet completed %s req/s with p99 %ss and %s rejects\n",
			report.F(knee.Rate), report.F(knee.Throughput), report.F(knee.P99), report.I(knee.Rejected))
	} else {
		fmt.Fprintf(&b, "no knee found across %d steps (max offered %s req/s); raise the grid to find capacity\n",
			len(r.Steps), report.F(r.Steps[len(r.Steps)-1].Rate))
	}
	return b.String()
}

// GoldenSweepTable runs the pinned deterministic sweep — a fresh
// in-process single-replica exaserve, the pinned seed/grid/vocabulary —
// and renders its table. cmd/exacheck digests it into the golden
// manifest; cmd/exaload runs the same configuration via `sweep -inproc`
// defaults, so the CLI and the gate can never drift apart.
func GoldenSweepTable() (*report.Table, error) {
	target, err := NewInproc(GoldenInprocConfig())
	if err != nil {
		return nil, err
	}
	defer target.Close()
	rep, err := Sweep(context.Background(), target, GoldenSweepConfig())
	if err != nil {
		return nil, err
	}
	return rep.Table(), nil
}

// GoldenSweepConfig is the pinned sweep grid.
func GoldenSweepConfig() SweepConfig {
	return SweepConfig{
		Rates:        []float64{0.5, 1, 2, 4, 8},
		StepDur:      40,
		Seed:         20170529, // the paper-epoch seed the exhibits use
		Process:      ProcessPoisson,
		Vocab:        DefaultVocab(64),
		ZipfS:        1.1,
		P99Budget:    5,
		RejectBudget: 0.05,
	}
}

// GoldenInprocConfig is the pinned in-process capacity model: one worker,
// four queue slots, an eight-entry cache under a 64-spec Zipf vocabulary,
// 0.8 virtual seconds per execution.
func GoldenInprocConfig() InprocConfig {
	return InprocConfig{QueueDepth: 4, CacheSize: 8}
}

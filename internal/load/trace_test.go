package load

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"exaresil/internal/serve"
)

func sampleTrace() *Trace {
	return &Trace{
		Seed: 42,
		Note: "profile=constant:rate=5,dur=30",
		Events: []Event{
			{Offset: 0.25, Spec: serve.Spec{Exhibit: "fig1", Trials: 2, Seed: 1}, Outcome: OutcomeGenerated},
			{Offset: 0.75, Spec: serve.Spec{Exhibit: "fig1", Trials: 2, Seed: 3}, Outcome: OutcomeOK, Cache: "miss", Latency: 0.8},
			{Offset: 0.75, Spec: serve.Spec{Exhibit: "fig1", Trials: 2, Seed: 3}, Outcome: OutcomeOK, Cache: "hit"},
			{Offset: 1.5, Spec: serve.Spec{Exhibit: "fig1", Trials: 2, Seed: 9}, Outcome: OutcomeRejected},
		},
	}
}

// TestTraceRoundTrip: write → read → write reproduces both the structure
// and the bytes (the canonical-encoding property digests rely on).
func TestTraceRoundTrip(t *testing.T) {
	orig := sampleTrace()
	var buf1 bytes.Buffer
	if err := WriteTrace(&buf1, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != orig.Seed || got.Note != orig.Note {
		t.Errorf("header changed: seed %d note %q, want %d %q", got.Seed, got.Note, orig.Seed, orig.Note)
	}
	if !reflect.DeepEqual(got.Events, orig.Events) {
		t.Errorf("events changed across round trip:\n got %+v\nwant %+v", got.Events, orig.Events)
	}
	var buf2 bytes.Buffer
	if err := WriteTrace(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Error("re-encoding a read trace changed the bytes — encoding is not canonical")
	}
}

// TestTraceGeneratedRoundTrip: a generated stream survives trace encoding
// with identical spec keys and inter-arrival gaps.
func TestTraceGeneratedRoundTrip(t *testing.T) {
	arrivals, err := Generate(testGenSpec(5, 6, 20))
	if err != nil {
		t.Fatal(err)
	}
	tr := GeneratedTrace(arrivals, 5, "test")
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay := back.Arrivals()
	if len(replay) != len(arrivals) {
		t.Fatalf("replay has %d arrivals, want %d", len(replay), len(arrivals))
	}
	for i := range arrivals {
		if replay[i].Spec.Key() != arrivals[i].Spec.Key() {
			t.Fatalf("arrival %d spec key changed: %s vs %s", i, replay[i].Spec.Key(), arrivals[i].Spec.Key())
		}
		if replay[i].At != arrivals[i].At {
			t.Fatalf("arrival %d offset changed: %v vs %v", i, replay[i].At, arrivals[i].At)
		}
	}
}

func TestRecordedTrace(t *testing.T) {
	arrivals, err := Generate(testGenSpec(5, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	samples := make([]Sample, len(arrivals))
	for i := range samples {
		samples[i] = Sample{Class: OutcomeOK, Cache: "miss", Latency: 0.5}
	}
	tr, err := RecordedTrace(arrivals, samples, 5, "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != len(arrivals) {
		t.Fatalf("%d events, want %d", len(tr.Events), len(arrivals))
	}
	if _, err := RecordedTrace(arrivals, samples[:len(samples)-1], 5, "test"); err == nil {
		t.Error("mismatched arrival/sample lengths must error")
	}
}

// TestReadTraceRejects: every malformed condition errors, names the
// 1-based line, and nothing is silently skipped.
func TestReadTraceRejects(t *testing.T) {
	header := `{"format":"exaload-trace","version":1,"seed":1}` + "\n"
	event := `{"offset_s":1,"spec":{"exhibit":"fig1","trials":2,"seed":1},"outcome":"generated"}` + "\n"
	cases := []struct {
		name  string
		input string
		want  string // substring the error must carry
	}{
		{"empty input", "", "empty input"},
		{"wrong format", `{"format":"other","version":1}` + "\n", `format "other"`},
		{"wrong version", `{"format":"exaload-trace","version":9}` + "\n", "version 9 unsupported"},
		{"header unknown field", `{"format":"exaload-trace","version":1,"extra":1}` + "\n", `line 1`},
		{"truncated header", `{"format":"exaload-trace","version":1}`, "line 1: truncated"},
		{"truncated event", header + `{"offset_s":1`, "line 2: truncated"},
		{"event unknown field", header + `{"offset_s":1,"spec":{"exhibit":"fig1"},"outcome":"ok","surprise":true}` + "\n", `line 2`},
		{"glued records", header + strings.TrimSuffix(event, "\n") + strings.TrimSuffix(event, "\n") + "\n", "line 2: trailing data"},
		{"blank interior line", header + "\n" + event, "line 2: blank line"},
		{"non-JSON line", header + "not json\n", "line 2"},
		{"backwards offsets", header + event + `{"offset_s":0.5,"spec":{"exhibit":"fig1"},"outcome":"ok"}` + "\n", "line 3: offset 0.5 runs backwards"},
		{"missing spec", header + `{"offset_s":1,"spec":{},"outcome":"ok"}` + "\n", "line 2: event has no spec"},
		{"unknown outcome", header + `{"offset_s":1,"spec":{"exhibit":"fig1"},"outcome":"mystery"}` + "\n", `line 2: unknown outcome "mystery"`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadTrace(strings.NewReader(c.input))
			if err == nil {
				t.Fatalf("want an error containing %q, got nil", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestReadTraceEqualOffsets: simultaneous arrivals (equal offsets) are
// legal — only strictly decreasing offsets are torn.
func TestReadTraceEqualOffsets(t *testing.T) {
	input := `{"format":"exaload-trace","version":1}` + "\n" +
		`{"offset_s":1,"spec":{"exhibit":"fig1"},"outcome":"ok"}` + "\n" +
		`{"offset_s":1,"spec":{"exhibit":"fig1"},"outcome":"ok"}` + "\n"
	tr, err := ReadTrace(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 2 {
		t.Fatalf("%d events, want 2", len(tr.Events))
	}
}

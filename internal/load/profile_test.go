package load

import (
	"math"
	"strings"
	"testing"
)

func TestParseProfileRoundTrip(t *testing.T) {
	specs := []string{
		"constant:rate=5,dur=60",
		"ramp:from=1,to=20,dur=120",
		"diurnal:base=2,peak=12,period=60,dur=180",
		"burst:base=2,peak=30,period=10,duty=0.2,dur=60",
		"constant:rate=5,dur=30;ramp:from=5,to=0,dur=30",
	}
	for _, spec := range specs {
		p, err := ParseProfile(spec)
		if err != nil {
			t.Fatalf("ParseProfile(%q): %v", spec, err)
		}
		if got := p.String(); got != spec {
			t.Errorf("ParseProfile(%q).String() = %q, want round-trip", spec, got)
		}
		p2, err := ParseProfile(p.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", p.String(), err)
		}
		if p2.String() != p.String() {
			t.Errorf("re-parse changed profile: %q vs %q", p2.String(), p.String())
		}
	}
}

func TestParseProfileRejects(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the error
	}{
		{"", "empty"},
		{"constant", "kind:key=value"},
		{"warp:rate=1,dur=10", "unknown segment kind"},
		{"constant:rate=1,dur=10,color=red", "unknown key"},
		{"constant:rate=x,dur=10", "not a number"},
		{"constant:rate=1", "dur must be positive"},
		{"constant:rate=-1,dur=10", "non-negative"},
		{"burst:base=2,peak=1,period=5,duty=0.5,dur=10", "peak 1 below base 2"},
		{"burst:base=1,peak=2,period=5,duty=1.5,dur=10", "duty must be in (0, 1)"},
		{"diurnal:base=1,peak=2,dur=10", "period must be positive"},
		{"constant:rate=1,dur=10;;constant:rate=1,dur=10", "segment 2 is empty"},
	}
	for _, c := range cases {
		_, err := ParseProfile(c.spec)
		if err == nil {
			t.Errorf("ParseProfile(%q): want error containing %q, got nil", c.spec, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseProfile(%q): error %q does not mention %q", c.spec, err, c.want)
		}
	}
}

func TestProfileRateComposition(t *testing.T) {
	p, err := ParseProfile("constant:rate=4,dur=10;ramp:from=0,to=10,dur=10")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ t, want float64 }{
		{-1, 0},   // before the profile
		{0, 4},    // constant segment
		{9.99, 4}, // still constant
		{10, 0},   // ramp start (from=0)
		{15, 5},   // ramp midpoint
		{25, 0},   // past the end
	}
	for _, c := range cases {
		if got := p.Rate(c.t); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Rate(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if got := p.Duration(); got != 20 {
		t.Errorf("Duration() = %v, want 20", got)
	}
	if got := p.MaxRate(); got != 10 {
		t.Errorf("MaxRate() = %v, want 10", got)
	}
}

func TestProfileShapes(t *testing.T) {
	diurnal := Profile{Segments: []Segment{{Kind: KindDiurnal, Base: 2, Peak: 10, Period: 60, Dur: 60}}}
	if got := diurnal.Rate(0); math.Abs(got-2) > 1e-9 {
		t.Errorf("diurnal starts at %v, want base 2", got)
	}
	if got := diurnal.Rate(30); math.Abs(got-10) > 1e-9 {
		t.Errorf("diurnal mid-period is %v, want peak 10", got)
	}

	burst := Profile{Segments: []Segment{{Kind: KindBurst, Base: 1, Peak: 9, Period: 10, Duty: 0.3, Dur: 40}}}
	if got := burst.Rate(1); got != 9 {
		t.Errorf("burst at t=1 (inside duty) = %v, want 9", got)
	}
	if got := burst.Rate(5); got != 1 {
		t.Errorf("burst at t=5 (after duty) = %v, want 1", got)
	}
	if got := burst.Rate(11); got != 9 {
		t.Errorf("burst at t=11 (second period's duty) = %v, want 9", got)
	}
}

func TestProfileScale(t *testing.T) {
	p, err := ParseProfile("burst:base=2,peak=30,period=10,duty=0.2,dur=60")
	if err != nil {
		t.Fatal(err)
	}
	doubled := p.Scale(2)
	if got := doubled.Rate(1); got != 60 {
		t.Errorf("scaled burst peak = %v, want 60", got)
	}
	if got := doubled.Rate(5); got != 4 {
		t.Errorf("scaled burst base = %v, want 4", got)
	}
	// Scaling must not mutate the original.
	if got := p.Rate(1); got != 30 {
		t.Errorf("Scale mutated the receiver: Rate(1) = %v, want 30", got)
	}
	if got := doubled.Segments[0].Duty; got != 0.2 {
		t.Errorf("Scale touched duty: %v, want 0.2", got)
	}
}

package load

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"exaresil/internal/serve"
)

// The outcome classes an Event can record. OutcomeGenerated marks events
// written by the generator before any server saw them; the rest mirror
// the Sample classes the targets report.
const (
	OutcomeGenerated = "generated"
	OutcomeOK        = "ok"
	OutcomeRejected  = "rejected" // 429 backpressure
	OutcomeError     = "error"    // transport failure, 5xx, or a failed job
)

// Event is one line of a trace: a request, when it arrived, and (for
// recorded traces) how it went.
type Event struct {
	// Offset is the arrival offset in seconds from the stream start.
	// Offsets are non-decreasing within a trace.
	Offset float64 `json:"offset_s"`
	// Spec is the submitted request.
	Spec serve.Spec `json:"spec"`
	// Outcome classifies the result (OutcomeGenerated for unplayed
	// traces).
	Outcome string `json:"outcome"`
	// Cache is the server's cache disposition when known (hit, miss,
	// joined).
	Cache string `json:"cache,omitempty"`
	// Latency is the observed submit-to-terminal latency in seconds; zero
	// for generated or rejected events.
	Latency float64 `json:"latency_s,omitempty"`
}

// traceHeader is the first line of every trace file.
type traceHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Seed    uint64 `json:"seed,omitempty"`
	Note    string `json:"note,omitempty"`
}

const (
	traceFormat  = "exaload-trace"
	traceVersion = 1
)

// Trace is a recorded (or generated) request stream.
type Trace struct {
	// Seed is the generator seed that produced the stream, when known.
	Seed uint64
	// Note is a free-form provenance line (profile DSL, target address).
	Note string
	// Events are the stream in arrival order.
	Events []Event
}

// Arrivals converts the trace back into a replayable arrival schedule.
func (t *Trace) Arrivals() []Arrival {
	out := make([]Arrival, len(t.Events))
	for i, e := range t.Events {
		out[i] = Arrival{At: e.Offset, Spec: e.Spec}
	}
	return out
}

// WriteTrace writes the trace as versioned JSONL: one header line, then
// one line per event. The encoding is canonical — reading it back and
// rewriting it reproduces the bytes — so traces diff and digest cleanly.
func WriteTrace(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(traceHeader{Format: traceFormat, Version: traceVersion, Seed: t.Seed, Note: t.Note}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for i, e := range t.Events {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("trace: write event %d: %w", i+1, err)
		}
	}
	return bw.Flush()
}

// ReadTrace parses a JSONL trace. Every malformed condition is an error
// naming the 1-based line: unknown fields, truncated or non-JSON lines,
// a missing or mismatched header, blank interior lines, and offsets that
// run backwards. Nothing is silently skipped — a trace either replays
// exactly or not at all.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	line := 0
	readLine := func() (string, bool, error) {
		s, err := br.ReadString('\n')
		if err == io.EOF {
			if s == "" {
				return "", false, nil
			}
			// A final line without its newline: the file was truncated
			// mid-write; refuse rather than guess.
			return "", false, fmt.Errorf("trace: line %d: truncated (no trailing newline)", line+1)
		}
		if err != nil {
			return "", false, fmt.Errorf("trace: line %d: %w", line+1, err)
		}
		line++
		return strings.TrimSuffix(s, "\n"), true, nil
	}
	decodeStrict := func(s string, v any) error {
		dec := json.NewDecoder(bytes.NewReader([]byte(s)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(v); err != nil {
			return fmt.Errorf("trace: line %d: %v", line, err)
		}
		// Anything after the JSON value means two records were glued
		// together (a torn write).
		var extra json.RawMessage
		if err := dec.Decode(&extra); err != io.EOF {
			return fmt.Errorf("trace: line %d: trailing data after record", line)
		}
		return nil
	}

	hdrLine, ok, err := readLine()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("trace: empty input (no header line)")
	}
	var hdr traceHeader
	if err := decodeStrict(hdrLine, &hdr); err != nil {
		return nil, err
	}
	if hdr.Format != traceFormat {
		return nil, fmt.Errorf("trace: line 1: format %q is not %q", hdr.Format, traceFormat)
	}
	if hdr.Version != traceVersion {
		return nil, fmt.Errorf("trace: line 1: version %d unsupported (want %d)", hdr.Version, traceVersion)
	}

	t := &Trace{Seed: hdr.Seed, Note: hdr.Note}
	prev := 0.0
	for {
		s, ok, err := readLine()
		if err != nil {
			return nil, err
		}
		if !ok {
			return t, nil
		}
		if strings.TrimSpace(s) == "" {
			return nil, fmt.Errorf("trace: line %d: blank line inside trace", line)
		}
		var e Event
		if err := decodeStrict(s, &e); err != nil {
			return nil, err
		}
		if e.Offset < prev {
			return nil, fmt.Errorf("trace: line %d: offset %v runs backwards (previous %v)", line, e.Offset, prev)
		}
		prev = e.Offset
		if e.Spec.Exhibit == "" {
			return nil, fmt.Errorf("trace: line %d: event has no spec", line)
		}
		switch e.Outcome {
		case OutcomeGenerated, OutcomeOK, OutcomeRejected, OutcomeError:
		default:
			return nil, fmt.Errorf("trace: line %d: unknown outcome %q", line, e.Outcome)
		}
		t.Events = append(t.Events, e)
	}
}

// GeneratedTrace wraps an arrival schedule as an unplayed trace.
func GeneratedTrace(arrivals []Arrival, seed uint64, note string) *Trace {
	t := &Trace{Seed: seed, Note: note, Events: make([]Event, len(arrivals))}
	for i, a := range arrivals {
		t.Events[i] = Event{Offset: a.At, Spec: a.Spec, Outcome: OutcomeGenerated}
	}
	return t
}

// RecordedTrace zips an arrival schedule with the samples a target
// reported for it, producing a replayable record of what actually
// happened.
func RecordedTrace(arrivals []Arrival, samples []Sample, seed uint64, note string) (*Trace, error) {
	if len(arrivals) != len(samples) {
		return nil, fmt.Errorf("trace: %d arrivals but %d samples", len(arrivals), len(samples))
	}
	t := &Trace{Seed: seed, Note: note, Events: make([]Event, len(arrivals))}
	for i, a := range arrivals {
		t.Events[i] = Event{
			Offset:  a.At,
			Spec:    a.Spec,
			Outcome: samples[i].Class,
			Cache:   samples[i].Cache,
			Latency: samples[i].Latency,
		}
	}
	return t, nil
}

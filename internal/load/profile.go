package load

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// The segment kinds a Profile composes.
const (
	// KindConstant holds one rate for the segment's duration.
	KindConstant = "constant"
	// KindRamp moves linearly from one rate to another.
	KindRamp = "ramp"
	// KindDiurnal follows a raised cosine between a base and a peak rate,
	// starting at the base and peaking mid-period — a day/night cycle.
	KindDiurnal = "diurnal"
	// KindBurst alternates between a base rate and a burst rate: each
	// period opens with a burst lasting duty*period seconds.
	KindBurst = "burst"
)

// Segment is one piece of a piecewise rate function. Times are seconds
// from the segment's own start; rates are requests per second.
type Segment struct {
	// Kind selects the shape (KindConstant, KindRamp, KindDiurnal,
	// KindBurst).
	Kind string
	// Dur is the segment's length in seconds.
	Dur float64
	// Rate is the constant segment's level.
	Rate float64
	// From and To bound the ramp segment.
	From, To float64
	// Base and Peak bound the diurnal and burst segments.
	Base, Peak float64
	// Period is the diurnal cycle or burst cycle length in seconds.
	Period float64
	// Duty is the burst segment's high fraction of each period, in (0, 1).
	Duty float64
}

// validate checks one segment's parameters.
func (s Segment) validate() error {
	if s.Dur <= 0 {
		return fmt.Errorf("segment %s: dur must be positive, got %v", s.Kind, s.Dur)
	}
	nonneg := func(name string, v float64) error {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("segment %s: %s must be a non-negative finite rate, got %v", s.Kind, name, v)
		}
		return nil
	}
	switch s.Kind {
	case KindConstant:
		return nonneg("rate", s.Rate)
	case KindRamp:
		if err := nonneg("from", s.From); err != nil {
			return err
		}
		return nonneg("to", s.To)
	case KindDiurnal, KindBurst:
		if err := nonneg("base", s.Base); err != nil {
			return err
		}
		if err := nonneg("peak", s.Peak); err != nil {
			return err
		}
		if s.Peak < s.Base {
			return fmt.Errorf("segment %s: peak %v below base %v", s.Kind, s.Peak, s.Base)
		}
		if s.Period <= 0 {
			return fmt.Errorf("segment %s: period must be positive, got %v", s.Kind, s.Period)
		}
		if s.Kind == KindBurst && (s.Duty <= 0 || s.Duty >= 1) {
			return fmt.Errorf("segment burst: duty must be in (0, 1), got %v", s.Duty)
		}
		return nil
	default:
		return fmt.Errorf("unknown segment kind %q (want %s, %s, %s, or %s)",
			s.Kind, KindConstant, KindRamp, KindDiurnal, KindBurst)
	}
}

// rate evaluates the segment at t seconds into the segment, t in [0, Dur).
func (s Segment) rate(t float64) float64 {
	switch s.Kind {
	case KindConstant:
		return s.Rate
	case KindRamp:
		return s.From + (s.To-s.From)*(t/s.Dur)
	case KindDiurnal:
		mid := (s.Base + s.Peak) / 2
		amp := (s.Peak - s.Base) / 2
		return mid - amp*math.Cos(2*math.Pi*t/s.Period)
	case KindBurst:
		frac := t/s.Period - math.Floor(t/s.Period)
		if frac < s.Duty {
			return s.Peak
		}
		return s.Base
	default:
		return 0
	}
}

// max reports the segment's maximum rate, used as the thinning envelope.
func (s Segment) max() float64 {
	switch s.Kind {
	case KindConstant:
		return s.Rate
	case KindRamp:
		return math.Max(s.From, s.To)
	case KindDiurnal, KindBurst:
		return s.Peak
	default:
		return 0
	}
}

// Profile is a piecewise rate function: the segments play back to back,
// and the profile ends when the last one does.
type Profile struct {
	Segments []Segment
}

// Validate checks every segment.
func (p Profile) Validate() error {
	if len(p.Segments) == 0 {
		return fmt.Errorf("profile has no segments")
	}
	for i, s := range p.Segments {
		if err := s.validate(); err != nil {
			return fmt.Errorf("profile segment %d: %w", i+1, err)
		}
	}
	return nil
}

// Duration is the profile's total length in seconds.
func (p Profile) Duration() float64 {
	var d float64
	for _, s := range p.Segments {
		d += s.Dur
	}
	return d
}

// Rate evaluates the composed rate function at t seconds from the
// profile's start. Outside [0, Duration) the rate is zero.
func (p Profile) Rate(t float64) float64 {
	if t < 0 {
		return 0
	}
	for _, s := range p.Segments {
		if t < s.Dur {
			return s.rate(t)
		}
		t -= s.Dur
	}
	return 0
}

// MaxRate is the profile's rate ceiling — the homogeneous envelope the
// Poisson thinning sampler rejects against.
func (p Profile) MaxRate() float64 {
	var m float64
	for _, s := range p.Segments {
		m = math.Max(m, s.max())
	}
	return m
}

// Scale returns a copy of the profile with every rate multiplied by f —
// the saturation analyzer's lever for sweeping one traffic shape across
// an intensity grid.
func (p Profile) Scale(f float64) Profile {
	out := Profile{Segments: append([]Segment(nil), p.Segments...)}
	for i := range out.Segments {
		s := &out.Segments[i]
		s.Rate *= f
		s.From *= f
		s.To *= f
		s.Base *= f
		s.Peak *= f
	}
	return out
}

// String renders the profile in the DSL ParseProfile accepts.
func (p Profile) String() string {
	parts := make([]string, len(p.Segments))
	for i, s := range p.Segments {
		f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
		switch s.Kind {
		case KindConstant:
			parts[i] = fmt.Sprintf("constant:rate=%s,dur=%s", f(s.Rate), f(s.Dur))
		case KindRamp:
			parts[i] = fmt.Sprintf("ramp:from=%s,to=%s,dur=%s", f(s.From), f(s.To), f(s.Dur))
		case KindDiurnal:
			parts[i] = fmt.Sprintf("diurnal:base=%s,peak=%s,period=%s,dur=%s",
				f(s.Base), f(s.Peak), f(s.Period), f(s.Dur))
		case KindBurst:
			parts[i] = fmt.Sprintf("burst:base=%s,peak=%s,period=%s,duty=%s,dur=%s",
				f(s.Base), f(s.Peak), f(s.Period), f(s.Duty), f(s.Dur))
		}
	}
	return strings.Join(parts, ";")
}

// ParseProfile reads the exaload profile DSL: semicolon-separated
// segments, each "kind:key=value,key=value,...". For example:
//
//	constant:rate=5,dur=60
//	ramp:from=1,to=20,dur=120
//	diurnal:base=2,peak=12,period=60,dur=180
//	burst:base=2,peak=30,period=10,duty=0.2,dur=60
//
// Unknown kinds and keys are rejected — a misspelled parameter must not
// silently shape different traffic.
func ParseProfile(spec string) (Profile, error) {
	var p Profile
	for i, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			return Profile{}, fmt.Errorf("profile segment %d is empty", i+1)
		}
		kind, args, ok := strings.Cut(part, ":")
		if !ok {
			return Profile{}, fmt.Errorf("profile segment %d %q: want kind:key=value,...", i+1, part)
		}
		seg := Segment{Kind: strings.TrimSpace(kind)}
		for _, kv := range strings.Split(args, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return Profile{}, fmt.Errorf("profile segment %d: %q is not key=value", i+1, kv)
			}
			key = strings.TrimSpace(key)
			switch key {
			case "dur", "rate", "from", "to", "base", "peak", "period", "duty":
			default:
				return Profile{}, fmt.Errorf("profile segment %d: unknown key %q", i+1, key)
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
			if err != nil {
				return Profile{}, fmt.Errorf("profile segment %d: %s=%q is not a number", i+1, key, val)
			}
			switch key {
			case "dur":
				seg.Dur = v
			case "rate":
				seg.Rate = v
			case "from":
				seg.From = v
			case "to":
				seg.To = v
			case "base":
				seg.Base = v
			case "peak":
				seg.Peak = v
			case "period":
				seg.Period = v
			case "duty":
				seg.Duty = v
			}
		}
		p.Segments = append(p.Segments, seg)
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

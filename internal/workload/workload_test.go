package workload

import (
	"math"
	"testing"
	"testing/quick"

	"exaresil/internal/machine"
	"exaresil/internal/rng"
	"exaresil/internal/units"
)

func TestTableIClasses(t *testing.T) {
	classes := Classes()
	if len(classes) != 8 {
		t.Fatalf("Table I defines 8 classes, got %d", len(classes))
	}
	wantComm := map[byte]float64{'A': 0, 'B': 0.25, 'C': 0.5, 'D': 0.75}
	seen := map[string]bool{}
	for _, c := range classes {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		if seen[c.Name] {
			t.Errorf("duplicate class %s", c.Name)
		}
		seen[c.Name] = true
		if got := wantComm[c.Name[0]]; c.CommFraction != got {
			t.Errorf("%s: T_C = %v, want %v", c.Name, c.CommFraction, got)
		}
		switch c.Name[1:] {
		case "32":
			if c.MemoryPerNode != 32*units.Gigabyte {
				t.Errorf("%s: memory %v", c.Name, c.MemoryPerNode)
			}
		case "64":
			if c.MemoryPerNode != 64*units.Gigabyte {
				t.Errorf("%s: memory %v", c.Name, c.MemoryPerNode)
			}
		default:
			t.Errorf("unexpected class name %s", c.Name)
		}
		if math.Abs(c.CommFraction+c.WorkFraction()-1) > 1e-12 {
			t.Errorf("%s: T_C + T_W != 1", c.Name)
		}
	}
}

func TestClassByName(t *testing.T) {
	c, ok := ClassByName("D64")
	if !ok || c.CommFraction != 0.75 || c.MemoryPerNode != 64*units.Gigabyte {
		t.Errorf("ClassByName(D64) = %v, %v", c, ok)
	}
	if _, ok := ClassByName("Z99"); ok {
		t.Error("ClassByName should miss on unknown names")
	}
}

func TestBiasPopulations(t *testing.T) {
	for _, c := range HighMemoryClasses() {
		if c.MemoryPerNode != 64*units.Gigabyte {
			t.Errorf("high-memory population includes %s", c.Name)
		}
	}
	for _, c := range HighCommClasses() {
		if c.CommFraction <= 0.25 {
			t.Errorf("high-comm population includes %s (T_C=%v)", c.Name, c.CommFraction)
		}
	}
	if len(HighMemoryClasses()) != 4 || len(HighCommClasses()) != 4 {
		t.Error("biased populations should each have 4 classes")
	}
}

func TestAppBaseline(t *testing.T) {
	a := App{ID: 1, Class: C32, TimeSteps: 1440, Nodes: 100}
	if got := a.Baseline(); got != units.Day {
		t.Errorf("1440 steps baseline = %v, want 1 day", got)
	}
	if got := a.MemoryTotal(); got != 3200*units.Gigabyte {
		t.Errorf("memory total %v, want 3200GB", got)
	}
}

func TestAppSlack(t *testing.T) {
	a := App{ID: 1, Class: A32, TimeSteps: 360, Nodes: 1,
		Arrival: 100, Deadline: 100 + 1.5*360}
	slack, ok := a.Slack()
	if !ok {
		t.Fatal("deadline app reported no slack")
	}
	if math.Abs(float64(slack)-0.5*360) > 1e-9 {
		t.Errorf("slack = %v, want 180", slack)
	}
	if _, ok := (App{Deadline: 0}).Slack(); ok {
		t.Error("deadline-free app should report ok=false")
	}
}

func TestAppValidate(t *testing.T) {
	good := App{ID: 0, Class: B64, TimeSteps: 360, Nodes: 5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid app rejected: %v", err)
	}
	bad := []App{
		{Class: B64, TimeSteps: 0, Nodes: 5},
		{Class: B64, TimeSteps: 10, Nodes: 0},
		{Class: B64, TimeSteps: 10, Nodes: 5, Arrival: -1},
		{Class: B64, TimeSteps: 10, Nodes: 5, Deadline: -1},
		{Class: Class{Name: "bad", CommFraction: 1.5, MemoryPerNode: 1}, TimeSteps: 10, Nodes: 5},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("bad app %d passed validation", i)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	cfg := machine.Exascale()
	spec := PatternSpec{FillSystem: true}
	a := spec.Generate(cfg, rng.New(7))
	b := spec.Generate(cfg, rng.New(7))
	if len(a.Apps) != len(b.Apps) {
		t.Fatalf("pattern lengths differ: %d vs %d", len(a.Apps), len(b.Apps))
	}
	for i := range a.Apps {
		if a.Apps[i] != b.Apps[i] {
			t.Fatalf("apps %d differ: %v vs %v", i, a.Apps[i], b.Apps[i])
		}
	}
}

func TestGenerateDefaults(t *testing.T) {
	cfg := machine.Exascale()
	p := PatternSpec{}.Generate(cfg, rng.New(1))
	if len(p.Apps) != 100 {
		t.Fatalf("default pattern has %d apps, want 100", len(p.Apps))
	}
	if p.InitialFill != 0 {
		t.Errorf("no-fill pattern reports fill %d", p.InitialFill)
	}
	stepsOK := map[int]bool{360: true, 720: true, 1440: true, 2880: true}
	for _, a := range p.Apps {
		if err := a.Validate(); err != nil {
			t.Errorf("generated app invalid: %v", err)
		}
		if !stepsOK[a.TimeSteps] {
			t.Errorf("app %d has %d steps, not in default population", a.ID, a.TimeSteps)
		}
		slack, ok := a.Slack()
		if !ok {
			t.Errorf("app %d missing deadline", a.ID)
			continue
		}
		u := 1 + float64(slack)/float64(a.Baseline())
		if u < 1.2-1e-9 || u > 2.0+1e-9 {
			t.Errorf("app %d deadline factor %v outside [1.2, 2.0]", a.ID, u)
		}
	}
	// Arrivals sorted, positive, with plausible Poisson mean (2h +- 40%).
	var last units.Duration
	for _, a := range p.Apps {
		if a.Arrival < last {
			t.Fatal("arrivals not sorted")
		}
		last = a.Arrival
	}
	meanGap := last.Hours() / float64(len(p.Apps))
	if meanGap < 1.2 || meanGap > 2.8 {
		t.Errorf("mean interarrival %v h, want ~2", meanGap)
	}
}

func TestGenerateFillSystem(t *testing.T) {
	cfg := machine.Exascale()
	p := PatternSpec{FillSystem: true}.Generate(cfg, rng.New(3))
	if p.InitialFill == 0 {
		t.Fatal("fill requested but no initial apps generated")
	}
	filled := 0
	for _, a := range p.Apps[:p.InitialFill] {
		if a.Arrival != 0 {
			t.Errorf("fill app %d arrives at %v, want 0", a.ID, a.Arrival)
		}
		filled += a.Nodes
	}
	if filled > cfg.Nodes {
		t.Errorf("initial fill %d nodes exceeds machine %d", filled, cfg.Nodes)
	}
	// The machine must be nearly full: less than the smallest app left.
	smallest := cfg.NodesForFraction(0.01)
	if cfg.Nodes-filled >= smallest {
		t.Errorf("fill left %d free nodes, more than smallest app %d", cfg.Nodes-filled, smallest)
	}
	if got := len(p.Arrived()); got != 100 {
		t.Errorf("Arrived() = %d apps, want 100", got)
	}
}

func TestGenerateBiases(t *testing.T) {
	cfg := machine.Exascale()
	cases := []struct {
		bias  Bias
		check func(App) bool
		desc  string
	}{
		{HighMemory, func(a App) bool { return a.Class.MemoryPerNode == 64*units.Gigabyte }, "64GB memory"},
		{HighComm, func(a App) bool { return a.Class.CommFraction > 0.25 }, "T_C > 0.25"},
		{LargeApps, func(a App) bool { return a.Nodes >= cfg.NodesForFraction(0.12) }, ">= 12% of machine"},
	}
	for _, tc := range cases {
		p := PatternSpec{Bias: tc.bias}.Generate(cfg, rng.New(5))
		for _, a := range p.Apps {
			if !tc.check(a) {
				t.Errorf("%v pattern produced app violating %s: %v", tc.bias, tc.desc, a)
			}
		}
	}
}

func TestGenerateUnbiasedCoversAllClasses(t *testing.T) {
	cfg := machine.Exascale()
	p := PatternSpec{Arrivals: 400}.Generate(cfg, rng.New(9))
	seen := map[string]int{}
	for _, a := range p.Apps {
		seen[a.Class.Name]++
	}
	for _, c := range Classes() {
		if seen[c.Name] == 0 {
			t.Errorf("class %s never drawn in 400 apps", c.Name)
		}
	}
}

func TestBiasStrings(t *testing.T) {
	for _, b := range Biases() {
		if b.String() == "" || b.String()[0] == 'B' && b != Unbiased {
			// Just ensure the default Bias(%d) form is not used.
		}
	}
	if Bias(99).String() != "Bias(99)" {
		t.Errorf("unknown bias string: %s", Bias(99))
	}
	if len(Biases()) != 4 {
		t.Error("Figure 5 uses four pattern populations")
	}
}

// TestGenerateProperty exercises arbitrary spec knobs and verifies the
// generated pattern always satisfies the structural invariants.
func TestGenerateProperty(t *testing.T) {
	cfg := machine.Exascale()
	prop := func(seed uint64, arrivals uint8, biasRaw uint8, fill bool) bool {
		spec := PatternSpec{
			Arrivals:   int(arrivals%50) + 1,
			Bias:       Bias(biasRaw % 4),
			FillSystem: fill,
		}
		p := spec.Generate(cfg, rng.New(seed))
		if len(p.Arrived()) != spec.Arrivals {
			return false
		}
		var last units.Duration
		for _, a := range p.Apps {
			if a.Validate() != nil || a.Arrival < last {
				return false
			}
			last = a.Arrival
			if a.Deadline < a.Arrival+a.Baseline() {
				return false // deadline factor is always > 1
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

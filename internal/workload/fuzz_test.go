package workload

import (
	"bytes"
	"reflect"
	"testing"

	"exaresil/internal/units"
)

// FuzzReadPattern feeds arbitrary bytes to the pattern reader: malformed
// input must error (never panic), and any pattern the reader accepts must
// satisfy the documented invariants and survive a Write -> Read round trip
// unchanged (JSON renders float64 in a shortest form that parses back to
// the same value, so the comparison is exact).
func FuzzReadPattern(f *testing.F) {
	var buf bytes.Buffer
	seed := Pattern{
		InitialFill: 1,
		Apps: []App{
			{ID: 0, Class: C64, TimeSteps: 1440, Nodes: 1200},
			{ID: 1, Class: A32, TimeSteps: 360, Nodes: 12,
				Arrival: 90 * units.Minute, Deadline: 400 * units.Minute},
		},
	}
	if err := WritePattern(&buf, seed); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"version":1,"initial_fill":0,"apps":[]}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`{"version":1,"initial_fill":7,"apps":[]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadPattern(bytes.NewReader(data))
		if err != nil {
			return
		}
		if p.InitialFill < 0 || p.InitialFill > len(p.Apps) {
			t.Fatalf("accepted initial fill %d with %d apps", p.InitialFill, len(p.Apps))
		}
		var last units.Duration
		for i, a := range p.Apps {
			if err := a.Validate(); err != nil {
				t.Fatalf("accepted invalid app %d: %v", i, err)
			}
			if a.Arrival < last {
				t.Fatalf("accepted app %d arriving at %v before its predecessor's %v", i, a.Arrival, last)
			}
			last = a.Arrival
		}
		var out bytes.Buffer
		if err := WritePattern(&out, p); err != nil {
			t.Fatalf("re-serializing an accepted pattern: %v", err)
		}
		again, err := ReadPattern(&out)
		if err != nil {
			t.Fatalf("re-reading a written pattern: %v", err)
		}
		if !reflect.DeepEqual(p, again) {
			t.Fatalf("round trip changed the pattern:\n got %+v\nwant %+v", again, p)
		}
	})
}

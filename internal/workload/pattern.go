package workload

import (
	"fmt"
	"sort"

	"exaresil/internal/machine"
	"exaresil/internal/rng"
	"exaresil/internal/units"
)

// Bias selects the application population of an arrival pattern
// (Section VII). The biased populations were chosen by the paper because
// they are the hardest to schedule.
type Bias int

// The four arrival-pattern populations of Figure 5.
const (
	// Unbiased draws uniformly from all eight Table I classes and every
	// size fraction.
	Unbiased Bias = iota
	// HighMemory draws only classes with N_m = 64 GB/node.
	HighMemory
	// HighComm draws only classes with T_C > 0.25.
	HighComm
	// LargeApps draws only the 12%, 25%, and 50% size fractions.
	LargeApps

	numBiases
)

// Biases lists the pattern populations in the paper's Figure 5 order.
func Biases() []Bias { return []Bias{Unbiased, HighMemory, HighComm, LargeApps} }

// String names the bias as Figure 5's group labels do.
func (b Bias) String() string {
	switch b {
	case Unbiased:
		return "Unbiased"
	case HighMemory:
		return "High Memory"
	case HighComm:
		return "High Communication"
	case LargeApps:
		return "Large Applications"
	default:
		return fmt.Sprintf("Bias(%d)", int(b))
	}
}

// classes reports the class population for the bias.
func (b Bias) classes() []Class {
	switch b {
	case HighMemory:
		return HighMemoryClasses()
	case HighComm:
		return HighCommClasses()
	default:
		return Classes()
	}
}

// sizeFractions reports the machine-fraction population for the bias given
// the study's default size set.
func (b Bias) sizeFractions(defaults []float64) []float64 {
	if b != LargeApps {
		return defaults
	}
	var large []float64
	for _, f := range defaults {
		if f >= 0.12 {
			large = append(large, f)
		}
	}
	if len(large) == 0 {
		return defaults
	}
	return large
}

// DefaultSizeFractions is the Section VI size population: approximately
// one, two, three, six, twelve, twenty-five, and fifty percent of the
// exascale machine (10 to 500 petaflops). Exascale-sized applications are
// excluded from the cluster studies.
func DefaultSizeFractions() []float64 {
	return []float64{0.01, 0.02, 0.03, 0.06, 0.12, 0.25, 0.50}
}

// DefaultBaselineSteps is the Section VI baseline-duration population:
// six, twelve, twenty-four, or forty-eight hours of one-minute steps.
func DefaultBaselineSteps() []int { return []int{360, 720, 1440, 2880} }

// PatternSpec describes how to generate one arrival pattern.
type PatternSpec struct {
	// Arrivals is the number of applications that arrive after time zero
	// (the paper uses 100 per pattern).
	Arrivals int
	// MeanInterarrival is the Poisson arrival process mean (paper: 2 h).
	MeanInterarrival units.Duration
	// Bias selects the application population.
	Bias Bias
	// FillSystem, when true, adds applications arriving at time zero
	// until the machine is (approximately) full, forcing the simulation
	// to begin at full utilization as in Section VI.
	FillSystem bool
	// BaselineSteps is the population of T_S values; nil means
	// DefaultBaselineSteps.
	BaselineSteps []int
	// SizeFractions is the population of machine fractions; nil means
	// DefaultSizeFractions (possibly narrowed by Bias).
	SizeFractions []float64
	// SlackLo and SlackHi bound the uniform deadline factor U of Eq. 1;
	// zero values mean the paper's 1.2 and 2.0.
	SlackLo, SlackHi float64
}

// withDefaults returns spec with zero fields replaced by paper defaults.
func (spec PatternSpec) withDefaults() PatternSpec {
	if spec.Arrivals == 0 {
		spec.Arrivals = 100
	}
	if spec.MeanInterarrival == 0 {
		spec.MeanInterarrival = 2 * units.Hour
	}
	if spec.BaselineSteps == nil {
		spec.BaselineSteps = DefaultBaselineSteps()
	}
	if spec.SizeFractions == nil {
		spec.SizeFractions = DefaultSizeFractions()
	}
	if spec.SlackLo == 0 {
		spec.SlackLo = 1.2
	}
	if spec.SlackHi == 0 {
		spec.SlackHi = 2.0
	}
	return spec
}

// Pattern is a generated set of application submissions, sorted by arrival
// time. The initial system-filling apps (if any) arrive at exactly zero.
type Pattern struct {
	// Apps holds every submission in nondecreasing arrival order.
	Apps []App
	// InitialFill is the count of leading apps that arrive at time zero
	// to fill the machine.
	InitialFill int
}

// Arrived reports the apps that arrive after time zero, i.e. the pattern
// proper, excluding the initial fill.
func (p Pattern) Arrived() []App { return p.Apps[p.InitialFill:] }

// Generate builds one arrival pattern for the given machine using src for
// every random choice. Identical (spec, cfg, seed) triples generate
// identical patterns.
func (spec PatternSpec) Generate(cfg machine.Config, src *rng.Source) Pattern {
	spec = spec.withDefaults()
	classes := spec.Bias.classes()
	fractions := spec.Bias.sizeFractions(spec.SizeFractions)

	var pattern Pattern
	id := 0

	draw := func(arrival units.Duration, sizes []float64) App {
		class := classes[src.Intn(len(classes))]
		steps := spec.BaselineSteps[src.Intn(len(spec.BaselineSteps))]
		frac := sizes[src.Intn(len(sizes))]
		app := App{
			ID:        id,
			Class:     class,
			TimeSteps: steps,
			Nodes:     cfg.NodesForFraction(frac),
			Arrival:   arrival,
		}
		u := src.Uniform(spec.SlackLo, spec.SlackHi)
		app.Deadline = arrival + units.Duration(u*float64(app.Baseline()))
		id++
		return app
	}

	if spec.FillSystem {
		// Pack apps at time zero until no population size fits in the
		// remaining nodes, drawing uniformly among the sizes that fit.
		free := cfg.Nodes
		for {
			var fit []float64
			for _, f := range fractions {
				if cfg.NodesForFraction(f) <= free {
					fit = append(fit, f)
				}
			}
			if len(fit) == 0 {
				break
			}
			app := draw(0, fit)
			free -= app.Nodes
			pattern.Apps = append(pattern.Apps, app)
		}
		pattern.InitialFill = len(pattern.Apps)
	}

	t := units.Duration(0)
	rate := 1 / spec.MeanInterarrival.Minutes()
	for i := 0; i < spec.Arrivals; i++ {
		t += units.Duration(src.Exp(rate))
		pattern.Apps = append(pattern.Apps, draw(t, fractions))
	}

	sort.SliceStable(pattern.Apps, func(i, j int) bool {
		return pattern.Apps[i].Arrival < pattern.Apps[j].Arrival
	})
	return pattern
}

// TotalNodesAt reports how many nodes the pattern's initial fill occupies;
// a sanity metric used by tests and the workload inspector.
func (p Pattern) TotalNodesAt(zero bool) int {
	total := 0
	for _, a := range p.Apps {
		if !zero || a.Arrival == 0 {
			total += a.Nodes
		}
	}
	return total
}

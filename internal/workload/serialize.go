package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"exaresil/internal/units"
)

// The JSON forms use explicit scalar fields (minutes, gigabytes) rather
// than the internal typed quantities, so saved patterns are readable and
// stable for external tooling.

// classJSON serializes a Class with its full definition, so patterns using
// custom classes round-trip without a registry.
type classJSON struct {
	Name         string  `json:"name"`
	CommFraction float64 `json:"comm_fraction"`
	MemoryGBNode float64 `json:"memory_gb_per_node"`
}

// appJSON serializes one App.
type appJSON struct {
	ID          int       `json:"id"`
	Class       classJSON `json:"class"`
	TimeSteps   int       `json:"time_steps"`
	Nodes       int       `json:"nodes"`
	ArrivalMin  float64   `json:"arrival_min"`
	DeadlineMin float64   `json:"deadline_min,omitempty"`
}

// patternJSON serializes a Pattern.
type patternJSON struct {
	Version     int       `json:"version"`
	InitialFill int       `json:"initial_fill"`
	Apps        []appJSON `json:"apps"`
}

// patternVersion guards the format against silent drift.
const patternVersion = 1

// WritePattern serializes the pattern as indented JSON.
func WritePattern(w io.Writer, p Pattern) error {
	out := patternJSON{Version: patternVersion, InitialFill: p.InitialFill}
	for _, a := range p.Apps {
		out.Apps = append(out.Apps, appJSON{
			ID: a.ID,
			Class: classJSON{
				Name:         a.Class.Name,
				CommFraction: a.Class.CommFraction,
				MemoryGBNode: a.Class.MemoryPerNode.Gigabytes(),
			},
			TimeSteps:   a.TimeSteps,
			Nodes:       a.Nodes,
			ArrivalMin:  a.Arrival.Minutes(),
			DeadlineMin: a.Deadline.Minutes(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadPattern deserializes a pattern written by WritePattern, validating
// every application.
func ReadPattern(r io.Reader) (Pattern, error) {
	var in patternJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return Pattern{}, fmt.Errorf("workload: decoding pattern: %w", err)
	}
	if in.Version != patternVersion {
		return Pattern{}, fmt.Errorf("workload: pattern version %d, this build reads %d", in.Version, patternVersion)
	}
	if in.InitialFill < 0 || in.InitialFill > len(in.Apps) {
		return Pattern{}, fmt.Errorf("workload: initial fill %d out of range for %d apps", in.InitialFill, len(in.Apps))
	}
	p := Pattern{InitialFill: in.InitialFill}
	var last units.Duration
	for i, ja := range in.Apps {
		app := App{
			ID: ja.ID,
			Class: Class{
				Name:          ja.Class.Name,
				CommFraction:  ja.Class.CommFraction,
				MemoryPerNode: units.DataSize(ja.Class.MemoryGBNode),
			},
			TimeSteps: ja.TimeSteps,
			Nodes:     ja.Nodes,
			Arrival:   units.Duration(ja.ArrivalMin),
			Deadline:  units.Duration(ja.DeadlineMin),
		}
		if err := app.Validate(); err != nil {
			return Pattern{}, fmt.Errorf("workload: app %d invalid: %w", i, err)
		}
		if app.Arrival < last {
			return Pattern{}, fmt.Errorf("workload: app %d arrives at %v, before its predecessor's %v",
				i, app.Arrival, last)
		}
		last = app.Arrival
		p.Apps = append(p.Apps, app)
	}
	return p, nil
}

// Package workload implements the paper's synthetic benchmark applications
// and the arrival patterns submitted to the simulated machine.
//
// The benchmarks are "equation-based": an application is a sequence of
// identical one-minute time steps, each split between communication (T_C)
// and computation (T_W = 1 - T_C), with a fixed per-node memory footprint.
// Eight classes (Table I of the paper) cross four communication
// intensities with two memory footprints, spanning the range the NAS
// Parallel Benchmark suite exhibits at scale — from EP-like (no
// communication) to BT-like at its most communication-bound input (~75%).
// All classes scale weakly: growing an application adds nodes without
// changing per-step behaviour.
package workload

import (
	"fmt"

	"exaresil/internal/units"
)

// Class is one of the synthetic benchmark application types of Table I.
type Class struct {
	// Name is the Table I label, e.g. "C64".
	Name string
	// CommFraction is T_C, the fraction of each time step spent
	// communicating, in [0, 1).
	CommFraction float64
	// MemoryPerNode is N_m, the per-node memory footprint.
	MemoryPerNode units.DataSize
}

// WorkFraction is T_W = 1 - T_C, the fraction of each step spent computing.
func (c Class) WorkFraction() float64 { return 1 - c.CommFraction }

// String renders the class for reports.
func (c Class) String() string {
	return fmt.Sprintf("%s (T_C=%.2f, %s/node)", c.Name, c.CommFraction, c.MemoryPerNode)
}

// Validate reports whether the class parameters are meaningful.
func (c Class) Validate() error {
	if c.CommFraction < 0 || c.CommFraction >= 1 {
		return fmt.Errorf("workload: class %q communication fraction %v outside [0,1)", c.Name, c.CommFraction)
	}
	if c.MemoryPerNode <= 0 {
		return fmt.Errorf("workload: class %q memory per node %v must be positive", c.Name, c.MemoryPerNode)
	}
	return nil
}

// The eight Table I classes. Letters encode communication intensity
// (A: 0%, B: 25%, C: 50%, D: 75%); the numeric suffix is the per-node
// memory footprint in gigabytes.
var (
	A32 = Class{Name: "A32", CommFraction: 0.00, MemoryPerNode: 32 * units.Gigabyte}
	A64 = Class{Name: "A64", CommFraction: 0.00, MemoryPerNode: 64 * units.Gigabyte}
	B32 = Class{Name: "B32", CommFraction: 0.25, MemoryPerNode: 32 * units.Gigabyte}
	B64 = Class{Name: "B64", CommFraction: 0.25, MemoryPerNode: 64 * units.Gigabyte}
	C32 = Class{Name: "C32", CommFraction: 0.50, MemoryPerNode: 32 * units.Gigabyte}
	C64 = Class{Name: "C64", CommFraction: 0.50, MemoryPerNode: 64 * units.Gigabyte}
	D32 = Class{Name: "D32", CommFraction: 0.75, MemoryPerNode: 32 * units.Gigabyte}
	D64 = Class{Name: "D64", CommFraction: 0.75, MemoryPerNode: 64 * units.Gigabyte}
)

// Classes returns the eight Table I application types in table order
// (by communication intensity, then memory footprint).
func Classes() []Class {
	return []Class{A32, A64, B32, B64, C32, C64, D32, D64}
}

// ClassByName looks a class up by its Table I label.
func ClassByName(name string) (Class, bool) {
	for _, c := range Classes() {
		if c.Name == name {
			return c, true
		}
	}
	return Class{}, false
}

// HighMemoryClasses returns the classes with the 64 GB/node footprint, the
// population of Section VII's high-memory biased arrival patterns.
func HighMemoryClasses() []Class { return []Class{A64, B64, C64, D64} }

// HighCommClasses returns the classes with T_C > 0.25, the population of
// Section VII's high-communication biased arrival patterns.
func HighCommClasses() []Class { return []Class{C32, C64, D32, D64} }

package workload

import (
	"fmt"

	"exaresil/internal/units"
)

// App is one application instance submitted to the simulated system. Apps
// are immutable descriptors; execution state lives in the simulators.
type App struct {
	// ID identifies the app within its arrival pattern.
	ID int
	// Class is the synthetic benchmark type (Table I).
	Class Class
	// TimeSteps is T_S, the number of one-minute steps of useful work.
	TimeSteps int
	// Nodes is N_a, the number of (virtual) nodes the app requires. A
	// redundant execution occupies more physical nodes than this; see the
	// resilience package.
	Nodes int
	// Arrival is T_A, when the app is submitted.
	Arrival units.Duration
	// Deadline is T_D; zero means no deadline (the Section V studies).
	Deadline units.Duration
}

// Baseline is T_B, the delay-free execution time: T_S steps of
// (T_W + T_C) = 1 minute each. Resilience-technique overheads (message
// logging's mu, redundancy's r) are properties of the technique, not of the
// app, and are applied by the resilience package.
func (a App) Baseline() units.Duration {
	return units.Duration(a.TimeSteps) * units.Minute
}

// MemoryTotal reports the application's aggregate checkpoint footprint
// across all of its nodes.
func (a App) MemoryTotal() units.DataSize {
	return a.Class.MemoryPerNode * units.DataSize(a.Nodes)
}

// Slack reports T_D - (T_A + T_B): the scheduling headroom the app has at
// submission. Negative slack means the deadline is unreachable even with
// immediate placement and failure-free execution. Apps without deadlines
// report infinite-like slack via ok=false.
func (a App) Slack() (slack units.Duration, ok bool) {
	if a.Deadline <= 0 {
		return 0, false
	}
	return a.Deadline - (a.Arrival + a.Baseline()), true
}

// Validate reports whether the app descriptor is meaningful.
func (a App) Validate() error {
	if err := a.Class.Validate(); err != nil {
		return err
	}
	if a.TimeSteps <= 0 {
		return fmt.Errorf("workload: app %d has %d time steps, want > 0", a.ID, a.TimeSteps)
	}
	if a.Nodes <= 0 {
		return fmt.Errorf("workload: app %d needs %d nodes, want > 0", a.ID, a.Nodes)
	}
	if a.Arrival < 0 {
		return fmt.Errorf("workload: app %d arrives at %v, want >= 0", a.ID, a.Arrival)
	}
	if a.Deadline < 0 {
		return fmt.Errorf("workload: app %d deadline %v, want >= 0", a.ID, a.Deadline)
	}
	return nil
}

// String renders the app for logs and reports.
func (a App) String() string {
	return fmt.Sprintf("app %d [%s, %d nodes, T_B=%s, arrives %s]",
		a.ID, a.Class.Name, a.Nodes, a.Baseline(), a.Arrival)
}

package workload

import (
	"strings"
	"testing"

	"exaresil/internal/machine"
	"exaresil/internal/rng"
)

func TestPatternRoundTrip(t *testing.T) {
	cfg := machine.Exascale()
	orig := PatternSpec{Arrivals: 25, FillSystem: true}.Generate(cfg, rng.New(11))

	var b strings.Builder
	if err := WritePattern(&b, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPattern(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.InitialFill != orig.InitialFill {
		t.Errorf("initial fill %d, want %d", got.InitialFill, orig.InitialFill)
	}
	if len(got.Apps) != len(orig.Apps) {
		t.Fatalf("round trip lost apps: %d vs %d", len(got.Apps), len(orig.Apps))
	}
	for i := range got.Apps {
		if got.Apps[i] != orig.Apps[i] {
			t.Fatalf("app %d differs:\n  %+v\n  %+v", i, got.Apps[i], orig.Apps[i])
		}
	}
}

func TestPatternRoundTripCustomClass(t *testing.T) {
	orig := Pattern{Apps: []App{{
		ID:        0,
		Class:     Class{Name: "X48", CommFraction: 0.33, MemoryPerNode: 48},
		TimeSteps: 100,
		Nodes:     7,
		Arrival:   5,
		Deadline:  300,
	}}}
	var b strings.Builder
	if err := WritePattern(&b, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPattern(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Apps[0] != orig.Apps[0] {
		t.Errorf("custom class did not round-trip: %+v", got.Apps[0])
	}
}

func TestReadPatternRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":      "hello",
		"wrong version": `{"version": 99, "apps": []}`,
		"bad fill":      `{"version": 1, "initial_fill": 5, "apps": []}`,
		"invalid app": `{"version": 1, "apps": [
			{"id": 0, "class": {"name": "A32", "comm_fraction": 0, "memory_gb_per_node": 32},
			 "time_steps": 0, "nodes": 1, "arrival_min": 0}]}`,
		"unsorted arrivals": `{"version": 1, "apps": [
			{"id": 0, "class": {"name": "A32", "comm_fraction": 0, "memory_gb_per_node": 32},
			 "time_steps": 10, "nodes": 1, "arrival_min": 100},
			{"id": 1, "class": {"name": "A32", "comm_fraction": 0, "memory_gb_per_node": 32},
			 "time_steps": 10, "nodes": 1, "arrival_min": 50}]}`,
		"unknown field": `{"version": 1, "apps": [], "bogus": true}`,
	}
	for name, payload := range cases {
		if _, err := ReadPattern(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWrittenPatternIsHumanReadable(t *testing.T) {
	cfg := machine.Exascale()
	p := PatternSpec{Arrivals: 2}.Generate(cfg, rng.New(1))
	var b strings.Builder
	if err := WritePattern(&b, p); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"version"`, `"apps"`, `"arrival_min"`, `"memory_gb_per_node"`} {
		if !strings.Contains(b.String(), field) {
			t.Errorf("serialized pattern missing %s", field)
		}
	}
}

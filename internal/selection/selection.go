// Package selection implements the paper's Section VII "Resilience
// Selection": letting the resource manager pick, per application, the
// resilience technique most likely to give it the best performance.
//
// The selector is built the same way the paper derives its policy — from
// the Section V scaling study. At construction it probes every
// (application class, size) cell of a grid with a short Monte-Carlo study
// per candidate technique and remembers the winner; at scheduling time an
// arriving application is matched to its class and nearest size bucket.
package selection

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"exaresil/internal/appsim"
	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/obs"
	"exaresil/internal/resilience"
	"exaresil/internal/workload"
)

// Options tunes selector construction.
type Options struct {
	// Techniques are the candidates; nil means the cluster-study trio
	// (Checkpoint Restart, Multilevel, Parallel Recovery).
	Techniques []core.Technique
	// SizeFractions is the probing grid; nil means the cluster-study
	// size population.
	SizeFractions []float64
	// Trials is the number of Monte-Carlo probes per cell per technique
	// (default 20 when PairedTrials is zero). Mutually exclusive with
	// PairedTrials; negative values are rejected.
	Trials int
	// PairedTrials, when positive, switches probing to variance-reduced
	// mode: each technique runs 2*PairedTrials probes as PairedTrials
	// antithetic pairs, and all technique arms of a cell share the same
	// cell-keyed random streams (common random numbers), so arm
	// differences are measured on identical failure draws. The table
	// typically reaches a given confidence width with far fewer probes
	// than the default mode; DESIGN.md §11 details the construction.
	// Mutually exclusive with Trials; negative values are rejected.
	PairedTrials int
	// TimeSteps is the probe application length (default 1440, one day).
	TimeSteps int
	// HorizonFactor bounds probe runs as a multiple of the baseline
	// (default 3, comparable to the deadline slack of the cluster
	// studies).
	HorizonFactor float64
	// Seed drives the probes.
	Seed uint64
	// Workers bounds the goroutines probing grid cells concurrently
	// (default GOMAXPROCS). Every cell derives its probe seeds from its
	// position in the grid, not from completion order, so the resulting
	// table is identical for every worker count — including 1.
	Workers int
	// Obs, when non-nil, receives the selector's metrics: probe and cell
	// counts, the schedule-cache activity of the table build, and Choose
	// resolutions over the selector's lifetime.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Techniques == nil {
		o.Techniques = core.ClusterTechniques()
	}
	if o.SizeFractions == nil {
		o.SizeFractions = workload.DefaultSizeFractions()
	}
	if o.Trials == 0 && o.PairedTrials == 0 {
		o.Trials = 20
	}
	if o.TimeSteps == 0 {
		o.TimeSteps = 1440
	}
	if o.HorizonFactor == 0 {
		o.HorizonFactor = 3
	}
	return o
}

// cell identifies one entry of the selection table.
type cell struct {
	class    string
	fraction float64
}

// Choice records what the selector learned for one cell.
type Choice struct {
	// Class and Fraction identify the cell.
	Class    workload.Class
	Fraction float64
	// Best is the winning technique.
	Best core.Technique
	// Efficiency is each candidate's mean probe efficiency, indexed as
	// Options.Techniques.
	Efficiency []float64
}

// Selector picks resilience techniques per application.
type Selector struct {
	techniques []core.Technique
	fractions  []float64
	machine    machine.Config
	table      map[cell]Choice
	m          *selectorMetrics
}

// NewSelector builds a selector for the given machine and failure model by
// probing the technique/size grid. Construction cost is that of
// (classes x fractions x techniques x trials) short simulations, fanned
// out across Options.Workers goroutines — one cell per task, with each
// cell's probe seeds fixed by its grid position so the table is
// bit-identical to a serial build. The resulting Selector is immutable and
// safe for concurrent use.
func NewSelector(cfg machine.Config, model *failures.Model, rc resilience.Config, opts Options) (*Selector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if model == nil {
		return nil, fmt.Errorf("selection: nil failure model")
	}
	if err := rc.Validate(); err != nil {
		return nil, err
	}
	if opts.Trials < 0 {
		return nil, fmt.Errorf("selection: trial count %d must be non-negative", opts.Trials)
	}
	if opts.PairedTrials < 0 {
		return nil, fmt.Errorf("selection: paired trial count %d must be non-negative", opts.PairedTrials)
	}
	if opts.Trials > 0 && opts.PairedTrials > 0 {
		return nil, fmt.Errorf("selection: Trials (%d) and PairedTrials (%d) are mutually exclusive",
			opts.Trials, opts.PairedTrials)
	}
	opts = opts.withDefaults()
	if len(opts.Techniques) == 0 {
		return nil, fmt.Errorf("selection: no candidate techniques")
	}
	for _, t := range opts.Techniques {
		if !t.Valid() || t == core.Ideal {
			return nil, fmt.Errorf("selection: invalid candidate technique %v", t)
		}
	}
	if len(opts.SizeFractions) == 0 {
		return nil, fmt.Errorf("selection: no size fractions")
	}

	s := &Selector{
		techniques: opts.Techniques,
		fractions:  append([]float64(nil), opts.SizeFractions...),
		machine:    cfg,
		table:      make(map[cell]Choice),
		m:          newSelectorMetrics(opts.Obs),
	}
	sort.Float64s(s.fractions)
	cacheHits0, cacheMisses0 := resilience.ScheduleCacheStats()

	// Flatten the (class x fraction) grid; cell i's probes are numbered
	// i*len(techniques) .. i*len(techniques)+len(techniques)-1, matching
	// the counter a serial class-major walk would have used.
	type gridCell struct {
		class workload.Class
		frac  float64
	}
	var cells []gridCell
	for _, class := range workload.Classes() {
		for _, frac := range s.fractions {
			cells = append(cells, gridCell{class, frac})
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	// With more than one cell in flight the per-cell Monte-Carlo probes
	// run single-threaded: the parallelism budget is spent on cells, not
	// on nested worker pools. Either split gives the same table bits.
	innerWorkers := 0
	if workers > 1 {
		innerWorkers = 1
	}

	choices := make([]Choice, len(cells))
	errs := make([]error, len(cells))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(cells) {
					return
				}
				choices[i], errs[i] = probeCell(cfg, model, rc, opts, cells[i].class, cells[i].frac,
					uint64(i), innerWorkers)
			}
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	for i, c := range cells {
		s.table[cell{c.class.Name, c.frac}] = choices[i]
	}
	s.m.observeBuild(len(cells), len(opts.Techniques), cacheHits0, cacheMisses0)
	return s, nil
}

// probeCell evaluates every candidate technique on one (class, fraction)
// grid cell. cellIndex is the cell's position in the flattened class-major
// grid; in the default mode the k-th candidate uses probe number
// cellIndex*len(techniques)+k, so seeds depend only on grid position. In
// paired mode (Options.PairedTrials > 0) every candidate instead shares the
// cell-keyed substream family (common random numbers) and runs its trials
// as antithetic pairs.
func probeCell(cfg machine.Config, model *failures.Model, rc resilience.Config, opts Options,
	class workload.Class, frac float64, cellIndex uint64, workers int) (Choice, error) {
	app := workload.App{
		ID:        0,
		Class:     class,
		TimeSteps: opts.TimeSteps,
		Nodes:     cfg.NodesForFraction(frac),
	}
	probeBase := cellIndex * uint64(len(opts.Techniques))
	choice := Choice{Class: class, Fraction: frac, Best: opts.Techniques[0]}
	bestEff := math.Inf(-1)
	for ti, tech := range opts.Techniques {
		x, err := resilience.New(tech, app, cfg, model, rc)
		if err != nil {
			return Choice{}, fmt.Errorf("selection: probing %v on %s@%.0f%%: %w",
				tech, class.Name, 100*frac, err)
		}
		spec := appsim.TrialSpec{
			Executor:      x,
			HorizonFactor: opts.HorizonFactor,
			Workers:       workers,
		}
		if opts.PairedTrials > 0 {
			// Every arm runs on the same (Seed, Cell) stream family, so the
			// arms see identical failure draws and their efficiency
			// difference is measured with common random numbers.
			spec.Trials = 2 * opts.PairedTrials
			spec.Seed = opts.Seed
			spec.Cell = cellIndex
			spec.Antithetic = true
		} else {
			spec.Trials = opts.Trials
			spec.Seed = opts.Seed ^ ((probeBase + uint64(ti)) * 0x9e3779b97f4a7c15)
		}
		st := appsim.Run(spec)
		choice.Efficiency = append(choice.Efficiency, st.Efficiency.Mean)
		if st.Efficiency.Mean > bestEff {
			bestEff = st.Efficiency.Mean
			choice.Best = tech
		}
	}
	return choice, nil
}

// Techniques reports the candidate set the selector was built over.
func (s *Selector) Techniques() []core.Technique {
	return append([]core.Technique(nil), s.techniques...)
}

// Choose picks the technique for an application: its class's table row at
// the size bucket nearest the application's machine fraction.
func (s *Selector) Choose(app workload.App) core.Technique {
	frac := float64(app.Nodes) / float64(s.machine.Nodes)
	nearest := s.fractions[0]
	for _, f := range s.fractions {
		if math.Abs(f-frac) < math.Abs(nearest-frac) {
			nearest = f
		}
	}
	if c, ok := s.table[cell{app.Class.Name, nearest}]; ok {
		s.m.observeChoose(true)
		return c.Best
	}
	s.m.observeChoose(false)
	// Unknown class (user-defined): fall back to the paper's overall
	// winner, Parallel Recovery, if it is a candidate.
	for _, t := range s.techniques {
		if t == core.ParallelRecovery {
			return t
		}
	}
	return s.techniques[0]
}

// Choices returns the full selection table, ordered by class then size,
// for reports and the selection example.
func (s *Selector) Choices() []Choice {
	out := make([]Choice, 0, len(s.table))
	for _, class := range workload.Classes() {
		for _, frac := range s.fractions {
			if c, ok := s.table[cell{class.Name, frac}]; ok {
				out = append(out, c)
			}
		}
	}
	return out
}

package selection

import (
	"testing"

	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/resilience"
	"exaresil/internal/workload"
)

// buildSelector constructs a small, fast selector for tests.
func buildSelector(t *testing.T) *Selector {
	t.Helper()
	cfg := machine.Exascale()
	model := failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF())
	s, err := NewSelector(cfg, model, resilience.DefaultConfig(), Options{
		Trials:        6,
		TimeSteps:     360,
		SizeFractions: []float64{0.01, 0.25, 0.50},
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSelectorValidation(t *testing.T) {
	cfg := machine.Exascale()
	model := failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF())
	rc := resilience.DefaultConfig()
	if _, err := NewSelector(machine.Config{}, model, rc, Options{}); err == nil {
		t.Error("invalid machine accepted")
	}
	if _, err := NewSelector(cfg, nil, rc, Options{}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewSelector(cfg, model, resilience.Config{RecoverySpeedup: 0}, Options{}); err == nil {
		t.Error("invalid resilience config accepted")
	}
}

func TestSelectorTableComplete(t *testing.T) {
	s := buildSelector(t)
	choices := s.Choices()
	if want := 8 * 3; len(choices) != want {
		t.Fatalf("table has %d cells, want %d", len(choices), want)
	}
	for _, c := range choices {
		if !c.Best.Valid() || c.Best == core.Ideal {
			t.Errorf("cell %s@%.0f%%: invalid best %v", c.Class.Name, 100*c.Fraction, c.Best)
		}
		if len(c.Efficiency) != len(s.Techniques()) {
			t.Errorf("cell %s@%.0f%%: %d efficiencies for %d techniques",
				c.Class.Name, 100*c.Fraction, len(c.Efficiency), len(s.Techniques()))
		}
		// Best must actually attain the maximum probe efficiency.
		bestIdx := -1
		for i, tech := range s.Techniques() {
			if tech == c.Best {
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			t.Fatalf("best %v not among candidates", c.Best)
		}
		for i, e := range c.Efficiency {
			if e > c.Efficiency[bestIdx]+1e-12 {
				t.Errorf("cell %s@%.0f%%: candidate %d (%.4f) beats chosen best (%.4f)",
					c.Class.Name, 100*c.Fraction, i, e, c.Efficiency[bestIdx])
			}
		}
	}
}

func TestSelectorPrefersParallelRecoveryForLowComm(t *testing.T) {
	// Figure 1's conclusion: for communication-free applications Parallel
	// Recovery dominates at every size.
	s := buildSelector(t)
	for _, frac := range []float64{0.01, 0.25, 0.50} {
		app := workload.App{
			Class: workload.A32, TimeSteps: 1440,
			Nodes: machine.Exascale().NodesForFraction(frac),
		}
		if got := s.Choose(app); got != core.ParallelRecovery {
			t.Errorf("A32@%.0f%%: chose %v, want Parallel Recovery", 100*frac, got)
		}
	}
}

func TestChooseNearestBucket(t *testing.T) {
	s := buildSelector(t)
	cfg := machine.Exascale()
	// An app at 3% of the machine should use the 1% bucket (nearest of
	// {1, 25, 50}); at 40% the 50% bucket. Verify Choose is consistent
	// with the table rather than asserting which technique wins.
	for _, tc := range []struct {
		appFrac, bucket float64
	}{
		{0.03, 0.01},
		{0.20, 0.25},
		{0.40, 0.50},
		{0.90, 0.50},
	} {
		app := workload.App{Class: workload.D64, TimeSteps: 720,
			Nodes: cfg.NodesForFraction(tc.appFrac)}
		got := s.Choose(app)
		var want core.Technique
		for _, c := range s.Choices() {
			if c.Class.Name == "D64" && c.Fraction == tc.bucket {
				want = c.Best
			}
		}
		if got != want {
			t.Errorf("D64@%.0f%%: chose %v, want bucket %.0f%%'s winner %v",
				100*tc.appFrac, got, 100*tc.bucket, want)
		}
	}
}

func TestChooseUnknownClassFallsBack(t *testing.T) {
	s := buildSelector(t)
	odd := workload.App{
		Class:     workload.Class{Name: "X48", CommFraction: 0.4, MemoryPerNode: 48},
		TimeSteps: 720, Nodes: 1000,
	}
	if got := s.Choose(odd); got != core.ParallelRecovery {
		t.Errorf("unknown class fallback chose %v, want Parallel Recovery", got)
	}
}

func TestSelectorIsChooserCompatible(t *testing.T) {
	// The selector's Choose must be assignable to the cluster package's
	// TechniqueChooser (same underlying func type); compile-time check.
	s := buildSelector(t)
	var f func(workload.App) core.Technique = s.Choose
	if f == nil {
		t.Fatal("unreachable")
	}
}

func TestSelectorDeterministic(t *testing.T) {
	a := buildSelector(t)
	b := buildSelector(t)
	ca, cb := a.Choices(), b.Choices()
	for i := range ca {
		if ca[i].Best != cb[i].Best {
			t.Errorf("cell %s@%.0f%%: selectors disagree (%v vs %v)",
				ca[i].Class.Name, 100*ca[i].Fraction, ca[i].Best, cb[i].Best)
		}
	}
}

// TestParallelConstructionMatchesSerial asserts the fanned-out grid probe
// is bit-identical to a one-worker build: same winners AND same mean
// efficiencies in every cell, because probe seeds derive from grid
// position, not completion order.
func TestParallelConstructionMatchesSerial(t *testing.T) {
	build := func(workers int) *Selector {
		t.Helper()
		cfg := machine.Exascale()
		model := failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF())
		s, err := NewSelector(cfg, model, resilience.DefaultConfig(), Options{
			Trials:        4,
			TimeSteps:     360,
			SizeFractions: []float64{0.01, 0.25},
			Seed:          42,
			Workers:       workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	serial := build(1)
	parallel := build(8)
	cs, cp := serial.Choices(), parallel.Choices()
	if len(cs) != len(cp) {
		t.Fatalf("table sizes differ: %d vs %d", len(cs), len(cp))
	}
	for i := range cs {
		if cs[i].Best != cp[i].Best || cs[i].Class.Name != cp[i].Class.Name || cs[i].Fraction != cp[i].Fraction {
			t.Errorf("cell %d: serial %+v vs parallel %+v", i, cs[i], cp[i])
			continue
		}
		for j := range cs[i].Efficiency {
			if cs[i].Efficiency[j] != cp[i].Efficiency[j] {
				t.Errorf("cell %s@%g%% candidate %d: efficiency %v (serial) != %v (parallel)",
					cs[i].Class.Name, 100*cs[i].Fraction, j, cs[i].Efficiency[j], cp[i].Efficiency[j])
			}
		}
	}
}

func TestOptionsTrialValidation(t *testing.T) {
	cfg := machine.Exascale()
	model := failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF())
	rc := resilience.DefaultConfig()
	bad := []Options{
		{Trials: -1},
		{PairedTrials: -2},
		{Trials: 4, PairedTrials: 2}, // mutually exclusive
	}
	for _, opts := range bad {
		if _, err := NewSelector(cfg, model, rc, opts); err == nil {
			t.Errorf("Options %+v accepted, want an error", opts)
		}
	}
}

func TestOptionsCandidateValidation(t *testing.T) {
	// The candidate menu must hold real, executable techniques: Ideal (the
	// overhead-free baseline, not a selectable strategy) and out-of-range
	// values are rejected before any probe runs.
	cfg := machine.Exascale()
	model := failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF())
	rc := resilience.DefaultConfig()
	bad := []struct {
		name string
		menu []core.Technique
	}{
		{"ideal candidate", []core.Technique{core.Ideal}},
		{"ideal among real candidates", []core.Technique{core.CheckpointRestart, core.Ideal}},
		{"unknown technique", []core.Technique{core.Technique(99)}},
	}
	for _, tc := range bad {
		if _, err := NewSelector(cfg, model, rc, Options{Techniques: tc.menu}); err == nil {
			t.Errorf("%s: menu %v accepted, want an error", tc.name, tc.menu)
		}
	}
	// The full expanded menu (paper's five plus the post-2017 pair) builds.
	s, err := NewSelector(cfg, model, rc, Options{
		Techniques:    core.Techniques(),
		Trials:        1,
		TimeSteps:     60,
		SizeFractions: []float64{0.01},
		Seed:          3,
	})
	if err != nil {
		t.Fatalf("expanded menu rejected: %v", err)
	}
	for _, c := range s.Choices() {
		if len(c.Efficiency) != len(core.Techniques()) {
			t.Fatalf("choice probed %d arms, want %d", len(c.Efficiency), len(core.Techniques()))
		}
	}
}

func TestOptionsTrialDefaulting(t *testing.T) {
	// The zero trial configuration must fall back to the documented 20
	// probes per arm, not degenerate to zero (a zero-trial appsim run
	// panics, so a successful build proves the default applied).
	cfg := machine.Exascale()
	model := failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF())
	s, err := NewSelector(cfg, model, resilience.DefaultConfig(), Options{
		TimeSteps:     360,
		SizeFractions: []float64{0.25},
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Choices()); got != 8 {
		t.Fatalf("defaulted selector has %d cells, want 8", got)
	}
}

func TestPairedTrialsDeterministicAcrossWorkers(t *testing.T) {
	// Variance-reduced probing must keep the worker-count invariance of
	// the default mode: probe streams are keyed by grid position, never
	// by completion order.
	build := func(workers int) *Selector {
		t.Helper()
		cfg := machine.Exascale()
		model := failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF())
		s, err := NewSelector(cfg, model, resilience.DefaultConfig(), Options{
			PairedTrials:  2,
			TimeSteps:     360,
			SizeFractions: []float64{0.01, 0.25},
			Seed:          42,
			Workers:       workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	serial, parallel := build(1), build(8)
	cs, cp := serial.Choices(), parallel.Choices()
	if len(cs) != len(cp) {
		t.Fatalf("table sizes differ: %d vs %d", len(cs), len(cp))
	}
	for i := range cs {
		if cs[i].Best != cp[i].Best {
			t.Errorf("cell %d: serial best %v vs parallel best %v", i, cs[i].Best, cp[i].Best)
		}
		for j := range cs[i].Efficiency {
			if cs[i].Efficiency[j] != cp[i].Efficiency[j] {
				t.Errorf("cell %d technique %d: efficiency %v vs %v",
					i, j, cs[i].Efficiency[j], cp[i].Efficiency[j])
			}
		}
	}
}

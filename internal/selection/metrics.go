package selection

import (
	"exaresil/internal/obs"
	"exaresil/internal/resilience"
)

// selectorMetrics is the selection layer's observability bundle. Probe
// counts are recorded while the table is built; Choose counters accumulate
// over the selector's lifetime (Choose is called concurrently by cluster
// runs, and the series are atomic). The nil bundle is fully disabled.
type selectorMetrics struct {
	// probes counts Monte-Carlo candidate probes (cells x techniques);
	// cells counts grid cells evaluated.
	probes *obs.Counter
	cells  *obs.Counter
	// cacheHits/cacheMisses record the multilevel schedule memoization
	// activity attributable to the table build (a delta over the
	// process-wide counters, bracketing construction).
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	// chooseHits counts Choose calls answered from the table;
	// chooseFallbacks counts unknown-class fallbacks.
	chooseHits      *obs.Counter
	chooseFallbacks *obs.Counter
}

// newSelectorMetrics registers the selection series on r (nil r yields the
// disabled bundle).
func newSelectorMetrics(r *obs.Registry) *selectorMetrics {
	if r == nil {
		return nil
	}
	return &selectorMetrics{
		probes: r.Counter("exaresil_selection_probes_total",
			"Monte-Carlo candidate probes run while building the table"),
		cells: r.Counter("exaresil_selection_cells_total",
			"(class, size) grid cells evaluated"),
		cacheHits: r.Counter("exaresil_selection_schedule_cache_hits_total",
			"multilevel schedule cache hits during the table build"),
		cacheMisses: r.Counter("exaresil_selection_schedule_cache_misses_total",
			"multilevel schedule cache misses during the table build"),
		chooseHits: r.Counter("exaresil_selection_choose_total",
			"Choose calls by resolution", obs.L("result", "table")),
		chooseFallbacks: r.Counter("exaresil_selection_choose_total",
			"Choose calls by resolution", obs.L("result", "fallback")),
	}
}

// observeBuild folds the finished table build into the bundle: cell and
// probe counts plus the schedule-cache delta across construction.
func (m *selectorMetrics) observeBuild(cells, techniques int, hits0, misses0 uint64) {
	if m == nil {
		return
	}
	m.cells.Add(uint64(cells))
	m.probes.Add(uint64(cells * techniques))
	hits1, misses1 := resilience.ScheduleCacheStats()
	m.cacheHits.Add(hits1 - hits0)
	m.cacheMisses.Add(misses1 - misses0)
}

// observeChoose records one Choose resolution.
func (m *selectorMetrics) observeChoose(fromTable bool) {
	if m == nil {
		return
	}
	if fromTable {
		m.chooseHits.Inc()
	} else {
		m.chooseFallbacks.Inc()
	}
}

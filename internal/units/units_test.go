package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestDurationConversions(t *testing.T) {
	cases := []struct {
		name string
		d    Duration
		want float64
		get  func(Duration) float64
	}{
		{"minutes", 90 * Minute, 90, Duration.Minutes},
		{"seconds", Minute, 60, Duration.Seconds},
		{"hours", 90 * Minute, 1.5, Duration.Hours},
		{"days", 36 * Hour, 1.5, Duration.Days},
		{"years", 730 * Day, 2, Duration.Years},
		{"microsecond", Microsecond, 1e-6, Duration.Seconds},
	}
	for _, c := range cases {
		if got := c.get(c.d); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("%s: got %v want %v", c.name, got, c.want)
		}
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{10 * Year, "10y"},
		{2 * Day, "2d"},
		{3 * Hour, "3h"},
		{42 * Minute, "42min"},
		{30 * Second, "30s"},
		{200 * Second / 1000, "200ms"},
		{10 * Microsecond, "10us"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("String(%v min): got %q want %q", float64(c.d), got, c.want)
		}
	}
}

func TestDataSizeString(t *testing.T) {
	cases := []struct {
		s    DataSize
		want string
	}{
		{64 * Gigabyte, "64GB"},
		{1.5 * Terabyte, "1.5TB"},
		{2 * Petabyte, "2PB"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("String(%v GB): got %q want %q", float64(c.s), got, c.want)
		}
	}
}

func TestBandwidthTransfer(t *testing.T) {
	// 64 GB at 320 GB/s is 0.2 s: the paper's level-one checkpoint cost.
	got := (320 * GBPerSecond).Transfer(64 * Gigabyte)
	if !almostEqual(got.Seconds(), 0.2, 1e-12) {
		t.Errorf("Transfer: got %v s want 0.2 s", got.Seconds())
	}
}

func TestBandwidthTransferPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero bandwidth")
		}
	}()
	Bandwidth(0).Transfer(Gigabyte)
}

func TestRatePer(t *testing.T) {
	// A ten-year MTBF component fails at 1/(10*525600) per minute.
	r := RatePer(1, 10*Year)
	want := 1.0 / (10 * 525600)
	if !almostEqual(r.PerMinute(), want, 1e-12) {
		t.Errorf("RatePer: got %v want %v", r.PerMinute(), want)
	}
	if got := r.MeanInterval(); !almostEqual(got.Years(), 10, 1e-12) {
		t.Errorf("MeanInterval: got %v years want 10", got.Years())
	}
}

func TestRatePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"RatePer zero interval": func() { RatePer(1, 0) },
		"MeanInterval zero":     func() { Rate(0).MeanInterval() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// TestTransferRoundTrip checks size == bandwidth * Transfer(size) for
// arbitrary positive inputs.
func TestTransferRoundTrip(t *testing.T) {
	prop := func(sizeGB, bwGBs float64) bool {
		size := DataSize(math.Abs(sizeGB)) + 0.001
		bw := Bandwidth(math.Abs(bwGBs)) + 0.001
		d := bw.Transfer(size)
		return almostEqual(d.Seconds()*float64(bw), float64(size), 1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestRateRoundTrip checks RatePer(1, d).MeanInterval() == d.
func TestRateRoundTrip(t *testing.T) {
	prop := func(mins float64) bool {
		d := Duration(math.Abs(mins)) + 0.001
		return almostEqual(float64(RatePer(1, d).MeanInterval()), float64(d), 1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStringsHaveUnits(t *testing.T) {
	if !strings.HasSuffix((5 * Minute).String(), "min") {
		t.Error("Duration.String missing unit suffix")
	}
	if !strings.HasSuffix((5 * Gigabyte).String(), "GB") {
		t.Error("DataSize.String missing unit suffix")
	}
	if !strings.HasSuffix((5 * GBPerSecond).String(), "GB/s") {
		t.Error("Bandwidth.String missing unit suffix")
	}
	if !strings.HasSuffix(Rate(5).String(), "/min") {
		t.Error("Rate.String missing unit suffix")
	}
}

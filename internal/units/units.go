// Package units defines the physical quantities used throughout the
// simulator: simulation time, data sizes, bandwidths, and event rates.
//
// The canonical simulation time unit is the minute, stored as a float64,
// because the paper's application model is built from one-minute time steps
// and all of its cost equations are most naturally expressed in minutes.
// Typed wrappers keep conversions explicit and prevent unit mix-ups such as
// dividing gigabytes by a per-minute rate.
package units

import "fmt"

// Duration is a span of simulated time, measured in minutes.
type Duration float64

// Convenient duration constructors.
const (
	// Microsecond is one microsecond expressed in minutes.
	Microsecond Duration = 1.0 / 60e6
	// Second is one second expressed in minutes.
	Second Duration = 1.0 / 60.0
	// Minute is the canonical unit.
	Minute Duration = 1
	// Hour is sixty minutes.
	Hour Duration = 60
	// Day is twenty-four hours.
	Day Duration = 24 * Hour
	// Year is 365 days, the convention used for MTBF figures in the paper.
	Year Duration = 365 * Day
)

// Minutes reports d as a raw float64 minute count.
func (d Duration) Minutes() float64 { return float64(d) }

// Seconds reports d in seconds.
func (d Duration) Seconds() float64 { return float64(d) * 60 }

// Hours reports d in hours.
func (d Duration) Hours() float64 { return float64(d) / 60 }

// Days reports d in days.
func (d Duration) Days() float64 { return float64(d) / float64(Day) }

// Years reports d in (365-day) years.
func (d Duration) Years() float64 { return float64(d) / float64(Year) }

// String renders the duration with a unit chosen for readability.
func (d Duration) String() string {
	switch abs := max(d, -d); {
	case abs >= Year:
		return fmt.Sprintf("%.3gy", d.Years())
	case abs >= Day:
		return fmt.Sprintf("%.3gd", d.Days())
	case abs >= Hour:
		return fmt.Sprintf("%.3gh", d.Hours())
	case abs >= Minute:
		return fmt.Sprintf("%.4gmin", d.Minutes())
	case abs >= Second:
		return fmt.Sprintf("%.4gs", d.Seconds())
	case abs >= Second/1000:
		return fmt.Sprintf("%.4gms", d.Seconds()*1e3)
	default:
		return fmt.Sprintf("%.4gus", d.Seconds()*1e6)
	}
}

// DataSize is an amount of data, measured in gigabytes.
type DataSize float64

// Common data sizes.
const (
	// Gigabyte is the canonical unit.
	Gigabyte DataSize = 1
	// Terabyte is 1000 gigabytes.
	Terabyte DataSize = 1000
	// Petabyte is 1000 terabytes.
	Petabyte DataSize = 1000 * Terabyte
)

// Gigabytes reports s as a raw float64 gigabyte count.
func (s DataSize) Gigabytes() float64 { return float64(s) }

// String renders the size with a unit chosen for readability.
func (s DataSize) String() string {
	switch abs := max(s, -s); {
	case abs >= Petabyte:
		return fmt.Sprintf("%.4gPB", float64(s/Petabyte))
	case abs >= Terabyte:
		return fmt.Sprintf("%.4gTB", float64(s/Terabyte))
	default:
		return fmt.Sprintf("%.4gGB", float64(s))
	}
}

// Bandwidth is a data-transfer rate, measured in gigabytes per second.
type Bandwidth float64

// GBPerSecond is the canonical bandwidth unit.
const GBPerSecond Bandwidth = 1

// Transfer reports the time needed to move size at bandwidth b.
// It panics if b is not positive: a zero or negative bandwidth is always a
// configuration bug, and silently producing +Inf would poison every
// downstream cost equation.
func (b Bandwidth) Transfer(size DataSize) Duration {
	if b <= 0 {
		panic(fmt.Sprintf("units: non-positive bandwidth %v", float64(b)))
	}
	return Duration(float64(size)/float64(b)) * Second
}

// String renders the bandwidth.
func (b Bandwidth) String() string { return fmt.Sprintf("%.4gGB/s", float64(b)) }

// Rate is an event rate, measured in events per minute. It is the natural
// parameter of the exponential inter-arrival distributions used by the
// failure model.
type Rate float64

// RatePer converts an expected count of events per interval into a Rate.
// For example RatePer(1, 10*units.Year) is the failure rate of a component
// with a ten-year MTBF.
func RatePer(events float64, interval Duration) Rate {
	if interval <= 0 {
		panic(fmt.Sprintf("units: non-positive interval %v", interval))
	}
	return Rate(events / float64(interval))
}

// PerMinute reports r as a raw events-per-minute float64.
func (r Rate) PerMinute() float64 { return float64(r) }

// MeanInterval reports the expected spacing between events at rate r.
// It panics for non-positive rates.
func (r Rate) MeanInterval() Duration {
	if r <= 0 {
		panic(fmt.Sprintf("units: non-positive rate %v", float64(r)))
	}
	return Duration(1 / float64(r))
}

// String renders the rate.
func (r Rate) String() string { return fmt.Sprintf("%.4g/min", float64(r)) }

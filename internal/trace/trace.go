// Package trace collects, summarizes, and serializes execution traces of
// simulated application runs. A trace is the sequence of state transitions
// a resilience executor reports through its Observer hook; this package
// turns it into timelines for debugging, JSON Lines files for external
// analysis, and phase summaries for reports.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"exaresil/internal/resilience"
	"exaresil/internal/units"
)

// Recorder accumulates trace events. Attach its Observe method to an
// executor via resilience.Observe. Recorders are not safe for concurrent
// use; record one run at a time.
type Recorder struct {
	events []resilience.TraceEvent
}

// Observe appends one event; it is the resilience.Observer callback.
func (r *Recorder) Observe(ev resilience.TraceEvent) {
	r.events = append(r.events, ev)
}

// Reset clears the recorder for another run.
func (r *Recorder) Reset() { r.events = r.events[:0] }

// Events returns the recorded sequence.
func (r *Recorder) Events() []resilience.TraceEvent { return r.events }

// Len reports the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Summary aggregates a trace.
type Summary struct {
	// Events is the total event count.
	Events int
	// Checkpoints counts completed checkpoints by level (index 1-3).
	Checkpoints [4]int
	// Failures and Rollbacks count failure events and those that forced
	// a restore.
	Failures, Rollbacks int
	// Restores counts completed restarts by the checkpoint level restored
	// from. Index 0 counts from-scratch relaunches: restarts after a
	// failure that left no surviving checkpoint, which read nothing and
	// resume at zero progress.
	Restores [4]int
	// Completed reports whether the trace ends in completion.
	Completed bool
	// Span is the time from the first to the last event.
	Span units.Duration
}

// Summarize aggregates the recorded trace.
func (r *Recorder) Summarize() Summary {
	var s Summary
	s.Events = len(r.events)
	for _, ev := range r.events {
		switch ev.Kind {
		case resilience.TraceCheckpointEnd:
			s.Checkpoints[clampLevel(ev.Level)]++
		case resilience.TraceFailure:
			s.Failures++
			if ev.Rollback {
				s.Rollbacks++
			}
		case resilience.TraceRestartEnd:
			s.Restores[clampLevel(ev.Level)]++
		case resilience.TraceComplete:
			s.Completed = true
		}
	}
	if n := len(r.events); n > 0 {
		s.Span = r.events[n-1].Time - r.events[0].Time
	}
	return s
}

func clampLevel(level int) int {
	if level < 0 {
		return 0
	}
	if level > 3 {
		return 3
	}
	return level
}

// String renders the summary.
func (s Summary) String() string {
	status := "incomplete"
	if s.Completed {
		status = "completed"
	}
	return fmt.Sprintf("%d events over %s: %s, %d failures (%d rollbacks), checkpoints L1=%d L2=%d L3=%d",
		s.Events, s.Span, status, s.Failures, s.Rollbacks,
		s.Checkpoints[1], s.Checkpoints[2], s.Checkpoints[3])
}

// jsonEvent is the serialized form of one event, with stable field names
// for external tooling.
type jsonEvent struct {
	TimeMinutes float64 `json:"t_min"`
	Kind        string  `json:"kind"`
	ProgressMin float64 `json:"progress_min"`
	Level       int     `json:"level,omitempty"`
	Severity    int     `json:"severity,omitempty"`
	Rollback    bool    `json:"rollback,omitempty"`
}

// WriteJSONL serializes the trace as JSON Lines, one event per line.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range r.events {
		je := jsonEvent{
			TimeMinutes: ev.Time.Minutes(),
			Kind:        ev.Kind.String(),
			ProgressMin: ev.Progress.Minutes(),
			Level:       ev.Level,
			Severity:    int(ev.Severity),
			Rollback:    ev.Rollback,
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteTimeline renders a human-readable timeline. When limit is positive
// and the trace is longer, the middle is elided.
func (r *Recorder) WriteTimeline(w io.Writer, limit int) error {
	events := r.events
	elided := 0
	if limit > 0 && len(events) > limit {
		head := limit / 2
		tail := limit - head
		elided = len(events) - limit
		merged := make([]resilience.TraceEvent, 0, limit)
		merged = append(merged, events[:head]...)
		merged = append(merged, events[len(events)-tail:]...)
		events = merged
	}
	bw := bufio.NewWriter(w)
	half := len(events) / 2
	for i, ev := range events {
		if elided > 0 && i == half {
			fmt.Fprintf(bw, "... %d events elided ...\n", elided)
		}
		fmt.Fprintln(bw, ev)
	}
	return bw.Flush()
}

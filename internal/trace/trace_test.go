package trace

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"

	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/resilience"
	"exaresil/internal/rng"
	"exaresil/internal/workload"
)

// record runs one execution under observation and returns the recorder
// plus the run's result.
func record(t *testing.T, tech core.Technique) (*Recorder, resilience.Result) {
	t.Helper()
	cfg := machine.Exascale()
	model := failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF())
	app := workload.App{Class: workload.C64, TimeSteps: 720, Nodes: 12000}
	x, err := resilience.New(tech, app, cfg, model, resilience.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := &Recorder{}
	if !resilience.Observe(x, rec.Observe) {
		t.Fatalf("%v executor refused observation", tech)
	}
	res := x.Run(0, 1e8, rng.New(3))
	return rec, res
}

func TestRecorderCapturesRun(t *testing.T) {
	rec, res := record(t, core.CheckpointRestart)
	if rec.Len() == 0 {
		t.Fatal("no events recorded")
	}
	events := rec.Events()
	if events[0].Kind != resilience.TraceStart {
		t.Errorf("first event %v, want start", events[0].Kind)
	}
	if events[len(events)-1].Kind != resilience.TraceComplete {
		t.Errorf("last event %v, want complete", events[len(events)-1].Kind)
	}
	// Times nondecreasing, progress never exceeds effective work.
	var last resilience.TraceEvent
	for i, ev := range events {
		if i > 0 && ev.Time < last.Time {
			t.Fatalf("event %d goes back in time: %v after %v", i, ev.Time, last.Time)
		}
		if ev.Progress > res.EffectiveWork {
			t.Fatalf("event %d progress %v beyond total work %v", i, ev.Progress, res.EffectiveWork)
		}
		last = ev
	}
}

func TestSummaryMatchesResult(t *testing.T) {
	rec, res := record(t, core.MultilevelCheckpoint)
	s := rec.Summarize()
	if !s.Completed {
		t.Error("summary missed completion")
	}
	if s.Failures != res.Failures {
		t.Errorf("summary failures %d, result %d", s.Failures, res.Failures)
	}
	if s.Rollbacks != res.Rollbacks {
		t.Errorf("summary rollbacks %d, result %d", s.Rollbacks, res.Rollbacks)
	}
	for lvl := 1; lvl <= 3; lvl++ {
		if s.Checkpoints[lvl] != res.Checkpoints[lvl] {
			t.Errorf("summary L%d checkpoints %d, result %d", lvl, s.Checkpoints[lvl], res.Checkpoints[lvl])
		}
	}
	if s.Span != res.Makespan() {
		t.Errorf("summary span %v, makespan %v", s.Span, res.Makespan())
	}
	if !strings.Contains(s.String(), "completed") {
		t.Error("summary string missing status")
	}
}

func TestRedundancyAbsorbedFailuresVisible(t *testing.T) {
	rec, res := record(t, core.FullRedundancy)
	s := rec.Summarize()
	if s.Failures != res.Failures || s.Rollbacks != res.Rollbacks {
		t.Errorf("trace failure accounting (%d/%d) disagrees with result (%d/%d)",
			s.Failures, s.Rollbacks, res.Failures, res.Rollbacks)
	}
	if s.Failures > 0 && s.Rollbacks == s.Failures {
		t.Log("note: every failure rolled back; absorbed-failure path untested this seed")
	}
}

func TestReset(t *testing.T) {
	rec, _ := record(t, core.CheckpointRestart)
	rec.Reset()
	if rec.Len() != 0 {
		t.Error("reset did not clear events")
	}
}

func TestWriteJSONL(t *testing.T) {
	rec, _ := record(t, core.ParallelRecovery)
	var b strings.Builder
	if err := rec.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	scanner := bufio.NewScanner(strings.NewReader(b.String()))
	lines := 0
	for scanner.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(scanner.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not valid JSON: %v", lines, err)
		}
		if _, ok := ev["kind"]; !ok {
			t.Fatalf("line %d missing kind: %s", lines, scanner.Text())
		}
		lines++
	}
	if lines != rec.Len() {
		t.Errorf("wrote %d lines for %d events", lines, rec.Len())
	}
}

func TestWriteTimelineElision(t *testing.T) {
	rec, _ := record(t, core.MultilevelCheckpoint)
	if rec.Len() <= 20 {
		t.Skip("trace too short to test elision")
	}
	var b strings.Builder
	if err := rec.WriteTimeline(&b, 20); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "elided") {
		t.Error("long trace not elided")
	}
	if n := strings.Count(out, "\n"); n > 22 {
		t.Errorf("elided timeline has %d lines, want <= 21", n)
	}
	// Unlimited render includes everything.
	b.Reset()
	if err := rec.WriteTimeline(&b, 0); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(b.String(), "\n"); n != rec.Len() {
		t.Errorf("full timeline has %d lines for %d events", n, rec.Len())
	}
}

func TestIdealExecutorNotObservable(t *testing.T) {
	x := resilience.NewIdeal(workload.App{Class: workload.A32, TimeSteps: 10, Nodes: 1})
	if resilience.Observe(x, (&Recorder{}).Observe) {
		t.Error("ideal executor claimed to support observation")
	}
}

// Package report renders study results as aligned ASCII tables and CSV,
// the two formats the experiment harness and CLI emit. Every figure and
// table of the paper is regenerated as one of these tables: a "figure"
// here is its underlying data series, since the original exhibits are bar
// charts over exactly these rows.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table.
type Table struct {
	// Title is printed above the table.
	Title string
	// Note lines are printed below the title, prefixed with "# ".
	Notes []string
	// Columns are the header cells.
	Columns []string
	rows    [][]string
}

// New creates a table with the given title and columns.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddNote appends an explanatory line under the title.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// AddRow appends a row; it panics if the cell count does not match the
// header, which always indicates a harness bug.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns", len(cells), len(t.Columns)))
	}
	t.rows = append(t.rows, cells)
}

// Rows reports the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
		fmt.Fprintf(w, "%s\n", strings.Repeat("=", len(t.Title)))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}

	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}

	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintf(w, "%s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.Columns)
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// pad right-pads a cell to the column width, left-aligning text and
// right-aligning anything that parses as leading-numeric.
func pad(cell string, width int) string {
	if cell == "" {
		return strings.Repeat(" ", width)
	}
	if isNumeric(cell) {
		return strings.Repeat(" ", width-len(cell)) + cell
	}
	return cell + strings.Repeat(" ", width-len(cell))
}

// isNumeric reports whether the cell starts with a digit, sign, or dot —
// the harness's numbers, percentages, and "x ± y" cells.
func isNumeric(cell string) bool {
	c := cell[0]
	return c >= '0' && c <= '9' || c == '-' || c == '+' || c == '.'
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// WriteCSV writes the header and rows as CSV (titles and notes omitted).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Cell formatting helpers shared by the experiment drivers.

// Eff formats an efficiency with its standard deviation, as the paper's
// bar-plus-error-bar figures report.
func Eff(mean, std float64) string {
	return fmt.Sprintf("%.3f ± %.3f", mean, std)
}

// Pct formats a percentage with its standard deviation.
func Pct(mean, std float64) string {
	return fmt.Sprintf("%.1f%% ± %.1f", mean, std)
}

// F formats a float compactly.
func F(v float64) string { return fmt.Sprintf("%.4g", v) }

// I formats an integer.
func I(v int) string { return fmt.Sprintf("%d", v) }

package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Bar is one bar of a chart.
type Bar struct {
	// Label names the bar within its group.
	Label string
	// Value is the bar's magnitude; negative values render as empty.
	Value float64
	// Err is an optional error half-width, rendered numerically.
	Err float64
}

// BarChart renders grouped horizontal ASCII bars — the terminal rendering
// of the paper's bar figures. Groups correspond to x-axis positions
// (application sizes, schedulers); bars within a group to techniques.
type BarChart struct {
	// Title is printed above the chart.
	Title string
	// Unit labels the values (e.g. "efficiency", "% dropped").
	Unit string
	// Max fixes the scale; 0 auto-scales to the largest value.
	Max float64
	// Width is the maximum bar length in characters (default 40).
	Width int

	groups []barGroup
}

type barGroup struct {
	label string
	bars  []Bar
}

// NewBarChart creates a chart.
func NewBarChart(title, unit string) *BarChart {
	return &BarChart{Title: title, Unit: unit}
}

// AddGroup appends a group of bars.
func (c *BarChart) AddGroup(label string, bars ...Bar) {
	c.groups = append(c.groups, barGroup{label: label, bars: bars})
}

// Render writes the chart.
func (c *BarChart) Render(w io.Writer) {
	width := c.Width
	if width <= 0 {
		width = 40
	}
	scale := c.Max
	if scale <= 0 {
		for _, g := range c.groups {
			for _, b := range g.bars {
				if b.Value > scale {
					scale = b.Value
				}
			}
		}
	}
	if scale <= 0 {
		scale = 1
	}

	labelWidth := 0
	for _, g := range c.groups {
		for _, b := range g.bars {
			if len(b.Label) > labelWidth {
				labelWidth = len(b.Label)
			}
		}
	}

	if c.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", c.Title, strings.Repeat("=", len(c.Title)))
	}
	for gi, g := range c.groups {
		if gi > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%s\n", g.label)
		for _, b := range g.bars {
			n := int(math.Round(float64(width) * b.Value / scale))
			if n < 0 {
				n = 0
			}
			if n > width {
				n = width
			}
			errStr := ""
			if b.Err > 1e-6*math.Max(1, math.Abs(b.Value)) {
				errStr = fmt.Sprintf(" ± %.3g", b.Err)
			}
			fmt.Fprintf(w, "  %-*s |%s%s %.3g%s\n",
				labelWidth, b.Label, strings.Repeat("#", n), strings.Repeat(" ", width-n),
				b.Value, errStr)
		}
	}
	if c.Unit != "" {
		fmt.Fprintf(w, "\n(bar scale: 0 to %.3g %s)\n", scale, c.Unit)
	}
}

// String renders to a string.
func (c *BarChart) String() string {
	var b strings.Builder
	c.Render(&b)
	return b.String()
}

package report

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := New("Demo", "name", "value")
	tb.AddRow("alpha", "1.5")
	tb.AddRow("b", "10.25")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, rule, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Errorf("title line %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "name") {
		t.Errorf("header line %q", lines[2])
	}
	// Numeric cells right-align: "10.25" is wider, so "1.5" gets padding.
	if !strings.HasSuffix(lines[4], "  1.5") {
		t.Errorf("numeric cell not right-aligned: %q", lines[4])
	}
}

func TestNotes(t *testing.T) {
	tb := New("T", "c")
	tb.AddNote("seed=%d", 42)
	if !strings.Contains(tb.String(), "# seed=42") {
		t.Error("note missing from output")
	}
}

func TestAddRowPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("T", "a", "b").AddRow("only-one")
}

func TestWriteCSV(t *testing.T) {
	tb := New("T", "a", "b")
	tb.AddRow("x", "1")
	tb.AddRow("y, z", "2") // comma needs quoting
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nx,1\n\"y, z\",2\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestUntitledTable(t *testing.T) {
	tb := New("", "a")
	tb.AddRow("1")
	if strings.HasPrefix(tb.String(), "\n=") {
		t.Error("untitled table printed a title rule")
	}
}

func TestFormatters(t *testing.T) {
	if got := Eff(0.91234, 0.0456); got != "0.912 ± 0.046" {
		t.Errorf("Eff = %q", got)
	}
	if got := Pct(12.34, 5.6); got != "12.3% ± 5.6" {
		t.Errorf("Pct = %q", got)
	}
	if got := I(7); got != "7" {
		t.Errorf("I = %q", got)
	}
	if got := F(0.123456); got != "0.1235" {
		t.Errorf("F = %q", got)
	}
}

func TestRowsCount(t *testing.T) {
	tb := New("T", "a")
	if tb.Rows() != 0 {
		t.Error("fresh table has rows")
	}
	tb.AddRow("1")
	tb.AddRow("2")
	if tb.Rows() != 2 {
		t.Errorf("Rows = %d, want 2", tb.Rows())
	}
}

func TestBarChartRender(t *testing.T) {
	c := NewBarChart("Demo", "efficiency")
	c.Max = 1
	c.Width = 10
	c.AddGroup("1%",
		Bar{Label: "CR", Value: 1.0},
		Bar{Label: "PR", Value: 0.5, Err: 0.01},
	)
	c.AddGroup("100%",
		Bar{Label: "CR", Value: 0.0},
	)
	out := c.String()
	if !strings.Contains(out, "Demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "|##########") {
		t.Errorf("full bar missing:\n%s", out)
	}
	if !strings.Contains(out, "|#####") {
		t.Errorf("half bar missing:\n%s", out)
	}
	if !strings.Contains(out, "± 0.01") {
		t.Error("error annotation missing")
	}
	if !strings.Contains(out, "efficiency") {
		t.Error("unit missing")
	}
}

func TestBarChartAutoScale(t *testing.T) {
	c := NewBarChart("", "")
	c.Width = 10
	c.AddGroup("g", Bar{Label: "a", Value: 50}, Bar{Label: "b", Value: 25})
	out := c.String()
	if !strings.Contains(out, "|##########") {
		t.Errorf("largest value should fill the bar:\n%s", out)
	}
	if !strings.Contains(out, "|#####      ") {
		t.Errorf("half-size value should half-fill:\n%s", out)
	}
}

func TestBarChartDegenerateValues(t *testing.T) {
	c := NewBarChart("", "")
	c.Width = 5
	c.AddGroup("g", Bar{Label: "neg", Value: -3}, Bar{Label: "zero", Value: 0})
	out := c.String()
	if strings.Contains(out, "#") {
		t.Errorf("non-positive bars should render empty:\n%s", out)
	}
}

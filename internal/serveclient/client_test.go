package serveclient

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"exaresil/internal/serve"
)

// fastOpts keeps retry sleeps in the microsecond range so tests that
// exercise many attempts still finish instantly.
func fastOpts() Options {
	return Options{
		Backoff:      Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond},
		PollInterval: time.Millisecond,
	}
}

func digestOf(csv string) string {
	sum := sha256.Sum256([]byte(csv))
	return hex.EncodeToString(sum[:])
}

func writeJSON(t *testing.T, w http.ResponseWriter, status int, v any) {
	t.Helper()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		t.Errorf("encode response: %v", err)
	}
}

func spec(t *testing.T) serve.Spec {
	t.Helper()
	return serve.Spec{Exhibit: "fig1", Trials: 4}
}

// TestRunFirstTry is the happy path: submit answers done immediately (a
// cache hit), the result verifies, no retries happen.
func TestRunFirstTry(t *testing.T) {
	const csv = "pattern,pct\ncoordinated,41.5\n"
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			writeJSON(t, w, http.StatusOK, serve.JobView{ID: "j1", State: "done", Cache: "hit", Digest: digestOf(csv)})
		case r.Method == http.MethodGet && r.URL.Path == "/v1/jobs/j1/result":
			w.Write([]byte(csv))
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	res, err := New(srv.URL, fastOpts()).Run(context.Background(), spec(t))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.JobID != "j1" || res.Attempts != 1 || res.Cache != "hit" || string(res.CSV) != csv {
		t.Fatalf("unexpected result: %+v", res)
	}
}

// TestRunRetriesTransientSubmitErrors drives the client through 500s and
// a connection reset before letting a submit through.
func TestRunRetriesTransientSubmitErrors(t *testing.T) {
	const csv = "a,b\n1,2\n"
	var submits int
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			mu.Lock()
			submits++
			n := submits
			mu.Unlock()
			switch n {
			case 1:
				http.Error(w, "boom", http.StatusInternalServerError)
			case 2:
				panic(http.ErrAbortHandler) // connection reset
			default:
				writeJSON(t, w, http.StatusOK, serve.JobView{ID: "j1", State: "done", Cache: "miss", Digest: digestOf(csv)})
			}
		case r.URL.Path == "/v1/jobs/j1/result":
			w.Write([]byte(csv))
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	res, err := New(srv.URL, fastOpts()).Run(context.Background(), spec(t))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3 (two transient failures)", res.Attempts)
	}
}

// TestRunHonorsRetryAfter checks that a 429's Retry-After header, not
// the (tiny) backoff schedule, paces the retry: the second submit must
// not arrive before the requested pause elapses.
func TestRunHonorsRetryAfter(t *testing.T) {
	const csv = "a\n1\n"
	var mu sync.Mutex
	var times []time.Time
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			mu.Lock()
			times = append(times, time.Now())
			n := len(times)
			mu.Unlock()
			if n == 1 {
				w.Header().Set("Retry-After", "1")
				http.Error(w, "saturated", http.StatusTooManyRequests)
				return
			}
			writeJSON(t, w, http.StatusOK, serve.JobView{ID: "j1", State: "done", Digest: digestOf(csv)})
		case r.URL.Path == "/v1/jobs/j1/result":
			w.Write([]byte(csv))
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	if _, err := New(srv.URL, fastOpts()).Run(context.Background(), spec(t)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(times) != 2 {
		t.Fatalf("saw %d submits, want 2", len(times))
	}
	if gap := times[1].Sub(times[0]); gap < 900*time.Millisecond {
		t.Fatalf("retry arrived after %v; Retry-After: 1 demands ~1s", gap)
	}
}

// TestRunResubmitsFailedJob: a job that lands failed (e.g. an injected
// crash) is resubmitted, and the retry succeeds.
func TestRunResubmitsFailedJob(t *testing.T) {
	const csv = "x\n9\n"
	var mu sync.Mutex
	var submits int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			mu.Lock()
			submits++
			n := submits
			mu.Unlock()
			if n == 1 {
				writeJSON(t, w, http.StatusAccepted, serve.JobView{ID: "j1", State: "queued"})
				return
			}
			writeJSON(t, w, http.StatusOK, serve.JobView{ID: "j2", State: "done", Cache: "miss", Digest: digestOf(csv)})
		case r.URL.Path == "/v1/jobs/j1":
			writeJSON(t, w, http.StatusOK, serve.JobView{ID: "j1", State: "failed", Error: "injected worker crash"})
		case r.URL.Path == "/v1/jobs/j2/result":
			w.Write([]byte(csv))
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	res, err := New(srv.URL, fastOpts()).Run(context.Background(), spec(t))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.JobID != "j2" || res.Attempts != 2 {
		t.Fatalf("got job %s after %d attempts, want j2 after 2", res.JobID, res.Attempts)
	}
}

// TestRunResubmitsVanishedJob: a 404 while polling (job evicted from the
// bounded store) triggers a fresh submission instead of an error.
func TestRunResubmitsVanishedJob(t *testing.T) {
	const csv = "y\n3\n"
	var mu sync.Mutex
	var submits int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			mu.Lock()
			submits++
			n := submits
			mu.Unlock()
			if n == 1 {
				writeJSON(t, w, http.StatusAccepted, serve.JobView{ID: "gone", State: "queued"})
				return
			}
			writeJSON(t, w, http.StatusOK, serve.JobView{ID: "j2", State: "done", Digest: digestOf(csv)})
		case r.URL.Path == "/v1/jobs/gone":
			http.NotFound(w, r)
		case r.URL.Path == "/v1/jobs/j2/result":
			w.Write([]byte(csv))
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	res, err := New(srv.URL, fastOpts()).Run(context.Background(), spec(t))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", res.Attempts)
	}
}

// TestRunPollsToCompletion walks a job through queued → running → done.
func TestRunPollsToCompletion(t *testing.T) {
	const csv = "z\n7\n"
	var mu sync.Mutex
	var polls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			writeJSON(t, w, http.StatusAccepted, serve.JobView{ID: "j1", State: "queued"})
		case r.URL.Path == "/v1/jobs/j1":
			mu.Lock()
			polls++
			n := polls
			mu.Unlock()
			switch {
			case n == 1:
				writeJSON(t, w, http.StatusOK, serve.JobView{ID: "j1", State: "running"})
			default:
				writeJSON(t, w, http.StatusOK, serve.JobView{ID: "j1", State: "done", Cache: "miss", Digest: digestOf(csv)})
			}
		case r.URL.Path == "/v1/jobs/j1/result":
			w.Write([]byte(csv))
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	res, err := New(srv.URL, fastOpts()).Run(context.Background(), spec(t))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Attempts != 1 || string(res.CSV) != csv {
		t.Fatalf("unexpected result: %+v", res)
	}
}

// TestRunRejectsCorruptResult: a CSV whose hash disagrees with the
// advertised digest is a permanent error — never retried, never returned
// as data.
func TestRunRejectsCorruptResult(t *testing.T) {
	var mu sync.Mutex
	var submits int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			mu.Lock()
			submits++
			mu.Unlock()
			writeJSON(t, w, http.StatusOK, serve.JobView{ID: "j1", State: "done", Digest: digestOf("the real bytes")})
		case r.URL.Path == "/v1/jobs/j1/result":
			w.Write([]byte("tampered bytes"))
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	_, err := New(srv.URL, fastOpts()).Run(context.Background(), spec(t))
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("Run error = %v, want digest-mismatch failure", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if submits != 1 {
		t.Fatalf("permanent error retried: %d submits", submits)
	}
}

// TestRunBadSpecIsPermanent: a 400 is returned immediately, unretried.
func TestRunBadSpecIsPermanent(t *testing.T) {
	var mu sync.Mutex
	var submits int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		submits++
		mu.Unlock()
		http.Error(w, `{"error":"unknown exhibit"}`, http.StatusBadRequest)
	}))
	defer srv.Close()

	_, err := New(srv.URL, fastOpts()).Run(context.Background(), spec(t))
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("Run error = %v, want submit-rejected failure", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if submits != 1 {
		t.Fatalf("permanent 400 retried: %d submits", submits)
	}
}

// TestRunDeadlinePropagates: a context deadline cuts through backoff
// sleeps and surfaces as the returned error.
func TestRunDeadlinePropagates(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	opts := fastOpts()
	opts.Backoff = Backoff{Base: 50 * time.Millisecond, Max: time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := New(srv.URL, opts).Run(ctx, spec(t))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run error = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("deadline ignored for %v", elapsed)
	}
}

// TestRunExhaustsAttempts: with the server permanently down, Run stops
// at MaxAttempts and reports the last failure.
func TestRunExhaustsAttempts(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	opts := fastOpts()
	opts.MaxAttempts = 3
	_, err := New(srv.URL, opts).Run(context.Background(), spec(t))
	if err == nil || !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("Run error = %v, want attempt exhaustion", err)
	}
}

// TestNewSplitsEndpointList: a comma-separated base becomes an ordered
// endpoint list, whitespace and trailing slashes trimmed.
func TestNewSplitsEndpointList(t *testing.T) {
	c := New("http://a:1/, http://b:2 ,http://c:3", fastOpts())
	got := c.Endpoints()
	want := []string{"http://a:1", "http://b:2", "http://c:3"}
	if len(got) != len(want) {
		t.Fatalf("endpoints = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("endpoints = %v, want %v", got, want)
		}
	}
}

// TestRunFailsOverToSecondEndpoint: the first endpoint is already dead
// (connection refused), so the client rotates to the second and the run
// succeeds there.
func TestRunFailsOverToSecondEndpoint(t *testing.T) {
	const csv = "a,b\n1,2\n"
	alive := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			writeJSON(t, w, http.StatusOK, serve.JobView{ID: "j1", State: "done", Cache: "hit", Digest: digestOf(csv)})
		case r.Method == http.MethodGet && r.URL.Path == "/v1/jobs/j1/result":
			w.Write([]byte(csv))
		default:
			http.NotFound(w, r)
		}
	}))
	defer alive.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // refuse every connection

	c := New(dead.URL+","+alive.URL, fastOpts())
	res, err := c.Run(context.Background(), spec(t))
	if err != nil {
		t.Fatalf("Run with a dead first endpoint: %v", err)
	}
	if string(res.CSV) != csv || res.Attempts < 2 {
		t.Fatalf("unexpected result: attempts=%d csv=%q", res.Attempts, res.CSV)
	}
}

// TestRunRotatesAwayFromDrainingEndpoint: a 503 (draining mesh listener)
// moves the cursor so the retry lands on the healthy endpoint.
func TestRunRotatesAwayFromDrainingEndpoint(t *testing.T) {
	const csv = "a,b\n1,2\n"
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			writeJSON(t, w, http.StatusOK, serve.JobView{ID: "j1", State: "done", Cache: "hit", Digest: digestOf(csv)})
		case r.Method == http.MethodGet && r.URL.Path == "/v1/jobs/j1/result":
			w.Write([]byte(csv))
		default:
			http.NotFound(w, r)
		}
	}))
	defer healthy.Close()
	var drainingHits int32
	draining := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&drainingHits, 1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer draining.Close()

	opts := fastOpts()
	opts.Backoff = Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}
	c := New(draining.URL+","+healthy.URL, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := c.Run(ctx, spec(t))
	if err != nil {
		t.Fatalf("Run with a draining first endpoint: %v", err)
	}
	if string(res.CSV) != csv {
		t.Fatalf("wrong csv %q", res.CSV)
	}
	if n := atomic.LoadInt32(&drainingHits); n != 1 {
		t.Fatalf("draining endpoint was hit %d times, want exactly 1 (cursor should rotate away)", n)
	}
}

package serveclient

import (
	"net/http"
	"testing"
	"time"
)

// TestBackoffSchedule pins the unjittered schedule: exponential growth
// from Base by Factor, capped at Max, with Retry-After overriding all of
// it verbatim.
func TestBackoffSchedule(t *testing.T) {
	cases := []struct {
		name       string
		b          Backoff
		attempt    int
		retryAfter time.Duration
		want       time.Duration
	}{
		{"defaults attempt 0", Backoff{}, 0, 0, 50 * time.Millisecond},
		{"defaults attempt 1", Backoff{}, 1, 0, 100 * time.Millisecond},
		{"defaults attempt 3", Backoff{}, 3, 0, 400 * time.Millisecond},
		{"defaults capped", Backoff{}, 20, 0, 5 * time.Second},
		{"negative attempt clamps to 0", Backoff{}, -3, 0, 50 * time.Millisecond},
		{"custom base and factor", Backoff{Base: 10 * time.Millisecond, Factor: 3}, 2, 0, 90 * time.Millisecond},
		{"custom max", Backoff{Base: time.Second, Max: 2 * time.Second}, 5, 0, 2 * time.Second},
		{"huge attempt does not overflow", Backoff{}, 1 << 20, 0, 5 * time.Second},
		{"retry-after overrides schedule", Backoff{}, 0, 3 * time.Second, 3 * time.Second},
		{"retry-after overrides the cap", Backoff{Max: time.Second}, 0, 30 * time.Second, 30 * time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.b.Delay(tc.attempt, tc.retryAfter, nil); got != tc.want {
				t.Fatalf("Delay(%d, %v) = %v, want %v", tc.attempt, tc.retryAfter, got, tc.want)
			}
		})
	}
}

// TestBackoffJitterBounds draws many jittered delays and checks each one
// lands in [(1-Jitter)·d, d] — jitter only ever shortens the wait.
func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Jitter: 0.5}
	full := b.Delay(2, 0, nil) // 400ms unjittered
	floor := time.Duration(float64(full) * 0.5)
	seq := []float64{0, 0.25, 0.5, 0.9999, 0.1}
	i := 0
	rnd := func() float64 { v := seq[i%len(seq)]; i++; return v }
	seen := map[time.Duration]bool{}
	for range seq {
		d := b.Delay(2, 0, rnd)
		if d < floor || d > full {
			t.Fatalf("jittered delay %v outside [%v, %v]", d, floor, full)
		}
		seen[d] = true
	}
	if len(seen) < 3 {
		t.Fatalf("jitter produced only %d distinct delays from %d distinct variates", len(seen), len(seq))
	}
	// Retry-After stays unjittered even with a rnd source supplied.
	if got := b.Delay(2, time.Second, rnd); got != time.Second {
		t.Fatalf("jittered Retry-After = %v, want exactly 1s", got)
	}
}

// TestParseRetryAfter covers the integer-seconds header contract.
func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", 0},
		{"2", 2 * time.Second},
		{" 7 ", 7 * time.Second},
		{"0", 0},
		{"-3", 0},
		{"soon", 0},
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0},
	}
	for _, tc := range cases {
		h := http.Header{}
		if tc.header != "" {
			h.Set("Retry-After", tc.header)
		}
		if got := parseRetryAfter(h); got != tc.want {
			t.Fatalf("parseRetryAfter(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}

package serveclient

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"exaresil/internal/rng"
	"exaresil/internal/serve"
)

// Options tunes a Client. The zero value is usable.
type Options struct {
	// HTTP is the transport (default http.DefaultClient). Per-request
	// contexts still bound every call.
	HTTP *http.Client
	// Backoff shapes the retry schedule.
	Backoff Backoff
	// MaxAttempts bounds submissions per Run — the first plus every
	// retry and resubmission (default 8).
	MaxAttempts int
	// PollInterval paces job polling (default 25ms).
	PollInterval time.Duration
	// Seed drives the jitter stream (default 1); equal seeds give equal
	// schedules.
	Seed uint64
}

// Client talks to one or more exaserve endpoints with retries, backoff,
// and result verification. Safe for concurrent use. With several
// endpoints (comma-separated base), a transport error or 503 rotates to
// the next endpoint before the retry — client-side failover for meshes
// fronted by independent listeners.
type Client struct {
	bases       []string
	hc          *http.Client
	bo          Backoff
	maxAttempts int
	poll        time.Duration

	cur atomic.Uint64 // index into bases of the preferred endpoint

	mu  sync.Mutex
	rnd *rng.Source
}

// New builds a client for the server at base (e.g.
// "http://127.0.0.1:8080"). base may list several endpoints separated by
// commas; the client sticks to one until it stops answering.
func New(base string, opts Options) *Client {
	if opts.HTTP == nil {
		opts.HTTP = http.DefaultClient
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 8
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 25 * time.Millisecond
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	var bases []string
	for _, b := range strings.Split(base, ",") {
		if b = strings.TrimRight(strings.TrimSpace(b), "/"); b != "" {
			bases = append(bases, b)
		}
	}
	if len(bases) == 0 {
		bases = []string{""}
	}
	return &Client{
		bases:       bases,
		hc:          opts.HTTP,
		bo:          opts.Backoff,
		maxAttempts: opts.MaxAttempts,
		poll:        opts.PollInterval,
		rnd:         rng.New(seed),
	}
}

// Endpoints reports the configured endpoint list.
func (c *Client) Endpoints() []string { return append([]string(nil), c.bases...) }

// endpoint is the currently preferred base URL.
func (c *Client) endpoint() string {
	return c.bases[c.cur.Load()%uint64(len(c.bases))]
}

// rotate moves to the next endpoint after from stopped answering; a
// concurrent caller that already rotated wins (CAS), so a burst of
// failures against one endpoint advances the cursor once.
func (c *Client) rotate(from uint64) {
	if len(c.bases) > 1 {
		c.cur.CompareAndSwap(from, from+1)
	}
}

// RunResult is one successfully completed job.
type RunResult struct {
	// JobID is the job that finally produced the result.
	JobID string
	// Cache is the final job's cache disposition (miss, hit, joined).
	Cache string
	// CSV is the exhibit's result, verified against Digest.
	CSV []byte
	// Digest is the CSV's SHA-256 as the server advertised it.
	Digest string
	// Attempts is the number of submissions Run performed (1 = no
	// retries were needed).
	Attempts int
}

// permanentError marks failures that retrying cannot fix (bad spec,
// corrupt result); Run returns them immediately.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// errResubmit marks a job that ended without a result (failed, canceled,
// or evicted); the spec is safe to resubmit — the server dedups by spec
// hash and resumes grid work from its snapshot.
var errResubmit = errors.New("serveclient: job ended without a result")

// Run submits spec, polls its job to completion, fetches and verifies
// the result, and retries every transient failure along the way:
// transport errors, 5xx, 429/503 (honoring Retry-After), failed or
// vanished jobs. It returns the verified result, a permanent error, or —
// once the attempt budget is spent or ctx expires — the last failure.
func (c *Client) Run(ctx context.Context, spec serve.Spec) (*RunResult, error) {
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("serveclient: %w (last failure: %v)", err, lastErr)
		}
		if attempt > 0 {
			var retryAfter time.Duration
			var ra *retryAfterError
			if errors.As(lastErr, &ra) {
				retryAfter = ra.after
			}
			if err := c.sleep(ctx, c.bo.Delay(attempt-1, retryAfter, c.uniform)); err != nil {
				return nil, fmt.Errorf("serveclient: %w (last failure: %v)", err, lastErr)
			}
		}
		view, err := c.submit(ctx, spec)
		if err != nil {
			var perm *permanentError
			if errors.As(err, &perm) {
				return nil, err
			}
			lastErr = err
			continue
		}
		res, err := c.await(ctx, view)
		if err != nil {
			var perm *permanentError
			if errors.As(err, &perm) {
				return nil, err
			}
			lastErr = err
			continue
		}
		res.Attempts = attempt + 1
		return res, nil
	}
	return nil, fmt.Errorf("serveclient: giving up after %d attempts: %w", c.maxAttempts, lastErr)
}

// retryAfterError carries a server-requested pause to the backoff.
type retryAfterError struct {
	status int
	after  time.Duration
}

func (e *retryAfterError) Error() string {
	return fmt.Sprintf("serveclient: server busy (HTTP %d, retry after %s)", e.status, e.after)
}

// submit POSTs the spec once.
func (c *Client) submit(ctx context.Context, spec serve.Spec) (serve.JobView, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return serve.JobView{}, &permanentError{fmt.Errorf("serveclient: encode spec: %w", err)}
	}
	at := c.cur.Load()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.endpoint()+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return serve.JobView{}, &permanentError{err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		c.rotate(at)
		return serve.JobView{}, fmt.Errorf("serveclient: submit: %w", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	switch {
	case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted:
		var v serve.JobView
		if err := json.Unmarshal(raw, &v); err != nil {
			return serve.JobView{}, fmt.Errorf("serveclient: decode job view: %w", err)
		}
		return v, nil
	case resp.StatusCode == http.StatusServiceUnavailable:
		// Draining or dead endpoint: prefer another one next attempt.
		c.rotate(at)
		return serve.JobView{}, &retryAfterError{status: resp.StatusCode, after: parseRetryAfter(resp.Header)}
	case resp.StatusCode == http.StatusTooManyRequests:
		return serve.JobView{}, &retryAfterError{status: resp.StatusCode, after: parseRetryAfter(resp.Header)}
	case resp.StatusCode >= 500:
		return serve.JobView{}, fmt.Errorf("serveclient: submit: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	default:
		return serve.JobView{}, &permanentError{fmt.Errorf("serveclient: submit rejected: HTTP %d: %s",
			resp.StatusCode, strings.TrimSpace(string(raw)))}
	}
}

// await polls the job to a terminal state and fetches its result. Poll
// and fetch failures are tolerated a bounded number of consecutive
// times; a vanished (404) or failed job returns errResubmit so Run can
// resubmit idempotently.
func (c *Client) await(ctx context.Context, view serve.JobView) (*RunResult, error) {
	const maxConsecutive = 10
	failures := 0
	for {
		switch view.State {
		case "done":
			csv, err := c.fetchResult(ctx, view)
			if err != nil {
				return nil, err
			}
			return &RunResult{JobID: view.ID, Cache: view.Cache, CSV: csv, Digest: view.Digest}, nil
		case "failed", "canceled":
			return nil, fmt.Errorf("%w: job %s %s: %s", errResubmit, view.ID, view.State, view.Error)
		}
		if err := c.sleep(ctx, c.poll); err != nil {
			return nil, err
		}
		next, code, err := c.getJob(ctx, view.ID)
		switch {
		case err != nil || code >= 500:
			failures++
			if failures >= maxConsecutive {
				return nil, fmt.Errorf("%w: job %s unpollable (%d consecutive failures, last: HTTP %d, %v)",
					errResubmit, view.ID, failures, code, err)
			}
			if serr := c.sleep(ctx, c.bo.Delay(failures-1, 0, c.uniform)); serr != nil {
				return nil, serr
			}
		case code == http.StatusNotFound:
			return nil, fmt.Errorf("%w: job %s vanished (evicted or lost)", errResubmit, view.ID)
		case code == http.StatusOK:
			failures = 0
			view = next
		default:
			return nil, &permanentError{fmt.Errorf("serveclient: poll %s: unexpected HTTP %d", view.ID, code)}
		}
	}
}

// getJob GETs one job view.
func (c *Client) getJob(ctx context.Context, id string) (serve.JobView, int, error) {
	at := c.cur.Load()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.endpoint()+"/v1/jobs/"+id, nil)
	if err != nil {
		return serve.JobView{}, 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.rotate(at)
		return serve.JobView{}, 0, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return serve.JobView{}, resp.StatusCode, nil
	}
	var v serve.JobView
	if err := json.Unmarshal(raw, &v); err != nil {
		return serve.JobView{}, resp.StatusCode, err
	}
	return v, resp.StatusCode, nil
}

// fetchResult downloads a done job's CSV and verifies it against the
// advertised digest — a corrupted or wrong result is a permanent error,
// never silently accepted.
func (c *Client) fetchResult(ctx context.Context, view serve.JobView) ([]byte, error) {
	const tries = 3
	var lastErr error
	for i := 0; i < tries; i++ {
		if i > 0 {
			if err := c.sleep(ctx, c.bo.Delay(i-1, 0, c.uniform)); err != nil {
				return nil, err
			}
		}
		at := c.cur.Load()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.endpoint()+"/v1/jobs/"+view.ID+"/result", nil)
		if err != nil {
			return nil, &permanentError{err}
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			c.rotate(at)
			lastErr = err
			continue
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("serveclient: result %s: HTTP %d", view.ID, resp.StatusCode)
			if resp.StatusCode == http.StatusConflict || resp.StatusCode == http.StatusNotFound {
				// The job regressed out from under us (evicted): resubmit.
				return nil, fmt.Errorf("%w: %v", errResubmit, lastErr)
			}
			continue
		}
		sum := sha256.Sum256(raw)
		if got := hex.EncodeToString(sum[:]); view.Digest != "" && got != view.Digest {
			return nil, &permanentError{fmt.Errorf("serveclient: result %s corrupt: sha256 %s, job advertises %s",
				view.ID, got, view.Digest)}
		}
		if hdr := resp.Header.Get("X-Exaresil-Digest"); hdr != "" && view.Digest != "" && hdr != view.Digest {
			return nil, &permanentError{fmt.Errorf("serveclient: result %s: header digest %s != job digest %s",
				view.ID, hdr, view.Digest)}
		}
		return raw, nil
	}
	return nil, fmt.Errorf("serveclient: result %s unfetchable: %w", view.ID, lastErr)
}

// uniform draws one jitter variate; the source is guarded because Run
// may be called from many goroutines.
func (c *Client) uniform() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rnd.Float64()
}

// sleep waits d or until ctx ends.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// parseRetryAfter reads an integer-seconds Retry-After header (the only
// form exaserve emits); absent or unparsable headers yield 0, letting
// the backoff schedule decide.
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Package serveclient is the resilient client for the exaserve HTTP job
// API (introduced in PR 5; see DESIGN.md §10). Where internal/serve makes
// the server survive faults, this package makes a caller survive a faulty
// server: it retries transport errors and 5xx responses with capped
// exponential backoff plus jitter, honors the server's Retry-After on 429
// and 503, propagates context deadlines through every wait, and — the
// property the whole design leans on — retries idempotently.
//
// Idempotency comes from the server's spec canonicalization: a resubmitted
// spec hashes to the same cache key, so a retry joins the still-running
// flight, hits the result cache, or resumes the failed attempt from its
// checkpoint snapshot rather than launching duplicate work. The client
// therefore resubmits failed and vanished jobs freely, up to its attempt
// budget.
//
// Run also verifies every result end to end: the fetched CSV's SHA-256
// must equal the digest the job view advertises, so an injected fault can
// delay an answer but never corrupt one unnoticed. scripts/chaos_soak.sh
// drives this client against a chaos-injected server (internal/chaos) and
// asserts exactly that.
package serveclient

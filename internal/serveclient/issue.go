package serveclient

import (
	"context"
	"errors"
	"net/http"
	"time"

	"exaresil/internal/serve"
)

// The classes Issue reports. Unlike Run, Issue never retries: open-loop
// load generation needs each arrival's raw fate, not an eventually
// consistent answer.
const (
	// IssueOK: the job reached done; Latency spans submit to terminal.
	IssueOK = "ok"
	// IssueRejected: the server answered 429 (queue saturated).
	IssueRejected = "rejected"
	// IssueUnavailable: the server answered 503 (draining or a mesh
	// front-door reject); the client rotated endpoints for next time.
	IssueUnavailable = "unavailable"
	// IssueFailed: the job was admitted but ended failed, canceled, or
	// vanished.
	IssueFailed = "failed"
	// IssueError: transport failure, 5xx, or an unclassifiable response.
	IssueError = "error"
)

// IssueResult is one open-loop request's fate.
type IssueResult struct {
	// Class is one of the Issue* constants.
	Class string
	// JobID names the admitted job, when one existed.
	JobID string
	// Cache is the admission's cache disposition (hit, miss, joined).
	Cache string
	// Latency spans submit to the terminal poll (or to the rejection).
	Latency time.Duration
	// RetryAfter carries the server's backpressure hint on 429/503.
	RetryAfter time.Duration
	// Err holds the underlying failure for the error classes.
	Err error
}

// Issue performs exactly one open-loop request: submit the spec once (no
// retries, no resubmission), poll an admitted job to its terminal state,
// and classify what happened. The endpoint-rotation rules match Run —
// a transport error or 503 moves the preferred endpoint forward — so a
// generator hammering a mesh drifts off dead replicas without ever
// re-sending a request the measurement already counted.
func (c *Client) Issue(ctx context.Context, spec serve.Spec) IssueResult {
	start := time.Now()
	view, err := c.submit(ctx, spec)
	if err != nil {
		res := IssueResult{Latency: time.Since(start), Err: err}
		var ra *retryAfterError
		switch {
		case errors.As(err, &ra) && ra.status == http.StatusTooManyRequests:
			res.Class = IssueRejected
			res.RetryAfter = ra.after
		case errors.As(err, &ra) && ra.status == http.StatusServiceUnavailable:
			res.Class = IssueUnavailable
			res.RetryAfter = ra.after
		default:
			res.Class = IssueError
		}
		return res
	}

	const maxConsecutive = 5
	failures := 0
	for {
		switch view.State {
		case "done":
			return IssueResult{Class: IssueOK, JobID: view.ID, Cache: view.Cache, Latency: time.Since(start)}
		case "failed", "canceled":
			return IssueResult{Class: IssueFailed, JobID: view.ID, Cache: view.Cache,
				Latency: time.Since(start), Err: errors.New("serveclient: job ended " + view.State)}
		}
		if err := c.sleep(ctx, c.poll); err != nil {
			return IssueResult{Class: IssueError, JobID: view.ID, Latency: time.Since(start), Err: err}
		}
		next, code, err := c.getJob(ctx, view.ID)
		switch {
		case err != nil || code >= 500:
			failures++
			if failures >= maxConsecutive {
				return IssueResult{Class: IssueError, JobID: view.ID, Latency: time.Since(start), Err: err}
			}
		case code == http.StatusNotFound:
			return IssueResult{Class: IssueFailed, JobID: view.ID, Latency: time.Since(start),
				Err: errors.New("serveclient: job vanished")}
		case code == http.StatusOK:
			failures = 0
			view = next
		default:
			return IssueResult{Class: IssueError, JobID: view.ID, Latency: time.Since(start),
				Err: errors.New("serveclient: unexpected poll status")}
		}
	}
}

package serveclient

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"exaresil/internal/serve"
)

// TestIssueOK: submit answers done immediately (a cache hit); Issue
// classifies ok without any polling or retry.
func TestIssueOK(t *testing.T) {
	var submits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
			submits.Add(1)
			writeJSON(t, w, http.StatusOK, serve.JobView{ID: "j1", State: "done", Cache: "hit"})
			return
		}
		http.NotFound(w, r)
	}))
	defer srv.Close()
	c := New(srv.URL, fastOpts())
	res := c.Issue(context.Background(), spec(t))
	if res.Class != IssueOK || res.JobID != "j1" || res.Cache != "hit" {
		t.Fatalf("got %+v, want ok/j1/hit", res)
	}
	if n := submits.Load(); n != 1 {
		t.Fatalf("server saw %d submits, want exactly 1", n)
	}
}

// TestIssuePollsToTerminal: an admitted job is polled through queued and
// running to done.
func TestIssuePollsToTerminal(t *testing.T) {
	states := []string{"queued", "running", "done"}
	var polls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			writeJSON(t, w, http.StatusAccepted, serve.JobView{ID: "j1", State: "queued", Cache: "miss"})
		case r.Method == http.MethodGet && r.URL.Path == "/v1/jobs/j1":
			i := polls.Add(1)
			if int(i) > len(states) {
				i = int64(len(states))
			}
			writeJSON(t, w, http.StatusOK, serve.JobView{ID: "j1", State: states[i-1], Cache: "miss"})
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()
	c := New(srv.URL, fastOpts())
	res := c.Issue(context.Background(), spec(t))
	if res.Class != IssueOK || res.Cache != "miss" {
		t.Fatalf("got %+v, want ok/miss", res)
	}
	if res.Latency <= 0 {
		t.Errorf("latency %v, want positive", res.Latency)
	}
}

// TestIssueNeverRetries is the open-loop contract: whatever the server
// answers at submit, the server sees exactly one POST per Issue call.
func TestIssueNeverRetries(t *testing.T) {
	cases := []struct {
		name      string
		status    int
		wantClass string
	}{
		{"saturated", http.StatusTooManyRequests, IssueRejected},
		{"draining", http.StatusServiceUnavailable, IssueUnavailable},
		{"server error", http.StatusInternalServerError, IssueError},
		{"bad spec", http.StatusBadRequest, IssueError},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var submits atomic.Int64
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				submits.Add(1)
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(tc.status)
			}))
			defer srv.Close()
			c := New(srv.URL, fastOpts())
			res := c.Issue(context.Background(), spec(t))
			if res.Class != tc.wantClass {
				t.Fatalf("HTTP %d classified %q, want %q", tc.status, res.Class, tc.wantClass)
			}
			if res.Err == nil {
				t.Error("non-ok classes must carry the underlying error")
			}
			if n := submits.Load(); n != 1 {
				t.Fatalf("server saw %d submits, want exactly 1 (Issue must not retry)", n)
			}
			if (tc.status == http.StatusTooManyRequests || tc.status == http.StatusServiceUnavailable) &&
				res.RetryAfter != time.Second {
				t.Errorf("RetryAfter = %v, want 1s from the header", res.RetryAfter)
			}
		})
	}
}

// TestIssueFailedJob: an admitted job that terminates failed classifies
// failed, not error.
func TestIssueFailedJob(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			writeJSON(t, w, http.StatusAccepted, serve.JobView{ID: "j1", State: "queued"})
		case r.Method == http.MethodGet && r.URL.Path == "/v1/jobs/j1":
			writeJSON(t, w, http.StatusOK, serve.JobView{ID: "j1", State: "failed", Error: "boom"})
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()
	c := New(srv.URL, fastOpts())
	res := c.Issue(context.Background(), spec(t))
	if res.Class != IssueFailed {
		t.Fatalf("got %q, want %q", res.Class, IssueFailed)
	}
}

// TestIssueVanishedJob: a 404 while polling (store eviction) is failed —
// the request's fate is known, just not its result.
func TestIssueVanishedJob(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			writeJSON(t, w, http.StatusAccepted, serve.JobView{ID: "j1", State: "queued"})
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()
	c := New(srv.URL, fastOpts())
	res := c.Issue(context.Background(), spec(t))
	if res.Class != IssueFailed {
		t.Fatalf("got %q, want %q", res.Class, IssueFailed)
	}
}

// rotationHarness runs two live endpoints and returns which one served
// each submit, so tests can assert the rotation order.
type rotationHarness struct {
	order *[]string
	base  string
	close func()
}

func newRotationHarness(t *testing.T, statusA int) *rotationHarness {
	t.Helper()
	order := &[]string{}
	handler := func(name string, status int) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
				*order = append(*order, name)
				if status != http.StatusOK {
					w.WriteHeader(status)
					return
				}
				writeJSON(t, w, http.StatusOK, serve.JobView{ID: "j1", State: "done", Cache: "hit"})
				return
			}
			http.NotFound(w, r)
		}
	}
	a := httptest.NewServer(handler("a", statusA))
	b := httptest.NewServer(handler("b", http.StatusOK))
	return &rotationHarness{
		order: order,
		base:  a.URL + "," + b.URL,
		close: func() { a.Close(); b.Close() },
	}
}

// TestIssueRotatesOn503: endpoint a drains (503); the first Issue reports
// unavailable but rotates the preference, so the next Issue lands on b.
func TestIssueRotatesOn503(t *testing.T) {
	h := newRotationHarness(t, http.StatusServiceUnavailable)
	defer h.close()
	c := New(h.base, fastOpts())

	first := c.Issue(context.Background(), spec(t))
	if first.Class != IssueUnavailable {
		t.Fatalf("first issue: got %q, want %q", first.Class, IssueUnavailable)
	}
	second := c.Issue(context.Background(), spec(t))
	if second.Class != IssueOK {
		t.Fatalf("second issue: got %q, want %q", second.Class, IssueOK)
	}
	if got := *h.order; len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("submit order %v, want [a b]", got)
	}
}

// TestIssueRotatesOnTransportError: endpoint a is shut down entirely
// (connection refused); the generator drifts to b without resending the
// failed request.
func TestIssueRotatesOnTransportError(t *testing.T) {
	h := newRotationHarness(t, http.StatusOK)
	defer h.close()
	// Stand up a dead endpoint in front of the live pair's second server.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // now nothing listens there

	c := New(deadURL+","+h.base, fastOpts())

	first := c.Issue(context.Background(), spec(t))
	if first.Class != IssueError {
		t.Fatalf("first issue: got %q (err %v), want %q", first.Class, first.Err, IssueError)
	}
	second := c.Issue(context.Background(), spec(t))
	if second.Class != IssueOK {
		t.Fatalf("second issue: got %q, want %q", second.Class, IssueOK)
	}
	if got := *h.order; len(got) != 1 || got[0] != "a" {
		t.Fatalf("submit order %v, want [a] (the dead endpoint never records)", got)
	}
}

// TestIssueNoRotationOn429: saturation is the shard's verdict, not the
// endpoint's — a 429 must NOT move the cursor, or a loaded mesh would
// thrash its cache affinity.
func TestIssueNoRotationOn429(t *testing.T) {
	h := newRotationHarness(t, http.StatusTooManyRequests)
	defer h.close()
	c := New(h.base, fastOpts())

	for i := 0; i < 3; i++ {
		res := c.Issue(context.Background(), spec(t))
		if res.Class != IssueRejected {
			t.Fatalf("issue %d: got %q, want %q", i, res.Class, IssueRejected)
		}
	}
	for i, name := range *h.order {
		if name != "a" {
			t.Fatalf("submit %d went to %q: 429 must not rotate endpoints", i, name)
		}
	}
}

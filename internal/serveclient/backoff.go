package serveclient

import (
	"math"
	"time"
)

// Backoff computes retry delays: capped exponential growth with
// multiplicative jitter, overridden by a server-supplied Retry-After.
// The zero value is usable and means the defaults below.
type Backoff struct {
	// Base is the delay before the first retry (default 50ms).
	Base time.Duration
	// Max caps the computed delay (default 5s). A Retry-After larger
	// than Max is still honored: the server knows its queue better than
	// the client's cap does.
	Max time.Duration
	// Factor is the per-attempt growth multiplier (default 2).
	Factor float64
	// Jitter is the fraction of the delay randomized away, in [0, 1]
	// (default 0.2): the returned delay lies in [(1-Jitter)·d, d], which
	// de-synchronizes retry herds without ever exceeding the schedule.
	Jitter float64
}

// withDefaults fills unset knobs.
func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter < 0 || b.Jitter > 1 {
		b.Jitter = 0.2
	}
	return b
}

// Delay returns the pause before retry number attempt (0-based: attempt
// 0 follows the first failure). A positive retryAfter — the server's
// Retry-After header — overrides the computed schedule entirely and is
// returned unjittered. rnd supplies uniform [0, 1) variates for jitter;
// nil disables jitter, which keeps the schedule pure for tests.
func (b Backoff) Delay(attempt int, retryAfter time.Duration, rnd func() float64) time.Duration {
	b = b.withDefaults()
	if retryAfter > 0 {
		return retryAfter
	}
	if attempt < 0 {
		attempt = 0
	}
	d := float64(b.Base) * math.Pow(b.Factor, float64(attempt))
	if d > float64(b.Max) || math.IsInf(d, 1) || math.IsNaN(d) {
		d = float64(b.Max)
	}
	if rnd != nil && b.Jitter > 0 {
		d -= b.Jitter * d * rnd()
	}
	return time.Duration(d)
}

package energy

import (
	"math"
	"testing"

	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/resilience"
	"exaresil/internal/rng"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

func TestJoulesConversions(t *testing.T) {
	j := Joules(3.6e6)
	if j.KWh() != 1 {
		t.Errorf("3.6 MJ = %v kWh, want 1", j.KWh())
	}
	if Joules(3.6e9).MWh() != 1 {
		t.Errorf("3.6 GJ = %v MWh, want 1", Joules(3.6e9).MWh())
	}
}

func TestJoulesString(t *testing.T) {
	cases := map[Joules]string{
		100:   "100J",
		7.2e6: "2kWh",
		7.2e9: "2MWh",
	}
	for j, want := range cases {
		if got := j.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", float64(j), got, want)
		}
	}
}

func TestPowerModelValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("default power model invalid: %v", err)
	}
	bad := []PowerModel{
		{Compute: 0, IO: 1, Idle: 1},
		{Compute: 100, IO: 200, Idle: 50},  // IO above compute
		{Compute: 300, IO: 200, Idle: 250}, // idle above IO
	}
	for i, pm := range bad {
		if err := pm.Validate(); err == nil {
			t.Errorf("bad power model %d accepted", i)
		}
	}
}

func TestAccountFailureFreeRun(t *testing.T) {
	// A synthetic result with no failures: pure compute + checkpoints.
	res := resilience.Result{
		Technique:      core.CheckpointRestart,
		Completed:      true,
		Start:          0,
		End:            1100,
		Baseline:       1000,
		EffectiveWork:  1000,
		CheckpointTime: 100,
	}
	pm := PowerModel{Compute: 800, IO: 350, Idle: 200}
	b, err := Account(res, 10, 1, pm)
	if err != nil {
		t.Fatal(err)
	}
	wantCompute := 10.0 * 800 * (1000 * 60)
	wantCkpt := 10.0 * 350 * (100 * 60)
	if math.Abs(float64(b.Compute)-wantCompute) > 1 {
		t.Errorf("compute energy %v, want %v", float64(b.Compute), wantCompute)
	}
	if math.Abs(float64(b.Checkpoint)-wantCkpt) > 1 {
		t.Errorf("checkpoint energy %v, want %v", float64(b.Checkpoint), wantCkpt)
	}
	if b.Rework != 0 || b.Restart != 0 {
		t.Error("failure-free run has rework/restart energy")
	}
	if math.Abs(float64(b.Total-(b.Compute+b.Checkpoint))) > 1e-6 {
		t.Error("total does not sum")
	}
	if ov := b.Overhead(); math.Abs(ov-float64(b.Checkpoint)/float64(b.Total)) > 1e-12 {
		t.Errorf("overhead %v inconsistent", ov)
	}
}

func TestAccountParallelRecoveryIdlesWaiters(t *testing.T) {
	res := resilience.Result{
		Technique:  core.ParallelRecovery,
		Completed:  true,
		End:        1010,
		ReworkTime: 10,
	}
	pm := PowerModel{Compute: 800, IO: 350, Idle: 200}
	const nodes, phi = 100, 8
	b, err := Account(res, nodes, phi, pm)
	if err != nil {
		t.Fatal(err)
	}
	// phi nodes at compute power, the rest idle, for 10 minutes.
	want := (phi*800.0 + (nodes-phi)*200.0) * 10 * 60
	if math.Abs(float64(b.Rework)-want) > 1 {
		t.Errorf("PR rework energy %v, want %v", float64(b.Rework), want)
	}
	// The same rework under CR semantics burns everyone.
	res.Technique = core.CheckpointRestart
	bc, err := Account(res, nodes, 1, pm)
	if err != nil {
		t.Fatal(err)
	}
	if bc.Rework <= b.Rework {
		t.Error("CR rework should cost more energy than PR's idle-the-rest rework")
	}
}

func TestAccountValidation(t *testing.T) {
	res := resilience.Result{End: 10}
	if _, err := Account(res, 0, 1, Default()); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := Account(res, 10, 1, PowerModel{}); err == nil {
		t.Error("zero power model accepted")
	}
}

func TestIdealEnergy(t *testing.T) {
	pm := PowerModel{Compute: 800, IO: 350, Idle: 200}
	got := IdealEnergy(1440*units.Minute, 1000, pm)
	want := 1000.0 * 800 * 1440 * 60
	if math.Abs(float64(got)-want) > 1 {
		t.Errorf("ideal energy %v, want %v", float64(got), want)
	}
}

// TestEnergyAdvantageOfParallelRecovery reproduces the paper's qualitative
// energy claim end-to-end: at equal scale, Parallel Recovery's recovery
// energy overhead is below Checkpoint Restart's, because only the failed
// node's work is replayed (fast) while the machine idles.
func TestEnergyAdvantageOfParallelRecovery(t *testing.T) {
	cfg := machine.Exascale()
	model := failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF())
	app := workload.App{Class: workload.A32, TimeSteps: 1440, Nodes: 30000}
	pm := Default()
	opts := resilience.DefaultConfig()

	avgOverhead := func(tech core.Technique) float64 {
		x, err := resilience.New(tech, app, cfg, model, opts)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		const trials = 12
		for seed := uint64(0); seed < trials; seed++ {
			res := x.Run(0, 1e8, rng.New(seed))
			if !res.Completed {
				t.Fatalf("%v run incomplete", tech)
			}
			b, err := Account(res, x.PhysicalNodes(), opts.RecoverySpeedup, pm)
			if err != nil {
				t.Fatal(err)
			}
			sum += b.Overhead()
		}
		return sum / trials
	}

	pr := avgOverhead(core.ParallelRecovery)
	cr := avgOverhead(core.CheckpointRestart)
	if pr >= cr {
		t.Errorf("PR energy overhead (%v) should be below CR's (%v)", pr, cr)
	}
}

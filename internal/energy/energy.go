// Package energy adds energy accounting to simulated executions.
//
// The paper's companion study (Dauwe et al., "A performance and energy
// comparison of fault tolerance techniques for exascale computing
// systems", 2016) compares the same techniques by energy as well as time,
// and the paper itself leans on the energy argument for message logging:
// during recovery "only the failed system node needs to perform
// re-computation, and the rest of the system can remain idle". This
// package reproduces that accounting: a per-node power model with
// compute, I/O, and idle states, applied to the phase breakdown a
// resilience.Result already carries.
package energy

import (
	"fmt"

	"exaresil/internal/core"
	"exaresil/internal/resilience"
	"exaresil/internal/units"
)

// Watts is electrical power.
type Watts float64

// Joules is electrical energy.
type Joules float64

// KWh reports the energy in kilowatt-hours.
func (j Joules) KWh() float64 { return float64(j) / 3.6e6 }

// MWh reports the energy in megawatt-hours.
func (j Joules) MWh() float64 { return float64(j) / 3.6e9 }

// String renders the energy at a readable magnitude.
func (j Joules) String() string {
	switch {
	case j >= 3.6e9:
		return fmt.Sprintf("%.3gMWh", j.MWh())
	case j >= 3.6e6:
		return fmt.Sprintf("%.3gkWh", j.KWh())
	default:
		return fmt.Sprintf("%.4gJ", float64(j))
	}
}

// spent reports the energy of n nodes drawing p for d.
func spent(n int, p Watts, d units.Duration) Joules {
	return Joules(float64(n) * float64(p) * d.Seconds())
}

// PowerModel is the per-node power draw in each execution state.
type PowerModel struct {
	// Compute is the draw while executing application work.
	Compute Watts
	// IO is the draw while writing or reading checkpoints (stalled on
	// the memory system, network, or parallel file system).
	IO Watts
	// Idle is the draw of a node waiting for the rest of the system.
	Idle Watts
}

// Default returns the repository's projected exascale node power model.
// The Sunway TaihuLight draws ~375 W per node under load; the projected
// node quadruples the core count on a newer process, so the model assumes
// 800 W at full compute, 350 W while stalled on checkpoint I/O, and 200 W
// idle. The studies only depend on the ordering Compute > IO > Idle; the
// absolute levels are configuration.
func Default() PowerModel {
	return PowerModel{Compute: 800, IO: 350, Idle: 200}
}

// Validate reports whether the power model is usable.
func (p PowerModel) Validate() error {
	if p.Compute <= 0 || p.IO <= 0 || p.Idle <= 0 {
		return fmt.Errorf("energy: power levels must be positive, got %+v", p)
	}
	if p.Compute < p.IO || p.IO < p.Idle {
		return fmt.Errorf("energy: expected Compute >= IO >= Idle, got %+v", p)
	}
	return nil
}

// Breakdown decomposes one execution's energy by phase.
type Breakdown struct {
	// Compute is the energy of useful (first-time) work.
	Compute Joules
	// Rework is the energy spent recomputing lost work, including the
	// idle draw of nodes waiting out another node's recovery.
	Rework Joules
	// Checkpoint and Restart are the I/O phases.
	Checkpoint, Restart Joules
	// Total is the sum.
	Total Joules
}

// Overhead reports the fraction of the total energy that is not useful
// compute: (Total - Compute) / Total.
func (b Breakdown) Overhead() float64 {
	if b.Total <= 0 {
		return 0
	}
	return float64(b.Total-b.Compute) / float64(b.Total)
}

// Account computes the energy of a completed (or partial) execution.
//
// nodes is the number of physical nodes the run occupied
// (Executor.PhysicalNodes: more than App().Nodes for redundancy).
// recoverySpeedup is Parallel Recovery's phi (ignored for other
// techniques): during its rework phase phi nodes compute while the rest
// idle, which is where message logging's energy advantage comes from.
func Account(res resilience.Result, nodes int, recoverySpeedup float64, pm PowerModel) (Breakdown, error) {
	if nodes <= 0 {
		return Breakdown{}, fmt.Errorf("energy: node count %d must be positive", nodes)
	}
	if err := pm.Validate(); err != nil {
		return Breakdown{}, err
	}

	var b Breakdown
	computeTime := res.Makespan() - res.ReworkTime - res.CheckpointTime - res.RestartTime
	if computeTime < 0 {
		computeTime = 0
	}
	b.Compute = spent(nodes, pm.Compute, computeTime)
	b.Checkpoint = spent(nodes, pm.IO, res.CheckpointTime)
	b.Restart = spent(nodes, pm.IO, res.RestartTime)

	if res.Technique == core.ParallelRecovery && recoverySpeedup >= 1 {
		// Only the helpers replaying the failed node's work burn compute
		// power; everyone else waits at idle draw.
		busy := int(recoverySpeedup)
		if busy > nodes {
			busy = nodes
		}
		b.Rework = spent(busy, pm.Compute, res.ReworkTime) +
			spent(nodes-busy, pm.Idle, res.ReworkTime)
	} else {
		b.Rework = spent(nodes, pm.Compute, res.ReworkTime)
	}

	b.Total = b.Compute + b.Rework + b.Checkpoint + b.Restart
	return b, nil
}

// IdealEnergy reports the energy of a failure-free, overhead-free
// execution of the given baseline on the given nodes: the denominator of
// energy-efficiency comparisons.
func IdealEnergy(baseline units.Duration, nodes int, pm PowerModel) Joules {
	return spent(nodes, pm.Compute, baseline)
}

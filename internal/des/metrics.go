package des

import "exaresil/internal/obs"

// Metrics is the engine's observability bundle. The zero value (all nil
// series) is the disabled bundle: every hook degrades to a nil-receiver
// no-op, so an uninstrumented Simulator pays only the pointer test inside
// each obs call. Construct with NewMetrics and attach via SetMetrics; many
// simulators may share one bundle (the series are atomic), which is exactly
// what the parallel study drivers do — the counters then aggregate across
// every engine in the study.
type Metrics struct {
	// Scheduled and Dispatched count events entering and leaving the
	// queue; Canceled counts removals before firing.
	Scheduled  *obs.Counter
	Dispatched *obs.Counter
	Canceled   *obs.Counter
	// Recycled counts Schedule calls satisfied from the pooled free list.
	Recycled *obs.Counter
	// HeapDepthPeak is the maximum queue depth ever observed.
	HeapDepthPeak *obs.Gauge
	// HeapDepth samples the queue depth at every Schedule.
	HeapDepth *obs.Histogram
}

// NewMetrics registers the engine's series on r (nil r yields the disabled
// bundle). Re-registration returns the same shared bundle: the whole table
// is memoized per registry, so layers that construct one bundle per
// simulation run pay a single cache hit instead of six series lookups.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return r.Memo("des.Metrics", func() any { return newMetrics(r) }).(*Metrics)
}

func newMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Scheduled:     r.Counter("exaresil_des_events_scheduled_total", "events pushed onto the simulation queue"),
		Dispatched:    r.Counter("exaresil_des_events_dispatched_total", "events fired by the simulation loop"),
		Canceled:      r.Counter("exaresil_des_events_canceled_total", "events removed before firing"),
		Recycled:      r.Counter("exaresil_des_events_recycled_total", "Schedule calls served from the pooled free list"),
		HeapDepthPeak: r.Gauge("exaresil_des_heap_depth_peak", "maximum event-queue depth observed"),
		HeapDepth:     r.Histogram("exaresil_des_heap_depth", "event-queue depth sampled at each Schedule", obs.DepthBuckets),
	}
}

// SetMetrics attaches (or, with nil, detaches) an observability bundle.
// Attachment never changes simulation behavior: the bundle only counts.
// Tallies batched since the last flush are merged into the outgoing bundle
// before the swap, and the local tally state is re-zeroed so the incoming
// bundle never inherits pre-attachment events.
func (s *Simulator) SetMetrics(m *Metrics) {
	s.FlushMetrics()
	t := &s.tally
	t.scheduled, t.dispatched, t.canceled, t.recycled = 0, 0, 0, 0
	t.depthPeak, t.depthSum = 0, 0
	if m == nil {
		s.m = Metrics{}
		t.enabled = false
		return
	}
	s.m = *m
	t.enabled = true
	if n := s.m.HeapDepth.NumBuckets(); n != len(t.depthBuckets) {
		t.depthBuckets = make([]uint64, n)
	} else {
		clear(t.depthBuckets)
	}
}

package des

import (
	"sort"
	"testing"
	"testing/quick"

	"exaresil/internal/units"
)

func TestFiringOrder(t *testing.T) {
	s := New()
	var got []units.Duration
	for _, at := range []units.Duration{5, 1, 3, 2, 4} {
		s.Schedule(at, "e", func(sim *Simulator) {
			got = append(got, sim.Now())
		})
	}
	s.Run()
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("events out of order: %v", got)
		}
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(7, "tie", func(*Simulator) { order = append(order, i) })
	}
	s.Run()
	if !sort.IntsAreSorted(order) {
		t.Errorf("simultaneous events fired out of scheduling order: %v", order)
	}
}

func TestClockAdvances(t *testing.T) {
	s := New()
	s.Schedule(10, "a", func(sim *Simulator) {
		if sim.Now() != 10 {
			t.Errorf("Now()=%v inside event at 10", sim.Now())
		}
		sim.After(5, "b", func(sim *Simulator) {
			if sim.Now() != 15 {
				t.Errorf("Now()=%v inside chained event, want 15", sim.Now())
			}
		})
	})
	s.Run()
	if s.Now() != 15 {
		t.Errorf("final clock %v, want 15", s.Now())
	}
	if s.Fired() != 2 {
		t.Errorf("fired %d, want 2", s.Fired())
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.Schedule(1, "victim", func(*Simulator) { fired = true })
	s.Cancel(e)
	s.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if e.Pending() {
		t.Error("canceled event still pending")
	}
	// Double-cancel and cancel-after-fire must be harmless.
	s.Cancel(e)
	s.Cancel(nil)
}

func TestCancelMiddleOfHeap(t *testing.T) {
	s := New()
	var got []string
	keep1 := s.Schedule(1, "keep1", func(*Simulator) { got = append(got, "keep1") })
	victim := s.Schedule(2, "victim", func(*Simulator) { got = append(got, "victim") })
	keep2 := s.Schedule(3, "keep2", func(*Simulator) { got = append(got, "keep2") })
	_ = keep1
	_ = keep2
	s.Cancel(victim)
	s.Run()
	if len(got) != 2 || got[0] != "keep1" || got[1] != "keep2" {
		t.Errorf("got %v, want [keep1 keep2]", got)
	}
}

func TestCancelFromCallback(t *testing.T) {
	s := New()
	fired := false
	victim := s.Schedule(5, "victim", func(*Simulator) { fired = true })
	s.Schedule(1, "canceler", func(sim *Simulator) { sim.Cancel(victim) })
	s.Run()
	if fired {
		t.Error("event canceled from a callback still fired")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.Schedule(10, "advance", func(*Simulator) {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	s.Schedule(5, "late", func(*Simulator) {})
}

func TestNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback should panic")
		}
	}()
	New().Schedule(1, "nil", nil)
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []units.Duration
	for _, at := range []units.Duration{1, 2, 3, 10, 20} {
		s.Schedule(at, "e", func(sim *Simulator) { fired = append(fired, sim.Now()) })
	}
	s.RunUntil(5)
	if len(fired) != 3 {
		t.Fatalf("fired %d events before horizon, want 3", len(fired))
	}
	if s.Now() != 5 {
		t.Errorf("clock %v after RunUntil(5)", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("%d events pending, want 2", s.Pending())
	}
	s.Run()
	if len(fired) != 5 {
		t.Errorf("fired %d events total, want 5", len(fired))
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := units.Duration(1); i <= 10; i++ {
		s.Schedule(i, "e", func(sim *Simulator) {
			count++
			if count == 3 {
				sim.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Errorf("fired %d events after Stop at 3", count)
	}
	if s.Pending() != 7 {
		t.Errorf("%d pending after Stop, want 7", s.Pending())
	}
	s.Run() // resumes
	if count != 10 {
		t.Errorf("resumed run fired %d total, want 10", count)
	}
}

func TestTrace(t *testing.T) {
	s := New()
	var labels []string
	s.Trace = func(_ units.Duration, label string) { labels = append(labels, label) }
	s.Schedule(1, "first", func(*Simulator) {})
	s.Schedule(2, "second", func(*Simulator) {})
	s.Run()
	if len(labels) != 2 || labels[0] != "first" || labels[1] != "second" {
		t.Errorf("trace saw %v", labels)
	}
}

func TestStepOnEmpty(t *testing.T) {
	if New().Step() {
		t.Error("Step on empty queue reported true")
	}
}

// TestHeapPropertyRandomSchedules drives the queue with arbitrary schedules
// and cancellations and checks events always fire in nondecreasing time
// order with none lost.
func TestHeapPropertyRandomSchedules(t *testing.T) {
	prop := func(times []uint16, cancelMask []bool) bool {
		s := New()
		type rec struct {
			ev       *Event
			canceled bool
		}
		var recs []rec
		fired := map[*Event]bool{}
		var firedOrder []units.Duration
		for i, raw := range times {
			at := units.Duration(raw)
			ev := s.Schedule(at, "p", func(sim *Simulator) {
				firedOrder = append(firedOrder, sim.Now())
			})
			canceled := i < len(cancelMask) && cancelMask[i]
			recs = append(recs, rec{ev, canceled})
		}
		for _, r := range recs {
			if r.canceled {
				s.Cancel(r.ev)
			}
		}
		s.Run()
		// Exact-order check: firing order must be the surviving schedule
		// times stably sorted — (time, seq) order, since insertion order is
		// seq order. This pins the heap implementation, not just the heap
		// property.
		var expect []units.Duration
		for i, raw := range times {
			if !(i < len(cancelMask) && cancelMask[i]) {
				expect = append(expect, units.Duration(raw))
			}
		}
		sort.SliceStable(expect, func(i, j int) bool { return expect[i] < expect[j] })
		if len(firedOrder) != len(expect) {
			return false
		}
		for i := range expect {
			if firedOrder[i] != expect[i] {
				return false
			}
		}
		// Conservation check: fired + canceled == scheduled.
		want := 0
		for _, r := range recs {
			if !r.canceled {
				want++
			}
			fired[r.ev] = true
		}
		return len(firedOrder) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPooledFiringIdenticalToFresh replays the same schedule on a fresh
// simulator and on a pooled one reused via Reset, asserting identical
// firing sequences: pooling must be invisible to deterministic callbacks.
func TestPooledFiringIdenticalToFresh(t *testing.T) {
	drive := func(s *Simulator) []units.Duration {
		var fired []units.Duration
		for _, at := range []units.Duration{5, 1, 3, 3, 2} {
			s.Schedule(at, "e", func(sim *Simulator) {
				fired = append(fired, sim.Now())
				if sim.Now() == 2 {
					sim.After(1.5, "chained", func(sim *Simulator) {
						fired = append(fired, sim.Now())
					})
				}
			})
		}
		s.Run()
		return fired
	}

	want := drive(New())
	pooled := NewPooled()
	for round := 0; round < 3; round++ {
		pooled.Reset()
		got := drive(pooled)
		if len(got) != len(want) {
			t.Fatalf("round %d: fired %d events, want %d", round, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d: firing sequence %v, want %v", round, got, want)
			}
		}
	}
	if pooled.Recycled() == 0 {
		t.Error("pooled simulator never recycled an event across Reset rounds")
	}
}

// TestPooledCancelRecycles asserts canceled events return to the pool and
// are reused by later Schedules.
func TestPooledCancelRecycles(t *testing.T) {
	s := NewPooled()
	e := s.Schedule(5, "victim", func(*Simulator) {})
	s.Cancel(e)
	if e.Pending() {
		t.Fatal("canceled event still pending")
	}
	reused := s.Schedule(7, "reused", func(*Simulator) {})
	if reused != e {
		t.Error("canceled event storage was not recycled by the next Schedule")
	}
	if s.Recycled() != 1 {
		t.Errorf("Recycled() = %d, want 1", s.Recycled())
	}
}

// TestResetClearsState asserts Reset produces a clean clock and queue even
// with events still pending.
func TestResetClearsState(t *testing.T) {
	s := NewPooled()
	s.Schedule(1, "a", func(*Simulator) {})
	s.Schedule(50, "beyond", func(*Simulator) {})
	s.RunUntil(10)
	if s.Now() != 10 || s.Pending() != 1 {
		t.Fatalf("precondition: now=%v pending=%d", s.Now(), s.Pending())
	}
	s.Reset()
	if s.Now() != 0 || s.Pending() != 0 || s.Fired() != 0 {
		t.Errorf("after Reset: now=%v pending=%d fired=%d, want all zero", s.Now(), s.Pending(), s.Fired())
	}
	// The undelivered event must be reusable storage, not a lost alloc.
	if got := s.Schedule(3, "fresh", func(*Simulator) {}); !got.Pending() {
		t.Error("schedule after Reset not pending")
	}
	if s.Recycled() == 0 {
		t.Error("Reset did not recycle the still-queued event")
	}
	s.Run()
	if s.Now() != 3 {
		t.Errorf("clock %v after post-Reset run, want 3", s.Now())
	}
}

// TestPooledSteadyStateAllocs asserts the free list actually eliminates
// per-event allocations at steady queue depth.
func TestPooledSteadyStateAllocs(t *testing.T) {
	s := NewPooled()
	// Warm the pool.
	for i := 0; i < 4; i++ {
		s.After(1, "warm", func(*Simulator) {})
		s.Step()
	}
	avg := testing.AllocsPerRun(1000, func() {
		s.After(1, "bench", func(*Simulator) {})
		s.Step()
	})
	if avg > 0.01 {
		t.Errorf("pooled schedule/fire allocates %.2f objects per event, want 0", avg)
	}
}

func BenchmarkScheduleFire(b *testing.B) {
	s := New()
	for i := 0; i < b.N; i++ {
		s.After(1, "bench", func(*Simulator) {})
		s.Step()
	}
}

func BenchmarkDeepQueue(b *testing.B) {
	s := New()
	for i := 0; i < 10000; i++ {
		s.Schedule(units.Duration(i)+1e9, "deep", func(*Simulator) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := s.After(1, "bench", func(*Simulator) {})
		s.Cancel(e)
	}
}

// Package des implements the discrete-event simulation engine at the heart
// of the exascale resilience study.
//
// The engine is intentionally minimal: a simulation owns a clock and a
// priority queue of scheduled events; each event carries a callback that
// may schedule or cancel further events. Determinism is guaranteed by
// breaking time ties with a monotonically increasing sequence number, so a
// simulation driven by deterministic callbacks and a seeded rng.Source
// always replays identically.
//
// Cancellation is a first-class operation because resilience executors
// frequently invalidate pending work: a node failure cancels the
// application's scheduled checkpoint-completion and completion events. The
// event queue is an indexed binary heap, making cancellation O(log n)
// rather than the O(n) of lazy deletion schemes.
package des

import (
	"container/heap"
	"fmt"

	"exaresil/internal/units"
)

// Callback is the work an event performs when it fires. The simulator
// passes itself so callbacks can schedule follow-on events.
type Callback func(sim *Simulator)

// Event is a scheduled occurrence. The zero value is meaningless; events
// are created by Simulator.Schedule and friends. An Event value can be used
// to cancel the occurrence before it fires.
type Event struct {
	at    units.Duration
	seq   uint64
	index int // position in the heap, -1 once fired or canceled
	fn    Callback
	label string
}

// Time reports when the event is (or was) scheduled to fire.
func (e *Event) Time() units.Duration { return e.at }

// Label reports the diagnostic label given at scheduling time.
func (e *Event) Label() string { return e.label }

// Pending reports whether the event is still in the queue.
func (e *Event) Pending() bool { return e.index >= 0 }

// eventHeap is an indexed min-heap ordered by (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Tracer receives a notification immediately before each event fires.
// It exists for debugging and for the simulator's own tests; production
// studies leave it nil.
type Tracer func(at units.Duration, label string)

// Simulator is a discrete-event simulation run. The zero value is ready to
// use. Simulators are not safe for concurrent use; parallel studies run one
// Simulator per goroutine.
type Simulator struct {
	now     units.Duration
	queue   eventHeap
	seq     uint64
	fired   uint64
	stopped bool

	// Trace, when non-nil, observes every fired event.
	Trace Tracer
}

// New returns an empty simulation with the clock at zero.
func New() *Simulator { return &Simulator{} }

// Now reports the current simulation time.
func (s *Simulator) Now() units.Duration { return s.now }

// Fired reports how many events have executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending reports how many events remain scheduled.
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule arranges for fn to run at absolute time at, returning the event
// for possible cancellation. Scheduling in the past (before Now) panics:
// it always indicates a logic error in an executor, and letting time run
// backwards would corrupt every statistic downstream.
func (s *Simulator) Schedule(at units.Duration, label string, fn Callback) *Event {
	if at < s.now {
		panic(fmt.Sprintf("des: schedule %q at %v before now %v", label, at, s.now))
	}
	if fn == nil {
		panic("des: schedule with nil callback")
	}
	e := &Event{at: at, seq: s.seq, fn: fn, label: label}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After arranges for fn to run d after the current time. Negative delays
// panic, matching Schedule.
func (s *Simulator) After(d units.Duration, label string, fn Callback) *Event {
	return s.Schedule(s.now+d, label, fn)
}

// Cancel removes a pending event from the queue. Canceling an event that
// has already fired or been canceled is a harmless no-op, which lets
// executors unconditionally cancel whatever handles they hold.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&s.queue, e.index)
	e.index = -1
}

// Stop makes the current Run/RunUntil call return after the in-flight
// callback completes. Pending events remain queued.
func (s *Simulator) Stop() { s.stopped = true }

// Step fires the earliest pending event, advancing the clock to its time.
// It reports false if the queue was empty.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	if e.at < s.now {
		panic("des: event queue time went backwards")
	}
	s.now = e.at
	s.fired++
	if s.Trace != nil {
		s.Trace(e.at, e.label)
	}
	e.fn(s)
	return true
}

// Run fires events until the queue is empty or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil fires events with time <= horizon, then advances the clock to
// exactly horizon. Events scheduled beyond the horizon stay queued.
func (s *Simulator) RunUntil(horizon units.Duration) {
	if horizon < s.now {
		panic(fmt.Sprintf("des: RunUntil(%v) before now %v", horizon, s.now))
	}
	s.stopped = false
	for !s.stopped && len(s.queue) > 0 && s.queue[0].at <= horizon {
		s.Step()
	}
	if !s.stopped {
		s.now = horizon
	}
}

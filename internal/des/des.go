// Package des implements the discrete-event simulation engine at the heart
// of the exascale resilience study.
//
// The engine is intentionally minimal: a simulation owns a clock and a
// priority queue of scheduled events; each event carries a callback that
// may schedule or cancel further events. Determinism is guaranteed by
// breaking time ties with a monotonically increasing sequence number, so a
// simulation driven by deterministic callbacks and a seeded rng.Source
// always replays identically.
//
// Cancellation is a first-class operation because resilience executors
// frequently invalidate pending work: a node failure cancels the
// application's scheduled checkpoint-completion and completion events. The
// event queue is an indexed binary heap, making cancellation O(log n)
// rather than the O(n) of lazy deletion schemes.
package des

import (
	"fmt"

	"exaresil/internal/units"
)

// Callback is the work an event performs when it fires. The simulator
// passes itself so callbacks can schedule follow-on events.
type Callback func(sim *Simulator)

// Event is a scheduled occurrence. The zero value is meaningless; events
// are created by Simulator.Schedule and friends. An Event value can be used
// to cancel the occurrence before it fires.
type Event struct {
	at    units.Duration
	seq   uint64
	index int // position in the heap, -1 once fired or canceled
	fn    Callback
	label string
}

// Time reports when the event is (or was) scheduled to fire.
func (e *Event) Time() units.Duration { return e.at }

// Label reports the diagnostic label given at scheduling time.
func (e *Event) Label() string { return e.label }

// Pending reports whether the event is still in the queue.
func (e *Event) Pending() bool { return e.index >= 0 }

// eventHeap is an indexed min-heap ordered by (time, seq). The heap
// operations are hand-inlined rather than delegated to container/heap:
// every Schedule/Step pays them, and the interface dispatch plus
// swap-based sifting of the generic package showed up as a double-digit
// share of whole-study CPU profiles. The hole-style sift below moves the
// displaced event once instead of swapping it down level by level, halving
// the pointer stores (and thus GC write barriers) per operation. Because
// (time, seq) is a total order, pop order — and hence simulation behavior —
// is independent of the heap's internal arrangement.
type eventHeap []*Event

// eventLess orders the heap by (time, seq).
func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends e and restores the heap property.
func (h *eventHeap) push(e *Event) {
	e.index = len(*h)
	*h = append(*h, e)
	h.siftUp(e.index)
}

// pop removes and returns the minimum event (index left at -1).
func (h *eventHeap) pop() *Event {
	old := *h
	e := old[0]
	n := len(old) - 1
	last := old[n]
	old[n] = nil
	*h = old[:n]
	if n > 0 {
		old[0] = last
		last.index = 0
		h.siftDown(0)
	}
	e.index = -1
	return e
}

// remove deletes the event at index i (its index left at -1).
func (h *eventHeap) remove(i int) {
	old := *h
	e := old[i]
	n := len(old) - 1
	last := old[n]
	old[n] = nil
	*h = old[:n]
	if i < n {
		old[i] = last
		last.index = i
		h.siftDown(i)
		if last.index == i {
			h.siftUp(i)
		}
	}
	e.index = -1
}

// siftUp moves h[i] toward the root until its parent is no larger,
// shifting displaced parents into the hole rather than swapping.
func (h eventHeap) siftUp(i int) {
	e := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := h[parent]
		if !eventLess(e, p) {
			break
		}
		h[i] = p
		p.index = i
		i = parent
	}
	h[i] = e
	e.index = i
}

// siftDown moves h[i] toward the leaves until both children are no
// smaller, shifting the smaller child into the hole at each level.
func (h eventHeap) siftDown(i int) {
	n := len(h)
	e := h[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && eventLess(h[r], h[child]) {
			child = r
		}
		c := h[child]
		if !eventLess(c, e) {
			break
		}
		h[i] = c
		c.index = i
		i = child
	}
	h[i] = e
	e.index = i
}

// Tracer receives a notification immediately before each event fires.
// It exists for debugging and for the simulator's own tests; production
// studies leave it nil.
type Tracer func(at units.Duration, label string)

// Simulator is a discrete-event simulation run. The zero value is ready to
// use. Simulators are not safe for concurrent use; parallel studies run one
// Simulator per goroutine.
type Simulator struct {
	now     units.Duration
	queue   eventHeap
	seq     uint64
	fired   uint64
	stopped bool

	// recycle enables the event free list (see NewPooled).
	recycle  bool
	pool     []*Event
	recycled uint64

	// m is the observability bundle (see SetMetrics). The zero value is
	// disabled: each hook is a nil-receiver no-op.
	m Metrics

	// tally batches the per-event observations locally while a bundle is
	// attached; FlushMetrics (called automatically at Run/RunUntil/Reset
	// boundaries) merges it into the shared atomic series. Batching turns
	// three atomic operations per Schedule into plain integer adds on
	// simulator-owned state — the single-goroutine contract makes the
	// local counters safe, and boundary flushing keeps totals exact.
	tally struct {
		enabled                                   bool
		scheduled, dispatched, canceled, recycled uint64
		depthPeak                                 int64
		depthSum                                  float64
		depthBuckets                              []uint64
	}

	// Trace, when non-nil, observes every fired event.
	Trace Tracer
}

// New returns an empty simulation with the clock at zero.
func New() *Simulator { return &Simulator{} }

// NewPooled returns a simulation that recycles Event allocations through a
// per-Simulator free list: an event's storage returns to the pool the
// moment it fires or is canceled, and the next Schedule reuses it. At a
// steady queue depth this reduces event allocation to O(depth) for the
// whole run instead of O(events fired) — the resilience executors fire
// millions of events per study at a queue depth of two or three.
//
// Pooling tightens the handle contract: an *Event returned by Schedule is
// dead once it fires or is canceled, and must not be passed to Cancel
// afterwards (its storage may already describe a different, live event).
// New()'s laxer "cancel anything, any time" contract is unchanged. The
// free list is per-Simulator, so the single-goroutine contract already in
// force makes pooling safe without locks.
func NewPooled() *Simulator { return &Simulator{recycle: true} }

// Reset returns the simulator to its initial state — clock at zero, queue
// empty, counters cleared — while keeping the event free list warm, so a
// worker can reuse one Simulator (and its event storage) across many
// trials instead of reallocating engine state every trial. The Trace hook
// is preserved.
func (s *Simulator) Reset() {
	s.FlushMetrics()
	for _, e := range s.queue {
		s.release(e)
	}
	clear(s.queue)
	s.queue = s.queue[:0]
	s.now = 0
	s.seq = 0
	s.fired = 0
	s.stopped = false
}

// release marks an event dead and, in pooled mode, returns its storage to
// the free list. Non-pooled events keep their label and time so fired
// handles stay inspectable (the pre-pooling contract).
func (s *Simulator) release(e *Event) {
	e.index = -1
	if s.recycle {
		e.fn = nil
		e.label = ""
		s.pool = append(s.pool, e)
	}
}

// Recycled reports how many Schedule calls were satisfied from the free
// list (always zero for non-pooled simulators). It exists for
// observability: benchmarks assert the pool is actually working.
func (s *Simulator) Recycled() uint64 { return s.recycled }

// Now reports the current simulation time.
func (s *Simulator) Now() units.Duration { return s.now }

// Fired reports how many events have executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending reports how many events remain scheduled.
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule arranges for fn to run at absolute time at, returning the event
// for possible cancellation. Scheduling in the past (before Now) panics:
// it always indicates a logic error in an executor, and letting time run
// backwards would corrupt every statistic downstream.
func (s *Simulator) Schedule(at units.Duration, label string, fn Callback) *Event {
	if at < s.now {
		panic(fmt.Sprintf("des: schedule %q at %v before now %v", label, at, s.now))
	}
	if fn == nil {
		panic("des: schedule with nil callback")
	}
	var e *Event
	if n := len(s.pool); n > 0 {
		e = s.pool[n-1]
		s.pool[n-1] = nil
		s.pool = s.pool[:n-1]
		s.recycled++
		s.tally.recycled++
		*e = Event{at: at, seq: s.seq, fn: fn, label: label}
	} else {
		e = &Event{at: at, seq: s.seq, fn: fn, label: label}
	}
	s.seq++
	s.queue.push(e)
	if s.tally.enabled {
		s.tally.scheduled++
		depth := int64(len(s.queue))
		if depth > s.tally.depthPeak {
			s.tally.depthPeak = depth
		}
		// depthBuckets is empty when the attached bundle has no HeapDepth
		// histogram (partially populated bundles in tests).
		if len(s.tally.depthBuckets) > 0 {
			fd := float64(depth)
			s.tally.depthBuckets[s.m.HeapDepth.FindBucket(fd)]++
			s.tally.depthSum += fd
		}
	}
	return e
}

// After arranges for fn to run d after the current time. Negative delays
// panic, matching Schedule.
func (s *Simulator) After(d units.Duration, label string, fn Callback) *Event {
	return s.Schedule(s.now+d, label, fn)
}

// Cancel removes a pending event from the queue. Canceling an event that
// has already fired or been canceled is a harmless no-op, which lets
// executors unconditionally cancel whatever handles they hold.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	s.queue.remove(e.index)
	s.release(e)
	s.tally.canceled++
}

// Stop makes the current Run/RunUntil call return after the in-flight
// callback completes. Pending events remain queued.
func (s *Simulator) Stop() { s.stopped = true }

// Step fires the earliest pending event, advancing the clock to its time.
// It reports false if the queue was empty.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := s.queue.pop()
	if e.at < s.now {
		panic("des: event queue time went backwards")
	}
	s.now = e.at
	s.fired++
	s.tally.dispatched++
	if s.Trace != nil {
		s.Trace(e.at, e.label)
	}
	fn := e.fn
	// Recycle before running the callback so a Schedule inside it can
	// reuse the storage immediately; fn was saved above, and the event is
	// already off the heap.
	s.release(e)
	fn(s)
	return true
}

// Run fires events until the queue is empty or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
	s.FlushMetrics()
}

// RunUntil fires events with time <= horizon, then advances the clock to
// exactly horizon. Events scheduled beyond the horizon stay queued.
func (s *Simulator) RunUntil(horizon units.Duration) {
	if horizon < s.now {
		panic(fmt.Sprintf("des: RunUntil(%v) before now %v", horizon, s.now))
	}
	s.stopped = false
	for !s.stopped && len(s.queue) > 0 && s.queue[0].at <= horizon {
		s.Step()
	}
	if !s.stopped {
		s.now = horizon
	}
	s.FlushMetrics()
}

// FlushMetrics merges the locally batched event tallies into the attached
// bundle's shared atomic series. Run, RunUntil, Reset, and SetMetrics flush
// automatically; only callers driving Step directly and reading the shared
// series mid-simulation need to call it themselves. A no-op when no bundle
// is attached.
func (s *Simulator) FlushMetrics() {
	t := &s.tally
	if !t.enabled {
		return
	}
	if t.scheduled != 0 {
		s.m.Scheduled.Add(t.scheduled)
		t.scheduled = 0
	}
	if t.dispatched != 0 {
		s.m.Dispatched.Add(t.dispatched)
		t.dispatched = 0
	}
	if t.canceled != 0 {
		s.m.Canceled.Add(t.canceled)
		t.canceled = 0
	}
	if t.recycled != 0 {
		s.m.Recycled.Add(t.recycled)
		t.recycled = 0
	}
	if t.depthPeak != 0 {
		s.m.HeapDepthPeak.SetMax(t.depthPeak)
		t.depthPeak = 0
	}
	if t.depthSum != 0 {
		s.m.HeapDepth.AddBuckets(t.depthBuckets, t.depthSum)
		clear(t.depthBuckets)
		t.depthSum = 0
	}
}

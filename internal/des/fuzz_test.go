package des

import (
	"fmt"
	"testing"

	"exaresil/internal/units"
)

// firing is one observed event execution.
type firing struct {
	at    units.Duration
	label string
}

// driveOps interprets a fuzzer-chosen byte stream as scheduler operations
// against one Simulator and returns the full firing log. Ops are consumed
// two bytes at a time (opcode, argument):
//
//	0: schedule a plain event at now + arg
//	1: schedule an event that schedules a follow-up from inside its own
//	   callback (the pool-recycle hot path)
//	2: cancel a still-pending handle
//	3: RunUntil(now + arg)
//
// Handles are forfeited whenever time advances, because a pooled *Event is
// dead once it fires and must not be passed to Cancel afterwards.
func driveOps(t *testing.T, sim *Simulator, ops []byte) []firing {
	t.Helper()
	var log []firing
	last := units.Duration(-1)
	sim.Trace = func(at units.Duration, label string) {
		if at < last {
			t.Fatalf("fired %q at %v after an event at %v: time ran backwards", label, at, last)
		}
		last = at
		log = append(log, firing{at, label})
	}
	var live []*Event
	id := 0
	for i := 0; i+1 < len(ops); i += 2 {
		op, arg := ops[i]%4, ops[i+1]
		switch op {
		case 0:
			label := fmt.Sprintf("e%d", id)
			id++
			live = append(live, sim.After(units.Duration(arg), label, func(*Simulator) {}))
		case 1:
			label := fmt.Sprintf("c%d", id)
			id++
			d := units.Duration(arg % 16)
			live = append(live, sim.After(units.Duration(arg), label, func(s *Simulator) {
				s.After(d, label+"+", func(*Simulator) {})
			}))
		case 2:
			if len(live) > 0 {
				j := int(arg) % len(live)
				sim.Cancel(live[j])
				live = append(live[:j], live[j+1:]...)
			}
		case 3:
			sim.RunUntil(sim.Now() + units.Duration(arg))
			live = nil
		}
	}
	sim.Run()
	if got := int(sim.Fired()); got != len(log) {
		t.Fatalf("Fired() = %d but the trace saw %d events", got, len(log))
	}
	if sim.Pending() != 0 {
		t.Fatalf("%d events still pending after Run", sim.Pending())
	}
	return log
}

// FuzzSimulatorPooledEquivalence drives a fresh and a pooled simulator
// through the same operation stream: event pooling is an allocation
// strategy, so the observable firing sequence (times, labels, order) must
// be identical, and fired times must never run backwards.
func FuzzSimulatorPooledEquivalence(f *testing.F) {
	f.Add([]byte{0, 5, 0, 3, 3, 10})
	f.Add([]byte{1, 4, 2, 0, 3, 255, 0, 0})
	f.Add([]byte{0, 1, 0, 1, 2, 1, 1, 9, 3, 2, 0, 7, 1, 7, 3, 200})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 2, 2, 2, 0, 3, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		fresh := driveOps(t, New(), ops)
		pooled := driveOps(t, NewPooled(), ops)
		if len(fresh) != len(pooled) {
			t.Fatalf("fresh fired %d events, pooled fired %d", len(fresh), len(pooled))
		}
		for i := range fresh {
			if fresh[i] != pooled[i] {
				t.Fatalf("firing %d diverged: fresh %v, pooled %v", i, fresh[i], pooled[i])
			}
		}
	})
}

package resilience

import (
	"exaresil/internal/core"
	"exaresil/internal/rng"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// idealExecutor is the failure-free, overhead-free baseline of the
// resource-management study (the "Ideal Baseline" of Figure 4): the
// application simply runs for exactly its baseline execution time.
type idealExecutor struct {
	application workload.App
}

// NewIdeal returns the Ideal baseline executor for app.
func NewIdeal(app workload.App) Executor { return &idealExecutor{application: app} }

func (x *idealExecutor) Technique() core.Technique { return core.Ideal }
func (x *idealExecutor) App() workload.App         { return x.application }
func (x *idealExecutor) PhysicalNodes() int        { return x.application.Nodes }
func (x *idealExecutor) Viable() (bool, string)    { return true, "" }
func (x *idealExecutor) Clone() Executor           { return &idealExecutor{application: x.application} }

// Run completes after exactly the baseline execution time, or reports an
// incomplete run if the horizon cuts it short.
func (x *idealExecutor) Run(start, horizon units.Duration, _ *rng.Source) Result {
	end := start + x.application.Baseline()
	res := Result{
		Technique:     core.Ideal,
		Start:         start,
		Baseline:      x.application.Baseline(),
		EffectiveWork: x.application.Baseline(),
	}
	if end > horizon {
		res.End = horizon
		return res
	}
	res.Completed = true
	res.End = end
	return res
}

package resilience

import (
	"errors"
	"math"

	"exaresil/internal/units"
)

// This file implements the Markov-chain evaluation of a multilevel
// checkpoint schedule, after the model of Moody et al. (the paper's [3]).
// Where ExpectedStretch is a first-order renewal approximation (fast
// enough for the optimizer's full grid), ExactStretch solves the chain's
// expected-absorption-time equations exactly for exponential failures.
//
// States: i = 1..N, "about to execute interval i" of the repeating pattern
// (work tau followed by the checkpoint LevelAt(i)); state N+1 absorbs
// (pattern complete). During interval i's exposure d_i = tau + c_i,
// failures arrive at total rate lambda and carry severity j with
// probability pi_j. A severity-j failure returns the chain to the state
// just after the newest checkpoint of level >= j — position-based in
// steady state: severity 1 retries the current interval (the previous
// position's checkpoint survives), severity 2 returns to the start of the
// current L2 block, and severity 3 to the start of the pattern — after an
// uninterruptible restore of the surviving checkpoint's level.
//
// Each state's equation references only V_i itself, V_{i+1}, the current
// block start, and state 1, so the linear system solves in O(N) by
// expressing states as affine functions of (V_blockstart, V_1) and closing
// each block from the last to the first.

// affine2 is c0 + cS*V_blockstart + c1*V_1.
type affine2 struct{ c0, cS, c1 float64 }

// ExactStretch computes the expected wall time per unit of useful work of
// the schedule under exponential failures, by solving the Markov chain
// exactly. It returns +Inf for degenerate schedules. Rates are the
// per-severity failure rates; zero total rate gives the failure-free
// stretch.
func (m MultilevelSchedule) ExactStretch(costs Costs, rates [3]units.Rate) float64 {
	tau := float64(m.Interval)
	if tau <= 0 || m.L1PerL2 < 1 || m.L2PerL3 < 1 {
		return math.Inf(1)
	}
	n1 := m.L1PerL2
	N := m.L1PerL2 * m.L2PerL3

	lambda := 0.0
	for _, r := range rates {
		lambda += float64(r)
	}
	// Failure-free: stretch is pure checkpoint overhead.
	if lambda <= 0 {
		total := 0.0
		for i := 1; i <= N; i++ {
			total += tau + float64(costs.CostForLevel(m.LevelAt(i)))
		}
		return total / (float64(N) * tau)
	}
	var pi [3]float64
	for j, r := range rates {
		pi[j] = float64(r) / lambda
	}

	// levelBefore(i) is the level of the newest checkpoint at or below
	// severity requirements when standing at the start of interval i;
	// position 0 carries the previous pattern's PFS checkpoint.
	levelAt := func(k int) int {
		if k <= 0 {
			return 3
		}
		return m.LevelAt(k)
	}
	// restoreBlock is the expected time to complete an uninterruptible
	// restore of length r with instant retries: (e^{lambda r} - 1)/lambda.
	restoreBlock := func(level int) float64 {
		r := float64(costs.CostForLevel(level))
		return math.Expm1(lambda*r) / lambda
	}

	// Severity-2 return state for interval i: start of its L2 block.
	// Blocks are [s, s+n1-1] with s = 1, n1+1, 2n1+1, ...
	blockStart := func(i int) int { return ((i-1)/n1)*n1 + 1 }

	// Walk blocks from last to first. `next` is V_{blockEnd+1} expressed
	// as affine in V_1 only (cS unused at block boundaries).
	next := affine2{} // V_{N+1} = 0

	// We record V_1's final value to close the system.
	var v1Closed bool
	var v1 float64

	numBlocks := (N + n1 - 1) / n1
	for b := numBlocks - 1; b >= 0; b-- {
		s := b*n1 + 1
		e := s + n1 - 1
		if e > N {
			e = N
		}
		// Express V_i for i = e..s as affine in (V_s, V_1).
		cur := affine2{c0: next.c0, c1: next.c1} // V_{e+1}
		for i := e; i >= s; i-- {
			d := tau + float64(costs.CostForLevel(m.LevelAt(i)))
			p := math.Exp(-lambda * d)
			attempt := (1 - p) / lambda // E[elapsed per attempt]

			// Restore expectations per severity, weighted.
			rest := pi[0]*restoreBlock(levelAt(i-1)) +
				pi[1]*restoreBlock(levelAt(blockStart(i)-1)) +
				pi[2]*restoreBlock(3)

			q := 1 - p // failure probability
			// V_i = attempt + q*rest + p*V_{i+1}
			//       + q*pi1*V_i + q*pi2*V_s + q*pi3*V_1
			denom := 1 - q*pi[0]
			vi := affine2{
				c0: (attempt + q*rest + p*cur.c0) / denom,
				cS: (p*cur.cS + q*pi[1]) / denom,
				c1: (p*cur.c1 + q*pi[2]) / denom,
			}
			cur = vi
		}
		// Close V_s = cur.c0 + cur.cS*V_s + cur.c1*V_1.
		if cur.cS >= 1 {
			return math.Inf(1) // no drift toward absorption
		}
		c0 := cur.c0 / (1 - cur.cS)
		c1 := cur.c1 / (1 - cur.cS)
		if s == 1 {
			// V_1 = c0 + c1*V_1.
			if c1 >= 1 {
				return math.Inf(1)
			}
			v1 = c0 / (1 - c1)
			v1Closed = true
			break
		}
		next = affine2{c0: c0, c1: c1}
	}
	if !v1Closed || math.IsNaN(v1) || v1 <= 0 {
		return math.Inf(1)
	}
	return v1 / (float64(N) * tau)
}

// OptimizeMultilevelExact refines the first-order optimizer's schedule
// with the exact Markov evaluation: the fast objective scans the full
// grid, then ExactStretch re-scores a neighborhood of the winner
// (interval x {1/2..2}, pattern counts +-2) and keeps the best. Results
// are memoized alongside the first-order cache.
func OptimizeMultilevelExact(costs Costs, rates [3]units.Rate, bounds MultilevelConfig) (MultilevelSchedule, error) {
	if bounds.DisableCache {
		return optimizeMultilevelExact(costs, rates, bounds)
	}
	key := cacheKey(costs, rates, bounds)
	key.bounds.IntervalSteps = -key.bounds.IntervalSteps // separate cache namespace
	if v, ok := optCache.Load(key); ok {
		optCacheHits.Add(1)
		e := v.(optCacheEntry)
		return e.sched, e.err
	}
	optCacheMisses.Add(1)
	sched, err := optimizeMultilevelExact(costs, rates, bounds)
	optCache.Store(key, optCacheEntry{sched, err})
	return sched, err
}

// optimizeMultilevelExact is the uncached exact refinement.
func optimizeMultilevelExact(costs Costs, rates [3]units.Rate, bounds MultilevelConfig) (MultilevelSchedule, error) {
	first, err := OptimizeMultilevel(costs, rates, bounds)
	if err != nil {
		return first, err
	}
	if math.IsInf(float64(first.Interval), 1) {
		// No failures: nothing to refine.
		return first, nil
	}

	best := first
	bestVal := first.ExactStretch(costs, rates)
	for _, scale := range []float64{0.5, 0.7, 1, 1.4, 2} {
		for dn1 := -2; dn1 <= 2; dn1++ {
			for dn2 := -2; dn2 <= 2; dn2++ {
				cand := MultilevelSchedule{
					Interval: units.Duration(float64(first.Interval) * scale),
					L1PerL2:  first.L1PerL2 + dn1,
					L2PerL3:  first.L2PerL3 + dn2,
				}
				if cand.L1PerL2 < 1 || cand.L2PerL3 < 1 ||
					cand.L1PerL2 > bounds.MaxL1PerL2 || cand.L2PerL3 > bounds.MaxL2PerL3 {
					continue
				}
				if v := cand.ExactStretch(costs, rates); v < bestVal {
					bestVal, best = v, cand
				}
			}
		}
	}
	if math.IsInf(bestVal, 1) {
		err = errInfeasibleExact
	}
	return best, err
}

// errInfeasibleExact mirrors the first-order optimizer's infeasibility.
var errInfeasibleExact = errors.New("resilience: no schedule achieves finite exact stretch")

package resilience

import (
	"math"
	"strings"
	"testing"

	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/rng"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// mustExecutor builds an executor or fails the test.
func mustExecutor(t *testing.T, tech core.Technique, app workload.App, cfg machine.Config, model *failures.Model) Executor {
	t.Helper()
	x, err := New(tech, app, cfg, model, DefaultConfig())
	if err != nil {
		t.Fatalf("New(%v): %v", tech, err)
	}
	return x
}

// run executes with a generous horizon.
func run(t *testing.T, x Executor, seed uint64) Result {
	t.Helper()
	app := x.App()
	horizon := units.Duration(200 * float64(app.Baseline()))
	return x.Run(0, horizon, rng.New(seed))
}

func defaultModel(cfg machine.Config) *failures.Model {
	return failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF())
}

func TestFactoryRejectsBadInputs(t *testing.T) {
	cfg := machine.Exascale()
	model := defaultModel(cfg)
	app := testApp(workload.A32, 1000)

	if _, err := New(core.CheckpointRestart, workload.App{}, cfg, model, DefaultConfig()); err == nil {
		t.Error("invalid app accepted")
	}
	if _, err := New(core.CheckpointRestart, app, machine.Config{}, model, DefaultConfig()); err == nil {
		t.Error("invalid machine accepted")
	}
	if _, err := New(core.CheckpointRestart, app, cfg, nil, DefaultConfig()); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := New(core.CheckpointRestart, app, cfg, model, Config{RecoverySpeedup: 0}); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := New(core.Technique(99), app, cfg, model, DefaultConfig()); err == nil {
		t.Error("unknown technique accepted")
	}
	big := testApp(workload.A32, cfg.Nodes+1)
	if _, err := New(core.CheckpointRestart, big, cfg, model, DefaultConfig()); err == nil {
		t.Error("oversized app accepted")
	}
}

func TestAllTechniquesCompleteSmallApp(t *testing.T) {
	cfg := machine.Exascale()
	model := defaultModel(cfg)
	app := testApp(workload.B32, 1200) // 1% of the machine
	for _, tech := range core.Techniques() {
		x := mustExecutor(t, tech, app, cfg, model)
		if ok, reason := x.Viable(); !ok {
			t.Errorf("%v not viable for a 1%% app: %s", tech, reason)
			continue
		}
		res := run(t, x, 1)
		if !res.Completed {
			t.Errorf("%v did not complete: %v", tech, res)
			continue
		}
		if eff := res.Efficiency(); eff <= 0 || eff > 1 {
			t.Errorf("%v efficiency %v outside (0, 1]", tech, eff)
		}
		if res.Makespan() < res.EffectiveWork {
			t.Errorf("%v makespan %v below effective work %v", tech, res.Makespan(), res.EffectiveWork)
		}
		if res.Rollbacks > res.Failures {
			t.Errorf("%v rollbacks %d exceed failures %d", tech, res.Rollbacks, res.Failures)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	cfg := machine.Exascale()
	model := defaultModel(cfg)
	app := testApp(workload.D64, 30000)
	for _, tech := range core.Techniques() {
		x := mustExecutor(t, tech, app, cfg, model)
		if ok, _ := x.Viable(); !ok {
			continue
		}
		a := run(t, x, 42)
		b := run(t, x, 42)
		if a != b {
			t.Errorf("%v replay diverged:\n  %+v\n  %+v", tech, a, b)
		}
		c := run(t, x, 43)
		if a == c && a.Failures > 0 {
			t.Errorf("%v: different seeds produced identical eventful runs", tech)
		}
	}
}

func TestCheckpointRestartOverheadAccounting(t *testing.T) {
	cfg := machine.Exascale()
	model := defaultModel(cfg)
	app := testApp(workload.C64, 12000) // 10%
	x := mustExecutor(t, core.CheckpointRestart, app, cfg, model)
	res := run(t, x, 7)
	if !res.Completed {
		t.Fatalf("run did not complete: %v", res)
	}
	// Makespan decomposes into work, rework, checkpoints, and restarts.
	reconstructed := res.EffectiveWork + res.ReworkTime + res.CheckpointTime + res.RestartTime
	if math.Abs(float64(res.Makespan()-reconstructed)) > 1e-6 {
		t.Errorf("makespan %v != work %v + rework %v + ckpt %v + restart %v",
			res.Makespan(), res.EffectiveWork, res.ReworkTime, res.CheckpointTime, res.RestartTime)
	}
	// CR checkpoints are all level 3.
	if res.Checkpoints[1] != 0 || res.Checkpoints[2] != 0 {
		t.Errorf("CR produced non-PFS checkpoints: %v", res.Checkpoints)
	}
	if res.Checkpoints[3] == 0 {
		t.Error("CR produced no checkpoints on a 1-day, 10%-machine run")
	}
	// With recovery speed 1, rework equals lost work.
	if math.Abs(float64(res.ReworkTime-res.LostWork)) > 1e-6 {
		t.Errorf("rework %v != lost work %v at unit recovery speed", res.ReworkTime, res.LostWork)
	}
}

func TestCheckpointRestartNotViableAtExascaleOneYearMTBF(t *testing.T) {
	cfg := machine.Exascale().WithMTBF(1 * units.Year)
	model := defaultModel(cfg)
	app := testApp(workload.D64, cfg.Nodes)
	x := mustExecutor(t, core.CheckpointRestart, app, cfg, model)
	ok, reason := x.Viable()
	if ok {
		t.Fatal("CR should be non-viable at exascale with 1-year MTBF")
	}
	if !strings.Contains(reason, "checkpoint") {
		t.Errorf("unhelpful reason: %q", reason)
	}
	res := run(t, x, 1)
	if res.Completed || res.Efficiency() != 0 || res.Blocked == "" {
		t.Errorf("blocked run should report zero efficiency: %+v", res)
	}
}

func TestCheckpointRestartCannotProgressAt25YearMTBF(t *testing.T) {
	// Figure 3's observation: at a 2.5-year MTBF, exascale-sized CR runs
	// spend so long checkpointing and restarting that applications are
	// "unable to even complete execution". The Daly period is still
	// (barely) positive, so the executor is viable — but the mean time
	// between failures (~11 min) is below the restart time (~17.8 min)
	// and efficiency collapses toward zero.
	cfg := machine.Exascale().WithMTBF(units.Duration(2.5) * units.Year)
	model := defaultModel(cfg)
	app := testApp(workload.D64, cfg.Nodes)
	x := mustExecutor(t, core.CheckpointRestart, app, cfg, model)
	if ok, _ := x.Viable(); !ok {
		t.Fatal("CR should be (nominally) viable at 2.5-year MTBF")
	}
	res := x.Run(0, units.Duration(50*float64(app.Baseline())), rng.New(1))
	if eff := res.Efficiency(); eff > 0.05 {
		t.Errorf("CR efficiency %v at exascale/2.5y; expected near-zero", eff)
	}
}

func TestParallelRecoveryInflation(t *testing.T) {
	cfg := machine.Exascale()
	model := defaultModel(cfg)
	app := testApp(workload.D64, 1200)
	x := mustExecutor(t, core.ParallelRecovery, app, cfg, model)
	res := run(t, x, 3)
	if !res.Completed {
		t.Fatalf("PR run did not complete: %v", res)
	}
	// Message logging inflates work by mu = 1.075 for D64; efficiency is
	// bounded by 1/mu even in a failure-free run.
	if res.EffectiveWork < units.Duration(1.074*float64(res.Baseline)) {
		t.Errorf("effective work %v not inflated by mu", res.EffectiveWork)
	}
	if eff := res.Efficiency(); eff > 1/1.075+1e-9 {
		t.Errorf("PR efficiency %v exceeds 1/mu bound", eff)
	}
	// PR checkpoints are all in-memory (level 2).
	if res.Checkpoints[1] != 0 || res.Checkpoints[3] != 0 {
		t.Errorf("PR produced non-memory checkpoints: %v", res.Checkpoints)
	}
}

func TestParallelRecoveryReworkFasterThanLost(t *testing.T) {
	cfg := machine.Exascale()
	model := defaultModel(cfg)
	app := testApp(workload.A32, 60000) // large app: frequent failures
	x := mustExecutor(t, core.ParallelRecovery, app, cfg, model)
	res := run(t, x, 11)
	if !res.Completed || res.Rollbacks == 0 {
		t.Fatalf("need a completed run with rollbacks, got %v", res)
	}
	// Rework wall time must be lost work divided by the recovery speedup.
	want := float64(res.LostWork) / DefaultConfig().RecoverySpeedup
	if math.Abs(float64(res.ReworkTime)-want) > 1e-6*math.Max(1, want) {
		t.Errorf("rework %v, want lost/phi = %v", res.ReworkTime, want)
	}
}

func TestMultilevelUsesAllLevels(t *testing.T) {
	cfg := machine.Exascale()
	model := defaultModel(cfg)
	app := testApp(workload.C64, 30000)
	x := mustExecutor(t, core.MultilevelCheckpoint, app, cfg, model)
	res := run(t, x, 5)
	if !res.Completed {
		t.Fatalf("ML run did not complete: %v", res)
	}
	if res.Checkpoints[1] == 0 {
		t.Error("ML took no level-1 checkpoints")
	}
	if res.Checkpoints[1] < res.Checkpoints[2] || res.Checkpoints[2] < res.Checkpoints[3] {
		t.Errorf("ML level counts should be decreasing: %v", res.Checkpoints)
	}
}

func TestMultilevelBeatsCheckpointRestartAtScale(t *testing.T) {
	// The core multilevel claim: against the same failures, three-level
	// checkpointing beats all-PFS checkpointing for large applications.
	cfg := machine.Exascale()
	model := defaultModel(cfg)
	app := testApp(workload.C64, 60000)
	ml := mustExecutor(t, core.MultilevelCheckpoint, app, cfg, model)
	cr := mustExecutor(t, core.CheckpointRestart, app, cfg, model)
	var mlEff, crEff float64
	const trials = 20
	for seed := uint64(0); seed < trials; seed++ {
		mlEff += run(t, ml, seed).Efficiency()
		crEff += run(t, cr, seed).Efficiency()
	}
	if mlEff <= crEff {
		t.Errorf("multilevel (%v) did not beat checkpoint restart (%v) over %d trials",
			mlEff/trials, crEff/trials, trials)
	}
}

func TestRedundancyAbsorbsFirstReplicaFailure(t *testing.T) {
	cfg := machine.Exascale()
	model := defaultModel(cfg)
	app := testApp(workload.A32, 10000)
	x := mustExecutor(t, core.FullRedundancy, app, cfg, model)
	if x.PhysicalNodes() != 20000 {
		t.Errorf("full redundancy occupies %d nodes, want 20000", x.PhysicalNodes())
	}
	res := run(t, x, 9)
	if !res.Completed {
		t.Fatalf("redundancy run did not complete: %v", res)
	}
	// With full duplication, most failures must be absorbed: a rollback
	// needs two hits on the same virtual node within one checkpoint
	// interval, which is rare at these rates.
	if res.Failures == 0 {
		t.Fatal("expected failures on a 20000-node day-long run")
	}
	if res.Rollbacks*10 > res.Failures {
		t.Errorf("too many rollbacks for full redundancy: %d of %d failures",
			res.Rollbacks, res.Failures)
	}
}

func TestPartialRedundancyRollsBackMoreThanFull(t *testing.T) {
	cfg := machine.Exascale()
	model := defaultModel(cfg)
	app := testApp(workload.A32, 20000)
	partial := mustExecutor(t, core.PartialRedundancy, app, cfg, model)
	full := mustExecutor(t, core.FullRedundancy, app, cfg, model)
	if partial.PhysicalNodes() != 30000 {
		t.Errorf("partial redundancy occupies %d nodes, want 30000", partial.PhysicalNodes())
	}
	var pr, fr int
	const trials = 20
	for seed := uint64(0); seed < trials; seed++ {
		pr += run(t, partial, seed).Rollbacks
		fr += run(t, full, seed).Rollbacks
	}
	if pr <= fr {
		t.Errorf("partial redundancy should roll back more often than full: %d vs %d", pr, fr)
	}
}

func TestRedundancyBlockedWhenTooLarge(t *testing.T) {
	cfg := machine.Exascale()
	model := defaultModel(cfg)
	// 75% of the machine at r=2 needs 150% of the machine.
	app := testApp(workload.A32, 90000)
	x := mustExecutor(t, core.FullRedundancy, app, cfg, model)
	if ok, reason := x.Viable(); ok || !strings.Contains(reason, "machine has") {
		t.Errorf("oversized replica set should be blocked, got ok=%v reason=%q", ok, reason)
	}
	res := run(t, x, 1)
	if res.Efficiency() != 0 {
		t.Errorf("blocked redundancy run has efficiency %v", res.Efficiency())
	}
	// r=1.5 at 60% needs 90%: viable.
	app2 := testApp(workload.A32, 72000)
	x2 := mustExecutor(t, core.PartialRedundancy, app2, cfg, model)
	if ok, _ := x2.Viable(); !ok {
		t.Error("r=1.5 at 60% of the machine should fit")
	}
}

func TestEfficiencyDecreasesWithSize(t *testing.T) {
	// The headline trend of Figure 1: every technique loses efficiency as
	// the application grows.
	cfg := machine.Exascale()
	model := defaultModel(cfg)
	for _, tech := range []core.Technique{core.CheckpointRestart, core.MultilevelCheckpoint, core.ParallelRecovery} {
		avg := func(nodes int) float64 {
			app := testApp(workload.C64, nodes)
			x := mustExecutor(t, tech, app, cfg, model)
			var sum float64
			const trials = 15
			for seed := uint64(0); seed < trials; seed++ {
				sum += run(t, x, seed).Efficiency()
			}
			return sum / trials
		}
		small, large := avg(1200), avg(120000)
		if small <= large {
			t.Errorf("%v: efficiency did not decrease with size (1%%: %v, 100%%: %v)",
				tech, small, large)
		}
	}
}

func TestEfficiencyDecreasesWithMTBF(t *testing.T) {
	// Figure 3's premise: less reliable components degrade every technique.
	app := testApp(workload.C64, 30000)
	avg := func(mtbf units.Duration) float64 {
		cfg := machine.Exascale().WithMTBF(mtbf)
		model := defaultModel(cfg)
		x, err := New(core.MultilevelCheckpoint, app, cfg, model, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		const trials = 15
		for seed := uint64(0); seed < trials; seed++ {
			horizon := units.Duration(200 * float64(app.Baseline()))
			sum += x.Run(0, horizon, rng.New(seed)).Efficiency()
		}
		return sum / trials
	}
	if high, low := avg(10*units.Year), avg(units.Duration(2.5)*units.Year); high <= low {
		t.Errorf("efficiency at 10y MTBF (%v) should exceed 2.5y (%v)", high, low)
	}
}

func TestHorizonTruncation(t *testing.T) {
	cfg := machine.Exascale()
	model := defaultModel(cfg)
	app := testApp(workload.A32, 1200)
	x := mustExecutor(t, core.CheckpointRestart, app, cfg, model)
	// Horizon far below the baseline: the run cannot complete.
	res := x.Run(0, app.Baseline()/2, rng.New(1))
	if res.Completed {
		t.Error("run completed despite an impossible horizon")
	}
	if res.End != app.Baseline()/2 {
		t.Errorf("incomplete run should end at the horizon, got %v", res.End)
	}
}

func TestRunStartOffset(t *testing.T) {
	cfg := machine.Exascale()
	model := defaultModel(cfg)
	app := testApp(workload.B32, 1200)
	x := mustExecutor(t, core.ParallelRecovery, app, cfg, model)
	start := 5000 * units.Minute
	res := x.Run(start, start+units.Duration(100*float64(app.Baseline())), rng.New(2))
	if !res.Completed {
		t.Fatalf("offset run did not complete: %v", res)
	}
	if res.Start != start || res.End <= start {
		t.Errorf("offset run has start %v end %v", res.Start, res.End)
	}
}

func TestResultString(t *testing.T) {
	cfg := machine.Exascale()
	model := defaultModel(cfg)
	app := testApp(workload.B32, 1200)
	x := mustExecutor(t, core.ParallelRecovery, app, cfg, model)
	res := run(t, x, 1)
	if s := res.String(); !strings.Contains(s, "completed") {
		t.Errorf("completed result renders as %q", s)
	}
	blocked := Result{Technique: core.FullRedundancy, Blocked: "too big"}
	if s := blocked.String(); !strings.Contains(s, "too big") {
		t.Errorf("blocked result renders as %q", s)
	}
}

func mustExecutorBench(b *testing.B, tech core.Technique, nodes int) Executor {
	cfg := machine.Exascale()
	model := defaultModel(cfg)
	x, err := New(tech, testApp(workload.C64, nodes), cfg, model, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return x
}

func BenchmarkCheckpointRestartRun(b *testing.B) {
	x := mustExecutorBench(b, core.CheckpointRestart, 30000)
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Run(0, 1e9, src)
	}
}

func BenchmarkMultilevelRun(b *testing.B) {
	x := mustExecutorBench(b, core.MultilevelCheckpoint, 30000)
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Run(0, 1e9, src)
	}
}

func BenchmarkParallelRecoveryRun(b *testing.B) {
	x := mustExecutorBench(b, core.ParallelRecovery, 30000)
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Run(0, 1e9, src)
	}
}

func TestIdealExecutor(t *testing.T) {
	cfg := machine.Exascale()
	model := defaultModel(cfg)
	app := testApp(workload.C64, 30000)
	x := mustExecutor(t, core.Ideal, app, cfg, model)
	if ok, _ := x.Viable(); !ok {
		t.Fatal("ideal executor must always be viable")
	}
	res := x.Run(100, 1e9, rng.New(1))
	if !res.Completed {
		t.Fatalf("ideal run incomplete: %v", res)
	}
	if res.Makespan() != app.Baseline() {
		t.Errorf("ideal makespan %v, want exactly the baseline %v", res.Makespan(), app.Baseline())
	}
	if res.Efficiency() != 1 {
		t.Errorf("ideal efficiency %v, want 1", res.Efficiency())
	}
	if res.Failures != 0 || res.TotalCheckpoints() != 0 {
		t.Error("ideal run recorded failures or checkpoints")
	}
	// Horizon truncation still applies.
	short := x.Run(0, app.Baseline()/2, rng.New(1))
	if short.Completed {
		t.Error("ideal run completed past its horizon")
	}
	// Clone is independent and equivalent.
	if got := x.Clone().Run(100, 1e9, rng.New(1)); got != res {
		t.Error("ideal clone produced a different result")
	}
}

func TestPooledReuseMatchesFreshAcrossTechniques(t *testing.T) {
	// PR 1 made executors reuse one pooled simulator across sequential
	// runs, which means a second run executes on a warm event pool and a
	// strategy that has already been through failures. If any technique's
	// reset() (sequential reuse) or clone() (parallel fan-out) leaks state
	// — a multilevel counter or surviving checkpoint, a redundancy replica
	// failure mark — a reused executor silently inherits checkpoints from
	// a previous trial. Run every technique at a failure-heavy operating
	// point and require bit-identical results from (a) a fresh executor,
	// (b) an executor dirtied by two prior runs (reset path), and (c) a
	// clone taken from a dirtied executor (clone path).
	cfg := machine.Exascale().WithMTBF(units.Duration(2.5) * units.Year)
	model := defaultModel(cfg)
	app := testApp(workload.C64, 12000)
	const refSeed, dirtySeed = 101, 202

	for _, tech := range core.Techniques() {
		x := mustExecutor(t, tech, app, cfg, model)
		if ok, _ := x.Viable(); !ok {
			t.Fatalf("%v not viable at the test operating point", tech)
		}
		want := run(t, x.Clone(), refSeed) // fresh executor, first run ever

		// Reset path: two dirtying runs, then the reference seed.
		dirty := mustExecutor(t, tech, app, cfg, model)
		d1 := run(t, dirty, dirtySeed)
		run(t, dirty, dirtySeed+1)
		if d1.Failures == 0 {
			t.Errorf("%v: dirtying run saw no failures; test exercises nothing", tech)
		}
		switch tech {
		case core.PartialRedundancy, core.FullRedundancy:
			// Replica failure marks are dirtied by every failure; rollbacks
			// are intentionally rare here.
		default:
			if d1.Rollbacks == 0 {
				t.Errorf("%v: dirtying run saw no rollbacks; test exercises nothing", tech)
			}
		}
		if got := run(t, dirty, refSeed); got != want {
			t.Errorf("%v: reused executor diverged from fresh after reset:\n fresh: %+v\n reused: %+v",
				tech, want, got)
		}

		// Clone path: clone a dirtied executor mid-history.
		if got := run(t, dirty.Clone(), refSeed); got != want {
			t.Errorf("%v: clone of a dirty executor diverged from fresh:\n fresh: %+v\n clone: %+v",
				tech, want, got)
		}
	}
}

func TestClonedExecutorsMatch(t *testing.T) {
	cfg := machine.Exascale()
	model := defaultModel(cfg)
	app := testApp(workload.D64, 30000)
	for _, tech := range core.Techniques() {
		x := mustExecutor(t, tech, app, cfg, model)
		y := x.Clone()
		a := run(t, x, 77)
		b := run(t, y, 77)
		if a != b {
			t.Errorf("%v: clone diverged from original", tech)
		}
	}
}

func TestSemiBlockingCheckpointsOverlapWork(t *testing.T) {
	cfg := machine.Exascale()
	model := defaultModel(cfg)
	app := testApp(workload.C64, 30000)

	blocking := mustExecutor(t, core.CheckpointRestart, app, cfg, model)
	semiOpts := DefaultConfig()
	semiOpts.CheckpointComputeRate = 0.5
	semi, err := New(core.CheckpointRestart, app, cfg, model, semiOpts)
	if err != nil {
		t.Fatal(err)
	}

	var bSum, sSum float64
	var overlapped units.Duration
	const trials = 20
	for seed := uint64(0); seed < trials; seed++ {
		b := run(t, blocking, seed)
		s := run(t, semi, seed)
		if !b.Completed || !s.Completed {
			t.Fatalf("runs incomplete at seed %d", seed)
		}
		bSum += b.Makespan().Minutes()
		sSum += s.Makespan().Minutes()
		overlapped += s.OverlappedWork
		if b.OverlappedWork != 0 {
			t.Fatal("blocking run reported overlapped work")
		}
		// Decomposition with overlap (at recovery speed 1): total compute
		// wall time is gross progress earned in compute phases, i.e.
		// effective work plus every lost minute re-earned, minus whatever
		// was earned inside checkpoint writes.
		reconstructed := s.EffectiveWork + s.LostWork - s.OverlappedWork +
			s.CheckpointTime + s.RestartTime
		if math.Abs(float64(s.Makespan()-reconstructed)) > 1e-6 {
			t.Fatalf("semi-blocking decomposition off: makespan %v vs %v",
				s.Makespan(), reconstructed)
		}
	}
	if overlapped <= 0 {
		t.Fatal("semi-blocking runs earned no overlapped work")
	}
	if sSum >= bSum {
		t.Errorf("semi-blocking mean makespan (%v) should beat blocking (%v)",
			sSum/trials, bSum/trials)
	}
}

func TestSemiBlockingValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.CheckpointComputeRate = 1.0
	if err := bad.Validate(); err == nil {
		t.Error("compute rate 1.0 accepted (checkpoint would never bound work)")
	}
	bad.CheckpointComputeRate = -0.1
	if err := bad.Validate(); err == nil {
		t.Error("negative compute rate accepted")
	}
}

func TestPost2017ConfigValidation(t *testing.T) {
	// The post-2017 knobs follow the defaulting-audit pattern: the zero
	// value selects the documented default, values inside the model's
	// validity range pass, and anything outside is rejected with an error
	// naming the parameter.
	mutate := func(f func(*Config)) Config {
		c := DefaultConfig()
		f(&c)
		return c
	}
	cases := []struct {
		name   string
		cfg    Config
		wantOK bool
	}{
		{"default", DefaultConfig(), true},
		{"zero degree defaults", mutate(func(c *Config) { c.ReStoreDegree = 0 }), true},
		{"high degree", mutate(func(c *Config) { c.ReStoreDegree = 5 }), true},
		{"negative degree", mutate(func(c *Config) { c.ReStoreDegree = -1 }), false},
		{"zero sync penalty", mutate(func(c *Config) { c.TeamSyncPenalty = 0 }), true},
		{"near-unit sync penalty", mutate(func(c *Config) { c.TeamSyncPenalty = 0.99 }), true},
		{"negative sync penalty", mutate(func(c *Config) { c.TeamSyncPenalty = -0.1 }), false},
		{"unit sync penalty", mutate(func(c *Config) { c.TeamSyncPenalty = 1.0 }), false},
		{"excess sync penalty", mutate(func(c *Config) { c.TeamSyncPenalty = 1.5 }), false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.wantOK && err != nil {
			t.Errorf("%s: rejected: %v", tc.name, err)
		}
		if !tc.wantOK && err == nil {
			t.Errorf("%s: accepted, want an error", tc.name)
		}
	}
	if got := (Config{}).ReStoreReplicas(); got != 2 {
		t.Errorf("zero-value replica degree resolved to %d, want the default 2", got)
	}
	if got := mutate(func(c *Config) { c.ReStoreDegree = 4 }).ReStoreReplicas(); got != 4 {
		t.Errorf("explicit replica degree resolved to %d, want 4", got)
	}
	// New must refuse the out-of-range parameters end to end.
	cfg := machine.Exascale()
	model := defaultModel(cfg)
	app := testApp(workload.C64, 12000)
	bad := mutate(func(c *Config) { c.ReStoreDegree = -2 })
	if _, err := New(core.InMemoryReplicatedCheckpoint, app, cfg, model, bad); err == nil {
		t.Error("New accepted a negative replica degree")
	}
	bad = mutate(func(c *Config) { c.TeamSyncPenalty = 1.0 })
	if _, err := New(core.LightweightReplication, app, cfg, model, bad); err == nil {
		t.Error("New accepted a sync penalty of 1.0")
	}
}

func TestSemiBlockingSnapshotSemantics(t *testing.T) {
	// The committed checkpoint must hold the progress at checkpoint START:
	// simulate with a huge failure rate so rollbacks are frequent, and
	// verify the run still completes with sane counters (a wrong snapshot
	// that included overlapped work would let efficiency exceed its bound
	// or break the decomposition).
	cfg := machine.Exascale().WithMTBF(2 * units.Year)
	model := defaultModel(cfg)
	app := testApp(workload.C32, 30000)
	opts := DefaultConfig()
	opts.CheckpointComputeRate = 0.7
	x, err := New(core.CheckpointRestart, app, cfg, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 10; seed++ {
		res := run(t, x, seed)
		if !res.Completed {
			continue
		}
		if res.Efficiency() > 1 {
			t.Fatalf("efficiency %v above 1", res.Efficiency())
		}
		reconstructed := res.EffectiveWork + res.LostWork - res.OverlappedWork +
			res.CheckpointTime + res.RestartTime
		if math.Abs(float64(res.Makespan()-reconstructed)) > 1e-6 {
			t.Fatalf("decomposition broke under failures: %v vs %v", res.Makespan(), reconstructed)
		}
	}
}

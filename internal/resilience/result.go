package resilience

import (
	"fmt"

	"exaresil/internal/core"
	"exaresil/internal/units"
)

// Result summarizes one simulated application execution under a resilience
// technique.
type Result struct {
	// Technique is the resilience technique that produced the run.
	Technique core.Technique
	// Completed reports whether the application finished all of its work
	// before the run's horizon. Runs that cannot complete (for example
	// Checkpoint Restart with a non-positive Daly period, or redundancy
	// on a machine too small for the replica set) report false.
	Completed bool
	// Blocked, when non-empty, explains why the run could not execute at
	// all (it never occupied the machine).
	Blocked string
	// Start and End bound the execution in simulation time; for
	// incomplete runs End is the horizon at which the run was abandoned.
	Start, End units.Duration
	// Baseline is T_B, the delay- and overhead-free execution time used
	// as the numerator of the efficiency metric.
	Baseline units.Duration
	// EffectiveWork is the technique-inflated total work (Eqs. 7 and 8);
	// equal to Baseline for techniques without intrinsic slowdown.
	EffectiveWork units.Duration
	// Failures counts failure events that struck the application's nodes.
	Failures int
	// Rollbacks counts failures that forced a restart (for redundancy,
	// fewer than Failures; surviving replicas absorb the rest).
	Rollbacks int
	// Checkpoints counts completed checkpoints by level (index 1-3; PFS
	// checkpoints of single-level techniques count at their level, 3).
	Checkpoints [4]int
	// CheckpointTime, RestartTime and ReworkTime decompose the overhead:
	// time spent writing checkpoints, time spent restoring state after
	// failures, and wall time spent recomputing work already done before
	// a failure.
	CheckpointTime, RestartTime, ReworkTime units.Duration
	// RelaunchTime is the subset of RestartTime spent on from-scratch
	// relaunches (restores with no surviving checkpoint, trace level 0) as
	// opposed to real checkpoint restores.
	RelaunchTime units.Duration
	// LostWork is the total work-minutes discarded by rollbacks (the
	// rework is LostWork divided by the technique's recovery speed).
	LostWork units.Duration
	// OverlappedWork is progress earned during checkpoint writes when the
	// semi-blocking extension is enabled (zero under the paper's blocking
	// model); it explains why makespan can undercut the naive sum of
	// phase times.
	OverlappedWork units.Duration
}

// Makespan reports the wall time from start to finish (or horizon).
func (r Result) Makespan() units.Duration { return r.End - r.Start }

// Efficiency is the paper's metric: the ratio of the application's
// delay-free baseline execution time to its actual execution time, zero for
// runs that never completed.
func (r Result) Efficiency() float64 {
	if !r.Completed || r.Makespan() <= 0 {
		return 0
	}
	return float64(r.Baseline) / float64(r.Makespan())
}

// TotalCheckpoints reports the number of completed checkpoints at every
// level.
func (r Result) TotalCheckpoints() int {
	total := 0
	for _, n := range r.Checkpoints {
		total += n
	}
	return total
}

// String renders the result for logs.
func (r Result) String() string {
	if !r.Completed {
		reason := r.Blocked
		if reason == "" {
			reason = "horizon exceeded"
		}
		return fmt.Sprintf("%s: incomplete (%s) after %s, %d failures",
			r.Technique, reason, r.Makespan(), r.Failures)
	}
	return fmt.Sprintf("%s: completed in %s (eff %.3f), %d failures, %d rollbacks, %d checkpoints",
		r.Technique, r.Makespan(), r.Efficiency(), r.Failures, r.Rollbacks, r.TotalCheckpoints())
}

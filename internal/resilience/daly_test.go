package resilience

import (
	"math"
	"testing"
	"testing/quick"

	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

func TestDalyKnownValue(t *testing.T) {
	// Full exascale machine, 64 GB app, 10-year MTBF:
	// T_c = 17.78 min, lambda = 120000/(10*525600) = 0.022831/min,
	// tau = sqrt(2*17.78/0.022831) - 17.78 = sqrt(1557.5) - 17.78 ~ 21.68.
	cfg := machine.Exascale()
	model := failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF())
	costs := ComputeCosts(testApp(workload.D64, cfg.Nodes), cfg)
	tau, ok := DalyPeriod(costs.PFS, model.Rate(cfg.Nodes))
	if !ok {
		t.Fatal("expected a positive Daly period at 10-year MTBF")
	}
	want := math.Sqrt(2*costs.PFS.Minutes()/model.Rate(cfg.Nodes).PerMinute()) - costs.PFS.Minutes()
	if math.Abs(tau.Minutes()-want) > 1e-9 {
		t.Errorf("tau = %v, want %v", tau.Minutes(), want)
	}
	if tau.Minutes() < 15 || tau.Minutes() > 30 {
		t.Errorf("tau = %v min, expected the low tens of minutes", tau.Minutes())
	}
}

func TestDalyCollapsesAtLowMTBF(t *testing.T) {
	// The Daly period goes non-positive once lambda >= 2/T_c. For the
	// full-machine 64 GB application (T_c = 17.78 min) that threshold is
	// an MTBF of about 2.03 years; at 1 year Checkpoint Restart cannot
	// even be configured.
	cfg := machine.Exascale().WithMTBF(1 * units.Year)
	model := failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF())
	costs := ComputeCosts(testApp(workload.D64, cfg.Nodes), cfg)
	if _, ok := DalyPeriod(costs.PFS, model.Rate(cfg.Nodes)); ok {
		t.Error("expected the Daly period to collapse at exascale with 1-year MTBF")
	}
	// At 2.5 years the period is still (barely) positive; the technique
	// is configurable but Section V shows it cannot make real progress.
	cfg25 := machine.Exascale().WithMTBF(units.Duration(2.5) * units.Year)
	model25 := failures.MustModel(cfg25.MTBF, failures.DefaultSeverityPMF())
	tau, ok := DalyPeriod(costs.PFS, model25.Rate(cfg25.Nodes))
	if !ok {
		t.Fatal("Daly period should still be positive at 2.5-year MTBF")
	}
	if tau.Minutes() > 3 {
		t.Errorf("tau = %v min; expected a degenerate (tiny) period", tau.Minutes())
	}
}

func TestDalyZeroRate(t *testing.T) {
	tau, ok := DalyPeriod(10*units.Minute, 0)
	if !ok || !math.IsInf(float64(tau), 1) {
		t.Errorf("zero failure rate: got (%v, %v), want (+Inf, true)", tau, ok)
	}
}

func TestDalyZeroCost(t *testing.T) {
	if _, ok := DalyPeriod(0, 0.01); ok {
		t.Error("zero checkpoint cost should be rejected")
	}
}

// TestDalyIsOptimum verifies tau minimizes the first-order waste model
// w(T) = C/T + lambda*T/2 it is derived from, against neighboring periods.
func TestDalyIsOptimum(t *testing.T) {
	waste := func(period, cost, rate float64) float64 {
		return cost/period + rate*period/2
	}
	prop := func(costRaw, rateRaw uint16) bool {
		cost := float64(costRaw%500) + 0.5         // 0.5..500.5 minutes
		rate := (float64(rateRaw%1000) + 1) * 1e-6 // 1e-6..1e-3 per minute
		tau, ok := DalyPeriod(units.Duration(cost), units.Rate(rate))
		if !ok {
			// Collapse regime: Young's period must be <= cost then.
			return float64(YoungPeriod(units.Duration(cost), units.Rate(rate))) <= cost
		}
		// Daly's tau approximates the optimum of the Young model with the
		// checkpoint latency subtracted; check it beats far-off periods.
		at := waste(float64(tau)+cost, cost, rate)
		return at <= waste((float64(tau)+cost)*3, cost, rate) &&
			at <= waste((float64(tau)+cost)/3, cost, rate)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestYoungPeriod(t *testing.T) {
	got := YoungPeriod(8*units.Minute, units.Rate(0.01))
	want := math.Sqrt(2 * 8 / 0.01)
	if math.Abs(got.Minutes()-want) > 1e-9 {
		t.Errorf("Young period = %v, want %v", got.Minutes(), want)
	}
	if !math.IsInf(float64(YoungPeriod(8*units.Minute, 0)), 1) {
		t.Error("Young period at zero rate should be infinite")
	}
}

package resilience

import (
	"math"
	"testing"

	"exaresil/internal/core"
	"exaresil/internal/machine"
	"exaresil/internal/rng"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// FuzzReStoreReplicaLoss throws arbitrary (degree, size, MTBF, seed)
// configurations at the In-Memory Replicated Checkpoint executor and
// replays each run's trace against an independent mirror of the replica
// bookkeeping. The contract under any failure sequence:
//
//   - every phase-time counter in the result is non-negative, and
//     relaunch time never exceeds restart time;
//   - trace timestamps never run backwards;
//   - no restore ever reads a checkpoint whose replica set the failures
//     since its commit have destroyed: once the holder losses reach the
//     degree k, the next restore must be a from-scratch relaunch (trace
//     level 0, progress 0) until a new commit re-provisions the set;
//   - while the set survives, restores resume exactly the committed
//     progress at the in-memory level (2; PFS level 3 when degenerate).
func FuzzReStoreReplicaLoss(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint16(12000), uint16(720), uint8(25))
	f.Add(uint64(7), uint8(0), uint16(2), uint16(360), uint8(10))      // degenerate: no peers
	f.Add(uint64(42), uint8(5), uint16(60000), uint16(1440), uint8(5)) // high rate, big set
	f.Add(uint64(3), uint8(1), uint16(300), uint16(120), uint8(100))
	f.Fuzz(func(t *testing.T, seed uint64, degreeRaw uint8, nodesRaw, stepsRaw uint16, mtbfTenths uint8) {
		cfg := machine.Exascale().WithMTBF(units.Duration(float64(mtbfTenths%200+1) / 10 * float64(units.Year)))
		model := defaultModel(cfg)
		// Nodes start at 2 so small allocations exercise the degenerate
		// (no-peers) fallback; degree 0 resolves to the default.
		app := workload.App{
			Class:     workload.C64,
			TimeSteps: int(stepsRaw)%1440 + 60,
			Nodes:     int(nodesRaw)%60000 + 2,
		}
		opts := DefaultConfig()
		opts.ReStoreDegree = int(degreeRaw % 6)

		x, err := New(core.InMemoryReplicatedCheckpoint, app, cfg, model, opts)
		if err != nil {
			t.Fatalf("constructor rejected a valid config: %v", err)
		}
		info, ok := ReStoreInfoOf(x)
		if !ok {
			t.Fatal("ReStoreInfoOf missed its own executor")
		}
		if ok, _ := x.Viable(); !ok {
			return
		}

		// Mirror of the strategy's replica-placement state, rebuilt purely
		// from the trace.
		var (
			saved     units.Duration
			has       bool
			lost      int
			lastTime  units.Duration
			liveLevel = 2
		)
		if info.Degenerate {
			liveLevel = 3
		}
		Observe(x, func(ev TraceEvent) {
			if ev.Time < lastTime {
				t.Fatalf("trace time ran backwards: %s after %s", ev.Time, lastTime)
			}
			lastTime = ev.Time
			switch ev.Kind {
			case TraceCheckpointEnd:
				if ev.Level != liveLevel {
					t.Fatalf("checkpoint committed at level %d, want %d", ev.Level, liveLevel)
				}
				saved, has, lost = ev.Progress, true, 0
			case TraceFailure:
				if !ev.Rollback {
					t.Fatalf("ReStore absorbed a failure (%v); every failure must roll back", ev.Severity)
				}
				if !info.Degenerate {
					lost += holderLoss(ev.Severity)
					if lost >= info.Degree {
						saved, has = 0, false
					}
				}
			case TraceRestartEnd:
				wantLevel, wantProgress := 0, units.Duration(0)
				if has {
					wantLevel, wantProgress = liveLevel, saved
				}
				if ev.Level != wantLevel {
					t.Fatalf("restored from level %d with %d/%d holders lost, want level %d",
						ev.Level, lost, info.Degree, wantLevel)
				}
				if ev.Progress != wantProgress {
					t.Fatalf("restore resumed progress %s, want %s", ev.Progress, wantProgress)
				}
			}
		})

		res := x.Run(0, units.Duration(50*float64(app.Baseline())), rng.New(seed))
		for _, c := range []struct {
			name string
			v    units.Duration
		}{
			{"checkpoint", res.CheckpointTime}, {"restart", res.RestartTime},
			{"rework", res.ReworkTime}, {"relaunch", res.RelaunchTime},
			{"lost work", res.LostWork},
		} {
			if c.v < 0 {
				t.Fatalf("negative %s time %s", c.name, c.v)
			}
		}
		if res.RelaunchTime > res.RestartTime+1e-9 {
			t.Fatalf("relaunch time %s exceeds restart time %s", res.RelaunchTime, res.RestartTime)
		}
		if res.Rollbacks != res.Failures {
			t.Fatalf("%d rollbacks != %d failures; ReStore cannot absorb", res.Rollbacks, res.Failures)
		}
	})
}

// FuzzOptimizeMultilevel throws arbitrary (costs, rates, bounds) tuples at
// the schedule search and checks its contract: no panic, the winner lies
// inside the requested bounds with a finite stretch >= 1, the failure-free
// degenerate case never checkpoints, and the memoized path returns exactly
// what the raw search returns.
func FuzzOptimizeMultilevel(f *testing.F) {
	f.Add(1.0, 3.0, 10.0, 1e-3, 1e-4, 1e-5, uint8(4), uint8(4), uint8(9))
	f.Add(0.1, 0.1, 0.1, 0.0, 0.0, 0.0, uint8(1), uint8(1), uint8(2))
	f.Add(5.0, 5.0, 500.0, 0.01, 0.01, 0.01, uint8(8), uint8(8), uint8(17))
	f.Add(30.0, 30.0, 30.0, 0.9, 0.9, 0.9, uint8(3), uint8(3), uint8(5))
	f.Fuzz(func(t *testing.T, l1, l2, pfs, r1, r2, r3 float64, n1cap, n2cap, steps uint8) {
		for _, v := range []float64{l1, l2, pfs, r1, r2, r3} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip("non-finite input")
			}
		}
		if l1 <= 0 || l2 <= 0 || pfs <= 0 || l1 > 1e6 || l2 > 1e6 || pfs > 1e6 {
			t.Skip("cost outside the meaningful range")
		}
		if r1 < 0 || r2 < 0 || r3 < 0 || r1 > 1e3 || r2 > 1e3 || r3 > 1e3 {
			t.Skip("rate outside the meaningful range")
		}
		costs := Costs{L1: units.Duration(l1), L2: units.Duration(l2), PFS: units.Duration(pfs)}
		rates := [3]units.Rate{units.Rate(r1), units.Rate(r2), units.Rate(r3)}
		bounds := MultilevelConfig{
			MaxL1PerL2:    1 + int(n1cap%8),
			MaxL2PerL3:    1 + int(n2cap%8),
			IntervalSteps: 2 + int(steps%16),
			DisableCache:  true,
		}
		sched, err := OptimizeMultilevel(costs, rates, bounds)
		if err != nil {
			// Infeasible regimes (failures eat work faster than it is
			// computed) are a legitimate outcome — but a deterministic one.
			if _, err2 := OptimizeMultilevel(costs, rates, bounds); err2 == nil || err2.Error() != err.Error() {
				t.Fatalf("infeasibility not deterministic: %v then %v", err, err2)
			}
			return
		}
		if !(sched.Interval > 0) {
			t.Fatalf("non-positive interval %v", sched.Interval)
		}
		if sched.L1PerL2 < 1 || sched.L1PerL2 > bounds.MaxL1PerL2 ||
			sched.L2PerL3 < 1 || sched.L2PerL3 > bounds.MaxL2PerL3 {
			t.Fatalf("pattern counts %d/%d outside bounds %d/%d",
				sched.L1PerL2, sched.L2PerL3, bounds.MaxL1PerL2, bounds.MaxL2PerL3)
		}
		if r1+r2+r3 == 0 {
			if !math.IsInf(float64(sched.Interval), 1) {
				t.Fatalf("failure-free optimum should never checkpoint, got interval %v", sched.Interval)
			}
		} else {
			st := sched.ExpectedStretch(costs, rates)
			if math.IsNaN(st) || math.IsInf(st, 0) || st < 1 {
				t.Fatalf("winning schedule %v has stretch %v, want finite >= 1", sched, st)
			}
		}
		// The memoized path must agree with the raw search, on both the
		// cold (store) and warm (load) lookups.
		cached := bounds
		cached.DisableCache = false
		for pass := 0; pass < 2; pass++ {
			again, err2 := OptimizeMultilevel(costs, rates, cached)
			if err2 != nil || again != sched {
				t.Fatalf("cached pass %d returned %v (%v), raw search returned %v", pass, again, err2, sched)
			}
		}
	})
}

package resilience

import (
	"math"
	"testing"

	"exaresil/internal/units"
)

// FuzzOptimizeMultilevel throws arbitrary (costs, rates, bounds) tuples at
// the schedule search and checks its contract: no panic, the winner lies
// inside the requested bounds with a finite stretch >= 1, the failure-free
// degenerate case never checkpoints, and the memoized path returns exactly
// what the raw search returns.
func FuzzOptimizeMultilevel(f *testing.F) {
	f.Add(1.0, 3.0, 10.0, 1e-3, 1e-4, 1e-5, uint8(4), uint8(4), uint8(9))
	f.Add(0.1, 0.1, 0.1, 0.0, 0.0, 0.0, uint8(1), uint8(1), uint8(2))
	f.Add(5.0, 5.0, 500.0, 0.01, 0.01, 0.01, uint8(8), uint8(8), uint8(17))
	f.Add(30.0, 30.0, 30.0, 0.9, 0.9, 0.9, uint8(3), uint8(3), uint8(5))
	f.Fuzz(func(t *testing.T, l1, l2, pfs, r1, r2, r3 float64, n1cap, n2cap, steps uint8) {
		for _, v := range []float64{l1, l2, pfs, r1, r2, r3} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip("non-finite input")
			}
		}
		if l1 <= 0 || l2 <= 0 || pfs <= 0 || l1 > 1e6 || l2 > 1e6 || pfs > 1e6 {
			t.Skip("cost outside the meaningful range")
		}
		if r1 < 0 || r2 < 0 || r3 < 0 || r1 > 1e3 || r2 > 1e3 || r3 > 1e3 {
			t.Skip("rate outside the meaningful range")
		}
		costs := Costs{L1: units.Duration(l1), L2: units.Duration(l2), PFS: units.Duration(pfs)}
		rates := [3]units.Rate{units.Rate(r1), units.Rate(r2), units.Rate(r3)}
		bounds := MultilevelConfig{
			MaxL1PerL2:    1 + int(n1cap%8),
			MaxL2PerL3:    1 + int(n2cap%8),
			IntervalSteps: 2 + int(steps%16),
			DisableCache:  true,
		}
		sched, err := OptimizeMultilevel(costs, rates, bounds)
		if err != nil {
			// Infeasible regimes (failures eat work faster than it is
			// computed) are a legitimate outcome — but a deterministic one.
			if _, err2 := OptimizeMultilevel(costs, rates, bounds); err2 == nil || err2.Error() != err.Error() {
				t.Fatalf("infeasibility not deterministic: %v then %v", err, err2)
			}
			return
		}
		if !(sched.Interval > 0) {
			t.Fatalf("non-positive interval %v", sched.Interval)
		}
		if sched.L1PerL2 < 1 || sched.L1PerL2 > bounds.MaxL1PerL2 ||
			sched.L2PerL3 < 1 || sched.L2PerL3 > bounds.MaxL2PerL3 {
			t.Fatalf("pattern counts %d/%d outside bounds %d/%d",
				sched.L1PerL2, sched.L2PerL3, bounds.MaxL1PerL2, bounds.MaxL2PerL3)
		}
		if r1+r2+r3 == 0 {
			if !math.IsInf(float64(sched.Interval), 1) {
				t.Fatalf("failure-free optimum should never checkpoint, got interval %v", sched.Interval)
			}
		} else {
			st := sched.ExpectedStretch(costs, rates)
			if math.IsNaN(st) || math.IsInf(st, 0) || st < 1 {
				t.Fatalf("winning schedule %v has stretch %v, want finite >= 1", sched, st)
			}
		}
		// The memoized path must agree with the raw search, on both the
		// cold (store) and warm (load) lookups.
		cached := bounds
		cached.DisableCache = false
		for pass := 0; pass < 2; pass++ {
			again, err2 := OptimizeMultilevel(costs, rates, cached)
			if err2 != nil || again != sched {
				t.Fatalf("cached pass %d returned %v (%v), raw search returned %v", pass, again, err2, sched)
			}
		}
	})
}

package resilience

import (
	"testing"

	"exaresil/internal/failures"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// TestMultilevelScratchRestartAccounting pins the from-scratch restart
// contract of onFailure: when no checkpoint of an adequate level survives,
// the response must roll all the way back to zero progress, report restore
// LEVEL 0 (no checkpoint was read — attributing the relaunch to a real
// level would corrupt trace restore histograms), and still charge the
// failing level's symmetric restore time as the relaunch cost, per Moody's
// model.
// TestSingleLevelScratchRestartAccounting pins the same contract for the
// single-level techniques: a rollback before the first checkpoint commits
// is a from-scratch relaunch (trace level 0), not a read of the
// technique's storage level; the relaunch cost is unchanged.
func TestSingleLevelScratchRestartAccounting(t *testing.T) {
	costs := Costs{L1: 1 * units.Minute, L2: 3 * units.Minute, PFS: 10 * units.Minute}
	anyFailure := failures.Failure{Severity: failures.SeverityTransient}

	cr := &checkpointRestart{application: testApp(workload.C64, 1000), costs: costs}
	cr.reset()
	if resp := cr.onFailure(anyFailure, 50); resp.restoreLevel != 0 || resp.restoreTo != 0 || resp.restartCost != costs.PFS {
		t.Errorf("CR scratch restart = level %d @ %v costing %v, want level 0 @ 0 costing T_PFS",
			resp.restoreLevel, resp.restoreTo, resp.restartCost)
	}
	cr.onCheckpointDone(3, 30)
	if resp := cr.onFailure(anyFailure, 50); resp.restoreLevel != 3 || resp.restoreTo != 30 {
		t.Errorf("CR restore = level %d @ %v, want level 3 @ 30min", resp.restoreLevel, resp.restoreTo)
	}

	pr := &parallelRecovery{application: testApp(workload.C64, 1000), costs: costs, speedup: 8}
	pr.reset()
	if resp := pr.onFailure(anyFailure, 50); resp.restoreLevel != 0 || resp.restoreTo != 0 || resp.restartCost != costs.L2 {
		t.Errorf("PR scratch restart = level %d @ %v costing %v, want level 0 @ 0 costing T_L2",
			resp.restoreLevel, resp.restoreTo, resp.restartCost)
	}
	pr.onCheckpointDone(2, 40)
	if resp := pr.onFailure(anyFailure, 50); resp.restoreLevel != 2 || resp.restoreTo != 40 {
		t.Errorf("PR restore = level %d @ %v, want level 2 @ 40min", resp.restoreLevel, resp.restoreTo)
	}

	// Full redundancy on 4 virtual / 8 physical nodes: a rollback needs
	// both replicas of one virtual node down within a generation.
	red := &redundancy{
		application: testApp(workload.A32, 4),
		costs:       costs,
		degree:      2,
		phys:        8,
		replicated:  4,
		failedIn:    make([]uint64, 8),
		gen:         1,
	}
	red.reset()
	if resp := red.onFailure(failures.Failure{Node: 0}, 10); resp.rollback {
		t.Fatal("first replica hit should be absorbed")
	}
	if resp := red.onFailure(failures.Failure{Node: 4}, 10); !resp.rollback ||
		resp.restoreLevel != 0 || resp.restoreTo != 0 || resp.restartCost != costs.PFS {
		t.Errorf("redundancy scratch restart = %+v, want rollback to level 0 @ 0 costing T_PFS", resp)
	}
	red.onCheckpointDone(3, 30)
	red.onFailure(failures.Failure{Node: 1}, 40)
	if resp := red.onFailure(failures.Failure{Node: 5}, 40); resp.restoreLevel != 3 || resp.restoreTo != 30 {
		t.Errorf("redundancy restore = level %d @ %v, want level 3 @ 30min", resp.restoreLevel, resp.restoreTo)
	}
}

func TestMultilevelScratchRestartAccounting(t *testing.T) {
	costs := Costs{L1: 1 * units.Minute, L2: 3 * units.Minute, PFS: 10 * units.Minute}
	s := &multilevel{
		application: testApp(workload.C64, 1000),
		costs:       costs,
		schedule:    MultilevelSchedule{Interval: 30 * units.Minute, L1PerL2: 2, L2PerL3: 2},
	}
	s.reset()

	// No checkpoints at all: a node-loss failure restarts from scratch.
	resp := s.onFailure(failures.Failure{Severity: failures.SeverityNodeLoss}, 50)
	if !resp.rollback {
		t.Fatal("failure with no checkpoint must roll back")
	}
	if resp.restoreTo != 0 {
		t.Errorf("scratch restart restoreTo = %v, want 0", resp.restoreTo)
	}
	if resp.restoreLevel != 0 {
		t.Errorf("scratch restart restoreLevel = %d, want 0 (no checkpoint read)", resp.restoreLevel)
	}
	if resp.restartCost != costs.L2 {
		t.Errorf("scratch restart after severity-2 costs %v, want T_L2 = %v", resp.restartCost, costs.L2)
	}

	// A level-1 checkpoint does not survive a node loss: scratch again,
	// and the destroyed level must be invalidated.
	s.onCheckpointDone(1, 30)
	resp = s.onFailure(failures.Failure{Severity: failures.SeverityNodeLoss}, 45)
	if resp.restoreLevel != 0 || resp.restoreTo != 0 {
		t.Errorf("L1 checkpoint survived a node loss: level %d, progress %v", resp.restoreLevel, resp.restoreTo)
	}
	if s.has[1] {
		t.Error("node loss left the level-1 checkpoint marked alive")
	}

	// A level-2 checkpoint survives a node loss and is restored, at its
	// own cost and level.
	s.onCheckpointDone(2, 40)
	resp = s.onFailure(failures.Failure{Severity: failures.SeverityNodeLoss}, 55)
	if resp.restoreLevel != 2 || resp.restoreTo != 40 {
		t.Errorf("restore = level %d @ %v, want level 2 @ 40min", resp.restoreLevel, resp.restoreTo)
	}
	if resp.restartCost != costs.L2 {
		t.Errorf("level-2 restore costs %v, want %v", resp.restartCost, costs.L2)
	}

	// A newer level-1 checkpoint wins a transient failure.
	s.onCheckpointDone(1, 60)
	resp = s.onFailure(failures.Failure{Severity: failures.SeverityTransient}, 70)
	if resp.restoreLevel != 1 || resp.restoreTo != 60 {
		t.Errorf("restore = level %d @ %v, want level 1 @ 60min", resp.restoreLevel, resp.restoreTo)
	}

	// A catastrophic failure with only L1/L2 checkpoints: scratch at PFS
	// relaunch cost.
	resp = s.onFailure(failures.Failure{Severity: failures.SeverityCatastrophic}, 70)
	if resp.restoreLevel != 0 || resp.restoreTo != 0 {
		t.Errorf("catastrophe restored level %d @ %v, want scratch", resp.restoreLevel, resp.restoreTo)
	}
	if resp.restartCost != costs.PFS {
		t.Errorf("catastrophic relaunch costs %v, want T_PFS = %v", resp.restartCost, costs.PFS)
	}
	if s.has[1] || s.has[2] {
		t.Error("catastrophe left lower-level checkpoints alive")
	}
}

package resilience

import (
	"fmt"

	"exaresil/internal/failures"
	"exaresil/internal/units"
)

// TraceKind classifies execution trace events.
type TraceKind int

// The observable state transitions of a simulated execution; they mirror
// the event taxonomy of Section III-A.
const (
	// TraceStart: the application began executing.
	TraceStart TraceKind = iota
	// TraceCheckpointStart and TraceCheckpointEnd bracket a blocking
	// checkpoint (Level says which).
	TraceCheckpointStart
	TraceCheckpointEnd
	// TraceFailure: a failure struck the application (Severity says how
	// hard); Rollback reports whether it forced a restore.
	TraceFailure
	// TraceRestartEnd: a restore finished and computation resumed.
	TraceRestartEnd
	// TraceComplete: the application finished all of its work.
	TraceComplete
)

// String names the kind.
func (k TraceKind) String() string {
	switch k {
	case TraceStart:
		return "start"
	case TraceCheckpointStart:
		return "checkpoint-start"
	case TraceCheckpointEnd:
		return "checkpoint-end"
	case TraceFailure:
		return "failure"
	case TraceRestartEnd:
		return "restart-end"
	case TraceComplete:
		return "complete"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent is one observed state transition.
type TraceEvent struct {
	// Time is the simulation time of the transition.
	Time units.Duration
	// Kind classifies it.
	Kind TraceKind
	// Progress is the application's completed work at that moment.
	Progress units.Duration
	// Level is the checkpoint level for checkpoint and restart events.
	Level int
	// Severity is set for failure events.
	Severity failures.Severity
	// Rollback reports, for failure events, whether the failure forced a
	// restore (redundancy absorbs some failures).
	Rollback bool
}

// String renders the event for timelines.
func (e TraceEvent) String() string {
	switch e.Kind {
	case TraceCheckpointStart, TraceCheckpointEnd, TraceRestartEnd:
		return fmt.Sprintf("%-10s %-17s L%d progress=%s", e.Time, e.Kind, e.Level, e.Progress)
	case TraceFailure:
		verdict := "absorbed"
		if e.Rollback {
			verdict = "rollback"
		}
		return fmt.Sprintf("%-10s %-17s %s (%s) progress=%s", e.Time, e.Kind, e.Severity, verdict, e.Progress)
	default:
		return fmt.Sprintf("%-10s %-17s progress=%s", e.Time, e.Kind, e.Progress)
	}
}

// Observer receives trace events during a run.
type Observer func(TraceEvent)

// SetObserver attaches an execution observer to the executor; pass nil to
// detach. Observation is per-executor, so clone before observing if the
// executor is shared with a parallel study.
func (x *executor) SetObserver(obs Observer) { x.observer = obs }

// Observe attaches an observer to an executor if it supports observation,
// reporting whether it did. The Ideal executor has no events to observe.
func Observe(x Executor, obs Observer) bool {
	o, ok := x.(interface{ SetObserver(Observer) })
	if ok {
		o.SetObserver(obs)
	}
	return ok
}

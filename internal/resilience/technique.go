package resilience

import (
	"fmt"

	"exaresil/internal/core"
	"exaresil/internal/des"
	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/rng"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// Config tunes the technique parameters that the paper inherits from the
// works each technique is modeled on.
type Config struct {
	// RecoverySpeedup is phi, the factor by which Parallel Recovery
	// accelerates the recomputation of a failed node's lost work by
	// spreading it across helper nodes. Meneses et al. observe recovery
	// speedups around the object-virtualization ratio; 8 is a
	// representative value (DESIGN.md §5).
	RecoverySpeedup float64
	// Multilevel bounds the multilevel schedule optimizer's search.
	Multilevel MultilevelConfig
	// PeriodScale multiplies every technique's checkpoint interval,
	// for sensitivity studies around the Daly/optimized operating point;
	// 1 (or 0, treated as 1) is the paper's behaviour.
	PeriodScale float64
	// CheckpointComputeRate is the fraction of normal compute progress an
	// application sustains while a checkpoint is being written. The paper
	// models blocking checkpoints (0, the default); positive values model
	// the semi-blocking schemes of its related work (Coti et al., Ni et
	// al.): the checkpoint still takes its full cost in wall time, but
	// computation overlaps it at this reduced rate. Must be < 1.
	CheckpointComputeRate float64
	// ReStoreDegree is k, the number of in-memory replicas each
	// In-Memory Replicated Checkpoint keeps on peer nodes (ReStore,
	// arXiv:2203.01107). Zero means the default of 2; negative degrees
	// (an effective degree below 1) are rejected.
	ReStoreDegree int
	// TeamSyncPenalty is s, the steady-state synchronization overhead of
	// Lightweight Replication (TeaMPI, arXiv:2005.12091): the lagging
	// team's heartbeat and sync traffic stretches the per-step
	// communication term by (1 + s). Must be in [0, 1); at s >= 1 the
	// scheme would cost more than full redundancy's lockstep duplication,
	// outside the model's validity.
	TeamSyncPenalty float64
}

// DefaultConfig returns the parameter values used throughout the paper's
// studies.
func DefaultConfig() Config {
	return Config{
		RecoverySpeedup: 8,
		Multilevel:      DefaultMultilevelConfig(),
		PeriodScale:     1,
		ReStoreDegree:   2,
		TeamSyncPenalty: 0.05,
	}
}

// ReStoreReplicas resolves the in-memory replica degree, treating the zero
// value as the default of 2 (mirroring periodScale's zero handling).
func (c Config) ReStoreReplicas() int {
	if c.ReStoreDegree == 0 {
		return 2
	}
	return c.ReStoreDegree
}

// periodScale resolves the interval multiplier, treating the zero value
// as the paper default of 1.
func (c Config) periodScale() float64 {
	if c.PeriodScale == 0 {
		return 1
	}
	return c.PeriodScale
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.RecoverySpeedup < 1 {
		return fmt.Errorf("resilience: recovery speedup %v must be >= 1", c.RecoverySpeedup)
	}
	if c.PeriodScale < 0 {
		return fmt.Errorf("resilience: period scale %v must be positive", c.PeriodScale)
	}
	if c.CheckpointComputeRate < 0 || c.CheckpointComputeRate >= 1 {
		return fmt.Errorf("resilience: checkpoint compute rate %v outside [0, 1)", c.CheckpointComputeRate)
	}
	if c.ReStoreDegree < 0 {
		return fmt.Errorf("resilience: ReStore replica degree %d must be >= 1 (0 selects the default of 2)", c.ReStoreDegree)
	}
	if c.TeamSyncPenalty < 0 || c.TeamSyncPenalty >= 1 {
		return fmt.Errorf("resilience: team sync penalty %v outside [0, 1)", c.TeamSyncPenalty)
	}
	return c.Multilevel.Validate()
}

// executor adapts a strategy to the Executor interface, holding the pieces
// shared by all techniques: the failure model, the occupied node count, and
// the viability verdict computed at construction.
type executor struct {
	strat    strategy
	model    *failures.Model
	phys     int
	viable   bool
	reason   string
	ckptRate float64
	observer Observer
	metrics  *Metrics

	// sim is the executor's private discrete-event simulator, created on
	// first Run and reused (with its warm event pool) across sequential
	// runs. Executors are single-goroutine by contract, and Clone gives
	// each parallel worker its own executor — and thus its own simulator.
	sim *des.Simulator

	// eng is the executor's reusable execution engine: its bound event
	// callbacks and failure-process storage persist across sequential
	// runs (Clone deliberately leaves it zero — the callbacks capture the
	// original's engine address).
	eng engine

	// rt, when non-nil, overrides sim and eng with machinery shared among
	// several executors (see Runtime): the cluster layer builds one
	// executor per application and runs them strictly sequentially, so
	// one engine and one simulator can serve the whole run.
	rt *Runtime
}

// Runtime bundles the execution machinery — a pooled simulator and a
// reusable engine — that a group of strictly sequential executors can
// share. Building one executor per application was dominated not by the
// strategy math but by this machinery (bound callbacks, event pool,
// failure-process storage); sharing it makes executor construction cheap.
// A Runtime is single-goroutine like the executors themselves: never share
// one across concurrent workers.
type Runtime struct {
	sim *des.Simulator
	eng engine
}

// NewRuntime creates a shared runtime, attaching m's engine-simulator
// series (nil m leaves the simulator uninstrumented).
func NewRuntime(m *Metrics) *Runtime {
	rt := &Runtime{sim: des.NewPooled()}
	rt.sim.SetMetrics(m.desMetrics())
	return rt
}

// AttachRuntime points the executor at shared machinery, reporting whether
// the executor supports it (the Ideal executor does not — it never
// simulates). Attach before the first Run; the executor then schedules all
// its runs on the runtime's simulator and engine.
func AttachRuntime(x Executor, rt *Runtime) bool {
	e, ok := x.(*executor)
	if ok {
		e.rt = rt
	}
	return ok
}

// Technique implements Executor.
func (x *executor) Technique() core.Technique { return x.strat.technique() }

// App implements Executor.
func (x *executor) App() workload.App { return x.strat.app() }

// PhysicalNodes implements Executor.
func (x *executor) PhysicalNodes() int { return x.phys }

// Viable implements Executor.
func (x *executor) Viable() (bool, string) { return x.viable, x.reason }

// Clone implements Executor.
func (x *executor) Clone() Executor {
	return &executor{
		strat:    x.strat.clone(),
		model:    x.model,
		phys:     x.phys,
		viable:   x.viable,
		reason:   x.reason,
		ckptRate: x.ckptRate,
		// Metrics are shared, not copied: the series are atomic, so every
		// clone of a parallel study aggregates into the same bundle.
		metrics: x.metrics,
	}
}

// Run implements Executor.
func (x *executor) Run(start, horizon units.Duration, src *rng.Source) Result {
	if !x.viable {
		return Result{
			Technique:     x.strat.technique(),
			Blocked:       x.reason,
			Start:         start,
			End:           start,
			Baseline:      x.strat.app().Baseline(),
			EffectiveWork: x.strat.effectiveWork(),
		}
	}
	if x.rt != nil {
		return x.rt.eng.run(x.strat, x.model, start, horizon, src, x.ckptRate, x.observer, x.rt.sim,
			x.metrics.forTechnique(x.strat.technique()))
	}
	if x.sim == nil {
		x.sim = des.NewPooled()
		x.sim.SetMetrics(x.metrics.desMetrics())
	}
	return x.eng.run(x.strat, x.model, start, horizon, src, x.ckptRate, x.observer, x.sim,
		x.metrics.forTechnique(x.strat.technique()))
}

// New constructs the executor for technique t running app on the machine
// cfg under the failure model. It returns an error only for malformed
// inputs; a technique that is well-formed but cannot execute the
// application (e.g. redundancy needing more nodes than the machine has)
// yields a non-viable executor whose runs report Blocked.
func New(t core.Technique, app workload.App, cfg machine.Config, model *failures.Model, opts Config) (Executor, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if model == nil {
		return nil, fmt.Errorf("resilience: nil failure model")
	}
	if app.Nodes > cfg.Nodes {
		return nil, fmt.Errorf("resilience: app needs %d nodes but machine %q has %d",
			app.Nodes, cfg.Name, cfg.Nodes)
	}

	costs := ComputeCosts(app, cfg)
	scale := opts.periodScale()
	withRate := func(x Executor) Executor {
		if e, ok := x.(*executor); ok {
			e.ckptRate = opts.CheckpointComputeRate
		}
		return x
	}
	switch t {
	case core.Ideal:
		return NewIdeal(app), nil
	case core.CheckpointRestart:
		return withRate(newCheckpointRestart(app, costs, model, scale)), nil
	case core.MultilevelCheckpoint:
		return withRate(newMultilevel(app, costs, model, opts.Multilevel, scale)), nil
	case core.ParallelRecovery:
		return withRate(newParallelRecovery(app, costs, model, opts.RecoverySpeedup, scale)), nil
	case core.PartialRedundancy:
		return withRate(newRedundancy(app, costs, model, 1.5, cfg.Nodes, scale)), nil
	case core.FullRedundancy:
		return withRate(newRedundancy(app, costs, model, 2.0, cfg.Nodes, scale)), nil
	case core.InMemoryReplicatedCheckpoint:
		return withRate(newReStore(app, costs, model, opts.ReStoreReplicas(), scale)), nil
	case core.LightweightReplication:
		return withRate(newTeamReplication(app, costs, model, opts.TeamSyncPenalty, cfg.Nodes)), nil
	default:
		return nil, fmt.Errorf("resilience: no executor for technique %v", t)
	}
}

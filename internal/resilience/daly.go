package resilience

import (
	"math"

	"exaresil/internal/units"
)

// DalyPeriod is Eq. 4 of the paper, Daly's first-order estimate of the
// optimum checkpoint period for an application with checkpoint cost
// checkpoint and failure rate rate:
//
//	tau = sqrt(2 * T_c / lambda_a) - T_c.
//
// The returned ok is false when the estimate is non-positive, i.e. the
// failure rate is so high relative to the checkpoint cost that the
// application spends all of its time checkpointing and restarting and can
// make no forward progress. Section V observes exactly this regime for
// traditional Checkpoint Restart at exascale sizes with a 2.5-year
// component MTBF.
func DalyPeriod(checkpoint units.Duration, rate units.Rate) (tau units.Duration, ok bool) {
	if checkpoint <= 0 {
		// Free checkpoints have no optimum; callers treat this as a
		// configuration error.
		return 0, false
	}
	if rate <= 0 {
		// No failures: checkpointing is pure overhead, so the optimal
		// period is unbounded. Callers interpret ok && tau == +Inf as
		// "never checkpoint".
		return units.Duration(math.Inf(1)), true
	}
	tau = units.Duration(math.Sqrt(2*float64(checkpoint)/float64(rate))) - checkpoint
	if tau <= 0 {
		return 0, false
	}
	return tau, true
}

// YoungPeriod is Young's earlier first-order approximation,
// sqrt(2 * T_c / lambda_a), retained for comparison in the interval
// explorer tool. It never reports failure for positive inputs.
func YoungPeriod(checkpoint units.Duration, rate units.Rate) units.Duration {
	if checkpoint <= 0 || rate <= 0 {
		return units.Duration(math.Inf(1))
	}
	return units.Duration(math.Sqrt(2 * float64(checkpoint) / float64(rate)))
}

package resilience

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"exaresil/internal/units"
)

// MultilevelSchedule is a repeating three-level checkpoint pattern:
// checkpoints are triggered every Interval of work; every L1PerL2-th
// checkpoint is promoted from level 1 to level 2, and every
// (L1PerL2*L2PerL3)-th to level 3.
type MultilevelSchedule struct {
	// Interval is the work between consecutive checkpoints.
	Interval units.Duration
	// L1PerL2 is n1, the pattern length between level-2 checkpoints.
	L1PerL2 int
	// L2PerL3 is n2, the number of level-2 periods per level-3
	// checkpoint.
	L2PerL3 int
}

// LevelAt reports the level of the k-th checkpoint (1-based) under the
// pattern.
func (m MultilevelSchedule) LevelAt(k int) int {
	period := m.L1PerL2 * m.L2PerL3
	switch {
	case period > 0 && k%period == 0:
		return 3
	case m.L1PerL2 > 0 && k%m.L1PerL2 == 0:
		return 2
	default:
		return 1
	}
}

// String renders the schedule.
func (m MultilevelSchedule) String() string {
	return fmt.Sprintf("every %s; L2 every %d, L3 every %d checkpoints",
		m.Interval, m.L1PerL2, m.L1PerL2*m.L2PerL3)
}

// MultilevelConfig bounds the schedule optimizer's search.
type MultilevelConfig struct {
	// MaxL1PerL2 and MaxL2PerL3 cap the pattern counts n1 and n2.
	MaxL1PerL2, MaxL2PerL3 int
	// IntervalSteps is the resolution of the base-interval grid.
	IntervalSteps int
	// UseExact refines the first-order grid winner with the exact
	// Markov-chain evaluation (OptimizeMultilevelExact).
	UseExact bool
	// DisableCache bypasses the schedule memoization cache, forcing every
	// optimizer call to re-run the full search. The cluster studies
	// construct an executor per mapped job, so caching is on by default;
	// disable it only to measure the raw search or to bound memory in
	// long-lived services sweeping unbounded parameter spaces.
	DisableCache bool
}

// DefaultMultilevelConfig returns search bounds ample for every
// configuration in the paper's studies.
func DefaultMultilevelConfig() MultilevelConfig {
	return MultilevelConfig{MaxL1PerL2: 24, MaxL2PerL3: 24, IntervalSteps: 33}
}

// Validate reports whether the bounds are usable.
func (c MultilevelConfig) Validate() error {
	if c.MaxL1PerL2 < 1 || c.MaxL2PerL3 < 1 {
		return fmt.Errorf("resilience: multilevel pattern caps must be >= 1 (got %d, %d)",
			c.MaxL1PerL2, c.MaxL2PerL3)
	}
	if c.IntervalSteps < 2 {
		return fmt.Errorf("resilience: interval grid needs >= 2 steps (got %d)", c.IntervalSteps)
	}
	return nil
}

// ExpectedStretch evaluates the renewal-model objective the optimizer
// minimizes: the expected wall time per unit of useful work under the
// schedule, given per-level checkpoint costs and per-severity failure
// rates. It returns +Inf for infeasible schedules (failure cost consumes
// all progress).
//
// The model follows the structure of Moody et al.'s Markov formulation to
// first order: each work interval tau pays the pattern-averaged checkpoint
// cost; a severity-j failure costs its restore time plus the recomputation
// of (on average) half the spacing between level->=j checkpoints, with the
// recomputed work itself paying checkpoint overhead again.
func (m MultilevelSchedule) ExpectedStretch(costs Costs, rates [3]units.Rate) float64 {
	tau := float64(m.Interval)
	if tau <= 0 || m.L1PerL2 < 1 || m.L2PerL3 < 1 {
		return math.Inf(1)
	}
	n1, n2 := float64(m.L1PerL2), float64(m.L2PerL3)
	period := n1 * n2

	c1, c2, c3 := float64(costs.L1), float64(costs.L2), float64(costs.PFS)
	// Per pattern period of n1*n2 checkpoints: one is level 3, (n2-1) are
	// level 2, the rest level 1.
	avgCost := ((period-n2)*c1 + (n2-1)*c2 + c3) / period
	overhead := 1 + avgCost/tau // wall time per unit work, failure-free

	// Expected cost per failure of severity j: restore from level j (the
	// typical surviving level) plus re-executing half the level->=j
	// checkpoint spacing at the failure-free overhead rate.
	spacing := [3]float64{tau, n1 * tau, period * tau}
	restore := [3]float64{c1, c2, c3}
	lossRate := 0.0 // fraction of wall time consumed by failure handling
	for j := 0; j < 3; j++ {
		perFailure := restore[j] + (spacing[j]/2)*overhead
		lossRate += float64(rates[j]) * perFailure
	}
	if lossRate >= 1 {
		return math.Inf(1)
	}
	return overhead / (1 - lossRate)
}

// optCacheKey memoizes optimizer calls on the full parameter tuple:
// cluster studies construct an executor per mapped job, so thousands of
// constructions share the same (costs, rates, bounds) optimization.
type optCacheKey struct {
	costs  Costs
	rates  [3]units.Rate
	bounds MultilevelConfig
}

type optCacheEntry struct {
	sched MultilevelSchedule
	err   error
}

// optCache is the process-wide schedule memoization table. Entries are
// immutable once stored, and both racing writers compute identical values
// from the same key, so sync.Map's last-writer-wins is harmless. The
// companion counters make the cache observable: a study that should be
// hitting but isn't shows up immediately in ScheduleCacheStats.
var (
	optCache       sync.Map // optCacheKey -> optCacheEntry
	optCacheHits   atomic.Uint64
	optCacheMisses atomic.Uint64
)

// cacheKey canonicalizes the bounds so toggling the cache knob itself
// never splits otherwise-identical entries.
func cacheKey(costs Costs, rates [3]units.Rate, bounds MultilevelConfig) optCacheKey {
	bounds.DisableCache = false
	return optCacheKey{costs: costs, rates: rates, bounds: bounds}
}

// ScheduleCacheStats reports how many optimizer calls were served from the
// memoization cache versus computed. Counters are cumulative across the
// process; FlushScheduleCache resets them.
func ScheduleCacheStats() (hits, misses uint64) {
	return optCacheHits.Load(), optCacheMisses.Load()
}

// FlushScheduleCache empties the schedule memoization cache and zeroes its
// hit/miss counters. Benchmarks use it to measure cold-start cost; tests
// use it to isolate cache behaviour.
func FlushScheduleCache() {
	optCache.Clear()
	optCacheHits.Store(0)
	optCacheMisses.Store(0)
}

// OptimizeMultilevel searches for the schedule minimizing ExpectedStretch.
// The base interval is scanned on a logarithmic grid spanning two orders
// of magnitude around the Daly period for the cheapest level and the total
// failure rate; pattern counts are scanned exhaustively within the bounds.
// It returns an error when no schedule in the search space is feasible.
//
// Results are memoized on the full (costs, rates, bounds) tuple unless
// bounds.DisableCache is set; cached and uncached calls return identical
// schedules because the search is deterministic.
func OptimizeMultilevel(costs Costs, rates [3]units.Rate, bounds MultilevelConfig) (MultilevelSchedule, error) {
	if err := bounds.Validate(); err != nil {
		return MultilevelSchedule{}, err
	}
	if bounds.DisableCache {
		return optimizeMultilevel(costs, rates, bounds)
	}
	key := cacheKey(costs, rates, bounds)
	if v, ok := optCache.Load(key); ok {
		optCacheHits.Add(1)
		e := v.(optCacheEntry)
		return e.sched, e.err
	}
	optCacheMisses.Add(1)
	sched, err := optimizeMultilevel(costs, rates, bounds)
	optCache.Store(key, optCacheEntry{sched, err})
	return sched, err
}

func optimizeMultilevel(costs Costs, rates [3]units.Rate, bounds MultilevelConfig) (MultilevelSchedule, error) {
	total := units.Rate(0)
	for _, r := range rates {
		total += r
	}
	if total <= 0 {
		// No failures: checkpoint (essentially) never. One gigantic
		// interval keeps the engine honest without measurable overhead.
		return MultilevelSchedule{
			Interval: units.Duration(math.Inf(1)),
			L1PerL2:  1,
			L2PerL3:  1,
		}, nil
	}

	// Center the interval grid on the Daly period for level-1 cost
	// against the total failure rate; that is where the optimum lands
	// when level-1 failures dominate, and the grid spans far enough to
	// cover the other regimes.
	center := float64(YoungPeriod(costs.L1, total))
	lo, hi := center/16, center*16
	if lo <= 0 || math.IsInf(hi, 1) || math.IsNaN(hi) {
		return MultilevelSchedule{}, fmt.Errorf("degenerate interval search range [%v, %v]", lo, hi)
	}

	best := MultilevelSchedule{}
	bestVal := math.Inf(1)
	steps := bounds.IntervalSteps
	for i := 0; i < steps; i++ {
		tau := lo * math.Pow(hi/lo, float64(i)/float64(steps-1))
		for n1 := 1; n1 <= bounds.MaxL1PerL2; n1++ {
			for n2 := 1; n2 <= bounds.MaxL2PerL3; n2++ {
				cand := MultilevelSchedule{
					Interval: units.Duration(tau),
					L1PerL2:  n1,
					L2PerL3:  n2,
				}
				if v := cand.ExpectedStretch(costs, rates); v < bestVal {
					bestVal = v
					best = cand
				}
			}
		}
	}
	if math.IsInf(bestVal, 1) {
		return MultilevelSchedule{}, fmt.Errorf(
			"every schedule in the search space loses work faster than it computes (rates %v)", rates)
	}
	return best, nil
}

package resilience

import (
	"math"
	"testing"

	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

func exaRates(nodes int, mtbf units.Duration) [3]units.Rate {
	model := failures.MustModel(mtbf, failures.DefaultSeverityPMF())
	return levelRates(model, nodes)
}

func TestLevelAtPattern(t *testing.T) {
	m := MultilevelSchedule{Interval: 1, L1PerL2: 3, L2PerL3: 2}
	// Pattern period 6: positions 3 -> L2, 6 -> L3, others L1.
	want := map[int]int{1: 1, 2: 1, 3: 2, 4: 1, 5: 1, 6: 3, 7: 1, 9: 2, 12: 3}
	for k, lvl := range want {
		if got := m.LevelAt(k); got != lvl {
			t.Errorf("LevelAt(%d) = %d, want %d", k, got, lvl)
		}
	}
}

func TestLevelAtDegeneratePattern(t *testing.T) {
	// n1 = n2 = 1: every checkpoint is level 3.
	m := MultilevelSchedule{Interval: 1, L1PerL2: 1, L2PerL3: 1}
	for k := 1; k <= 5; k++ {
		if got := m.LevelAt(k); got != 3 {
			t.Errorf("all-L3 pattern: LevelAt(%d) = %d", k, got)
		}
	}
}

func TestOptimizeProducesValidSchedule(t *testing.T) {
	cfg := machine.Exascale()
	costs := ComputeCosts(testApp(workload.C64, 30000), cfg)
	sched, err := OptimizeMultilevel(costs, exaRates(30000, cfg.MTBF), DefaultMultilevelConfig())
	if err != nil {
		t.Fatalf("optimizer failed: %v", err)
	}
	if sched.Interval <= 0 || math.IsInf(float64(sched.Interval), 1) {
		t.Errorf("interval %v not positive finite", sched.Interval)
	}
	if sched.L1PerL2 < 1 || sched.L2PerL3 < 1 {
		t.Errorf("pattern counts %d, %d invalid", sched.L1PerL2, sched.L2PerL3)
	}
	// The schedule must be cheaper (in expectation) than single-level
	// all-PFS checkpointing at the same interval resolution: multilevel's
	// whole point.
	allPFS := MultilevelSchedule{
		Interval: units.Duration(YoungPeriod(costs.PFS, exaRates(30000, cfg.MTBF)[0]*2)),
		L1PerL2:  1, L2PerL3: 1,
	}
	if sched.ExpectedStretch(costs, exaRates(30000, cfg.MTBF)) >
		allPFS.ExpectedStretch(costs, exaRates(30000, cfg.MTBF)) {
		t.Error("optimized multilevel schedule is worse than all-PFS checkpointing")
	}
}

func TestOptimizeL3SpacingRespondsToCost(t *testing.T) {
	rates := exaRates(30000, 10*units.Year)
	cheap := Costs{L1: units.Duration(0.003), L2: units.Duration(0.013), PFS: 2 * units.Minute}
	dear := Costs{L1: units.Duration(0.003), L2: units.Duration(0.013), PFS: 40 * units.Minute}
	s1, err := OptimizeMultilevel(cheap, rates, DefaultMultilevelConfig())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := OptimizeMultilevel(dear, rates, DefaultMultilevelConfig())
	if err != nil {
		t.Fatal(err)
	}
	spacing := func(s MultilevelSchedule) float64 {
		return float64(s.Interval) * float64(s.L1PerL2*s.L2PerL3)
	}
	if spacing(s2) <= spacing(s1) {
		t.Errorf("L3 spacing should grow with PFS cost: %v (PFS=2min) vs %v (PFS=40min)",
			spacing(s1), spacing(s2))
	}
}

func TestOptimizeZeroRates(t *testing.T) {
	costs := Costs{L1: 1, L2: 2, PFS: 3}
	sched, err := OptimizeMultilevel(costs, [3]units.Rate{}, DefaultMultilevelConfig())
	if err != nil {
		t.Fatalf("zero-rate optimization failed: %v", err)
	}
	if !math.IsInf(float64(sched.Interval), 1) {
		t.Errorf("no failures should disable checkpointing, got interval %v", sched.Interval)
	}
}

func TestOptimizeInfeasible(t *testing.T) {
	// Failure every minute with half-hour restores: nothing helps.
	costs := Costs{L1: 30 * units.Minute, L2: 40 * units.Minute, PFS: 60 * units.Minute}
	rates := [3]units.Rate{0.5, 0.3, 0.2}
	if _, err := OptimizeMultilevel(costs, rates, DefaultMultilevelConfig()); err == nil {
		t.Error("expected infeasibility error")
	}
}

func TestOptimizeCacheConsistency(t *testing.T) {
	cfg := machine.Exascale()
	costs := ComputeCosts(testApp(workload.A32, 1200), cfg)
	rates := exaRates(1200, cfg.MTBF)
	a, err1 := OptimizeMultilevel(costs, rates, DefaultMultilevelConfig())
	b, err2 := OptimizeMultilevel(costs, rates, DefaultMultilevelConfig())
	if err1 != nil || err2 != nil {
		t.Fatalf("optimizer errors: %v, %v", err1, err2)
	}
	if a != b {
		t.Errorf("cached result differs: %v vs %v", a, b)
	}
}

// TestOptimizeCachedMatchesUncached asserts the memoization layer is
// semantically invisible: for the same parameter tuple, a cache hit, a
// cache miss, and a DisableCache call all return the identical schedule.
func TestOptimizeCachedMatchesUncached(t *testing.T) {
	cfg := machine.Exascale()
	bounds := DefaultMultilevelConfig()
	uncached := bounds
	uncached.DisableCache = true
	for _, nodes := range []int{1200, 30000, 120000} {
		costs := ComputeCosts(testApp(workload.D64, nodes), cfg)
		rates := exaRates(nodes, cfg.MTBF)
		miss, err1 := OptimizeMultilevel(costs, rates, bounds)
		hit, err2 := OptimizeMultilevel(costs, rates, bounds)
		raw, err3 := OptimizeMultilevel(costs, rates, uncached)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("nodes=%d: optimizer errors: %v, %v, %v", nodes, err1, err2, err3)
		}
		if miss != hit || hit != raw {
			t.Errorf("nodes=%d: schedules diverge: miss=%v hit=%v uncached=%v", nodes, miss, hit, raw)
		}
	}
}

// TestExactCachedMatchesUncached is the same invariant for the exact
// Markov refinement path.
func TestExactCachedMatchesUncached(t *testing.T) {
	cfg := machine.Exascale()
	bounds := DefaultMultilevelConfig()
	bounds.UseExact = true
	uncached := bounds
	uncached.DisableCache = true
	costs := ComputeCosts(testApp(workload.C64, 30000), cfg)
	rates := exaRates(30000, cfg.MTBF)
	cached, err1 := OptimizeMultilevelExact(costs, rates, bounds)
	again, err2 := OptimizeMultilevelExact(costs, rates, bounds)
	raw, err3 := OptimizeMultilevelExact(costs, rates, uncached)
	if err1 != nil || err2 != nil || err3 != nil {
		t.Fatalf("optimizer errors: %v, %v, %v", err1, err2, err3)
	}
	if cached != again || again != raw {
		t.Errorf("exact schedules diverge: %v / %v / %v", cached, again, raw)
	}
}

// TestScheduleCacheCounters asserts hits and misses are observable and
// that DisableCache leaves the counters untouched.
func TestScheduleCacheCounters(t *testing.T) {
	FlushScheduleCache()
	defer FlushScheduleCache()
	cfg := machine.Exascale()
	costs := ComputeCosts(testApp(workload.B32, 6000), cfg)
	rates := exaRates(6000, cfg.MTBF)
	bounds := DefaultMultilevelConfig()

	if _, err := OptimizeMultilevel(costs, rates, bounds); err != nil {
		t.Fatal(err)
	}
	if hits, misses := ScheduleCacheStats(); hits != 0 || misses != 1 {
		t.Errorf("after cold call: hits=%d misses=%d, want 0/1", hits, misses)
	}
	if _, err := OptimizeMultilevel(costs, rates, bounds); err != nil {
		t.Fatal(err)
	}
	if hits, misses := ScheduleCacheStats(); hits != 1 || misses != 1 {
		t.Errorf("after warm call: hits=%d misses=%d, want 1/1", hits, misses)
	}

	off := bounds
	off.DisableCache = true
	if _, err := OptimizeMultilevel(costs, rates, off); err != nil {
		t.Fatal(err)
	}
	if hits, misses := ScheduleCacheStats(); hits != 1 || misses != 1 {
		t.Errorf("DisableCache call moved the counters: hits=%d misses=%d", hits, misses)
	}
}

func TestExpectedStretchProperties(t *testing.T) {
	costs := Costs{L1: units.Duration(0.0033), L2: units.Duration(0.0133), PFS: 17 * units.Minute}
	rates := exaRates(30000, 10*units.Year)
	base := MultilevelSchedule{Interval: 1 * units.Minute, L1PerL2: 8, L2PerL3: 8}
	v := base.ExpectedStretch(costs, rates)
	if v <= 1 {
		t.Errorf("stretch %v must exceed 1 (overheads exist)", v)
	}
	// Higher failure rates must never decrease the stretch.
	double := [3]units.Rate{rates[0] * 2, rates[1] * 2, rates[2] * 2}
	if base.ExpectedStretch(costs, double) < v {
		t.Error("stretch decreased when failure rates doubled")
	}
	// Degenerate schedules are infeasible.
	if !math.IsInf(MultilevelSchedule{Interval: 0, L1PerL2: 1, L2PerL3: 1}.ExpectedStretch(costs, rates), 1) {
		t.Error("zero interval should be infeasible")
	}
	if !math.IsInf(MultilevelSchedule{Interval: 1, L1PerL2: 0, L2PerL3: 1}.ExpectedStretch(costs, rates), 1) {
		t.Error("zero pattern count should be infeasible")
	}
}

func TestMultilevelConfigValidate(t *testing.T) {
	bad := []MultilevelConfig{
		{MaxL1PerL2: 0, MaxL2PerL3: 5, IntervalSteps: 10},
		{MaxL1PerL2: 5, MaxL2PerL3: 0, IntervalSteps: 10},
		{MaxL1PerL2: 5, MaxL2PerL3: 5, IntervalSteps: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := DefaultMultilevelConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

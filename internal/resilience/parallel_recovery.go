package resilience

import (
	"fmt"

	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// parallelRecovery implements the message-logging technique of Section
// IV-D, after Meneses et al.: in-memory (partner-node) checkpoints replace
// the parallel file system entirely, message logging inflates execution by
// mu = 1 + T_C/10, and the work lost to a failure is recomputed phi times
// faster by parallelizing the failed node's replay across helper nodes.
type parallelRecovery struct {
	application workload.App
	costs       Costs
	speedup     float64
	tau         units.Duration
	saved       units.Duration
	has         bool
}

// newParallelRecovery builds the Parallel Recovery executor.
func newParallelRecovery(app workload.App, costs Costs, model *failures.Model, speedup, periodScale float64) Executor {
	s := &parallelRecovery{application: app, costs: costs, speedup: speedup}
	x := &executor{strat: s, model: model, phys: app.Nodes, viable: true}
	tau, ok := DalyPeriod(costs.L2, model.Rate(app.Nodes))
	if !ok {
		x.viable = false
		x.reason = fmt.Sprintf("optimal in-memory checkpoint period is non-positive (T_L2=%s, rate=%s)",
			costs.L2, model.Rate(app.Nodes))
	}
	s.tau = tau * units.Duration(periodScale)
	return x
}

func (s *parallelRecovery) technique() core.Technique { return core.ParallelRecovery }
func (s *parallelRecovery) app() workload.App         { return s.application }
func (s *parallelRecovery) physicalNodes() int        { return s.application.Nodes }

// effectiveWork is Eq. 7: message logging stretches every time step by mu.
func (s *parallelRecovery) effectiveWork() units.Duration {
	return MessageLoggingBaseline(s.application)
}

func (s *parallelRecovery) checkpointInterval() units.Duration { return s.tau }

// nextCheckpoint: checkpoints go to partner-node memory (Eq. 6), reported
// as level 2.
func (s *parallelRecovery) nextCheckpoint() (int, units.Duration) { return 2, s.costs.L2 }

func (s *parallelRecovery) onCheckpointDone(_ int, progress units.Duration) {
	s.saved = progress
	s.has = true
}

// onFailure: restore from the in-memory checkpoint. The restart reads the
// partner copy, costing another T_L2. Before the first checkpoint commits
// the restart reads nothing and traces as a from-scratch relaunch (level
// 0) at the same cost.
func (s *parallelRecovery) onFailure(failures.Failure, units.Duration) response {
	level := 0
	if s.has {
		level = 2
	}
	return response{
		rollback:     true,
		restoreTo:    s.saved,
		restoreLevel: level,
		restartCost:  s.costs.L2,
	}
}

// recoverySpeed: lost work replays phi times faster than it was first
// computed because the failed node's objects are spread across helpers.
func (s *parallelRecovery) recoverySpeed() float64 { return s.speedup }

func (s *parallelRecovery) reset() { s.saved, s.has = 0, false }

func (s *parallelRecovery) clone() strategy {
	dup := *s
	return &dup
}

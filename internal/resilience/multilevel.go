package resilience

import (
	"fmt"

	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// multilevel implements the three-level checkpointing scheme of Section
// IV-C, after Moody et al. Checkpoints are taken every tau of work in a
// repeating pattern: most go to local RAM (level 1), every n1-th instead
// goes to a partner node (level 2), and every (n1*n2)-th to the parallel
// file system (level 3). A failure of severity j is recovered from the
// newest surviving checkpoint of level >= j.
type multilevel struct {
	application workload.App
	costs       Costs
	schedule    MultilevelSchedule

	counter int               // completed-checkpoint counter driving the pattern
	saved   [4]units.Duration // newest checkpointed progress per level (1-3)
	has     [4]bool           // whether a checkpoint exists at each level
}

// newMultilevel builds the Multilevel Checkpoint executor, optimizing the
// checkpoint schedule for the application's failure rates.
func newMultilevel(app workload.App, costs Costs, model *failures.Model, opts MultilevelConfig, periodScale float64) Executor {
	s := &multilevel{application: app, costs: costs}
	x := &executor{strat: s, model: model, phys: app.Nodes, viable: true}
	optimize := OptimizeMultilevel
	if opts.UseExact {
		optimize = OptimizeMultilevelExact
	}
	sched, err := optimize(costs, levelRates(model, app.Nodes), opts)
	if err != nil {
		x.viable = false
		x.reason = fmt.Sprintf("no feasible multilevel schedule: %v", err)
	}
	sched.Interval *= units.Duration(periodScale)
	s.schedule = sched
	return x
}

// levelRates reports the per-severity failure rates (lambda_Lj of Section
// III-E) for an application population of the given size.
func levelRates(model *failures.Model, nodes int) [3]units.Rate {
	pmf := model.PMF()
	total := 0.0
	for _, w := range pmf {
		total += w
	}
	full := float64(model.Rate(nodes))
	var rates [3]units.Rate
	for i, w := range pmf {
		rates[i] = units.Rate(full * w / total)
	}
	return rates
}

func (s *multilevel) technique() core.Technique { return core.MultilevelCheckpoint }
func (s *multilevel) app() workload.App         { return s.application }
func (s *multilevel) physicalNodes() int        { return s.application.Nodes }

// effectiveWork: like plain checkpointing, no intrinsic slowdown.
func (s *multilevel) effectiveWork() units.Duration { return s.application.Baseline() }

func (s *multilevel) checkpointInterval() units.Duration { return s.schedule.Interval }

// nextCheckpoint advances the repeating level pattern. The counter is
// never reset by rollbacks: the schedule marches on as in SCR.
func (s *multilevel) nextCheckpoint() (int, units.Duration) {
	s.counter++
	level := s.schedule.LevelAt(s.counter)
	return level, s.costs.CostForLevel(level)
}

func (s *multilevel) onCheckpointDone(level int, progress units.Duration) {
	s.saved[level] = progress
	s.has[level] = true
}

// onFailure restores from the newest checkpoint whose level can survive
// the failure's severity; ties between equally fresh levels break toward
// the cheaper restore. A severity-j failure destroys the storage backing
// every level below j (a node-loss failure takes the local-RAM checkpoint
// slice with it, and a distributed checkpoint missing one node's slice is
// useless), so those levels are invalidated outright. Every surviving
// level then necessarily holds progress at or below the restore point.
func (s *multilevel) onFailure(f failures.Failure, _ units.Duration) response {
	minLevel := int(f.Severity)
	for level := 1; level < minLevel && level <= 3; level++ {
		s.has[level] = false
		s.saved[level] = 0
	}

	best := 0 // level 0 = no surviving checkpoint, restart from scratch
	var bestProgress units.Duration
	for level := minLevel; level <= 3; level++ {
		if s.has[level] && (best == 0 || s.saved[level] > bestProgress) {
			best = level
			bestProgress = s.saved[level]
		}
	}

	resp := response{rollback: true, restoreTo: bestProgress, restoreLevel: best}
	if best == 0 {
		// Restart from the beginning. The relaunch still pays the failing
		// level's (symmetric) restore time — re-provisioning replaces what
		// the failure destroyed — but the restore LEVEL stays 0: in Moody's
		// model a from-scratch restart reads no checkpoint, so attributing
		// it to level minLevel would inflate that level's restore count in
		// traces and summaries (trace.Summary.Restores keeps index 0 for
		// exactly these relaunches).
		resp.restartCost = s.costs.CostForLevel(minLevel)
	} else {
		resp.restartCost = s.costs.CostForLevel(best)
	}
	return resp
}

func (s *multilevel) recoverySpeed() float64 { return 1 }

func (s *multilevel) reset() {
	s.counter = 0
	s.saved = [4]units.Duration{}
	s.has = [4]bool{}
}

func (s *multilevel) clone() strategy {
	dup := *s
	return &dup
}

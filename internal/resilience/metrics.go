package resilience

import (
	"fmt"

	"exaresil/internal/core"
	"exaresil/internal/des"
	"exaresil/internal/obs"
)

// Metrics is the resilience layer's observability bundle: per-technique
// run counts, failure counts by severity level, and the makespan time
// split the paper's event taxonomy implies — useful work, checkpoint
// writes, checkpoint restores, from-scratch relaunches, and rework
// (recomputation of lost work). All series are registered eagerly at
// construction (one fixed table per technique), so the per-event hot path
// is an index plus an atomic add with no allocation.
//
// The time split doubles as a correctness oracle: cmd/exacheck's
// conformance sweep cross-checks these counters against both the summed
// Result fields and an independent trace-derived split (see
// internal/check).
type Metrics struct {
	des     *des.Metrics
	perTech [int(core.LightweightReplication) + 1]techMetrics
}

// techMetrics is one technique's series.
type techMetrics struct {
	runs, completions   *obs.Counter
	failures, rollbacks *obs.Counter
	bySeverity          [4]*obs.Counter
	useful, checkpoint  *obs.FloatCounter
	restore, relaunch   *obs.FloatCounter
	rework              *obs.FloatCounter
}

// TechLabel is the stable label value for a technique (CLI-style, not the
// presentation string, so dashboards never see spaces or dots).
func TechLabel(t core.Technique) string {
	switch t {
	case core.Ideal:
		return "ideal"
	case core.CheckpointRestart:
		return "cr"
	case core.MultilevelCheckpoint:
		return "multilevel"
	case core.ParallelRecovery:
		return "pr"
	case core.PartialRedundancy:
		return "red1.5"
	case core.FullRedundancy:
		return "red2.0"
	case core.InMemoryReplicatedCheckpoint:
		return "restore"
	case core.LightweightReplication:
		return "teampi"
	default:
		return fmt.Sprintf("technique-%d", int(t))
	}
}

// The phase label values of exaresil_resilience_time_minutes_total.
const (
	PhaseUseful     = "useful"
	PhaseCheckpoint = "checkpoint"
	PhaseRestore    = "restore"
	PhaseRelaunch   = "relaunch"
	PhaseRework     = "rework"
)

// NewMetrics registers the resilience series on r for every technique
// (nil r yields the disabled bundle, whose hooks are no-ops). The bundle is
// memoized per registry: repeat construction — one per cluster run in a
// sweep — is a single cache hit instead of ~90 series lookups.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return r.Memo("resilience.Metrics", func() any { return newMetrics(r) }).(*Metrics)
}

func newMetrics(r *obs.Registry) *Metrics {
	m := &Metrics{des: des.NewMetrics(r)}
	for t := range m.perTech {
		tech := obs.L("technique", TechLabel(core.Technique(t)))
		tm := &m.perTech[t]
		tm.runs = r.Counter("exaresil_resilience_runs_total", "executor runs", tech)
		tm.completions = r.Counter("exaresil_resilience_completions_total", "runs that finished before their horizon", tech)
		tm.failures = r.Counter("exaresil_resilience_failures_total", "failures striking the application", tech)
		tm.rollbacks = r.Counter("exaresil_resilience_rollbacks_total", "failures that forced a restore", tech)
		for sev := 1; sev <= 3; sev++ {
			tm.bySeverity[sev] = r.Counter("exaresil_resilience_failures_by_severity_total",
				"failures by severity level", tech, obs.L("severity", fmt.Sprintf("%d", sev)))
		}
		split := func(phase string) *obs.FloatCounter {
			return r.FloatCounter("exaresil_resilience_time_minutes_total",
				"makespan decomposition in simulated minutes", tech, obs.L("phase", phase))
		}
		tm.useful = split(PhaseUseful)
		tm.checkpoint = split(PhaseCheckpoint)
		tm.restore = split(PhaseRestore)
		tm.relaunch = split(PhaseRelaunch)
		tm.rework = split(PhaseRework)
	}
	return m
}

// forTechnique resolves the per-technique series table; nil when the
// bundle is disabled or the technique is out of range.
func (m *Metrics) forTechnique(t core.Technique) *techMetrics {
	if m == nil || int(t) < 0 || int(t) >= len(m.perTech) {
		return nil
	}
	return &m.perTech[t]
}

// desMetrics resolves the engine-simulator bundle.
func (m *Metrics) desMetrics() *des.Metrics {
	if m == nil {
		return nil
	}
	return m.des
}

// observeFailure records one failure by severity.
func (t *techMetrics) observeFailure(severity int) {
	if t == nil {
		return
	}
	if severity >= 1 && severity <= 3 {
		t.bySeverity[severity].Inc()
	}
}

// observeRun folds one finished run's Result into the split. Useful work
// is the makespan residual after the accounted overheads; a blocking phase
// still in flight at the horizon is unaccounted in both the Result and the
// trace, so the residual definition keeps all three ledgers consistent.
func (t *techMetrics) observeRun(res Result) {
	if t == nil {
		return
	}
	t.runs.Inc()
	if res.Completed {
		t.completions.Inc()
	}
	t.failures.Add(uint64(res.Failures))
	t.rollbacks.Add(uint64(res.Rollbacks))
	t.checkpoint.Add(res.CheckpointTime.Minutes())
	t.restore.Add((res.RestartTime - res.RelaunchTime).Minutes())
	t.relaunch.Add(res.RelaunchTime.Minutes())
	t.rework.Add(res.ReworkTime.Minutes())
	if useful := res.Makespan() - res.CheckpointTime - res.RestartTime - res.ReworkTime; useful > 0 {
		t.useful.Add(useful.Minutes())
	}
}

// SetMetrics attaches (or detaches) the bundle to the executor. Unlike
// observers, metrics survive Clone: the series are atomic and shared, so
// parallel trial workers aggregate into one bundle.
func (x *executor) SetMetrics(m *Metrics) {
	x.metrics = m
	if x.sim != nil {
		x.sim.SetMetrics(m.desMetrics())
	}
}

// Instrument attaches the metrics bundle to an executor if it supports
// instrumentation, reporting whether it did (the Ideal executor does not:
// it has no engine to instrument).
func Instrument(x Executor, m *Metrics) bool {
	i, ok := x.(interface{ SetMetrics(*Metrics) })
	if ok {
		i.SetMetrics(m)
	}
	return ok
}

package resilience

import (
	"fmt"
	"math"

	"exaresil/internal/core"
	"exaresil/internal/des"
	"exaresil/internal/failures"
	"exaresil/internal/rng"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// Executor simulates the execution of one application under one resilience
// technique. Executors are stateless between runs and safe to reuse
// sequentially; they are not safe for concurrent use (each Run consumes a
// caller-supplied random source).
type Executor interface {
	// Technique identifies the strategy the executor implements.
	Technique() core.Technique
	// App is the application descriptor the executor simulates.
	App() workload.App
	// PhysicalNodes is the number of machine nodes one run occupies
	// (more than App().Nodes for redundant executions).
	PhysicalNodes() int
	// Viable reports whether the technique can execute the application
	// at all; reason explains a false result (e.g. a non-positive
	// optimal checkpoint period, or a replica set larger than the
	// machine).
	Viable() (ok bool, reason string)
	// Run simulates one execution beginning at start, abandoning it at
	// horizon if unfinished. Randomness (failure times, locations,
	// severities) is drawn from src, so identical sources replay
	// identical runs.
	Run(start, horizon units.Duration, src *rng.Source) Result
	// Clone returns an independent executor for the same application and
	// technique, so parallel trial runners can execute concurrently.
	Clone() Executor
}

// strategy is the technique-specific half of the execution engine. The
// engine owns time, progress, and event bookkeeping; the strategy decides
// checkpoint schedules, restore points, and failure responses.
type strategy interface {
	technique() core.Technique
	// app is the application descriptor being executed.
	app() workload.App
	// physicalNodes is the node population failures strike.
	physicalNodes() int
	// effectiveWork is the technique-inflated total work (Eqs. 7, 8).
	effectiveWork() units.Duration
	// checkpointInterval is the work between checkpoint triggers;
	// +Inf disables checkpointing (used when the failure rate is zero).
	checkpointInterval() units.Duration
	// nextCheckpoint reports the level and cost of the upcoming
	// checkpoint and advances any schedule pattern state.
	nextCheckpoint() (level int, cost units.Duration)
	// onCheckpointDone commits a completed checkpoint of the given level
	// holding the given progress.
	onCheckpointDone(level int, progress units.Duration)
	// onFailure decides the response to a failure striking the
	// application while it holds progress.
	onFailure(f failures.Failure, progress units.Duration) response
	// recoverySpeed is the progress rate multiplier while recomputing
	// previously completed work (1 for everything but Parallel
	// Recovery).
	recoverySpeed() float64
	// reset clears per-run strategy state before a new run.
	reset()
	// clone returns an independent copy for concurrent use.
	clone() strategy
}

// response is a strategy's reaction to a failure.
type response struct {
	// rollback indicates the failure forces a restore; false means the
	// application absorbs the failure (a surviving replica).
	rollback bool
	// restoreTo is the progress of the checkpoint being restored.
	restoreTo units.Duration
	// restoreLevel is the checkpoint level restored from (for stats).
	restoreLevel int
	// restartCost is the time spent restoring before work resumes.
	restartCost units.Duration
}

// phase enumerates the engine's execution phases; they mirror the event
// taxonomy of Section III-A (computation, checkpoints, restarts, recovery —
// recovery being the computing phase below the high-water mark).
type phase int

const (
	phaseComputing phase = iota
	phaseCheckpointing
	phaseRestarting
)

// workEpsilon absorbs floating-point drift when comparing accumulated work
// against triggers, measured in minutes.
const workEpsilon = 1e-9

// engine drives one run of a strategy on a discrete-event simulation.
type engine struct {
	sim     *des.Simulator
	strat   strategy
	proc    *failures.Process
	start   units.Duration
	horizon units.Duration

	phase         phase
	progress      units.Duration // work-minutes completed (post-restore view)
	highWater     units.Duration // maximum progress ever reached
	totalWork     units.Duration
	interval      units.Duration // work between checkpoint triggers
	workSinceSync units.Duration // work since last checkpoint or restore

	segStart   units.Duration // wall time the current computing segment began
	segRate    float64        // progress rate of the current segment
	inRework   bool           // current segment recomputes lost work
	pending    *des.Event     // the current phase-end event
	phaseStart units.Duration // wall time the current blocking phase began
	ckptLevel  int            // level of the in-flight checkpoint
	ckptCost   units.Duration // cost of the in-flight checkpoint
	ckptSaved  units.Duration // progress captured at checkpoint start

	ckptRate float64 // compute rate sustained during checkpoints (0 = blocking)

	// Callbacks are bound once per engine and shared by every event they
	// drive; per-event closures were half the allocations of a study.
	// The state a firing needs (the pending failure, the in-flight
	// restart's level and cost) lives in the fields below, which is safe
	// because at most one event of each kind is ever scheduled at a time.
	cbAppStart      des.Callback
	cbSegmentEnd    des.Callback
	cbCheckpointEnd des.Callback
	cbRestartEnd    des.Callback
	cbFailure       des.Callback
	nextFailure     failures.Failure
	restoreLevel    int            // level of the in-flight restore
	restartCost     units.Duration // cost of the in-flight restore

	observer Observer
	metrics  *techMetrics
	res      Result
	done     bool
}

// emit forwards a trace event to the observer, if any.
func (e *engine) emit(kind TraceKind, mutate func(*TraceEvent)) {
	if e.observer == nil {
		return
	}
	ev := TraceEvent{Time: e.sim.Now(), Kind: kind, Progress: e.progress}
	if mutate != nil {
		mutate(&ev)
	}
	e.observer(ev)
}

// runEngine executes one simulation run of strat against a failure model
// on a freshly allocated engine. The executors instead keep a persistent
// engine and call its run method directly, reusing the bound callbacks and
// the failure-process storage across sequential runs; both paths produce
// identical results.
func runEngine(strat strategy, model *failures.Model, start, horizon units.Duration, src *rng.Source, ckptRate float64, obs Observer, sim *des.Simulator, tm *techMetrics) Result {
	var e engine
	return e.run(strat, model, start, horizon, src, ckptRate, obs, sim, tm)
}

// bind creates the engine's shared event callbacks. Each captures the
// engine pointer once; run reuses them for every subsequent execution, so
// a steady-state run schedules events with zero closure allocations.
func (e *engine) bind() {
	e.cbAppStart = func(*des.Simulator) {
		e.emit(TraceStart, nil)
		e.enterComputing()
	}
	e.cbSegmentEnd = func(*des.Simulator) { e.segmentEnd() }
	e.cbCheckpointEnd = func(*des.Simulator) { e.checkpointEnd() }
	e.cbRestartEnd = func(*des.Simulator) { e.restartEnd() }
	e.cbFailure = func(*des.Simulator) { e.handleFailure(e.nextFailure) }
}

// run executes one simulation run of strat against a failure model,
// reporting state transitions to obs when non-nil. sim may carry a warm
// event pool from a previous run (the executor reuses one Simulator across
// a worker's trials); it is Reset here, so any simulator — fresh or used —
// produces the same run. The engine's own storage (bound callbacks, the
// failure process) is likewise reused: every per-run field is
// re-initialized below, so a warm engine and a zero one replay identically.
func (e *engine) run(strat strategy, model *failures.Model, start, horizon units.Duration, src *rng.Source, ckptRate float64, obs Observer, sim *des.Simulator, tm *techMetrics) Result {
	if horizon <= start {
		panic(fmt.Sprintf("resilience: horizon %v not after start %v", horizon, start))
	}
	if sim == nil {
		sim = des.NewPooled()
	}
	sim.Reset()
	strat.reset()
	if e.cbAppStart == nil {
		e.bind()
	}
	if e.proc == nil {
		e.proc = model.Process(strat.physicalNodes(), src)
	} else {
		e.proc.Reinit(model, strat.physicalNodes(), src)
	}
	e.sim = sim
	e.strat = strat
	e.start = start
	e.horizon = horizon
	e.phase = phaseComputing
	e.progress = 0
	e.highWater = 0
	e.totalWork = strat.effectiveWork()
	e.interval = strat.checkpointInterval()
	e.workSinceSync = 0
	e.segStart = 0
	e.segRate = 0
	e.inRework = false
	e.pending = nil
	e.phaseStart = 0
	e.ckptLevel = 0
	e.ckptCost = 0
	e.ckptSaved = 0
	e.ckptRate = ckptRate
	e.nextFailure = failures.Failure{}
	e.restoreLevel = 0
	e.restartCost = 0
	e.observer = obs
	e.metrics = tm
	e.res = Result{
		Technique:     strat.technique(),
		Start:         start,
		Baseline:      strat.app().Baseline(),
		EffectiveWork: e.totalWork,
	}
	e.done = false

	e.sim.Schedule(start, "app-start", e.cbAppStart)
	e.scheduleNextFailure()
	e.sim.RunUntil(horizon)

	if !e.done {
		e.res.Completed = false
		e.res.End = horizon
	}
	tm.observeRun(e.res)
	return e.res
}

// scheduleNextFailure arms the next failure event, if it lands before the
// horizon. Failure process times are relative to the run's start.
func (e *engine) scheduleNextFailure() {
	f, ok := e.proc.Next()
	if !ok {
		return
	}
	at := e.start + f.Time
	if at > e.horizon {
		return
	}
	// Only one failure is ever armed (the next one is drawn inside
	// handleFailure), so the shared callback can read it from the field.
	e.nextFailure = f
	e.sim.Schedule(at, "failure", e.cbFailure)
}

// enterComputing begins (or resumes) a computing segment, scheduling its
// end at the earliest of: work complete, checkpoint trigger, or the
// high-water mark where the recovery rate drops back to normal speed.
func (e *engine) enterComputing() {
	if e.done {
		return
	}
	e.phase = phaseComputing
	e.segStart = e.sim.Now()

	rate := 1.0
	e.inRework = e.progress < e.highWater-workEpsilon
	if e.inRework {
		rate = e.strat.recoverySpeed()
	}
	e.segRate = rate

	dist := e.totalWork - e.progress // work to completion
	if e.interval < units.Duration(math.Inf(1)) {
		if toCkpt := e.interval - e.workSinceSync; toCkpt < dist {
			dist = toCkpt
		}
	}
	if e.inRework {
		if toHW := e.highWater - e.progress; toHW < dist {
			dist = toHW
		}
	}
	dist = max(dist, 0)
	e.pending = e.sim.After(units.Duration(float64(dist)/rate), "segment-end", e.cbSegmentEnd)
}

// materialize folds the progress of the current segment into the engine
// state up to the present moment. Computing segments always accrue; with a
// positive semi-blocking rate, checkpointing segments accrue too (at that
// rate), overlapping work with the checkpoint write.
func (e *engine) materialize() {
	if e.phase == phaseRestarting {
		return
	}
	if e.phase == phaseCheckpointing && e.segRate <= 0 {
		return
	}
	now := e.sim.Now()
	delta := units.Duration(float64(now-e.segStart) * e.segRate)
	e.progress += delta
	e.workSinceSync += delta
	if e.phase == phaseCheckpointing {
		e.res.OverlappedWork += delta
	} else if e.inRework {
		e.res.ReworkTime += now - e.segStart
	}
	if e.progress > e.highWater {
		e.highWater = e.progress
	}
	e.segStart = now
}

// segmentEnd fires when a computing segment reaches its scheduled boundary.
func (e *engine) segmentEnd() {
	e.materialize()
	switch {
	case e.progress >= e.totalWork-workEpsilon:
		e.done = true
		e.res.Completed = true
		e.res.End = e.sim.Now()
		e.emit(TraceComplete, nil)
		e.sim.Stop()
	case e.interval < units.Duration(math.Inf(1)) && e.workSinceSync >= e.interval-workEpsilon:
		e.startCheckpoint()
	default:
		// Crossed the high-water mark: resume at normal speed.
		e.enterComputing()
	}
}

// startCheckpoint begins a blocking checkpoint.
func (e *engine) startCheckpoint() {
	level, cost := e.strat.nextCheckpoint()
	e.phase = phaseCheckpointing
	e.phaseStart = e.sim.Now()
	e.ckptLevel = level
	e.ckptCost = cost
	e.ckptSaved = e.progress
	e.segStart = e.sim.Now()
	e.segRate = e.ckptRate
	e.inRework = false
	e.emit(TraceCheckpointStart, func(ev *TraceEvent) { ev.Level = level })
	e.pending = e.sim.After(cost, "checkpoint-end", e.cbCheckpointEnd)
}

// checkpointEnd commits a completed checkpoint. The committed state is the
// one captured when the checkpoint began: work overlapped with the write
// (semi-blocking mode) is real progress but is not part of this snapshot.
func (e *engine) checkpointEnd() {
	e.materialize()
	e.strat.onCheckpointDone(e.ckptLevel, e.ckptSaved)
	e.res.Checkpoints[clampLevel(e.ckptLevel)]++
	e.res.CheckpointTime += e.ckptCost
	// Work between triggers counts from the snapshot, so overlapped work
	// stays on the clock toward the next checkpoint.
	e.workSinceSync = e.progress - e.ckptSaved
	e.emit(TraceCheckpointEnd, func(ev *TraceEvent) { ev.Level = e.ckptLevel })
	e.enterComputing()
}

// handleFailure reacts to a failure event.
func (e *engine) handleFailure(f failures.Failure) {
	defer e.scheduleNextFailure()
	if e.done {
		return
	}
	e.materialize()
	e.res.Failures++
	e.metrics.observeFailure(int(f.Severity))

	resp := e.strat.onFailure(f, e.progress)
	e.emit(TraceFailure, func(ev *TraceEvent) {
		ev.Severity = f.Severity
		ev.Rollback = resp.rollback
	})
	if !resp.rollback {
		// Absorbed (a surviving replica). Pending phase events remain
		// valid: nothing about the execution rate changed.
		return
	}

	e.sim.Cancel(e.pending)
	e.res.Rollbacks++
	// Wall time sunk into an interrupted blocking phase still belongs to
	// that phase in the makespan decomposition.
	switch e.phase {
	case phaseCheckpointing:
		e.res.CheckpointTime += e.sim.Now() - e.phaseStart
	case phaseRestarting:
		e.res.RestartTime += e.sim.Now() - e.phaseStart
		if e.restoreLevel == 0 {
			e.res.RelaunchTime += e.sim.Now() - e.phaseStart
		}
	}
	if lost := e.progress - resp.restoreTo; lost > 0 {
		e.res.LostWork += lost
	}
	e.progress = resp.restoreTo
	e.workSinceSync = 0
	e.phase = phaseRestarting
	e.phaseStart = e.sim.Now()
	// At most one restore is in flight; a later failure cancels this event
	// and overwrites the fields before rescheduling.
	e.restoreLevel = resp.restoreLevel
	e.restartCost = resp.restartCost
	e.pending = e.sim.After(resp.restartCost, "restart-end", e.cbRestartEnd)
}

// restartEnd fires when a restore completes and computation resumes.
func (e *engine) restartEnd() {
	e.res.RestartTime += e.restartCost
	if e.restoreLevel == 0 {
		e.res.RelaunchTime += e.restartCost
	}
	e.emit(TraceRestartEnd, func(ev *TraceEvent) { ev.Level = e.restoreLevel })
	e.enterComputing()
}

// clampLevel maps a checkpoint level into the Result's histogram index.
func clampLevel(level int) int {
	if level < 1 {
		return 1
	}
	if level > 3 {
		return 3
	}
	return level
}

package resilience

import (
	"math"
	"testing"

	"exaresil/internal/machine"
	"exaresil/internal/workload"
)

func testApp(class workload.Class, nodes int) workload.App {
	return workload.App{ID: 0, Class: class, TimeSteps: 1440, Nodes: nodes}
}

func TestPFSCheckpointCostMatchesPaper(t *testing.T) {
	cfg := machine.Exascale()
	// Paper Section IV-B: checkpoint+restart to the PFS takes 17-35 min
	// depending on application type. One-way Eq. 3 at full machine:
	// 64 GB: (64/600)s * (120000/12) = 1066.7 s ~ 17.8 min
	// 32 GB: 533.3 s ~ 8.9 min  (so checkpoint+restart spans ~17.8-35.6).
	app64 := testApp(workload.D64, cfg.Nodes)
	c64 := ComputeCosts(app64, cfg)
	if got := c64.PFS.Minutes(); math.Abs(got-17.78) > 0.1 {
		t.Errorf("64GB full-system PFS checkpoint = %v min, want ~17.78", got)
	}
	app32 := testApp(workload.A32, cfg.Nodes)
	c32 := ComputeCosts(app32, cfg)
	if got := c32.PFS.Minutes(); math.Abs(got-8.89) > 0.1 {
		t.Errorf("32GB full-system PFS checkpoint = %v min, want ~8.89", got)
	}
	// Round trip (checkpoint + restart) must land in the paper's 17-35+
	// minute window.
	for _, c := range []Costs{c32, c64} {
		rt := 2 * c.PFS.Minutes()
		if rt < 17 || rt > 36 {
			t.Errorf("checkpoint+restart %v min outside the paper's 17-35 window", rt)
		}
	}
}

func TestPFSCostScalesWithNodes(t *testing.T) {
	cfg := machine.Exascale()
	small := ComputeCosts(testApp(workload.C64, 1200), cfg)
	large := ComputeCosts(testApp(workload.C64, 120000), cfg)
	if got := float64(large.PFS) / float64(small.PFS); math.Abs(got-100) > 1e-9 {
		t.Errorf("PFS cost ratio for 100x nodes = %v, want 100 (Eq. 3 is linear in N_a)", got)
	}
	// In-memory costs are per-node and must not scale with N_a.
	if small.L1 != large.L1 || small.L2 != large.L2 {
		t.Error("L1/L2 costs changed with node count")
	}
}

func TestL1CostMatchesEq5(t *testing.T) {
	cfg := machine.Exascale()
	// 64 GB / 320 GB/s = 0.2 s.
	c := ComputeCosts(testApp(workload.B64, 1000), cfg)
	if got := c.L1.Seconds(); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("L1 = %v s, want 0.2", got)
	}
	c32 := ComputeCosts(testApp(workload.B32, 1000), cfg)
	if got := c32.L1.Seconds(); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("L1 (32GB) = %v s, want 0.1", got)
	}
}

func TestL2CostMatchesEq6(t *testing.T) {
	cfg := machine.Exascale()
	c := ComputeCosts(testApp(workload.B64, 1000), cfg)
	// 2*(T_L1 + L + N_m/B_M) = 2*(0.2 + 0.5e-6 + 0.2) ~ 0.800001 s.
	want := 2 * (0.2 + 0.5e-6 + 0.2)
	if got := c.L2.Seconds(); math.Abs(got-want) > 1e-9 {
		t.Errorf("L2 = %v s, want %v", got, want)
	}
	// Ordering invariant: L1 < L2 < PFS for any realistic size.
	if !(c.L1 < c.L2 && c.L2 < c.PFS) {
		t.Errorf("cost ordering violated: L1=%v L2=%v PFS=%v", c.L1, c.L2, c.PFS)
	}
}

func TestCostForLevel(t *testing.T) {
	c := Costs{PFS: 100, L1: 1, L2: 10}
	if c.CostForLevel(1) != 1 || c.CostForLevel(2) != 10 || c.CostForLevel(3) != 100 {
		t.Error("CostForLevel mapping wrong")
	}
}

func TestMessageLoggingSlowdown(t *testing.T) {
	cases := []struct {
		class workload.Class
		want  float64
	}{
		{workload.A32, 1.0},
		{workload.B64, 1.025},
		{workload.C32, 1.05},
		{workload.D64, 1.075},
	}
	for _, tc := range cases {
		if got := MessageLoggingSlowdown(tc.class); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("mu(%s) = %v, want %v", tc.class.Name, got, tc.want)
		}
	}
}

func TestMessageLoggingBaseline(t *testing.T) {
	app := testApp(workload.D64, 100)
	// Eq. 7: 1.075 * 1440 min.
	want := 1.075 * 1440
	if got := MessageLoggingBaseline(app).Minutes(); math.Abs(got-want) > 1e-9 {
		t.Errorf("T_B' = %v, want %v", got, want)
	}
}

func TestRedundantBaseline(t *testing.T) {
	// Eq. 8: T_S * (T_W + r*T_C).
	cases := []struct {
		class workload.Class
		r     float64
		want  float64
	}{
		{workload.A32, 2.0, 1440},         // no communication: no penalty
		{workload.D64, 2.0, 1440 * 1.75},  // 0.25 + 2*0.75
		{workload.D64, 1.5, 1440 * 1.375}, // 0.25 + 1.5*0.75
		{workload.C32, 1.5, 1440 * 1.25},  // 0.5 + 1.5*0.5
	}
	for _, tc := range cases {
		app := testApp(tc.class, 100)
		if got := RedundantBaseline(app, tc.r).Minutes(); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("T_B'(%s, r=%v) = %v, want %v", tc.class.Name, tc.r, got, tc.want)
		}
	}
}

func TestRedundantNodes(t *testing.T) {
	cases := []struct {
		virtual int
		r       float64
		want    int
	}{
		{100, 2.0, 200},
		{100, 1.5, 150},
		{3, 1.5, 5}, // ceil(4.5)
		{1, 1.5, 2}, // ceil(1.5)
		{10, 1.0, 10},
	}
	for _, tc := range cases {
		if got := RedundantNodes(tc.virtual, tc.r); got != tc.want {
			t.Errorf("RedundantNodes(%d, %v) = %d, want %d", tc.virtual, tc.r, got, tc.want)
		}
	}
}

package resilience

import (
	"fmt"

	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// reStore implements ReStore-style in-memory replicated checkpoint storage
// (Hespe et al., arXiv:2203.01107), a post-2017 extension of the paper's
// menu: each checkpoint is written to the RAM of k peer nodes inside the
// application's own allocation instead of to the parallel file system.
// Checkpoints and restores are then partner-copy cheap (fractions of Eq.
// 6's exchange cost), so the Daly period shrinks and almost no work is ever
// lost — unless the failures since the last commit have destroyed all k
// replica holders, in which case the checkpoint is gone and the application
// relaunches from its PFS input at full PFS cost.
//
// Holder losses map onto the severity model: a transient failure (level 1)
// leaves node memory intact and destroys no replica, a node loss (level 2)
// destroys one holder's copy, and a catastrophic failure (level 3) takes a
// node and its partner — two copies. Replicas are only re-provisioned by
// the next checkpoint commit, so losses accumulate within an interval,
// exactly the "k failures within one interval" exposure the ReStore paper
// analyzes.
//
// When the replica degree is unavailable — no peers to hold copies
// (N_a <= k) or a non-positive degree — the strategy degenerates to plain
// Checkpoint Restart: PFS checkpoints at the PFS Daly period, every failure
// restoring from the last PFS commit. The degeneration is exact
// (run-for-run identical to the CheckpointRestart executor), which the
// property tests pin.
type reStore struct {
	application workload.App
	costs       Costs
	degree      int
	degenerate  bool
	tau         units.Duration
	ckptCost    units.Duration // per-checkpoint write cost
	restoreCost units.Duration // restore cost while the replica set survives
	level       int            // trace level of checkpoints and live restores

	saved units.Duration
	has   bool
	lost  int // replica holders destroyed since the last commit
}

// newReStore builds the In-Memory Replicated Checkpoint executor with the
// given replica degree k.
func newReStore(app workload.App, costs Costs, model *failures.Model, degree int, periodScale float64) Executor {
	s := &reStore{
		application: app,
		costs:       costs,
		degree:      degree,
		degenerate:  degree <= 0 || app.Nodes <= degree,
	}
	if s.degenerate {
		// No peers can hold the replicas: fall back to PFS checkpointing,
		// parameter-for-parameter identical to Checkpoint Restart.
		s.ckptCost = costs.PFS
		s.restoreCost = costs.PFS
		s.level = 3
	} else {
		s.ckptCost = ReplicatedCheckpointCost(costs, degree)
		s.restoreCost = ReplicatedRestoreCost(costs)
		s.level = 2
	}
	x := &executor{strat: s, model: model, phys: app.Nodes, viable: true}
	tau, ok := DalyPeriod(s.ckptCost, model.Rate(app.Nodes))
	if !ok {
		x.viable = false
		x.reason = fmt.Sprintf("optimal replicated checkpoint period is non-positive (T_C=%s, rate=%s)",
			s.ckptCost, model.Rate(app.Nodes))
	}
	s.tau = tau * units.Duration(periodScale)
	return x
}

// holderLoss maps a failure severity to the number of replica copies it
// destroys: transients leave memory intact, node losses take one holder,
// catastrophic failures take a node and its partner.
func holderLoss(sev failures.Severity) int {
	switch sev {
	case failures.SeverityNodeLoss:
		return 1
	case failures.SeverityCatastrophic:
		return 2
	default:
		return 0
	}
}

func (s *reStore) technique() core.Technique { return core.InMemoryReplicatedCheckpoint }
func (s *reStore) app() workload.App         { return s.application }

// physicalNodes: the replicas live inside the application's own allocation
// (peer RAM), so the footprint is just N_a.
func (s *reStore) physicalNodes() int { return s.application.Nodes }

// effectiveWork: replication happens during checkpoint writes, not during
// computation, so the work equals the baseline T_B.
func (s *reStore) effectiveWork() units.Duration { return s.application.Baseline() }

func (s *reStore) checkpointInterval() units.Duration { return s.tau }

func (s *reStore) nextCheckpoint() (int, units.Duration) { return s.level, s.ckptCost }

// onCheckpointDone commits the checkpoint and re-provisions its replica
// set: only holder losses after this point can combine to destroy it.
func (s *reStore) onCheckpointDone(_ int, progress units.Duration) {
	s.saved = progress
	s.has = true
	s.lost = 0
}

// onFailure: every failure forces a restore. While the replica set survives
// the restore is a cheap partner-copy read of the in-memory checkpoint;
// once the losses since the last commit reach the degree k, the checkpoint
// is gone and the application relaunches from its PFS input (trace level 0,
// full PFS cost) — as it also does before the first commit.
func (s *reStore) onFailure(f failures.Failure, _ units.Duration) response {
	if !s.degenerate {
		s.lost += holderLoss(f.Severity)
		if s.lost >= s.degree {
			// Replica set destroyed: invalidate the in-memory checkpoint
			// until the next commit rebuilds it.
			s.saved, s.has = 0, false
		}
	}
	level, cost := 0, s.costs.PFS
	if s.has {
		level, cost = s.level, s.restoreCost
	}
	return response{
		rollback:     true,
		restoreTo:    s.saved,
		restoreLevel: level,
		restartCost:  cost,
	}
}

func (s *reStore) recoverySpeed() float64 { return 1 }

func (s *reStore) reset() { s.saved, s.has, s.lost = 0, false, 0 }

func (s *reStore) clone() strategy {
	dup := *s
	return &dup
}

// ReStoreInfo describes an In-Memory Replicated Checkpoint executor's
// resolved placement, for the conformance checker's trace mirror.
type ReStoreInfo struct {
	// Degree is the replica count k.
	Degree int
	// Degenerate reports the Checkpoint-Restart fallback (no peers can
	// hold the replicas).
	Degenerate bool
}

// ReStoreInfoOf reports the ReStore placement behind an executor, false for
// executors of any other technique.
func ReStoreInfoOf(x Executor) (ReStoreInfo, bool) {
	e, ok := x.(*executor)
	if !ok {
		return ReStoreInfo{}, false
	}
	s, ok := e.strat.(*reStore)
	if !ok {
		return ReStoreInfo{}, false
	}
	return ReStoreInfo{Degree: s.degree, Degenerate: s.degenerate}, true
}

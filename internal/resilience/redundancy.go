package resilience

import (
	"fmt"

	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// redundancy implements the partial/full redundancy technique of Section
// IV-E, after Elliott et al.: the application's virtual nodes are
// replicated at degree r on physical nodes (r = 1.5 replicates half of
// them, r = 2.0 all of them) on top of ordinary PFS checkpointing. A
// failure only forces a restore when every replica of some virtual node
// has failed since the last completed checkpoint; checkpoints (and
// restores) re-provision failed hardware and clear the failure marks.
// Duplicated communication scales the per-step communication term by r
// (Eq. 8).
type redundancy struct {
	application workload.App
	costs       Costs
	degree      float64
	phys        int
	replicated  int // virtual nodes [0, replicated) have a second replica
	tau         units.Duration

	saved units.Duration
	has   bool
	// failedIn holds, per physical node, the "generation" in which it
	// last failed; a node counts as failed only if its entry equals gen.
	// Bumping gen clears every mark in O(1).
	failedIn []uint64
	gen      uint64
}

// newRedundancy builds a redundancy executor of the given degree. The
// machine's node count bounds viability: replica sets larger than the
// machine cannot execute (the zero-efficiency cliffs of Figures 1-3).
func newRedundancy(app workload.App, costs Costs, model *failures.Model, degree float64, machineNodes int, periodScale float64) Executor {
	phys := RedundantNodes(app.Nodes, degree)
	s := &redundancy{
		application: app,
		costs:       costs,
		degree:      degree,
		phys:        phys,
		replicated:  phys - app.Nodes,
		failedIn:    make([]uint64, phys),
		gen:         1,
	}
	x := &executor{strat: s, model: model, phys: phys, viable: true}
	if phys > machineNodes {
		x.viable = false
		x.reason = fmt.Sprintf("redundancy degree %.1f needs %d nodes but the machine has %d",
			degree, phys, machineNodes)
		return x
	}
	// The paper keeps every checkpoint parameter identical to Checkpoint
	// Restart, including the optimal period.
	tau, ok := DalyPeriod(costs.PFS, model.Rate(app.Nodes))
	if !ok {
		x.viable = false
		x.reason = fmt.Sprintf("optimal checkpoint period is non-positive (T_PFS=%s, rate=%s)",
			costs.PFS, model.Rate(app.Nodes))
	}
	s.tau = tau * units.Duration(periodScale)
	return x
}

// Degree reports the redundancy degree r.
func (s *redundancy) Degree() float64 { return s.degree }

func (s *redundancy) technique() core.Technique {
	if s.degree >= 2 {
		return core.FullRedundancy
	}
	return core.PartialRedundancy
}

func (s *redundancy) app() workload.App { return s.application }

// physicalNodes: failures strike the whole replica set, not just the
// virtual nodes.
func (s *redundancy) physicalNodes() int { return s.phys }

// effectiveWork is Eq. 8: duplicated messages stretch the communication
// share of every step by r.
func (s *redundancy) effectiveWork() units.Duration {
	return RedundantBaseline(s.application, s.degree)
}

func (s *redundancy) checkpointInterval() units.Duration { return s.tau }

func (s *redundancy) nextCheckpoint() (int, units.Duration) { return 3, s.costs.PFS }

// onCheckpointDone commits the checkpoint and re-provisions failed
// hardware: only failures after this point can combine to kill a virtual
// node.
func (s *redundancy) onCheckpointDone(_ int, progress units.Duration) {
	s.saved = progress
	s.has = true
	s.gen++
}

// replicaLayout: physical nodes [0, N_a) are the primaries of virtual
// nodes 0..N_a-1; physical nodes [N_a, phys) are the secondaries of
// virtual nodes 0..replicated-1.
func (s *redundancy) virtualOf(phys int) int {
	if phys < s.application.Nodes {
		return phys
	}
	return phys - s.application.Nodes
}

// partnerOf reports the other replica of the virtual node behind phys, or
// -1 if that virtual node is unreplicated.
func (s *redundancy) partnerOf(phys int) int {
	v := s.virtualOf(phys)
	if v >= s.replicated {
		return -1
	}
	if phys < s.application.Nodes {
		return s.application.Nodes + v
	}
	return v
}

// onFailure marks the struck replica and rolls back only if its virtual
// node has now lost every replica since the last checkpoint or restore.
func (s *redundancy) onFailure(f failures.Failure, _ units.Duration) response {
	node := f.Node
	s.failedIn[node] = s.gen
	if partner := s.partnerOf(node); partner >= 0 && s.failedIn[partner] != s.gen {
		// The virtual node still has a live replica: absorbed.
		return response{}
	}
	// Virtual node lost: restore from the last PFS checkpoint — or, before
	// one has committed, relaunch from scratch (trace level 0, same PFS
	// re-provisioning cost). The restart clears the failure marks.
	s.gen++
	level := 0
	if s.has {
		level = 3
	}
	return response{
		rollback:     true,
		restoreTo:    s.saved,
		restoreLevel: level,
		restartCost:  s.costs.PFS,
	}
}

func (s *redundancy) recoverySpeed() float64 { return 1 }

func (s *redundancy) reset() {
	s.saved, s.has = 0, false
	s.gen++
}

// clone deep-copies the per-replica failure marks so concurrent runs do
// not share state.
func (s *redundancy) clone() strategy {
	dup := *s
	dup.failedIn = make([]uint64, len(s.failedIn))
	copy(dup.failedIn, s.failedIn)
	return &dup
}

package resilience

import (
	"fmt"
	"math"

	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// teamReplication implements TeaMPI-style lightweight replication (Samfass
// et al., arXiv:2005.12091), a post-2017 extension of the paper's menu: the
// application runs as two decoupled teams (r = 2 physical nodes per virtual
// node, like full redundancy), but the teams are not in message lockstep —
// only a heartbeat keeps them in touch, so the steady state pays a small
// synchronization penalty s on the communication term instead of Eq. 8's
// full 2x duplication.
//
// Failover is the flip side of that looseness: when a node dies, its twin
// keeps the virtual node alive while a warm replacement re-syncs from the
// twin (a partner-RAM-scale copy window of T_C_L2). The scheme keeps no
// checkpoints at all, so any virtual node that loses both replicas — a
// catastrophic failure taking a node and its partner, or a second failure
// landing on a twin inside the re-sync window — forces a full relaunch from
// the application's PFS input.
type teamReplication struct {
	application workload.App
	costs       Costs
	syncPenalty float64
	phys        int

	// repairWindow is how long a struck node's replacement spends
	// re-syncing from its live twin before the pair is redundant again.
	repairWindow units.Duration
	// repairUntil holds, per physical node, the (run-relative) time its
	// in-flight re-sync completes; an entry only counts if its generation
	// mark equals gen. Bumping gen clears every mark in O(1).
	repairUntil []units.Duration
	repairIn    []uint64
	gen         uint64
}

// newTeamReplication builds the Lightweight Replication executor. Like full
// redundancy it occupies 2 * N_a physical nodes, which bounds viability.
func newTeamReplication(app workload.App, costs Costs, model *failures.Model, syncPenalty float64, machineNodes int) Executor {
	phys := 2 * app.Nodes
	s := &teamReplication{
		application:  app,
		costs:        costs,
		syncPenalty:  syncPenalty,
		phys:         phys,
		repairWindow: costs.L2,
		repairUntil:  make([]units.Duration, phys),
		repairIn:     make([]uint64, phys),
		gen:          1,
	}
	x := &executor{strat: s, model: model, phys: phys, viable: true}
	if phys > machineNodes {
		x.viable = false
		x.reason = fmt.Sprintf("team replication needs %d nodes but the machine has %d",
			phys, machineNodes)
	}
	return x
}

func (s *teamReplication) technique() core.Technique { return core.LightweightReplication }
func (s *teamReplication) app() workload.App         { return s.application }

// physicalNodes: failures strike both teams.
func (s *teamReplication) physicalNodes() int { return s.phys }

// effectiveWork: the decoupled teams only pay the heartbeat/sync stretch
// (1 + s) on the communication term, not redundancy's full duplication.
func (s *teamReplication) effectiveWork() units.Duration {
	return TeamReplicationBaseline(s.application, s.syncPenalty)
}

// checkpointInterval: the scheme keeps no checkpoints; failover relies
// entirely on the live twin.
func (s *teamReplication) checkpointInterval() units.Duration {
	return units.Duration(math.Inf(1))
}

// nextCheckpoint is never invoked (the interval is infinite).
func (s *teamReplication) nextCheckpoint() (int, units.Duration) { return 0, 0 }

func (s *teamReplication) onCheckpointDone(int, units.Duration) {}

// twinOf reports the other team's replica of the virtual node behind phys:
// physical nodes [0, N_a) are team A, [N_a, 2*N_a) team B.
func (s *teamReplication) twinOf(phys int) int {
	if phys < s.application.Nodes {
		return phys + s.application.Nodes
	}
	return phys - s.application.Nodes
}

// inRepair reports whether node's replacement is still re-syncing at the
// (run-relative) time at.
func (s *teamReplication) inRepair(node int, at units.Duration) bool {
	return s.repairIn[node] == s.gen && s.repairUntil[node] > at
}

// onFailure: transients are absorbed outright (memory intact, the process
// continues). A node loss is absorbed by the twin while a replacement
// re-syncs — unless the twin is itself mid-re-sync, in which case the
// virtual node has lost both replicas. A catastrophic failure destroys the
// node and its partner (the twin) at once. Either two-replica loss forces a
// relaunch from the PFS input: there are no checkpoints to fall back on.
func (s *teamReplication) onFailure(f failures.Failure, _ units.Duration) response {
	switch f.Severity {
	case failures.SeverityTransient:
		return response{}
	case failures.SeverityNodeLoss:
		if !s.inRepair(s.twinOf(f.Node), f.Time) {
			// The twin covers; the struck node re-syncs from it. A repeat
			// failure on a node already in repair just restarts its window.
			s.repairIn[f.Node] = s.gen
			s.repairUntil[f.Node] = f.Time + s.repairWindow
			return response{}
		}
	}
	// Catastrophic, or a node loss whose twin was still re-syncing: the
	// virtual node is gone. Relaunch from scratch (trace level 0, PFS
	// re-provisioning cost) and clear the repair marks.
	s.gen++
	return response{
		rollback:     true,
		restoreTo:    0,
		restoreLevel: 0,
		restartCost:  s.costs.PFS,
	}
}

func (s *teamReplication) recoverySpeed() float64 { return 1 }

func (s *teamReplication) reset() { s.gen++ }

// clone deep-copies the per-node repair marks so concurrent runs do not
// share state.
func (s *teamReplication) clone() strategy {
	dup := *s
	dup.repairUntil = make([]units.Duration, len(s.repairUntil))
	copy(dup.repairUntil, s.repairUntil)
	dup.repairIn = make([]uint64, len(s.repairIn))
	copy(dup.repairIn, s.repairIn)
	return &dup
}

package resilience

import (
	"math"
	"testing"
	"testing/quick"

	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/rng"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// TestEngineInvariantsProperty drives every technique with arbitrary
// seeds, classes, and sizes and checks the invariants that must hold for
// any completed run:
//
//  1. makespan decomposes exactly into work + rework + checkpoints +
//     restarts;
//  2. efficiency never exceeds the technique's intrinsic bound
//     baseline/effectiveWork;
//  3. rework equals lost work divided by the recovery speed;
//  4. rollbacks never exceed failures, and every counter is non-negative.
func TestEngineInvariantsProperty(t *testing.T) {
	cfg := machine.Exascale()
	model := failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF())
	classes := workload.Classes()
	techniques := core.Techniques()
	opts := DefaultConfig()

	prop := func(seed uint64, classIdx, techIdx uint8, sizeRaw uint16, stepsRaw uint16) bool {
		class := classes[int(classIdx)%len(classes)]
		tech := techniques[int(techIdx)%len(techniques)]
		nodes := int(sizeRaw)%60000 + 100
		steps := int(stepsRaw)%1440 + 60
		app := workload.App{Class: class, TimeSteps: steps, Nodes: nodes}

		x, err := New(tech, app, cfg, model, opts)
		if err != nil {
			t.Logf("constructor error: %v", err)
			return false
		}
		if ok, _ := x.Viable(); !ok {
			return true // blocked configurations have no run to check
		}
		res := x.Run(0, units.Duration(100*float64(app.Baseline())), rng.New(seed))
		if !res.Completed {
			// Abandoned runs only need sane counters.
			return res.Failures >= res.Rollbacks && res.Rollbacks >= 0
		}

		// (1) makespan decomposition.
		reconstructed := res.EffectiveWork + res.ReworkTime + res.CheckpointTime + res.RestartTime
		if math.Abs(float64(res.Makespan()-reconstructed)) > 1e-6 {
			t.Logf("%v %s n=%d: makespan %v != %v", tech, class.Name, nodes, res.Makespan(), reconstructed)
			return false
		}
		// (2) efficiency bound.
		bound := float64(res.Baseline) / float64(res.EffectiveWork)
		if res.Efficiency() > bound+1e-9 {
			t.Logf("%v: efficiency %v above bound %v", tech, res.Efficiency(), bound)
			return false
		}
		// (3) rework/lost-work ratio.
		speed := 1.0
		if tech == core.ParallelRecovery {
			speed = opts.RecoverySpeedup
		}
		want := float64(res.LostWork) / speed
		if math.Abs(float64(res.ReworkTime)-want) > 1e-6*math.Max(1, want) {
			t.Logf("%v: rework %v != lost/speed %v", tech, res.ReworkTime, want)
			return false
		}
		// (4) counters.
		return res.Failures >= res.Rollbacks && res.Rollbacks >= 0 &&
			res.LostWork >= 0 && res.TotalCheckpoints() >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMoreFailuresNeverHelp verifies a coarse stochastic-dominance
// property: averaged over seeds, efficiency at a 2-year MTBF never beats
// efficiency at 20 years for the same configuration.
func TestMoreFailuresNeverHelp(t *testing.T) {
	cfg20 := machine.Exascale().WithMTBF(20 * units.Year)
	cfg2 := machine.Exascale().WithMTBF(2 * units.Year)
	m20 := failures.MustModel(cfg20.MTBF, failures.DefaultSeverityPMF())
	m2 := failures.MustModel(cfg2.MTBF, failures.DefaultSeverityPMF())
	app := testApp(workload.C32, 24000)

	for _, tech := range core.Techniques() {
		x20, err := New(tech, app, cfg20, m20, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		x2, err := New(tech, app, cfg2, m2, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if ok, _ := x2.Viable(); !ok {
			continue
		}
		var e20, e2 float64
		const trials = 20
		for seed := uint64(0); seed < trials; seed++ {
			horizon := units.Duration(100 * float64(app.Baseline()))
			e20 += x20.Run(0, horizon, rng.New(seed)).Efficiency()
			e2 += x2.Run(0, horizon, rng.New(seed)).Efficiency()
		}
		if e2 > e20 {
			t.Errorf("%v: mean efficiency at 2y MTBF (%v) beats 20y (%v)",
				tech, e2/trials, e20/trials)
		}
	}
}

// TestShorterAppsFinishSooner checks monotonicity of makespan in work for
// a fixed failure environment.
func TestShorterAppsFinishSooner(t *testing.T) {
	cfg := machine.Exascale()
	model := failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF())
	mean := func(steps int) float64 {
		app := workload.App{Class: workload.B64, TimeSteps: steps, Nodes: 12000}
		x, err := New(core.MultilevelCheckpoint, app, cfg, model, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		const trials = 15
		for seed := uint64(0); seed < trials; seed++ {
			res := x.Run(0, 1e8, rng.New(seed))
			if !res.Completed {
				t.Fatalf("run incomplete at %d steps", steps)
			}
			sum += res.Makespan().Minutes()
		}
		return sum / trials
	}
	if short, long := mean(360), mean(2880); short >= long {
		t.Errorf("6h app mean makespan %v >= 48h app %v", short, long)
	}
}

// TestZeroCommunicationClassesMatchAcrossMemory verifies that classes
// differing only in memory footprint behave identically under techniques
// whose costs do not depend on memory... none do (all checkpoint costs
// scale with N_m), so instead check the direction: bigger footprints can
// never be cheaper to checkpoint.
func TestBiggerFootprintNeverCheaper(t *testing.T) {
	cfg := machine.Exascale()
	for _, nodes := range []int{1200, 30000} {
		c32 := ComputeCosts(testApp(workload.A32, nodes), cfg)
		c64 := ComputeCosts(testApp(workload.A64, nodes), cfg)
		if c64.PFS < c32.PFS || c64.L1 < c32.L1 || c64.L2 < c32.L2 {
			t.Errorf("64GB checkpoints cheaper than 32GB at %d nodes", nodes)
		}
	}
}

package resilience

import (
	"math"
	"testing"
	"testing/quick"

	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/rng"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// TestEngineInvariantsProperty drives every technique with arbitrary
// seeds, classes, and sizes and checks the invariants that must hold for
// any completed run:
//
//  1. makespan decomposes exactly into work + rework + checkpoints +
//     restarts;
//  2. efficiency never exceeds the technique's intrinsic bound
//     baseline/effectiveWork;
//  3. rework equals lost work divided by the recovery speed;
//  4. rollbacks never exceed failures, and every counter is non-negative.
func TestEngineInvariantsProperty(t *testing.T) {
	cfg := machine.Exascale()
	model := failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF())
	classes := workload.Classes()
	techniques := core.Techniques()
	opts := DefaultConfig()

	prop := func(seed uint64, classIdx, techIdx uint8, sizeRaw uint16, stepsRaw uint16) bool {
		class := classes[int(classIdx)%len(classes)]
		tech := techniques[int(techIdx)%len(techniques)]
		nodes := int(sizeRaw)%60000 + 100
		steps := int(stepsRaw)%1440 + 60
		app := workload.App{Class: class, TimeSteps: steps, Nodes: nodes}

		x, err := New(tech, app, cfg, model, opts)
		if err != nil {
			t.Logf("constructor error: %v", err)
			return false
		}
		if ok, _ := x.Viable(); !ok {
			return true // blocked configurations have no run to check
		}
		res := x.Run(0, units.Duration(100*float64(app.Baseline())), rng.New(seed))
		if !res.Completed {
			// Abandoned runs only need sane counters.
			return res.Failures >= res.Rollbacks && res.Rollbacks >= 0
		}

		// (1) makespan decomposition.
		reconstructed := res.EffectiveWork + res.ReworkTime + res.CheckpointTime + res.RestartTime
		if math.Abs(float64(res.Makespan()-reconstructed)) > 1e-6 {
			t.Logf("%v %s n=%d: makespan %v != %v", tech, class.Name, nodes, res.Makespan(), reconstructed)
			return false
		}
		// (2) efficiency bound.
		bound := float64(res.Baseline) / float64(res.EffectiveWork)
		if res.Efficiency() > bound+1e-9 {
			t.Logf("%v: efficiency %v above bound %v", tech, res.Efficiency(), bound)
			return false
		}
		// (3) rework/lost-work ratio.
		speed := 1.0
		if tech == core.ParallelRecovery {
			speed = opts.RecoverySpeedup
		}
		want := float64(res.LostWork) / speed
		if math.Abs(float64(res.ReworkTime)-want) > 1e-6*math.Max(1, want) {
			t.Logf("%v: rework %v != lost/speed %v", tech, res.ReworkTime, want)
			return false
		}
		// (4) counters.
		return res.Failures >= res.Rollbacks && res.Rollbacks >= 0 &&
			res.LostWork >= 0 && res.TotalCheckpoints() >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMoreFailuresNeverHelp verifies a coarse stochastic-dominance
// property: averaged over seeds, efficiency at a 2-year MTBF never beats
// efficiency at 20 years for the same configuration.
func TestMoreFailuresNeverHelp(t *testing.T) {
	cfg20 := machine.Exascale().WithMTBF(20 * units.Year)
	cfg2 := machine.Exascale().WithMTBF(2 * units.Year)
	m20 := failures.MustModel(cfg20.MTBF, failures.DefaultSeverityPMF())
	m2 := failures.MustModel(cfg2.MTBF, failures.DefaultSeverityPMF())
	app := testApp(workload.C32, 24000)

	for _, tech := range core.Techniques() {
		x20, err := New(tech, app, cfg20, m20, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		x2, err := New(tech, app, cfg2, m2, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if ok, _ := x2.Viable(); !ok {
			continue
		}
		var e20, e2 float64
		const trials = 20
		for seed := uint64(0); seed < trials; seed++ {
			horizon := units.Duration(100 * float64(app.Baseline()))
			e20 += x20.Run(0, horizon, rng.New(seed)).Efficiency()
			e2 += x2.Run(0, horizon, rng.New(seed)).Efficiency()
		}
		if e2 > e20 {
			t.Errorf("%v: mean efficiency at 2y MTBF (%v) beats 20y (%v)",
				tech, e2/trials, e20/trials)
		}
	}
}

// TestShorterAppsFinishSooner checks monotonicity of makespan in work for
// a fixed failure environment.
func TestShorterAppsFinishSooner(t *testing.T) {
	cfg := machine.Exascale()
	model := failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF())
	mean := func(steps int) float64 {
		app := workload.App{Class: workload.B64, TimeSteps: steps, Nodes: 12000}
		x, err := New(core.MultilevelCheckpoint, app, cfg, model, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		const trials = 15
		for seed := uint64(0); seed < trials; seed++ {
			res := x.Run(0, 1e8, rng.New(seed))
			if !res.Completed {
				t.Fatalf("run incomplete at %d steps", steps)
			}
			sum += res.Makespan().Minutes()
		}
		return sum / trials
	}
	if short, long := mean(360), mean(2880); short >= long {
		t.Errorf("6h app mean makespan %v >= 48h app %v", short, long)
	}
}

// TestLightweightReplicationUndercutsFullRedundancy pins the ordering the
// TeaMPI paper claims: team replication trades full redundancy's duplicated
// messages (Eq. 8) for a bounded synchronization penalty, so its inflated
// work sits between the plain baseline and full redundancy's for every
// class — strictly below full redundancy whenever the class communicates
// and the penalty is below 1.
func TestLightweightReplicationUndercutsFullRedundancy(t *testing.T) {
	cfg := machine.Exascale()
	model := defaultModel(cfg)
	sync := DefaultConfig().TeamSyncPenalty
	for _, class := range workload.Classes() {
		app := workload.App{Class: class, TimeSteps: 720, Nodes: 12000}
		base := app.Baseline()
		team := TeamReplicationBaseline(app, sync)
		full := RedundantBaseline(app, 2.0)
		if team < base-1e-9 || team > full+1e-9 {
			t.Errorf("%s: team baseline %v outside [base %v, full redundancy %v]",
				class.Name, team, base, full)
		}
		if class.CommFraction > 0 && sync < 1 && team >= full {
			t.Errorf("%s: team baseline %v does not undercut full redundancy %v",
				class.Name, team, full)
		}
		// The executors expose exactly these baselines as effective work.
		for _, tc := range []struct {
			tech core.Technique
			want units.Duration
		}{
			{core.LightweightReplication, team},
			{core.FullRedundancy, full},
		} {
			x := mustExecutor(t, tc.tech, app, cfg, model)
			res := x.Run(0, units.Duration(100*float64(app.Baseline())), rng.New(1))
			if !res.Completed {
				continue // an unlucky seed only skips the cross-check
			}
			if math.Abs(float64(res.EffectiveWork-tc.want)) > 1e-6 {
				t.Errorf("%s/%v: effective work %v, want %v", class.Name, tc.tech, res.EffectiveWork, tc.want)
			}
		}
	}
}

// TestReStoreDegenerateMatchesCheckpointRestart pins the exact degeneration:
// with no peers able to hold replicas (N_a <= k), the In-Memory Replicated
// Checkpoint executor must reproduce Checkpoint Restart run for run — same
// period, same costs, same trajectory on the same random source.
func TestReStoreDegenerateMatchesCheckpointRestart(t *testing.T) {
	cfg := machine.Exascale().WithMTBF(units.Duration(2.5) * units.Year)
	model := defaultModel(cfg)
	app := workload.App{Class: workload.C64, TimeSteps: 720, Nodes: 2}
	opts := DefaultConfig()
	opts.ReStoreDegree = app.Nodes // no room for peers: must degenerate

	rs, err := New(core.InMemoryReplicatedCheckpoint, app, cfg, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	if info, ok := ReStoreInfoOf(rs); !ok || !info.Degenerate {
		t.Fatalf("expected a degenerate ReStore executor, got %+v (ok=%v)", info, ok)
	}
	cr, err := New(core.CheckpointRestart, app, cfg, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	horizon := units.Duration(200 * float64(app.Baseline()))
	for seed := uint64(0); seed < 5; seed++ {
		a := rs.Run(0, horizon, rng.New(seed))
		b := cr.Run(0, horizon, rng.New(seed))
		a.Technique = b.Technique // the label is the only allowed difference
		if a != b {
			t.Fatalf("seed %d: degenerate ReStore diverged from Checkpoint Restart:\n%+v\n%+v", seed, a, b)
		}
	}
}

// TestZeroCommunicationClassesMatchAcrossMemory verifies that classes
// differing only in memory footprint behave identically under techniques
// whose costs do not depend on memory... none do (all checkpoint costs
// scale with N_m), so instead check the direction: bigger footprints can
// never be cheaper to checkpoint.
func TestBiggerFootprintNeverCheaper(t *testing.T) {
	cfg := machine.Exascale()
	for _, nodes := range []int{1200, 30000} {
		c32 := ComputeCosts(testApp(workload.A32, nodes), cfg)
		c64 := ComputeCosts(testApp(workload.A64, nodes), cfg)
		if c64.PFS < c32.PFS || c64.L1 < c32.L1 || c64.L2 < c32.L2 {
			t.Errorf("64GB checkpoints cheaper than 32GB at %d nodes", nodes)
		}
	}
}

// Package resilience implements the four HPC resilience techniques the
// paper compares — Checkpoint Restart, Multilevel Checkpointing, Parallel
// Recovery (message logging), and Partial/Full Redundancy — as event-driven
// executors that simulate a single application's execution in the presence
// of failures.
//
// The package is organized as:
//
//   - costs.go: the paper's cost equations (Eqs. 3, 5, 6) and technique
//     overhead models (Eqs. 7, 8);
//   - daly.go: the first-order optimal checkpoint period (Eq. 4);
//   - engine.go: the shared event-driven execution state machine;
//   - one file per technique implementing the engine's strategy interface;
//   - mlopt.go: the multilevel checkpoint schedule optimizer.
package resilience

import (
	"math"

	"exaresil/internal/machine"
	"exaresil/internal/network"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// Costs holds the checkpoint and restart costs of one application on one
// machine, evaluated from the paper's cost equations. Checkpoint and
// restart times are assumed symmetric throughout, as in Section IV-C.
type Costs struct {
	// PFS is T_C_PFS (Eq. 3): the time to write (or read) the
	// application's full checkpoint through the network switches to the
	// parallel file system,
	//
	//	T_C_PFS = (N_m / B_N) * (N_a / N_S).
	PFS units.Duration
	// L1 is T_C_L1 (Eq. 5): a checkpoint to the node's local RAM,
	//
	//	T_C_L1 = N_m / B_M.
	L1 units.Duration
	// L2 is T_C_L2 (Eq. 6): a checkpoint exchanged with a partner node,
	//
	//	T_C_L2 = 2 * (T_C_L1 + L + N_m / B_M),
	//
	// the factor of two covering the symmetric exchange of partner data.
	L2 units.Duration
}

// ComputeCosts evaluates the cost equations for app on cfg using the
// machine's interconnect model.
func ComputeCosts(app workload.App, cfg machine.Config) Costs {
	net := network.FromMachine(cfg)
	perNode := app.Class.MemoryPerNode
	return Costs{
		PFS: net.BulkTransferTime(perNode, app.Nodes),
		L1:  cfg.Node.MemoryBandwidth.Transfer(perNode),
		L2:  net.ExchangeTime(perNode, cfg.Node.MemoryBandwidth),
	}
}

// CostForLevel reports the checkpoint (and restore) cost of a multilevel
// checkpoint at the given level, 1-based.
func (c Costs) CostForLevel(level int) units.Duration {
	switch level {
	case 1:
		return c.L1
	case 2:
		return c.L2
	default:
		return c.PFS
	}
}

// MessageLoggingSlowdown is mu = 1 + T_C/10 (Section IV-D): the execution
// inflation an application suffers from logging every message it sends.
// The resulting range (1.0 for communication-free applications to 1.075 for
// T_C = 0.75) matches the slowdowns reported by Meneses et al.
func MessageLoggingSlowdown(class workload.Class) float64 {
	return 1 + class.CommFraction/10
}

// MessageLoggingBaseline is Eq. 7: T_B' = mu * T_S * (T_W + T_C), the
// application's failure-free execution time under message logging.
func MessageLoggingBaseline(app workload.App) units.Duration {
	return units.Duration(MessageLoggingSlowdown(app.Class) * float64(app.Baseline()))
}

// RedundantBaseline is Eq. 8: T_B' = T_S * (T_W + r * T_C), the
// application's failure-free execution time when every message is
// duplicated across a redundancy degree of r.
func RedundantBaseline(app workload.App, r float64) units.Duration {
	perStep := app.Class.WorkFraction() + r*app.Class.CommFraction
	return units.Duration(float64(app.TimeSteps) * perStep * float64(units.Minute))
}

// ReplicatedCheckpointCost is the time to replicate one checkpoint across
// k peer-RAM holders, ReStore-style (arXiv:2203.01107): k one-way partner
// copies, each half of the symmetric L2 exchange of Eq. 6.
func ReplicatedCheckpointCost(c Costs, k int) units.Duration {
	if k < 1 {
		k = 1
	}
	return units.Duration(float64(k)) * c.L2 / 2
}

// ReplicatedRestoreCost is the time to scatter-read one surviving in-memory
// replica back onto the failed node's replacement: a single one-way copy.
func ReplicatedRestoreCost(c Costs) units.Duration { return c.L2 / 2 }

// TeamReplicationBaseline is the failure-free execution time under
// TeaMPI-style lightweight replication (arXiv:2005.12091): the teams run
// decoupled, so computation is not duplicated, but the lagging team's
// heartbeat and synchronization traffic stretches the communication term
// by (1 + s):
//
//	T_B' = T_S * (T_W + (1 + s) * T_C).
//
// For s < 1 this is strictly below full redundancy's Eq. 8 stretch of
// T_S * (T_W + 2 * T_C) on every communicating class, which is the scheme's
// whole point.
func TeamReplicationBaseline(app workload.App, s float64) units.Duration {
	perStep := app.Class.WorkFraction() + (1+s)*app.Class.CommFraction
	return units.Duration(float64(app.TimeSteps) * perStep * float64(units.Minute))
}

// RedundantNodes reports the physical node count an application of N_a
// virtual nodes occupies at redundancy degree r (rounded up: a degree of
// 1.5 on 3 virtual nodes still needs 5 physical nodes).
func RedundantNodes(virtualNodes int, r float64) int {
	phys := int(math.Ceil(float64(virtualNodes)*r - 1e-9))
	if phys < virtualNodes {
		phys = virtualNodes
	}
	return phys
}

package resilience

import (
	"math"
	"testing"

	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/rng"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

func TestExactStretchFailureFree(t *testing.T) {
	costs := Costs{L1: 1, L2: 2, PFS: 10}
	m := MultilevelSchedule{Interval: 10, L1PerL2: 2, L2PerL3: 2}
	// Pattern of 4: levels 1,2,1,3 -> costs 1+2+1+10 = 14 over 40 work.
	got := m.ExactStretch(costs, [3]units.Rate{})
	want := (40.0 + 14.0) / 40.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("failure-free exact stretch %v, want %v", got, want)
	}
}

func TestExactStretchDegenerate(t *testing.T) {
	costs := Costs{L1: 1, L2: 2, PFS: 10}
	bad := []MultilevelSchedule{
		{Interval: 0, L1PerL2: 1, L2PerL3: 1},
		{Interval: 1, L1PerL2: 0, L2PerL3: 1},
		{Interval: 1, L1PerL2: 1, L2PerL3: 0},
	}
	for i, m := range bad {
		if !math.IsInf(m.ExactStretch(costs, [3]units.Rate{0.01, 0, 0}), 1) {
			t.Errorf("degenerate schedule %d got finite stretch", i)
		}
	}
}

func TestExactStretchMonotoneInRate(t *testing.T) {
	cfg := machine.Exascale()
	costs := ComputeCosts(testApp(workload.C64, 30000), cfg)
	m := MultilevelSchedule{Interval: 1 * units.Minute, L1PerL2: 8, L2PerL3: 8}
	prev := 1.0
	for _, nodes := range []int{1000, 10000, 30000, 120000} {
		rates := exaRates(nodes, 10*units.Year)
		got := m.ExactStretch(costs, rates)
		if got <= prev {
			t.Errorf("exact stretch not increasing in failure rate: %v at %d nodes (prev %v)",
				got, nodes, prev)
		}
		prev = got
	}
}

func TestExactMatchesFirstOrderAtLowRates(t *testing.T) {
	// In the small-lambda regime the first-order renewal formula and the
	// exact chain must agree closely.
	cfg := machine.Exascale()
	costs := ComputeCosts(testApp(workload.B32, 1200), cfg)
	rates := exaRates(1200, 10*units.Year)
	m := MultilevelSchedule{Interval: 4 * units.Minute, L1PerL2: 6, L2PerL3: 6}
	exact := m.ExactStretch(costs, rates)
	first := m.ExpectedStretch(costs, rates)
	if rel := math.Abs(exact-first) / first; rel > 0.02 {
		t.Errorf("exact %v vs first-order %v: relative gap %v", exact, first, rel)
	}
}

// TestExactStretchMatchesSimulation is the model's validation: the chain's
// prediction must match the simulated mean stretch of the multilevel
// executor running the very same schedule.
func TestExactStretchMatchesSimulation(t *testing.T) {
	cfg := machine.Exascale()
	model := failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF())
	for _, nodes := range []int{12000, 60000} {
		app := testApp(workload.C64, nodes)
		x, err := New(core.MultilevelCheckpoint, app, cfg, model, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		sched := x.(*executor).strat.(*multilevel).schedule
		predicted := sched.ExactStretch(ComputeCosts(app, cfg), levelRates(model, nodes))

		var sum float64
		const trials = 40
		for seed := uint64(0); seed < trials; seed++ {
			res := x.Run(0, 1e8, rng.New(seed))
			if !res.Completed {
				t.Fatalf("run incomplete at %d nodes", nodes)
			}
			sum += float64(res.Makespan()) / float64(res.Baseline)
		}
		simulated := sum / trials
		if rel := math.Abs(predicted-simulated) / simulated; rel > 0.05 {
			t.Errorf("%d nodes: exact chain %v vs simulated %v (rel %v)",
				nodes, predicted, simulated, rel)
		}
	}
}

func TestOptimizeExactNeverWorse(t *testing.T) {
	cfg := machine.Exascale()
	for _, nodes := range []int{1200, 30000, 120000} {
		costs := ComputeCosts(testApp(workload.C64, nodes), cfg)
		rates := exaRates(nodes, 10*units.Year)
		first, err := OptimizeMultilevel(costs, rates, DefaultMultilevelConfig())
		if err != nil {
			t.Fatal(err)
		}
		refined, err := OptimizeMultilevelExact(costs, rates, DefaultMultilevelConfig())
		if err != nil {
			t.Fatal(err)
		}
		fv := first.ExactStretch(costs, rates)
		rv := refined.ExactStretch(costs, rates)
		if rv > fv+1e-12 {
			t.Errorf("%d nodes: exact refinement (%v) worse than first-order pick (%v)", nodes, rv, fv)
		}
	}
}

func TestOptimizeExactZeroRates(t *testing.T) {
	costs := Costs{L1: 1, L2: 2, PFS: 10}
	sched, err := OptimizeMultilevelExact(costs, [3]units.Rate{}, DefaultMultilevelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(float64(sched.Interval), 1) {
		t.Errorf("no failures should disable checkpointing, got %v", sched.Interval)
	}
}

func TestExactOptimizerThroughExecutor(t *testing.T) {
	cfg := machine.Exascale()
	model := failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF())
	app := testApp(workload.C64, 60000)

	opts := DefaultConfig()
	opts.Multilevel.UseExact = true
	exact, err := New(core.MultilevelCheckpoint, app, cfg, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	firstOrder, err := New(core.MultilevelCheckpoint, app, cfg, model, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	var exactEff, firstEff float64
	const trials = 30
	for seed := uint64(0); seed < trials; seed++ {
		exactEff += exact.Run(0, 1e8, rng.New(seed)).Efficiency() / trials
		firstEff += firstOrder.Run(0, 1e8, rng.New(seed)).Efficiency() / trials
	}
	// The exact refinement must not lose to the first-order pick by more
	// than simulation noise.
	if exactEff < firstEff-0.01 {
		t.Errorf("exact-optimized schedule (%v) clearly worse than first-order (%v)",
			exactEff, firstEff)
	}
	t.Logf("simulated efficiency: first-order %.4f, exact-refined %.4f", firstEff, exactEff)
}

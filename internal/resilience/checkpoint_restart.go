package resilience

import (
	"fmt"

	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// checkpointRestart implements the contemporary baseline technique of
// Section IV-B: periodic, blocking, uncoordinated checkpoints written to
// the parallel file system at the Daly-optimal period, with every failure
// forcing a full restore from the last completed PFS checkpoint.
type checkpointRestart struct {
	application workload.App
	costs       Costs
	tau         units.Duration
	saved       units.Duration
	has         bool
}

// newCheckpointRestart builds the Checkpoint Restart executor.
func newCheckpointRestart(app workload.App, costs Costs, model *failures.Model, periodScale float64) Executor {
	s := &checkpointRestart{application: app, costs: costs}
	x := &executor{strat: s, model: model, phys: app.Nodes, viable: true}
	tau, ok := DalyPeriod(costs.PFS, model.Rate(app.Nodes))
	if !ok {
		x.viable = false
		x.reason = fmt.Sprintf("optimal checkpoint period is non-positive (T_PFS=%s, rate=%s): checkpointing cannot keep ahead of failures",
			costs.PFS, model.Rate(app.Nodes))
	}
	s.tau = tau * units.Duration(periodScale)
	return x
}

func (s *checkpointRestart) technique() core.Technique { return core.CheckpointRestart }
func (s *checkpointRestart) app() workload.App         { return s.application }
func (s *checkpointRestart) physicalNodes() int        { return s.application.Nodes }

// effectiveWork: plain checkpointing adds no intrinsic slowdown, so the
// work equals the baseline T_B.
func (s *checkpointRestart) effectiveWork() units.Duration { return s.application.Baseline() }

func (s *checkpointRestart) checkpointInterval() units.Duration { return s.tau }

// nextCheckpoint: every checkpoint goes to the parallel file system,
// reported as level 3 to share the multilevel result histogram.
func (s *checkpointRestart) nextCheckpoint() (int, units.Duration) { return 3, s.costs.PFS }

func (s *checkpointRestart) onCheckpointDone(_ int, progress units.Duration) {
	s.saved = progress
	s.has = true
}

// onFailure: any failure, of any severity, forces a restore from the last
// PFS checkpoint; restart time is symmetric with checkpoint time. Before
// the first checkpoint commits the restart is a from-scratch relaunch: it
// reads no checkpoint, so its trace level is 0, not 3 — though the
// relaunch still pays the full PFS restore time.
func (s *checkpointRestart) onFailure(failures.Failure, units.Duration) response {
	level := 0
	if s.has {
		level = 3
	}
	return response{
		rollback:     true,
		restoreTo:    s.saved,
		restoreLevel: level,
		restartCost:  s.costs.PFS,
	}
}

func (s *checkpointRestart) recoverySpeed() float64 { return 1 }

func (s *checkpointRestart) reset() { s.saved, s.has = 0, false }

func (s *checkpointRestart) clone() strategy {
	dup := *s
	return &dup
}

package sched

import (
	"math"
	"sort"

	"exaresil/internal/core"
	"exaresil/internal/rng"
	"exaresil/internal/units"
)

// backfillMapper implements EASY backfilling, a repository extension beyond
// the paper's three heuristics (DESIGN.md lists it as such). Applications
// are considered in arrival order like FCFS; when the head of the queue
// does not fit, instead of blocking everything behind it the mapper
// computes the head's *shadow time* — the earliest instant enough running
// applications will have departed for the head to start — and backfills
// later applications that either finish (by their baseline estimate)
// before the shadow time or fit within the nodes the head will leave
// spare, so the head's implicit reservation is never delayed.
type backfillMapper struct {
	sorted []Candidate
	start  []int
}

// Kind implements Mapper.
func (*backfillMapper) Kind() core.Scheduler { return core.EASYBackfill }

// Map implements Mapper.
func (m *backfillMapper) Map(ctx Context, _ *rng.Source) Decision {
	free := ctx.FreeNodes
	m.sorted = byArrivalInto(m.sorted[:0], ctx.Queue)
	ordered := m.sorted
	d := Decision{Start: m.start[:0]}
	defer func() { m.start = d.Start[:0] }()

	// Phase 1: plain FCFS placement until the first blocker.
	i := 0
	for ; i < len(ordered); i++ {
		c := ordered[i]
		if c.Nodes > free {
			break
		}
		free -= c.Nodes
		d.Start = append(d.Start, c.ID)
	}
	if i >= len(ordered) {
		return d
	}
	head := ordered[i]

	// Phase 2: compute the head's reservation against the running set.
	shadow, spare := reservation(ctx.Now, free, head.Nodes, ctx.Running)

	// Phase 3: backfill the rest without delaying the head. A candidate
	// qualifies if it fits the idle nodes now AND either its estimated
	// completion (baseline, the scheduler's best knowledge) lands before
	// the shadow time, or it occupies only nodes the head will not need.
	backfillSpare := spare
	for _, c := range ordered[i+1:] {
		if c.Nodes > free {
			continue
		}
		endsBeforeShadow := ctx.Now+c.Baseline <= shadow
		fitsSpare := c.Nodes <= backfillSpare
		if !endsBeforeShadow && !fitsSpare {
			continue
		}
		if !endsBeforeShadow {
			backfillSpare -= c.Nodes
		}
		free -= c.Nodes
		d.Start = append(d.Start, c.ID)
	}
	return d
}

// reservation computes when `need` nodes will be free given the currently
// idle count and the running applications' expected departures, and how
// many nodes beyond `need` will be idle at that moment.
func reservation(now units.Duration, idle, need int, running []Running) (shadow units.Duration, spare int) {
	if idle >= need {
		return now, idle - need
	}
	departures := make([]Running, len(running))
	copy(departures, running)
	sort.Slice(departures, func(a, b int) bool {
		return departures[a].ExpectedEnd < departures[b].ExpectedEnd
	})
	avail := idle
	for _, r := range departures {
		avail += r.Nodes
		if avail >= need {
			return max(r.ExpectedEnd, now), avail - need
		}
	}
	// The head can never fit (it needs more than the machine has running
	// plus idle); treat the reservation as unreachable so nothing defers
	// to it.
	return units.Duration(math.Inf(1)), 0
}

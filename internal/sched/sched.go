// Package sched implements the three resource-management techniques of
// Section III-D: first-come-first-served, random-order, and slack-based
// mapping of queued applications onto idle nodes.
//
// A mapper is invoked at every mapping event — immediately after an
// application arrives and immediately after one leaves the system — with
// the queue of unmapped applications and the count of idle nodes, and
// decides which applications start now and (for the slack-based technique)
// which are dropped outright because their deadlines are already
// unreachable.
package sched

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"exaresil/internal/core"
	"exaresil/internal/rng"
	"exaresil/internal/units"
)

// Candidate is one unmapped application as a mapper sees it.
type Candidate struct {
	// ID identifies the application to the caller.
	ID int
	// Nodes is the number of idle nodes the application needs to start —
	// physical nodes, so redundant executions already include replicas.
	Nodes int
	// Arrival, Baseline and Deadline drive ordering and slack. Baseline
	// is T_B, the application's failure-free execution time.
	Arrival, Baseline, Deadline units.Duration
}

// Slack reports the candidate's scheduling headroom at time now:
// T_D - (now + T_B). At the moment of arrival this equals the paper's
// static definition T_D - (T_A + T_B); using the current time keeps the
// negative-slack drop test exact at later mapping events.
func (c Candidate) Slack(now units.Duration) units.Duration {
	return c.Deadline - (now + c.Baseline)
}

// Running describes one executing application as a mapper sees it; the
// backfill mapper uses expected ends to compute reservations.
type Running struct {
	// Nodes is the physical node count the application occupies.
	Nodes int
	// ExpectedEnd is when the cluster expects those nodes back (its
	// scheduled completion or deadline drop).
	ExpectedEnd units.Duration
}

// Context is everything a mapper sees at a mapping event.
type Context struct {
	// Now is the event time.
	Now units.Duration
	// FreeNodes is the count of idle nodes.
	FreeNodes int
	// Queue holds the unmapped applications, in no particular order.
	Queue []Candidate
	// Running holds the executing applications.
	Running []Running
}

// Decision is a mapper's output: applications to start (in placement
// order) and applications to drop. IDs not listed stay queued for future
// mapping events.
type Decision struct {
	// Start lists candidate IDs to place now, in order.
	Start []int
	// Drop lists candidate IDs to remove from the system.
	Drop []int
}

// Mapper decides which queued applications start at a mapping event.
// Mappers must be deterministic given (ctx, src).
//
// Mappers own internal scratch buffers sized to the working queue, so one
// mapper instance serves a whole simulation run with no per-event
// allocation. Two contract points follow: a Mapper is not safe for
// concurrent use (parallel runs construct one each via New), and the
// slices inside a returned Decision are valid only until the next Map
// call on the same mapper — callers consume them immediately, as the
// cluster layer does.
type Mapper interface {
	// Kind identifies the heuristic.
	Kind() core.Scheduler
	// Map produces the mapping decision. Implementations draw any
	// randomness from src so trials replay identically.
	Map(ctx Context, src *rng.Source) Decision
}

// New returns the mapper implementing the given heuristic.
func New(kind core.Scheduler) (Mapper, error) {
	switch kind {
	case core.FCFS:
		return &fcfsMapper{}, nil
	case core.RandomOrder:
		return &randomMapper{}, nil
	case core.SlackBased:
		return &slackMapper{}, nil
	case core.EASYBackfill:
		return &backfillMapper{}, nil
	default:
		return nil, fmt.Errorf("sched: unknown scheduler %v", kind)
	}
}

// MustNew is New but panics on error; for the enumerated heuristics.
func MustNew(kind core.Scheduler) Mapper {
	m, err := New(kind)
	if err != nil {
		panic(err)
	}
	return m
}

// fcfsMapper implements strict first-come-first-served: applications are
// placed in arrival order until the first one that does not fit, which
// blocks everything behind it (no backfilling), as in Section III-D1.
type fcfsMapper struct {
	sorted []Candidate
	start  []int
}

func (*fcfsMapper) Kind() core.Scheduler { return core.FCFS }

func (m *fcfsMapper) Map(ctx Context, _ *rng.Source) Decision {
	free := ctx.FreeNodes
	m.sorted = byArrivalInto(m.sorted[:0], ctx.Queue)
	start := m.start[:0]
	for _, c := range m.sorted {
		if c.Nodes > free {
			break // strict FCFS: later arrivals wait behind the blocker
		}
		free -= c.Nodes
		start = append(start, c.ID)
	}
	m.start = start
	return Decision{Start: start}
}

// randomMapper implements Section III-D2: applications are considered in
// uniformly random order; each is placed if it fits and otherwise returned
// to the queue, and the pass continues until every application has been
// considered once.
type randomMapper struct {
	perm  []int
	start []int
}

func (*randomMapper) Kind() core.Scheduler { return core.RandomOrder }

func (m *randomMapper) Map(ctx Context, src *rng.Source) Decision {
	free := ctx.FreeNodes
	if n := len(ctx.Queue); cap(m.perm) < n {
		m.perm = make([]int, n)
	} else {
		m.perm = m.perm[:n]
	}
	src.PermInto(m.perm)
	start := m.start[:0]
	for _, i := range m.perm {
		c := ctx.Queue[i]
		if c.Nodes <= free {
			free -= c.Nodes
			start = append(start, c.ID)
		}
	}
	m.start = start
	return Decision{Start: start}
}

// slackMapper implements Section III-D3: applications with negative slack
// are dropped, the rest are considered in increasing-slack order, placing
// each that fits and returning the others to the queue.
type slackMapper struct {
	viable []Candidate
	start  []int
	drop   []int
}

func (*slackMapper) Kind() core.Scheduler { return core.SlackBased }

// sortSlack is the slack ordering key. Deadline-free candidates are exempt
// from the negative-slack drop, and they must also be exempt from the raw
// Slack value, which for Deadline == 0 is -(now + T_B) — more negative than
// any real deadline's — and would jump them to the front of the queue.
// Having no deadline means no urgency: they sort with infinite slack,
// behind every deadline-bearing application.
func sortSlack(c Candidate, now units.Duration) units.Duration {
	if c.Deadline <= 0 {
		return units.Duration(math.Inf(1))
	}
	return c.Slack(now)
}

func (m *slackMapper) Map(ctx Context, _ *rng.Source) Decision {
	free := ctx.FreeNodes
	viable := m.viable[:0]
	drop := m.drop[:0]
	start := m.start[:0]
	for _, c := range ctx.Queue {
		if c.Deadline > 0 && c.Slack(ctx.Now) < 0 {
			drop = append(drop, c.ID)
			continue
		}
		viable = append(viable, c)
	}
	slices.SortStableFunc(viable, func(a, b Candidate) int {
		return cmp.Compare(sortSlack(a, ctx.Now), sortSlack(b, ctx.Now))
	})
	for _, c := range viable {
		if c.Nodes <= free {
			free -= c.Nodes
			start = append(start, c.ID)
		}
	}
	m.viable, m.drop, m.start = viable, drop, start
	return Decision{Start: start, Drop: drop}
}

// byArrivalInto appends the queue to dst sorted by (arrival, ID) without
// mutating the input.
func byArrivalInto(dst, queue []Candidate) []Candidate {
	dst = append(dst, queue...)
	slices.SortStableFunc(dst, func(a, b Candidate) int {
		if a.Arrival != b.Arrival {
			return cmp.Compare(a.Arrival, b.Arrival)
		}
		return cmp.Compare(a.ID, b.ID)
	})
	return dst
}

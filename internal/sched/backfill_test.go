package sched

import (
	"math"
	"slices"
	"testing"

	"exaresil/internal/core"
	"exaresil/internal/rng"
	"exaresil/internal/units"
)

func TestBackfillBehavesLikeFCFSWhenEverythingFits(t *testing.T) {
	m := MustNew(core.EASYBackfill)
	queue := []Candidate{
		cand(2, 30, 20, 100, 1000),
		cand(1, 50, 10, 100, 1000),
	}
	d := m.Map(Context{Now: 0, Queue: queue, FreeNodes: 100}, rng.New(1))
	if want := []int{1, 2}; !slices.Equal(d.Start, want) {
		t.Errorf("Start = %v, want %v", d.Start, want)
	}
}

func TestBackfillFillsBehindBlockedHead(t *testing.T) {
	m := MustNew(core.EASYBackfill)
	// Head needs 80 of 60 free; a running job releases 40 nodes at t=500.
	// A short job (baseline 100 <= shadow 500) must backfill; FCFS would
	// have blocked it.
	queue := []Candidate{
		cand(1, 80, 0, 100, 1e6),  // blocked head
		cand(2, 20, 10, 100, 1e6), // short: ends at 100 < shadow 500
	}
	running := []Running{{Nodes: 40, ExpectedEnd: 500}}
	d := m.Map(Context{Now: 0, Queue: queue, FreeNodes: 60, Running: running}, rng.New(1))
	if want := []int{2}; !slices.Equal(d.Start, want) {
		t.Errorf("Start = %v, want %v (backfill the short job)", d.Start, want)
	}
	// The same queue under FCFS starts nothing.
	fcfs := MustNew(core.FCFS)
	if d := fcfs.Map(Context{Now: 0, Queue: queue, FreeNodes: 60, Running: running}, rng.New(1)); len(d.Start) != 0 {
		t.Errorf("FCFS backfilled: %v", d.Start)
	}
}

func TestBackfillNeverDelaysHeadReservation(t *testing.T) {
	m := MustNew(core.EASYBackfill)
	// Head needs 80; free 60; running job frees 40 at t=500, so the head
	// starts at 500 using 100 of the then-idle 100 nodes, leaving spare
	// 20. A long job needing 50 nodes (finishing after 500) would delay
	// the head: it must NOT backfill. A long job needing 15 (within the
	// spare 20) may.
	queue := []Candidate{
		cand(1, 80, 0, 100, 1e6),   // blocked head
		cand(2, 50, 10, 1000, 1e6), // long and wide: would steal head nodes
		cand(3, 15, 20, 1000, 1e6), // long but fits the spare
	}
	running := []Running{{Nodes: 40, ExpectedEnd: 500}}
	d := m.Map(Context{Now: 0, Queue: queue, FreeNodes: 60, Running: running}, rng.New(1))
	if slices.Contains(d.Start, 2) {
		t.Errorf("backfilled a job that delays the head: %v", d.Start)
	}
	if !slices.Contains(d.Start, 3) {
		t.Errorf("failed to backfill a spare-fitting job: %v", d.Start)
	}
}

func TestBackfillSpareIsConsumed(t *testing.T) {
	m := MustNew(core.EASYBackfill)
	// Spare at shadow is 20; two long 15-node jobs both fit now, but only
	// one fits the spare.
	queue := []Candidate{
		cand(1, 80, 0, 100, 1e6),
		cand(2, 15, 10, 1000, 1e6),
		cand(3, 15, 20, 1000, 1e6),
	}
	running := []Running{{Nodes: 40, ExpectedEnd: 500}}
	d := m.Map(Context{Now: 0, Queue: queue, FreeNodes: 60, Running: running}, rng.New(1))
	long := 0
	for _, id := range d.Start {
		if id == 2 || id == 3 {
			long++
		}
	}
	if long != 1 {
		t.Errorf("backfilled %d long jobs into 20 spare nodes, want exactly 1 (%v)", long, d.Start)
	}
}

func TestBackfillUnreachableHead(t *testing.T) {
	m := MustNew(core.EASYBackfill)
	// Head needs more than idle + running can ever provide: reservation
	// is unreachable, so later jobs that fit may start freely (nothing
	// can delay a head that can never start).
	queue := []Candidate{
		cand(1, 500, 0, 100, 1e6),
		cand(2, 30, 10, 1000, 1e6),
	}
	running := []Running{{Nodes: 40, ExpectedEnd: 500}}
	d := m.Map(Context{Now: 0, Queue: queue, FreeNodes: 60, Running: running}, rng.New(1))
	if !slices.Contains(d.Start, 2) {
		t.Errorf("job behind an unreachable head should backfill; got %v", d.Start)
	}
}

func TestReservationComputation(t *testing.T) {
	running := []Running{
		{Nodes: 10, ExpectedEnd: 300},
		{Nodes: 40, ExpectedEnd: 100},
		{Nodes: 20, ExpectedEnd: 200},
	}
	// Need 60, idle 10: after t=100 idle 50, after t=200 idle 70 -> shadow
	// 200, spare 10.
	shadow, spare := reservation(0, 10, 60, running)
	if shadow != 200 || spare != 10 {
		t.Errorf("reservation = (%v, %d), want (200, 10)", shadow, spare)
	}
	// Already enough idle.
	shadow, spare = reservation(50, 100, 60, running)
	if shadow != 50 || spare != 40 {
		t.Errorf("immediate reservation = (%v, %d), want (50, 40)", shadow, spare)
	}
	// Never enough.
	shadow, _ = reservation(0, 10, 1000, running)
	if !math.IsInf(float64(shadow), 1) {
		t.Errorf("unreachable reservation shadow = %v, want +Inf", shadow)
	}
	// A departure in the past still cannot move the shadow before now.
	shadow, _ = reservation(150, 10, 50, running)
	if shadow != 150 {
		t.Errorf("shadow %v before now", shadow)
	}
}

func TestBackfillInCluster(t *testing.T) {
	// Smoke: the scheduler must be constructible through New and carry
	// its Kind; the cluster integration test lives in the cluster package.
	m, err := New(core.EASYBackfill)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind() != core.EASYBackfill {
		t.Errorf("kind = %v", m.Kind())
	}
	if _, err := core.ParseScheduler("backfill"); err != nil {
		t.Errorf("ParseScheduler(backfill): %v", err)
	}
	if got := core.EASYBackfill.String(); got != "EASY-Backfill" {
		t.Errorf("String() = %q", got)
	}
	if len(core.AllSchedulers()) != 4 {
		t.Error("AllSchedulers should list 4 heuristics")
	}
}

// TestBackfillEdgeCases covers the degenerate mapping events table-style:
// nothing queued, a head wider than the whole machine, an exact-fit queue,
// and same-instant arrivals whose ordering must fall back to the ID
// tie-break deterministically.
func TestBackfillEdgeCases(t *testing.T) {
	tests := []struct {
		name    string
		ctx     Context
		want    []int // exact expected Start, in order
		noDrops bool
	}{
		{
			name: "empty queue",
			ctx:  Context{Now: 0, FreeNodes: 100},
			want: nil,
		},
		{
			name: "single job larger than the machine",
			// 200 nodes wanted, the machine has 100 and nothing running:
			// the head is unreachable and nothing else exists to backfill.
			ctx:  Context{Now: 0, FreeNodes: 100, Queue: []Candidate{cand(1, 200, 0, 100, 1e6)}},
			want: nil,
		},
		{
			name: "exact fit consumes the machine",
			// 40+60 = exactly 100 free: both start, and a third arrival
			// behind them finds zero free nodes and cannot backfill.
			ctx: Context{Now: 0, FreeNodes: 100, Queue: []Candidate{
				cand(1, 40, 0, 100, 1e6),
				cand(2, 60, 10, 100, 1e6),
				cand(3, 1, 20, 1, 1e6),
			}},
			want: []int{1, 2},
		},
		{
			name: "exact fit at the spare boundary",
			// Head needs all 100 at shadow 500 (spare 0); a candidate whose
			// baseline ends exactly AT the shadow still qualifies (<=).
			ctx: Context{Now: 0, FreeNodes: 60, Queue: []Candidate{
				cand(1, 100, 0, 100, 1e6),
				cand(2, 10, 10, 500, 1e6),
			}, Running: []Running{{Nodes: 40, ExpectedEnd: 500}}},
			want: []int{2},
		},
		{
			name: "equal arrivals tie-break by ID",
			// Four identical candidates (same arrival, hence equal slack):
			// byArrival must order them by ID, so with room for three the
			// highest ID is the one left waiting.
			ctx: Context{Now: 0, FreeNodes: 75, Queue: []Candidate{
				cand(4, 25, 0, 100, 1000),
				cand(2, 25, 0, 100, 1000),
				cand(3, 25, 0, 100, 1000),
				cand(1, 25, 0, 100, 1000),
			}},
			want: []int{1, 2, 3},
		},
	}
	m := MustNew(core.EASYBackfill)
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := m.Map(tt.ctx, rng.New(1))
			if !slices.Equal(d.Start, tt.want) {
				t.Errorf("Start = %v, want %v", d.Start, tt.want)
			}
			if len(d.Drop) != 0 {
				t.Errorf("Drop = %v, want none (backfill extends FCFS)", d.Drop)
			}
		})
	}
}

func TestBackfillNoDrops(t *testing.T) {
	m := MustNew(core.EASYBackfill)
	queue := []Candidate{cand(1, 10, 0, 100, 50)} // hopeless deadline
	d := m.Map(Context{Now: 0, Queue: queue, FreeNodes: 100}, rng.New(1))
	if len(d.Drop) != 0 {
		t.Error("backfill mapper should not drop (it extends FCFS)")
	}
	_ = units.Duration(0)
}

package sched

import (
	"slices"
	"testing"

	"exaresil/internal/core"
	"exaresil/internal/rng"
	"exaresil/internal/units"
)

func cand(id, nodes int, arrival, baseline, deadline units.Duration) Candidate {
	return Candidate{ID: id, Nodes: nodes, Arrival: arrival, Baseline: baseline, Deadline: deadline}
}

func TestNewCoversAllSchedulers(t *testing.T) {
	for _, kind := range core.Schedulers() {
		m, err := New(kind)
		if err != nil {
			t.Fatalf("New(%v): %v", kind, err)
		}
		if m.Kind() != kind {
			t.Errorf("mapper for %v reports kind %v", kind, m.Kind())
		}
	}
	if _, err := New(core.Scheduler(99)); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestSlackComputation(t *testing.T) {
	c := cand(1, 10, 0, 100, 150)
	if got := c.Slack(0); got != 50 {
		t.Errorf("slack at arrival = %v, want 50", got)
	}
	if got := c.Slack(60); got != -10 {
		t.Errorf("slack at t=60 = %v, want -10", got)
	}
}

func TestFCFSOrderAndBlocking(t *testing.T) {
	m := MustNew(core.FCFS)
	queue := []Candidate{
		cand(2, 30, 20, 100, 1000),
		cand(1, 50, 10, 100, 1000),
		cand(3, 10, 30, 100, 1000),
	}
	// 100 free: app 1 (arrived first, 50), app 2 (30), app 3 (10) all fit.
	d := m.Map(Context{Now: 40, Queue: queue, FreeNodes: 100}, rng.New(1))
	if want := []int{1, 2, 3}; !slices.Equal(d.Start, want) {
		t.Errorf("Start = %v, want %v (arrival order)", d.Start, want)
	}
	// 70 free: app 1 (50) fits, app 2 (30) does not -> strict FCFS blocks
	// app 3 even though it would fit.
	d = m.Map(Context{Now: 40, Queue: queue, FreeNodes: 70}, rng.New(1))
	if want := []int{1}; !slices.Equal(d.Start, want) {
		t.Errorf("Start = %v, want %v (head-of-line blocking)", d.Start, want)
	}
	if len(d.Drop) != 0 {
		t.Error("FCFS must not drop")
	}
}

func TestFCFSDoesNotMutateQueue(t *testing.T) {
	m := MustNew(core.FCFS)
	queue := []Candidate{
		cand(2, 1, 20, 1, 100),
		cand(1, 1, 10, 1, 100),
	}
	m.Map(Context{Now: 0, Queue: queue, FreeNodes: 10}, rng.New(1))
	if queue[0].ID != 2 || queue[1].ID != 1 {
		t.Error("Map mutated the caller's queue order")
	}
}

func TestRandomPlacesEverythingThatFits(t *testing.T) {
	m := MustNew(core.RandomOrder)
	queue := []Candidate{
		cand(1, 60, 0, 1, 100),
		cand(2, 60, 0, 1, 100),
		cand(3, 30, 0, 1, 100),
	}
	// Only one of the 60s fits; the 30 always fits afterwards. Random
	// order skips the non-fitting app and keeps going.
	d := m.Map(Context{Now: 0, Queue: queue, FreeNodes: 100}, rng.New(5))
	if len(d.Start) != 2 {
		t.Fatalf("Start = %v, want two apps placed", d.Start)
	}
	if !slices.Contains(d.Start, 3) {
		t.Errorf("the 30-node app should always be placed, got %v", d.Start)
	}
}

func TestRandomOrderVariesBySeed(t *testing.T) {
	m := MustNew(core.RandomOrder)
	var queue []Candidate
	for i := 1; i <= 8; i++ {
		queue = append(queue, cand(i, 1, 0, 1, 100))
	}
	// Decisions are valid only until the next Map call on the same mapper
	// (the scratch-buffer contract), so clone before comparing across calls.
	a := slices.Clone(m.Map(Context{Now: 0, Queue: queue, FreeNodes: 100}, rng.New(1)).Start)
	b := slices.Clone(m.Map(Context{Now: 0, Queue: queue, FreeNodes: 100}, rng.New(2)).Start)
	if slices.Equal(a, b) {
		t.Error("different seeds produced identical random orders (unlikely for 8 apps)")
	}
	c := m.Map(Context{Now: 0, Queue: queue, FreeNodes: 100}, rng.New(1))
	if !slices.Equal(a, c.Start) {
		t.Error("same seed produced different orders")
	}
}

func TestSlackDropsNegativeSlack(t *testing.T) {
	m := MustNew(core.SlackBased)
	queue := []Candidate{
		cand(1, 10, 0, 100, 150), // slack +50 at t=0
		cand(2, 10, 0, 100, 90),  // slack -10 at t=0: hopeless
	}
	d := m.Map(Context{Now: 0, Queue: queue, FreeNodes: 100}, rng.New(1))
	if want := []int{2}; !slices.Equal(d.Drop, want) {
		t.Errorf("Drop = %v, want %v", d.Drop, want)
	}
	if want := []int{1}; !slices.Equal(d.Start, want) {
		t.Errorf("Start = %v, want %v", d.Start, want)
	}
}

func TestSlackPrioritizesTightestFirst(t *testing.T) {
	m := MustNew(core.SlackBased)
	queue := []Candidate{
		cand(1, 60, 0, 100, 300), // slack 200
		cand(2, 60, 0, 100, 150), // slack 50: tighter
	}
	// Only one fits: the tighter one must win.
	d := m.Map(Context{Now: 0, Queue: queue, FreeNodes: 60}, rng.New(1))
	if want := []int{2}; !slices.Equal(d.Start, want) {
		t.Errorf("Start = %v, want %v (lowest slack first)", d.Start, want)
	}
}

func TestSlackSkipsNonFittingButPlacesRest(t *testing.T) {
	m := MustNew(core.SlackBased)
	queue := []Candidate{
		cand(1, 90, 0, 100, 150), // tightest but too big for 60 free
		cand(2, 50, 0, 100, 400),
	}
	d := m.Map(Context{Now: 0, Queue: queue, FreeNodes: 60}, rng.New(1))
	if want := []int{2}; !slices.Equal(d.Start, want) {
		t.Errorf("Start = %v, want %v", d.Start, want)
	}
}

func TestSlackTreatsNoDeadlineAsUndroppable(t *testing.T) {
	m := MustNew(core.SlackBased)
	queue := []Candidate{cand(1, 10, 0, 100, 0)} // no deadline
	d := m.Map(Context{Now: 1e6, Queue: queue, FreeNodes: 100}, rng.New(1))
	if len(d.Drop) != 0 {
		t.Error("deadline-free app dropped")
	}
	if want := []int{1}; !slices.Equal(d.Start, want) {
		t.Errorf("Start = %v, want %v", d.Start, want)
	}
}

func TestSlackDeadlineFreeQueuesBehindDeadlines(t *testing.T) {
	// Regression: a Deadline == 0 candidate's raw Slack(now) is
	// -(now + T_B), more negative than any real deadline's slack, which
	// used to sort deadline-free apps to the FRONT of the queue. Having no
	// deadline means no urgency: they must queue behind every
	// deadline-bearing app (Section III-D3).
	m := MustNew(core.SlackBased)
	queue := []Candidate{
		cand(1, 60, 0, 500, 0),   // deadline-free, long baseline
		cand(2, 60, 0, 100, 150), // slack 50: tight
	}
	// Only one fits: the deadline-bearing app must win.
	d := m.Map(Context{Now: 0, Queue: queue, FreeNodes: 60}, rng.New(1))
	if want := []int{2}; !slices.Equal(d.Start, want) {
		t.Errorf("Start = %v, want %v (deadline-free app must not jump the queue)", d.Start, want)
	}
	if len(d.Drop) != 0 {
		t.Errorf("Drop = %v, want none", d.Drop)
	}
	// With room for both, the deadline-free app still starts — last.
	d = m.Map(Context{Now: 0, Queue: queue, FreeNodes: 120}, rng.New(1))
	if want := []int{2, 1}; !slices.Equal(d.Start, want) {
		t.Errorf("Start = %v, want %v (deadline-free last)", d.Start, want)
	}
	// Two deadline-free apps keep their relative queue order (stable sort).
	queue = []Candidate{
		cand(3, 10, 0, 100, 0),
		cand(4, 10, 0, 900, 0),
	}
	d = m.Map(Context{Now: 0, Queue: queue, FreeNodes: 100}, rng.New(1))
	if want := []int{3, 4}; !slices.Equal(d.Start, want) {
		t.Errorf("Start = %v, want %v (stable among deadline-free)", d.Start, want)
	}
}

func TestSlackUsesCurrentTime(t *testing.T) {
	m := MustNew(core.SlackBased)
	// Positive slack at arrival, negative by the time of this event.
	queue := []Candidate{cand(1, 10, 0, 100, 150)}
	d := m.Map(Context{Now: 60, Queue: queue, FreeNodes: 100}, rng.New(1))
	if want := []int{1}; !slices.Equal(d.Drop, want) {
		t.Errorf("Drop = %v, want %v (slack gone stale)", d.Drop, want)
	}
}

package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"exaresil/internal/obs"
)

func mustNew(t *testing.T, cfg Config) (*Injector, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	in, err := New(cfg, reg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return in, reg
}

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
}

// TestConfigValidate rejects malformed rate combinations.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero value", Config{}, true},
		{"all maxed independently", Config{LatencyRate: 1, CrashRate: 1, ErrorRate: 0.5, ResetRate: 0.5}, true},
		{"negative rate", Config{ErrorRate: -0.1}, false},
		{"rate above one", Config{LatencyRate: 1.5}, false},
		{"error plus reset above one", Config{ErrorRate: 0.7, ResetRate: 0.7}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate: unexpected error %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("Validate: error expected, got nil")
			}
		})
	}
}

// TestDeterministicDecisions sends the same sequential request stream
// through two injectors with the same seed and requires identical
// per-fault totals — the property chaos runs lean on for reproducibility.
func TestDeterministicDecisions(t *testing.T) {
	run := func(seed uint64) [3]uint64 {
		in, _ := mustNew(t, Config{Seed: seed, LatencyRate: 0.3, Latency: time.Microsecond, ErrorRate: 0.2, ResetRate: 0.2})
		h := in.Middleware(okHandler())
		srv := httptest.NewServer(h)
		defer srv.Close()
		client := srv.Client()
		for i := 0; i < 200; i++ {
			resp, err := client.Get(srv.URL + "/v1/jobs/x")
			if err != nil {
				continue // injected reset
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return [3]uint64{in.latency.Value(), in.errors.Value(), in.resets.Value()}
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	if a[0] == 0 || a[1] == 0 || a[2] == 0 {
		t.Fatalf("expected all fault kinds to fire over 200 requests, got latency=%d errors=%d resets=%d", a[0], a[1], a[2])
	}
	if c := run(43); c == a {
		t.Fatalf("different seeds produced identical totals %v — decision stream ignores the seed", c)
	}
}

// TestErrorInjection: with ErrorRate 1 every non-exempt request is a
// synthetic 500 and the counter tracks each one.
func TestErrorInjection(t *testing.T) {
	in, _ := mustNew(t, Config{Seed: 1, ErrorRate: 1})
	srv := httptest.NewServer(in.Middleware(okHandler()))
	defer srv.Close()

	for i := 0; i < 5; i++ {
		resp, err := srv.Client().Get(srv.URL + "/v1/jobs")
		if err != nil {
			t.Fatalf("GET: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("status = %d, want 500", resp.StatusCode)
		}
		if !strings.Contains(string(body), "chaos: injected server error") {
			t.Fatalf("body = %q, want injected-error marker", body)
		}
	}
	if got := in.errors.Value(); got != 5 {
		t.Fatalf("error counter = %d, want 5", got)
	}
}

// TestResetInjection: with ResetRate 1 the client observes a transport
// error, not an HTTP response.
func TestResetInjection(t *testing.T) {
	in, _ := mustNew(t, Config{Seed: 1, ResetRate: 1})
	srv := httptest.NewServer(in.Middleware(okHandler()))
	defer srv.Close()

	if _, err := srv.Client().Get(srv.URL + "/v1/jobs"); err == nil {
		t.Fatal("expected a transport error from the aborted connection")
	}
	if got := in.resets.Value(); got != 1 {
		t.Fatalf("reset counter = %d, want 1", got)
	}
}

// TestExemptPaths: health probes and metric scrapes dodge every fault.
func TestExemptPaths(t *testing.T) {
	in, _ := mustNew(t, Config{Seed: 1, LatencyRate: 1, Latency: time.Microsecond, ErrorRate: 0.5, ResetRate: 0.5})
	srv := httptest.NewServer(in.Middleware(okHandler()))
	defer srv.Close()

	for _, path := range []string{"/healthz", "/metrics"} {
		for i := 0; i < 10; i++ {
			resp, err := srv.Client().Get(srv.URL + path)
			if err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s: status %d, want 200", path, resp.StatusCode)
			}
		}
	}
	if n := in.latency.Value() + in.errors.Value() + in.resets.Value(); n != 0 {
		t.Fatalf("exempt paths consumed %d faults", n)
	}
}

// TestCrashBounds: crash points stay in [1, CrashCells] and a zero rate
// never fires.
func TestCrashBounds(t *testing.T) {
	in, _ := mustNew(t, Config{Seed: 9, CrashRate: 1, CrashCells: 4})
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		after, ok := in.Crash()
		if !ok {
			t.Fatal("CrashRate 1 must always fire")
		}
		if after < 1 || after > 4 {
			t.Fatalf("crash point %d outside [1, 4]", after)
		}
		seen[after] = true
	}
	if len(seen) < 3 {
		t.Fatalf("crash points poorly spread: %v", seen)
	}
	if got := in.crashes.Value(); got != 200 {
		t.Fatalf("crash counter = %d, want 200", got)
	}

	quiet, _ := mustNew(t, Config{Seed: 9})
	for i := 0; i < 50; i++ {
		if _, ok := quiet.Crash(); ok {
			t.Fatal("zero CrashRate fired")
		}
	}
}

// TestMetricsRegistered: the full fault family is present on the
// registry even before any fault fires, so dashboards see zeros rather
// than absent series.
func TestMetricsRegistered(t *testing.T) {
	_, reg := mustNew(t, Config{Seed: 1})
	var buf strings.Builder
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	body := buf.String()
	for _, fault := range []string{"latency", "error", "reset", "crash"} {
		want := `exaresil_chaos_injected_total{fault="` + fault + `"} 0`
		if !strings.Contains(body, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, body)
		}
	}
}

// Package chaos is the serving layer's deterministic fault injector
// (introduced in PR 5; see DESIGN.md §10). It models the failure classes
// the source paper's resilience techniques exist to absorb — transient
// slowdowns, request loss, and mid-job process crashes — at the service
// tier, following the fault-injection verification pattern of Hukerikar
// & Engelmann's resilience pattern language (arXiv:1710.09074): a
// resilience mechanism is only trusted once it has been exercised
// against the faults it claims to mask.
//
// An Injector draws from a seed-driven uniform stream (one splitmix64
// substream per decision, via internal/rng) and injects four fault
// kinds at configurable rates:
//
//   - latency: sleep before handling an HTTP request
//   - error: answer an HTTP request with a synthetic 500
//   - reset: abort the HTTP connection mid-request (client sees EOF/RST)
//   - crash: kill a running job after a set number of grid cells, via
//     the serve.Config.CrashHook contract
//
// The decision sequence for a given seed is fixed; which concurrent
// request consumes which decision depends on arrival interleaving, so
// totals — not per-request outcomes — are what a soak asserts.
// /healthz and /metrics are exempt from HTTP-level faults so probes and
// scrapes stay usable while everything else burns.
//
// Every injected fault increments exaresil_chaos_injected_total{fault=...},
// wired into cmd/exaserve behind the -chaos flag and hammered end to end
// by scripts/chaos_soak.sh.
package chaos

package chaos

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"exaresil/internal/obs"
	"exaresil/internal/rng"
)

// Config sets the injector's fault rates. All rates are probabilities in
// [0, 1]; the zero value injects nothing.
type Config struct {
	// Seed drives the decision stream; equal seeds give equal decision
	// sequences.
	Seed uint64
	// LatencyRate is the fraction of HTTP requests delayed by Latency.
	LatencyRate float64
	// Latency is the injected delay (default 50ms when LatencyRate > 0).
	Latency time.Duration
	// ErrorRate is the fraction of HTTP requests answered with a
	// synthetic 500 before reaching the service.
	ErrorRate float64
	// ResetRate is the fraction of HTTP requests whose connection is
	// aborted mid-request (the client sees EOF or a TCP reset). Error and
	// reset are mutually exclusive per request; their rates must sum to
	// at most 1.
	ResetRate float64
	// CrashRate is the fraction of job executions killed mid-run (see
	// Crash and serve.Config.CrashHook).
	CrashRate float64
	// CrashCells bounds how many grid cells an execution may finish
	// before an injected crash fires: the crash point is drawn uniformly
	// from [1, CrashCells] (default 3).
	CrashCells int
}

// withDefaults fills the defaulted knobs.
func (c Config) withDefaults() Config {
	if c.Latency <= 0 {
		c.Latency = 50 * time.Millisecond
	}
	if c.CrashCells <= 0 {
		c.CrashCells = 3
	}
	return c
}

// Validate reports whether the rates are usable.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"latency", c.LatencyRate}, {"error", c.ErrorRate}, {"reset", c.ResetRate}, {"crash", c.CrashRate}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("chaos: %s rate %v outside [0, 1]", r.name, r.v)
		}
	}
	if c.ErrorRate+c.ResetRate > 1 {
		return fmt.Errorf("chaos: error rate %v + reset rate %v exceeds 1", c.ErrorRate, c.ResetRate)
	}
	return nil
}

// Injector injects faults per its Config. Safe for concurrent use.
type Injector struct {
	cfg Config
	seq atomic.Uint64

	latency *obs.Counter
	errors  *obs.Counter
	resets  *obs.Counter
	crashes *obs.Counter
}

// New validates cfg and builds an injector, registering the
// exaresil_chaos_* families on reg (nil disables metrics, not faults).
func New(cfg Config, reg *obs.Registry) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	const name, help = "exaresil_chaos_injected_total", "faults injected by kind"
	return &Injector{
		cfg:     cfg,
		latency: reg.Counter(name, help, obs.L("fault", "latency")),
		errors:  reg.Counter(name, help, obs.L("fault", "error")),
		resets:  reg.Counter(name, help, obs.L("fault", "reset")),
		crashes: reg.Counter(name, help, obs.L("fault", "crash")),
	}, nil
}

// roll returns the next value of the seeded uniform decision stream.
func (in *Injector) roll() float64 {
	return rng.Stream(in.cfg.Seed, in.seq.Add(1)).Float64()
}

// exemptPath reports whether an HTTP path is spared from fault injection
// so health probes and metric scrapes stay usable under chaos.
func exemptPath(path string) bool {
	return path == "/healthz" || path == "/metrics"
}

// Middleware wraps an HTTP handler with latency, error, and reset
// injection. Faults fire before the request reaches next, modeling
// failures between the client and a healthy worker.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exemptPath(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		if in.cfg.LatencyRate > 0 && in.roll() < in.cfg.LatencyRate {
			in.latency.Inc()
			time.Sleep(in.cfg.Latency)
		}
		if in.cfg.ResetRate > 0 || in.cfg.ErrorRate > 0 {
			switch v := in.roll(); {
			case v < in.cfg.ResetRate:
				in.resets.Inc()
				// net/http aborts the connection without a reply; the
				// client observes EOF or a TCP reset.
				panic(http.ErrAbortHandler)
			case v < in.cfg.ResetRate+in.cfg.ErrorRate:
				in.errors.Inc()
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusInternalServerError)
				fmt.Fprintln(w, `{"error":"chaos: injected server error"}`)
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// Crash implements the serve.Config.CrashHook contract: it decides
// whether the execution that is about to start should suffer an injected
// worker crash, and after how many freshly computed grid cells. Exhibits
// without grid cells never reach a crash point — like a real crash
// landing after the process already wrote its result.
func (in *Injector) Crash() (afterCells int, ok bool) {
	if in.cfg.CrashRate <= 0 || in.roll() >= in.cfg.CrashRate {
		return 0, false
	}
	in.crashes.Inc()
	return 1 + int(in.roll()*float64(in.cfg.CrashCells)), true
}

// Package stats provides the small set of statistical tools the studies
// need: streaming accumulators for mean and standard deviation (Welford's
// algorithm, numerically stable over the hundreds of trials each figure
// averages), summaries, and confidence intervals.
package stats

import (
	"fmt"
	"math"
)

// Accumulator computes running mean and variance using Welford's online
// algorithm. The zero value is an empty accumulator ready for use.
type Accumulator struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddAll folds a batch of observations.
func (a *Accumulator) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// Merge folds another accumulator into this one (Chan et al.'s parallel
// variance combination), letting worker goroutines accumulate privately
// and combine at the end.
func (a *Accumulator) Merge(b Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	na, nb := float64(a.n), float64(b.n)
	delta := b.mean - a.mean
	total := na + nb
	a.m2 += b.m2 + delta*delta*na*nb/total
	a.mean += delta * nb / total
	a.n += b.n
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
}

// N reports the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean reports the sample mean (zero for an empty accumulator).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance reports the unbiased sample variance.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev reports the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min reports the smallest observation (zero for an empty accumulator).
func (a *Accumulator) Min() float64 { return a.min }

// Max reports the largest observation (zero for an empty accumulator).
func (a *Accumulator) Max() float64 { return a.max }

// StdErr reports the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// CI95 reports the half-width of a normal-approximation 95% confidence
// interval for the mean. With the >= 50 trials the studies use, the normal
// approximation is adequate.
func (a *Accumulator) CI95() float64 { return 1.96 * a.StdErr() }

// Summary freezes an accumulator into a value type for reports.
type Summary struct {
	// N is the observation count.
	N int
	// Mean, StdDev, Min and Max summarize the sample.
	Mean, StdDev, Min, Max float64
	// CI95 is the 95% confidence half-width of the mean.
	CI95 float64
}

// Summarize freezes the accumulator.
func (a *Accumulator) Summarize() Summary {
	return Summary{
		N:      a.n,
		Mean:   a.mean,
		StdDev: a.StdDev(),
		Min:    a.min,
		Max:    a.max,
		CI95:   a.CI95(),
	}
}

// String renders the summary as "mean ± std (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.3g (n=%d)", s.Mean, s.StdDev, s.N)
}

package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyAccumulator(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.StdDev() != 0 || a.CI95() != 0 {
		t.Error("empty accumulator should report zeros")
	}
}

func TestSingleObservation(t *testing.T) {
	var a Accumulator
	a.Add(7)
	if a.N() != 1 || a.Mean() != 7 || a.Variance() != 0 {
		t.Errorf("single observation: n=%d mean=%v var=%v", a.N(), a.Mean(), a.Variance())
	}
	if a.Min() != 7 || a.Max() != 7 {
		t.Error("min/max wrong for single observation")
	}
}

func TestKnownMoments(t *testing.T) {
	var a Accumulator
	a.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if a.Mean() != 5 {
		t.Errorf("mean = %v, want 5", a.Mean())
	}
	// Sample variance of the classic dataset: sum sq dev = 32, n-1 = 7.
	if got, want := a.Variance(), 32.0/7; math.Abs(got-want) > 1e-12 {
		t.Errorf("variance = %v, want %v", got, want)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestWelfordNumericalStability(t *testing.T) {
	// Classic catastrophic-cancellation case: large offset, tiny spread.
	var a Accumulator
	for _, x := range []float64{1e9 + 4, 1e9 + 7, 1e9 + 13, 1e9 + 16} {
		a.Add(x)
	}
	if got, want := a.Variance(), 30.0; math.Abs(got-want) > 1e-6 {
		t.Errorf("variance = %v, want %v (stability loss)", got, want)
	}
}

func TestMergeMatchesSequential(t *testing.T) {
	prop := func(xs []float64, split uint8) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true
			}
		}
		var whole Accumulator
		whole.AddAll(xs)

		k := 0
		if len(xs) > 0 {
			k = int(split) % (len(xs) + 1)
		}
		var left, right Accumulator
		left.AddAll(xs[:k])
		right.AddAll(xs[k:])
		left.Merge(right)

		if left.N() != whole.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		tol := 1e-9 * math.Max(1, math.Abs(whole.Mean()))
		if math.Abs(left.Mean()-whole.Mean()) > tol {
			return false
		}
		vtol := 1e-6 * math.Max(1, whole.Variance())
		return math.Abs(left.Variance()-whole.Variance()) <= vtol &&
			left.Min() == whole.Min() && left.Max() == whole.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMergeChainMatchesSequential(t *testing.T) {
	// Chained merges with empty chunks interleaved, the shape worker pools
	// actually produce: some workers never receive a trial. All-negative
	// samples make a leaked zero-value max (and all-positive a leaked
	// zero-value min) visible, since the true extrema never equal 0.
	prop := func(xs []float64, cuts [4]uint8) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true
			}
			// Shift everything strictly negative.
			xs[i] = -1 - math.Abs(x)
		}
		var whole Accumulator
		whole.AddAll(xs)

		// Split xs into 5 chunks at the (sorted) cut points; repeated cut
		// points yield empty chunks in the middle of the chain.
		bounds := make([]int, 0, 6)
		bounds = append(bounds, 0)
		for _, c := range cuts {
			if len(xs) == 0 {
				bounds = append(bounds, 0)
			} else {
				bounds = append(bounds, int(c)%(len(xs)+1))
			}
		}
		bounds = append(bounds, len(xs))
		sort.Ints(bounds)

		var merged Accumulator
		for i := 0; i+1 < len(bounds); i++ {
			var chunk Accumulator
			chunk.AddAll(xs[bounds[i]:bounds[i+1]])
			merged.Merge(chunk)
		}

		if merged.N() != whole.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
			return false
		}
		if merged.Max() >= 0 {
			return false // a zero value leaked into the extrema
		}
		tol := 1e-9 * math.Max(1, math.Abs(whole.Mean()))
		vtol := 1e-6 * math.Max(1, whole.Variance())
		return math.Abs(merged.Mean()-whole.Mean()) <= tol &&
			math.Abs(merged.Variance()-whole.Variance()) <= vtol
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMergeEmptySides(t *testing.T) {
	var a, b Accumulator
	a.AddAll([]float64{1, 2, 3})
	saved := a.Summarize()
	a.Merge(b) // empty right side
	if a.Summarize() != saved {
		t.Error("merging an empty accumulator changed the result")
	}
	b.Merge(a) // empty left side
	if b.Summarize() != saved {
		t.Error("merging into an empty accumulator lost data")
	}
}

func TestCI95(t *testing.T) {
	var a Accumulator
	for i := 0; i < 100; i++ {
		a.Add(float64(i % 2)) // mean 0.5, sd ~0.5025
	}
	want := 1.96 * a.StdDev() / 10
	if math.Abs(a.CI95()-want) > 1e-12 {
		t.Errorf("CI95 = %v, want %v", a.CI95(), want)
	}
}

func TestSummaryString(t *testing.T) {
	var a Accumulator
	a.AddAll([]float64{1, 2, 3})
	s := a.Summarize().String()
	if s == "" {
		t.Error("empty summary string")
	}
}

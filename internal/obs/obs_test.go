package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsFullyDisabled(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Error("nil registry reports enabled")
	}
	c := r.Counter("c", "")
	fc := r.FloatCounter("f", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", DepthBuckets)
	// None of these may panic or record anything.
	c.Inc()
	c.Add(7)
	fc.Add(1.5)
	g.Set(3)
	g.Add(-1)
	g.SetMax(99)
	h.Observe(12)
	if c.Value() != 0 || fc.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics recorded values")
	}
	if bounds, cum := h.Buckets(); bounds != nil || cum != nil {
		t.Error("nil histogram returned buckets")
	}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil WriteProm = (%q, %v)", buf.String(), err)
	}
	if s := r.Snapshot(); len(s) != 0 {
		t.Errorf("nil Snapshot = %v", s)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "help", L("kind", "a"))
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	fc := r.FloatCounter("time_minutes_total", "")
	fc.Add(1.25)
	fc.Add(0.75)
	if fc.Value() != 2 {
		t.Errorf("float counter = %v, want 2", fc.Value())
	}
	g := r.Gauge("depth", "")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("gauge = %d, want 7", g.Value())
	}
	g.SetMax(5) // lower: no effect
	if g.Value() != 7 {
		t.Errorf("SetMax lowered the gauge to %d", g.Value())
	}
	g.SetMax(20)
	if g.Value() != 20 {
		t.Errorf("SetMax = %d, want 20", g.Value())
	}
}

func TestGetOrCreateSharesStorage(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same", "h", L("x", "1"))
	b := r.Counter("same", "h", L("x", "1"))
	if a != b {
		t.Error("same (name, labels) produced distinct counters")
	}
	other := r.Counter("same", "h", L("x", "2"))
	if a == other {
		t.Error("distinct labels shared a counter")
	}
	// Label order must not matter.
	p := r.Gauge("g", "", L("a", "1"), L("b", "2"))
	q := r.Gauge("g", "", L("b", "2"), L("a", "1"))
	if p != q {
		t.Error("label order split the series")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestFloatCounterNegativePanics(t *testing.T) {
	r := NewRegistry()
	fc := r.FloatCounter("m", "")
	defer func() {
		if recover() == nil {
			t.Error("negative float add did not panic")
		}
	}()
	fc.Add(-1)
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("depth", "", []float64{1, 4, 16})
	for _, v := range []float64{0, 1, 2, 4, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 112 {
		t.Errorf("sum = %v, want 112", h.Sum())
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("buckets = (%v, %v)", bounds, cum)
	}
	// <=1: {0,1}; <=4: +{2,4}; <=16: +{5}; +Inf: +{100}.
	want := []uint64{2, 4, 5, 6}
	for i, c := range cum {
		if c != want[i] {
			t.Errorf("cumulative[%d] = %d, want %d", i, c, want[i])
		}
	}
}

func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	fc := r.FloatCounter("f", "")
	h := r.Histogram("h", "", []float64{10})
	g := r.Gauge("g", "")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				fc.Add(0.5)
				h.Observe(float64(i % 20))
				g.SetMax(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if fc.Value() != workers*per/2 {
		t.Errorf("float counter = %v, want %d", fc.Value(), workers*per/2)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if g.Value() != workers*per-1 {
		t.Errorf("max gauge = %d, want %d", g.Value(), workers*per-1)
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("exa_events_total", "events fired", L("layer", "des")).Add(3)
	r.FloatCounter("exa_time_minutes_total", "time split", L("phase", "checkpoint")).Add(2.5)
	r.Gauge("exa_depth_peak", "peak depth").Set(17)
	h := r.Histogram("exa_util", "utilization", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP exa_events_total events fired",
		"# TYPE exa_events_total counter",
		`exa_events_total{layer="des"} 3`,
		`exa_time_minutes_total{phase="checkpoint"} 2.5`,
		"# TYPE exa_depth_peak gauge",
		"exa_depth_peak 17",
		"# TYPE exa_util histogram",
		`exa_util_bucket{le="0.5"} 1`,
		`exa_util_bucket{le="1"} 2`,
		`exa_util_bucket{le="+Inf"} 2`,
		"exa_util_sum 1",
		"exa_util_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic: a second render must be byte-identical.
	var again bytes.Buffer
	if err := r.WriteProm(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != out {
		t.Error("exposition is not deterministic across renders")
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", L("k", "v")).Add(2)
	h := r.Histogram("h", "", []float64{1})
	h.Observe(0.5)
	h.Observe(3)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Metrics []MetricSnapshot `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded.Metrics) != 2 {
		t.Fatalf("snapshot has %d metrics, want 2", len(decoded.Metrics))
	}
	c := decoded.Metrics[0]
	if c.Name != "c_total" || c.Value != 2 || c.Labels["k"] != "v" {
		t.Errorf("counter snapshot = %+v", c)
	}
	hs := decoded.Metrics[1]
	if hs.Count != 2 || hs.Sum != 3.5 || len(hs.Buckets) != 2 {
		t.Errorf("histogram snapshot = %+v", hs)
	}
	if hs.Buckets[1].UpperBound != "+Inf" || hs.Buckets[1].Count != 2 {
		t.Errorf("+Inf bucket = %+v", hs.Buckets[1])
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "", L("v", "a\"b\\c\nd")).Inc()
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `c{v="a\"b\\c\nd"} 1`) {
		t.Errorf("escaping wrong: %s", buf.String())
	}
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncEnabled(b *testing.B) {
	c := NewRegistry().Counter("c", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	h := NewRegistry().Histogram("h", "", DepthBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 600))
	}
}

package obs

import "testing"

// TestDisabledHooksAllocationFree is the micro-guard behind the metrics
// fast path: every hook a simulation hot loop may call on a disabled (nil)
// registry or metric must compile down to a nil check and nothing else —
// zero allocations per call. scripts/check.sh runs this under -race; if a
// future change routes the disabled path through an interface box or a
// lazily built label slice, the run count here turns it into a hard
// failure instead of a silent allocs/op regression in BENCH_results.json.
func TestDisabledHooksAllocationFree(t *testing.T) {
	var (
		r *Registry
		c *Counter
		f *FloatCounter
		g *Gauge
		h *Histogram
	)
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		f.Add(1.5)
		g.Set(7)
		g.Add(-2)
		g.SetMax(9)
		h.Observe(0.25)
		_ = c.Value()
		_ = f.Value()
		_ = g.Value()
		_ = h.Count()
	}); allocs != 0 {
		t.Fatalf("disabled metric hooks allocate %v times per run, want 0", allocs)
	}
	// Series lookups against a nil registry are on the same hot path
	// (executors re-resolve metrics per run): they must return nil without
	// touching the heap.
	if allocs := testing.AllocsPerRun(1000, func() {
		if r.Counter("c", "") != nil || r.FloatCounter("f", "") != nil ||
			r.Gauge("g", "") != nil || r.Histogram("h", "", nil) != nil {
			t.Fatal("nil registry built a metric")
		}
	}); allocs != 0 {
		t.Fatalf("nil-registry lookups allocate %v times per run, want 0", allocs)
	}
}

// Package obs is the simulator's observability layer: a zero-dependency
// metrics registry (counters, gauges, histograms with fixed bucket layouts)
// cheap enough to live inside the discrete-event hot loop.
//
// Two properties shape the design:
//
//   - Disabled must be free. Every constructor on a nil *Registry returns a
//     nil metric, and every operation on a nil metric is an inlinable
//     nil-check no-op. Instrumented code therefore never branches on a
//     "metrics enabled?" flag of its own: it unconditionally calls
//     m.Dispatched.Inc() and pays one predictable test-and-return when the
//     study runs without observability (the common case for exhibits, whose
//     CSVs must stay bit-identical and whose wall time is the benchmark).
//
//   - Enabled must not allocate per event. All observation paths are atomic
//     adds (CAS loops for float sums) on storage allocated once at
//     registration. Registration itself is get-or-create under a mutex, so
//     layers re-registering the same series (one cluster.Run per arrival
//     pattern, say) share storage instead of duplicating it.
//
// Metrics are identified by name plus an ordered set of constant labels,
// following the Prometheus data model; WriteProm renders the text
// exposition format and Snapshot/WriteJSON a structured snapshot, so a run
// can be scraped, diffed, or cross-checked (cmd/exacheck uses the
// resilience time-split metrics as a correctness oracle against the
// execution traces).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant name=value pair attached to a metric series.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Kind classifies a metric family.
type Kind int

// The metric kinds of the registry.
const (
	// KindCounter is a monotonically increasing value (integer or float).
	KindCounter Kind = iota
	// KindGauge is a value that can move both ways (or track a maximum).
	KindGauge
	// KindHistogram is a fixed-bucket distribution with sum and count.
	KindHistogram
)

// String names the kind as the Prometheus TYPE line expects.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Fixed bucket layouts shared by the instrumented layers, so dashboards and
// the DESIGN.md documentation agree on one vocabulary.
var (
	// DepthBuckets covers queue and event-heap depths (powers of two).
	DepthBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	// FractionBuckets covers ratios in [0, 1] such as node utilization.
	FractionBuckets = []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0}
	// MinuteBuckets covers simulated durations from a minute to a year.
	MinuteBuckets = []float64{1, 10, 60, 240, 1440, 10080, 43200, 525600}
	// LatencyBuckets covers wall-clock seconds from sub-millisecond HTTP
	// handling to multi-minute experiment jobs (internal/serve).
	LatencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2, 10, 60, 300}
)

// metric is the interface shared by all series stored in a family.
type metric interface {
	labelSet() []Label
}

// family is one named group of series sharing help text, kind, and (for
// histograms) bucket bounds.
type family struct {
	name   string
	help   string
	kind   Kind
	bounds []float64
	bySig  map[string]metric
}

// Registry holds metric families. The zero value is not used directly;
// construct with NewRegistry. A nil *Registry is the disabled registry:
// every constructor returns nil and every observation is a no-op.
//
// Registration is mutex-guarded; observation is lock-free. A Registry is
// safe for concurrent use by the parallel study drivers.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family

	// memo caches arbitrary registration bundles (see Memo). It has its
	// own lock so a memoized build may itself register series or consult
	// other memo keys without deadlocking.
	memoMu sync.RWMutex
	memo   map[string]any
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}, memo: map[string]any{}}
}

// Memo returns the value cached under key, calling build to produce it on
// first use. Layers use it to register a whole metrics bundle exactly once
// per registry instead of re-walking every get-or-create lookup on each
// simulation run: the repeat path is one read-locked map hit.
//
// A nil registry returns nil without calling build, matching the
// disabled-bundle convention of the constructors. build runs outside the
// memo lock, so concurrent first calls may build twice; the first stored
// value wins, which is sound because bundles built from the same registry
// share all series storage anyway.
func (r *Registry) Memo(key string, build func() any) any {
	if r == nil {
		return nil
	}
	r.memoMu.RLock()
	v, ok := r.memo[key]
	r.memoMu.RUnlock()
	if ok {
		return v
	}
	built := build()
	r.memoMu.Lock()
	if v, ok = r.memo[key]; ok {
		built = v
	} else {
		r.memo[key] = built
	}
	r.memoMu.Unlock()
	return built
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// signature serializes a sorted label set into a map key.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

// sortLabels returns a sorted copy of the label set.
func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// lookup finds or creates the family and returns the series for the label
// set, creating it via make when absent. It panics when a name is reused
// with a different kind or bucket layout: that is always a wiring bug, and
// silently splitting the family would corrupt the exposition.
func (r *Registry) lookup(name, help string, kind Kind, bounds []float64, labels []Label, make func([]Label) metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, bySig: map[string]metric{}}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v, was %v", name, kind, f.kind))
	}
	sorted := sortLabels(labels)
	sig := signature(sorted)
	if m, ok := f.bySig[sig]; ok {
		return m
	}
	m := make(sorted)
	f.bySig[sig] = m
	return m
}

// Counter returns the integer counter series for (name, labels), creating
// it on first use. A nil registry returns a nil counter whose operations
// are no-ops.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindCounter, nil, labels, func(l []Label) metric {
		return &Counter{lbls: l}
	}).(*Counter)
}

// FloatCounter returns the float counter series for (name, labels). It
// shares a family namespace with Counter: pick one flavor per name.
func (r *Registry) FloatCounter(name, help string, labels ...Label) *FloatCounter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindCounter, nil, labels, func(l []Label) metric {
		return &FloatCounter{lbls: l}
	}).(*FloatCounter)
}

// Gauge returns the gauge series for (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindGauge, nil, labels, func(l []Label) metric {
		return &Gauge{lbls: l}
	}).(*Gauge)
}

// Histogram returns the histogram series for (name, labels) with the given
// bucket upper bounds (ascending; a +Inf bucket is implicit). The bounds of
// the first registration win for the whole family.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindHistogram, bounds, labels, func(l []Label) metric {
		h := &Histogram{lbls: l, bounds: append([]float64(nil), bounds...)}
		h.counts = make([]atomic.Uint64, len(bounds)+1)
		return h
	}).(*Histogram)
}

// Counter is a monotonically increasing integer. The nil counter is the
// disabled counter: Inc and Add do nothing, Value reports zero.
type Counter struct {
	lbls []Label
	v    atomic.Uint64
}

func (c *Counter) labelSet() []Label { return c.lbls }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reports the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// FloatCounter is a monotonically increasing float64, accumulated with a
// compare-and-swap loop so concurrent adds never lose updates. The nil
// FloatCounter is disabled.
type FloatCounter struct {
	lbls []Label
	bits atomic.Uint64
}

func (c *FloatCounter) labelSet() []Label { return c.lbls }

// Add accumulates v. Negative additions panic: the series is a counter, and
// a negative delta always indicates an accounting bug upstream.
func (c *FloatCounter) Add(v float64) {
	if c == nil || v == 0 {
		return
	}
	if v < 0 {
		panic(fmt.Sprintf("obs: negative add %v to a float counter", v))
	}
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value reports the accumulated sum.
func (c *FloatCounter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is an instantaneous integer value. The nil gauge is disabled.
type Gauge struct {
	lbls []Label
	v    atomic.Int64
}

func (g *Gauge) labelSet() []Label { return g.lbls }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// SetMax raises the gauge to v if v is larger, making the gauge a
// high-water mark (the DES layer uses this for peak heap depth).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		old := g.v.Load()
		if v <= old || g.v.CompareAndSwap(old, v) {
			return
		}
	}
}

// Value reports the current gauge reading.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution: counts per upper bound (plus an
// implicit +Inf bucket), a total count, and a sum. The nil histogram is
// disabled. Observe is a linear scan over the (short, fixed) bound slice
// and two atomic adds — no allocation.
type Histogram struct {
	lbls    []Label
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func (h *Histogram) labelSet() []Label { return h.lbls }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// NumBuckets reports the number of buckets including the implicit +Inf
// bucket, i.e. len(bounds)+1. It is the required length of the counts
// slice passed to AddBuckets. The nil histogram reports zero.
func (h *Histogram) NumBuckets() int {
	if h == nil {
		return 0
	}
	return len(h.counts)
}

// FindBucket returns the bucket index Observe(v) would increment, in
// [0, NumBuckets()). It lets hot loops tally observations into a local
// array and merge once via AddBuckets instead of paying per-event atomics.
// The nil histogram returns 0.
func (h *Histogram) FindBucket(v float64) int {
	if h == nil {
		return 0
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	return i
}

// AddBuckets merges a locally tallied batch into the histogram: counts[i]
// observations in bucket i (indexed as FindBucket) and sum as their total.
// One AddBuckets equals the per-event Observe sequence it replaces — same
// bucket counts, total count, and sum — at the cost of len(counts) atomic
// adds and a single CAS instead of three atomics per event. It panics when
// len(counts) != NumBuckets(); the nil histogram ignores the batch.
func (h *Histogram) AddBuckets(counts []uint64, sum float64) {
	if h == nil {
		return
	}
	if len(counts) != len(h.counts) {
		panic(fmt.Sprintf("obs: AddBuckets with %d buckets, histogram has %d", len(counts), len(h.counts)))
	}
	var total uint64
	for i, n := range counts {
		if n != 0 {
			h.counts[i].Add(n)
			total += n
		}
	}
	if total == 0 && sum == 0 {
		return
	}
	h.count.Add(total)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+sum)) {
			return
		}
	}
}

// Count reports how many observations the histogram holds.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Buckets reports the cumulative count at each bound (plus +Inf last),
// matching the Prometheus bucket semantics.
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64) {
	if h == nil {
		return nil, nil
	}
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]uint64, len(h.counts))
	var running uint64
	for i := range h.counts {
		running += h.counts[i].Load()
		cumulative[i] = running
	}
	return bounds, cumulative
}

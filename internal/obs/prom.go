package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// sortedFamilies snapshots the family table in name order; series within a
// family are ordered by label signature so the exposition is deterministic
// regardless of registration or goroutine order.
func (r *Registry) sortedFamilies() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries orders one family's series by label signature.
func (f *family) sortedSeries() []metric {
	out := make([]metric, 0, len(f.bySig))
	sigs := make([]string, 0, len(f.bySig))
	for sig := range f.bySig {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		out = append(out, f.bySig[sig])
	}
	return out
}

// escapeLabel escapes a label value for the text exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// promLabels renders a label set as {a="x",b="y"}, with extra appended last
// (the histogram le label); empty sets render as nothing.
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = l.Name + `="` + escapeLabel(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// promFloat renders a float the way Prometheus expects (+Inf, not inf).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// WriteProm renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). A nil registry writes nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, m := range f.sortedSeries() {
			if err := writePromSeries(w, f, m); err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromSeries renders one series of a family.
func writePromSeries(w io.Writer, f *family, m metric) error {
	switch v := m.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(v.lbls), v.Value())
		return err
	case *FloatCounter:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, promLabels(v.lbls), promFloat(v.Value()))
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(v.lbls), v.Value())
		return err
	case *Histogram:
		bounds, cum := v.Buckets()
		for i, c := range cum {
			le := "+Inf"
			if i < len(bounds) {
				le = promFloat(bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, promLabels(v.lbls, L("le", le)), c); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, promLabels(v.lbls), promFloat(v.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, promLabels(v.lbls), v.Count())
		return err
	default:
		return fmt.Errorf("obs: unknown metric type %T", m)
	}
}

// BucketSnapshot is one histogram bucket in a snapshot: the upper bound
// (rendered as Prometheus renders le, so "+Inf" stays representable in
// JSON) and the cumulative count at it.
type BucketSnapshot struct {
	UpperBound string `json:"le"`
	Count      uint64 `json:"count"`
}

// MetricSnapshot is one series frozen at snapshot time.
type MetricSnapshot struct {
	Name    string            `json:"name"`
	Kind    string            `json:"kind"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value"`
	Sum     float64           `json:"sum,omitempty"`
	Count   uint64            `json:"count,omitempty"`
	Buckets []BucketSnapshot  `json:"buckets,omitempty"`
}

// Snapshot freezes every series. Ordering matches WriteProm (name, then
// label signature). A nil registry snapshots empty.
func (r *Registry) Snapshot() []MetricSnapshot {
	var out []MetricSnapshot
	for _, f := range r.sortedFamilies() {
		for _, m := range f.sortedSeries() {
			s := MetricSnapshot{Name: f.name, Kind: f.kind.String()}
			if lbls := m.labelSet(); len(lbls) > 0 {
				s.Labels = make(map[string]string, len(lbls))
				for _, l := range lbls {
					s.Labels[l.Name] = l.Value
				}
			}
			switch v := m.(type) {
			case *Counter:
				s.Value = float64(v.Value())
			case *FloatCounter:
				s.Value = v.Value()
			case *Gauge:
				s.Value = float64(v.Value())
			case *Histogram:
				bounds, cum := v.Buckets()
				s.Sum = v.Sum()
				s.Count = v.Count()
				s.Buckets = make([]BucketSnapshot, len(cum))
				for i, c := range cum {
					le := "+Inf"
					if i < len(bounds) {
						le = promFloat(bounds[i])
					}
					s.Buckets[i] = BucketSnapshot{UpperBound: le, Count: c}
				}
			}
			out = append(out, s)
		}
	}
	return out
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []MetricSnapshot `json:"metrics"`
	}{Metrics: r.Snapshot()})
}

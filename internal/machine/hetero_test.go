package machine

import (
	"math"
	"strings"
	"testing"

	"exaresil/internal/units"
)

func heteroConfig() Config {
	c := Exascale()
	c.Classes = []NodeClass{
		{Name: "std", Count: 100000, Speed: 1.0, MTBF: 10 * units.Year},
		{Name: "fast", Count: 20000, Speed: 1.25, MTBF: 5 * units.Year, Memory: 256 * units.Gigabyte},
	}
	return c
}

func TestHeterogeneous(t *testing.T) {
	if Exascale().Heterogeneous() {
		t.Error("Exascale should be homogeneous")
	}
	if !heteroConfig().Heterogeneous() {
		t.Error("config with classes should be heterogeneous")
	}
}

func TestValidateClasses(t *testing.T) {
	if err := heteroConfig().Validate(); err != nil {
		t.Fatalf("valid hetero config rejected: %v", err)
	}
	mutations := map[string]func(*Config){
		"no name":        func(c *Config) { c.Classes[0].Name = "" },
		"duplicate name": func(c *Config) { c.Classes[1].Name = c.Classes[0].Name },
		"zero count":     func(c *Config) { c.Classes[0].Count = 0 },
		"zero speed":     func(c *Config) { c.Classes[0].Speed = 0 },
		"zero mtbf":      func(c *Config) { c.Classes[0].MTBF = 0 },
		"negative mem":   func(c *Config) { c.Classes[0].Memory = -1 },
		"bad sum":        func(c *Config) { c.Classes[0].Count++ },
	}
	for name, mutate := range mutations {
		c := heteroConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestClassView(t *testing.T) {
	c := heteroConfig()
	v := c.ClassView(1)
	if v.Heterogeneous() {
		t.Error("class view must be homogeneous")
	}
	if v.Nodes != 20000 {
		t.Errorf("view nodes = %d, want 20000", v.Nodes)
	}
	if v.MTBF != 5*units.Year {
		t.Errorf("view MTBF = %v, want 5y", v.MTBF)
	}
	if v.Node.Memory != 256*units.Gigabyte {
		t.Errorf("view memory = %v, want class override 256GB", v.Node.Memory)
	}
	if !strings.Contains(v.Name, "fast") {
		t.Errorf("view name %q should carry the class name", v.Name)
	}
	if err := v.Validate(); err != nil {
		t.Errorf("class view invalid: %v", err)
	}
	// Without a memory override the base node's RAM carries over.
	if got := c.ClassView(0).Node.Memory; got != c.Node.Memory {
		t.Errorf("class without override got memory %v, want base %v", got, c.Node.Memory)
	}
}

func TestFleetFailureRate(t *testing.T) {
	homo := Exascale()
	if got, want := homo.FleetFailureRate(), homo.SystemFailureRate(homo.Nodes); got != want {
		t.Errorf("homogeneous fleet rate %v != system rate %v", got, want)
	}
	c := heteroConfig()
	want := 100000.0/float64(10*units.Year) + 20000.0/float64(5*units.Year)
	if got := float64(c.FleetFailureRate()); math.Abs(got-want) > want*1e-12 {
		t.Errorf("fleet rate = %v, want %v", got, want)
	}
	// The fast partition drags the fleet below the uniform-10y baseline.
	if float64(c.FleetFailureRate()) <= float64(homo.SystemFailureRate(homo.Nodes)) {
		t.Error("hetero fleet with a fragile class should fail more often than the uniform fleet")
	}
}

func TestExascaleHetero(t *testing.T) {
	c := ExascaleHetero()
	if err := c.Validate(); err != nil {
		t.Fatalf("ExascaleHetero invalid: %v", err)
	}
	base := Exascale()
	if c.Nodes != base.Nodes {
		t.Errorf("nodes = %d, want the homogeneous %d so workloads transfer", c.Nodes, base.Nodes)
	}
	total := 0
	for _, cl := range c.Classes {
		total += cl.Count
	}
	if total != c.Nodes {
		t.Errorf("class counts sum to %d, want %d", total, c.Nodes)
	}
	if c.Name == base.Name {
		t.Error("hetero variant should be distinguishable by name")
	}
}

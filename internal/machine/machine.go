// Package machine models the hardware of the simulated computing platform:
// node counts, per-node compute and memory, memory bandwidth, the
// interconnect, and component reliability.
//
// The paper derives its exascale configuration from China's Sunway
// TaihuLight (the #1 TOP500 system of November 2016) by scaling the
// per-node core count and memory capacity by roughly 4x, and its network
// from a projected "NDR InfiniBand" fabric. Both the contemporary machine
// and the projected exascale machine are provided as named configurations;
// every study consumes only the scalar parameters held here, so alternative
// machines are a matter of constructing a different Config.
package machine

import (
	"errors"
	"fmt"

	"exaresil/internal/units"
)

// Network describes the system interconnect as the paper's communication
// model sees it: a latency, an aggregate link bandwidth, and the number of
// simultaneous connections each switch sustains.
type Network struct {
	// Latency is the one-way message latency L.
	Latency units.Duration
	// Bandwidth is the link bandwidth B_N.
	Bandwidth units.Bandwidth
	// SwitchConnections is N_S, the maximum number of simultaneous
	// connections at each switch. Checkpoint traffic to the parallel file
	// system serializes over these connections (Eq. 3).
	SwitchConnections int
}

// Node describes one system node.
type Node struct {
	// Cores is the number of processing elements on the node.
	Cores int
	// TFLOPS is the node's peak compute throughput in teraFLOPS.
	TFLOPS float64
	// Memory is the node's RAM capacity.
	Memory units.DataSize
	// MemoryBandwidth is B_M, the aggregate memory bandwidth used for
	// in-RAM checkpoints (Eqs. 5 and 6).
	MemoryBandwidth units.Bandwidth
}

// Config is a complete machine description.
type Config struct {
	// Name identifies the configuration in reports.
	Name string
	// Nodes is the machine's node count.
	Nodes int
	// Node describes each (homogeneous) node.
	Node Node
	// Network describes the interconnect.
	Network Network
	// MTBF is M_n, the mean time between failures of a single node.
	MTBF units.Duration
	// Classes, when non-empty, partitions the fleet into heterogeneous
	// node classes (speed, memory, and per-class reliability overlaying
	// the base Node); their counts must sum to Nodes. Empty means the
	// homogeneous machine the paper models — every existing study sees
	// exactly the machine it always did. See hetero.go.
	Classes []NodeClass
}

// Exascale returns the paper's projected exascale machine: 120,000 nodes of
// 1028 cores and ~12 TFLOPS each (4x the TaihuLight node), 128 GB of RAM
// per node behind a 320 GB/s hybrid-memory-cube interface, and an NDR
// InfiniBand-class network (L = 0.5 us, B_N = 600 GB/s, N_S = 12). The
// default node MTBF is ten years; Section V's sensitivity study lowers it
// to 2.5 years via WithMTBF.
func Exascale() Config {
	return Config{
		Name:  "exascale-120k",
		Nodes: 120000,
		Node: Node{
			Cores:           1028,
			TFLOPS:          12.0,
			Memory:          128 * units.Gigabyte,
			MemoryBandwidth: 320 * units.GBPerSecond,
		},
		Network: Network{
			Latency:           units.Duration(0.5) * units.Microsecond,
			Bandwidth:         600 * units.GBPerSecond,
			SwitchConnections: 12,
		},
		MTBF: 10 * units.Year,
	}
}

// SunwayTaihuLight returns the contemporary reference machine the exascale
// projection is scaled from: 40,960 nodes of 260 cores (~3.1 TFLOPS) and
// 32 GB of DDR3 each.
func SunwayTaihuLight() Config {
	return Config{
		Name:  "sunway-taihulight",
		Nodes: 40960,
		Node: Node{
			Cores:           260,
			TFLOPS:          3.06,
			Memory:          32 * units.Gigabyte,
			MemoryBandwidth: 136 * units.GBPerSecond,
		},
		Network: Network{
			Latency:           units.Duration(1) * units.Microsecond,
			Bandwidth:         16 * units.GBPerSecond,
			SwitchConnections: 12,
		},
		MTBF: 10 * units.Year,
	}
}

// WithMTBF returns a copy of c with the node MTBF replaced. The name gains
// a suffix so reports distinguish sensitivity runs.
func (c Config) WithMTBF(mtbf units.Duration) Config {
	c.MTBF = mtbf
	c.Name = fmt.Sprintf("%s-mtbf-%s", c.Name, mtbf)
	return c
}

// Validate reports whether the configuration is physically meaningful.
func (c Config) Validate() error {
	var errs []error
	if c.Nodes <= 0 {
		errs = append(errs, fmt.Errorf("machine: node count %d must be positive", c.Nodes))
	}
	if c.Node.Cores <= 0 {
		errs = append(errs, fmt.Errorf("machine: cores per node %d must be positive", c.Node.Cores))
	}
	if c.Node.TFLOPS <= 0 {
		errs = append(errs, fmt.Errorf("machine: node TFLOPS %v must be positive", c.Node.TFLOPS))
	}
	if c.Node.Memory <= 0 {
		errs = append(errs, fmt.Errorf("machine: node memory %v must be positive", c.Node.Memory))
	}
	if c.Node.MemoryBandwidth <= 0 {
		errs = append(errs, fmt.Errorf("machine: memory bandwidth %v must be positive", c.Node.MemoryBandwidth))
	}
	if c.Network.Latency < 0 {
		errs = append(errs, fmt.Errorf("machine: network latency %v must be non-negative", c.Network.Latency))
	}
	if c.Network.Bandwidth <= 0 {
		errs = append(errs, fmt.Errorf("machine: network bandwidth %v must be positive", c.Network.Bandwidth))
	}
	if c.Network.SwitchConnections <= 0 {
		errs = append(errs, fmt.Errorf("machine: switch connections %d must be positive", c.Network.SwitchConnections))
	}
	if c.MTBF <= 0 {
		errs = append(errs, fmt.Errorf("machine: MTBF %v must be positive", c.MTBF))
	}
	if err := c.validateClasses(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// TotalCores reports the machine's aggregate core count.
func (c Config) TotalCores() int { return c.Nodes * c.Node.Cores }

// PeakPFLOPS reports the machine's aggregate peak throughput in petaFLOPS.
func (c Config) PeakPFLOPS() float64 { return float64(c.Nodes) * c.Node.TFLOPS / 1000 }

// TotalMemory reports the machine's aggregate RAM.
func (c Config) TotalMemory() units.DataSize {
	return c.Node.Memory * units.DataSize(c.Nodes)
}

// NodeFailureRate reports the failure rate of a single node, 1/M_n.
func (c Config) NodeFailureRate() units.Rate {
	return units.RatePer(1, c.MTBF)
}

// SystemFailureRate reports lambda_s = N_s / M_n (Eq. 2) for a given count
// of non-idle nodes. A fully idle machine produces no failures that matter
// to the study, hence rate zero.
func (c Config) SystemFailureRate(activeNodes int) units.Rate {
	if activeNodes <= 0 {
		return 0
	}
	return units.Rate(float64(activeNodes) / float64(c.MTBF))
}

// NodesForFraction reports how many nodes constitute the given fraction of
// the machine (e.g. 0.25 for a quarter-machine application), rounding to
// the nearest whole node but never below one.
func (c Config) NodesForFraction(fraction float64) int {
	if fraction <= 0 {
		return 0
	}
	n := int(float64(c.Nodes)*fraction + 0.5)
	if n < 1 {
		n = 1
	}
	if n > c.Nodes {
		n = c.Nodes
	}
	return n
}

// String summarizes the machine for reports.
func (c Config) String() string {
	return fmt.Sprintf("%s: %d nodes x %d cores (%.3g PFLOPS, %s RAM, MTBF %s)",
		c.Name, c.Nodes, c.Node.Cores, c.PeakPFLOPS(), c.TotalMemory(), c.MTBF)
}

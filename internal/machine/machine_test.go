package machine

import (
	"math"
	"testing"

	"exaresil/internal/units"
)

func TestExascaleMatchesPaper(t *testing.T) {
	c := Exascale()
	if err := c.Validate(); err != nil {
		t.Fatalf("Exascale config invalid: %v", err)
	}
	if c.Nodes != 120000 {
		t.Errorf("nodes = %d, want 120000", c.Nodes)
	}
	if c.Node.Cores != 1028 {
		t.Errorf("cores per node = %d, want 1028", c.Node.Cores)
	}
	// "A system composed of 120,000 of these high performing nodes would
	// perform at an exascale level": 120000 * 12 TFLOPS = 1.44 EFLOPS.
	if got := c.PeakPFLOPS(); math.Abs(got-1440) > 1 {
		t.Errorf("peak = %v PFLOPS, want ~1440", got)
	}
	// 123 million CPU cores at full size per Section V.
	if got := c.TotalCores(); got != 120000*1028 {
		t.Errorf("total cores = %d", got)
	}
	if got := c.TotalCores(); float64(got) < 123e6*0.99 || float64(got) > 124e6 {
		t.Errorf("total cores %d outside paper's ~123 million", got)
	}
	if c.Node.Memory != 128*units.Gigabyte {
		t.Errorf("node memory = %v, want 128GB", c.Node.Memory)
	}
	if c.Node.MemoryBandwidth != 320*units.GBPerSecond {
		t.Errorf("memory bandwidth = %v, want 320 GB/s", c.Node.MemoryBandwidth)
	}
	if c.Network.Bandwidth != 600*units.GBPerSecond {
		t.Errorf("network bandwidth = %v, want 600 GB/s", c.Network.Bandwidth)
	}
	if c.Network.SwitchConnections != 12 {
		t.Errorf("switch connections = %d, want 12", c.Network.SwitchConnections)
	}
	if math.Abs(c.Network.Latency.Seconds()-0.5e-6) > 1e-12 {
		t.Errorf("latency = %v s, want 0.5us", c.Network.Latency.Seconds())
	}
	if c.MTBF != 10*units.Year {
		t.Errorf("MTBF = %v, want 10 years", c.MTBF)
	}
}

func TestSunwayValid(t *testing.T) {
	c := SunwayTaihuLight()
	if err := c.Validate(); err != nil {
		t.Fatalf("Sunway config invalid: %v", err)
	}
	// ~125 PFLOPS peak for the real machine.
	if got := c.PeakPFLOPS(); got < 100 || got > 150 {
		t.Errorf("Sunway peak %v PFLOPS, want ~125", got)
	}
}

func TestWithMTBF(t *testing.T) {
	base := Exascale()
	low := base.WithMTBF(units.Duration(2.5) * units.Year)
	if low.MTBF != units.Duration(2.5)*units.Year {
		t.Errorf("MTBF = %v", low.MTBF)
	}
	if base.MTBF != 10*units.Year {
		t.Error("WithMTBF mutated the receiver")
	}
	if low.Name == base.Name {
		t.Error("WithMTBF should rename the config")
	}
}

func TestValidateCatchesEachField(t *testing.T) {
	mutations := map[string]func(*Config){
		"nodes":       func(c *Config) { c.Nodes = 0 },
		"cores":       func(c *Config) { c.Node.Cores = -1 },
		"tflops":      func(c *Config) { c.Node.TFLOPS = 0 },
		"memory":      func(c *Config) { c.Node.Memory = 0 },
		"membw":       func(c *Config) { c.Node.MemoryBandwidth = 0 },
		"latency":     func(c *Config) { c.Network.Latency = -1 },
		"bandwidth":   func(c *Config) { c.Network.Bandwidth = 0 },
		"connections": func(c *Config) { c.Network.SwitchConnections = 0 },
		"mtbf":        func(c *Config) { c.MTBF = 0 },
	}
	for name, mutate := range mutations {
		c := Exascale()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: invalid config passed validation", name)
		}
	}
}

func TestSystemFailureRate(t *testing.T) {
	c := Exascale()
	// Full system at ten-year MTBF: lambda_s = 120000/(10*525600 min)
	// ~ 0.0228 failures per minute, about one failure every 44 minutes.
	got := c.SystemFailureRate(c.Nodes)
	want := 120000.0 / (10 * 525600)
	if math.Abs(got.PerMinute()-want) > 1e-9 {
		t.Errorf("system failure rate %v, want %v", got.PerMinute(), want)
	}
	mean := got.MeanInterval()
	if mean.Minutes() < 40 || mean.Minutes() > 50 {
		t.Errorf("mean failure interval %v min, want ~44", mean.Minutes())
	}
	if c.SystemFailureRate(0) != 0 {
		t.Error("idle machine should have zero failure rate")
	}
	if c.SystemFailureRate(-5) != 0 {
		t.Error("negative active count should clamp to zero rate")
	}
	// Rate scales linearly with active node count.
	half := c.SystemFailureRate(c.Nodes / 2)
	if math.Abs(half.PerMinute()*2-got.PerMinute()) > 1e-12 {
		t.Error("failure rate is not linear in active nodes")
	}
}

func TestNodeFailureRate(t *testing.T) {
	c := Exascale()
	if got := c.NodeFailureRate().MeanInterval(); math.Abs(got.Years()-10) > 1e-9 {
		t.Errorf("node MTBF round trip: %v years", got.Years())
	}
}

func TestNodesForFraction(t *testing.T) {
	c := Exascale()
	cases := []struct {
		frac float64
		want int
	}{
		{1.0, 120000},
		{0.5, 60000},
		{0.25, 30000},
		{0.01, 1200},
		{0.0, 0},
		{-1, 0},
		{1e-9, 1},     // rounds up to at least one node
		{2.0, 120000}, // clamps to machine size
	}
	for _, tc := range cases {
		if got := c.NodesForFraction(tc.frac); got != tc.want {
			t.Errorf("NodesForFraction(%v) = %d, want %d", tc.frac, got, tc.want)
		}
	}
}

func TestTotalMemory(t *testing.T) {
	c := Exascale()
	want := units.DataSize(120000 * 128)
	if got := c.TotalMemory(); got != want {
		t.Errorf("total memory %v, want %v", got, want)
	}
}

func TestStringMentionsName(t *testing.T) {
	c := Exascale()
	if s := c.String(); len(s) == 0 || s[:len(c.Name)] != c.Name {
		t.Errorf("String() = %q does not start with config name", s)
	}
}

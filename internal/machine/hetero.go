// Heterogeneous fleets: a machine may partition its nodes into classes
// that differ in speed, memory, and reliability while sharing the base
// interconnect. This is the "hardware heterogeneity / design diversity"
// structural pattern of the HPC resilience pattern language
// (arXiv:1710.09074): a fleet that mixes hardened, standard, and
// fast-but-fragile nodes gives the scheduler a reliability dimension to
// place against, not just capacity.
//
// The modeling contract keeps every class internally homogeneous: a
// class is a smaller machine (ClassView) with its own MTBF, so the
// paper's per-technique cost models and the failure-process thinning
// argument apply unchanged within a class. Speed is a throughput
// multiplier the cluster simulator applies to the application (fewer
// time steps on a faster class), keeping all bookkeeping in wall time.

package machine

import (
	"fmt"

	"exaresil/internal/units"
)

// NodeClass describes one homogeneous slice of a heterogeneous fleet.
type NodeClass struct {
	// Name identifies the class in reports and metrics.
	Name string
	// Count is the number of nodes in the class; class counts must sum
	// to the machine's Nodes.
	Count int
	// Speed is the class's throughput multiplier relative to the base
	// Node (1.0 = base speed; 1.25 finishes the same application 25%
	// sooner).
	Speed float64
	// MTBF is the per-node mean time between failures for this class.
	MTBF units.Duration
	// Memory overrides the base node's RAM capacity when non-zero.
	Memory units.DataSize
}

// Heterogeneous reports whether the machine declares node classes.
func (c Config) Heterogeneous() bool { return len(c.Classes) > 0 }

// validateClasses checks the class partition (no-op for homogeneous
// machines, so every pre-existing configuration validates unchanged).
func (c Config) validateClasses() error {
	if len(c.Classes) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(c.Classes))
	total := 0
	for i, cl := range c.Classes {
		if cl.Name == "" {
			return fmt.Errorf("machine: class %d has no name", i)
		}
		if seen[cl.Name] {
			return fmt.Errorf("machine: duplicate class name %q", cl.Name)
		}
		seen[cl.Name] = true
		if cl.Count <= 0 {
			return fmt.Errorf("machine: class %q count %d must be positive", cl.Name, cl.Count)
		}
		if cl.Speed <= 0 {
			return fmt.Errorf("machine: class %q speed %v must be positive", cl.Name, cl.Speed)
		}
		if cl.MTBF <= 0 {
			return fmt.Errorf("machine: class %q MTBF %v must be positive", cl.Name, cl.MTBF)
		}
		if cl.Memory < 0 {
			return fmt.Errorf("machine: class %q memory %v must not be negative", cl.Name, cl.Memory)
		}
		total += cl.Count
	}
	if total != c.Nodes {
		return fmt.Errorf("machine: class counts sum to %d, want the %d machine nodes", total, c.Nodes)
	}
	return nil
}

// ClassView projects class i as a homogeneous machine: the class's node
// count, MTBF, and memory over the base node and network. The paper's
// cost models (and the resilience executors built on them) consume this
// view, so within a class everything behaves exactly like a smaller
// homogeneous system.
func (c Config) ClassView(i int) Config {
	cl := c.Classes[i]
	v := c
	v.Name = c.Name + "/" + cl.Name
	v.Nodes = cl.Count
	v.MTBF = cl.MTBF
	v.Classes = nil
	if cl.Memory > 0 {
		v.Node.Memory = cl.Memory
	}
	return v
}

// FleetFailureRate reports the aggregate failure rate of the whole fleet
// with every node active: the sum of per-class N_i / M_i terms (Eq. 2
// applied classwise). For homogeneous machines it equals
// SystemFailureRate(Nodes).
func (c Config) FleetFailureRate() units.Rate {
	if !c.Heterogeneous() {
		return c.SystemFailureRate(c.Nodes)
	}
	total := 0.0
	for _, cl := range c.Classes {
		total += float64(cl.Count) / float64(cl.MTBF)
	}
	return units.Rate(total)
}

// ExascaleHetero returns the heterogeneous variant of the projected
// exascale machine: the same 120,000-node fleet and network, split into
// a standard partition, a fast-but-fragile partition (higher-clocked
// parts fail more often), and a hardened partition (slower, heavily
// derated nodes with an order-of-magnitude better MTBF). The aggregate
// capacity matches Exascale(), so workloads generated for one fill the
// other identically and any outcome difference is attributable to
// heterogeneity and placement, not machine size.
func ExascaleHetero() Config {
	c := Exascale()
	c.Name = "exascale-120k-hetero"
	c.Classes = []NodeClass{
		{Name: "std", Count: 84000, Speed: 1.0, MTBF: 10 * units.Year},
		{Name: "fast", Count: 24000, Speed: 1.25, MTBF: 5 * units.Year},
		{Name: "hardened", Count: 12000, Speed: 0.8, MTBF: 25 * units.Year},
	}
	return c
}

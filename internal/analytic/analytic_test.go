package analytic

import (
	"math"
	"testing"

	"exaresil/internal/appsim"
	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/resilience"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

func env(t *testing.T) (machine.Config, *failures.Model, resilience.Config) {
	t.Helper()
	cfg := machine.Exascale()
	return cfg, failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF()), resilience.DefaultConfig()
}

func app(class workload.Class, nodes int) workload.App {
	return workload.App{Class: class, TimeSteps: 1440, Nodes: nodes}
}

func TestEfficiencyValidation(t *testing.T) {
	cfg, model, opts := env(t)
	a := app(workload.C64, 1000)
	if _, err := Efficiency(core.CheckpointRestart, workload.App{}, cfg, model, opts); err == nil {
		t.Error("invalid app accepted")
	}
	if _, err := Efficiency(core.CheckpointRestart, a, machine.Config{}, model, opts); err == nil {
		t.Error("invalid machine accepted")
	}
	if _, err := Efficiency(core.CheckpointRestart, a, cfg, nil, opts); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := Efficiency(core.Technique(99), a, cfg, model, opts); err == nil {
		t.Error("unknown technique accepted")
	}
}

func TestIdealIsOne(t *testing.T) {
	cfg, model, opts := env(t)
	eff, err := Efficiency(core.Ideal, app(workload.C64, 1000), cfg, model, opts)
	if err != nil || eff != 1 {
		t.Errorf("Ideal efficiency = %v, %v; want 1, nil", eff, err)
	}
}

func TestEfficiencyInUnitInterval(t *testing.T) {
	cfg, model, opts := env(t)
	for _, tech := range core.Techniques() {
		for _, nodes := range []int{1200, 30000, 120000} {
			for _, class := range workload.Classes() {
				eff, err := Efficiency(tech, app(class, nodes), cfg, model, opts)
				if err != nil {
					t.Fatalf("%v/%s/%d: %v", tech, class.Name, nodes, err)
				}
				if eff < 0 || eff > 1 {
					t.Errorf("%v/%s/%d: efficiency %v outside [0,1]", tech, class.Name, nodes, eff)
				}
			}
		}
	}
}

func TestEfficiencyMonotoneInSize(t *testing.T) {
	cfg, model, opts := env(t)
	for _, tech := range core.ClusterTechniques() {
		small, _ := Efficiency(tech, app(workload.C64, 1200), cfg, model, opts)
		large, _ := Efficiency(tech, app(workload.C64, 120000), cfg, model, opts)
		if large >= small {
			t.Errorf("%v: efficiency did not decrease with size (%v -> %v)", tech, small, large)
		}
	}
}

func TestCollapseRegimes(t *testing.T) {
	cfg := machine.Exascale().WithMTBF(1 * units.Year)
	model := failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF())
	opts := resilience.DefaultConfig()
	eff, err := Efficiency(core.CheckpointRestart, app(workload.D64, cfg.Nodes), cfg, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	if eff != 0 {
		t.Errorf("CR at exascale/1y MTBF: analytic efficiency %v, want 0", eff)
	}
	// Oversized redundancy is unplaceable.
	base, baseModel, _ := env(t)
	eff, err = Efficiency(core.FullRedundancy, app(workload.A32, 90000), base, baseModel, opts)
	if err != nil {
		t.Fatal(err)
	}
	if eff != 0 {
		t.Errorf("unplaceable redundancy: analytic efficiency %v, want 0", eff)
	}
}

// TestAgreementWithSimulator is the package's core validation: the
// analytic prediction and the Monte-Carlo mean must agree within a
// first-order tolerance across techniques, classes, and sizes.
func TestAgreementWithSimulator(t *testing.T) {
	cfg, model, opts := env(t)
	cases := []struct {
		tech  core.Technique
		class workload.Class
		nodes int
		tol   float64
	}{
		{core.CheckpointRestart, workload.A32, 1200, 0.02},
		{core.CheckpointRestart, workload.C64, 30000, 0.05},
		{core.CheckpointRestart, workload.D64, 120000, 0.10},
		{core.ParallelRecovery, workload.A32, 1200, 0.02},
		{core.ParallelRecovery, workload.D64, 30000, 0.03},
		{core.ParallelRecovery, workload.D64, 120000, 0.05},
		{core.MultilevelCheckpoint, workload.A32, 1200, 0.03},
		{core.MultilevelCheckpoint, workload.C64, 30000, 0.06},
		{core.FullRedundancy, workload.A32, 30000, 0.05},
		{core.PartialRedundancy, workload.C32, 30000, 0.07},
	}
	for _, tc := range cases {
		a := app(tc.class, tc.nodes)
		predicted, err := Efficiency(tc.tech, a, cfg, model, opts)
		if err != nil {
			t.Fatalf("%v/%s: %v", tc.tech, tc.class.Name, err)
		}
		x, err := resilience.New(tc.tech, a, cfg, model, opts)
		if err != nil {
			t.Fatal(err)
		}
		st := appsim.Run(appsim.TrialSpec{Executor: x, Trials: 40, Seed: 9})
		measured := st.Efficiency.Mean
		if math.Abs(predicted-measured) > tc.tol {
			t.Errorf("%v on %s@%d nodes: analytic %.4f vs simulated %.4f (tol %.2f)",
				tc.tech, tc.class.Name, tc.nodes, predicted, measured, tc.tol)
		}
	}
}

func TestBest(t *testing.T) {
	cfg, model, opts := env(t)
	// Figure 1's conclusion: PR wins for communication-free apps.
	best, eff, err := Best(core.ClusterTechniques(), app(workload.A32, 30000), cfg, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	if best != core.ParallelRecovery {
		t.Errorf("best for A32 = %v, want Parallel Recovery", best)
	}
	if eff <= 0.9 {
		t.Errorf("predicted efficiency %v implausibly low", eff)
	}
	// Figure 2's conclusion: multilevel wins small high-comm apps.
	best, _, err = Best(core.ClusterTechniques(), app(workload.D64, 1200), cfg, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	if best != core.MultilevelCheckpoint {
		t.Errorf("best for small D64 = %v, want Multilevel", best)
	}
	if _, _, err := Best(nil, app(workload.A32, 100), cfg, model, opts); err == nil {
		t.Error("empty candidate list accepted")
	}
}

func TestSelector(t *testing.T) {
	cfg, model, opts := env(t)
	sel, err := NewSelector(nil, cfg, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := sel.Choose(app(workload.A32, 30000)); got != core.ParallelRecovery {
		t.Errorf("selector chose %v for A32, want Parallel Recovery", got)
	}
	if got := sel.Choose(app(workload.D64, 1200)); got != core.MultilevelCheckpoint {
		t.Errorf("selector chose %v for small D64, want Multilevel", got)
	}
	// Compatible with the cluster chooser signature.
	var f func(workload.App) core.Technique = sel.Choose
	_ = f
	if _, err := NewSelector(nil, machine.Config{}, model, opts); err == nil {
		t.Error("invalid machine accepted")
	}
	if _, err := NewSelector(nil, cfg, nil, opts); err == nil {
		t.Error("nil model accepted")
	}
}

func BenchmarkAnalyticEfficiency(b *testing.B) {
	cfg := machine.Exascale()
	model := failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF())
	opts := resilience.DefaultConfig()
	a := app(workload.C64, 30000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Efficiency(core.ParallelRecovery, a, cfg, model, opts); err != nil {
			b.Fatal(err)
		}
	}
}

package analytic

import (
	"testing"

	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/resilience"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

func testGrid(class workload.Class) Grid {
	cfg := machine.Exascale()
	return Grid{
		Machine:    cfg,
		PMF:        failures.DefaultSeverityPMF(),
		Resilience: resilience.DefaultConfig(),
		Class:      class,
		TimeSteps:  1440,
		MTBFs:      []units.Duration{10 * units.Year, units.Duration(2.5) * units.Year},
		Nodes: []int{
			cfg.NodesForFraction(0.01),
			cfg.NodesForFraction(0.10),
			cfg.NodesForFraction(0.50),
			cfg.NodesForFraction(1.00),
		},
		Techniques: core.Techniques(),
	}
}

// TestBatchMatchesEfficiency pins the batch evaluator to the per-cell entry
// point: every grid cell must score exactly what Efficiency reports.
func TestBatchMatchesEfficiency(t *testing.T) {
	for _, class := range []workload.Class{workload.A32, workload.D64} {
		g := testGrid(class)
		e, err := NewEvaluator(g)
		if err != nil {
			t.Fatalf("NewEvaluator(%s): %v", class.Name, err)
		}
		eff := e.Eval()
		for mi, mtbf := range g.MTBFs {
			model, err := failures.NewModel(mtbf, g.PMF)
			if err != nil {
				t.Fatal(err)
			}
			cfg := g.Machine.WithMTBF(mtbf)
			for ni, n := range g.Nodes {
				app := workload.App{Class: class, TimeSteps: g.TimeSteps, Nodes: n}
				for ti, tech := range g.Techniques {
					want, err := Efficiency(tech, app, cfg, model, g.Resilience)
					if err != nil {
						t.Fatalf("Efficiency(%v, %dn, %v): %v", tech, n, mtbf, err)
					}
					if got := eff[e.Index(mi, ni, ti)]; got != want {
						t.Errorf("%s/%v/%dn/%v: batch %v, Efficiency %v",
							class.Name, tech, n, mtbf, got, want)
					}
				}
			}
		}
	}
}

// TestBatchEvalRepeatable re-evaluates into the same buffer.
func TestBatchEvalRepeatable(t *testing.T) {
	e, err := NewEvaluator(testGrid(workload.D64))
	if err != nil {
		t.Fatal(err)
	}
	first := append([]float64(nil), e.Eval()...)
	second := e.Eval()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("cell %d changed across Eval calls: %v -> %v", i, first[i], second[i])
		}
	}
}

// TestBatchEvalAllocationFree is the zero-alloc guarantee: once the
// multilevel stretch cache is warm, Eval must not allocate at all.
func TestBatchEvalAllocationFree(t *testing.T) {
	e, err := NewEvaluator(testGrid(workload.D64))
	if err != nil {
		t.Fatal(err)
	}
	e.Eval() // warm the multilevel stretch cache
	if allocs := testing.AllocsPerRun(10, func() { e.Eval() }); allocs != 0 {
		t.Errorf("steady-state Eval allocates %v times per pass, want 0", allocs)
	}
}

func TestNewEvaluatorRejectsBadGrids(t *testing.T) {
	base := testGrid(workload.A32)

	g := base
	g.MTBFs = nil
	if _, err := NewEvaluator(g); err == nil {
		t.Error("empty MTBF axis accepted")
	}

	g = base
	g.Nodes = nil
	if _, err := NewEvaluator(g); err == nil {
		t.Error("empty node axis accepted")
	}

	g = base
	g.Techniques = []core.Technique{core.Technique(99)}
	if _, err := NewEvaluator(g); err == nil {
		t.Error("unknown technique accepted")
	}

	g = base
	g.Nodes = []int{base.Machine.Nodes + 1}
	if _, err := NewEvaluator(g); err == nil {
		t.Error("oversized application accepted")
	}
}

func TestIndexIsBijective(t *testing.T) {
	// The flat layout contract behind every consumer's eff[Index(...)]
	// lookup: MTBF-major, then nodes, then technique, covering exactly
	// [0, len(Eval())) with no collisions.
	ev, err := NewEvaluator(testGrid(workload.A32))
	if err != nil {
		t.Fatal(err)
	}
	g := ev.grid
	n := len(g.MTBFs) * len(g.Nodes) * len(g.Techniques)
	seen := make([]bool, n)
	for mi := range g.MTBFs {
		for ni := range g.Nodes {
			for ti := range g.Techniques {
				i := ev.Index(mi, ni, ti)
				if i < 0 || i >= n {
					t.Fatalf("Index(%d,%d,%d) = %d outside [0,%d)", mi, ni, ti, i, n)
				}
				if seen[i] {
					t.Fatalf("Index(%d,%d,%d) = %d collides", mi, ni, ti, i)
				}
				seen[i] = true
			}
		}
	}
	if got := len(ev.Eval()); got != n {
		t.Fatalf("Eval returned %d cells, want %d", got, n)
	}
}

// Package analytic provides closed-form, first-order expected-efficiency
// models for each resilience technique.
//
// The models serve two purposes. First, validation: the discrete-event
// simulator and the renewal-theory formulas are independent derivations of
// the same physics, so agreement between them (tested in this package)
// catches modeling bugs in either. Second, speed: selecting a technique
// per application from the closed forms is thousands of times faster than
// Monte-Carlo probing, which matters when a resource manager must decide
// at submission time.
//
// All formulas are first-order in the failure rate, the same order as
// Daly's period estimate (Eq. 4); they degrade gracefully in the collapse
// regimes by reporting zero efficiency.
package analytic

import (
	"fmt"
	"math"

	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/resilience"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// Efficiency reports the expected efficiency (baseline time over expected
// makespan) of running app on cfg under technique t, per the first-order
// renewal model. It returns 0 for regimes where the technique cannot make
// progress, mirroring the simulator's incomplete runs.
func Efficiency(t core.Technique, app workload.App, cfg machine.Config, model *failures.Model, opts resilience.Config) (float64, error) {
	if err := app.Validate(); err != nil {
		return 0, err
	}
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if model == nil {
		return 0, fmt.Errorf("analytic: nil failure model")
	}
	if err := opts.Validate(); err != nil {
		return 0, err
	}

	costs := resilience.ComputeCosts(app, cfg)
	rate := model.Rate(app.Nodes).PerMinute()

	switch t {
	case core.Ideal:
		return 1, nil
	case core.CheckpointRestart:
		return exactPeriodicEfficiency(1, costs.PFS, costs.PFS, rate), nil
	case core.ParallelRecovery:
		mu := resilience.MessageLoggingSlowdown(app.Class)
		return periodicEfficiency(mu, costs.L2, costs.L2, rate, opts.RecoverySpeedup), nil
	case core.MultilevelCheckpoint:
		return multilevelEfficiency(app, costs, model, opts)
	case core.PartialRedundancy:
		return redundantEfficiency(app, cfg, costs, model, 1.5), nil
	case core.FullRedundancy:
		return redundantEfficiency(app, cfg, costs, model, 2.0), nil
	case core.InMemoryReplicatedCheckpoint:
		return restoreEfficiency(app, costs, model, opts.ReStoreReplicas()), nil
	case core.LightweightReplication:
		return teamReplicationEfficiency(app, cfg, costs, model, opts.TeamSyncPenalty), nil
	default:
		return 0, fmt.Errorf("analytic: no model for technique %v", t)
	}
}

// periodicEfficiency is the single-level renewal model shared by
// Checkpoint Restart (stretch 1, phi 1) and Parallel Recovery (stretch mu,
// rework speedup phi): work inflated by stretch, checkpoints of the given
// cost at the Daly period, failures at rate lambda each costing a restore
// plus the replay (at phi-fold speed) of on average half a period's work.
//
//	eff = 1 / (stretch * (1 + C/tau) / (1 - lambda*(R + (tau+C)/(2*phi))))
func periodicEfficiency(stretch float64, checkpoint, restart units.Duration, lambda, phi float64) float64 {
	tau, ok := resilience.DalyPeriod(checkpoint, units.Rate(lambda))
	if !ok {
		return 0
	}
	c, r := checkpoint.Minutes(), restart.Minutes()
	overhead := stretch
	if !math.IsInf(tau.Minutes(), 1) {
		overhead = stretch * (1 + c/tau.Minutes())
	}
	loss := lambda * (r + (tau.Minutes()+c)/(2*phi)*stretch)
	if loss >= 1 {
		return 0
	}
	eff := (1 - loss) / overhead
	return clamp01(eff)
}

// exactPeriodicEfficiency is the exact renewal expectation for a
// single-level periodic scheme under exponential failures, used where the
// first-order expansion breaks down (Checkpoint Restart at exascale, where
// lambda*(tau+C) approaches 1).
//
// Committing one checkpoint interval requires surviving an exposure of
// D = tau + C; each failure costs its elapsed time plus an uninterruptible
// restart of length R that retries on its own failures. The expected wall
// time per committed interval is then
//
//	E = e^(lambda*R) * (e^(lambda*D) - 1) / lambda,
//
// (the number of work attempts is geometric with mean e^(lambda*D); each
// failed attempt costs its conditional elapsed time plus an expected
// restart of (e^(lambda*R)-1)/lambda; the terms telescope to the closed
// form above). Efficiency is the useful work per interval, tau, over
// stretch times E.
func exactPeriodicEfficiency(stretch float64, checkpoint, restart units.Duration, lambda float64) float64 {
	tau, ok := resilience.DalyPeriod(checkpoint, units.Rate(lambda))
	if !ok {
		return 0
	}
	if lambda <= 0 || math.IsInf(tau.Minutes(), 1) {
		return clamp01(1 / stretch)
	}
	d := tau.Minutes() + checkpoint.Minutes()
	expected := math.Exp(lambda*restart.Minutes()) * math.Expm1(lambda*d) / lambda
	if math.IsInf(expected, 1) || expected <= 0 {
		return 0
	}
	return clamp01(tau.Minutes() / (stretch * expected))
}

// multilevelEfficiency predicts the schedule the simulator actually runs —
// the first-order optimizer's winner — but scores it with the exact
// Markov-chain stretch. The first-order objective is fine for ranking
// candidate schedules, yet as a prediction it understates failure cost
// once lambda*(tau+C) is no longer small (the same regime that pushed
// Checkpoint Restart onto exactPeriodicEfficiency): at exascale with a
// 2.5-year component MTBF it overstates multilevel efficiency by roughly
// two-fold against the simulator.
func multilevelEfficiency(app workload.App, costs resilience.Costs, model *failures.Model, opts resilience.Config) (float64, error) {
	rates := severityRates(model, app.Nodes)
	sched, err := resilience.OptimizeMultilevel(costs, rates, opts.Multilevel)
	if err != nil {
		// No feasible schedule: the technique cannot make progress.
		return 0, nil
	}
	stretch := sched.ExactStretch(costs, rates)
	if math.IsInf(stretch, 1) || stretch <= 0 {
		return 0, nil
	}
	return clamp01(1 / stretch), nil
}

// redundantEfficiency models redundancy of degree r: the baseline
// stretches per Eq. 8, checkpointing continues at Checkpoint Restart's
// period, and the effective rollback rate collapses to
//
//	lambda_eff = n_unreplicated * lambda_n  +  n_pairs * lambda_n^2 * (tau + C)
//
// — unreplicated virtual nodes die on any hit, replicated pairs only when
// both replicas are hit within one checkpoint interval (the probability of
// which is first-order (lambda_n * interval)^2 per pair per interval).
func redundantEfficiency(app workload.App, cfg machine.Config, costs resilience.Costs, model *failures.Model, r float64) float64 {
	phys := resilience.RedundantNodes(app.Nodes, r)
	if phys > cfg.Nodes {
		return 0
	}
	tau, ok := resilience.DalyPeriod(costs.PFS, model.Rate(app.Nodes))
	if !ok {
		return 0
	}
	c := costs.PFS.Minutes()
	interval := tau.Minutes() + c

	lambdaNode := model.Rate(1).PerMinute()
	pairs := phys - app.Nodes
	unreplicated := app.Nodes - pairs
	lambdaEff := float64(unreplicated)*lambdaNode +
		float64(pairs)*lambdaNode*lambdaNode*interval

	stretch := resilience.RedundantBaseline(app, r).Minutes() / app.Baseline().Minutes()
	overhead := stretch * (1 + c/tau.Minutes())
	loss := lambdaEff * (c + interval/2*stretch)
	if loss >= 1 {
		return 0
	}
	return clamp01((1 - loss) / overhead)
}

// relaunchRenewalEfficiency scores a scheme whose only recovery from some
// rare catastrophic event (rate lambda per minute) is a full relaunch from
// the PFS input: the exact renewal expectation of exactPeriodicEfficiency
// with the whole job as the exposure window,
//
//	M = e^(lambda*R) * (e^(lambda*M0) - 1) / lambda,
//
// where M0 is the expected makespan absent such events and R the relaunch
// cost. Efficiency is the true baseline over M.
func relaunchRenewalEfficiency(baseline, m0, lambda, relaunch float64) float64 {
	if m0 <= 0 {
		return 0
	}
	if lambda <= 0 {
		return clamp01(baseline / m0)
	}
	x := lambda * m0
	if x > 690 { // e^x overflows float64; the job effectively never finishes
		return 0
	}
	m := math.Exp(lambda*relaunch) * math.Expm1(x) / lambda
	if math.IsInf(m, 1) || m <= 0 {
		return 0
	}
	return clamp01(baseline / m)
}

// severityPMF reports the model's severity weights (transient, node loss,
// catastrophic), normalized.
func severityPMF(model *failures.Model) (p1, p2, p3 float64) {
	pmf := model.PMF()
	total := pmf[0] + pmf[1] + pmf[2]
	if total <= 0 {
		return 0, 0, 0
	}
	return pmf[0] / total, pmf[1] / total, pmf[2] / total
}

// restoreEfficiency models In-Memory Replicated Checkpoint (ReStore,
// arXiv:2203.01107). Ordinary failures see the cheap in-memory scheme —
// the exact periodic renewal at the replicated-checkpoint cost C_mem and
// restore cost R_mem — while the rare loss of all k replica holders within
// one checkpoint interval relaunches the job from its PFS input, a second
// renewal layer composed on top. With the replica degree unavailable
// (N_a <= k) the executor degenerates to Checkpoint Restart, and so does
// the model.
func restoreEfficiency(app workload.App, costs resilience.Costs, model *failures.Model, k int) float64 {
	rate := model.Rate(app.Nodes)
	lambda := rate.PerMinute()
	if k <= 0 || app.Nodes <= k {
		return exactPeriodicEfficiency(1, costs.PFS, costs.PFS, lambda)
	}
	cMem := resilience.ReplicatedCheckpointCost(costs, k)
	rMem := resilience.ReplicatedRestoreCost(costs)
	effBase := exactPeriodicEfficiency(1, cMem, rMem, lambda)
	if effBase <= 0 {
		return 0
	}
	baseline := app.Baseline().Minutes()
	if lambda <= 0 {
		return clamp01(effBase)
	}
	tau, ok := resilience.DalyPeriod(cMem, rate)
	if !ok {
		return 0
	}
	d := tau.Minutes() + cMem.Minutes()
	lambdaLoss := replicaSetLossProb(model, k, lambda, d) / d
	return relaunchRenewalEfficiency(baseline, baseline/effBase, lambdaLoss, costs.PFS.Minutes())
}

// replicaSetLossProb is the probability that the failures within one
// checkpoint exposure window of d minutes destroy at least k replica
// holders. Failures arrive Poisson at rate lambda; a node loss (severity 2)
// takes one holder's copy and a catastrophic failure (severity 3) two, so
// with q the catastrophic share of loss-causing failures,
//
//	P(survive) = sum_{n=0}^{k-1} Pois(n; a) * P(Binomial(n, q) <= k-1-n),
//
// a = lambda*(p2+p3)*d being the expected loss events per window (n loss
// events destroy at least n copies, so n >= k events always lose the set).
// The loops are O(k^2) with no allocation, batch-evaluator safe.
func replicaSetLossProb(model *failures.Model, k int, lambda, d float64) float64 {
	_, p2, p3 := severityPMF(model)
	pLossy := p2 + p3
	if pLossy <= 0 {
		return 0
	}
	a := lambda * pLossy * d
	q := p3 / pLossy
	survive := 0.0
	pois := math.Exp(-a) // Pois(0; a)
	for n := 0; n < k; n++ {
		if n > 0 {
			pois *= a / float64(n)
		}
		// P(j catastrophic among n | at most k-1-n of them), iteratively:
		// term(0) = (1-q)^n, term(j) = term(j-1) * (n-j+1)/j * q/(1-q).
		binom := 0.0
		term := math.Pow(1-q, float64(n))
		if q >= 1 {
			// Every loss event is catastrophic: n events lose 2n copies.
			if 2*n <= k-1 {
				binom = 1
			}
		} else {
			for j := 0; j <= n && n+j <= k-1; j++ {
				if j > 0 {
					term *= float64(n-j+1) / float64(j) * q / (1 - q)
				}
				binom += term
			}
		}
		survive += pois * binom
	}
	return clamp01(1 - survive)
}

// teamReplicationEfficiency models Lightweight Replication (TeaMPI,
// arXiv:2005.12091). The steady state is just the (1 + s) sync stretch on
// the communication term; the only rollbacks are full relaunches, at the
// rate of catastrophic failures (which take a node and its twin together)
// plus twin double failures — a node loss landing while the struck node's
// twin is still inside its re-sync window W:
//
//	lambda_d = lambda(2N)*p3 + 2N * (lambda_node*p2)^2 * W.
func teamReplicationEfficiency(app workload.App, cfg machine.Config, costs resilience.Costs, model *failures.Model, sync float64) float64 {
	phys := 2 * app.Nodes
	if phys > cfg.Nodes {
		return 0
	}
	_, p2, p3 := severityPMF(model)
	lambdaNode := model.Rate(1).PerMinute()
	w := costs.L2.Minutes()
	lambdaD := model.Rate(phys).PerMinute()*p3 +
		float64(phys)*(lambdaNode*p2)*(lambdaNode*p2)*w
	m0 := resilience.TeamReplicationBaseline(app, sync).Minutes()
	return relaunchRenewalEfficiency(app.Baseline().Minutes(), m0, lambdaD, costs.PFS.Minutes())
}

// severityRates splits an application's failure rate across the severity
// levels of the model's PMF.
func severityRates(model *failures.Model, nodes int) [3]units.Rate {
	pmf := model.PMF()
	total := 0.0
	for _, w := range pmf {
		total += w
	}
	var out [3]units.Rate
	for i, w := range pmf {
		out[i] = units.Rate(float64(model.Rate(nodes)) * w / total)
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Best reports the technique with the highest analytic efficiency among
// candidates for the given application, with its predicted efficiency.
func Best(candidates []core.Technique, app workload.App, cfg machine.Config, model *failures.Model, opts resilience.Config) (core.Technique, float64, error) {
	if len(candidates) == 0 {
		return 0, 0, fmt.Errorf("analytic: no candidate techniques")
	}
	best := candidates[0]
	bestEff := math.Inf(-1)
	for _, t := range candidates {
		eff, err := Efficiency(t, app, cfg, model, opts)
		if err != nil {
			return 0, 0, err
		}
		if eff > bestEff {
			best, bestEff = t, eff
		}
	}
	return best, bestEff, nil
}

// Selector is a fast Resilience Selection policy computed from the
// analytic models instead of Monte-Carlo probes. It implements the same
// Choose signature as the Monte-Carlo selector and is safe for concurrent
// use.
type Selector struct {
	candidates []core.Technique
	cfg        machine.Config
	model      *failures.Model
	opts       resilience.Config
}

// NewSelector builds an analytic selector. Nil candidates means the
// cluster-study trio.
func NewSelector(candidates []core.Technique, cfg machine.Config, model *failures.Model, opts resilience.Config) (*Selector, error) {
	if candidates == nil {
		candidates = core.ClusterTechniques()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if model == nil {
		return nil, fmt.Errorf("analytic: nil failure model")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Selector{candidates: candidates, cfg: cfg, model: model, opts: opts}, nil
}

// Choose picks the analytically best technique for app. Evaluation errors
// (malformed apps) fall back to the first candidate; the cluster validates
// apps before they reach mapping, so this path is defensive.
func (s *Selector) Choose(app workload.App) core.Technique {
	best, _, err := Best(s.candidates, app, s.cfg, s.model, s.opts)
	if err != nil {
		return s.candidates[0]
	}
	return best
}

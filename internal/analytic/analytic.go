// Package analytic provides closed-form, first-order expected-efficiency
// models for each resilience technique.
//
// The models serve two purposes. First, validation: the discrete-event
// simulator and the renewal-theory formulas are independent derivations of
// the same physics, so agreement between them (tested in this package)
// catches modeling bugs in either. Second, speed: selecting a technique
// per application from the closed forms is thousands of times faster than
// Monte-Carlo probing, which matters when a resource manager must decide
// at submission time.
//
// All formulas are first-order in the failure rate, the same order as
// Daly's period estimate (Eq. 4); they degrade gracefully in the collapse
// regimes by reporting zero efficiency.
package analytic

import (
	"fmt"
	"math"

	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/resilience"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// Efficiency reports the expected efficiency (baseline time over expected
// makespan) of running app on cfg under technique t, per the first-order
// renewal model. It returns 0 for regimes where the technique cannot make
// progress, mirroring the simulator's incomplete runs.
func Efficiency(t core.Technique, app workload.App, cfg machine.Config, model *failures.Model, opts resilience.Config) (float64, error) {
	if err := app.Validate(); err != nil {
		return 0, err
	}
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if model == nil {
		return 0, fmt.Errorf("analytic: nil failure model")
	}
	if err := opts.Validate(); err != nil {
		return 0, err
	}

	costs := resilience.ComputeCosts(app, cfg)
	rate := model.Rate(app.Nodes).PerMinute()

	switch t {
	case core.Ideal:
		return 1, nil
	case core.CheckpointRestart:
		return exactPeriodicEfficiency(1, costs.PFS, costs.PFS, rate), nil
	case core.ParallelRecovery:
		mu := resilience.MessageLoggingSlowdown(app.Class)
		return periodicEfficiency(mu, costs.L2, costs.L2, rate, opts.RecoverySpeedup), nil
	case core.MultilevelCheckpoint:
		return multilevelEfficiency(app, costs, model, opts)
	case core.PartialRedundancy:
		return redundantEfficiency(app, cfg, costs, model, 1.5), nil
	case core.FullRedundancy:
		return redundantEfficiency(app, cfg, costs, model, 2.0), nil
	default:
		return 0, fmt.Errorf("analytic: no model for technique %v", t)
	}
}

// periodicEfficiency is the single-level renewal model shared by
// Checkpoint Restart (stretch 1, phi 1) and Parallel Recovery (stretch mu,
// rework speedup phi): work inflated by stretch, checkpoints of the given
// cost at the Daly period, failures at rate lambda each costing a restore
// plus the replay (at phi-fold speed) of on average half a period's work.
//
//	eff = 1 / (stretch * (1 + C/tau) / (1 - lambda*(R + (tau+C)/(2*phi))))
func periodicEfficiency(stretch float64, checkpoint, restart units.Duration, lambda, phi float64) float64 {
	tau, ok := resilience.DalyPeriod(checkpoint, units.Rate(lambda))
	if !ok {
		return 0
	}
	c, r := checkpoint.Minutes(), restart.Minutes()
	overhead := stretch
	if !math.IsInf(tau.Minutes(), 1) {
		overhead = stretch * (1 + c/tau.Minutes())
	}
	loss := lambda * (r + (tau.Minutes()+c)/(2*phi)*stretch)
	if loss >= 1 {
		return 0
	}
	eff := (1 - loss) / overhead
	return clamp01(eff)
}

// exactPeriodicEfficiency is the exact renewal expectation for a
// single-level periodic scheme under exponential failures, used where the
// first-order expansion breaks down (Checkpoint Restart at exascale, where
// lambda*(tau+C) approaches 1).
//
// Committing one checkpoint interval requires surviving an exposure of
// D = tau + C; each failure costs its elapsed time plus an uninterruptible
// restart of length R that retries on its own failures. The expected wall
// time per committed interval is then
//
//	E = e^(lambda*R) * (e^(lambda*D) - 1) / lambda,
//
// (the number of work attempts is geometric with mean e^(lambda*D); each
// failed attempt costs its conditional elapsed time plus an expected
// restart of (e^(lambda*R)-1)/lambda; the terms telescope to the closed
// form above). Efficiency is the useful work per interval, tau, over
// stretch times E.
func exactPeriodicEfficiency(stretch float64, checkpoint, restart units.Duration, lambda float64) float64 {
	tau, ok := resilience.DalyPeriod(checkpoint, units.Rate(lambda))
	if !ok {
		return 0
	}
	if lambda <= 0 || math.IsInf(tau.Minutes(), 1) {
		return clamp01(1 / stretch)
	}
	d := tau.Minutes() + checkpoint.Minutes()
	expected := math.Exp(lambda*restart.Minutes()) * math.Expm1(lambda*d) / lambda
	if math.IsInf(expected, 1) || expected <= 0 {
		return 0
	}
	return clamp01(tau.Minutes() / (stretch * expected))
}

// multilevelEfficiency predicts the schedule the simulator actually runs —
// the first-order optimizer's winner — but scores it with the exact
// Markov-chain stretch. The first-order objective is fine for ranking
// candidate schedules, yet as a prediction it understates failure cost
// once lambda*(tau+C) is no longer small (the same regime that pushed
// Checkpoint Restart onto exactPeriodicEfficiency): at exascale with a
// 2.5-year component MTBF it overstates multilevel efficiency by roughly
// two-fold against the simulator.
func multilevelEfficiency(app workload.App, costs resilience.Costs, model *failures.Model, opts resilience.Config) (float64, error) {
	rates := severityRates(model, app.Nodes)
	sched, err := resilience.OptimizeMultilevel(costs, rates, opts.Multilevel)
	if err != nil {
		// No feasible schedule: the technique cannot make progress.
		return 0, nil
	}
	stretch := sched.ExactStretch(costs, rates)
	if math.IsInf(stretch, 1) || stretch <= 0 {
		return 0, nil
	}
	return clamp01(1 / stretch), nil
}

// redundantEfficiency models redundancy of degree r: the baseline
// stretches per Eq. 8, checkpointing continues at Checkpoint Restart's
// period, and the effective rollback rate collapses to
//
//	lambda_eff = n_unreplicated * lambda_n  +  n_pairs * lambda_n^2 * (tau + C)
//
// — unreplicated virtual nodes die on any hit, replicated pairs only when
// both replicas are hit within one checkpoint interval (the probability of
// which is first-order (lambda_n * interval)^2 per pair per interval).
func redundantEfficiency(app workload.App, cfg machine.Config, costs resilience.Costs, model *failures.Model, r float64) float64 {
	phys := resilience.RedundantNodes(app.Nodes, r)
	if phys > cfg.Nodes {
		return 0
	}
	tau, ok := resilience.DalyPeriod(costs.PFS, model.Rate(app.Nodes))
	if !ok {
		return 0
	}
	c := costs.PFS.Minutes()
	interval := tau.Minutes() + c

	lambdaNode := model.Rate(1).PerMinute()
	pairs := phys - app.Nodes
	unreplicated := app.Nodes - pairs
	lambdaEff := float64(unreplicated)*lambdaNode +
		float64(pairs)*lambdaNode*lambdaNode*interval

	stretch := resilience.RedundantBaseline(app, r).Minutes() / app.Baseline().Minutes()
	overhead := stretch * (1 + c/tau.Minutes())
	loss := lambdaEff * (c + interval/2*stretch)
	if loss >= 1 {
		return 0
	}
	return clamp01((1 - loss) / overhead)
}

// severityRates splits an application's failure rate across the severity
// levels of the model's PMF.
func severityRates(model *failures.Model, nodes int) [3]units.Rate {
	pmf := model.PMF()
	total := 0.0
	for _, w := range pmf {
		total += w
	}
	var out [3]units.Rate
	for i, w := range pmf {
		out[i] = units.Rate(float64(model.Rate(nodes)) * w / total)
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Best reports the technique with the highest analytic efficiency among
// candidates for the given application, with its predicted efficiency.
func Best(candidates []core.Technique, app workload.App, cfg machine.Config, model *failures.Model, opts resilience.Config) (core.Technique, float64, error) {
	if len(candidates) == 0 {
		return 0, 0, fmt.Errorf("analytic: no candidate techniques")
	}
	best := candidates[0]
	bestEff := math.Inf(-1)
	for _, t := range candidates {
		eff, err := Efficiency(t, app, cfg, model, opts)
		if err != nil {
			return 0, 0, err
		}
		if eff > bestEff {
			best, bestEff = t, eff
		}
	}
	return best, bestEff, nil
}

// Selector is a fast Resilience Selection policy computed from the
// analytic models instead of Monte-Carlo probes. It implements the same
// Choose signature as the Monte-Carlo selector and is safe for concurrent
// use.
type Selector struct {
	candidates []core.Technique
	cfg        machine.Config
	model      *failures.Model
	opts       resilience.Config
}

// NewSelector builds an analytic selector. Nil candidates means the
// cluster-study trio.
func NewSelector(candidates []core.Technique, cfg machine.Config, model *failures.Model, opts resilience.Config) (*Selector, error) {
	if candidates == nil {
		candidates = core.ClusterTechniques()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if model == nil {
		return nil, fmt.Errorf("analytic: nil failure model")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Selector{candidates: candidates, cfg: cfg, model: model, opts: opts}, nil
}

// Choose picks the analytically best technique for app. Evaluation errors
// (malformed apps) fall back to the first candidate; the cluster validates
// apps before they reach mapping, so this path is defensive.
func (s *Selector) Choose(app workload.App) core.Technique {
	best, _, err := Best(s.candidates, app, s.cfg, s.model, s.opts)
	if err != nil {
		return s.candidates[0]
	}
	return best
}

package analytic

import (
	"fmt"

	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/resilience"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// Grid describes a batch what-if sweep: every (MTBF, node count,
// technique) combination for one application class, scored with the
// closed-form models. A resource manager answering "what would the
// efficiency landscape look like if the component MTBF halved?" needs
// hundreds of such cells, and the per-call Efficiency entry point spends
// most of its time re-validating inputs and re-deriving per-axis values
// that the grid structure shares; Evaluator hoists all of that out of the
// cell loop.
type Grid struct {
	// Machine is the platform; its own MTBF is ignored in favour of the
	// MTBFs axis.
	Machine machine.Config
	// PMF is the failure-severity distribution.
	PMF failures.SeverityPMF
	// Resilience carries the technique parameters.
	Resilience resilience.Config
	// Class is the application class (checkpoint cost and communication
	// fraction axis collapse into this choice).
	Class workload.Class
	// TimeSteps is T_S per application (default 1440).
	TimeSteps int
	// MTBFs is the failure-rate axis.
	MTBFs []units.Duration
	// Nodes is the application-size axis, in nodes.
	Nodes []int
	// Techniques is the technique axis.
	Techniques []core.Technique
}

// Evaluator scores a Grid in one pass over preallocated column buffers.
// Construction validates the grid once and precomputes everything that is
// constant along an axis — the failure model and machine per MTBF, the
// application and checkpoint costs per node count — so Eval itself
// performs no per-cell allocation: a steady-state Eval is allocation-free
// (the multilevel schedule optimizer fills the evaluator's stretch cache
// on the first pass). An Evaluator is not safe for concurrent use.
type Evaluator struct {
	grid       Grid
	techniques []core.Technique

	// Per-MTBF columns.
	cfgs   []machine.Config
	models []*failures.Model

	// Per-node-count columns (checkpoint costs do not depend on MTBF).
	apps  []workload.App
	costs []resilience.Costs

	// mu is the class's message-logging slowdown, constant over the grid.
	mu float64

	// mlStretch caches the multilevel exact stretch per (MTBF, nodes)
	// pair; the optimizer behind it is the only non-trivial cost in the
	// grid and is technique-axis-invariant.
	mlStretch []float64
	mlDone    []bool

	// eff is the reused output buffer, MTBF-major then nodes then
	// technique.
	eff []float64
}

// NewEvaluator validates the grid and builds the column buffers.
func NewEvaluator(g Grid) (*Evaluator, error) {
	if err := g.Machine.Validate(); err != nil {
		return nil, err
	}
	if err := g.Resilience.Validate(); err != nil {
		return nil, err
	}
	if len(g.MTBFs) == 0 {
		return nil, fmt.Errorf("analytic: batch grid has no MTBFs")
	}
	if len(g.Nodes) == 0 {
		return nil, fmt.Errorf("analytic: batch grid has no node counts")
	}
	if len(g.Techniques) == 0 {
		return nil, fmt.Errorf("analytic: batch grid has no techniques")
	}
	if g.TimeSteps == 0 {
		g.TimeSteps = 1440
	}

	e := &Evaluator{
		grid:       g,
		techniques: append([]core.Technique(nil), g.Techniques...),
		cfgs:       make([]machine.Config, len(g.MTBFs)),
		models:     make([]*failures.Model, len(g.MTBFs)),
		apps:       make([]workload.App, len(g.Nodes)),
		costs:      make([]resilience.Costs, len(g.Nodes)),
		mu:         resilience.MessageLoggingSlowdown(g.Class),
		mlStretch:  make([]float64, len(g.MTBFs)*len(g.Nodes)),
		mlDone:     make([]bool, len(g.MTBFs)*len(g.Nodes)),
		eff:        make([]float64, len(g.MTBFs)*len(g.Nodes)*len(g.Techniques)),
	}
	for mi, mtbf := range g.MTBFs {
		e.cfgs[mi] = g.Machine.WithMTBF(mtbf)
		model, err := failures.NewModel(mtbf, g.PMF)
		if err != nil {
			return nil, err
		}
		e.models[mi] = model
	}
	for ni, n := range g.Nodes {
		app := workload.App{Class: g.Class, TimeSteps: g.TimeSteps, Nodes: n}
		if err := app.Validate(); err != nil {
			return nil, err
		}
		if n > g.Machine.Nodes {
			return nil, fmt.Errorf("analytic: grid size %d exceeds machine %q (%d nodes)",
				n, g.Machine.Name, g.Machine.Nodes)
		}
		e.apps[ni] = app
		// Checkpoint costs depend only on the application and the
		// machine's memory/network shape, never on the MTBF axis.
		e.costs[ni] = resilience.ComputeCosts(app, g.Machine)
	}
	for _, t := range g.Techniques {
		switch t {
		case core.Ideal, core.CheckpointRestart, core.ParallelRecovery,
			core.MultilevelCheckpoint, core.PartialRedundancy, core.FullRedundancy,
			core.InMemoryReplicatedCheckpoint, core.LightweightReplication:
		default:
			return nil, fmt.Errorf("analytic: no model for technique %v", t)
		}
	}
	return e, nil
}

// Index flattens a (MTBF, nodes, technique) coordinate into the Eval
// buffer.
func (e *Evaluator) Index(mi, ni, ti int) int {
	return (mi*len(e.grid.Nodes)+ni)*len(e.techniques) + ti
}

// Eval scores every grid cell and returns the efficiency buffer, indexed
// by Index. The buffer is owned by the evaluator and overwritten by the
// next Eval call.
func (e *Evaluator) Eval() []float64 {
	for mi := range e.grid.MTBFs {
		model := e.models[mi]
		cfg := e.cfgs[mi]
		for ni := range e.grid.Nodes {
			app := e.apps[ni]
			costs := e.costs[ni]
			rate := model.Rate(app.Nodes).PerMinute()
			base := e.Index(mi, ni, 0)
			for ti, t := range e.techniques {
				var eff float64
				switch t {
				case core.Ideal:
					eff = 1
				case core.CheckpointRestart:
					eff = exactPeriodicEfficiency(1, costs.PFS, costs.PFS, rate)
				case core.ParallelRecovery:
					eff = periodicEfficiency(e.mu, costs.L2, costs.L2, rate, e.grid.Resilience.RecoverySpeedup)
				case core.MultilevelCheckpoint:
					eff = e.multilevel(mi, ni, app, costs, model)
				case core.PartialRedundancy:
					eff = redundantEfficiency(app, cfg, costs, model, 1.5)
				case core.FullRedundancy:
					eff = redundantEfficiency(app, cfg, costs, model, 2.0)
				case core.InMemoryReplicatedCheckpoint:
					eff = restoreEfficiency(app, costs, model, e.grid.Resilience.ReStoreReplicas())
				case core.LightweightReplication:
					eff = teamReplicationEfficiency(app, cfg, costs, model, e.grid.Resilience.TeamSyncPenalty)
				}
				e.eff[base+ti] = eff
			}
		}
	}
	return e.eff
}

// multilevel scores the multilevel cell through the evaluator's stretch
// cache: the schedule search runs once per (MTBF, nodes) pair and its
// exact stretch is reused by every later Eval.
func (e *Evaluator) multilevel(mi, ni int, app workload.App, costs resilience.Costs, model *failures.Model) float64 {
	slot := mi*len(e.grid.Nodes) + ni
	if !e.mlDone[slot] {
		eff, err := multilevelEfficiency(app, costs, model, e.grid.Resilience)
		stretch := 0.0
		if err == nil && eff > 0 {
			stretch = 1 / eff
		}
		e.mlStretch[slot] = stretch
		e.mlDone[slot] = true
	}
	if s := e.mlStretch[slot]; s > 0 {
		return clamp01(1 / s)
	}
	return 0
}

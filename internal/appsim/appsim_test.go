package appsim

import (
	"testing"

	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/resilience"
	"exaresil/internal/rng"
	"exaresil/internal/stats"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

func executor(t *testing.T, tech core.Technique, class workload.Class, nodes int) resilience.Executor {
	t.Helper()
	cfg := machine.Exascale()
	model := failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF())
	app := workload.App{ID: 0, Class: class, TimeSteps: 1440, Nodes: nodes}
	x, err := resilience.New(tech, app, cfg, model, resilience.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestRunBasicStats(t *testing.T) {
	x := executor(t, core.CheckpointRestart, workload.B32, 12000)
	st := Run(TrialSpec{Executor: x, Trials: 40, Seed: 1})
	if st.Efficiency.N != 40 {
		t.Errorf("efficiency over %d trials, want 40", st.Efficiency.N)
	}
	if st.Efficiency.Mean <= 0 || st.Efficiency.Mean > 1 {
		t.Errorf("mean efficiency %v outside (0,1]", st.Efficiency.Mean)
	}
	if st.CompletionRate != 1 {
		t.Errorf("completion rate %v, want 1 for a 10%% app at 10y MTBF", st.CompletionRate)
	}
	if st.Makespan.Mean < 1440 {
		t.Errorf("mean makespan %v below baseline 1440", st.Makespan.Mean)
	}
	if st.Checkpoints.Mean <= 0 {
		t.Error("no checkpoints recorded")
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	// The whole point of numbered substreams plus slot-ordered
	// aggregation: results must be bit-identical for any parallelism.
	base := Run(TrialSpec{Executor: executor(t, core.ParallelRecovery, workload.C64, 6000), Trials: 24, Seed: 7, Workers: 1})
	para := Run(TrialSpec{Executor: executor(t, core.ParallelRecovery, workload.C64, 6000), Trials: 24, Seed: 7, Workers: 8})
	if base != para {
		t.Errorf("study differs across worker counts:\n 1 worker: %+v\n 8 workers: %+v", base, para)
	}
}

func TestRunRepeatedCallsIdentical(t *testing.T) {
	// Re-running the same spec on the same executor must replay exactly:
	// executors (and their pooled simulators) are stateless between runs.
	x := executor(t, core.MultilevelCheckpoint, workload.D64, 12000)
	a := Run(TrialSpec{Executor: x, Trials: 12, Seed: 11})
	b := Run(TrialSpec{Executor: x, Trials: 12, Seed: 11})
	if a != b {
		t.Errorf("repeated study differs:\n first: %+v\n second: %+v", a, b)
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	a := Run(TrialSpec{Executor: executor(t, core.CheckpointRestart, workload.C64, 30000), Trials: 10, Seed: 1})
	b := Run(TrialSpec{Executor: executor(t, core.CheckpointRestart, workload.C64, 30000), Trials: 10, Seed: 2})
	if a.Efficiency.Mean == b.Efficiency.Mean && a.Failures.Mean == b.Failures.Mean {
		t.Error("different seeds produced identical studies")
	}
}

func TestRunNonViableExecutor(t *testing.T) {
	// r=2.0 on 75% of the machine cannot be placed.
	x := executor(t, core.FullRedundancy, workload.A32, 90000)
	st := Run(TrialSpec{Executor: x, Trials: 10, Seed: 1})
	if st.Efficiency.Mean != 0 || st.Efficiency.StdDev != 0 {
		t.Errorf("non-viable study should report zero efficiency, got %v", st.Efficiency)
	}
	if st.CompletionRate != 0 {
		t.Errorf("non-viable study completion rate %v", st.CompletionRate)
	}
	if st.Efficiency.N != 10 {
		t.Errorf("non-viable study should still report n=10, got %d", st.Efficiency.N)
	}
}

func TestRunPanicsOnZeroTrials(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero trials")
		}
	}()
	Run(TrialSpec{Executor: executor(t, core.CheckpointRestart, workload.A32, 1200)})
}

func TestHorizonFactorCapsRunaways(t *testing.T) {
	// At 2.5y MTBF, an exascale CR app cannot progress; a tight horizon
	// keeps the study finite and scores it zero.
	cfg := machine.Exascale().WithMTBF(units25())
	model := failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF())
	app := workload.App{ID: 0, Class: workload.D64, TimeSteps: 1440, Nodes: cfg.Nodes}
	x, err := resilience.New(core.CheckpointRestart, app, cfg, model, resilience.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := Run(TrialSpec{Executor: x, Trials: 4, Seed: 3, HorizonFactor: 5})
	if st.CompletionRate > 0.5 {
		t.Errorf("completion rate %v; expected near-total failure to complete", st.CompletionRate)
	}
}

// units25 is 2.5 years expressed in simulation time.
func units25() units.Duration { return units.Duration(2.5) * units.Year }

func TestAntitheticOddTrialsLeaveLastUnpaired(t *testing.T) {
	// An odd Antithetic trial count must run: pairs (0,1) and (2,3) plus
	// trial 4 as the unmirrored half of substream 2, nothing dropped or
	// double-counted. The manual replay below is the documented stream
	// derivation; Run must match it bit for bit.
	x := executor(t, core.CheckpointRestart, workload.C64, 30000)
	got := Run(TrialSpec{Executor: x, Trials: 5, Seed: 3, Cell: 9, Antithetic: true, Workers: 1})
	if got.Efficiency.N != 5 {
		t.Fatalf("efficiency over %d trials, want 5", got.Efficiency.N)
	}

	horizon := units.Duration(DefaultHorizonFactor * float64(x.App().Baseline()))
	var eff stats.Accumulator
	var src rng.Source
	for trial := 0; trial < 5; trial++ {
		src.SetSubStream(3, 9, uint64(trial)/2)
		src.SetMirror(trial%2 == 1)
		eff.Add(x.Run(0, horizon, &src).Efficiency())
	}
	if want := eff.Summarize(); got.Efficiency != want {
		t.Errorf("odd antithetic study %+v differs from manual replay %+v", got.Efficiency, want)
	}

	// Worker-count invariance must survive the unpaired tail too.
	para := Run(TrialSpec{Executor: executor(t, core.CheckpointRestart, workload.C64, 30000),
		Trials: 5, Seed: 3, Cell: 9, Antithetic: true, Workers: 8})
	if got != para {
		t.Errorf("odd antithetic study differs across worker counts:\n 1 worker: %+v\n 8 workers: %+v", got, para)
	}
}

func TestAntitheticSharesDrawsAcrossExecutors(t *testing.T) {
	// Common random numbers: two studies passing the same (Seed, Cell)
	// must hand their executors identical failure draws, so running the
	// same executor twice under different spec copies replays exactly.
	x := executor(t, core.MultilevelCheckpoint, workload.D64, 12000)
	a := Run(TrialSpec{Executor: x, Trials: 6, Seed: 21, Cell: 4, Antithetic: true})
	b := Run(TrialSpec{Executor: x.Clone(), Trials: 6, Seed: 21, Cell: 4, Antithetic: true})
	if a != b {
		t.Errorf("same (Seed, Cell) studies differ:\n first: %+v\n second: %+v", a, b)
	}
	c := Run(TrialSpec{Executor: x.Clone(), Trials: 6, Seed: 21, Cell: 5, Antithetic: true})
	if a == c {
		t.Error("distinct cells produced identical studies; substreams are not cell-keyed")
	}
}

// Package appsim is the Monte-Carlo harness for single-application
// resilience studies: it runs many independent simulated executions of one
// (application, technique) pair across worker goroutines and aggregates
// their statistics.
//
// Trials are reproducible regardless of scheduling: trial i always draws
// its randomness from rng.Stream(seed, i), so a study's numbers depend only
// on its seed and trial count, never on GOMAXPROCS.
package appsim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"exaresil/internal/resilience"
	"exaresil/internal/rng"
	"exaresil/internal/stats"
	"exaresil/internal/units"
)

// DefaultHorizonFactor bounds runaway executions: a run is abandoned (and
// scored at zero efficiency) once it exceeds this multiple of the
// application's baseline execution time. The paper's degenerate regimes
// (Checkpoint Restart at exascale with unreliable components) are exactly
// the runs this cap catches.
const DefaultHorizonFactor = 100

// TrialSpec describes a Monte-Carlo study of one executor.
type TrialSpec struct {
	// Executor is the (application, technique) pair under study.
	Executor resilience.Executor
	// Trials is the number of independent executions (the paper uses 200
	// for the scaling studies).
	Trials int
	// Seed selects the family of random streams.
	Seed uint64
	// HorizonFactor overrides DefaultHorizonFactor when positive.
	HorizonFactor float64
	// Workers overrides the worker goroutine count (default GOMAXPROCS).
	Workers int

	// Antithetic switches the study to variance-reduced draws: trials run
	// in antithetic pairs, trial 2k and 2k+1 sharing the (Seed, Cell, k)
	// substream with the odd member's continuous draws mirrored (U -> 1-U;
	// see rng.SetMirror). An odd Trials count simply leaves the last trial
	// unpaired. Pair means are unbiased and negatively correlated, so the
	// study reaches a given confidence width in fewer trials — DESIGN.md
	// §11 discusses when the pairing is statistically valid.
	Antithetic bool
	// Cell names the study's coordinate in a larger grid when Antithetic
	// is set: streams come from rng.SubStream(Seed, Cell, k), so several
	// studies probing the same cell — the technique arms of a selection
	// cell — share identical failure draws (common random numbers) by
	// passing the same (Seed, Cell). Ignored in the default mode, which
	// keeps the historical per-trial rng.Stream(Seed, i) derivation.
	Cell uint64
}

// TrialStats aggregates the results of a Monte-Carlo study.
type TrialStats struct {
	// Efficiency summarizes the paper's headline metric over all trials;
	// incomplete runs contribute zeros.
	Efficiency stats.Summary
	// Makespan summarizes wall time over completed trials only.
	Makespan stats.Summary
	// Failures, Rollbacks, and Checkpoints summarize event counts over
	// all trials.
	Failures, Rollbacks, Checkpoints stats.Summary
	// CompletionRate is the fraction of trials that finished before the
	// horizon.
	CompletionRate float64
}

// Run executes the study. It panics on a non-positive trial count, and
// returns all-zero statistics for non-viable executors without running
// anything (their efficiency is identically zero).
func Run(spec TrialSpec) TrialStats {
	if spec.Trials <= 0 {
		panic(fmt.Sprintf("appsim: trial count %d must be positive", spec.Trials))
	}
	x := spec.Executor
	horizonFactor := spec.HorizonFactor
	if horizonFactor <= 0 {
		horizonFactor = DefaultHorizonFactor
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > spec.Trials {
		workers = spec.Trials
	}

	if ok, _ := x.Viable(); !ok {
		// Every run would be blocked at zero efficiency; synthesize the
		// aggregate directly.
		var eff, counts stats.Accumulator
		for i := 0; i < spec.Trials; i++ {
			eff.Add(0)
			counts.Add(0)
		}
		return TrialStats{
			Efficiency:  eff.Summarize(),
			Failures:    counts.Summarize(),
			Rollbacks:   counts.Summarize(),
			Checkpoints: counts.Summarize(),
		}
	}

	horizon := units.Duration(horizonFactor * float64(x.App().Baseline()))

	// Each trial writes its observations into its own slot; the aggregation
	// below folds the slots in trial order. Trial i's randomness is
	// rng.Stream(seed, i) regardless of which worker runs it, and the
	// order-sensitive Welford accumulation happens single-threaded over the
	// numbered slots, so the study's statistics are bit-identical for any
	// worker count — stronger than the old per-worker-accumulator scheme,
	// which was deterministic only to floating-point merge order.
	type trialResult struct {
		eff, failures, rollbacks, ckpts float64
		makespan                        float64
		completed                       bool
	}
	results := make([]trialResult, spec.Trials)

	// Each worker needs its own executor: strategies carry per-run state,
	// and each executor owns a discrete-event simulator whose event pool
	// stays warm across that worker's trials. Worker 0 reuses the caller's
	// executor; the rest get clones.
	execs := make([]resilience.Executor, workers)
	execs[0] = x
	for w := 1; w < workers; w++ {
		execs[w] = x.Clone()
	}

	// Trials are handed out by an atomic counter: one add per trial
	// instead of a channel send/recv pair, and no dispatcher goroutine.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(x resilience.Executor) {
			defer wg.Done()
			// One scratch source per worker, re-seeded in place for each
			// trial: the same streams rng.Stream/SubStream would allocate,
			// without the per-trial allocation. Executors only read the
			// source inside Run, so sequential trials may share it.
			var src rng.Source
			for {
				trial := next.Add(1) - 1
				if trial >= int64(spec.Trials) {
					return
				}
				if spec.Antithetic {
					// Pair k = trial/2; the odd member mirrors its twin.
					src.SetSubStream(spec.Seed, spec.Cell, uint64(trial)/2)
					src.SetMirror(trial%2 == 1)
				} else {
					src.SetStream(spec.Seed, uint64(trial))
				}
				res := x.Run(0, horizon, &src)
				results[trial] = trialResult{
					eff:       res.Efficiency(),
					failures:  float64(res.Failures),
					rollbacks: float64(res.Rollbacks),
					ckpts:     float64(res.TotalCheckpoints()),
					makespan:  res.Makespan().Minutes(),
					completed: res.Completed,
				}
			}
		}(execs[w])
	}
	wg.Wait()

	var out struct {
		eff, makespan, failures, rollbacks, ckpts stats.Accumulator
		completed                                 int
	}
	for _, r := range results {
		out.eff.Add(r.eff)
		out.failures.Add(r.failures)
		out.rollbacks.Add(r.rollbacks)
		out.ckpts.Add(r.ckpts)
		if r.completed {
			out.completed++
			out.makespan.Add(r.makespan)
		}
	}
	return TrialStats{
		Efficiency:     out.eff.Summarize(),
		Makespan:       out.makespan.Summarize(),
		Failures:       out.failures.Summarize(),
		Rollbacks:      out.rollbacks.Summarize(),
		Checkpoints:    out.ckpts.Summarize(),
		CompletionRate: float64(out.completed) / float64(spec.Trials),
	}
}

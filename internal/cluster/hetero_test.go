package cluster

import (
	"reflect"
	"testing"

	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/resilience"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// twoClassMachine is a small fleet whose first-declared class is fast but
// fragile and whose second is slow but hardened — the ordering that makes
// first-fit and reliability-aware placement disagree.
func twoClassMachine() machine.Config {
	c := machine.Exascale()
	c.Name = "test-two-class"
	c.Nodes = 100
	c.Classes = []machine.NodeClass{
		{Name: "fast", Count: 50, Speed: 1.25, MTBF: 1 * units.Year},
		{Name: "hardened", Count: 50, Speed: 0.8, MTBF: 100 * units.Year},
	}
	return c
}

func heteroSpec(t *testing.T, cfg machine.Config, tech core.Technique, placement PlacementPolicy, apps []workload.App) Spec {
	t.Helper()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("test machine invalid: %v", err)
	}
	return Spec{
		Machine:    cfg,
		Model:      failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF()),
		Scheduler:  core.FCFS,
		Technique:  tech,
		Resilience: resilience.DefaultConfig(),
		Placement:  placement,
		Pattern:    workload.Pattern{Apps: apps},
		Seed:       7,
	}
}

// TestPlacementIgnoredOnHomogeneous guards the golden exhibits: on a
// machine without classes, the placement policy must not perturb the run
// in any way.
func TestPlacementIgnoredOnHomogeneous(t *testing.T) {
	base := testSpec(t, core.SlackBased, core.MultilevelCheckpoint, 11)
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withPolicy := base
	withPolicy.Placement = PlaceReliability
	again, err := Run(withPolicy)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, again) {
		t.Error("placement policy changed a homogeneous run")
	}
}

func TestInvalidPlacementRejected(t *testing.T) {
	app := workload.App{ID: 1, Class: workload.A32, TimeSteps: 60, Nodes: 10}
	spec := heteroSpec(t, twoClassMachine(), core.Ideal, PlacementPolicy(99), []workload.App{app})
	if _, err := Run(spec); err == nil {
		t.Error("invalid placement policy accepted on a heterogeneous machine")
	}
	// The same bogus policy is ignored on a homogeneous machine.
	homo := testSpec(t, core.FCFS, core.Ideal, 3)
	homo.Placement = PlacementPolicy(99)
	if _, err := Run(homo); err != nil {
		t.Errorf("placement policy should be inert on homogeneous machines: %v", err)
	}
}

// TestReliabilityPlacement checks the policy's two preferences: a
// checkpoint-heavy technique lands on the hardened class, a
// replication-style one on the fast class, and first-fit takes declared
// order regardless.
func TestReliabilityPlacement(t *testing.T) {
	cases := []struct {
		name      string
		tech      core.Technique
		placement PlacementPolicy
		wantClass string
	}{
		{"checkpoint-heavy prefers reliable", core.MultilevelCheckpoint, PlaceReliability, "hardened"},
		{"plain checkpoint prefers reliable", core.CheckpointRestart, PlaceReliability, "hardened"},
		{"replication prefers fast", core.LightweightReplication, PlaceReliability, "fast"},
		{"first-fit takes declared order", core.MultilevelCheckpoint, PlaceFirstFit, "fast"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			app := workload.App{ID: 1, Class: workload.A32, TimeSteps: 60, Nodes: 10}
			spec := heteroSpec(t, twoClassMachine(), tc.tech, tc.placement, []workload.App{app})
			m, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			r := m.Results[0]
			if !r.Started {
				t.Fatalf("app never started: %+v", r)
			}
			if r.Class != tc.wantClass {
				t.Errorf("placed on %q, want %q", r.Class, tc.wantClass)
			}
		})
	}
}

// TestHeteroFragmentation drives the case where aggregate free capacity
// admits a job but no single class has room: the job must stay queued
// (not fail the run) and start once a departure frees a class.
func TestHeteroFragmentation(t *testing.T) {
	cfg := machine.Exascale()
	cfg.Name = "test-frag"
	cfg.Nodes = 20
	cfg.Classes = []machine.NodeClass{
		{Name: "a", Count: 10, Speed: 1.0, MTBF: 10 * units.Year},
		{Name: "b", Count: 10, Speed: 1.0, MTBF: 10 * units.Year},
	}
	apps := []workload.App{
		// A and B each take 8 of a 10-node class (first-fit: A on "a",
		// B on "b"), leaving 2+2 free. C needs 4: aggregate free is 4
		// but no class can host it until A departs at t=60min.
		{ID: 1, Class: workload.A32, TimeSteps: 60, Nodes: 8},
		{ID: 2, Class: workload.A32, TimeSteps: 600, Nodes: 8},
		{ID: 3, Class: workload.A32, TimeSteps: 10, Nodes: 4, Arrival: units.Minute},
	}
	spec := heteroSpec(t, cfg, core.Ideal, PlaceFirstFit, apps)
	m, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 3 {
		t.Fatalf("completed %d of 3: %+v", m.Completed, m.Results)
	}
	c := m.Results[2]
	if c.App.ID != 3 {
		t.Fatalf("results out of pattern order: %+v", m.Results)
	}
	if c.Start < 60*units.Minute {
		t.Errorf("fragmented job started at %v, want deferred to A's departure at 60m", c.Start)
	}
	if c.Class != "a" {
		t.Errorf("fragmented job placed on %q, want the freed class %q", c.Class, "a")
	}
}

// TestHeteroNoClassEverFits drops a job whose footprint exceeds every
// class even though the machine total would admit it.
func TestHeteroNoClassEverFits(t *testing.T) {
	cfg := machine.Exascale()
	cfg.Name = "test-oversize"
	cfg.Nodes = 20
	cfg.Classes = []machine.NodeClass{
		{Name: "a", Count: 10, Speed: 1.0, MTBF: 10 * units.Year},
		{Name: "b", Count: 10, Speed: 1.0, MTBF: 10 * units.Year},
	}
	app := workload.App{ID: 1, Class: workload.A32, TimeSteps: 60, Nodes: 15}
	spec := heteroSpec(t, cfg, core.Ideal, PlaceFirstFit, []workload.App{app})
	m, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Results[0]
	if r.Outcome != OutcomeDroppedQueued || r.Started {
		t.Errorf("oversize job should be dropped queued, got %+v", r)
	}
}

// TestHeteroSpeedScaling verifies the class speed multiplier reaches the
// executor: under Ideal execution a job on a 1.25x class finishes in
// 1/1.25 the steps.
func TestHeteroSpeedScaling(t *testing.T) {
	app := workload.App{ID: 1, Class: workload.A32, TimeSteps: 100, Nodes: 10}
	spec := heteroSpec(t, twoClassMachine(), core.Ideal, PlaceFirstFit, []workload.App{app})
	m, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Results[0]
	if r.Class != "fast" {
		t.Fatalf("placed on %q, want fast", r.Class)
	}
	// 100 steps / 1.25 = 80 minutes of ideal execution.
	if got := r.End - r.Start; got != 80*units.Minute {
		t.Errorf("fast-class ideal runtime = %v, want 80m", got)
	}
}

// TestHeteroFullRunResolves runs a realistic heterogeneous study slice:
// a generated fill-system pattern on the exascale hetero fleet, with
// every application resolving and every started one carrying a class.
func TestHeteroFullRunResolves(t *testing.T) {
	spec := testSpec(t, core.SlackBased, core.MultilevelCheckpoint, 17)
	spec.Machine = machine.ExascaleHetero()
	spec.Placement = PlaceReliability
	names := map[string]bool{}
	for _, cl := range spec.Machine.Classes {
		names[cl.Name] = true
	}
	m, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if m.Total != len(spec.Pattern.Apps) {
		t.Fatalf("resolved %d of %d", m.Total, len(spec.Pattern.Apps))
	}
	started := 0
	for _, r := range m.Results {
		if r.Started {
			started++
			if !names[r.Class] {
				t.Errorf("app %d started on unknown class %q", r.App.ID, r.Class)
			}
		} else if r.Class != "" {
			t.Errorf("unstarted app %d carries class %q", r.App.ID, r.Class)
		}
	}
	if started == 0 {
		t.Error("no application ever started")
	}
}

package cluster

// Class-aware placement for heterogeneous machines. A homogeneous run
// (no machine.Config.Classes) never touches this file: the cluster keeps
// one free-node count and the mapper's decision is the whole story, so
// every pre-existing exhibit is bit-identical. On a heterogeneous fleet
// the mapper still sees only aggregate free capacity — deciding *who*
// starts stays its job — and the placement policy decides *where*: which
// class hosts each started application, with per-class capacity ledgers,
// per-class failure models, and speed-scaled execution.

import (
	"fmt"

	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/resilience"
	"exaresil/internal/workload"
)

// PlacementPolicy selects which node class hosts a starting application
// on a heterogeneous machine. Homogeneous machines ignore it.
type PlacementPolicy int

// The placement policies.
const (
	// PlaceFirstFit walks classes in declared order and takes the first
	// with room — capacity-only, the heterogeneity-blind baseline.
	PlaceFirstFit PlacementPolicy = iota
	// PlaceReliability matches the technique to the fleet: applications
	// under checkpoint-heavy techniques (whose recovery cost scales with
	// failure frequency) prefer the highest-MTBF class with room, while
	// replication-style techniques — already paying their overhead up
	// front and shrugging off single failures — prefer the fastest class.
	PlaceReliability
)

// String names the policy for reports.
func (p PlacementPolicy) String() string {
	switch p {
	case PlaceFirstFit:
		return "first-fit"
	case PlaceReliability:
		return "reliability"
	default:
		return fmt.Sprintf("PlacementPolicy(%d)", int(p))
	}
}

// Valid reports whether the policy is one of the defined values.
func (p PlacementPolicy) Valid() bool {
	return p == PlaceFirstFit || p == PlaceReliability
}

// checkpointHeavy reports whether the technique's running cost is
// dominated by checkpoint/restart traffic, making node reliability the
// binding resource for it.
func checkpointHeavy(t core.Technique) bool {
	switch t {
	case core.CheckpointRestart, core.MultilevelCheckpoint, core.InMemoryReplicatedCheckpoint:
		return true
	}
	return false
}

// classState is one node class's runtime ledger.
type classState struct {
	class machine.NodeClass
	view  machine.Config  // the class projected as a homogeneous machine
	model *failures.Model // the study model at the class MTBF
	free  int
}

// buildClasses materializes the per-class ledgers, views, and failure
// models for a heterogeneous spec (nil for homogeneous machines).
func buildClasses(spec Spec) ([]*classState, error) {
	if !spec.Machine.Heterogeneous() {
		return nil, nil
	}
	if !spec.Placement.Valid() {
		return nil, fmt.Errorf("cluster: invalid placement policy %v", spec.Placement)
	}
	classes := make([]*classState, len(spec.Machine.Classes))
	for i, cl := range spec.Machine.Classes {
		model, err := spec.Model.WithMTBF(cl.MTBF)
		if err != nil {
			return nil, fmt.Errorf("cluster: class %q failure model: %w", cl.Name, err)
		}
		classes[i] = &classState{
			class: cl,
			view:  spec.Machine.ClassView(i),
			model: model,
			free:  cl.Count,
		}
	}
	return classes, nil
}

// scaleApp projects an application onto a class of the given speed: a
// class s times faster works through the same computation in 1/s the
// time steps (never below one). All bookkeeping stays in wall time; only
// the amount of work per wall-minute changes.
func scaleApp(app workload.App, speed float64) workload.App {
	if speed == 1 {
		return app
	}
	steps := int(float64(app.TimeSteps)/speed + 0.5)
	if steps < 1 {
		steps = 1
	}
	app.TimeSteps = steps
	return app
}

// placeClass picks the class that will host j and builds the executor
// that runs it there (class view, class failure model, speed-scaled
// app). It returns nils when no single class currently has room for the
// job's physical footprint — the job stays queued even though aggregate
// free capacity admitted it (fragmentation), and the next mapping event
// retries.
func (c *run) placeClass(j *job) (*classState, resilience.Executor) {
	best := -1
	for i, cls := range c.classes {
		if cls.free < j.phys {
			continue
		}
		if best < 0 {
			best = i
			if c.spec.Placement == PlaceFirstFit {
				break
			}
			continue
		}
		a, b := c.classes[best].class, cls.class
		if checkpointHeavy(j.tech) {
			if b.MTBF > a.MTBF || (b.MTBF == a.MTBF && b.Speed > a.Speed) {
				best = i
			}
		} else {
			if b.Speed > a.Speed || (b.Speed == a.Speed && b.MTBF > a.MTBF) {
				best = i
			}
		}
	}
	if best < 0 {
		return nil, nil
	}
	cls := c.classes[best]
	exec, err := resilience.New(j.tech, scaleApp(j.app, cls.class.Speed), cls.view, cls.model, c.spec.Resilience)
	if err != nil {
		c.err = fmt.Errorf("cluster: building class %q executor for app %d: %w", cls.class.Name, j.app.ID, err)
		c.sim.Stop()
		return nil, nil
	}
	if got := exec.PhysicalNodes(); got != j.phys {
		// The mapper's ledger was built from the base-machine footprint;
		// a class executor that disagrees would corrupt the accounting.
		c.err = fmt.Errorf("cluster: class %q executor for app %d occupies %d nodes, ledger reserved %d",
			cls.class.Name, j.app.ID, got, j.phys)
		c.sim.Stop()
		return nil, nil
	}
	if ok, _ := exec.Viable(); !ok {
		return nil, nil
	}
	resilience.Instrument(exec, c.rm)
	resilience.AttachRuntime(exec, c.runtime)
	return cls, exec
}

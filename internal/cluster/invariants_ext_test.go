// External tests of the cluster layer: these exercise the public API only
// (and so can pull in internal/check, which itself imports cluster).
package cluster_test

import (
	"reflect"
	"testing"

	"exaresil/internal/check"
	"exaresil/internal/cluster"
	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/obs"
	"exaresil/internal/resilience"
	"exaresil/internal/rng"
	"exaresil/internal/workload"
)

func extSpec(t *testing.T, sch core.Scheduler, tech core.Technique, seed uint64) cluster.Spec {
	t.Helper()
	cfg := machine.Exascale()
	pattern := workload.PatternSpec{Arrivals: 30, FillSystem: true}.Generate(cfg, rng.New(seed))
	return cluster.Spec{
		Machine:    cfg,
		Model:      failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF()),
		Scheduler:  sch,
		Technique:  tech,
		Resilience: resilience.DefaultConfig(),
		Pattern:    pattern,
		Seed:       seed,
	}
}

// TestClusterInvariants runs the outcome-ledger checker over every RM
// heuristic x cluster technique combination across a few seeds: timestamps
// must be consistent with outcomes, counters must decompose, and occupied
// node-seconds must fit inside machine capacity.
func TestClusterInvariants(t *testing.T) {
	for _, sch := range core.Schedulers() {
		for _, tech := range core.ClusterTechniques() {
			for seed := uint64(1); seed <= 3; seed++ {
				spec := extSpec(t, sch, tech, seed)
				m, err := cluster.Run(spec)
				if err != nil {
					t.Fatalf("%v/%v seed=%d: %v", sch, tech, seed, err)
				}
				label := sch.String() + "/" + tech.String()
				for _, v := range check.CheckCluster(label, spec, m) {
					t.Errorf("seed=%d: %v", seed, v)
				}
			}
		}
	}
}

// TestMetricsAttachmentIsInert pins the obs contract the Spec documents:
// attaching a registry must never change simulation behavior. The same
// Spec+seed with and without a registry must produce identical Metrics,
// down to every per-application result.
func TestMetricsAttachmentIsInert(t *testing.T) {
	for _, sch := range core.Schedulers() {
		for seed := uint64(1); seed <= 2; seed++ {
			bare := extSpec(t, sch, core.MultilevelCheckpoint, seed)
			instrumented := bare
			instrumented.Obs = obs.NewRegistry()

			a, err := cluster.Run(bare)
			if err != nil {
				t.Fatalf("%v seed=%d: %v", sch, seed, err)
			}
			b, err := cluster.Run(instrumented)
			if err != nil {
				t.Fatalf("%v seed=%d (instrumented): %v", sch, seed, err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%v seed=%d: metrics attachment changed the run: %+v vs %+v", sch, seed, a, b)
			}
		}
	}
}

// TestRunIsDeterministic pins seed-level reproducibility of the full
// cluster pipeline: two runs of the identical Spec must agree on every
// field of Metrics, including the complete Results ledger. (The coarse
// in-package determinism test only compares headline counters.)
func TestRunIsDeterministic(t *testing.T) {
	for _, tech := range core.ClusterTechniques() {
		spec := extSpec(t, core.SlackBased, tech, 7)
		spec.Obs = obs.NewRegistry()
		a, err := cluster.Run(spec)
		if err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
		// A fresh registry for the rerun: series accumulate, and sharing
		// one would double every counter without affecting determinism.
		spec.Obs = obs.NewRegistry()
		b, err := cluster.Run(spec)
		if err != nil {
			t.Fatalf("%v rerun: %v", tech, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%v: identical Spec+seed diverged:\n  first  %+v\n  second %+v", tech, a, b)
		}
	}
}

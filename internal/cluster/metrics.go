package cluster

import (
	"exaresil/internal/obs"
)

// clusterMetrics is the cluster layer's observability bundle: mapper
// activity, queue pressure, node utilization samples, queueing delay, and
// per-outcome application counts. Like every bundle in the study, the nil
// bundle is fully disabled — each hook is a nil-receiver no-op — and all
// series are atomic, so sweeps that run many cluster simulations against
// one registry aggregate across runs.
type clusterMetrics struct {
	// mapEvents counts mapper invocations (coalesced mapping events, not
	// arrivals); starts counts applications placed on the machine.
	mapEvents *obs.Counter
	starts    *obs.Counter
	// outcomes counts resolved applications by fate, indexed by Outcome.
	outcomes [3]*obs.Counter
	// queueDepth samples the viable queue length at each mapping event;
	// queuePeak is its maximum.
	queueDepth *obs.Histogram
	queuePeak  *obs.Gauge
	// utilization samples the in-use node fraction at every allocation
	// change.
	utilization *obs.Histogram
	// waits samples per-application queueing delay in simulated minutes.
	waits *obs.Histogram
	// reg backs the per-class free-node gauges of heterogeneous runs,
	// which are labeled by class name and so registered lazily.
	reg *obs.Registry
}

// newClusterMetrics registers the cluster series on r (nil r yields the
// disabled bundle). The bundle is memoized per registry, so one sweep's
// many cluster runs share a single registration pass.
func newClusterMetrics(r *obs.Registry) *clusterMetrics {
	if r == nil {
		return nil
	}
	return r.Memo("cluster.Metrics", func() any { return newClusterMetricsLocked(r) }).(*clusterMetrics)
}

func newClusterMetricsLocked(r *obs.Registry) *clusterMetrics {
	m := &clusterMetrics{
		reg: r,
		mapEvents: r.Counter("exaresil_cluster_mapper_invocations_total",
			"resource-management mapping events"),
		starts: r.Counter("exaresil_cluster_apps_started_total",
			"applications placed on the machine"),
		queueDepth: r.Histogram("exaresil_cluster_queue_depth",
			"viable queue length sampled at each mapping event", obs.DepthBuckets),
		queuePeak: r.Gauge("exaresil_cluster_queue_depth_peak",
			"maximum viable queue length observed"),
		utilization: r.Histogram("exaresil_cluster_node_utilization",
			"in-use node fraction sampled at allocation changes", obs.FractionBuckets),
		waits: r.Histogram("exaresil_cluster_wait_minutes",
			"per-application queueing delay in simulated minutes", obs.MinuteBuckets),
	}
	for o := OutcomeCompleted; o <= OutcomeDroppedRunning; o++ {
		m.outcomes[o] = r.Counter("exaresil_cluster_apps_total",
			"resolved applications by fate", obs.L("outcome", o.String()))
	}
	return m
}

// observeMapEvent records one mapper invocation over a queue of the given
// depth.
func (m *clusterMetrics) observeMapEvent(depth int) {
	if m == nil {
		return
	}
	m.mapEvents.Inc()
	m.queuePeak.SetMax(int64(depth))
	m.queueDepth.Observe(float64(depth))
}

// observeStart records one placement.
func (m *clusterMetrics) observeStart() {
	if m == nil {
		return
	}
	m.starts.Inc()
}

// observeUtilization samples the in-use node fraction.
func (m *clusterMetrics) observeUtilization(fraction float64) {
	if m == nil {
		return
	}
	m.utilization.Observe(fraction)
}

// observeClassFree samples one node class's free-node count on a
// heterogeneous machine.
func (m *clusterMetrics) observeClassFree(class string, free int) {
	if m == nil {
		return
	}
	m.reg.Gauge("exaresil_cluster_class_free_nodes",
		"free nodes per machine class", obs.L("class", class)).Set(int64(free))
}

// observeResolve records one application's fate.
func (m *clusterMetrics) observeResolve(r AppResult) {
	if m == nil {
		return
	}
	if int(r.Outcome) >= 0 && int(r.Outcome) < len(m.outcomes) {
		m.outcomes[r.Outcome].Inc()
	}
	m.waits.Observe(r.Waited().Minutes())
}

// Package cluster simulates an oversubscribed exascale machine serving an
// arrival pattern of applications under a resource-management heuristic and
// a resilience technique (Sections VI and VII of the paper).
//
// The cluster simulation rides on a statistical property of the failure
// model: failures strike uniformly at random over active nodes and form a
// Poisson process, so by Poisson thinning each application experiences an
// independent Poisson failure process with rate N_a/M_n regardless of what
// else is running. The cluster's discrete-event simulation therefore only
// has to coordinate arrivals, mapping events, node accounting, completions,
// and deadline drops; each mapped application's trajectory is produced by
// its own resilience executor.
package cluster

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"exaresil/internal/core"
	"exaresil/internal/des"
	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/obs"
	"exaresil/internal/resilience"
	"exaresil/internal/rng"
	"exaresil/internal/sched"
	"exaresil/internal/stats"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// TechniqueChooser selects the resilience technique for an application at
// mapping time. The Section VII "Resilience Selection" policy is one such
// chooser; a constant function reproduces the single-technique studies.
type TechniqueChooser func(app workload.App) core.Technique

// Spec configures one cluster simulation run.
type Spec struct {
	// Machine is the hardware configuration.
	Machine machine.Config
	// Model is the failure model (MTBF and severity distribution).
	Model *failures.Model
	// Scheduler selects the resource-management heuristic.
	Scheduler core.Scheduler
	// Technique is the resilience technique applied to every
	// application; ignored when Chooser is non-nil.
	Technique core.Technique
	// Chooser, when non-nil, selects a technique per application.
	Chooser TechniqueChooser
	// Resilience tunes technique parameters.
	Resilience resilience.Config
	// Placement selects the node class hosting each started application
	// when Machine is heterogeneous (see placement.go); ignored — and
	// zero-cost — on homogeneous machines.
	Placement PlacementPolicy
	// Pattern is the submission workload.
	Pattern workload.Pattern
	// Seed drives every random choice in the run.
	Seed uint64
	// Obs, when non-nil, receives the run's metrics: cluster series
	// (queue depth, utilization, per-outcome counts, mapper invocations),
	// the resilience time split of every executor the run builds, and the
	// event counters of every simulator involved. Attaching a registry
	// never changes simulation behavior — the series only count — so runs
	// with and without Obs are bit-identical.
	Obs *obs.Registry
	// Mirror antithetically reflects every continuous random draw of the
	// run (failure inter-arrival times; see rng.SetMirror). A mirrored run
	// over the same Spec is the antithetic twin of the plain run: averaging
	// the pair cancels first-order Monte-Carlo noise in the failure draws,
	// which is how the variance-reduced exhibit modes halve their pattern
	// counts at equal confidence width. Discrete draws (mapper orderings,
	// failure locations and severities) are unaffected by construction.
	Mirror bool
}

// Outcome classifies how an application left the system.
type Outcome int

// The possible application fates.
const (
	// OutcomeCompleted: finished before its deadline.
	OutcomeCompleted Outcome = iota
	// OutcomeDroppedQueued: dropped while waiting (negative slack at a
	// mapping event, or a technique that cannot place it at all).
	OutcomeDroppedQueued
	// OutcomeDroppedRunning: started but failed to finish by its
	// deadline; it occupied nodes until the deadline and was removed.
	OutcomeDroppedRunning
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeCompleted:
		return "completed"
	case OutcomeDroppedQueued:
		return "dropped-queued"
	case OutcomeDroppedRunning:
		return "dropped-running"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// AppResult records one application's fate.
type AppResult struct {
	// App is the application descriptor.
	App workload.App
	// Technique is the resilience technique it ran under.
	Technique core.Technique
	// Outcome classifies its fate.
	Outcome Outcome
	// Started reports whether it ever occupied nodes, and Start when.
	Started bool
	Start   units.Duration
	// End is when it left the system (completion, drop, or deadline).
	End units.Duration
	// PhysNodes is the number of machine nodes the application occupied
	// while running (more than App.Nodes for redundant techniques); set
	// whether or not it ever started.
	PhysNodes int
	// Class names the node class that hosted the application on a
	// heterogeneous machine; empty for homogeneous runs and for
	// applications that never started.
	Class string
}

// Waited reports how long the application queued before starting (or
// before being dropped, if it never started).
func (r AppResult) Waited() units.Duration {
	if !r.Started {
		return r.End - r.App.Arrival
	}
	return r.Start - r.App.Arrival
}

// Metrics aggregates one run.
type Metrics struct {
	// Total, Completed and Dropped count applications; Dropped is the
	// paper's Figure 4/5 headline metric.
	Total, Completed, Dropped int
	// DroppedQueued and DroppedRunning decompose Dropped.
	DroppedQueued, DroppedRunning int
	// MeanWait summarizes queueing delay over all applications.
	MeanWait units.Duration
	// MeanEfficiency summarizes baseline/makespan over completed apps.
	MeanEfficiency float64
	// MakespanEnd is when the last application left the system.
	MakespanEnd units.Duration
	// PeakUtilization is the maximum fraction of nodes ever in use.
	PeakUtilization float64
	// AvgUtilization is the time-averaged fraction of nodes in use from
	// time zero until the last departure.
	AvgUtilization float64
	// Results holds every application's fate, in pattern order.
	Results []AppResult
}

// DroppedPct reports the percentage of applications dropped.
func (m Metrics) DroppedPct() float64 {
	if m.Total == 0 {
		return 0
	}
	return 100 * float64(m.Dropped) / float64(m.Total)
}

// job is the cluster's per-application state.
type job struct {
	app         workload.App
	tech        core.Technique
	exec        resilience.Executor
	phys        int // physical nodes when running
	arrived     bool
	started     bool
	running     bool
	expectedEnd units.Duration
	finished    bool
	result      AppResult

	// Mapping-event generation stamps. A job was a candidate, was
	// dropped, or was started in this mapping event iff the stamp equals
	// the run's current generation; bumping the generation resets all
	// three for every job at once, replacing the per-event maps the
	// mapper bookkeeping used to allocate.
	candGen, dropGen, startGen uint64
}

// Run executes one cluster simulation.
func Run(spec Spec) (Metrics, error) {
	if err := spec.Machine.Validate(); err != nil {
		return Metrics{}, err
	}
	if spec.Model == nil {
		return Metrics{}, fmt.Errorf("cluster: nil failure model")
	}
	if err := spec.Resilience.Validate(); err != nil {
		return Metrics{}, err
	}
	mapper, err := sched.New(spec.Scheduler)
	if err != nil {
		return Metrics{}, err
	}
	chooser := spec.Chooser
	if chooser == nil {
		fixed := spec.Technique
		if !fixed.Valid() {
			return Metrics{}, fmt.Errorf("cluster: invalid technique %v", fixed)
		}
		chooser = func(workload.App) core.Technique { return fixed }
	}

	// One contiguous backing array for the per-application state; jobs
	// stay addressed through stable pointers, but the run allocates once
	// instead of once per application.
	backing := make([]job, len(spec.Pattern.Apps))
	jobs := make([]*job, len(spec.Pattern.Apps))
	byID := make(map[int]*job, len(spec.Pattern.Apps))
	for i, app := range spec.Pattern.Apps {
		if err := app.Validate(); err != nil {
			return Metrics{}, err
		}
		backing[i] = job{app: app}
		jobs[i] = &backing[i]
		byID[app.ID] = &backing[i]
	}

	classes, err := buildClasses(spec)
	if err != nil {
		return Metrics{}, err
	}

	c := &run{
		spec:    spec,
		mapper:  mapper,
		chooser: chooser,
		jobs:    jobs,
		byID:    byID,
		classes: classes,
		free:    spec.Machine.Nodes,
		sim:     des.NewPooled(),
		m:       newClusterMetrics(spec.Obs),
		rm:      resilience.NewMetrics(spec.Obs),
	}
	for _, cls := range classes {
		c.m.observeClassFree(cls.class.Name, cls.free)
	}
	c.mapSrc.SetStream(spec.Seed, 1_000_000_007)
	c.mapSrc.SetMirror(spec.Mirror)
	c.sim.SetMetrics(des.NewMetrics(spec.Obs))
	return c.execute()
}

// run is the in-flight simulation state.
type run struct {
	spec    Spec
	mapper  sched.Mapper
	chooser TechniqueChooser
	jobs    []*job
	byID    map[int]*job  // stable app-ID index, built once per run
	classes []*classState // per-class ledgers; nil for homogeneous machines
	queue   []*job
	free    int
	sim     *des.Simulator
	mapSrc  rng.Source
	jobSrc  rng.Source // scratch source re-seeded per executor run
	mapping bool       // a mapping event is already pending at the current time
	mapGen  uint64     // current mapping-event generation (see job stamps)
	peak    int
	err     error
	m       *clusterMetrics
	rm      *resilience.Metrics
	runtime *resilience.Runtime // engine+simulator shared by all executors

	// mappingCb is the shared mapping-event callback, bound once.
	mappingCb des.Callback

	// cands and running are the mapper-argument buffers, reused across
	// mapping events.
	cands   []sched.Candidate
	running []sched.Running

	// busyIntegral accumulates used-node x time; busySince marks the last
	// time the used count changed.
	busyIntegral float64
	busySince    units.Duration
}

// noteUtilization folds the interval since the last node-count change into
// the utilization integral. Call before every change to free.
func (c *run) noteUtilization() {
	now := c.sim.Now()
	used := c.spec.Machine.Nodes - c.free
	c.busyIntegral += float64(used) * float64(now-c.busySince)
	c.busySince = now
	c.m.observeUtilization(float64(used) / float64(c.spec.Machine.Nodes))
}

func (c *run) execute() (Metrics, error) {
	// All arrival events share one callback. Events fire in (time, seq)
	// order and the arrivals are scheduled first, in job order, so the
	// k-th arrival to fire is exactly the k-th index of a stable sort of
	// the jobs by arrival time — identical to binding each job into its
	// own closure, without the per-job allocation.
	order := make([]int32, len(c.jobs))
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortStableFunc(order, func(a, b int32) int {
		return cmp.Compare(c.jobs[a].app.Arrival, c.jobs[b].app.Arrival)
	})
	next := 0
	arriveCb := func(*des.Simulator) {
		j := c.jobs[order[next]]
		next++
		c.arrive(j)
	}
	for _, j := range c.jobs {
		c.sim.Schedule(j.app.Arrival, "arrival", arriveCb)
	}
	c.sim.Run()
	if c.err != nil {
		return Metrics{}, c.err
	}

	m := Metrics{Total: len(c.jobs)}
	var wait stats.Accumulator
	var eff stats.Accumulator
	for _, j := range c.jobs {
		if !j.finished {
			return Metrics{}, fmt.Errorf("cluster: job %d never resolved", j.app.ID)
		}
		m.Results = append(m.Results, j.result)
		wait.Add(j.result.Waited().Minutes())
		switch j.result.Outcome {
		case OutcomeCompleted:
			m.Completed++
			eff.Add(float64(j.app.Baseline()) / float64(j.result.End-j.result.Start))
			if j.result.End > m.MakespanEnd {
				m.MakespanEnd = j.result.End
			}
		case OutcomeDroppedQueued:
			m.Dropped++
			m.DroppedQueued++
		case OutcomeDroppedRunning:
			m.Dropped++
			m.DroppedRunning++
		}
		if j.result.End > m.MakespanEnd {
			m.MakespanEnd = j.result.End
		}
	}
	m.MeanWait = units.Duration(wait.Mean())
	m.MeanEfficiency = eff.Mean()
	m.PeakUtilization = float64(c.peak) / float64(c.spec.Machine.Nodes)
	if m.MakespanEnd > 0 {
		m.AvgUtilization = c.busyIntegral / (float64(c.spec.Machine.Nodes) * float64(m.MakespanEnd))
	}
	return m, nil
}

// arrive enqueues an application and triggers a mapping event.
func (c *run) arrive(j *job) {
	j.arrived = true
	c.queue = append(c.queue, j)
	c.triggerMapping()
}

// triggerMapping schedules a mapping event at the current instant unless
// one is already pending, coalescing the burst of arrivals at time zero.
// The callback is bound once and shared by every mapping event.
func (c *run) triggerMapping() {
	if c.mapping || c.err != nil {
		return
	}
	c.mapping = true
	if c.mappingCb == nil {
		c.mappingCb = func(*des.Simulator) {
			c.mapping = false
			c.mapEvent()
		}
	}
	c.sim.After(0, "mapping", c.mappingCb)
}

// mapEvent runs the resource-management heuristic over the queue.
func (c *run) mapEvent() {
	if c.err != nil || len(c.queue) == 0 {
		return
	}
	now := c.sim.Now()

	// One generation per mapping event: stamping a job's candGen /
	// dropGen / startGen to gen replaces the byID / dropped / started
	// maps this loop used to allocate per event.
	c.mapGen++
	gen := c.mapGen

	cands := c.cands[:0]
	viableQueue := c.queue[:0]
	for _, j := range c.queue {
		if j.exec == nil {
			if err := c.prepare(j); err != nil {
				c.err = err
				c.sim.Stop()
				return
			}
		}
		if ok, _ := j.exec.Viable(); !ok || !c.fitsAnyClass(j.phys) {
			// The chosen technique can never execute this application
			// (e.g. its replica set exceeds the machine, or no node class
			// is large enough for its footprint): drop it now rather than
			// let it sit in the queue forever.
			c.resolve(j, AppResult{
				App: j.app, Technique: j.tech, PhysNodes: j.phys,
				Outcome: OutcomeDroppedQueued, End: now,
			})
			continue
		}
		viableQueue = append(viableQueue, j)
		j.candGen = gen
		cands = append(cands, sched.Candidate{
			ID:       j.app.ID,
			Nodes:    j.phys,
			Arrival:  j.app.Arrival,
			Baseline: j.app.Baseline(),
			Deadline: j.app.Deadline,
		})
	}
	c.cands = cands
	c.queue = viableQueue
	if len(c.queue) == 0 {
		return
	}

	c.m.observeMapEvent(len(c.queue))
	running := c.running[:0]
	for _, j := range c.jobs {
		if j.running {
			running = append(running, sched.Running{Nodes: j.phys, ExpectedEnd: j.expectedEnd})
		}
	}
	c.running = running
	d := c.mapper.Map(sched.Context{
		Now:       now,
		FreeNodes: c.free,
		Queue:     cands,
		Running:   running,
	}, &c.mapSrc)

	changed := 0
	for _, id := range d.Drop {
		j := c.byID[id]
		if j == nil || j.candGen != gen || j.dropGen == gen {
			continue
		}
		j.dropGen = gen
		changed++
		c.resolve(j, AppResult{
			App: j.app, Technique: j.tech, PhysNodes: j.phys,
			Outcome: OutcomeDroppedQueued, End: now,
		})
	}

	for _, id := range d.Start {
		j := c.byID[id]
		if j == nil || j.candGen != gen || j.dropGen == gen || j.startGen == gen {
			continue
		}
		if j.phys > c.free {
			c.err = fmt.Errorf("cluster: %v over-allocated: job %d needs %d nodes, %d free",
				c.mapper.Kind(), id, j.phys, c.free)
			c.sim.Stop()
			return
		}
		var cls *classState
		var clsExec resilience.Executor
		if c.classes != nil {
			cls, clsExec = c.placeClass(j)
			if c.err != nil {
				return
			}
			if cls == nil {
				// Aggregate free capacity admitted the job but no single
				// class currently has room for its footprint
				// (fragmentation). Leave it queued — its startGen is not
				// stamped, so it survives the queue filter below and the
				// next departure's mapping event retries it.
				continue
			}
		}
		j.startGen = gen
		changed++
		c.start(j, cls, clsExec, now)
	}

	if changed == 0 {
		return
	}
	remaining := c.queue[:0]
	for _, j := range c.queue {
		if j.dropGen != gen && j.startGen != gen {
			remaining = append(remaining, j)
		}
	}
	c.queue = remaining
}

// prepare builds the job's executor (choosing its technique) on first
// consideration.
func (c *run) prepare(j *job) error {
	j.tech = c.chooser(j.app)
	exec, err := resilience.New(j.tech, j.app, c.spec.Machine, c.spec.Model, c.spec.Resilience)
	if err != nil {
		return fmt.Errorf("cluster: building executor for app %d: %w", j.app.ID, err)
	}
	j.exec = exec
	j.phys = exec.PhysicalNodes()
	resilience.Instrument(exec, c.rm)
	// All of a run's executors fire strictly sequentially inside the
	// cluster's event loop, so they share one engine and simulator.
	if c.runtime == nil {
		c.runtime = resilience.NewRuntime(c.rm)
	}
	resilience.AttachRuntime(exec, c.runtime)
	return nil
}

// fitsAnyClass reports whether some node class could ever host the given
// footprint. Always true on homogeneous machines (the Viable check already
// covers the whole-machine bound there).
func (c *run) fitsAnyClass(phys int) bool {
	if c.classes == nil {
		return true
	}
	for _, cls := range c.classes {
		if cls.class.Count >= phys {
			return true
		}
	}
	return false
}

// start places a job on the machine and simulates its execution. On a
// heterogeneous machine cls is the hosting class and clsExec the executor
// built against it (both nil for homogeneous runs, where j.exec runs on
// the base machine).
func (c *run) start(j *job, cls *classState, clsExec resilience.Executor, now units.Duration) {
	c.noteUtilization()
	c.free -= j.phys
	if cls != nil {
		cls.free -= j.phys
		c.m.observeClassFree(cls.class.Name, cls.free)
	}
	if used := c.spec.Machine.Nodes - c.free; used > c.peak {
		c.peak = used
	}
	j.started = true
	c.m.observeStart()

	horizon := j.app.Deadline
	if horizon <= now {
		if horizon <= 0 {
			// Deadline-free app: bound the run defensively.
			horizon = now + units.Duration(100*float64(j.app.Baseline()))
		} else {
			// Deadline already passed (can happen under FCFS/Random,
			// which never drop): it occupies nothing and leaves now.
			// The mapper's ledger had reserved its nodes, so re-run
			// mapping at this instant for anything it crowded out.
			// (The same-instant alloc/free cancels in the utilization
			// integral.)
			c.free += j.phys
			if cls != nil {
				cls.free += j.phys
				c.m.observeClassFree(cls.class.Name, cls.free)
			}
			j.started = false
			c.resolve(j, AppResult{
				App: j.app, Technique: j.tech, PhysNodes: j.phys,
				Outcome: OutcomeDroppedQueued, End: now,
			})
			c.triggerMapping()
			return
		}
	}

	// The per-job stream is re-seeded into a run-owned scratch source:
	// identical draws to rng.Stream(seed, ID+1), no allocation. Executors
	// only read the source inside Run, so sequential jobs may share it.
	exec := j.exec
	class := ""
	if clsExec != nil {
		exec = clsExec
		class = cls.class.Name
	}
	c.jobSrc.SetStream(c.spec.Seed, uint64(j.app.ID)+1)
	c.jobSrc.SetMirror(c.spec.Mirror)
	res := exec.Run(now, horizon, &c.jobSrc)
	end := res.End
	outcome := OutcomeCompleted
	if !res.Completed {
		end = horizon
		outcome = OutcomeDroppedRunning
	}
	if math.IsInf(float64(end), 1) || end <= now {
		end = now + j.app.Baseline()
	}
	j.running = true
	j.expectedEnd = end
	c.sim.Schedule(end, "departure", func(*des.Simulator) {
		c.noteUtilization()
		c.free += j.phys
		if cls != nil {
			cls.free += j.phys
			c.m.observeClassFree(cls.class.Name, cls.free)
		}
		j.running = false
		c.resolve(j, AppResult{
			App: j.app, Technique: j.tech, PhysNodes: j.phys, Class: class,
			Outcome: outcome, Started: true, Start: now, End: end,
		})
		c.triggerMapping()
	})
}

// resolve finalizes a job's fate.
func (c *run) resolve(j *job, r AppResult) {
	if j.finished {
		c.err = fmt.Errorf("cluster: job %d resolved twice", j.app.ID)
		c.sim.Stop()
		return
	}
	j.finished = true
	j.result = r
	c.m.observeResolve(r)
}

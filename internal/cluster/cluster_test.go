package cluster

import (
	"math"
	"testing"

	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/resilience"
	"exaresil/internal/rng"
	"exaresil/internal/workload"
)

func testSpec(t *testing.T, sch core.Scheduler, tech core.Technique, seed uint64) Spec {
	t.Helper()
	cfg := machine.Exascale()
	pattern := workload.PatternSpec{Arrivals: 30, FillSystem: true}.Generate(cfg, rng.New(seed))
	return Spec{
		Machine:    cfg,
		Model:      failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF()),
		Scheduler:  sch,
		Technique:  tech,
		Resilience: resilience.DefaultConfig(),
		Pattern:    pattern,
		Seed:       seed,
	}
}

func TestRunValidation(t *testing.T) {
	spec := testSpec(t, core.FCFS, core.CheckpointRestart, 1)

	bad := spec
	bad.Machine = machine.Config{}
	if _, err := Run(bad); err == nil {
		t.Error("invalid machine accepted")
	}
	bad = spec
	bad.Model = nil
	if _, err := Run(bad); err == nil {
		t.Error("nil model accepted")
	}
	bad = spec
	bad.Scheduler = core.Scheduler(99)
	if _, err := Run(bad); err == nil {
		t.Error("unknown scheduler accepted")
	}
	bad = spec
	bad.Technique = core.Technique(99)
	if _, err := Run(bad); err == nil {
		t.Error("unknown technique accepted")
	}
	bad = spec
	bad.Resilience = resilience.Config{RecoverySpeedup: -1}
	if _, err := Run(bad); err == nil {
		t.Error("invalid resilience config accepted")
	}
}

func TestAllJobsResolve(t *testing.T) {
	for _, sch := range core.Schedulers() {
		for _, tech := range core.ClusterTechniques() {
			spec := testSpec(t, sch, tech, 2)
			m, err := Run(spec)
			if err != nil {
				t.Fatalf("%v/%v: %v", sch, tech, err)
			}
			if m.Total != len(spec.Pattern.Apps) {
				t.Errorf("%v/%v: total %d, want %d", sch, tech, m.Total, len(spec.Pattern.Apps))
			}
			if m.Completed+m.Dropped != m.Total {
				t.Errorf("%v/%v: completed %d + dropped %d != total %d",
					sch, tech, m.Completed, m.Dropped, m.Total)
			}
			if m.Dropped != m.DroppedQueued+m.DroppedRunning {
				t.Errorf("%v/%v: drop decomposition inconsistent", sch, tech)
			}
			if m.PeakUtilization <= 0 || m.PeakUtilization > 1 {
				t.Errorf("%v/%v: peak utilization %v", sch, tech, m.PeakUtilization)
			}
			if len(m.Results) != m.Total {
				t.Errorf("%v/%v: %d results for %d jobs", sch, tech, len(m.Results), m.Total)
			}
		}
	}
}

func TestIdealBaselineDropsLeast(t *testing.T) {
	// The Ideal baseline (no failures, no overhead) must never drop more
	// applications than a real technique on the same pattern and
	// scheduler.
	for _, sch := range core.Schedulers() {
		ideal, err := Run(testSpec(t, sch, core.Ideal, 3))
		if err != nil {
			t.Fatal(err)
		}
		for _, tech := range core.ClusterTechniques() {
			real, err := Run(testSpec(t, sch, tech, 3))
			if err != nil {
				t.Fatal(err)
			}
			if ideal.Dropped > real.Dropped {
				t.Errorf("%v: Ideal dropped %d > %v dropped %d",
					sch, ideal.Dropped, tech, real.Dropped)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(testSpec(t, core.SlackBased, core.ParallelRecovery, 4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testSpec(t, core.SlackBased, core.ParallelRecovery, 4))
	if err != nil {
		t.Fatal(err)
	}
	if a.Dropped != b.Dropped || a.Completed != b.Completed ||
		math.Abs(float64(a.MeanWait-b.MeanWait)) > 1e-9 {
		t.Errorf("replays diverged: %+v vs %+v", a, b)
	}
}

func TestFullMachineStart(t *testing.T) {
	// With FillSystem the machine starts (nearly) full: peak utilization
	// should be high from the outset.
	m, err := Run(testSpec(t, core.FCFS, core.CheckpointRestart, 5))
	if err != nil {
		t.Fatal(err)
	}
	if m.PeakUtilization < 0.95 {
		t.Errorf("peak utilization %v; expected a nearly full machine", m.PeakUtilization)
	}
}

func TestIdealWithGenerousDeadlinesDropsNothingQueuedForever(t *testing.T) {
	// Few small apps, enormous slack, no fill: every app must complete.
	cfg := machine.Exascale()
	pattern := workload.PatternSpec{
		Arrivals: 10,
		SlackLo:  50, SlackHi: 60,
		SizeFractions: []float64{0.01},
	}.Generate(cfg, rng.New(6))
	spec := Spec{
		Machine:    cfg,
		Model:      failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF()),
		Scheduler:  core.FCFS,
		Technique:  core.Ideal,
		Resilience: resilience.DefaultConfig(),
		Pattern:    pattern,
		Seed:       6,
	}
	m, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dropped != 0 {
		t.Errorf("dropped %d of %d apps despite generous deadlines and an empty machine",
			m.Dropped, m.Total)
	}
	if m.MeanEfficiency != 1 {
		t.Errorf("ideal mean efficiency %v, want 1", m.MeanEfficiency)
	}
}

func TestCompletedRunsRespectDeadlines(t *testing.T) {
	m, err := Run(testSpec(t, core.SlackBased, core.MultilevelCheckpoint, 7))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range m.Results {
		switch r.Outcome {
		case OutcomeCompleted:
			if r.App.Deadline > 0 && r.End > r.App.Deadline {
				t.Errorf("app %d completed at %v after deadline %v", r.App.ID, r.End, r.App.Deadline)
			}
			if !r.Started || r.End <= r.Start {
				t.Errorf("app %d completed with degenerate interval [%v, %v]", r.App.ID, r.Start, r.End)
			}
		case OutcomeDroppedRunning:
			if !r.Started {
				t.Errorf("app %d dropped-running but never started", r.App.ID)
			}
			if r.App.Deadline > 0 && math.Abs(float64(r.End-r.App.Deadline)) > 1e-9 {
				t.Errorf("app %d dropped-running at %v, not its deadline %v", r.App.ID, r.End, r.App.Deadline)
			}
		case OutcomeDroppedQueued:
			if r.Started {
				t.Errorf("app %d dropped-queued but started", r.App.ID)
			}
		}
		if r.Waited() < 0 {
			t.Errorf("app %d negative wait %v", r.App.ID, r.Waited())
		}
	}
}

func TestChooserOverridesTechnique(t *testing.T) {
	spec := testSpec(t, core.FCFS, core.CheckpointRestart, 8)
	spec.Chooser = func(app workload.App) core.Technique {
		if app.Class.CommFraction > 0.25 {
			return core.MultilevelCheckpoint
		}
		return core.ParallelRecovery
	}
	m, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range m.Results {
		want := core.ParallelRecovery
		if r.App.Class.CommFraction > 0.25 {
			want = core.MultilevelCheckpoint
		}
		if r.Technique != want {
			t.Errorf("app %d ran %v, chooser wanted %v", r.App.ID, r.Technique, want)
		}
	}
}

func TestBlockedTechniqueDropsInsteadOfWedging(t *testing.T) {
	// Full redundancy on 50%-of-machine apps needs 100% of the machine;
	// with the machine partly busy those apps can never be placed, and on
	// a pattern of only such apps the run must still terminate.
	cfg := machine.Exascale()
	pattern := workload.PatternSpec{
		Arrivals:      8,
		SizeFractions: []float64{0.60},
	}.Generate(cfg, rng.New(9))
	spec := Spec{
		Machine:    cfg,
		Model:      failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF()),
		Scheduler:  core.FCFS,
		Technique:  core.FullRedundancy, // needs 120% of the machine: blocked
		Resilience: resilience.DefaultConfig(),
		Pattern:    pattern,
		Seed:       9,
	}
	m, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if m.DroppedQueued != m.Total {
		t.Errorf("expected all %d apps dropped as unplaceable, got %d", m.Total, m.DroppedQueued)
	}
}

func TestSlackBasedBeatsFCFSOnDrops(t *testing.T) {
	// Figure 4's qualitative claim: slack-based resource management drops
	// fewer applications than FCFS under the same failures and technique.
	var slackDrops, fcfsDrops int
	for seed := uint64(10); seed < 16; seed++ {
		s, err := Run(testSpec(t, core.SlackBased, core.ParallelRecovery, seed))
		if err != nil {
			t.Fatal(err)
		}
		f, err := Run(testSpec(t, core.FCFS, core.ParallelRecovery, seed))
		if err != nil {
			t.Fatal(err)
		}
		slackDrops += s.Dropped
		fcfsDrops += f.Dropped
	}
	if slackDrops >= fcfsDrops {
		t.Errorf("slack-based dropped %d, FCFS dropped %d; expected slack-based to win",
			slackDrops, fcfsDrops)
	}
}

func TestBackfillSchedulerRuns(t *testing.T) {
	m, err := Run(testSpec(t, core.EASYBackfill, core.ParallelRecovery, 21))
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed+m.Dropped != m.Total {
		t.Errorf("backfill run inconsistent: %d + %d != %d", m.Completed, m.Dropped, m.Total)
	}
}

func TestBackfillBeatsFCFSOnDrops(t *testing.T) {
	// The extension's rationale: EASY backfilling removes FCFS's
	// head-of-line blocking, so it should drop fewer applications on the
	// same patterns.
	var bf, fcfs int
	for seed := uint64(30); seed < 36; seed++ {
		b, err := Run(testSpec(t, core.EASYBackfill, core.ParallelRecovery, seed))
		if err != nil {
			t.Fatal(err)
		}
		f, err := Run(testSpec(t, core.FCFS, core.ParallelRecovery, seed))
		if err != nil {
			t.Fatal(err)
		}
		bf += b.Dropped
		fcfs += f.Dropped
	}
	if bf >= fcfs {
		t.Errorf("backfill dropped %d, FCFS dropped %d; expected backfill to win", bf, fcfs)
	}
}

func TestAvgUtilizationBounds(t *testing.T) {
	m, err := Run(testSpec(t, core.SlackBased, core.ParallelRecovery, 40))
	if err != nil {
		t.Fatal(err)
	}
	if m.AvgUtilization <= 0 || m.AvgUtilization > m.PeakUtilization+1e-9 {
		t.Errorf("avg utilization %v outside (0, peak=%v]", m.AvgUtilization, m.PeakUtilization)
	}
	// A filled, oversubscribed machine should stay busy on average.
	if m.AvgUtilization < 0.3 {
		t.Errorf("avg utilization %v implausibly low for an oversubscribed system", m.AvgUtilization)
	}
}
